package oblivext

import (
	"errors"
	"math/rand/v2"
	"sort"
	"testing"

	"oblivext/internal/core"
)

// The fuzz targets pin two invariant families at once, over randomized
// sizes, payloads, and ranks:
//
//   - correctness: the operation returns exactly the right records;
//   - trace shape: with the tape seed fixed, the access trace depends only
//     on the public parameters (N, and the capacity or nothing — never the
//     data, never the rank), checked by replaying the operation on a
//     degenerate same-size input and comparing fingerprints.
//
// The paper's randomized algorithms may fail with low probability
// (ErrSelectFailed / ErrCompactionFailed). A failure is a *public* event in
// the paper's model — Alice declares it and retries with fresh randomness —
// and the algorithm aborts at the failed check, so the observed trace is a
// prefix of the success-path trace. The trace-shape invariant therefore
// compares fingerprints between runs that completed; a failed run instead
// checks the prefix property (FuzzSelect found exactly this: a bracket miss
// at n=181 truncates the trace at the failed rank check).

func fuzzRecords(n int, seed uint64) []Record {
	r := rand.New(rand.NewPCG(seed, seed^0xdeadbeef))
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{Key: r.Uint64() % 4096, Val: uint64(i)} // dense keys: plenty of ties
	}
	return out
}

// fuzzKey derives a 32-byte encryption key from the fuzzed seed. One leg of
// every fuzz case runs with client-side encryption on, so the sealing path
// is fuzzed alongside the algorithms — and since the two legs' traces are
// compared, every case also re-proves that sealing never changes what the
// adversary sees.
func fuzzKey(seed uint64) []byte {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(seed>>(8*(i%8))) ^ byte(i*37+11)
	}
	return key
}

func FuzzCompactTight(f *testing.F) {
	f.Add(uint16(100), uint64(3), uint8(10), uint8(3))
	f.Add(uint16(1), uint64(1), uint8(1), uint8(0))
	f.Add(uint16(1024), uint64(7), uint8(2), uint8(1))
	f.Add(uint16(33), uint64(9), uint8(16), uint8(15))
	f.Add(uint16(512), uint64(1234), uint8(1), uint8(0)) // marks everything
	f.Add(uint16(257), uint64(42), uint8(255), uint8(254))

	f.Fuzz(func(t *testing.T, nRaw uint16, seed uint64, modRaw, remRaw uint8) {
		n := int(nRaw)%1024 + 1
		mod := uint64(modRaw)%16 + 1
		rem := uint64(remRaw) % mod
		pred := func(r Record) bool { return r.Key%mod == rem }
		capacity := int64(n) // public: chosen from workload knowledge, not data

		run := func(recs []Record, key []byte) (TraceSummary, []Record, error) {
			c, err := New(Config{BlockSize: 8, CacheWords: 256, Seed: 123, EncryptionKey: key})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			arr, err := c.Store(recs)
			if err != nil {
				t.Fatal(err)
			}
			c.EnableTrace(0)
			if _, err := arr.Mark(pred); err != nil {
				t.Fatal(err)
			}
			out, err := arr.CompactTight(capacity)
			if err != nil {
				return c.TraceSummary(), nil, err
			}
			got, err := out.Records()
			if err != nil {
				t.Fatal(err)
			}
			return c.TraceSummary(), got, nil
		}

		recs := fuzzRecords(n, seed)
		traceA, got, errA := run(recs, nil)

		if errA == nil {
			var want []Record
			for _, r := range recs {
				if pred(r) {
					want = append(want, r)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d mod=%d rem=%d: compacted %d records, want %d", n, mod, rem, len(got), len(want))
			}
			for i := range want { // order-preserving and exact
				if got[i] != want[i] {
					t.Fatalf("position %d: %+v, want %+v", i, got[i], want[i])
				}
			}
		} else if !errors.Is(errA, core.ErrCompactionFailed) {
			t.Fatalf("unexpected error: %v", errA)
		}

		// Degenerate same-size input: constant keys, so the marked count is
		// all-or-nothing — about as different from recs as it gets. This leg
		// runs with client-side encryption on, so trace equality also pins
		// that sealing is invisible to the adversary's view.
		constant := make([]Record, n)
		for i := range constant {
			constant[i] = Record{Key: 5, Val: uint64(i)}
		}
		traceB, _, errB := run(constant, fuzzKey(seed))
		if errA == nil && errB == nil && traceA != traceB {
			t.Fatalf("n=%d: compaction trace depends on data or encryption: %+v vs %+v", n, traceA, traceB)
		}
		if errA != nil || errB != nil {
			// A declared failure aborts early: its trace must be no longer
			// than the completed run's.
			if errA != nil && errB == nil && traceA.Len > traceB.Len {
				t.Fatalf("failed run traced more than a completed one: %+v vs %+v", traceA, traceB)
			}
			if errB != nil && errA == nil && traceB.Len > traceA.Len {
				t.Fatalf("failed run traced more than a completed one: %+v vs %+v", traceB, traceA)
			}
		}
		if traceA.Len == 0 {
			t.Fatal("empty trace recorded")
		}
	})
}

func FuzzSort(f *testing.F) {
	// One seed per engine (engineRaw selects modulo the engine list), plus
	// boundary sizes and a single-record case.
	f.Add(uint16(100), uint64(3), uint8(0))
	f.Add(uint16(1), uint64(1), uint8(1))
	f.Add(uint16(1000), uint64(2), uint8(2))
	f.Add(uint16(513), uint64(7), uint8(3))
	f.Add(uint16(64), uint64(11), uint8(4))
	f.Add(uint16(257), uint64(42), uint8(8))

	engines := []string{"randomized", "bitonic", "zigzag", "bucket", "auto"}
	f.Fuzz(func(t *testing.T, nRaw uint16, seed uint64, engineRaw uint8) {
		n := int(nRaw)%1024 + 1
		engine := engines[int(engineRaw)%len(engines)]

		run := func(recs []Record, key []byte) (TraceSummary, []Record, error) {
			// CacheWords 512 keeps the bucket engine's declared-overflow
			// probability negligible at these sizes, so a retry (public, but
			// a longer trace) cannot make the two legs diverge.
			c, err := New(Config{BlockSize: 8, CacheWords: 512, Seed: 555, EncryptionKey: key, Sorter: engine})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			arr, err := c.Store(recs)
			if err != nil {
				t.Fatal(err)
			}
			c.EnableTrace(0)
			if err := arr.Sort(); err != nil {
				return c.TraceSummary(), nil, err
			}
			got, err := arr.Records()
			if err != nil {
				t.Fatal(err)
			}
			return c.TraceSummary(), got, nil
		}

		recs := fuzzRecords(n, seed)
		traceA, got, errA := run(recs, nil)

		if errA == nil {
			want := append([]Record(nil), recs...)
			sort.SliceStable(want, func(i, j int) bool { return want[i].Key < want[j].Key })
			if len(got) != len(want) {
				t.Fatalf("engine=%s n=%d: %d records after sort, want %d", engine, n, len(got), len(want))
			}
			for i := range want { // stable: insertion order breaks ties
				if got[i] != want[i] {
					t.Fatalf("engine=%s n=%d position %d: %+v, want %+v", engine, n, i, got[i], want[i])
				}
			}
		} else if !errors.Is(errA, core.ErrSortFailed) {
			// Only the randomized engine may fail; the deterministic engines
			// never do, and bucket retries declared overflows internally.
			t.Fatalf("engine=%s: unexpected error: %v", engine, errA)
		}

		// Degenerate same-size input (all keys equal — maximal ties) with
		// client-side encryption on: neither the data nor the sealing may
		// show in the trace.
		constant := make([]Record, n)
		for i := range constant {
			constant[i] = Record{Key: 5, Val: uint64(i)}
		}
		traceB, _, errB := run(constant, fuzzKey(seed))
		if errA == nil && errB == nil && traceA != traceB {
			t.Fatalf("engine=%s n=%d: sort trace depends on data or encryption: %+v vs %+v",
				engine, n, traceA, traceB)
		}
		// A declared randomized-sort failure aborts at the failed check, so
		// its trace is a prefix of the success path's.
		if errA != nil && errB == nil && traceA.Len > traceB.Len {
			t.Fatalf("failed run traced more than a completed one: %+v vs %+v", traceA, traceB)
		}
		if errB != nil && errA == nil && traceB.Len > traceA.Len {
			t.Fatalf("failed run traced more than a completed one: %+v vs %+v", traceB, traceA)
		}
		if traceA.Len == 0 {
			t.Fatal("empty trace recorded")
		}
	})
}

func FuzzSelect(f *testing.F) {
	f.Add(uint16(100), uint16(50), uint64(1))
	f.Add(uint16(1), uint16(1), uint64(1))
	f.Add(uint16(1000), uint16(1), uint64(2))
	f.Add(uint16(777), uint16(777), uint64(3))
	f.Add(uint16(64), uint16(33), uint64(4))
	f.Add(uint16(2), uint16(2), uint64(99))

	f.Fuzz(func(t *testing.T, nRaw, kRaw uint16, seed uint64) {
		n := int(nRaw)%1024 + 1
		k := int64(kRaw)%int64(n) + 1

		run := func(recs []Record, rank int64, key []byte) (TraceSummary, Record, error) {
			c, err := New(Config{BlockSize: 8, CacheWords: 256, Seed: 321, EncryptionKey: key})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			arr, err := c.Store(recs)
			if err != nil {
				t.Fatal(err)
			}
			c.EnableTrace(0)
			rec, err := arr.Select(rank)
			return c.TraceSummary(), rec, err
		}

		recs := fuzzRecords(n, seed)
		traceA, got, errA := run(recs, k, nil)

		if errA == nil {
			keys := make([]uint64, n)
			for i, r := range recs {
				keys[i] = r.Key
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			if got.Key != keys[k-1] {
				t.Fatalf("n=%d k=%d: selected key %d, want %d", n, k, got.Key, keys[k-1])
			}
		} else if !errors.Is(errA, core.ErrSelectFailed) {
			t.Fatalf("unexpected error: %v", errA)
		}

		// Same size, degenerate data, a *different* rank, and encryption on:
		// neither the values, the rank, nor the sealing may show in the
		// trace (the rank is Alice's secret; only N is public).
		constant := make([]Record, n)
		for i := range constant {
			constant[i] = Record{Key: 5, Val: uint64(i)}
		}
		otherK := int64(n) - k + 1
		traceB, _, errB := run(constant, otherK, fuzzKey(seed))
		if errA == nil && errB == nil && traceA != traceB {
			t.Fatalf("n=%d: selection trace depends on data, rank, or encryption (k=%d vs %d): %+v vs %+v",
				n, k, otherK, traceA, traceB)
		}
		if errA != nil && errB == nil && traceA.Len > traceB.Len {
			t.Fatalf("failed run traced more than a completed one: %+v vs %+v", traceA, traceB)
		}
		if errB != nil && errA == nil && traceB.Len > traceA.Len {
			t.Fatalf("failed run traced more than a completed one: %+v vs %+v", traceB, traceA)
		}
		if traceA.Len == 0 {
			t.Fatal("empty trace recorded")
		}
	})
}
