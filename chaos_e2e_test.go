package oblivext

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"oblivext/internal/chaos"
	"oblivext/internal/extmem/netstore"
	"oblivext/internal/obs"
	"oblivext/internal/trace"
)

// replicaFleet spins up shards x replicas real obstore servers and returns
// them with their URLs and hosts, flat in shard-major order (entry
// i*replicas+j is replica j of shard i).
func replicaFleet(t *testing.T, shards, replicas, blocks, b int) (servers []*netstore.Server, urls, hosts []string) {
	t.Helper()
	for i := 0; i < shards*replicas; i++ {
		srv, ts := obstore(t, blocks, b)
		servers = append(servers, srv)
		urls = append(urls, ts.URL)
		hosts = append(hosts, strings.TrimPrefix(ts.URL, "http://"))
	}
	return servers, urls, hosts
}

// chaosRun is everything one fleet run produces for the replay assertions.
type chaosRun struct {
	client    TraceSummary    // Alice's logical (Disk-layer) trace of the probes
	journals  []trace.Summary // every surviving server's own journal of the probes
	events    []string        // the replica layer's failover/breaker decision log
	decisions []string        // the chaos injector's fault log
}

// chaosSortRun drives the acceptance workload over a 2-shard x 2-replica
// fleet of real obstore servers: upload recs, then — when kill is true — arm
// a permanent Kill on replica 0 of shard 0 that strikes a few interactions
// into the Sort, mid-flight. The sort must complete and verify; the run's
// traces, journals, and decision logs come back for comparison. When the
// auditor hooks are non-nil they are invoked around the workload.
func chaosSortRun(t *testing.T, recs []Record, kill bool, audit func(c *Client), done func(c *Client)) chaosRun {
	t.Helper()
	const shards, replicas = 2, 2
	servers, urls, hosts := replicaFleet(t, shards, replicas, 4096, 8)
	tr := chaos.NewTransport(nil, nil)
	c, err := New(Config{
		BlockSize: 8, CacheWords: 512, Seed: 77,
		NumShards: shards, Replicas: replicas, ReplicaURLs: urls,
		HTTPTransport: tr,
		NetRetries:    -1, // failures fail over, they don't retry: keeps replays fast and exact
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if audit != nil {
		audit(c)
	}
	arr, err := c.Store(recs)
	if err != nil {
		t.Fatal(err)
	}
	// Fingerprint the probes alone, as the network suite does.
	c.EnableTrace(0)
	for _, srv := range servers {
		srv.ResetTrace()
	}
	if kill {
		// The victim's upload traffic fixes the arming point; +8 lands the
		// crash a few batches into the sort, mid-flight. Interaction counts
		// are input-independent, so the same schedule arms at the same point
		// in every run — that is what makes the replays comparable.
		tr.AddEvent(chaos.Event{Target: hosts[0], At: tr.Interactions(hosts[0]) + 8, Kind: chaos.Kill})
	}
	if err := arr.Sort(); err != nil {
		t.Fatalf("sort through the kill: %v", err)
	}
	got, err := arr.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records back, want %d", len(got), len(recs))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Key > got[i].Key {
			t.Fatalf("not sorted at %d after replica kill", i)
		}
	}
	if done != nil {
		done(c)
	}

	// The injector logs ephemeral host:port targets; rewrite them to stable
	// shard/replica labels so logs from distinct fleets compare.
	decisions := tr.Decisions()
	for i, d := range decisions {
		for idx, h := range hosts {
			d = strings.ReplaceAll(d, h, fmt.Sprintf("s%dr%d", idx/replicas, idx%replicas))
		}
		decisions[i] = d
	}
	run := chaosRun{client: c.TraceSummary(), events: c.ReplicaEvents(), decisions: decisions}
	survivors := servers
	if kill {
		survivors = servers[1:]
		// Sanity: the kill actually bit, and the client survived it by
		// failing over, not by retrying into the void.
		if len(run.decisions) == 0 {
			t.Fatal("kill armed but the injector never fired")
		}
		st := c.ReplicaStats()
		if st[0][0].Failures == 0 || st[0][0].Failovers == 0 {
			t.Fatalf("dead replica shows no failures/failovers: %+v", st[0][0])
		}
		if st[0][0].Dirty == 0 {
			t.Fatalf("dead replica missed writes but nothing is marked dirty: %+v", st[0][0])
		}
	}
	for _, srv := range survivors {
		run.journals = append(run.journals, srv.TraceSummary())
	}
	return run
}

// TestChaosKillMidSortObliviousness is the headline robustness acceptance
// test: one replica of one shard crashes permanently mid-Sort (N = 2^12)
// over a fleet of real obstore servers, and
//
//   - the sort still completes and verifies;
//   - every surviving Bob's journal is bit-identical across distinct
//     same-size inputs — the crash did not widen the channel;
//   - Alice's logical trace is unchanged by the fault (equal to the
//     fault-free run's), so the live auditor enforces the fault-free golden
//     fingerprints over the chaos run with zero violations;
//   - the same schedule replayed drives byte-identical traces, journals,
//     failover decisions, and injector logs — the whole response to failure
//     is a deterministic function of the fault events and public geometry.
func TestChaosKillMidSortObliviousness(t *testing.T) {
	const n = 1 << 12
	varied := mkRecords(n, 1)
	constant := make([]Record, n)
	for i := range constant {
		constant[i] = Record{Key: 5, Val: uint64(i)}
	}

	// Fault-free run: learn the golden audit fingerprints.
	var golden bytes.Buffer
	var learner *obs.Auditor
	clean := chaosSortRun(t, varied, false,
		func(c *Client) { learner = c.EnableAudit(true) },
		func(c *Client) {
			if _, _, violated := learner.Stats(); violated != 0 {
				t.Fatalf("fault-free learn run recorded %d violations", violated)
			}
			if err := learner.SaveJSON(&golden); err != nil {
				t.Fatal(err)
			}
		})

	// Chaos run over the varied input, enforcing the fault-free golden.
	var enforcer *obs.Auditor
	chaosA := chaosSortRun(t, varied, true,
		func(c *Client) {
			enforcer = c.EnableAudit(false)
			if err := enforcer.LoadJSON(bytes.NewReader(golden.Bytes())); err != nil {
				t.Fatal(err)
			}
		},
		func(c *Client) {
			observed, matched, violated := enforcer.Stats()
			if violated != 0 {
				t.Fatalf("auditor flagged %d violations during chaos: %v", violated, enforcer.Violations())
			}
			if observed == 0 || matched != observed {
				t.Fatalf("chaos run: %d spans observed, %d matched golden", observed, matched)
			}
		})

	// The fault changed nothing Alice's trace shows: failover lives strictly
	// below the Disk layer.
	if chaosA.client != clean.client {
		t.Fatalf("client trace depends on faults: %+v vs fault-free %+v", chaosA.client, clean.client)
	}

	// Chaos run over the constant input: every surviving Bob's journal must
	// be bit-identical to the varied run's.
	chaosB := chaosSortRun(t, constant, true, nil, nil)
	if chaosB.client != chaosA.client {
		t.Fatalf("client trace depends on data under chaos: %+v vs %+v", chaosB.client, chaosA.client)
	}
	if len(chaosA.journals) != len(chaosB.journals) {
		t.Fatalf("survivor counts differ: %d vs %d", len(chaosA.journals), len(chaosB.journals))
	}
	for i := range chaosA.journals {
		if !chaosA.journals[i].Equal(chaosB.journals[i]) {
			t.Fatalf("survivor %d journal depends on data under chaos: %+v vs %+v",
				i, chaosA.journals[i], chaosB.journals[i])
		}
		if chaosA.journals[i].Len == 0 {
			t.Fatalf("survivor %d journal is empty — the workload never reached it", i)
		}
	}
	// Failover decisions are a function of fault events + geometry, not data.
	if !reflect.DeepEqual(chaosA.events, chaosB.events) {
		t.Fatalf("failover decisions depend on data:\nvaried:   %v\nconstant: %v", chaosA.events, chaosB.events)
	}
	if !reflect.DeepEqual(chaosA.decisions, chaosB.decisions) {
		t.Fatalf("injected faults depend on data:\nvaried:   %v\nconstant: %v", chaosA.decisions, chaosB.decisions)
	}
	if len(chaosA.events) == 0 {
		t.Fatal("kill produced no failover decisions — the determinism claims are vacuous")
	}

	// Replay: the same schedule over the same input reproduces everything.
	replay := chaosSortRun(t, varied, true, nil, nil)
	if replay.client != chaosA.client {
		t.Fatalf("replay client trace diverged: %+v vs %+v", replay.client, chaosA.client)
	}
	for i := range chaosA.journals {
		if !replay.journals[i].Equal(chaosA.journals[i]) {
			t.Fatalf("replay survivor %d journal diverged", i)
		}
	}
	if !reflect.DeepEqual(replay.events, chaosA.events) {
		t.Fatalf("replay failover decisions diverged:\nrun:    %v\nreplay: %v", chaosA.events, replay.events)
	}
	if !reflect.DeepEqual(replay.decisions, chaosA.decisions) {
		t.Fatalf("replay injector log diverged:\nrun:    %v\nreplay: %v", chaosA.decisions, replay.decisions)
	}
}

// TestChaosTransientFaultsRetryNotFailover pins the other absorption path:
// a brief window of 503s on one replica is soaked up by the netstore
// client's retry loop (the server said "come back", so the client does),
// with no breaker trip and no failover — the replica layer never even sees
// a failure.
func TestChaosTransientFaultsRetryNotFailover(t *testing.T) {
	const shards, replicas = 1, 2
	_, urls, hosts := replicaFleet(t, shards, replicas, 1024, 8)
	tr := chaos.NewTransport(nil, nil)
	c, err := New(Config{
		BlockSize: 8, CacheWords: 256, Seed: 5,
		Replicas: replicas, ReplicaURLs: urls,
		HTTPTransport: tr,
		NetRetries:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	arr, err := c.Store(mkRecords(600, 9))
	if err != nil {
		t.Fatal(err)
	}
	tr.AddEvent(chaos.Event{Target: hosts[0], At: tr.Interactions(hosts[0]) + 4, For: 2, Kind: chaos.Err503})
	if err := arr.Sort(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Decisions()) == 0 {
		t.Fatal("the 503 window never fired")
	}
	st := c.ReplicaStats()
	if st[0][0].Failures != 0 || st[0][0].Failovers != 0 {
		t.Fatalf("transient 503s escalated to the replica layer: %+v", st[0][0])
	}
	if ns := c.MeasuredNetworkStats(); len(ns) == 0 || ns[0].Retries == 0 {
		t.Fatalf("the retry loop never engaged: %+v", ns)
	}
	if ev := c.ReplicaEvents(); len(ev) != 0 {
		t.Fatalf("replica decision log should be empty, got %v", ev)
	}
}
