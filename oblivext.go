// Package oblivext is a data-oblivious external-memory toolkit: an
// implementation of Goodrich, "Data-Oblivious External-Memory Algorithms
// for the Compaction, Selection, and Sorting of Outsourced Data"
// (SPAA 2011).
//
// A Client models the paper's setting: your process is Alice, with a small
// private cache; the block store is Bob, an honest-but-curious storage
// server that sees every block address you touch but none of the (possibly
// encrypted) contents. Every operation on an outsourced Array — Sort,
// Select, Quantiles, the compactions — produces an access trace whose
// distribution is independent of the stored values, so the server learns
// nothing from watching you work.
//
//	client, _ := oblivext.New(oblivext.Config{BlockSize: 8, CacheWords: 512})
//	arr, _ := client.Store(records)
//	_ = arr.Sort()
//	median, _ := arr.Select(arr.Len()/2 + 1)
//
// The ORAM type provides general-purpose oblivious reads and writes on top
// of the same machinery, with the paper's sorting algorithm accelerating
// its rebuilds.
package oblivext

import (
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"oblivext/internal/core"
	"oblivext/internal/extmem"
	"oblivext/internal/extmem/netstore"
	"oblivext/internal/extmem/replica"
	"oblivext/internal/extmem/shard"
	"oblivext/internal/obs"
	"oblivext/internal/obsort"
	"oblivext/internal/oram"
	"oblivext/internal/trace"
)

// Record is one key-value item of outsourced data.
type Record struct {
	Key uint64
	Val uint64
}

// Config describes the external-memory geometry and backing store.
type Config struct {
	// BlockSize is B: elements per block. Must be a power of two. Default 8.
	BlockSize int
	// CacheWords is M: the private cache size in elements. Default 64·B.
	CacheWords int
	// Seed seeds the random tape; runs with equal seeds are reproducible.
	Seed uint64
	// Sorter selects the engine behind Array.Sort and the ORAM's level
	// rebuilds: "randomized" (the paper's randomized sort — the default,
	// also selected by ""), "bitonic", "zigzag", "bucket", or "auto".
	// "auto" picks per call from the workload geometry (array size, B, M)
	// and the backend kind — round-trip cost over network stores, block
	// volume otherwise; the pick is a public function of the geometry, so
	// traces stay data-independent. The deterministic engines never fail;
	// "bucket" retries declared overflows on fresh randomness and falls
	// back to zigzag. See docs/ARCHITECTURE.md, "Sorter engines".
	Sorter string
	// Path, when non-empty, backs the store with a real file at that path
	// instead of memory.
	Path string
	// EncryptionKey, when 32 bytes long, makes Alice encrypt client-side:
	// every block is sealed with AES-CTR + HMAC-SHA256 under a fresh IV per
	// write — the semantically secure re-encryption the paper assumes —
	// before it leaves the process, for *every* backend (memory, file,
	// sharded, and the HTTP network store alike). Bob only ever holds
	// IV‖ciphertext‖tag; see docs/THREAT_MODEL.md. A sealed block occupies
	// BlockSize + 2 elements on the backend, so a network server must be
	// provisioned with that block size (obstore -b BlockSize+2).
	EncryptionKey []byte
	// StartBlocks is the initial store capacity in blocks (file stores are
	// fixed at this size; memory stores grow). Default 1024.
	StartBlocks int
	// MaxBatchBlocks caps how many blocks a single vectored store call may
	// move. 0 (the default) leaves batches bounded only by the cache
	// budget — up to M/B−O(1) blocks per round trip; 1 forces the scalar
	// one-block-per-round-trip baseline. The access trace Bob sees is
	// identical for every setting; only the round-trip grouping changes.
	MaxBatchBlocks int
	// SimulatedRTT, when positive, models Bob as remote: every store
	// interaction is charged this round-trip delay (plus
	// SimulatedPerBlock per block moved). By default the delay is only
	// accounted — read it back with ModeledNetworkTime; set SimulatedSleep
	// to make calls really block.
	SimulatedRTT time.Duration
	// SimulatedPerBlock is the bandwidth component of the latency model.
	SimulatedPerBlock time.Duration
	// SimulatedSleep makes the latency model sleep for each modeled delay.
	SimulatedSleep bool
	// NumShards, when > 1, stripes the store across that many child
	// backends (logical block a lives on shard a mod NumShards) and fans
	// every vectored call out to the shards in parallel. The per-block
	// trace is unchanged — each shard sees the residue-class projection of
	// the same sequence — and with a latency model configured each shard
	// gets its own, so ModeledNetworkTime becomes the max-over-shards
	// critical path per interaction instead of the serial sum.
	NumShards int
	// ShardPaths, when non-empty, backs each shard with a file at the
	// given path (length must equal NumShards); otherwise shards are
	// in-memory. With EncryptionKey set the shard files hold ciphertext
	// only (blocks are sealed above the fan-out).
	ShardPaths []string
	// Workers sizes the pool of goroutines used for Alice-side in-cache
	// compute: the private phases between store round trips (bitonic
	// compare-exchange levels, butterfly routing, colorize/stamp passes,
	// bucket binning, in-cache sorts) and the sealing/opening of blocks when
	// EncryptionKey is set. 0 or 1 runs everything serially; N > 1 fans the
	// compute out over N goroutines. The partitioning is a pure function of
	// public geometry (lengths, B, M, N) — never of element values — and all
	// store I/O stays on the calling goroutine in unchanged order, so the
	// per-block trace Bob observes is bit-identical for every Workers
	// setting; see docs/ARCHITECTURE.md, "Parallel compute".
	Workers int
	// Prefetch double-buffers the pass-structured I/O: read scans fetch
	// the next half-window while the client computes over the current one,
	// and write-heavy passes (the sort pipeline's deal step, the ORAM
	// rebuild streams) flush one half-buffer in the background while the
	// client fills the other. The per-block access sequence Bob observes
	// is identical; only issue timing (and round-trip grouping, since
	// chunks are half-window) changes.
	Prefetch bool
	// URL, when non-empty, backs the store with a real remote Bob: an
	// obstore server (cmd/obstore) at this base URL, spoken to over the
	// batched binary HTTP protocol — every vectored store call is exactly
	// one request. The server's block size must equal BlockSize (or
	// BlockSize+2 with EncryptionKey set: sealed blocks carry the IV+tag
	// envelope). Measured (not modeled) round-trip stats are read back
	// with MeasuredNetworkStats; SimulatedRTT may still be set to charge
	// an additional accounted model on top.
	URL string
	// ShardURLs backs individual shards with remote obstore servers; when
	// non-empty its length must equal NumShards. Entries may be empty to
	// mix backends: shard i uses ShardURLs[i] when set, else ShardPaths[i]
	// when set, else memory. The fan-out then hits K real servers in
	// parallel, unchanged.
	ShardURLs []string
	// Replicas, when > 1, gives every shard R redundant copies: writes fan
	// out to all live replicas, reads are served by the healthiest one, and
	// per-replica circuit breakers route around failures (failover) while
	// remembering missed writes for read-repair. Replication composes with
	// sharding — logical shard i becomes an R-way replica group — and each
	// replica sees the same data-independent trace the shard would have
	// seen, so obliviousness is unchanged; see docs/ARCHITECTURE.md,
	// "Fault tolerance". Backends are in-memory unless ReplicaURLs names
	// real servers.
	Replicas int
	// ReplicaURLs backs individual replicas with remote obstore servers,
	// flat in shard-major order: entry i·Replicas+j is replica j of shard
	// i, so the length must equal max(NumShards,1)·Replicas. Entries may be
	// empty to mix backends (an empty entry is an in-memory replica).
	// Requires Replicas > 1; mutually exclusive with URL and ShardURLs.
	ReplicaURLs []string
	// HedgeAfter, when positive, enables hedged reads inside each replica
	// group: a read still outstanding after this long is raced against a
	// second replica and the first response wins. The delay self-tunes to
	// the observed P95 read latency once enough samples exist; HedgeAfter
	// is the bootstrap value. Requires Replicas > 1. Hedging trades the
	// client's timing determinism for tail latency — the per-block trace
	// each server journals is still input-independent, but which replica
	// served a given read becomes timing-dependent, so deterministic
	// replay tests leave it off.
	HedgeAfter time.Duration
	// HTTPTransport, when non-nil, replaces the shared HTTP transport used
	// for every network backend. This is the fault-injection seam: the
	// chaos harness (internal/chaos) wraps a real transport with a
	// deterministic fault schedule and hands it in here. TLS settings from
	// TLSRootCA/TLSInsecureSkipVerify are NOT applied to a caller-supplied
	// transport — configure it fully.
	HTTPTransport http.RoundTripper
	// NetTimeout bounds each HTTP attempt against a network backend
	// (default 10s).
	NetTimeout time.Duration
	// NetRetries is how many times a failed network request is replayed
	// before giving up (0 selects the default of 3; -1 disables retries
	// entirely for fail-fast runs). Requests are idempotent and carry a
	// stable id, so replays are safe and the server journals them once.
	NetRetries int
	// AuthToken, when non-empty, is presented to every network backend as
	// an "Authorization: Bearer" credential; it must match the server's
	// -auth-token. A mismatch is a permanent 401, not a retried fault.
	AuthToken string
	// TLSRootCA, when non-empty, is the path to a PEM file of root
	// certificates to trust when dialing https:// backends — typically the
	// self-signed certificate an obstore was started with (-tls-cert).
	// System roots apply when unset.
	TLSRootCA string
	// TLSInsecureSkipVerify disables server-certificate verification for
	// https:// backends. Smoke tests only: it surrenders authentication of
	// Bob, leaving the connection open to man-in-the-middle interception
	// (contents stay protected by EncryptionKey, but the access trace and
	// data integrity guarantees against an *active* network attacker do
	// not).
	TLSInsecureSkipVerify bool
	// Namespace scopes this session's traffic to one tenant of a
	// multi-tenant (service-mode) obstore fleet. Each namespace is its own
	// block address space with its own server-side journal, trace
	// fingerprint, and replay-suppression window, so N concurrent Clients
	// in different namespaces share servers without sharing any observable
	// state. Carried inline on data-plane requests and as ?ns= on control
	// requests; empty (the default) selects the default tenant over the
	// legacy framing. Must be 1..64 characters of [a-zA-Z0-9._-].
	Namespace string
	// Multiplex hands every network backend the process-wide multiplexed
	// transport (netstore.SharedTransport): HTTP/2 streams over a handful
	// of long-lived connections shared by ALL Clients in the process, so a
	// service running many sessions pays connections per server, not per
	// session × shard. Requires servers that accept unencrypted HTTP/2 on
	// cleartext listeners (cmd/obstore -h2c, or any
	// netstore.ConfigureMuxServer'd server). Mutually exclusive with
	// HTTPTransport/TLSRootCA/TLSInsecureSkipVerify: the shared transport
	// is process-global, so per-session transport or TLS settings cannot
	// apply to it.
	Multiplex bool
}

// Client is Alice: a private cache plus a connection to the block store.
// Not safe for concurrent use (any internal concurrency — the sharded
// fan-out, the prefetching scans — stays behind the single-caller API).
type Client struct {
	env        *extmem.Env
	store      extmem.BlockStore
	net        extmem.NetModel     // non-nil when SimulatedRTT/PerBlock is configured
	sharded    *shard.ShardedStore // non-nil when NumShards > 1
	replicated []*replica.Store    // per-shard replica groups; nil without Replicas > 1
	netClients []*netstore.Client  // remote backends in shard order; nil without URL/ShardURLs
	crypt      *extmem.CryptStore  // non-nil when EncryptionKey is set
	sorter     string              // validated Config.Sorter ("" = randomized)
	netBacked  bool                // true when any backend is an HTTP store ("net" cost model for auto)
}

// New creates a client.
func New(cfg Config) (*Client, error) {
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 8
	}
	if cfg.BlockSize < 2 || cfg.BlockSize&(cfg.BlockSize-1) != 0 {
		return nil, fmt.Errorf("oblivext: BlockSize must be a power of two >= 2, got %d", cfg.BlockSize)
	}
	if cfg.CacheWords == 0 {
		cfg.CacheWords = 64 * cfg.BlockSize
	}
	if cfg.CacheWords < 4*cfg.BlockSize {
		return nil, fmt.Errorf("oblivext: CacheWords must be at least 4·BlockSize")
	}
	if cfg.Sorter != "" && !obsort.ValidEngine(cfg.Sorter) {
		return nil, fmt.Errorf("oblivext: unknown Sorter %q (valid: %s, or empty for randomized)",
			cfg.Sorter, strings.Join(obsort.EngineNames(), ", "))
	}
	if cfg.StartBlocks == 0 {
		cfg.StartBlocks = 1024
	}
	if cfg.MaxBatchBlocks < 0 {
		return nil, fmt.Errorf("oblivext: MaxBatchBlocks must be >= 0, got %d", cfg.MaxBatchBlocks)
	}
	if cfg.SimulatedRTT < 0 || cfg.SimulatedPerBlock < 0 {
		return nil, errors.New("oblivext: simulated latencies must be non-negative")
	}
	if cfg.NumShards < 0 {
		return nil, fmt.Errorf("oblivext: NumShards must be >= 0, got %d", cfg.NumShards)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("oblivext: Workers must be >= 0, got %d", cfg.Workers)
	}
	if len(cfg.ShardPaths) > 0 && len(cfg.ShardPaths) != cfg.NumShards {
		return nil, fmt.Errorf("oblivext: got %d ShardPaths for %d shards", len(cfg.ShardPaths), cfg.NumShards)
	}
	if len(cfg.ShardURLs) > 0 && len(cfg.ShardURLs) != cfg.NumShards {
		return nil, fmt.Errorf("oblivext: got %d ShardURLs for %d shards", len(cfg.ShardURLs), cfg.NumShards)
	}
	if cfg.URL != "" && cfg.Path != "" {
		return nil, errors.New("oblivext: URL and Path are mutually exclusive")
	}
	if cfg.URL != "" && (cfg.NumShards > 1 || len(cfg.ShardURLs) > 0 || len(cfg.ShardPaths) > 0) {
		return nil, errors.New("oblivext: with sharding use ShardURLs, not URL")
	}
	if cfg.NetTimeout < 0 || cfg.NetRetries < -1 {
		return nil, errors.New("oblivext: NetTimeout must be non-negative and NetRetries >= -1")
	}
	if !netstore.ValidNamespace(cfg.Namespace) {
		return nil, fmt.Errorf("oblivext: invalid Namespace %q (want 1..%d chars of [a-zA-Z0-9._-])",
			cfg.Namespace, netstore.MaxNamespaceLen)
	}
	if cfg.Multiplex && (cfg.HTTPTransport != nil || cfg.TLSRootCA != "" || cfg.TLSInsecureSkipVerify) {
		return nil, errors.New("oblivext: Multiplex uses the process-wide shared transport; it cannot combine with HTTPTransport or per-session TLS settings")
	}
	if cfg.Replicas < 0 {
		return nil, fmt.Errorf("oblivext: Replicas must be >= 0, got %d", cfg.Replicas)
	}
	if cfg.HedgeAfter < 0 {
		return nil, errors.New("oblivext: HedgeAfter must be non-negative")
	}
	if cfg.Replicas <= 1 && (cfg.HedgeAfter > 0 || len(cfg.ReplicaURLs) > 0) {
		return nil, errors.New("oblivext: HedgeAfter and ReplicaURLs require Replicas > 1")
	}
	if cfg.Replicas > 1 {
		if cfg.URL != "" || len(cfg.ShardURLs) > 0 {
			return nil, errors.New("oblivext: with Replicas > 1 use ReplicaURLs, not URL/ShardURLs")
		}
		if cfg.Path != "" || len(cfg.ShardPaths) > 0 {
			return nil, errors.New("oblivext: file-backed replicas are not supported; use ReplicaURLs or memory")
		}
		if want := max(cfg.NumShards, 1) * cfg.Replicas; len(cfg.ReplicaURLs) > 0 && len(cfg.ReplicaURLs) != want {
			return nil, fmt.Errorf("oblivext: got %d ReplicaURLs for %d shards x %d replicas (want %d, shard-major)",
				len(cfg.ReplicaURLs), max(cfg.NumShards, 1), cfg.Replicas, want)
		}
	}
	var enc *extmem.Encryptor
	if len(cfg.EncryptionKey) > 0 {
		var err error
		enc, err = extmem.NewEncryptor(cfg.EncryptionKey)
		if err != nil {
			return nil, err
		}
	}
	// With encryption the backends hold sealed blocks: every child store is
	// provisioned with the inflated block size and the CryptStore decorator
	// at the top of the stack translates, so the Disk and the algorithms see
	// plaintext blocks of BlockSize elements regardless.
	innerB := cfg.BlockSize
	if enc != nil {
		innerB = extmem.CryptChildBlockSize(cfg.BlockSize)
	}
	latency := cfg.SimulatedRTT > 0 || cfg.SimulatedPerBlock > 0
	wrapNet := func(s extmem.BlockStore) extmem.BlockStore {
		if !latency {
			return s
		}
		return extmem.NewLatencyStore(s, extmem.LatencyOptions{
			RTT: cfg.SimulatedRTT, PerBlock: cfg.SimulatedPerBlock, Sleep: cfg.SimulatedSleep,
		})
	}

	netOpts := netstore.Options{Timeout: cfg.NetTimeout, AuthToken: cfg.AuthToken, Namespace: cfg.Namespace}
	switch {
	case cfg.NetRetries == -1:
		netOpts.MaxAttempts = 1 // fail-fast: the first attempt is the only one
	case cfg.NetRetries > 0:
		netOpts.MaxAttempts = cfg.NetRetries + 1
	}
	if cfg.TLSRootCA != "" || cfg.TLSInsecureSkipVerify {
		tc := &tls.Config{InsecureSkipVerify: cfg.TLSInsecureSkipVerify}
		if cfg.TLSRootCA != "" {
			pem, err := os.ReadFile(cfg.TLSRootCA)
			if err != nil {
				return nil, fmt.Errorf("oblivext: TLSRootCA: %w", err)
			}
			pool := x509.NewCertPool()
			if !pool.AppendCertsFromPEM(pem) {
				return nil, fmt.Errorf("oblivext: TLSRootCA %s: no certificates found", cfg.TLSRootCA)
			}
			tc.RootCAs = pool
		}
		netOpts.TLS = tc
	}
	// All network clients share one keep-alive transport whose idle pool is
	// sized to the fan-out: one vectored call puts NumShards requests in
	// flight at once, and when shard URLs point at the same host they all
	// draw on the same per-host pool. Sized right, the steady drumbeat of
	// batched ORAM accesses reuses warm connections instead of re-dialing.
	hasNet := cfg.URL != ""
	for _, u := range cfg.ShardURLs {
		if u != "" {
			hasNet = true
		}
	}
	for _, u := range cfg.ReplicaURLs {
		if u != "" {
			hasNet = true
		}
	}
	switch {
	case cfg.Multiplex:
		// All sessions in the process interleave their requests as HTTP/2
		// streams on the shared transport's few long-lived connections.
		netOpts.Transport = netstore.SharedTransport()
	case cfg.HTTPTransport != nil:
		netOpts.Transport = cfg.HTTPTransport
	case hasNet:
		tr := netstore.NewTransport(max(cfg.NumShards, 1)*max(cfg.Replicas, 1) + 2)
		// The shared transport carries the TLS settings itself: Dial's own
		// TLS wiring only applies when it builds the transport.
		tr.TLSClientConfig = netOpts.TLS
		netOpts.Transport = tr
	}

	c := &Client{sorter: cfg.Sorter, netBacked: hasNet}
	var store extmem.BlockStore
	// ShardPaths/ShardURLs with NumShards == 1 still go through the sharded
	// constructor so the named backend serves the store (a silent
	// fall-through to memory would lose the data on Close).
	if cfg.Replicas > 1 {
		// Each logical shard becomes an R-way replica group; the sharded
		// fan-out (when sharding is on) sits above the groups, so a shard's
		// sub-batch fans out again across its replicas. Every physical
		// replica carries its own latency model, making the group's modeled
		// time the critical path over the replicas it touched.
		shards := max(cfg.NumShards, 1)
		perShard := extmem.CeilDiv(cfg.StartBlocks, shards)
		groups := make([]extmem.BlockStore, shards)
		closeBuilt := func(built []extmem.BlockStore) {
			for _, ch := range built {
				if ch != nil {
					ch.Close()
				}
			}
		}
		for i := range groups {
			children := make([]extmem.BlockStore, cfg.Replicas)
			for j := range children {
				if idx := i*cfg.Replicas + j; len(cfg.ReplicaURLs) > 0 && cfg.ReplicaURLs[idx] != "" {
					nc, err := netstore.Dial(cfg.ReplicaURLs[idx], netOpts)
					if err != nil {
						closeBuilt(children)
						closeBuilt(groups[:i])
						return nil, fmt.Errorf("oblivext: shard %d replica %d: %w", i, j, err)
					}
					if nc.BlockSize() != innerB {
						nc.Close()
						closeBuilt(children)
						closeBuilt(groups[:i])
						return nil, fmt.Errorf("oblivext: shard %d replica %d server block size %d != %s",
							i, j, nc.BlockSize(), wantB(cfg.BlockSize, innerB))
					}
					c.netClients = append(c.netClients, nc)
					children[j] = wrapNet(nc)
				} else {
					children[j] = wrapNet(extmem.NewMemStore(perShard, innerB))
				}
			}
			grp, err := replica.New(children, replica.Options{HedgeAfter: cfg.HedgeAfter})
			if err != nil {
				closeBuilt(children)
				closeBuilt(groups[:i])
				return nil, err
			}
			c.replicated = append(c.replicated, grp)
			groups[i] = grp
		}
		if shards > 1 {
			sh, err := shard.New(groups)
			if err != nil {
				closeBuilt(groups)
				return nil, err
			}
			c.sharded = sh
			store = sh
			if latency {
				c.net = sh
			}
		} else {
			store = groups[0]
		}
	} else if cfg.NumShards > 1 || len(cfg.ShardPaths) > 0 || len(cfg.ShardURLs) > 0 {
		if cfg.Path != "" {
			return nil, errors.New("oblivext: with NumShards > 1 use ShardPaths, not Path")
		}
		perShard := extmem.CeilDiv(cfg.StartBlocks, cfg.NumShards)
		children := make([]extmem.BlockStore, cfg.NumShards)
		closeBuilt := func(n int) {
			for _, ch := range children[:n] {
				ch.Close()
			}
		}
		for i := range children {
			switch {
			case len(cfg.ShardURLs) > 0 && cfg.ShardURLs[i] != "":
				nc, err := netstore.Dial(cfg.ShardURLs[i], netOpts)
				if err != nil {
					closeBuilt(i)
					return nil, err
				}
				if nc.BlockSize() != innerB {
					nc.Close()
					closeBuilt(i)
					return nil, fmt.Errorf("oblivext: shard %d server block size %d != %s", i, nc.BlockSize(), wantB(cfg.BlockSize, innerB))
				}
				c.netClients = append(c.netClients, nc)
				children[i] = wrapNet(nc)
			case len(cfg.ShardPaths) > 0 && cfg.ShardPaths[i] != "":
				fs, err := extmem.NewFileStore(cfg.ShardPaths[i], perShard, innerB)
				if err != nil {
					closeBuilt(i)
					return nil, err
				}
				children[i] = wrapNet(fs)
			default:
				children[i] = wrapNet(extmem.NewMemStore(perShard, innerB))
			}
		}
		sh, err := shard.New(children)
		if err != nil {
			closeBuilt(len(children))
			return nil, err
		}
		c.sharded = sh
		store = sh
		if latency {
			c.net = sh // critical-path model over the per-shard latencies
		}
	} else if cfg.URL != "" {
		nc, err := netstore.Dial(cfg.URL, netOpts)
		if err != nil {
			return nil, err
		}
		if nc.BlockSize() != innerB {
			nc.Close()
			return nil, fmt.Errorf("oblivext: server block size %d != %s", nc.BlockSize(), wantB(cfg.BlockSize, innerB))
		}
		c.netClients = []*netstore.Client{nc}
		store = wrapNet(nc)
	} else if cfg.Path != "" {
		fs, err := extmem.NewFileStore(cfg.Path, cfg.StartBlocks, innerB)
		if err != nil {
			return nil, err
		}
		store = wrapNet(fs)
	} else {
		store = wrapNet(extmem.NewMemStore(cfg.StartBlocks, innerB))
	}
	if latency && c.net == nil {
		c.net = store.(extmem.NetModel)
	}
	// Alice-side encryption is the top of the store stack, directly under
	// the Disk: everything below — latency models, the sharded fan-out, the
	// wire — only ever handles sealed blocks.
	if enc != nil {
		cs, err := extmem.NewCryptStore(store, enc, cfg.BlockSize)
		if err != nil {
			store.Close()
			return nil, err
		}
		cs.SetWorkers(cfg.Workers)
		c.crypt = cs
		store = cs
	}
	env := extmem.NewEnvOn(store, cfg.CacheWords, cfg.Seed)
	env.Workers = cfg.Workers
	env.D.SetMaxBatch(cfg.MaxBatchBlocks)
	// A network backend bounds how many blocks one request may carry; cap
	// the Disk's vectored batches to the tightest wire limit so a batch can
	// never be rejected for size. Splitting only regroups round trips — the
	// per-block trace Bob sees is unchanged.
	if len(c.netClients) > 0 {
		wireCap := c.netClients[0].MaxBatchBlocks()
		for _, nc := range c.netClients[1:] {
			if m := nc.MaxBatchBlocks(); m < wireCap {
				wireCap = m
			}
		}
		if cfg.MaxBatchBlocks == 0 || cfg.MaxBatchBlocks > wireCap {
			env.D.SetMaxBatch(wireCap)
		}
	}
	env.Prefetch = cfg.Prefetch
	c.env, c.store = env, store
	return c, nil
}

// wantB renders the expected backend block size for a mismatch error,
// explaining the +2 sealed footprint when encryption is on.
func wantB(blockSize, innerB int) string {
	if innerB == blockSize {
		return fmt.Sprintf("BlockSize %d", blockSize)
	}
	return fmt.Sprintf("sealed block size %d (BlockSize %d + %d envelope elements; run obstore with -b %d)",
		innerB, blockSize, innerB-blockSize, innerB)
}

// Close releases the backing store.
func (c *Client) Close() error { return c.store.Close() }

// IOStats counts block I/Os — the quantity all of the paper's bounds are
// stated in — and the round trips they were batched into, the quantity
// that dominates wall-clock time when Bob is remote.
//
// Memory model: the counters are maintained by the single-goroutine Disk
// layer, so IOStats snapshots are only meaningful from the goroutine
// driving the Client. Store-level counters (the latency model, per-shard
// stats) are updated concurrently by the fan-out and prefetch goroutines
// under the stores' internal locks; every Client method that reads them
// (Stats, ModeledNetworkTime, ShardStats) is called after those goroutines
// have been joined, so the values it returns are settled totals, not
// in-flight snapshots.
type IOStats struct {
	Reads  int64
	Writes int64
	// RoundTrips counts store interactions. With vectored I/O
	// (MaxBatchBlocks != 1) one round trip moves many blocks, so
	// RoundTrips can be far below Reads+Writes. Write-backs may also be
	// deferred and grouped: an ORAM access reads each probed bucket as one
	// interaction but buffers every write-back and flushes them as a
	// single grouped interaction at the end of the access, so its Writes
	// advance by beta per live level while RoundTrips advances by one.
	// Grouping and deferral never change the per-block trace — Reads,
	// Writes, and the recorded (kind, address) sequence are identical to
	// the scalar path's.
	RoundTrips int64
	// BytesSealed and BytesOpened account the client-side crypto: total
	// ciphertext bytes produced by writes and verified+decrypted by reads
	// (envelope included). Zero without EncryptionKey; benchmarks report
	// them as the crypto-overhead line.
	BytesSealed int64
	BytesOpened int64
}

// Total returns reads plus writes.
func (s IOStats) Total() int64 { return s.Reads + s.Writes }

// Sub returns s - o, field by field: the delta between two snapshots, for
// attributing I/O to a phase without resetting the lifetime counters.
func (s IOStats) Sub(o IOStats) IOStats {
	return IOStats(extmem.Stats(s).Sub(extmem.Stats(o)))
}

// Stats returns cumulative I/O counters. The Disk's Stats already folds in
// the crypto byte counters, so this is a whole-struct conversion: the two
// types are field-for-field identical by construction, and a counter added
// to one without the other is a compile error — the snapshot can never
// silently drop a field again (TestIOStatsFullCopy pins the mirror).
func (c *Client) Stats() IOStats {
	return IOStats(c.env.D.Stats())
}

// ResetStats zeroes the I/O counters, including the crypto byte counters,
// the latency model's round-trip and modeled-time counters, the per-shard
// counters, and the measured network counters when configured.
func (c *Client) ResetStats() {
	c.env.D.ResetStats() // resets the sealing store's byte counters too
	if c.sharded != nil {
		c.sharded.ResetNetStats() // resets the per-shard latency models too
	} else if len(c.replicated) > 0 {
		c.replicated[0].ResetNetStats() // the single replica group and its children
	} else if c.net != nil {
		c.net.ResetNetStats()
	}
	for _, nc := range c.netClients {
		nc.ResetNetStats()
	}
}

// ModeledNetworkTime returns the total network delay the latency model has
// charged (zero when SimulatedRTT/SimulatedPerBlock are unset). With
// NumShards > 1 this is the critical path: per interaction, the slowest
// shard's delay — the wall-clock a client waiting on K parallel responses
// experiences — rather than the sum over shards.
func (c *Client) ModeledNetworkTime() time.Duration {
	if c.net == nil {
		return 0
	}
	return c.net.ModeledTime()
}

// SerialModeledNetworkTime returns what the same traffic would have cost
// with the shards contacted one after another — each participating shard
// still charges its own RTT, so this isolates the parallel-fan-out win;
// for a single-server baseline compare against a NumShards=1 run, which
// pays one RTT per interaction. Without sharding it equals
// ModeledNetworkTime.
func (c *Client) SerialModeledNetworkTime() time.Duration {
	if c.sharded != nil {
		return c.sharded.SerialModeledTime()
	}
	return c.ModeledNetworkTime()
}

// NumShards returns how many backends the store is striped across (1 when
// unsharded).
func (c *Client) NumShards() int {
	if c.sharded == nil {
		return 1
	}
	return c.sharded.NumShards()
}

// ShardIOStats is one shard's view of the traffic it served.
type ShardIOStats struct {
	// RoundTrips counts the sub-batches dispatched to this shard (each one
	// store interaction on that backend).
	RoundTrips int64
	// BlocksMoved counts blocks transferred to or from this shard.
	BlocksMoved int64
	// ModeledTime is the delay this shard's latency model charged (zero
	// without SimulatedRTT/SimulatedPerBlock).
	ModeledTime time.Duration
}

// NetIOStats is the measured — not modeled — cost of one network backend's
// traffic: real wall-clock waits on actual HTTP requests, retries and
// backoff included.
type NetIOStats struct {
	// Requests counts completed store interactions (retries of one request
	// do not add to it).
	Requests int64
	// Attempts counts HTTP requests actually put on the wire, retries
	// included; Attempts - Requests is the wasted wire traffic.
	Attempts int64
	// Retries counts replays forced by transport failures, timeouts, or 5xx
	// responses; zero on a healthy network.
	Retries int64
	// ReplayHits counts responses the server answered from its replay-
	// suppression window instead of re-executing — retransmissions whose
	// first execution's response was lost. Always <= Retries.
	ReplayHits int64
	// BlocksMoved counts blocks transferred in completed interactions.
	BlocksMoved int64
	// MeasuredTime is the wall-clock wait summed over interactions, first
	// attempt through final response.
	MeasuredTime time.Duration
	// MinRTT and MaxRTT are the fastest and slowest completed interactions.
	MinRTT, MaxRTT time.Duration
	// P50, P95, and P99 are per-interaction latency percentile upper bounds
	// from a fixed-bucket histogram (zero when no interactions completed).
	P50, P95, P99 time.Duration
}

// MeasuredNetworkStats returns per-server measured network counters — one
// entry per network-backed shard in shard order, a single entry with URL —
// or nil when no network backend is configured. They sit alongside the
// modeled figures: ModeledNetworkTime is what the latency model charged,
// MeasuredTime is what the wire actually took.
func (c *Client) MeasuredNetworkStats() []NetIOStats {
	if len(c.netClients) == 0 {
		return nil
	}
	out := make([]NetIOStats, len(c.netClients))
	for i, nc := range c.netClients {
		s := nc.NetStats()
		out[i] = NetIOStats{Requests: s.Requests, Attempts: s.Attempts, Retries: s.Retries,
			ReplayHits: s.ReplayHits, BlocksMoved: s.BlocksMoved,
			MeasuredTime: s.Total, MinRTT: s.Min, MaxRTT: s.Max,
			P50: s.Hist.P50(), P95: s.Hist.P95(), P99: s.Hist.P99()}
	}
	return out
}

// MeasuredNetworkTime returns the total wall-clock time spent waiting on
// network requests, summed over servers (zero without a network backend).
// With a sharded fan-out the per-server waits overlap, so elapsed time can
// be lower than this sum.
func (c *Client) MeasuredNetworkTime() time.Duration {
	var total time.Duration
	for _, nc := range c.netClients {
		total += nc.NetStats().Total
	}
	return total
}

// ReplicaIOStats is one replica's view of the traffic and faults it saw.
type ReplicaIOStats struct {
	// RoundTrips counts sub-batches dispatched to this replica; BlocksMoved
	// counts the blocks they carried. Replication overhead shows up here:
	// the per-replica BlocksMoved sum exceeds the logical Stats().Total()
	// because writes fan out to every live replica.
	RoundTrips  int64
	BlocksMoved int64
	// ModeledTime is the delay this replica's latency model charged.
	ModeledTime time.Duration
	// Failures counts failed sub-batches; Failovers counts read sub-batches
	// rerouted away from this replica after a failure.
	Failures  int64
	Failovers int64
	// Hedges counts hedged reads launched against this replica as the
	// secondary; HedgeWins counts the ones it won.
	Hedges    int64
	HedgeWins int64
	// Repairs counts read-repair writes applied to this replica; Dirty is
	// how many addresses are currently known stale on it.
	Repairs int64
	Dirty   int
	// State is the replica's circuit-breaker state: "closed" (healthy),
	// "open" (skipped), or "half-open" (probing).
	State string
}

// NumReplicas returns R, the replication factor (1 when unreplicated).
func (c *Client) NumReplicas() int {
	if len(c.replicated) == 0 {
		return 1
	}
	return c.replicated[0].NumReplicas()
}

// ReplicaStats returns per-replica traffic and fault counters, one slice
// per shard group in shard order (nil when unreplicated).
func (c *Client) ReplicaStats() [][]ReplicaIOStats {
	if len(c.replicated) == 0 {
		return nil
	}
	out := make([][]ReplicaIOStats, len(c.replicated))
	for i, grp := range c.replicated {
		ss := grp.ReplicaStats()
		out[i] = make([]ReplicaIOStats, len(ss))
		for j, s := range ss {
			out[i][j] = ReplicaIOStats{RoundTrips: s.RoundTrips, BlocksMoved: s.BlocksMoved,
				ModeledTime: s.ModeledTime, Failures: s.Failures, Failovers: s.Failovers,
				Hedges: s.Hedges, HedgeWins: s.HedgeWins, Repairs: s.Repairs,
				Dirty: s.Dirty, State: s.State}
		}
	}
	return out
}

// ReplicaReadLatency returns an upper bound on the q-quantile of read-leg
// flight times observed at the replica layer (for hedged reads, the winning
// leg's own launch-to-completion time, excluding the hedge wait), taken as
// the worst over shard groups. Zero when unreplicated or before any read.
// This is the healthy-path latency estimate the adaptive hedge delay
// derives its P95 from; bench E22 reports its P99 hedged vs unhedged.
func (c *Client) ReplicaReadLatency(q float64) time.Duration {
	var worst time.Duration
	for _, grp := range c.replicated {
		if d := grp.ReadLatencyQuantile(q); d > worst {
			worst = d
		}
	}
	return worst
}

// ReplicaEvents returns the replica layer's decision log — breaker
// transitions, failovers, repairs — across all shard groups, each line
// prefixed with its shard. Under a fixed fault schedule the log is a
// function of the fault events and the public geometry alone, never of the
// data; the chaos tests replay a schedule against different inputs and
// assert the logs are identical.
func (c *Client) ReplicaEvents() []string {
	var out []string
	for i, grp := range c.replicated {
		for _, ev := range grp.Events() {
			out = append(out, fmt.Sprintf("shard%d %s", i, ev))
		}
	}
	return out
}

// ShardStats returns per-shard traffic counters (nil when unsharded). The
// blocks moved sum to Stats().Total(); balanced entries are the round-robin
// striping doing its job.
func (c *Client) ShardStats() []ShardIOStats {
	if c.sharded == nil {
		return nil
	}
	ss := c.sharded.ShardStats()
	out := make([]ShardIOStats, len(ss))
	for i, s := range ss {
		out[i] = ShardIOStats{RoundTrips: s.RoundTrips, BlocksMoved: s.BlocksMoved, ModeledTime: s.ModeledTime}
	}
	return out
}

// EnableTrace starts recording the adversary's view (block addresses).
// keep bounds how many operations are retained verbatim; the running hash
// covers the full trace regardless.
func (c *Client) EnableTrace(keep int) {
	c.env.D.SetRecorder(trace.NewRecorder(keep))
}

// TraceSummary fingerprints the recorded trace: two runs with the same
// seed and geometry produce equal summaries regardless of the data values.
type TraceSummary struct {
	Len  int64
	Hash uint64
}

// TraceSummary returns the current trace fingerprint.
func (c *Client) TraceSummary() TraceSummary {
	s := c.env.D.Recorder().Summarize()
	return TraceSummary{Len: s.Len, Hash: s.Hash}
}

// CacheHighWater reports the peak private-memory use in elements; it never
// exceeds Config.CacheWords plus a small constant.
func (c *Client) CacheHighWater() int { return c.env.Cache.HighWater() }

// EnableSpans turns on phase spans: every subsequent operation opens a
// hierarchical span tree (engine rounds, core passes, ORAM access/rebuild
// phases) carrying per-span deltas of wall time, Reads/Writes/RoundTrips,
// and the crypto byte counters. Off by default and free when off; the
// per-block trace the server sees is bit-identical either way (spans are
// client-side bookkeeping, no I/O).
func (c *Client) EnableSpans() {
	if c.env.Obs == nil {
		c.env.EnableObs()
	}
}

// DisableSpans turns phase spans off and drops the collected tree.
func (c *Client) DisableSpans() { c.env.DisableObs() }

// ResetSpans drops the collected span tree (counters untouched). Pair it
// with ResetStats when measuring a window: spans collected across a stats
// reset would carry deltas from two different epochs.
func (c *Client) ResetSpans() { c.env.Obs.Reset() }

// Spans returns the collected root spans (nil with spans disabled).
func (c *Client) Spans() []*obs.Span { return c.env.Obs.Roots() }

// SpanTree renders the collected spans as a human-readable tree, one line
// per phase with wall time, I/O deltas, and measured-vs-predicted I/O
// where an engine predictor applies.
func (c *Client) SpanTree() string { return obs.RenderTree(c.env.Obs.Roots()) }

// WriteChromeTrace writes the collected spans as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (c *Client) WriteChromeTrace(w io.Writer) error {
	return obs.WriteChromeTrace(w, c.env.Obs.Roots())
}

// EnableAudit turns on the live obliviousness auditor (implies
// EnableSpans): audited spans fold their normalized access trace into a
// running fingerprint, compared at span end against the golden fingerprint
// recorded for the same (op, engine, n, B, M, placement) key. With learn
// true the first observation of each key becomes golden; with learn false
// load goldens first (LoadFile) and every divergence — including an
// unknown key — is recorded as a violation. Soundness presumes reproducible
// runs: equal Config.Seed and operation sequence, the regime the e2e
// adversary tests pin offline and this monitor enforces live.
func (c *Client) EnableAudit(learn bool) *obs.Auditor {
	c.EnableSpans()
	a := obs.NewAuditor(learn)
	c.env.Obs.SetAuditor(a)
	return a
}

// Array is an outsourced array of records held on the server in blocks.
type Array struct {
	c   *Client
	arr extmem.Array
	n   int64
}

// Store uploads records to the server, one element per record, padding the
// final block. The upload is a sequential write scan moving up to
// M/B−O(1) blocks per round trip.
func (c *Client) Store(recs []Record) (*Array, error) {
	b := c.env.B()
	nBlocks := extmem.CeilDiv(len(recs), b)
	if nBlocks == 0 {
		nBlocks = 1
	}
	arr := c.env.D.Alloc(nBlocks)
	sp := c.env.Obs.Start("store")
	sp.SetAttrInt("blocks", int64(nBlocks))
	sp.Audit(c.auditKey("store", nBlocks, arr.Base()))
	defer c.env.Obs.End(sp)
	k := c.env.ScanBatchN(1, nBlocks)
	buf := c.env.Cache.Buf(k * b)
	idx := 0
	for lo := 0; lo < nBlocks; lo += k {
		hi := min(lo+k, nBlocks)
		for t := 0; t < (hi-lo)*b; t++ {
			if idx < len(recs) {
				buf[t] = extmem.Element{Key: recs[idx].Key, Val: recs[idx].Val,
					Pos: uint64(idx), Flags: extmem.FlagOccupied}
				idx++
			} else {
				buf[t] = extmem.Element{}
			}
		}
		arr.WriteRange(lo, hi, buf[:(hi-lo)*b])
	}
	c.env.Cache.Free(buf)
	return &Array{c: c, arr: arr, n: int64(len(recs))}, nil
}

// Len returns the number of records stored.
func (a *Array) Len() int64 { return a.n }

// Blocks returns the array footprint in blocks.
func (a *Array) Blocks() int { return a.arr.Len() }

// Records downloads the occupied records in array order, reading up to
// M/B−O(1) blocks per round trip.
func (a *Array) Records() ([]Record, error) {
	sp := a.c.env.Obs.Start("records")
	sp.SetAttrInt("blocks", int64(a.arr.Len()))
	sp.Audit(a.c.auditKey("records", a.arr.Len(), a.arr.Base()))
	defer a.c.env.Obs.End(sp)
	b := a.c.env.B()
	k := a.c.env.ScanBatchN(1, a.arr.Len())
	buf := a.c.env.Cache.Buf(k * b)
	out := make([]Record, 0, a.n)
	for lo := 0; lo < a.arr.Len(); lo += k {
		hi := min(lo+k, a.arr.Len())
		a.arr.ReadRange(lo, hi, buf[:(hi-lo)*b])
		for _, e := range buf[:(hi-lo)*b] {
			if e.Occupied() {
				out = append(out, Record{Key: e.Key, Val: e.Val})
			}
		}
	}
	a.c.env.Cache.Free(buf)
	return out, nil
}

// Sort sorts the array by key (ties broken by insertion order) with the
// engine named by Config.Sorter — by default the paper's randomized
// oblivious sort: O((N/B)·log_{M/B}(N/B)) I/Os and a data-independent
// trace, succeeding with high probability (a rare internal failure returns
// an error with the array unchanged in distribution-visible ways but
// possibly permuted). The deterministic engines (bitonic, zigzag) never
// return an error; bucket declares and retries internal overflows on fresh
// randomness, falling back to zigzag, so it never returns an error either.
func (a *Array) Sort() error {
	engine := a.c.sortEngine(a.arr.Len())
	sp := a.c.env.Obs.Start("sort")
	sp.SetAttr("engine", engine)
	sp.SetAttrInt("blocks", int64(a.arr.Len()))
	sp.Audit(a.c.auditKey("sort/"+engine, a.arr.Len(), a.arr.Base()))
	defer a.c.env.Obs.End(sp)
	if engine == obsort.EngineRandomized {
		return core.Sort(a.c.env, a.arr, core.SortParams{})
	}
	obsort.PickSorter(engine)(a.c.env, a.arr, obsort.ByKey)
	return nil
}

// auditKey names an operation together with every public input that
// determines its trace — the (op, engine, n, B, M, placement) geometry the
// auditor keys golden fingerprints by.
func (c *Client) auditKey(op string, nBlocks, base int) string {
	return fmt.Sprintf("%s/n=%d/B=%d/M=%d/base=%d", op, nBlocks, c.env.B(), c.env.M, base)
}

// sortEngine resolves the configured Sorter name to a concrete engine for
// an array of nBlocks blocks. "auto" runs the public selection policy with
// the round-trip cost model when the store is network-backed and the block-
// volume model otherwise; the inputs are all public (geometry and backend
// kind), so the resolved engine — and with it the trace — is independent of
// the data.
func (c *Client) sortEngine(nBlocks int) string {
	switch c.sorter {
	case "", obsort.EngineRandomized:
		return obsort.EngineRandomized
	case obsort.EngineAuto:
		backend := "mem"
		if c.netBacked {
			backend = "net"
		}
		return obsort.Pick(nBlocks, c.env.B(), c.env.M, backend)
	}
	return c.sorter
}

// SortDeterministic sorts with the deterministic oblivious sort (Lemma 2's
// role, realized as external bitonic): never fails, one log factor more
// I/Os at scale.
func (a *Array) SortDeterministic() {
	sp := a.c.env.Obs.Start("sort")
	sp.SetAttr("engine", obsort.EngineBitonic)
	sp.SetAttrInt("blocks", int64(a.arr.Len()))
	sp.Audit(a.c.auditKey("sort/"+obsort.EngineBitonic, a.arr.Len(), a.arr.Base()))
	defer a.c.env.Obs.End(sp)
	obsort.Bitonic(a.c.env, a.arr, obsort.ByKey)
}

// Select returns the k-th smallest record (1-based, by key with insertion-
// order ties) in O(N/B) I/Os without modifying or revealing anything about
// the data (Theorem 13).
func (a *Array) Select(k int64) (Record, error) {
	sp := a.c.env.Obs.Start("select")
	sp.SetAttrInt("blocks", int64(a.arr.Len()))
	sp.Audit(a.c.auditKey("select", a.arr.Len(), a.arr.Base()))
	defer a.c.env.Obs.End(sp)
	e, err := core.Select(a.c.env, a.arr, k)
	if err != nil {
		return Record{}, err
	}
	return Record{Key: e.Key, Val: e.Val}, nil
}

// Quantiles returns the q quantile records (ranks round(i·N/(q+1))) in
// O(N/B) I/Os (Theorem 17).
func (a *Array) Quantiles(q int) ([]Record, error) {
	sp := a.c.env.Obs.Start("quantiles")
	sp.SetAttrInt("blocks", int64(a.arr.Len()))
	sp.SetAttrInt("q", int64(q))
	sp.Audit(a.c.auditKey(fmt.Sprintf("quantiles/q=%d", q), a.arr.Len(), a.arr.Base()))
	defer a.c.env.Obs.End(sp)
	es, err := core.Quantiles(a.c.env, a.arr, q)
	if err != nil {
		return nil, err
	}
	out := make([]Record, len(es))
	for i, e := range es {
		out[i] = Record{Key: e.Key, Val: e.Val}
	}
	return out, nil
}

// Mark applies pred to every record privately (a sequential re-encryption
// scan: the server cannot tell which records matched) and returns the
// number marked.
func (a *Array) Mark(pred func(Record) bool) (int64, error) {
	sp := a.c.env.Obs.Start("mark")
	sp.SetAttrInt("blocks", int64(a.arr.Len()))
	sp.Audit(a.c.auditKey("mark", a.arr.Len(), a.arr.Base()))
	defer a.c.env.Obs.End(sp)
	b := a.c.env.B()
	k := a.c.env.ScanBatchN(1, a.arr.Len())
	buf := a.c.env.Cache.Buf(k * b)
	var marked int64
	for lo := 0; lo < a.arr.Len(); lo += k {
		hi := min(lo+k, a.arr.Len())
		a.arr.ReadRange(lo, hi, buf[:(hi-lo)*b])
		for t := range buf[:(hi-lo)*b] {
			buf[t].Flags &^= extmem.FlagMarked
			if buf[t].Occupied() && pred(Record{Key: buf[t].Key, Val: buf[t].Val}) {
				buf[t].Flags |= extmem.FlagMarked
				marked++
			}
		}
		a.arr.WriteRange(lo, hi, buf[:(hi-lo)*b])
	}
	a.c.env.Cache.Free(buf)
	return marked, nil
}

// CompactTight produces a new array holding exactly the records marked by
// the last Mark call, in their original order, using tight order-preserving
// compaction (Lemma 3 + Theorem 4/6). capacity bounds the marked count; it
// is public (the server sees the output size), so choose it from workload
// knowledge, not the data.
func (a *Array) CompactTight(capacity int64) (*Array, error) {
	sp := a.c.env.Obs.Start("compact-tight")
	sp.SetAttrInt("blocks", int64(a.arr.Len()))
	sp.Audit(a.c.auditKey(fmt.Sprintf("compact-tight/cap=%d", capacity), a.arr.Len(), a.arr.Base()))
	defer a.c.env.Obs.End(sp)
	rCap := extmem.CeilDiv(int(capacity), a.c.env.B()) + 1
	out, marked, err := core.CompactMarkedTight(a.c.env, a.arr, rCap)
	if err != nil {
		return nil, err
	}
	return &Array{c: a.c, arr: out, n: marked}, nil
}

// CompactLoose produces a new array of 5×capacity blocks holding the marked
// records scattered among empties, in O(N/B) I/Os (Theorem 8). Order is
// not preserved.
func (a *Array) CompactLoose(capacity int64) (*Array, error) {
	sp := a.c.env.Obs.Start("compact-loose")
	sp.SetAttrInt("blocks", int64(a.arr.Len()))
	sp.Audit(a.c.auditKey(fmt.Sprintf("compact-loose/cap=%d", capacity), a.arr.Len(), a.arr.Base()))
	defer a.c.env.Obs.End(sp)
	cons, marked := core.Consolidate(a.c.env, a.arr)
	rCap := extmem.CeilDiv(int(capacity), a.c.env.B()) + 1
	out, _, err := core.CompactBlocksLoose(a.c.env, cons, rCap, core.LooseParams{})
	if err != nil {
		return nil, err
	}
	return &Array{c: a.c, arr: out, n: marked}, nil
}

// ORAM is an oblivious RAM over fixed-size word blocks: arbitrary reads
// and writes whose trace reveals nothing about the access pattern.
type ORAM struct {
	o *oram.ORAM
}

// NewORAM creates an oblivious RAM of n logical blocks of BlockSize words
// each, zero-initialized. Level rebuilds sort with the engine named by
// Config.Sorter; with "" or "auto" each rebuild auto-selects from its own
// geometry (a public function of n, B, and M, so the trace stays
// deterministic in (n, B, t, seed)).
func (c *Client) NewORAM(n int) (*ORAM, error) {
	opts := oram.Options{}
	switch c.sorter {
	case "", obsort.EngineAuto:
		// nil Sorter: the oram package's per-rebuild auto-selection.
		opts.SorterName = obsort.EngineAuto
	case obsort.EngineRandomized:
		opts.Sorter = core.RandomizedSorter
		opts.SorterName = obsort.EngineRandomized
	default:
		opts.Sorter = obsort.PickSorter(c.sorter)
		opts.SorterName = c.sorter
	}
	o, err := oram.New(c.env, n, opts)
	if err != nil {
		return nil, err
	}
	return &ORAM{o: o}, nil
}

// NewORAMWithRandomizedSort creates an ORAM whose level rebuilds use the
// paper's randomized optimal sort instead of the deterministic one — the
// configuration whose amortized overhead improvement is the paper's
// headline ORAM claim.
func (c *Client) NewORAMWithRandomizedSort(n int) (*ORAM, error) {
	o, err := oram.New(c.env, n, oram.Options{Sorter: core.RandomizedSorter, SorterName: obsort.EngineRandomized})
	if err != nil {
		return nil, err
	}
	return &ORAM{o: o}, nil
}

// Read returns the payload of logical block i.
func (r *ORAM) Read(i int) ([]uint64, error) { return r.o.Read(i) }

// Write replaces the payload of logical block i.
func (r *ORAM) Write(i int, words []uint64) error { return r.o.Write(i, words) }

// Size returns the number of logical blocks.
func (r *ORAM) Size() int { return r.o.N() }
