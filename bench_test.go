// Benchmarks: one testing.B entry per experiment in DESIGN.md's index.
// They report both wall time and, via custom metrics, the block-I/O counts
// the paper's theorems bound (io/block is the figure of merit; wall time on
// the in-memory store is a proxy for constant factors only).
//
// cmd/obench produces the full parameter sweeps; these benchmarks pin one
// representative configuration per experiment so `go test -bench=.` tracks
// regressions.
package oblivext

import (
	"testing"

	"oblivext/internal/core"
	"oblivext/internal/emsort"
	"oblivext/internal/extmem"
	"oblivext/internal/iblt"
	"oblivext/internal/obsort"
	"oblivext/internal/oram"
	"oblivext/internal/trace"
	"oblivext/internal/workload"
)

// benchEnv builds a fresh instrumented environment per iteration batch.
func benchEnv(blocks, b, m int, seed uint64) *extmem.Env {
	return extmem.NewEnv(blocks, b, m, seed)
}

func fillArr(env *extmem.Env, nBlocks, nKeys int, seed uint64) extmem.Array {
	a := env.D.Alloc(nBlocks)
	keys, err := workload.Keys(workload.Uniform, nKeys, seed)
	if err != nil {
		panic(err)
	}
	if err := workload.Fill(a, keys); err != nil {
		panic(err)
	}
	return a
}

func reportIO(b *testing.B, env *extmem.Env, blocks int) {
	st := env.D.Stats()
	b.ReportMetric(float64(st.Total())/float64(b.N), "io/op")
	b.ReportMetric(float64(st.Total())/float64(b.N)/float64(blocks), "io/block")
}

// BenchmarkE1IBLT inserts and lists n pairs at the paper's 3× table load.
func BenchmarkE1IBLT(b *testing.B) {
	const n = 1024
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := iblt.New(3*n, 4, 1, uint64(i))
		for k := 0; k < n; k++ {
			t.Insert(uint64(k), []uint64{uint64(k)})
		}
		if _, ok := t.ListEntries(); !ok {
			b.Fatal("listEntries failed")
		}
	}
}

// BenchmarkE2Consolidate measures Lemma 3's single scan.
func BenchmarkE2Consolidate(b *testing.B) {
	const nBlocks = 2048
	env := benchEnv(8*nBlocks, 8, 64, 1)
	a := fillArr(env, nBlocks, nBlocks*8, 1)
	if err := workload.MarkFraction(a, nBlocks*2, 3); err != nil {
		b.Fatal(err)
	}
	env.D.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mark := env.D.Mark()
		core.Consolidate(env, a)
		env.D.Release(mark)
	}
	reportIO(b, env, nBlocks)
}

// BenchmarkE3SparseCompact measures Theorem 4's IBLT compaction.
func BenchmarkE3SparseCompact(b *testing.B) {
	const nBlocks = 512
	env := benchEnv(16*nBlocks, 8, 1<<18, 2)
	a := env.D.Alloc(nBlocks)
	occ := make([]int, nBlocks/16)
	for i := range occ {
		occ[i] = i * 16
	}
	buf := make([]extmem.Element, 8)
	for j := 0; j < nBlocks; j++ {
		for t := range buf {
			buf[t] = extmem.Element{}
			if j%16 == 0 {
				buf[t] = extmem.Element{Key: uint64(j), Pos: uint64(j*8 + t), Flags: extmem.FlagOccupied}
			}
		}
		a.Write(j, buf)
	}
	env.D.ResetStats()
	b.ResetTimer()
	fails := 0
	for i := 0; i < b.N; i++ {
		mark := env.D.Mark()
		if _, _, err := core.CompactBlocksSparse(env, a, nBlocks/16, core.SparseParams{}); err != nil {
			fails++ // Monte-Carlo failure (Lemma 1); rate checked below
		}
		env.D.Release(mark)
	}
	if fails*10 > b.N {
		b.Fatalf("sparse compaction failed %d/%d times", fails, b.N)
	}
	reportIO(b, env, nBlocks)
}

// BenchmarkE4Butterfly measures Theorem 6's windowed routing network.
func BenchmarkE4Butterfly(b *testing.B) {
	const nBlocks = 2048
	env := benchEnv(4*nBlocks, 8, 512, 3)
	a := fillArr(env, nBlocks, nBlocks*8/2, 3)
	env.D.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.CompactBlocksTight(env, a, core.PredOccupied, 0)
	}
	reportIO(b, env, nBlocks)
}

// BenchmarkE4ButterflyNaive is the ablation twin: one level per pass.
func BenchmarkE4ButterflyNaive(b *testing.B) {
	const nBlocks = 2048
	env := benchEnv(4*nBlocks, 8, 512, 3)
	a := fillArr(env, nBlocks, nBlocks*8/2, 3)
	env.D.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.CompactBlocksTight(env, a, core.PredOccupied, 1)
	}
	reportIO(b, env, nBlocks)
}

// BenchmarkE5LooseCompact measures Theorem 8's linear compaction.
func BenchmarkE5LooseCompact(b *testing.B) {
	const nBlocks = 2048
	env := benchEnv(32*nBlocks, 8, 512, 4)
	a := env.D.Alloc(nBlocks)
	buf := make([]extmem.Element, 8)
	for j := 0; j < nBlocks; j++ {
		for t := range buf {
			buf[t] = extmem.Element{}
			if j%8 == 0 {
				buf[t] = extmem.Element{Key: uint64(j), Pos: uint64(j*8 + t), Flags: extmem.FlagOccupied}
			}
		}
		a.Write(j, buf)
	}
	env.D.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mark := env.D.Mark()
		if _, _, err := core.CompactBlocksLoose(env, a, nBlocks/4, core.LooseParams{}); err != nil {
			b.Fatal(err)
		}
		env.D.Release(mark)
	}
	reportIO(b, env, nBlocks)
}

// BenchmarkE6LogStar measures Theorem 9's log*-round compaction.
func BenchmarkE6LogStar(b *testing.B) {
	const nBlocks = 2048
	env := benchEnv(64*nBlocks, 8, 2048, 5)
	a := env.D.Alloc(nBlocks)
	buf := make([]extmem.Element, 8)
	for j := 0; j < nBlocks; j++ {
		for t := range buf {
			buf[t] = extmem.Element{}
			if j%8 == 0 {
				buf[t] = extmem.Element{Key: uint64(j), Pos: uint64(j*8 + t), Flags: extmem.FlagOccupied}
			}
		}
		a.Write(j, buf)
	}
	env.D.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mark := env.D.Mark()
		if _, _, _, err := core.CompactBlocksLogStar(env, a, nBlocks/4, core.LogStarParams{}); err != nil {
			b.Fatal(err)
		}
		env.D.Release(mark)
	}
	reportIO(b, env, nBlocks)
}

// BenchmarkE7Select measures Theorem 13's linear-I/O selection.
func BenchmarkE7Select(b *testing.B) {
	const nBlocks = 1024
	env := benchEnv(16*nBlocks, 8, 256, 6)
	a := fillArr(env, nBlocks, nBlocks*8, 6)
	env.D.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mark := env.D.Mark()
		if _, err := core.Select(env, a, int64(nBlocks*4)); err != nil {
			b.Fatal(err)
		}
		env.D.Release(mark)
	}
	reportIO(b, env, nBlocks)
}

// BenchmarkE7QuickSelect is the leaky baseline twin of E7.
func BenchmarkE7QuickSelect(b *testing.B) {
	const nBlocks = 1024
	env := benchEnv(16*nBlocks, 8, 256, 6)
	a := fillArr(env, nBlocks, nBlocks*8, 6)
	env.D.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mark := env.D.Mark()
		if _, err := emsort.QuickSelect(env, a, int64(nBlocks*4)); err != nil {
			b.Fatal(err)
		}
		env.D.Release(mark)
	}
	reportIO(b, env, nBlocks)
}

// BenchmarkE8Quantiles measures Theorem 17.
func BenchmarkE8Quantiles(b *testing.B) {
	const nBlocks = 1024
	env := benchEnv(32*nBlocks, 8, 256, 7)
	a := fillArr(env, nBlocks, nBlocks*8, 7)
	env.D.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mark := env.D.Mark()
		if _, err := core.Quantiles(env, a, 2); err != nil {
			b.Fatal(err)
		}
		env.D.Release(mark)
	}
	reportIO(b, env, nBlocks)
}

// BenchmarkE9Sort measures Theorem 21's randomized oblivious sort.
func BenchmarkE9Sort(b *testing.B) {
	const nBlocks = 512
	b.ResetTimer()
	var env *extmem.Env
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env = benchEnv(64*nBlocks, 8, 512, uint64(i))
		a := fillArr(env, nBlocks, nBlocks*8, 8)
		env.D.ResetStats()
		b.StartTimer()
		if err := core.Sort(env, a, core.SortParams{}); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		st := env.D.Stats()
		b.ReportMetric(float64(st.Total())/float64(nBlocks), "io/block")
		b.StartTimer()
	}
}

// BenchmarkE9SortBitonic is the Lemma 2 baseline twin of E9.
func BenchmarkE9SortBitonic(b *testing.B) {
	const nBlocks = 512
	env := benchEnv(4*nBlocks, 8, 512, 9)
	a := fillArr(env, nBlocks, nBlocks*8, 9)
	env.D.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obsort.Bitonic(env, a, obsort.ByKey)
	}
	reportIO(b, env, nBlocks)
}

// BenchmarkE9SortMerge is the non-oblivious optimal twin of E9.
func BenchmarkE9SortMerge(b *testing.B) {
	const nBlocks = 512
	env := benchEnv(4*nBlocks, 8, 512, 10)
	a := fillArr(env, nBlocks, nBlocks*8, 10)
	env.D.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mark := env.D.Mark()
		emsort.MergeSort(env, a, obsort.ByKey)
		env.D.Release(mark)
	}
	reportIO(b, env, nBlocks)
}

// BenchmarkE10ORAM measures the amortized cost of oblivious RAM accesses
// with deterministic-sort rebuilds (the paper's baseline configuration).
func BenchmarkE10ORAM(b *testing.B) {
	env := benchEnv(64, 8, 512, 11)
	o, err := oram.New(env, 64, oram.Options{})
	if err != nil {
		b.Fatal(err)
	}
	env.D.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Read(i % 64); err != nil {
			b.Fatal(err)
		}
	}
	st := env.D.Stats()
	b.ReportMetric(float64(st.Total())/float64(b.N), "io/access")
}

// BenchmarkE13TraceInvariance measures the fixed-trace property's cost: a
// full oblivious sort including trace recording.
func BenchmarkE13TraceInvariance(b *testing.B) {
	const nBlocks = 256
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env := benchEnv(64*nBlocks, 8, 256, 13)
		rec := traceRecorder()
		env.D.SetRecorder(rec)
		a := fillArr(env, nBlocks, nBlocks*8, uint64(i%3)) // vary the data
		b.StartTimer()
		if err := core.Sort(env, a, core.SortParams{}); err != nil {
			b.Fatal(err)
		}
	}
}

// traceRecorder builds a hash-only recorder for the benchmarks.
func traceRecorder() *trace.Recorder { return trace.NewRecorder(0) }
