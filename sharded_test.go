package oblivext

import (
	"os"
	"testing"
	"time"
)

// TestShardedTraceInvariance is the tentpole's safety contract at the public
// API level: for Sort, Select, and Mark+CompactTight, a client striped over
// K backends presents the identical per-logical-address trace and identical
// block I/O as the single-backend client — sharding partitions the trace
// across servers, it never changes it — and per-shard counters sum to the
// unsharded totals.
func TestShardedTraceInvariance(t *testing.T) {
	const n = 2000
	recs := mkRecords(n, 3)

	type op struct {
		name string
		run  func(t *testing.T, arr *Array)
	}
	ops := []op{
		{"Sort", func(t *testing.T, arr *Array) {
			if err := arr.Sort(); err != nil {
				t.Fatal(err)
			}
		}},
		{"Select", func(t *testing.T, arr *Array) {
			if _, err := arr.Select(n / 2); err != nil {
				t.Fatal(err)
			}
		}},
		{"CompactTight", func(t *testing.T, arr *Array) {
			if _, err := arr.Mark(func(r Record) bool { return r.Key%3 == 1 }); err != nil {
				t.Fatal(err)
			}
			if _, err := arr.CompactTight(n); err != nil {
				t.Fatal(err)
			}
		}},
	}

	for _, o := range ops {
		run := func(shards int) (TraceSummary, IOStats, []ShardIOStats) {
			c, err := New(Config{BlockSize: 8, CacheWords: 256, Seed: 19, NumShards: shards})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			c.EnableTrace(0)
			arr, err := c.Store(recs)
			if err != nil {
				t.Fatal(err)
			}
			o.run(t, arr)
			return c.TraceSummary(), c.Stats(), c.ShardStats()
		}
		flatTrace, flatStats, _ := run(1)
		shTrace, shStats, perShard := run(4)
		if flatTrace != shTrace {
			t.Errorf("%s: sharded trace %+v != unsharded %+v", o.name, shTrace, flatTrace)
		}
		if flatStats != shStats {
			t.Errorf("%s: sharded stats %+v != unsharded %+v", o.name, shStats, flatStats)
		}
		if len(perShard) != 4 {
			t.Fatalf("%s: ShardStats returned %d entries", o.name, len(perShard))
		}
		var blocks int64
		for _, s := range perShard {
			blocks += s.BlocksMoved
		}
		if blocks != flatStats.Total() {
			t.Errorf("%s: per-shard blocks sum %d, unsharded total %d", o.name, blocks, flatStats.Total())
		}
	}
}

// TestSingleShardPathIsFileBacked guards against ShardPaths being silently
// ignored at K=1: the named file must actually back the store.
func TestSingleShardPathIsFileBacked(t *testing.T) {
	path := t.TempDir() + "/shard0.dat"
	c, err := New(Config{BlockSize: 8, CacheWords: 256, NumShards: 1, ShardPaths: []string{path}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Store(mkRecords(100, 1)); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("shard file never created: %v", err)
	}
	if fi.Size() == 0 {
		t.Fatal("shard file empty — store not file-backed")
	}
}

// TestShardedCriticalPathSpeedup pins the E15 acceptance target's mechanism
// at a small scale: under a latency model where bandwidth matters, K=4
// shards answering in parallel cut the modeled network time to less than
// half of the single-backend cost for the same Sort, with the same trace.
func TestShardedCriticalPathSpeedup(t *testing.T) {
	run := func(shards int) (time.Duration, time.Duration, TraceSummary) {
		c, err := New(Config{
			BlockSize: 8, CacheWords: 512, Seed: 5, NumShards: shards,
			SimulatedRTT: 10 * time.Millisecond, SimulatedPerBlock: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.EnableTrace(0)
		arr, err := c.Store(mkRecords(4096, 11))
		if err != nil {
			t.Fatal(err)
		}
		if err := arr.Sort(); err != nil {
			t.Fatal(err)
		}
		return c.ModeledNetworkTime(), c.SerialModeledNetworkTime(), c.TraceSummary()
	}
	t1, s1, trace1 := run(1)
	t4, s4, trace4 := run(4)
	if trace1 != trace4 {
		t.Fatalf("traces differ between K=1 and K=4: %+v vs %+v", trace1, trace4)
	}
	if t1 != s1 {
		t.Fatalf("unsharded critical path %v should equal its serial sum %v", t1, s1)
	}
	if t4*2 > t1 {
		t.Fatalf("K=4 modeled time %v not ≥2x better than K=1's %v", t4, t1)
	}
	if t4 >= s4 {
		t.Fatalf("K=4 critical path %v should beat its own serial sum %v", t4, s4)
	}
}

// TestPrefetchTraceInvariance: the double-buffered prefetching scans change
// when reads are issued, never which reads — results and block-level traces
// match the non-prefetching client exactly.
func TestPrefetchTraceInvariance(t *testing.T) {
	const n = 3000
	run := func(prefetch bool, shards int) (TraceSummary, []Record) {
		c, err := New(Config{BlockSize: 8, CacheWords: 256, Seed: 23, Prefetch: prefetch, NumShards: shards})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.EnableTrace(0)
		arr, err := c.Store(mkRecords(n, 7))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := arr.Select(n / 3); err != nil {
			t.Fatal(err)
		}
		if err := arr.Sort(); err != nil {
			t.Fatal(err)
		}
		recs, err := arr.Records()
		if err != nil {
			t.Fatal(err)
		}
		return c.TraceSummary(), recs
	}
	offTrace, offRecs := run(false, 1)
	onTrace, onRecs := run(true, 1)
	onShardedTrace, onShardedRecs := run(true, 4)
	if offTrace != onTrace || offTrace != onShardedTrace {
		t.Fatalf("prefetch changed the trace: off=%+v on=%+v on+sharded=%+v", offTrace, onTrace, onShardedTrace)
	}
	for i := range offRecs {
		if offRecs[i] != onRecs[i] || offRecs[i] != onShardedRecs[i] {
			t.Fatalf("record %d differs across prefetch/sharding modes", i)
		}
	}
}
