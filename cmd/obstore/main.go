// Command obstore runs Bob as a real process: an HTTP block-storage server
// speaking the netstore protocol. It stores fixed-size blocks in memory or
// in a file and journals the per-block access sequence it observes to disk —
// the adversary's view of the paper's model (§1), recorded by the adversary
// itself, which is what the end-to-end obliviousness tests audit.
//
// Usage:
//
//	obstore -addr :9220 -blocks 4096 -b 8 -journal /tmp/bob.trace
//	obstore -addr :9221 -file /tmp/bob.dat -blocks 65536 -b 16
//	obstore -addr :9222 -tls-cert cert.pem -tls-key key.pem -auth-token s3cret
//
// Point a client at it:
//
//	obsort -n 100000 -url http://localhost:9220
//	obsort -n 100000 -url https://localhost:9222 -tls-ca cert.pem -auth-token s3cret -encrypt
//
// With -tls-cert/-tls-key the server speaks HTTPS; with -auth-token every
// endpoint requires a matching "Authorization: Bearer" header. Neither
// affects what Bob stores: for that, the *client* sets EncryptionKey
// (obsort -encrypt) so blocks arrive already sealed — a sealed block
// occupies B+2 elements, so run the server with -b set to the client's
// BlockSize+2 (see docs/THREAT_MODEL.md).
//
// Endpoints: POST /v1/io (batched binary data plane), GET /v1/info
// (geometry), POST /v1/grow, GET /v1/trace (journal fingerprint:
// length + FNV-1a hash + request/replay counts), POST /v1/trace/reset,
// GET /metrics (Prometheus text: request/block/byte counters, latency
// histogram, replay and auth-failure counts, journal length),
// GET /healthz (liveness, unauthenticated), and GET /readyz (readiness,
// unauthenticated: 503 while draining or after a journal write failure).
// With -pprof ADDR a second listener serves net/http/pprof under the same
// TLS certificate and bearer token as the data endpoints.
//
// With -drain D, SIGTERM starts a graceful drain: for D the server keeps
// running but answers data-plane requests with 503 plus a Retry-After hint
// of D, and /readyz reports not-ready. A well-behaved client waits the hint
// and replays — the restart is absorbed by the retry path, with no failover
// and no error surfacing — while an orchestrator watching /readyz routes
// new work elsewhere. Only after D does the listener close.
//
// With -namespaces the server is multi-tenant (service mode): the first
// request naming a new namespace lazily gets its own isolated store (memory,
// or "<-file>.<ns>" when file-backed), journal (-journal-dir writes
// <dir>/<ns>.trace), /v1/trace fingerprint, and replay-suppression window;
// GET /v1/namespaces lists the tenants. With -h2c the listener additionally
// accepts unencrypted HTTP/2, so multiplexed clients (oblivext
// Config.Multiplex) share a few long-lived connections across all sessions:
//
//	obstore -addr :9220 -namespaces -journal-dir /tmp/bob-journals -h2c
package main

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"oblivext/internal/extmem"
	"oblivext/internal/extmem/netstore"
)

func main() {
	addr := flag.String("addr", ":9220", "listen address")
	blocks := flag.Int("blocks", 4096, "initial store capacity in blocks (grows on client request)")
	b := flag.Int("b", 8, "block size B in elements")
	file := flag.String("file", "", "back the store with this file (default: in-memory)")
	journal := flag.String("journal", "", "write one line per observed block access to this file (truncated at startup, so the file always matches this run's /v1/trace fingerprint)")
	traceKeep := flag.Int("trace-keep", 0, "journal ops retained verbatim in memory (hash covers all regardless)")
	tlsCert := flag.String("tls-cert", "", "serve HTTPS with this PEM certificate (requires -tls-key)")
	tlsKey := flag.String("tls-key", "", "PEM private key for -tls-cert")
	authToken := flag.String("auth-token", "", "require this bearer token on every request (Authorization: Bearer <token>)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this extra listener, behind the same TLS and bearer auth as the data endpoints (default: off)")
	drain := flag.Duration("drain", 0, "on SIGTERM, refuse data-plane requests with 503 + Retry-After for this long before closing the listener, so clients absorb the restart by retrying (default: shut down immediately)")
	namespaces := flag.Bool("namespaces", false, "serve in multi-tenant service mode: the first request naming a new namespace gets its own isolated store (in-memory, or a per-namespace file next to -file), journal, trace fingerprint, and replay window")
	maxNamespaces := flag.Int("max-namespaces", 0, "cap on tenants a -namespaces server will create (0 selects the default of 1024)")
	journalDir := flag.String("journal-dir", "", "with -namespaces, write each namespace's journal to <dir>/<ns>.trace (the default tenant's stays on -journal)")
	h2c := flag.Bool("h2c", false, "accept unencrypted HTTP/2 (h2c) alongside HTTP/1.1, so multiplexed clients (oblivext Config.Multiplex) share connections on cleartext listeners; HTTP/2 over TLS is on regardless")
	flag.Parse()

	if (*tlsCert == "") != (*tlsKey == "") {
		fatal(fmt.Errorf("-tls-cert and -tls-key must be set together"))
	}

	var store extmem.BlockStore
	if *file != "" {
		fs, err := extmem.NewFileStore(*file, *blocks, *b)
		if err != nil {
			fatal(err)
		}
		store = fs
	} else {
		store = extmem.NewMemStore(*blocks, *b)
	}

	opts := netstore.ServerOptions{TraceKeep: *traceKeep, AuthToken: *authToken}
	var jf *os.File
	if *journal != "" {
		f, err := os.Create(*journal)
		if err != nil {
			fatal(err)
		}
		jf = f
		opts.Journal = f
	}
	if !*namespaces && (*journalDir != "" || *maxNamespaces != 0) {
		fatal(fmt.Errorf("-journal-dir and -max-namespaces require -namespaces"))
	}
	if *namespaces {
		opts.MaxNamespaces = *maxNamespaces
		opts.StoreFactory = func(ns string) (extmem.BlockStore, error) {
			// The namespace alphabet ([a-zA-Z0-9._-], no separators) is safe
			// to splice into file names verbatim.
			if *file != "" {
				return extmem.NewFileStore(*file+"."+ns, *blocks, *b)
			}
			return extmem.NewMemStore(*blocks, *b), nil
		}
		if *journalDir != "" {
			if err := os.MkdirAll(*journalDir, 0o755); err != nil {
				fatal(err)
			}
			opts.JournalFactory = func(ns string) (io.Writer, error) {
				return os.Create(filepath.Join(*journalDir, ns+".trace"))
			}
		}
	}

	srv := netstore.NewServer(store, opts)
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Bound header parsing and idle keep-alives; body read/write stay
		// unbounded because batch sizes (up to the 256 MiB wire cap) over
		// slow links can legitimately take a while.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if *h2c {
		netstore.ConfigureMuxServer(hs)
	}

	var ps *http.Server
	if *pprofAddr != "" {
		// Profiling data reveals the server's workload shape, so the pprof
		// listener sits behind exactly the credentials the data plane uses —
		// never an open side door next to an authenticated front one.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		var ph http.Handler = pm
		if *authToken != "" {
			ph = bearerAuth(*authToken, pm)
		}
		ps = &http.Server{Addr: *pprofAddr, Handler: ph, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			var err error
			if *tlsCert != "" {
				err = ps.ListenAndServeTLS(*tlsCert, *tlsKey)
			} else {
				err = ps.ListenAndServe()
			}
			if err != nil && err != http.ErrServerClosed {
				log.Printf("obstore: pprof listener: %v", err)
			}
		}()
		log.Printf("obstore: pprof on %s", *pprofAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		if *drain > 0 {
			// Graceful phase: stay up, bounce new data-plane work with 503 +
			// Retry-After so in-flight clients replay after the restart
			// instead of failing over, and flip /readyz so orchestrators
			// stop routing here. The listener closes only after the window.
			srv.BeginDrain(*drain)
			log.Printf("obstore: draining for %v (data plane 503s with Retry-After, /readyz not ready)", *drain)
			time.Sleep(*drain)
		}
		// Drain generously: request bodies are unbounded by design (large
		// batches over slow links), and closing the journal/store under a
		// still-running handler would corrupt the very audit record the
		// shutdown log is about to fingerprint.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("obstore: shutdown did not drain cleanly: %v", err)
		}
		if ps != nil {
			ps.Close()
		}
	}()

	backing := "memory"
	if *file != "" {
		backing = *file
	}
	jdesc := "off"
	if *journal != "" {
		jdesc = *journal
	}
	security := "http, no auth"
	switch {
	case *tlsCert != "" && *authToken != "":
		security = "https + bearer auth"
	case *tlsCert != "":
		security = "https, no auth"
	case *authToken != "":
		security = "http + bearer auth"
	}
	log.Printf("obstore: serving %d blocks of %d elements on %s (store: %s, journal: %s, %s)",
		*blocks, *b, *addr, backing, jdesc, security)
	var serveErr error
	if *tlsCert != "" {
		serveErr = hs.ListenAndServeTLS(*tlsCert, *tlsKey)
	} else {
		serveErr = hs.ListenAndServe()
	}
	if serveErr != nil && serveErr != http.ErrServerClosed {
		fatal(serveErr)
	}
	// ListenAndServe returns as soon as the listener closes; wait for
	// Shutdown to drain in-flight handlers before touching the journal and
	// store they may still be writing to.
	stop()
	<-shutdownDone

	sum := srv.TraceSummary()
	log.Printf("obstore: shutting down; observed %d accesses, trace hash %016x", sum.Len, sum.Hash)
	// In service mode, every tenant's fingerprint — the operator's shutdown
	// cross-check against what each client printed (and each -journal-dir
	// file holds) covers all namespaces, not just the default.
	for _, ns := range srv.Namespaces() {
		if ns == "" {
			continue // the default tenant is the line above
		}
		nsum := srv.TraceSummaryNS(ns)
		log.Printf("obstore: namespace %q observed %d accesses, trace hash %016x", ns, nsum.Len, nsum.Hash)
	}
	if jf != nil {
		if err := jf.Close(); err != nil {
			fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

// bearerAuth guards h with the same constant-time bearer-token check the
// netstore server applies to the data endpoints.
func bearerAuth(token string, h http.Handler) http.Handler {
	digest := sha256.Sum256([]byte(token))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		d := sha256.Sum256([]byte(got))
		if !ok || subtle.ConstantTimeCompare(d[:], digest[:]) != 1 {
			http.Error(w, "obstore: missing or invalid bearer token", http.StatusUnauthorized)
			return
		}
		h.ServeHTTP(w, r)
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obstore:", err)
	os.Exit(1)
}
