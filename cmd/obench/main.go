// Command obench runs the reproduction experiments (E1–E15 and the
// Figure 1 rendering from DESIGN.md's index) and prints their tables as
// markdown — the data recorded in EXPERIMENTS.md.
//
// Usage:
//
//	obench            # run everything
//	obench -exp E9    # run one experiment
//	obench -list      # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"oblivext/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment by ID (e.g. E9)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}
	run := bench.All()
	if *exp != "" {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "obench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		run = []bench.Experiment{e}
	}
	for _, e := range run {
		start := time.Now()
		table := e.Run()
		fmt.Println(table.Markdown())
		fmt.Printf("_(%s completed in %v)_\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
