// Command obench runs the reproduction experiments (E1–E21 and the
// Figure 1 rendering from DESIGN.md's index) and prints their tables as
// markdown — the data recorded in EXPERIMENTS.md.
//
// Usage:
//
//	obench                               # run everything
//	obench -exp E9                       # run one experiment
//	obench -exp E17 -json BENCH_oram.json # also write the tables as JSON
//	obench -list                         # list experiment IDs
//
// -json writes the executed tables — headers, rows, notes, and the
// machine-readable Metrics map where an experiment fills one — as a JSON
// array, so CI can archive perf artifacts (the BENCH_oram.json and
// BENCH_crypt.json artifacts track the ORAM round-trip and
// encryption-overhead trajectories across PRs).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"oblivext/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment by ID (e.g. E9)")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonPath := flag.String("json", "", "write the executed tables as a JSON array to this path")
	traceOut := flag.String("trace-out", "", "collect phase spans in every measurement environment and write them as one Chrome trace-event JSON file (one track per environment)")
	workers := flag.Int("workers", 1, "goroutines for Alice-side in-cache compute in every experiment environment (0 or 1 = serial); E21 sweeps its own counts regardless")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}
	if *traceOut != "" {
		bench.EnableSpanCapture()
	}
	bench.SetWorkers(*workers)
	run := bench.All()
	if *exp != "" {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "obench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		run = []bench.Experiment{e}
	}
	var tables []*bench.Table
	for _, e := range run {
		start := time.Now()
		table := e.Run()
		tables = append(tables, table)
		fmt.Println(table.Markdown())
		fmt.Printf("_(%s completed in %v)_\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "obench: marshal tables: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "obench: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "obench: wrote %d table(s) to %s\n", len(tables), *jsonPath)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obench: %v\n", err)
			os.Exit(1)
		}
		n, err := bench.WriteCapturedTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "obench: write trace %s: %v\n", *traceOut, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "obench: wrote %d span forest(s) to %s\n", n, *traceOut)
	}
}
