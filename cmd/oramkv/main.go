// Command oramkv runs the ORAM-backed key-value service: a long-lived HTTP
// front end hosting one oblivious RAM per namespace, so many tenants read
// and write records against a shared obstore fleet without the fleet — or
// anyone watching its wire — learning which records any tenant touches.
// (This is the paper's closing observation put to work: its sorting
// algorithm accelerates the inner loop of ORAM simulation, and an ORAM is
// exactly the engine a private KV store needs.)
//
// Usage:
//
//	# memory-backed, for a quick look
//	oramkv -addr :9230
//
//	# the real thing: a 4-shard namespaced obstore fleet, multiplexed wire
//	obstore -addr :9220 -namespaces -h2c &   (×4, ports 9220-9223)
//	oramkv -addr :9230 -shard-urls http://localhost:9220,http://localhost:9221,http://localhost:9222,http://localhost:9223 -multiplex
//
//	curl -X PUT -d 'attack at dawn' localhost:9230/v1/kv/alice/3
//	curl localhost:9230/v1/kv/alice/3
//	curl localhost:9230/v1/stats
//
// Endpoints: GET/PUT /v1/kv/{ns}/{slot} (the body is the value verbatim,
// up to (B-1)*8 bytes), GET /v1/stats (per-session counters + fleet
// totals), GET /metrics (Prometheus), GET /healthz, GET /readyz.
//
// Each namespace is an independent session: its own oblivext client, its
// own ORAM, its own namespace on the obstore fleet (its own journal and
// replay window there). Sessions materialize on first use, up to
// -max-sessions. With -drain D, SIGTERM keeps the process up for D while
// KV requests get 503 + Retry-After and /readyz reports not-ready, then
// shuts down — the same restart contract obstore honors.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"oblivext"
	"oblivext/internal/kvservice"
)

func main() {
	addr := flag.String("addr", ":9230", "listen address")
	b := flag.Int("b", 8, "oblivious block size B in words (slot capacity is (B-1)*8 bytes)")
	cache := flag.Int("cache", 0, "client cache size per session in words (0: oblivext's default)")
	slots := flag.Int("slots", 64, "ORAM capacity per namespace in logical slots")
	sorter := flag.String("sorter", "", "sorter engine for ORAM rebuilds (empty: auto)")
	workers := flag.Int("workers", 0, "parallel in-cache compute workers per session (0: serial)")
	seed := flag.Uint64("seed", 1, "PRF seed base; each namespace derives its own seed from it deterministically")
	url := flag.String("url", "", "back every session on this obstore server (requires -namespaces on it)")
	shardURLs := flag.String("shard-urls", "", "comma-separated obstore URLs to stripe each session's blocks across")
	authToken := flag.String("auth-token", "", "bearer token presented to the obstore fleet")
	multiplex := flag.Bool("multiplex", false, "share one process-wide HTTP/2 transport across all sessions (servers need -h2c on cleartext listeners)")
	maxSessions := flag.Int("max-sessions", 0, "cap on concurrent namespaces (0: default 64)")
	audit := flag.Bool("audit", false, "run each session's live obliviousness auditor (violations surface in /v1/stats and /metrics)")
	drain := flag.Duration("drain", 0, "on SIGTERM, answer KV requests with 503 + Retry-After for this long before shutting down")
	flag.Parse()

	cfg := oblivext.Config{
		BlockSize:  *b,
		CacheWords: *cache,
		Sorter:     *sorter,
		Workers:    *workers,
		Seed:       *seed,
		URL:        *url,
		AuthToken:  *authToken,
		Multiplex:  *multiplex,
	}
	if *shardURLs != "" {
		urls := strings.Split(*shardURLs, ",")
		cfg.NumShards = len(urls)
		cfg.ShardURLs = urls
	}
	svc, err := kvservice.New(kvservice.Options{
		Base:        cfg,
		Slots:       *slots,
		MaxSessions: *maxSessions,
		Audit:       *audit,
		RetryAfter:  *drain,
	})
	if err != nil {
		fatal(err)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		if *drain > 0 {
			svc.BeginDrain()
			log.Printf("oramkv: draining for %v (KV requests 503 with Retry-After, /readyz not ready)", *drain)
			time.Sleep(*drain)
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("oramkv: shutdown did not drain cleanly: %v", err)
		}
	}()

	backend := "memory"
	switch {
	case *shardURLs != "":
		backend = fmt.Sprintf("%d shards (%s)", cfg.NumShards, *shardURLs)
	case *url != "":
		backend = *url
	}
	log.Printf("oramkv: serving %d-slot ORAMs (B=%d, %d-byte values) on %s (backend: %s, multiplex: %v)",
		*slots, *b, svc.ValueBytes(), *addr, backend, *multiplex)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	stop()
	<-shutdownDone

	st := svc.StatsSnapshot()
	log.Printf("oramkv: shutting down; %d sessions served %d gets, %d puts, %d errors",
		len(st.Sessions), st.Gets, st.Puts, st.Errors)
	if err := svc.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oramkv:", err)
	os.Exit(1)
}
