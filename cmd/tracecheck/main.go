// Command tracecheck verifies the library's central security property from
// the outside: for every data-oblivious operation, running with a fixed
// random tape on wildly different inputs must produce bit-identical access
// traces. It exits non-zero on any violation (and confirms the non-
// oblivious baseline does leak, as a sanity check of the methodology).
package main

import (
	"fmt"
	"os"

	"oblivext/internal/bench"
)

func main() {
	table := bench.E13()
	fmt.Println(table.Markdown())
	bad := false
	for _, row := range table.Rows {
		oblivious := row[0][:3] != "NON"
		identical := row[len(row)-1] == "yes"
		switch {
		case oblivious && !identical:
			fmt.Printf("VIOLATION: %s leaked data through its trace\n", row[0])
			bad = true
		case !oblivious && identical:
			fmt.Printf("SUSPICIOUS: baseline %s did not vary — methodology may be broken\n", row[0])
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
	fmt.Println("tracecheck: all oblivious traces input-invariant; baseline leaks as expected")
}
