// Command obsort demonstrates the library end to end: it generates
// records, outsources them to a block store (in-memory, file-backed,
// sharded, or a real obstore server — with -encrypt every block is sealed
// client-side first, whatever the backend), sorts them with the selected
// oblivious sorter engine (the paper's randomized sort by default),
// verifies the result, and reports the I/O counts and trace fingerprint
// the storage server would observe.
//
// Usage:
//
//	obsort -n 100000 -b 16 -m 4096 -file /tmp/store.dat -encrypt
//	obsort -n 100000 -sorter bucket                              # or zigzag, bitonic, auto
//	obsort -n 100000 -shards 4 -rtt 20ms -perblock 1ms -prefetch
//	obsort -n 100000 -sorter auto -url http://localhost:9220     # a real Bob (cmd/obstore)
//	obsort -n 100000 -shards 2 -urls http://h1:9220,http://h2:9220
//	obsort -n 100000 -b 16 -encrypt -url https://h:9222 -tls-ca cert.pem -auth-token s3cret
//	                                 # TLS + auth + client-side sealing (server runs -b 18)
package main

import (
	crand "crypto/rand"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strings"
	"time"

	"oblivext"
	"oblivext/internal/obs"
	"oblivext/internal/obsort"
)

func main() {
	n := flag.Int("n", 50000, "number of records to sort")
	b := flag.Int("b", 16, "block size B in records (power of two)")
	m := flag.Int("m", 4096, "private cache size M in records")
	file := flag.String("file", "", "back the store with this file (default: in-memory)")
	encrypt := flag.Bool("encrypt", false, "seal every block client-side (AES-CTR + HMAC, fresh IV per write) before it reaches any backend; a remote obstore must run with -b = B+2")
	seed := flag.Uint64("seed", 1, "random tape seed")
	sorter := flag.String("sorter", "randomized", "sorter engine: auto, randomized, bitonic, bucket, or zigzag")
	det := flag.Bool("deterministic", false, "deprecated alias for -sorter=bitonic")
	shards := flag.Int("shards", 1, "stripe the store across this many backends, fanned out in parallel (with -file, shard i is backed by <file>.<i>)")
	rtt := flag.Duration("rtt", 0, "model each backend as remote with this round-trip delay (e.g. 20ms)")
	perblock := flag.Duration("perblock", 0, "bandwidth component of the latency model, per block moved")
	prefetch := flag.Bool("prefetch", false, "double-buffer read scans: overlap the next batch's fetch with compute")
	workers := flag.Int("workers", 1, "goroutines for Alice-side in-cache compute and sealing (0 or 1 = serial); the access trace is identical for every setting")
	url := flag.String("url", "", "back the store with a remote obstore server at this base URL")
	urls := flag.String("urls", "", "comma-separated obstore base URLs, one per shard (implies -shards)")
	replicas := flag.Int("replicas", 1, "replicate every shard across this many backends: writes fan out to all live replicas, reads fail over on error")
	replicaURLs := flag.String("replica-urls", "", "comma-separated obstore base URLs in shard-major order (shards x replicas entries; an empty entry is an in-memory replica); requires -replicas > 1")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedge slow reads: launch a second replica's read after this delay (P95-adaptive once warmed up) and take the first response; requires -replicas > 1")
	netTimeout := flag.Duration("net-timeout", 0, "per-request timeout against a network backend (0 = default 10s)")
	netRetries := flag.Int("net-retries", 0, "replays of a failed network request before giving up (0 = default 3, -1 = fail fast)")
	authToken := flag.String("auth-token", "", "bearer token presented to network backends (must match obstore -auth-token)")
	namespace := flag.String("namespace", "", "tenant namespace on a multi-tenant (-namespaces) obstore fleet: own address space, journal, and replay window")
	multiplex := flag.Bool("multiplex", false, "use the process-wide multiplexed HTTP/2 transport (servers need obstore -h2c on cleartext listeners)")
	tlsCA := flag.String("tls-ca", "", "PEM file of root certificates to trust for https:// backends (e.g. obstore's self-signed cert)")
	tlsSkipVerify := flag.Bool("tls-skip-verify", false, "disable TLS certificate verification (smoke tests only)")
	traceOut := flag.String("trace-out", "", "write the phase-span tree as Chrome trace-event JSON to this file (view at ui.perfetto.dev)")
	spanTree := flag.Bool("span-tree", false, "print the phase-span tree with per-span wall time and I/O deltas")
	audit := flag.Bool("audit", false, "run the live obliviousness auditor over the phase spans (violations go to stderr and fail the run)")
	auditGolden := flag.String("audit-golden", "", "golden trace-fingerprint file for -audit: loaded and enforced when it exists, recorded from this run otherwise")
	flag.Parse()

	if *det {
		*sorter = "bitonic"
	}
	cfg := oblivext.Config{BlockSize: *b, CacheWords: *m, Seed: *seed, Path: *file, Sorter: *sorter,
		NumShards: *shards, SimulatedRTT: *rtt, SimulatedPerBlock: *perblock, Prefetch: *prefetch, Workers: *workers,
		URL: *url, NetTimeout: *netTimeout, NetRetries: *netRetries,
		Replicas: *replicas, HedgeAfter: *hedgeAfter,
		AuthToken: *authToken, TLSRootCA: *tlsCA, TLSInsecureSkipVerify: *tlsSkipVerify,
		Namespace: *namespace, Multiplex: *multiplex}
	if *urls != "" && *file != "" {
		fatal(fmt.Errorf("-urls and -file are mutually exclusive: shards are either remote servers or local files"))
	}
	if *urls != "" {
		for _, u := range strings.Split(*urls, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				// An empty entry would silently fall back to an in-process
				// memory shard — not what someone listing servers meant.
				fatal(fmt.Errorf("-urls has an empty entry (stray comma?): %q", *urls))
			}
			cfg.ShardURLs = append(cfg.ShardURLs, u)
		}
		if *shards == 1 {
			cfg.NumShards = len(cfg.ShardURLs)
		}
	}
	if *shards > 1 && *file != "" {
		cfg.Path = ""
		for i := 0; i < *shards; i++ {
			cfg.ShardPaths = append(cfg.ShardPaths, fmt.Sprintf("%s.%d", *file, i))
		}
	}
	if *replicaURLs != "" {
		// Shard-major, empty entries allowed: "" means an in-memory replica,
		// which is how a mixed durable/fast fleet is spelled.
		for _, u := range strings.Split(*replicaURLs, ",") {
			cfg.ReplicaURLs = append(cfg.ReplicaURLs, strings.TrimSpace(u))
		}
	}
	if *encrypt {
		key := make([]byte, 32)
		if _, err := crand.Read(key); err != nil {
			fatal(err)
		}
		cfg.EncryptionKey = key
	}
	client, err := oblivext.New(cfg)
	if err != nil {
		fatal(err)
	}
	defer client.Close()
	client.EnableTrace(0)

	spansOn := *traceOut != "" || *spanTree || *audit
	if spansOn {
		// Spans go on before the upload so every block the store sees is
		// attributed to some phase — the root spans then sum to the lifetime
		// I/O counters exactly.
		client.EnableSpans()
	}
	var auditor *obs.Auditor
	auditLearn := true
	if *audit {
		if *auditGolden != "" {
			if _, err := os.Stat(*auditGolden); err == nil {
				auditLearn = false
			}
		}
		auditor = client.EnableAudit(auditLearn)
		if !auditLearn {
			if err := auditor.LoadFile(*auditGolden); err != nil {
				fatal(err)
			}
		}
		auditor.OnViolation = func(v obs.Violation) {
			fmt.Fprintln(os.Stderr, "obsort: OBLIVIOUSNESS VIOLATION:", v.String())
		}
	}

	r := rand.New(rand.NewPCG(*seed, 99))
	recs := make([]oblivext.Record, *n)
	for i := range recs {
		recs[i] = oblivext.Record{Key: r.Uint64(), Val: uint64(i)}
	}
	arr, err := client.Store(recs)
	if err != nil {
		fatal(err)
	}

	// Snapshot instead of reset: the lifetime counters keep running (so the
	// span tree and the server's /metrics stay comparable end to end) while
	// the sort-phase figures below are deltas from here.
	base := client.Stats()
	netBase := client.MeasuredNetworkStats()
	start := time.Now()
	if err := arr.Sort(); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	got, err := arr.Records()
	if err != nil {
		fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Key > got[i].Key {
			fatal(fmt.Errorf("verification failed at position %d", i))
		}
	}
	lifetime := client.Stats()
	st := lifetime.Sub(base)
	ts := client.TraceSummary()
	engine := *sorter
	if engine == obsort.EngineAuto {
		// The pick is a public function of the geometry and backend kind;
		// recompute it here so the report names the engine that actually ran.
		backend := "mem"
		if *url != "" || *urls != "" {
			backend = "net"
		}
		engine = fmt.Sprintf("auto (picked %s)", obsort.Pick(arr.Blocks(), *b, *m, backend))
	}
	fmt.Printf("sorted %d records (B=%d, M=%d) with the %s engine in %v\n",
		*n, *b, *m, engine, elapsed.Round(time.Millisecond))
	fmt.Printf("block I/O: %d reads + %d writes = %d (%.2f per data block)\n",
		st.Reads, st.Writes, st.Total(), float64(st.Total())/float64(arr.Blocks()))
	fmt.Printf("round trips: %d (%.1f blocks per store interaction)\n",
		st.RoundTrips, float64(st.Total())/float64(st.RoundTrips))
	if st.BytesSealed > 0 || st.BytesOpened > 0 {
		fmt.Printf("client-side crypto: %d bytes sealed / %d bytes opened (every block leaves as IV‖ct‖tag)\n",
			st.BytesSealed, st.BytesOpened)
	}
	if client.NumShards() > 1 {
		fmt.Printf("shards: %d —", client.NumShards())
		for i, s := range client.ShardStats() {
			fmt.Printf(" [%d] %d blocks", i, s.BlocksMoved)
		}
		fmt.Println()
	}
	if client.NumReplicas() > 1 {
		fmt.Printf("replicas: %d per shard —\n", client.NumReplicas())
		for sh, group := range client.ReplicaStats() {
			for r, s := range group {
				fmt.Printf("  shard[%d] replica[%d] (%s): %d blocks, %d failures, %d failovers, %d hedges (%d won), %d repairs, %d dirty\n",
					sh, r, s.State, s.BlocksMoved, s.Failures, s.Failovers, s.Hedges, s.HedgeWins, s.Repairs, s.Dirty)
			}
		}
		if ev := client.ReplicaEvents(); len(ev) > 0 {
			fmt.Printf("  %d failover/breaker decisions (first: %s)\n", len(ev), ev[0])
		}
	}
	if *rtt > 0 || *perblock > 0 {
		if client.NumShards() > 1 {
			fmt.Printf("modeled network time: %v critical path (%v if shards were contacted serially)\n",
				client.ModeledNetworkTime().Round(time.Millisecond),
				client.SerialModeledNetworkTime().Round(time.Millisecond))
		} else {
			fmt.Printf("modeled network time: %v\n", client.ModeledNetworkTime().Round(time.Millisecond))
		}
	}
	if ns := client.MeasuredNetworkStats(); ns != nil {
		var reqs, retries, replays, upload int64
		for _, s := range ns {
			reqs += s.Requests
			retries += s.Retries
			replays += s.ReplayHits
		}
		for _, s := range netBase {
			upload += s.Requests
		}
		fmt.Printf("network (measured): %d requests total including upload (%d during sort+verify, +%d retries, %d replay hits), %v total wait\n",
			reqs, reqs-upload, retries, replays, client.MeasuredNetworkTime().Round(time.Millisecond))
		for i, s := range ns {
			fmt.Printf("  server[%d]: %d requests, %d blocks, rtt min/max %v/%v, p50/p95/p99 %v/%v/%v\n",
				i, s.Requests, s.BlocksMoved, s.MinRTT.Round(time.Microsecond), s.MaxRTT.Round(time.Microsecond),
				s.P50, s.P95, s.P99)
		}
	}
	fmt.Printf("adversary's view: %d accesses, trace hash %016x\n", ts.Len, ts.Hash)
	fmt.Printf("peak private memory: %d records (budget %d)\n", client.CacheHighWater(), *m)

	if spansOn {
		spanIO := obs.SumIO(client.Spans())
		agree := "agrees with"
		if spanIO.RoundTrips != lifetime.RoundTrips {
			agree = "DISAGREES with"
		}
		fmt.Printf("spans: %d round trips across %d root phases %s the lifetime counter (%d)\n",
			spanIO.RoundTrips, len(client.Spans()), agree, lifetime.RoundTrips)
	}
	if *spanTree {
		fmt.Print(client.SpanTree())
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := client.WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("phase spans written to %s (open at ui.perfetto.dev)\n", *traceOut)
	}
	if auditor != nil {
		observed, matched, violated := auditor.Stats()
		mode := "enforce"
		if auditLearn {
			mode = "learn"
		}
		fmt.Printf("obliviousness audit (%s): %d spans observed, %d matched, %d violated\n",
			mode, observed, matched, violated)
		if auditLearn && *auditGolden != "" {
			if err := auditor.SaveFile(*auditGolden); err != nil {
				fatal(err)
			}
			fmt.Printf("golden fingerprints recorded to %s\n", *auditGolden)
		}
		if violated > 0 {
			fatal(fmt.Errorf("%d audit key(s) diverged from their golden trace fingerprints", violated))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obsort:", err)
	os.Exit(1)
}
