package oblivext

import (
	"net/http/httptest"
	"testing"

	"oblivext/internal/extmem"
	"oblivext/internal/extmem/netstore"
	"oblivext/internal/trace"
)

// obstore spins up an in-process equivalent of cmd/obstore: the netstore
// server over a MemStore, on a real HTTP listener.
func obstore(t *testing.T, blocks, b int) (*netstore.Server, *httptest.Server) {
	t.Helper()
	srv := netstore.NewServer(extmem.NewMemStore(blocks, b), netstore.ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// netTrace runs the standard probe workload — Sort, then Select at a fixed
// rank, then Mark+CompactTight at a fixed public capacity — over the given
// records on a network backend, and returns the client's logical trace and
// the server's independently journaled trace (excluding the upload).
func netTrace(t *testing.T, recs []Record) (client TraceSummary, server netstore.ServerTrace) {
	t.Helper()
	srv, ts := obstore(t, 4096, 8)
	c, err := New(Config{BlockSize: 8, CacheWords: 512, Seed: 77, URL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	arr, err := c.Store(recs)
	if err != nil {
		t.Fatal(err)
	}
	// Fingerprint the probes alone: reset both Alice's recorder and Bob's
	// journal after the upload, through the same HTTP surface cmd/obstore
	// exposes.
	c.EnableTrace(0)
	srv.ResetTrace()
	runProbes(t, arr)
	nc, err := netstore.Dial(ts.URL, netstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	st, err := nc.FetchServerTrace()
	if err != nil {
		t.Fatal(err)
	}
	return c.TraceSummary(), st
}

// memTrace runs the identical workload against the in-process MemStore and
// returns the client-side logical trace.
func memTrace(t *testing.T, recs []Record) TraceSummary {
	t.Helper()
	c, err := New(Config{BlockSize: 8, CacheWords: 512, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	arr, err := c.Store(recs)
	if err != nil {
		t.Fatal(err)
	}
	c.EnableTrace(0)
	runProbes(t, arr)
	return c.TraceSummary()
}

// runProbes is the workload under audit: the paper's three headline
// operations with public parameters fixed (rank and capacity are public
// inputs; the data is what must not show).
func runProbes(t *testing.T, arr *Array) {
	t.Helper()
	if err := arr.Sort(); err != nil {
		t.Fatal(err)
	}
	if _, err := arr.Select(arr.Len() / 2); err != nil {
		t.Fatal(err)
	}
	if _, err := arr.Mark(func(r Record) bool { return r.Key%3 == 0 }); err != nil {
		t.Fatal(err)
	}
	if _, err := arr.CompactTight(arr.Len()); err != nil {
		t.Fatal(err)
	}
}

// TestPublicNetworkAdversaryView is the end-to-end adversary test at the
// acceptance size N = 2^12: the trace Bob himself journals — in a separate
// server process boundary, not Alice's bookkeeping — is bit-identical across
// distinct same-size inputs, and identical to the logical trace of the same
// workload over the in-process MemStore.
func TestPublicNetworkAdversaryView(t *testing.T) {
	const n = 1 << 12
	varied := mkRecords(n, 1)
	constant := make([]Record, n)
	for i := range constant {
		constant[i] = Record{Key: 5, Val: uint64(i)}
	}

	clientA, serverA := netTrace(t, varied)
	clientB, serverB := netTrace(t, constant)

	// Bob's own journal must not distinguish the inputs.
	if serverA.Len != serverB.Len || serverA.Hash != serverB.Hash {
		t.Fatalf("server-side trace depends on data: %+v vs %+v", serverA, serverB)
	}
	// Bob's journal is exactly the sequence Alice's Disk layer logged.
	if clientA.Len != serverA.Len || clientA.Hash != serverA.Hash {
		t.Fatalf("server journal %+v != client logical trace %+v", serverA, clientA)
	}
	// And both equal the MemStore run: the network layer transports the
	// trace, it does not reshape it.
	mem := memTrace(t, varied)
	if mem.Len != serverA.Len || mem.Hash != serverA.Hash {
		t.Fatalf("network trace %+v != MemStore logical trace %+v", serverA, mem)
	}
	if clientB != mem {
		t.Fatalf("client traces diverge across backends: %+v vs %+v", clientB, mem)
	}
	// No faults were injected, so the server saw no replays.
	if serverA.Replays != 0 {
		t.Fatalf("unexpected replays: %+v", serverA)
	}
}

// sorterNetTrace sorts recs with the named engine over a real obstore
// server and returns Alice's logical trace and Bob's independently
// journaled trace (excluding the upload).
func sorterNetTrace(t *testing.T, engine string, recs []Record) (client TraceSummary, server netstore.ServerTrace) {
	t.Helper()
	srv, ts := obstore(t, 8192, 8)
	c, err := New(Config{BlockSize: 8, CacheWords: 1024, Seed: 77, URL: ts.URL, Sorter: engine})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	arr, err := c.Store(recs)
	if err != nil {
		t.Fatal(err)
	}
	c.EnableTrace(0)
	srv.ResetTrace()
	if err := arr.Sort(); err != nil {
		t.Fatal(err)
	}
	nc, err := netstore.Dial(ts.URL, netstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	st, err := nc.FetchServerTrace()
	if err != nil {
		t.Fatal(err)
	}
	return c.TraceSummary(), st
}

// sorterMemTrace sorts recs with the named engine on the in-process
// MemStore with the same geometry and seed, returning the logical trace.
func sorterMemTrace(t *testing.T, engine string, recs []Record) TraceSummary {
	t.Helper()
	c, err := New(Config{BlockSize: 8, CacheWords: 1024, Seed: 77, Sorter: engine})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	arr, err := c.Store(recs)
	if err != nil {
		t.Fatal(err)
	}
	c.EnableTrace(0)
	if err := arr.Sort(); err != nil {
		t.Fatal(err)
	}
	return c.TraceSummary()
}

// TestSorterEnginesNetworkAdversaryView pins the obliviousness of every
// sorter engine where it matters — over the wire, at the acceptance size
// N = 2^12: the trace Bob himself journals is bit-identical across distinct
// same-size inputs (bucket's overflow declarations included: at this seed
// and geometry every attempt succeeds, and the success-path trace is
// input-independent — the declared-failure prefix contract is pinned in the
// obsort suite), identical to Alice's logical trace, and — for the concrete
// engines — identical to the same workload's trace on the in-process
// MemStore. "auto" is checked for input-independence only: its pick is a
// public function of the backend kind, so the mem run may legitimately
// resolve to a different engine than the net run.
func TestSorterEnginesNetworkAdversaryView(t *testing.T) {
	const n = 1 << 12
	varied := mkRecords(n, 1)
	constant := make([]Record, n)
	for i := range constant {
		constant[i] = Record{Key: 5, Val: uint64(i)}
	}
	for _, engine := range []string{"bitonic", "zigzag", "bucket", "auto"} {
		t.Run(engine, func(t *testing.T) {
			clientA, serverA := sorterNetTrace(t, engine, varied)
			clientB, serverB := sorterNetTrace(t, engine, constant)
			if serverA.Len != serverB.Len || serverA.Hash != serverB.Hash {
				t.Fatalf("server-side trace depends on data: %+v vs %+v", serverA, serverB)
			}
			if clientA.Len != serverA.Len || clientA.Hash != serverA.Hash {
				t.Fatalf("server journal %+v != client logical trace %+v", serverA, clientA)
			}
			if serverA.Len == 0 {
				t.Fatal("empty trace: the sort never touched the server")
			}
			if engine != "auto" {
				mem := sorterMemTrace(t, engine, varied)
				if mem.Len != serverA.Len || mem.Hash != serverA.Hash {
					t.Fatalf("network trace %+v != MemStore logical trace %+v", serverA, mem)
				}
				if clientB != mem {
					t.Fatalf("client traces diverge across backends: %+v vs %+v", clientB, mem)
				}
			}
		})
	}
}

// TestPublicNetworkBackendCorrectness runs the full public workload over the
// HTTP backend and checks results, stats, and measured network counters.
func TestPublicNetworkBackendCorrectness(t *testing.T) {
	_, ts := obstore(t, 64, 8) // deliberately small: the store must grow over the wire
	c, err := New(Config{BlockSize: 8, CacheWords: 512, Seed: 9, URL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	recs := mkRecords(3000, 21)
	arr, err := c.Store(recs)
	if err != nil {
		t.Fatal(err)
	}
	c.ResetStats()
	if err := arr.Sort(); err != nil {
		t.Fatal(err)
	}
	got, err := arr.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records after network sort, want %d", len(got), len(recs))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Key > got[i].Key {
			t.Fatalf("not sorted at %d", i)
		}
	}

	st := c.Stats()
	ns := c.MeasuredNetworkStats()
	if len(ns) != 1 {
		t.Fatalf("%d network backends, want 1", len(ns))
	}
	if ns[0].Requests != st.RoundTrips {
		t.Fatalf("measured requests %d != Disk round trips %d", ns[0].Requests, st.RoundTrips)
	}
	if ns[0].BlocksMoved != st.Total() {
		t.Fatalf("measured blocks %d != Disk I/Os %d", ns[0].BlocksMoved, st.Total())
	}
	if ns[0].Retries != 0 {
		t.Fatalf("retries on a healthy loopback: %+v", ns[0])
	}
	if c.MeasuredNetworkTime() <= 0 || ns[0].MinRTT <= 0 || ns[0].MaxRTT < ns[0].MinRTT {
		t.Fatalf("measured times not populated: %+v", ns[0])
	}
}

// TestPublicNetworkSharded fans out to four real servers and checks the
// per-server journals are exactly the residue-class projections of the
// logical trace.
func TestPublicNetworkSharded(t *testing.T) {
	const k = 4
	servers := make([]*netstore.Server, k)
	urls := make([]string, k)
	for i := range servers {
		srv, ts := obstore(t, 1024, 8)
		servers[i], urls[i] = srv, ts.URL
	}
	c, err := New(Config{BlockSize: 8, CacheWords: 512, Seed: 13, NumShards: k, ShardURLs: urls})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	recs := mkRecords(2000, 3)
	arr, err := c.Store(recs)
	if err != nil {
		t.Fatal(err)
	}
	c.EnableTrace(1 << 20)
	for i := range servers {
		servers[i].ResetTrace()
	}
	if err := arr.Sort(); err != nil {
		t.Fatal(err)
	}
	got, err := arr.Records()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Key > got[i].Key {
			t.Fatalf("not sorted at %d", i)
		}
	}

	// Rebuild each server's expected view: the sub-sequence of the logical
	// trace owned by its residue class, re-numbered to local addresses.
	logical := c.env.D.Recorder().Ops()
	want := make([]*trace.Recorder, k)
	for i := range want {
		want[i] = trace.NewRecorder(0)
	}
	for _, op := range logical {
		want[op.Addr%k].Record(op.Kind, op.Addr/k)
	}
	for i, srv := range servers {
		if got, exp := srv.TraceSummary(), want[i].Summarize(); !got.Equal(exp) {
			t.Fatalf("server %d journal %v != projected logical trace %v", i, got, exp)
		}
	}

	if ns := c.MeasuredNetworkStats(); len(ns) != k {
		t.Fatalf("%d per-server stats, want %d", len(ns), k)
	}
}

// TestPublicNetworkConfigValidation pins the wiring rules.
func TestPublicNetworkConfigValidation(t *testing.T) {
	_, ts := obstore(t, 16, 4) // B=4 server
	if _, err := New(Config{BlockSize: 8, URL: ts.URL}); err == nil {
		t.Error("block-size mismatch with server accepted")
	}
	if _, err := New(Config{BlockSize: 8, URL: ts.URL, Path: "/tmp/x.dat"}); err == nil {
		t.Error("URL+Path accepted")
	}
	if _, err := New(Config{BlockSize: 8, NumShards: 2, URL: ts.URL}); err == nil {
		t.Error("URL with NumShards > 1 accepted")
	}
	if _, err := New(Config{BlockSize: 8, NumShards: 2, ShardURLs: []string{ts.URL}}); err == nil {
		t.Error("ShardURLs length mismatch accepted")
	}
	// An encrypted client needs the server provisioned with the sealed
	// footprint (B+2); a plaintext-sized server must be rejected.
	_, tsPlain := obstore(t, 16, 8)
	if _, err := New(Config{BlockSize: 8, URL: tsPlain.URL, EncryptionKey: make([]byte, 32)}); err == nil {
		t.Error("encrypted client accepted a server sized for plaintext blocks")
	}
	if _, err := New(Config{BlockSize: 8, URL: "http://127.0.0.1:1", NetTimeout: 50000000, NetRetries: 1}); err == nil {
		t.Error("dial to dead server succeeded")
	}
	// Mixing: one real server, one in-memory shard.
	srv8, ts8 := obstore(t, 64, 8)
	c, err := New(Config{BlockSize: 8, CacheWords: 256, NumShards: 2, ShardURLs: []string{ts8.URL, ""}})
	if err != nil {
		t.Fatalf("mixed backends rejected: %v", err)
	}
	defer c.Close()
	arr, err := c.Store(mkRecords(200, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.Sort(); err != nil {
		t.Fatal(err)
	}
	if sum := srv8.TraceSummary(); sum.Len == 0 {
		t.Fatal("network shard of a mixed store saw no traffic")
	}
	if ns := c.MeasuredNetworkStats(); len(ns) != 1 {
		t.Fatalf("%d network stats entries for one network shard", len(ns))
	}
}
