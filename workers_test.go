package oblivext

import (
	"fmt"
	"testing"
)

// The Config.Workers contract, end to end through the public API: for every
// sorter engine and every worker count, the sort must produce the same
// sorted output, the per-block trace Bob observes must be bit-identical to
// the serial run's, and the private cache must stay within budget.
func TestWorkersTraceInvariantAcrossEngines(t *testing.T) {
	const n, b, cache = 1 << 10, 8, 1024
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Key: uint64(i*2654435761) % (1 << 20), Val: uint64(i)}
	}

	for _, engine := range []string{"randomized", "bitonic", "zigzag", "bucket"} {
		type outcome struct {
			sum  TraceSummary
			recs []Record
		}
		var serial outcome
		for _, w := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/w%d", engine, w), func(t *testing.T) {
				c, err := New(Config{BlockSize: b, CacheWords: cache, Seed: 42,
					Sorter: engine, Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				arr, err := c.Store(recs)
				if err != nil {
					t.Fatal(err)
				}
				c.EnableTrace(0)
				if err := arr.Sort(); err != nil {
					t.Fatal(err)
				}
				got, err := arr.Records()
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != n {
					t.Fatalf("lost records: %d of %d", len(got), n)
				}
				for i := 1; i < len(got); i++ {
					if got[i-1].Key > got[i].Key {
						t.Fatalf("not sorted at %d", i)
					}
				}
				if hw := c.CacheHighWater(); hw > cache {
					t.Fatalf("cache high water %d exceeds M=%d at workers=%d", hw, cache, w)
				}
				sum := c.TraceSummary()
				if w == 1 {
					serial = outcome{sum: sum, recs: got}
					return
				}
				if sum != serial.sum {
					t.Fatalf("trace fingerprint differs from serial run: %+v vs %+v", sum, serial.sum)
				}
				for i := range got {
					if got[i] != serial.recs[i] {
						t.Fatalf("record %d differs from serial run", i)
					}
				}
			})
		}
	}
}

// Same contract with the CryptStore in the stack: parallel sealing/opening
// must not perturb the trace, the results, or the crypto byte accounting.
func TestWorkersTraceInvariantEncrypted(t *testing.T) {
	const n, b, cache = 1 << 9, 8, 1024
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Key: uint64((n - i) * 13), Val: uint64(i)}
	}
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i + 1)
	}

	type outcome struct {
		sum    TraceSummary
		sealed int64
	}
	var serial outcome
	for _, w := range []int{1, 4} {
		c, err := New(Config{BlockSize: b, CacheWords: cache, Seed: 7,
			EncryptionKey: key, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		arr, err := c.Store(recs)
		if err != nil {
			t.Fatal(err)
		}
		c.EnableTrace(0)
		c.ResetStats()
		if err := arr.Sort(); err != nil {
			t.Fatal(err)
		}
		got, err := arr.Records()
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].Key > got[i].Key {
				t.Fatalf("workers=%d: not sorted at %d", w, i)
			}
		}
		cur := outcome{sum: c.TraceSummary(), sealed: c.Stats().BytesSealed}
		c.Close()
		if w == 1 {
			serial = cur
			continue
		}
		if cur.sum != serial.sum {
			t.Fatalf("encrypted trace differs at workers=%d: %+v vs %+v", w, cur.sum, serial.sum)
		}
		if cur.sealed != serial.sealed {
			t.Fatalf("BytesSealed %d at workers=%d, serial %d", cur.sealed, w, serial.sealed)
		}
	}
}

// ORAM accesses and rebuilds run the same parallel in-cache passes; the
// access trace must stay a function of (n, B, t, seed) alone.
func TestWorkersTraceInvariantORAM(t *testing.T) {
	const logical = 32
	run := func(w int) (TraceSummary, []uint64) {
		c, err := New(Config{BlockSize: 4, CacheWords: 512, Seed: 3, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.EnableTrace(0)
		r, err := c.NewORAM(logical)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < logical; i++ {
			if err := r.Write(i, []uint64{uint64(i * 7), uint64(i), 0, 0}); err != nil {
				t.Fatal(err)
			}
		}
		var vals []uint64
		for i := 0; i < logical; i++ {
			words, err := r.Read(i)
			if err != nil {
				t.Fatal(err)
			}
			vals = append(vals, words[0])
		}
		return c.TraceSummary(), vals
	}
	sum1, vals1 := run(1)
	for _, w := range []int{2, 4} {
		sum, vals := run(w)
		if sum != sum1 {
			t.Fatalf("ORAM trace differs at workers=%d", w)
		}
		for i := range vals {
			if vals[i] != vals1[i] {
				t.Fatalf("ORAM payload %d differs at workers=%d", i, w)
			}
		}
	}
	for i, v := range vals1 {
		if v != uint64(i*7) {
			t.Fatalf("ORAM read back %d at %d, want %d", v, i, i*7)
		}
	}
}

func TestWorkersConfigValidation(t *testing.T) {
	if _, err := New(Config{Workers: -1}); err == nil {
		t.Fatal("negative Workers accepted")
	}
	c, err := New(Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}
