package oblivext

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"oblivext/internal/extmem"
	"oblivext/internal/obs"
)

// TestIOStatsFullCopy pins the three counter structs — extmem.Stats,
// obs.Counters, and the public IOStats — to an identical field set, and
// checks the Stats() conversion carries every field. A field added to
// extmem.Stats but forgotten here (the bug this regresses: Stats() used to
// hand-copy fields and silently drop new ones) fails loudly.
func TestIOStatsFullCopy(t *testing.T) {
	shape := func(v any) map[string]string {
		m := map[string]string{}
		rt := reflect.TypeOf(v)
		for i := 0; i < rt.NumField(); i++ {
			f := rt.Field(i)
			m[f.Name] = f.Type.String()
		}
		return m
	}
	want := shape(extmem.Stats{})
	if got := shape(IOStats{}); !reflect.DeepEqual(got, want) {
		t.Fatalf("IOStats fields %v diverge from extmem.Stats %v", got, want)
	}
	if got := shape(obs.Counters{}); !reflect.DeepEqual(got, want) {
		t.Fatalf("obs.Counters fields %v diverge from extmem.Stats %v", got, want)
	}

	// The conversion must copy every field, whatever its value.
	var src extmem.Stats
	sv := reflect.ValueOf(&src).Elem()
	for i := 0; i < sv.NumField(); i++ {
		sv.Field(i).SetInt(int64(100 + i))
	}
	dst := IOStats(src)
	dv := reflect.ValueOf(dst)
	for i := 0; i < dv.NumField(); i++ {
		if dv.Field(i).Int() != int64(100+i) {
			t.Fatalf("field %s dropped by the Stats conversion", dv.Type().Field(i).Name)
		}
	}
}

// checkSpan asserts the attribution invariants on one span subtree: the
// children never account for more I/O than the parent measured (Self is
// non-negative field-wise), and the tree nests sanely.
func checkSpan(t *testing.T, sp *obs.Span) {
	t.Helper()
	self := sp.Self()
	for name, v := range map[string]int64{
		"Reads": self.Reads, "Writes": self.Writes, "RoundTrips": self.RoundTrips,
		"BytesSealed": self.BytesSealed, "BytesOpened": self.BytesOpened,
	} {
		if v < 0 {
			t.Fatalf("span %q: children overspend the parent (%s self = %d)", sp.Name, name, v)
		}
	}
	var sum obs.Counters
	for _, c := range sp.Children {
		sum = sum.Add(c.IO)
	}
	if sp.IO != sum.Add(self) {
		t.Fatalf("span %q: IO %+v != self %+v + children %+v", sp.Name, sp.IO, self, sum)
	}
	for _, c := range sp.Children {
		checkSpan(t, c)
	}
}

// TestSpanAttribution checks that with spans on from the first operation,
// every counter the client accumulates is attributed to some phase: the
// root spans sum exactly to Stats(), recursively self + children per span,
// over both a plain memory store and a sharded one.
func TestSpanAttribution(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"mem", Config{BlockSize: 8, CacheWords: 256, Seed: 5, Sorter: "zigzag"}},
		{"sharded", Config{BlockSize: 8, CacheWords: 256, Seed: 5, Sorter: "zigzag", NumShards: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			c.EnableSpans()
			arr, err := c.Store(mkRecords(1200, 3))
			if err != nil {
				t.Fatal(err)
			}
			if err := arr.Sort(); err != nil {
				t.Fatal(err)
			}
			if _, err := arr.Records(); err != nil {
				t.Fatal(err)
			}
			roots := c.Spans()
			if len(roots) != 3 { // store, sort, records
				t.Fatalf("%d root spans, want 3", len(roots))
			}
			for _, sp := range roots {
				checkSpan(t, sp)
			}
			var sortRoot *obs.Span
			for _, sp := range roots {
				if sp.Name == "sort" {
					sortRoot = sp
				}
			}
			if sortRoot == nil || len(sortRoot.Children) == 0 {
				t.Fatal("sort root span has no phase children")
			}
			st := c.Stats()
			if got := obs.SumIO(roots); IOStats(got) != st {
				t.Fatalf("span sum %+v != lifetime stats %+v", got, st)
			}
		})
	}
}

// TestSpansDoNotPerturbTrace: the adversary-visible access trace is
// bit-identical with spans (and the auditor) on versus off.
func TestSpansDoNotPerturbTrace(t *testing.T) {
	run := func(observe bool) TraceSummary {
		c, err := New(Config{BlockSize: 8, CacheWords: 256, Seed: 11, Sorter: "randomized"})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.EnableTrace(0)
		if observe {
			c.EnableAudit(true) // implies EnableSpans
		}
		arr, err := c.Store(mkRecords(1500, 9))
		if err != nil {
			t.Fatal(err)
		}
		if err := arr.Sort(); err != nil {
			t.Fatal(err)
		}
		return c.TraceSummary()
	}
	off, on := run(false), run(true)
	if off != on {
		t.Fatalf("observability perturbed the trace: %+v vs %+v", off, on)
	}
}

// TestAuditCleanAllEngines: for every sorter engine, a learn run followed
// by a fresh same-seed enforce run matches every golden fingerprint —
// oblivious executions replay their access traces exactly.
func TestAuditCleanAllEngines(t *testing.T) {
	for _, engine := range []string{"randomized", "bitonic", "zigzag", "bucket"} {
		t.Run(engine, func(t *testing.T) {
			cfg := Config{BlockSize: 8, CacheWords: 256, Seed: 21, Sorter: engine}
			exercise := func(c *Client) {
				arr, err := c.Store(mkRecords(1100, 4))
				if err != nil {
					t.Fatal(err)
				}
				if err := arr.Sort(); err != nil {
					t.Fatal(err)
				}
				if _, err := arr.Records(); err != nil {
					t.Fatal(err)
				}
			}

			c1, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			learner := c1.EnableAudit(true)
			exercise(c1)
			c1.Close()
			if _, _, violated := learner.Stats(); violated != 0 {
				t.Fatalf("learn run recorded %d violations", violated)
			}
			var golden bytes.Buffer
			if err := learner.SaveJSON(&golden); err != nil {
				t.Fatal(err)
			}

			c2, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c2.Close()
			enforcer := c2.EnableAudit(false)
			if err := enforcer.LoadJSON(bytes.NewReader(golden.Bytes())); err != nil {
				t.Fatal(err)
			}
			exercise(c2)
			observed, matched, violated := enforcer.Stats()
			if violated != 0 {
				t.Fatalf("clean replay flagged %d violations: %v", violated, enforcer.Violations())
			}
			if observed == 0 || matched != observed {
				t.Fatalf("enforce run: %d observed, %d matched", observed, matched)
			}
		})
	}
}

// TestAuditDetectsPerturbedTrace: a deliberately perturbed execution — the
// same sort plus one stray block read inside the audited span, the shape of
// a data-dependent branch leaking — is flagged against golden fingerprints,
// while the unperturbed inner sort still matches.
func TestAuditDetectsPerturbedTrace(t *testing.T) {
	cfg := Config{BlockSize: 8, CacheWords: 256, Seed: 33, Sorter: "zigzag"}

	c1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	learner := c1.EnableAudit(true)
	arr1, err := c1.Store(mkRecords(900, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := arr1.Sort(); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	var golden bytes.Buffer
	if err := learner.SaveJSON(&golden); err != nil {
		t.Fatal(err)
	}

	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	enforcer := c2.EnableAudit(false)
	if err := enforcer.LoadJSON(bytes.NewReader(golden.Bytes())); err != nil {
		t.Fatal(err)
	}
	var fired []obs.Violation
	enforcer.OnViolation = func(v obs.Violation) { fired = append(fired, v) }
	arr2, err := c2.Store(mkRecords(900, 8))
	if err != nil {
		t.Fatal(err)
	}

	// Wrap the real sort in a span claiming the same audit key, with one
	// extra read folded in before it. The nested genuine sort span still
	// matches golden; the wrapper's fingerprint has one access too many.
	key := c2.auditKey("sort/zigzag", arr2.arr.Len(), arr2.arr.Base())
	sp := c2.env.Obs.Start("perturbed-sort")
	sp.Audit(key)
	buf := make([]extmem.Element, c2.env.B())
	c2.env.D.Read(arr2.arr.Base(), buf)
	if err := arr2.Sort(); err != nil {
		t.Fatal(err)
	}
	c2.env.Obs.End(sp)

	_, _, violated := enforcer.Stats()
	if violated != 1 {
		t.Fatalf("perturbed trace: %d keys violated, want exactly 1 (%v)", violated, enforcer.Violations())
	}
	if len(fired) != 1 || fired[0].Key != key {
		t.Fatalf("OnViolation fired %d times with %+v, want the sort key once", len(fired), fired)
	}
	if fired[0].Want.Len+1 != fired[0].Got.Len {
		t.Fatalf("perturbation should add exactly one access: want len %d, got len %d",
			fired[0].Want.Len, fired[0].Got.Len)
	}
}

// TestClientChromeTrace: the client's exported trace is valid Chrome
// trace-event JSON whose complete events mirror the span tree.
func TestClientChromeTrace(t *testing.T) {
	c, err := New(Config{BlockSize: 8, CacheWords: 256, Seed: 2, Sorter: "bucket"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.EnableSpans()
	arr, err := c.Store(mkRecords(800, 6))
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.Sort(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	count := 0
	var walk func(sp *obs.Span)
	walk = func(sp *obs.Span) {
		count++
		for _, ch := range sp.Children {
			walk(ch)
		}
	}
	for _, sp := range c.Spans() {
		walk(sp)
	}
	if len(out.TraceEvents) != count {
		t.Fatalf("%d trace events for %d spans", len(out.TraceEvents), count)
	}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" || ev.Name == "" {
			t.Fatalf("malformed event %+v", ev)
		}
	}
	if tree := c.SpanTree(); tree == "" {
		t.Fatal("SpanTree rendered empty")
	}
}
