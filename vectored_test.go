package oblivext

import (
	"testing"
	"time"
)

// TestScalarVectoredTraceInvariance is the refactor's safety contract at the
// public API level: two clients with equal seed and geometry but different
// data — one forced to scalar I/O (MaxBatchBlocks=1), one fully vectored —
// must present byte-identical access traces to the server for Sort, Select,
// and CompactTight. Batching changes round trips, never the adversary's
// view.
func TestScalarVectoredTraceInvariance(t *testing.T) {
	const n = 2000
	dataA := mkRecords(n, 3)
	dataB := make([]Record, n)
	for i := range dataB {
		dataB[i] = Record{Key: 42, Val: uint64(i)} // constant keys: worst case for leakage
	}

	type op struct {
		name string
		run  func(t *testing.T, arr *Array)
	}
	ops := []op{
		{"Sort", func(t *testing.T, arr *Array) {
			if err := arr.Sort(); err != nil {
				t.Fatal(err)
			}
		}},
		{"Select", func(t *testing.T, arr *Array) {
			if _, err := arr.Select(n / 2); err != nil {
				t.Fatal(err)
			}
		}},
		{"CompactTight", func(t *testing.T, arr *Array) {
			// The predicate (and so the marked count) differs per dataset;
			// the capacity is public and fixed, so the trace must not move.
			if _, err := arr.Mark(func(r Record) bool { return r.Key%5 == 3 }); err != nil {
				t.Fatal(err)
			}
			if _, err := arr.CompactTight(n); err != nil {
				t.Fatal(err)
			}
		}},
	}

	for _, o := range ops {
		run := func(maxBatch int, recs []Record) (TraceSummary, IOStats) {
			c, err := New(Config{BlockSize: 8, CacheWords: 256, Seed: 77, MaxBatchBlocks: maxBatch})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			c.EnableTrace(0)
			arr, err := c.Store(recs)
			if err != nil {
				t.Fatal(err)
			}
			o.run(t, arr)
			return c.TraceSummary(), c.Stats()
		}
		scalarTrace, scalarStats := run(1, dataA)
		vecTrace, vecStats := run(0, dataB)
		if scalarTrace != vecTrace {
			t.Errorf("%s: scalar trace %+v != vectored trace %+v", o.name, scalarTrace, vecTrace)
		}
		if scalarStats.Reads != vecStats.Reads || scalarStats.Writes != vecStats.Writes {
			t.Errorf("%s: block I/O differs between modes: %+v vs %+v", o.name, scalarStats, vecStats)
		}
		if scalarStats.RoundTrips != scalarStats.Total() {
			t.Errorf("%s: scalar mode should make one round trip per block I/O (%d vs %d)",
				o.name, scalarStats.RoundTrips, scalarStats.Total())
		}
		if vecStats.RoundTrips*2 > scalarStats.RoundTrips {
			t.Errorf("%s: vectored mode made %d round trips, scalar %d — expected at least 2x reduction",
				o.name, vecStats.RoundTrips, scalarStats.RoundTrips)
		}
	}
}

// TestSimulatedRemoteStore exercises the latency-modeled backend end to end:
// a client over a simulated WAN accumulates modeled network time
// proportional to round trips, and batching shrinks it.
func TestSimulatedRemoteStore(t *testing.T) {
	run := func(maxBatch int) (time.Duration, IOStats) {
		c, err := New(Config{
			BlockSize: 8, CacheWords: 256, Seed: 5,
			MaxBatchBlocks: maxBatch, SimulatedRTT: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		arr, err := c.Store(mkRecords(1000, 11))
		if err != nil {
			t.Fatal(err)
		}
		if err := arr.Sort(); err != nil {
			t.Fatal(err)
		}
		return c.ModeledNetworkTime(), c.Stats()
	}
	scalarTime, scalarStats := run(1)
	vecTime, vecStats := run(0)
	if scalarTime != time.Duration(scalarStats.RoundTrips)*10*time.Millisecond {
		t.Fatalf("scalar modeled time %v inconsistent with %d round trips", scalarTime, scalarStats.RoundTrips)
	}
	if vecTime != time.Duration(vecStats.RoundTrips)*10*time.Millisecond {
		t.Fatalf("vectored modeled time %v inconsistent with %d round trips", vecTime, vecStats.RoundTrips)
	}
	if vecTime*2 > scalarTime {
		t.Fatalf("batching did not shrink modeled network time: %v vs %v", vecTime, scalarTime)
	}
}
