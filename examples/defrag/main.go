// Defrag: the paper's motivating use of compaction (§3) — defragmenting an
// outsourced file system. Users of outsourced storage pay for the space
// they occupy; compacting live pages to a tight prefix frees the tail, but
// a naive defragmenter's access pattern tells the server exactly which
// pages are live. Tight order-preserving compaction does the same job with
// an access pattern independent of the liveness bitmap.
package main

import (
	"fmt"
	"math/rand/v2"

	"oblivext"
)

func main() {
	client, err := oblivext.New(oblivext.Config{BlockSize: 8, CacheWords: 1024, Seed: 7})
	if err != nil {
		panic(err)
	}
	defer client.Close()

	// A "disk" of 4096 pages, 30% of which are live after deletions.
	const pages = 4096
	r := rand.New(rand.NewPCG(3, 4))
	recs := make([]oblivext.Record, pages)
	live := 0
	for i := range recs {
		alive := uint64(0)
		if r.Float64() < 0.30 {
			alive = 1
			live++
		}
		recs[i] = oblivext.Record{Key: uint64(i), Val: alive}
	}
	disk, err := client.Store(recs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("volume: %d pages, %d live (%.0f%%)\n", pages, live, 100*float64(live)/pages)

	// Mark live pages privately — the server sees a uniform re-encryption
	// scan, not the liveness bitmap.
	marked, err := disk.Mark(func(rec oblivext.Record) bool { return rec.Val == 1 })
	if err != nil {
		panic(err)
	}

	// Budget the compacted size from workload knowledge (the server will
	// see this number, so it must not encode the exact data): half the
	// volume comfortably covers a 30% live ratio.
	client.ResetStats()
	compact, err := disk.CompactTight(pages / 2)
	if err != nil {
		panic(err)
	}
	st := client.Stats()

	kept, _ := compact.Records()
	fmt.Printf("defragmented: %d live pages -> %d blocks (was %d)\n",
		marked, compact.Blocks(), disk.Blocks())
	fmt.Printf("order preserved: page ids %d, %d, %d, ... %d\n",
		kept[0].Key, kept[1].Key, kept[2].Key, kept[len(kept)-1].Key)
	for i := 1; i < len(kept); i++ {
		if kept[i-1].Key >= kept[i].Key {
			panic("order violated")
		}
	}
	fmt.Printf("cost: %d block I/Os; the server never learned which pages were live\n", st.Total())
}
