// Oramkv: a tiny oblivious key-value store. The paper's final observation
// is that its sorting algorithm speeds up the inner loop of oblivious RAM
// simulation; this example uses the resulting ORAM for what ORAMs are for —
// reading and writing records without revealing *which* record you touched.
package main

import (
	"fmt"

	"oblivext"
)

func main() {
	client, err := oblivext.New(oblivext.Config{BlockSize: 8, CacheWords: 1024, Seed: 5})
	if err != nil {
		panic(err)
	}
	defer client.Close()
	client.EnableTrace(0)

	// 64 slots of 8 words each, zero-initialized; every access touches the
	// same-shaped set of buckets no matter which slot it targets.
	kv, err := client.NewORAM(64)
	if err != nil {
		panic(err)
	}

	put := func(slot int, s string) {
		words := make([]uint64, 8)
		for i := 0; i < len(s) && i < 64; i++ {
			words[i/8] |= uint64(s[i]) << (8 * (i % 8))
		}
		if err := kv.Write(slot, words); err != nil {
			panic(err)
		}
	}
	get := func(slot int) string {
		words, err := kv.Read(slot)
		if err != nil {
			panic(err)
		}
		var out []byte
		for i := 0; i < 64; i++ {
			c := byte(words[i/8] >> (8 * (i % 8)))
			if c == 0 {
				break
			}
			out = append(out, c)
		}
		return string(out)
	}

	put(3, "attack at dawn")
	put(41, "retreat at dusk")
	put(3, "attack at noon") // overwrite: server can't tell it's the same slot

	fmt.Printf("slot 3:  %q\n", get(3))
	fmt.Printf("slot 41: %q\n", get(41))
	fmt.Printf("slot 7:  %q (never written)\n", get(7))

	// Hammer one slot; the trace stays as spread out as a uniform scan.
	before := client.Stats()
	for i := 0; i < 50; i++ {
		_ = get(3)
	}
	after := client.Stats()
	fmt.Printf("50 repeated reads of slot 3: %d block I/Os, uniformly spread over the hierarchy\n",
		after.Total()-before.Total())
	ts := client.TraceSummary()
	fmt.Printf("server's view: %d accesses, hash %016x — independent of which slots we touched\n",
		ts.Len, ts.Hash)
}
