// Adversary: Bob's-eye view. This example runs the same computations on
// two *very* different datasets with the same random tape and diffs the
// access traces — the oblivious algorithms' traces are bit-identical,
// while a classic (non-oblivious) selection visibly changes with the data,
// which is exactly the side channel (Chen et al., cited in the paper's
// intro) that motivates data-oblivious algorithms.
package main

import (
	"fmt"
	"math/rand/v2"

	"oblivext/internal/core"
	"oblivext/internal/emsort"
	"oblivext/internal/extmem"
	"oblivext/internal/trace"
	"oblivext/internal/workload"
)

func main() {
	r := rand.New(rand.NewPCG(10, 20))
	uniform := make([]uint64, 2048)
	for i := range uniform {
		uniform[i] = r.Uint64()
	}
	allEqual := make([]uint64, 2048)
	for i := range allEqual {
		allEqual[i] = 12345
	}
	type ds struct {
		name string
		keys []uint64
	}
	datasets := []ds{{"uniform keys", uniform}, {"identical keys", allEqual}}

	obliviousSort := func(env *extmem.Env, a extmem.Array) {
		if err := core.Sort(env, a, core.SortParams{}); err != nil {
			panic(err)
		}
	}
	obliviousSelect := func(env *extmem.Env, a extmem.Array) {
		if _, err := core.Select(env, a, 1024); err != nil {
			panic(err)
		}
	}
	leakySelect := func(env *extmem.Env, a extmem.Array) {
		if _, err := emsort.QuickSelect(env, a, 1024); err != nil {
			panic(err)
		}
	}

	for _, alg := range []struct {
		name string
		fn   func(*extmem.Env, extmem.Array)
	}{
		{"oblivious sort (Theorem 21)", obliviousSort},
		{"oblivious selection (Theorem 13)", obliviousSelect},
		{"NON-oblivious quickselect (baseline)", leakySelect},
	} {
		fmt.Printf("== %s ==\n", alg.name)
		var sums []trace.Summary
		for _, d := range datasets {
			env := extmem.NewEnv(8192, 8, 256, 777) // same seed every run
			rec := trace.NewRecorder(0)
			env.D.SetRecorder(rec)
			a := env.D.Alloc(len(d.keys) / 8)
			if err := workload.Fill(a, d.keys); err != nil {
				panic(err)
			}
			alg.fn(env, a)
			s := rec.Summarize()
			sums = append(sums, s)
			fmt.Printf("  %-16s trace: len=%-8d hash=%016x\n", d.name, s.Len, s.Hash)
		}
		if sums[0].Equal(sums[1]) {
			fmt.Println("  -> identical traces: Bob learns nothing from watching")
		} else {
			fmt.Println("  -> traces differ: the access pattern fingerprints the data")
		}
		fmt.Println()
	}
}
