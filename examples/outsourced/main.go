// Outsourced: the full threat model end to end — records stored encrypted
// in a real file (fresh IV per write, so re-encryption is invisible), all
// maintenance done with data-oblivious operations, and the "server's view"
// printed to show what an honest-but-curious host actually observes.
package main

import (
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"

	"oblivext"
)

func main() {
	dir, err := os.MkdirTemp("", "oblivext-demo")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	key := make([]byte, 32) // in production: from your KMS
	for i := range key {
		key[i] = byte(i * 11)
	}
	client, err := oblivext.New(oblivext.Config{
		BlockSize:  8,
		CacheWords: 512,
		Seed:       2024,
		Path:       filepath.Join(dir, "tenant-data.dat"),
		// Every block write uses a fresh IV: the host cannot tell a
		// re-encryption of old data from new data (the paper's semantic
		// security assumption, implemented).
		EncryptionKey: key,
		StartBlocks:   8192,
	})
	if err != nil {
		panic(err)
	}
	defer client.Close()
	client.EnableTrace(6)

	// Upload salary records (the classic "don't let the host learn the
	// distribution" workload).
	r := rand.New(rand.NewPCG(9, 9))
	recs := make([]oblivext.Record, 3000)
	for i := range recs {
		recs[i] = oblivext.Record{Key: 30000 + r.Uint64()%170000, Val: uint64(i)}
	}
	arr, err := client.Store(recs)
	if err != nil {
		panic(err)
	}

	// Payroll analytics without leaking access patterns.
	median, err := arr.Select(arr.Len() / 2)
	if err != nil {
		panic(err)
	}
	deciles, err := arr.Quantiles(4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("median salary: %d\n", median.Key)
	fmt.Print("quartiles:")
	for _, q := range deciles {
		fmt.Printf(" %d", q.Key)
	}
	fmt.Println()

	if err := arr.Sort(); err != nil {
		panic(err)
	}
	sorted, _ := arr.Records()
	fmt.Printf("sorted on the host: lowest %d, highest %d\n",
		sorted[0].Key, sorted[len(sorted)-1].Key)

	ts := client.TraceSummary()
	st := client.Stats()
	fmt.Printf("\nwhat the host saw: %d block accesses (hash %016x), %d reads / %d writes\n",
		ts.Len, ts.Hash, st.Reads, st.Writes)
	fmt.Println("every byte on disk is AES-encrypted with per-write IVs;")
	fmt.Println("the address sequence is a fixed function of (N, B, M, seed) — not of any salary")
}
