// Quickstart: outsource records, sort them obliviously, query a rank —
// the three-line tour of the library.
package main

import (
	"fmt"
	"math/rand/v2"

	"oblivext"
)

func main() {
	// Alice's side: a small private cache (M = 512 records) against a
	// block store serving B = 8 records per block.
	client, err := oblivext.New(oblivext.Config{BlockSize: 8, CacheWords: 512, Seed: 42})
	if err != nil {
		panic(err)
	}
	defer client.Close()

	// Outsource ten thousand records.
	r := rand.New(rand.NewPCG(1, 2))
	recs := make([]oblivext.Record, 10000)
	for i := range recs {
		recs[i] = oblivext.Record{Key: r.Uint64() % 1000000, Val: uint64(i)}
	}
	arr, err := client.Store(recs)
	if err != nil {
		panic(err)
	}

	// The median, in a linear number of I/Os, without revealing anything.
	med, err := arr.Select(arr.Len() / 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("median key: %d\n", med.Key)

	// Quartiles in one more linear pass.
	qs, err := arr.Quantiles(3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("quartiles: %d %d %d\n", qs[0].Key, qs[1].Key, qs[2].Key)

	// Sort the whole array obliviously.
	client.ResetStats()
	if err := arr.Sort(); err != nil {
		panic(err)
	}
	st := client.Stats()
	fmt.Printf("sorted %d records with %d block I/Os (%.1f per block)\n",
		arr.Len(), st.Total(), float64(st.Total())/float64(arr.Blocks()))

	sorted, _ := arr.Records()
	fmt.Printf("first keys: %d %d %d ... last key: %d\n",
		sorted[0].Key, sorted[1].Key, sorted[2].Key, sorted[len(sorted)-1].Key)
}
