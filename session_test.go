package oblivext

import (
	"fmt"
	"sync"
	"testing"

	"oblivext/internal/obs"
)

// Session isolation: N Clients in one process are N independent Alices.
// Nothing a session measures — IOStats, round trips, sealed/opened bytes,
// its logical trace, its span tree, its audit verdicts — may depend on what
// the *other* sessions in the process are doing. These tests pin that by
// running each session's workload twice: once alone in a quiet process,
// once racing three very different siblings, and requiring the two runs'
// observations to be bit-identical. Any process-global counter, collector,
// or cache shared across Clients breaks the equality.

// sessionObservation is everything one session can see about itself.
type sessionObservation struct {
	stats    IOStats
	trace    TraceSummary
	spans    string // deterministic skeleton: names + I/O deltas, no wall time
	violated int
}

// runSessionWorkload builds a fresh encrypted, span-instrumented Client and
// runs a seed-dependent workload: store, sort, a few ORAM accesses. The
// returned observation is a deterministic function of (n, seed) — compared
// across quiet and crowded processes.
func runSessionWorkload(t *testing.T, n int, seed uint64) sessionObservation {
	t.Helper()
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(seed) + byte(i)
	}
	c, err := New(Config{BlockSize: 8, CacheWords: 512, Seed: seed, EncryptionKey: key})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.EnableTrace(0)
	auditor := c.EnableAudit(true)

	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Key: uint64(i)*seed%10007 + 1, Val: seed}
	}
	arr, err := c.Store(recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.Sort(); err != nil {
		t.Fatal(err)
	}
	kv, err := c.NewORAM(32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := kv.Write(int(seed)%32, []uint64{seed, uint64(i), 0, 0, 0, 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
		if _, err := kv.Read((int(seed) + i) % 32); err != nil {
			t.Fatal(err)
		}
	}

	_, _, violated := auditor.Stats()
	return sessionObservation{
		stats:    c.Stats(),
		trace:    c.TraceSummary(),
		spans:    spanSkeleton(c.Spans()),
		violated: violated,
	}
}

// spanSkeleton renders a span tree's deterministic parts: names, nesting,
// and I/O counter deltas — wall-clock fields excluded, since scheduling may
// legitimately differ between a quiet and a crowded process.
func spanSkeleton(spans []*obs.Span) string {
	var b []byte
	var walk func(s *obs.Span, depth int)
	walk = func(s *obs.Span, depth int) {
		b = fmt.Appendf(b, "%*s%s r=%d w=%d rt=%d sealed=%d opened=%d\n",
			depth*2, "", s.Name, s.IO.Reads, s.IO.Writes, s.IO.RoundTrips, s.IO.BytesSealed, s.IO.BytesOpened)
		for _, ch := range s.Children {
			walk(ch, depth+1)
		}
	}
	for _, s := range spans {
		walk(s, 0)
	}
	return string(b)
}

func TestSessionIsolation(t *testing.T) {
	// Four deliberately different sessions: different sizes, seeds, data.
	type sess struct {
		n    int
		seed uint64
	}
	sessions := []sess{{96, 3}, {200, 11}, {64, 29}, {150, 4}}

	// Quiet baselines: each session alone.
	baseline := make([]sessionObservation, len(sessions))
	for i, s := range sessions {
		baseline[i] = runSessionWorkload(t, s.n, s.seed)
	}

	// Crowded run: all four at once, racing.
	crowded := make([]sessionObservation, len(sessions))
	var wg sync.WaitGroup
	for i, s := range sessions {
		wg.Add(1)
		go func() {
			defer wg.Done()
			crowded[i] = runSessionWorkload(t, s.n, s.seed)
		}()
	}
	wg.Wait()

	for i := range sessions {
		if crowded[i].stats != baseline[i].stats {
			t.Errorf("session %d IOStats bled: crowded %+v != solo %+v", i, crowded[i].stats, baseline[i].stats)
		}
		if crowded[i].trace != baseline[i].trace {
			t.Errorf("session %d trace bled: crowded %+v != solo %+v", i, crowded[i].trace, baseline[i].trace)
		}
		if crowded[i].spans != baseline[i].spans {
			t.Errorf("session %d span tree bled:\ncrowded:\n%s\nsolo:\n%s", i, crowded[i].spans, baseline[i].spans)
		}
		if crowded[i].violated != 0 || baseline[i].violated != 0 {
			t.Errorf("session %d audit violations: crowded %d, solo %d", i, crowded[i].violated, baseline[i].violated)
		}
	}
}

func TestSessionIsolationRepeatedConstruction(t *testing.T) {
	// A subtler leak: state that survives one Client's Close and taints the
	// next (package-level caches, reused pools). Construct and run the same
	// session many times in sequence; every observation must equal the
	// first.
	first := runSessionWorkload(t, 80, 17)
	for i := 0; i < 3; i++ {
		again := runSessionWorkload(t, 80, 17)
		if again.stats != first.stats || again.trace != first.trace || again.spans != first.spans {
			t.Fatalf("run %d diverged from the first: %+v vs %+v", i+2, again.stats, first.stats)
		}
	}
}
