package oblivext_test

import (
	"fmt"
	"net/http/httptest"

	"oblivext"
	"oblivext/internal/extmem"
	"oblivext/internal/extmem/netstore"
)

// ExampleNew outsources records to an in-memory Bob and runs the paper's
// headline operations.
func ExampleNew() {
	client, err := oblivext.New(oblivext.Config{BlockSize: 8, CacheWords: 512, Seed: 1})
	if err != nil {
		panic(err)
	}
	defer client.Close()

	records := []oblivext.Record{{Key: 30, Val: 1}, {Key: 10, Val: 2}, {Key: 20, Val: 3}}
	arr, err := client.Store(records)
	if err != nil {
		panic(err)
	}
	if err := arr.Sort(); err != nil {
		panic(err)
	}
	median, err := arr.Select(2)
	if err != nil {
		panic(err)
	}
	fmt.Println("median key:", median.Key)
	// Output:
	// median key: 20
}

// ExampleNew_encryptedHTTPBackend points an encrypting client at a real
// obstore server: Alice seals every block (AES-CTR + HMAC, fresh IV per
// write) before it leaves the process, so Bob only ever stores
// IV‖ciphertext‖tag. A sealed block occupies BlockSize+2 elements, which is
// why the server is provisioned with CryptChildBlockSize(8) = 10 — a
// standalone deployment would run `obstore -b 10` (plus -tls-cert/-tls-key
// and -auth-token, matched by Config.TLSRootCA and Config.AuthToken).
func ExampleNew_encryptedHTTPBackend() {
	// An in-process stand-in for `obstore -b 10`.
	server := netstore.NewServer(
		extmem.NewMemStore(4096, extmem.CryptChildBlockSize(8)), netstore.ServerOptions{})
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	key := make([]byte, 32) // in production: from a KMS or key file, never hard-coded
	for i := range key {
		key[i] = byte(i)
	}
	client, err := oblivext.New(oblivext.Config{
		BlockSize:     8,
		CacheWords:    512,
		Seed:          1,
		URL:           ts.URL,
		EncryptionKey: key,
	})
	if err != nil {
		panic(err)
	}
	defer client.Close()

	records := make([]oblivext.Record, 100)
	for i := range records {
		records[i] = oblivext.Record{Key: uint64(100 - i), Val: uint64(i)}
	}
	arr, err := client.Store(records)
	if err != nil {
		panic(err)
	}
	if err := arr.Sort(); err != nil {
		panic(err)
	}
	smallest, err := arr.Select(1)
	if err != nil {
		panic(err)
	}
	st := client.Stats()
	fmt.Println("smallest key:", smallest.Key)
	fmt.Println("crypto ran client-side:", st.BytesSealed > 0 && st.BytesOpened > 0)
	// Output:
	// smallest key: 1
	// crypto ran client-side: true
}
