package oblivext

import (
	"math/rand/v2"
	"path/filepath"
	"sort"
	"testing"
)

func mkRecords(n int, seed uint64) []Record {
	r := rand.New(rand.NewPCG(seed, seed+1))
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{Key: r.Uint64() % 1_000_000, Val: uint64(i)}
	}
	return out
}

func TestPublicSortSelectQuantiles(t *testing.T) {
	c, err := New(Config{BlockSize: 8, CacheWords: 256, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recs := mkRecords(2000, 7)
	arr, err := c.Store(recs)
	if err != nil {
		t.Fatal(err)
	}
	if arr.Len() != 2000 {
		t.Fatalf("len = %d", arr.Len())
	}
	sorted := append([]Record(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })

	med, err := arr.Select(1000)
	if err != nil {
		t.Fatal(err)
	}
	if med.Key != sorted[999].Key {
		t.Fatalf("median = %d, want %d", med.Key, sorted[999].Key)
	}

	qs, err := arr.Quantiles(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 {
		t.Fatalf("%d quantiles", len(qs))
	}

	if err := arr.Sort(); err != nil {
		t.Fatal(err)
	}
	got, err := arr.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records after sort, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i].Key != sorted[i].Key {
			t.Fatalf("position %d: %d vs %d", i, got[i].Key, sorted[i].Key)
		}
	}
}

func TestPublicSortDeterministic(t *testing.T) {
	c, _ := New(Config{BlockSize: 4, CacheWords: 64, Seed: 1})
	defer c.Close()
	recs := mkRecords(100, 3)
	arr, _ := c.Store(recs)
	arr.SortDeterministic()
	got, _ := arr.Records()
	for i := 1; i < len(got); i++ {
		if got[i-1].Key > got[i].Key {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestPublicMarkAndCompact(t *testing.T) {
	c, _ := New(Config{BlockSize: 8, CacheWords: 1024, Seed: 9})
	defer c.Close()
	recs := mkRecords(500, 11)
	arr, _ := c.Store(recs)
	marked, err := arr.Mark(func(r Record) bool { return r.Key%10 == 3 })
	if err != nil {
		t.Fatal(err)
	}
	tight, err := arr.CompactTight(marked + 8)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := tight.Records()
	if int64(len(got)) != marked {
		t.Fatalf("%d records compacted, want %d", len(got), marked)
	}
	// Order preserved: Vals (insertion indexes) strictly increasing.
	for i := 1; i < len(got); i++ {
		if got[i-1].Val >= got[i].Val {
			t.Fatalf("order broken at %d", i)
		}
	}
	for _, r := range got {
		if r.Key%10 != 3 {
			t.Fatalf("unmarked record %d leaked through", r.Key)
		}
	}

	loose, err := arr.CompactLoose(marked + 8)
	if err != nil {
		t.Fatal(err)
	}
	lr, _ := loose.Records()
	if int64(len(lr)) != marked {
		t.Fatalf("loose kept %d, want %d", len(lr), marked)
	}
}

func TestPublicTraceObliviousness(t *testing.T) {
	run := func(recs []Record) TraceSummary {
		c, _ := New(Config{BlockSize: 8, CacheWords: 256, Seed: 77})
		defer c.Close()
		c.EnableTrace(0)
		arr, _ := c.Store(recs)
		if err := arr.Sort(); err != nil {
			t.Fatal(err)
		}
		return c.TraceSummary()
	}
	a := mkRecords(1500, 1)
	b := make([]Record, 1500)
	for i := range b {
		b[i] = Record{Key: 5, Val: uint64(i)}
	}
	sa, sb := run(a), run(b)
	if sa != sb {
		t.Fatalf("public sort trace depends on data: %+v vs %+v", sa, sb)
	}
}

func TestPublicFileBackedEncrypted(t *testing.T) {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i)
	}
	c, err := New(Config{
		BlockSize: 4, CacheWords: 128, Seed: 5,
		Path:          filepath.Join(t.TempDir(), "store.dat"),
		EncryptionKey: key,
		StartBlocks:   4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recs := mkRecords(200, 13)
	arr, err := c.Store(recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.Sort(); err != nil {
		t.Fatal(err)
	}
	got, _ := arr.Records()
	for i := 1; i < len(got); i++ {
		if got[i-1].Key > got[i].Key {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestPublicORAM(t *testing.T) {
	c, _ := New(Config{BlockSize: 4, CacheWords: 256, Seed: 3})
	defer c.Close()
	o, err := c.NewORAM(16)
	if err != nil {
		t.Fatal(err)
	}
	if o.Size() != 16 {
		t.Fatalf("size = %d", o.Size())
	}
	if err := o.Write(3, []uint64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	v, err := o.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 1 || v[3] != 4 {
		t.Fatalf("read back %v", v)
	}
}

func TestPublicConfigValidation(t *testing.T) {
	if _, err := New(Config{BlockSize: 3}); err == nil {
		t.Error("non-power-of-two block size accepted")
	}
	if _, err := New(Config{BlockSize: 8, CacheWords: 8}); err == nil {
		t.Error("tiny cache accepted")
	}
	if _, err := New(Config{EncryptionKey: make([]byte, 7)}); err == nil {
		t.Error("short encryption key accepted")
	}
	if _, err := New(Config{Path: "/nonexistent-dir-xyz/f.dat"}); err == nil {
		t.Error("bad path accepted")
	}
}

func TestPublicStatsAndCache(t *testing.T) {
	c, _ := New(Config{BlockSize: 8, CacheWords: 256, Seed: 2})
	defer c.Close()
	arr, _ := c.Store(mkRecords(400, 5))
	c.ResetStats()
	arr.SortDeterministic()
	st := c.Stats()
	if st.Reads == 0 || st.Writes == 0 || st.Total() != st.Reads+st.Writes {
		t.Fatalf("stats %+v", st)
	}
	if hw := c.CacheHighWater(); hw > 256 {
		t.Fatalf("cache high water %d exceeds configured 256", hw)
	}
}
