module oblivext

go 1.24
