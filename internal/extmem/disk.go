package extmem

import (
	"fmt"

	"oblivext/internal/obs"
	"oblivext/internal/trace"
)

// Stats counts the block I/Os an algorithm performed — the quantity every
// theorem in the paper bounds — and the store interactions (round trips)
// those I/Os were batched into, the quantity that dominates wall-clock time
// when Bob is remote. When the store seals blocks client-side, BytesSealed
// and BytesOpened carry the crypto byte counters, folded in by Stats().
//
// The field set and order deliberately mirror obs.Counters and
// oblivext.IOStats, which convert from Stats as whole structs — adding a
// counter here without updating them is a compile error, not a silent drop.
type Stats struct {
	Reads       int64
	Writes      int64
	RoundTrips  int64
	BytesSealed int64
	BytesOpened int64
}

// Total returns reads plus writes.
func (s Stats) Total() int64 { return s.Reads + s.Writes }

// Sub returns the difference s - o, for measuring a phase.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:       s.Reads - o.Reads,
		Writes:      s.Writes - o.Writes,
		RoundTrips:  s.RoundTrips - o.RoundTrips,
		BytesSealed: s.BytesSealed - o.BytesSealed,
		BytesOpened: s.BytesOpened - o.BytesOpened,
	}
}

// CryptCounters is implemented by stores that seal blocks client-side (the
// CryptStore); a Disk over such a store folds the byte counters into its
// Stats so one snapshot carries the whole client-side picture.
type CryptCounters interface {
	BytesSealed() int64
	BytesOpened() int64
	ResetCryptStats()
}

// Disk is Bob's storage as the algorithms see it: a block store instrumented
// with I/O counters, an optional trace recorder capturing the adversary's
// view, and a bump allocator handing out scratch arenas. All methods panic
// on geometry violations: in this simulator an out-of-range access is a bug
// in the algorithm, not an environmental error.
type Disk struct {
	store    BlockStore
	b        int
	stats    Stats
	rec      *trace.Recorder
	obs      *obs.Collector
	top      int
	maxBatch int   // blocks per vectored store call; 0 = unlimited, 1 = scalar
	addrs    []int // scratch for building vectored address lists
}

// NewDisk wraps a block store. The allocator starts at block 0.
func NewDisk(store BlockStore) *Disk {
	return &Disk{store: store, b: store.BlockSize()}
}

// B returns the block size in elements.
func (d *Disk) B() int { return d.b }

// SetMaxBatch caps how many blocks a single vectored store call may move:
// 0 (the default) leaves batches bounded only by the caller's cache budget,
// 1 degrades ReadMany/WriteMany to one round trip per block — the scalar
// baseline. The per-block trace is identical for every setting; only the
// round-trip grouping changes.
func (d *Disk) SetMaxBatch(n int) {
	if n < 0 {
		panic("extmem: negative batch cap")
	}
	d.maxBatch = n
}

// MaxBatch returns the vectored-call cap (0 = unlimited).
func (d *Disk) MaxBatch() int { return d.maxBatch }

// chunk returns the number of blocks of a remaining request to put in the
// next store call.
func (d *Disk) chunk(remaining int) int {
	if d.maxBatch > 0 && remaining > d.maxBatch {
		return d.maxBatch
	}
	return remaining
}

// Stats returns the cumulative I/O counters, with the crypto byte counters
// folded in when the store seals blocks client-side.
func (d *Disk) Stats() Stats {
	st := d.stats
	if cc, ok := d.store.(CryptCounters); ok {
		st.BytesSealed = cc.BytesSealed()
		st.BytesOpened = cc.BytesOpened()
	}
	return st
}

// ResetStats zeroes the I/O counters, including a sealing store's byte
// counters so a Stats snapshot stays internally consistent.
func (d *Disk) ResetStats() {
	d.stats = Stats{}
	if cc, ok := d.store.(CryptCounters); ok {
		cc.ResetCryptStats()
	}
}

// SetRecorder attaches (or with nil detaches) a trace recorder.
func (d *Disk) SetRecorder(r *trace.Recorder) { d.rec = r }

// Recorder returns the attached trace recorder, if any.
func (d *Disk) Recorder() *trace.Recorder { return d.rec }

// SetObs attaches (or with nil detaches) a span collector; every block
// access is folded into the open spans' audit fingerprints.
func (d *Disk) SetObs(c *obs.Collector) { d.obs = c }

// Obs returns the attached span collector, if any.
func (d *Disk) Obs() *obs.Collector { return d.obs }

// Read copies block addr into dst and logs the access (one round trip).
func (d *Disk) Read(addr int, dst []Element) {
	if err := d.store.ReadBlock(addr, dst); err != nil {
		panic(fmt.Sprintf("extmem: read: %v", err))
	}
	d.stats.Reads++
	d.stats.RoundTrips++
	d.rec.Record(trace.Read, int64(addr))
	d.obs.Access('R', int64(addr))
}

// Write copies src into block addr and logs the access (one round trip).
func (d *Disk) Write(addr int, src []Element) {
	if err := d.store.WriteBlock(addr, src); err != nil {
		panic(fmt.Sprintf("extmem: write: %v", err))
	}
	d.stats.Writes++
	d.stats.RoundTrips++
	d.rec.Record(trace.Write, int64(addr))
	d.obs.Access('W', int64(addr))
}

// ReadMany copies blocks addrs[i] into dst[i*B:(i+1)*B], issuing vectored
// store calls of at most MaxBatch blocks each. The recorded trace is the
// identical per-block sequence the scalar loop would produce — batching
// changes what the server must be told per interaction, never what it
// learns — and Reads advances by len(addrs) while RoundTrips advances by
// the number of store calls.
func (d *Disk) ReadMany(addrs []int, dst []Element) {
	if len(dst) != len(addrs)*d.b {
		panic(fmt.Sprintf("extmem: vectored read buffer %d != %d blocks of %d", len(dst), len(addrs), d.b))
	}
	for lo := 0; lo < len(addrs); {
		n := d.chunk(len(addrs) - lo)
		if err := d.store.ReadBlocks(addrs[lo:lo+n], dst[lo*d.b:(lo+n)*d.b]); err != nil {
			panic(fmt.Sprintf("extmem: vectored read: %v", err))
		}
		d.stats.Reads += int64(n)
		d.stats.RoundTrips++
		for _, a := range addrs[lo : lo+n] {
			d.rec.Record(trace.Read, int64(a))
			d.obs.Access('R', int64(a))
		}
		lo += n
	}
}

// WriteMany copies src[i*B:(i+1)*B] into blocks addrs[i]; the vectored dual
// of ReadMany with the same trace and accounting guarantees.
func (d *Disk) WriteMany(addrs []int, src []Element) {
	if len(src) != len(addrs)*d.b {
		panic(fmt.Sprintf("extmem: vectored write buffer %d != %d blocks of %d", len(src), len(addrs), d.b))
	}
	for lo := 0; lo < len(addrs); {
		n := d.chunk(len(addrs) - lo)
		if err := d.store.WriteBlocks(addrs[lo:lo+n], src[lo*d.b:(lo+n)*d.b]); err != nil {
			panic(fmt.Sprintf("extmem: vectored write: %v", err))
		}
		d.stats.Writes += int64(n)
		d.stats.RoundTrips++
		for _, a := range addrs[lo : lo+n] {
			d.rec.Record(trace.Write, int64(a))
			d.obs.Access('W', int64(a))
		}
		lo += n
	}
}

// runAddrs fills the scratch address list with the run [base, base+n).
func (d *Disk) runAddrs(base, n int) []int {
	if cap(d.addrs) < n {
		d.addrs = make([]int, n)
	}
	as := d.addrs[:n]
	for i := range as {
		as[i] = base + i
	}
	return as
}

// ReadRun reads the contiguous blocks [base, base+n) into dst.
func (d *Disk) ReadRun(base, n int, dst []Element) {
	d.ReadMany(d.runAddrs(base, n), dst)
}

// WriteRun writes dst into the contiguous blocks [base, base+n).
func (d *Disk) WriteRun(base, n int, src []Element) {
	d.WriteMany(d.runAddrs(base, n), src)
}

// Alloc reserves n fresh blocks and returns them as an Array. Allocation is
// a client-side bookkeeping operation (no I/O, no trace): the request
// pattern of every algorithm here depends only on N, M and B, so allocation
// reveals nothing. In-memory stores grow on demand.
func (d *Disk) Alloc(n int) Array {
	if n < 0 {
		panic("extmem: negative allocation")
	}
	if d.top+n > d.store.NumBlocks() {
		g, ok := d.store.(Growable)
		if !ok {
			panic(fmt.Sprintf("extmem: allocation of %d blocks exceeds store capacity %d (top %d)",
				n, d.store.NumBlocks(), d.top))
		}
		grow := d.store.NumBlocks() * 2
		if grow < d.top+n {
			grow = d.top + n
		}
		if err := g.GrowTo(grow); err != nil {
			panic(fmt.Sprintf("extmem: store growth failed: %v", err))
		}
	}
	a := Array{d: d, base: d.top, n: n}
	d.top += n
	return a
}

// Mark returns the current allocation watermark; pass it to Release to free
// every arena allocated since (stack discipline, as the recursive algorithms
// need).
func (d *Disk) Mark() int { return d.top }

// Release frees all arenas allocated after the given watermark.
func (d *Disk) Release(mark int) {
	if mark < 0 || mark > d.top {
		panic("extmem: bad release watermark")
	}
	d.top = mark
}

// Allocated returns the number of blocks currently allocated.
func (d *Disk) Allocated() int { return d.top }

// Array is a view over a contiguous run of blocks on a Disk. All the
// paper's algorithms operate on Arrays; Slice carves subarrays without
// copying, exactly as the paper reuses regions of A.
type Array struct {
	d    *Disk
	base int
	n    int
}

// Len returns the array length in blocks.
func (a Array) Len() int { return a.n }

// B returns the block size in elements.
func (a Array) B() int { return a.d.b }

// Base returns the absolute block address of the array's first block.
func (a Array) Base() int { return a.base }

// Disk returns the underlying disk.
func (a Array) Disk() *Disk { return a.d }

// Read copies block i of the array into dst.
func (a Array) Read(i int, dst []Element) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("extmem: array read index %d out of range [0,%d)", i, a.n))
	}
	a.d.Read(a.base+i, dst)
}

// Write copies src into block i of the array.
func (a Array) Write(i int, src []Element) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("extmem: array write index %d out of range [0,%d)", i, a.n))
	}
	a.d.Write(a.base+i, src)
}

// ReadMany copies blocks is[i] of the array into dst[i*B:(i+1)*B] through
// the disk's vectored path.
func (a Array) ReadMany(is []int, dst []Element) {
	a.d.ReadMany(a.absAddrs(is), dst)
}

// WriteMany copies src[i*B:(i+1)*B] into blocks is[i] of the array through
// the disk's vectored path.
func (a Array) WriteMany(is []int, src []Element) {
	a.d.WriteMany(a.absAddrs(is), src)
}

// ReadRange reads the contiguous blocks [lo, hi) of the array into dst
// (len(dst) == (hi-lo)*B).
func (a Array) ReadRange(lo, hi int, dst []Element) {
	if lo < 0 || hi < lo || hi > a.n {
		panic(fmt.Sprintf("extmem: bad range read [%d,%d) of %d", lo, hi, a.n))
	}
	a.d.ReadRun(a.base+lo, hi-lo, dst)
}

// WriteRange writes src into the contiguous blocks [lo, hi) of the array.
func (a Array) WriteRange(lo, hi int, src []Element) {
	if lo < 0 || hi < lo || hi > a.n {
		panic(fmt.Sprintf("extmem: bad range write [%d,%d) of %d", lo, hi, a.n))
	}
	a.d.WriteRun(a.base+lo, hi-lo, src)
}

// absAddrs maps array-relative block indices to absolute disk addresses in
// the disk's scratch list.
func (a Array) absAddrs(is []int) []int {
	if cap(a.d.addrs) < len(is) {
		a.d.addrs = make([]int, len(is))
	}
	as := a.d.addrs[:len(is)]
	for i, idx := range is {
		if idx < 0 || idx >= a.n {
			panic(fmt.Sprintf("extmem: array access index %d out of range [0,%d)", idx, a.n))
		}
		as[i] = a.base + idx
	}
	return as
}

// Slice returns the subarray [lo, hi).
func (a Array) Slice(lo, hi int) Array {
	if lo < 0 || hi < lo || hi > a.n {
		panic(fmt.Sprintf("extmem: bad slice [%d,%d) of %d", lo, hi, a.n))
	}
	return Array{d: a.d, base: a.base + lo, n: hi - lo}
}
