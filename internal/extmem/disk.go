package extmem

import (
	"fmt"

	"oblivext/internal/trace"
)

// Stats counts the block I/Os an algorithm performed — the quantity every
// theorem in the paper bounds.
type Stats struct {
	Reads  int64
	Writes int64
}

// Total returns reads plus writes.
func (s Stats) Total() int64 { return s.Reads + s.Writes }

// Sub returns the difference s - o, for measuring a phase.
func (s Stats) Sub(o Stats) Stats { return Stats{s.Reads - o.Reads, s.Writes - o.Writes} }

// Disk is Bob's storage as the algorithms see it: a block store instrumented
// with I/O counters, an optional trace recorder capturing the adversary's
// view, and a bump allocator handing out scratch arenas. All methods panic
// on geometry violations: in this simulator an out-of-range access is a bug
// in the algorithm, not an environmental error.
type Disk struct {
	store BlockStore
	b     int
	stats Stats
	rec   *trace.Recorder
	top   int
}

// NewDisk wraps a block store. The allocator starts at block 0.
func NewDisk(store BlockStore) *Disk {
	return &Disk{store: store, b: store.BlockSize()}
}

// B returns the block size in elements.
func (d *Disk) B() int { return d.b }

// Stats returns the cumulative I/O counters.
func (d *Disk) Stats() Stats { return d.stats }

// ResetStats zeroes the I/O counters.
func (d *Disk) ResetStats() { d.stats = Stats{} }

// SetRecorder attaches (or with nil detaches) a trace recorder.
func (d *Disk) SetRecorder(r *trace.Recorder) { d.rec = r }

// Recorder returns the attached trace recorder, if any.
func (d *Disk) Recorder() *trace.Recorder { return d.rec }

// Read copies block addr into dst and logs the access.
func (d *Disk) Read(addr int, dst []Element) {
	if err := d.store.ReadBlock(addr, dst); err != nil {
		panic(fmt.Sprintf("extmem: read: %v", err))
	}
	d.stats.Reads++
	d.rec.Record(trace.Read, int64(addr))
}

// Write copies src into block addr and logs the access.
func (d *Disk) Write(addr int, src []Element) {
	if err := d.store.WriteBlock(addr, src); err != nil {
		panic(fmt.Sprintf("extmem: write: %v", err))
	}
	d.stats.Writes++
	d.rec.Record(trace.Write, int64(addr))
}

// Alloc reserves n fresh blocks and returns them as an Array. Allocation is
// a client-side bookkeeping operation (no I/O, no trace): the request
// pattern of every algorithm here depends only on N, M and B, so allocation
// reveals nothing. In-memory stores grow on demand.
func (d *Disk) Alloc(n int) Array {
	if n < 0 {
		panic("extmem: negative allocation")
	}
	if d.top+n > d.store.NumBlocks() {
		g, ok := d.store.(Growable)
		if !ok {
			panic(fmt.Sprintf("extmem: allocation of %d blocks exceeds store capacity %d (top %d)",
				n, d.store.NumBlocks(), d.top))
		}
		grow := d.store.NumBlocks() * 2
		if grow < d.top+n {
			grow = d.top + n
		}
		if err := g.GrowTo(grow); err != nil {
			panic(fmt.Sprintf("extmem: store growth failed: %v", err))
		}
	}
	a := Array{d: d, base: d.top, n: n}
	d.top += n
	return a
}

// Mark returns the current allocation watermark; pass it to Release to free
// every arena allocated since (stack discipline, as the recursive algorithms
// need).
func (d *Disk) Mark() int { return d.top }

// Release frees all arenas allocated after the given watermark.
func (d *Disk) Release(mark int) {
	if mark < 0 || mark > d.top {
		panic("extmem: bad release watermark")
	}
	d.top = mark
}

// Allocated returns the number of blocks currently allocated.
func (d *Disk) Allocated() int { return d.top }

// Array is a view over a contiguous run of blocks on a Disk. All the
// paper's algorithms operate on Arrays; Slice carves subarrays without
// copying, exactly as the paper reuses regions of A.
type Array struct {
	d    *Disk
	base int
	n    int
}

// Len returns the array length in blocks.
func (a Array) Len() int { return a.n }

// B returns the block size in elements.
func (a Array) B() int { return a.d.b }

// Base returns the absolute block address of the array's first block.
func (a Array) Base() int { return a.base }

// Disk returns the underlying disk.
func (a Array) Disk() *Disk { return a.d }

// Read copies block i of the array into dst.
func (a Array) Read(i int, dst []Element) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("extmem: array read index %d out of range [0,%d)", i, a.n))
	}
	a.d.Read(a.base+i, dst)
}

// Write copies src into block i of the array.
func (a Array) Write(i int, src []Element) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("extmem: array write index %d out of range [0,%d)", i, a.n))
	}
	a.d.Write(a.base+i, src)
}

// Slice returns the subarray [lo, hi).
func (a Array) Slice(lo, hi int) Array {
	if lo < 0 || hi < lo || hi > a.n {
		panic(fmt.Sprintf("extmem: bad slice [%d,%d) of %d", lo, hi, a.n))
	}
	return Array{d: a.d, base: a.base + lo, n: hi - lo}
}
