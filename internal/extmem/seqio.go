package extmem

import "fmt"

// SeqReader streams the blocks [lo, hi) of an Array in order through a
// double-buffered cache window: while the caller consumes the blocks of one
// half, the other half's chunk is already in flight on a background
// goroutine, so a remote Bob's round trip overlaps Alice's in-cache compute
// instead of serializing with it.
//
// The access pattern is untouched — the same sequential block reads, in the
// same order, grouped into the same vectored calls a synchronous
// half-buffer scan would make; only the issue time moves earlier. At most
// one prefetch is ever outstanding, and the reader must be the only source
// of disk I/O between Next calls (true of the read-only scans it serves:
// their callbacks are pure compute). Call Close before freeing the buffer —
// it joins any in-flight fetch.
//
// The buffer must be checked out of the Cache by the caller and hold an
// even number of blocks (the two halves); with async=false the reader
// degrades to a synchronous half-buffer scan, which is the apples-to-apples
// baseline for measuring overlap.
type SeqReader struct {
	a    Array
	b    int
	k    int // blocks per half
	hi   int
	next int // array index the caller will see on the next Next

	cur     []Element // half currently being consumed
	curLo   int       // array index of cur[0]
	curFill int       // blocks loaded in cur

	async   bool
	pending bool // a prefetch is in flight into the other half
	pendLo  int
	pendN   int
	other   []Element
	done    chan any // carries the prefetch goroutine's recover()
}

// NewSeqReader returns a reader over the blocks [lo, hi) of a. The first
// chunk is fetched synchronously and the second is immediately prefetched;
// every later chunk is requested as soon as its half frees up.
func NewSeqReader(a Array, lo, hi int, buf []Element, async bool) *SeqReader {
	b := a.B()
	if lo < 0 || hi < lo || hi > a.Len() {
		panic(fmt.Sprintf("extmem: SeqReader range [%d,%d) of %d", lo, hi, a.Len()))
	}
	if len(buf) == 0 || len(buf)%(2*b) != 0 {
		panic(fmt.Sprintf("extmem: SeqReader buffer %d not a positive multiple of two %d-element blocks", len(buf), b))
	}
	k := len(buf) / (2 * b)
	r := &SeqReader{a: a, b: b, k: k, hi: hi, next: lo, async: async, done: make(chan any, 1)}
	r.cur, r.other = buf[:k*b], buf[k*b:]
	r.curLo = lo
	r.curFill = r.clamp(lo)
	if r.curFill > 0 {
		a.ReadRange(lo, lo+r.curFill, r.cur[:r.curFill*b])
		r.prefetch(lo + r.curFill)
	}
	return r
}

// clamp returns how many blocks of a chunk starting at lo exist.
func (r *SeqReader) clamp(lo int) int {
	n := r.hi - lo
	if n > r.k {
		n = r.k
	}
	if n < 0 {
		n = 0
	}
	return n
}

// prefetch starts fetching the chunk at lo into the idle half. In sync mode
// the fetch is deferred until the half is actually needed.
func (r *SeqReader) prefetch(lo int) {
	n := r.clamp(lo)
	if n == 0 {
		return
	}
	r.pendLo, r.pendN, r.pending = lo, n, true
	if !r.async {
		return
	}
	dst := r.other[:n*r.b]
	go func() {
		defer func() { r.done <- recover() }()
		r.a.ReadRange(lo, lo+n, dst)
	}()
}

// swap makes the pending half current, joining its fetch (or performing it,
// in sync mode), and starts prefetching the chunk after it.
func (r *SeqReader) swap() {
	if r.async {
		if p := <-r.done; p != nil {
			panic(p)
		}
	} else {
		r.a.ReadRange(r.pendLo, r.pendLo+r.pendN, r.other[:r.pendN*r.b])
	}
	r.cur, r.other = r.other, r.cur
	r.curLo, r.curFill = r.pendLo, r.pendN
	r.pending = false
	r.prefetch(r.curLo + r.curFill)
}

// Next returns the index and contents of the next block, or ok=false when
// the range is exhausted. The returned slice is valid until the next Next or
// Close call.
func (r *SeqReader) Next() (i int, blk []Element, ok bool) {
	if r.next >= r.hi {
		return 0, nil, false
	}
	if r.next >= r.curLo+r.curFill {
		if !r.pending {
			return 0, nil, false
		}
		r.swap()
	}
	off := r.next - r.curLo
	i = r.next
	r.next++
	return i, r.cur[off*r.b : (off+1)*r.b], true
}

// Close joins any in-flight prefetch so the caller may free the buffer. It
// re-raises a panic the prefetch goroutine hit, and is idempotent.
func (r *SeqReader) Close() {
	if r.async && r.pending {
		p := <-r.done
		r.pending = false
		if p != nil {
			panic(p)
		}
	}
	r.pending = false
}

// SeqWriter streams sequentially produced blocks to an Array through a
// caller-provided cache buffer, flushing full buffers as vectored writes.
// It exists for producer loops whose output positions advance one block at
// a time but whose natural structure (multi-phase emit logic, interleaved
// sources) makes manual chunk bookkeeping noisy.
//
// The buffer must be a positive multiple of the array's block size and must
// be checked out of the Cache by the caller (SeqWriter does no accounting of
// its own). Call Flush before freeing the buffer.
//
// A writer built with NewSeqWriterPipelined is the write-side dual of
// SeqReader: the buffer is split into two halves, and when one half fills
// its flush can run on a background goroutine while the caller fills the
// other half — a remote Bob's write round trip overlaps Alice's in-cache
// compute. The per-block write sequence is identical in all modes (the
// flush boundaries are fixed at half-buffer granularity whether or not the
// flush is asynchronous; only issue timing moves). At most one flush is
// ever in flight, and the writer must be the only source of disk I/O while
// one is pending: callers that interleave their own reads or writes must
// call Join first.
type SeqWriter struct {
	a    Array
	buf  []Element // fill half (sync mode: the whole buffer)
	b    int
	next int // array index the first buffered block will be written to
	fill int // blocks currently buffered

	duplex  bool // two halves with half-granularity flush boundaries
	async   bool // flushes run on a background goroutine
	other   []Element
	pending bool
	done    chan any // carries the flush goroutine's recover()
}

// NewSeqWriter returns a writer that will write its first block at index
// start of a, flushing whole buffers synchronously.
func NewSeqWriter(a Array, start int, buf []Element) *SeqWriter {
	b := a.B()
	if len(buf) == 0 || len(buf)%b != 0 {
		panic(fmt.Sprintf("extmem: SeqWriter buffer %d not a positive multiple of block size %d", len(buf), b))
	}
	return &SeqWriter{a: a, buf: buf, b: b, next: start}
}

// NewSeqWriterPipelined returns a double-buffered writer over the two
// halves of buf: flush boundaries sit at half-buffer granularity, and with
// async set each half's flush overlaps the caller's in-cache compute on the
// other half. async=false keeps the flushes synchronous at the identical
// boundaries — the apples-to-apples baseline, with a per-block trace
// bit-identical to the async run. A buffer too small to split (one block)
// degrades to the synchronous whole-buffer writer.
func NewSeqWriterPipelined(a Array, start int, buf []Element, async bool) *SeqWriter {
	b := a.B()
	if len(buf) == 0 || len(buf)%b != 0 {
		panic(fmt.Sprintf("extmem: SeqWriter buffer %d not a positive multiple of block size %d", len(buf), b))
	}
	half := len(buf) / (2 * b) * b // blocks per half, floored to block multiple
	if half == 0 {
		return &SeqWriter{a: a, buf: buf, b: b, next: start}
	}
	return &SeqWriter{
		a: a, buf: buf[:half], other: buf[half : 2*half], b: b, next: start,
		duplex: true, async: async, done: make(chan any, 1),
	}
}

// Next returns the slot for the next output block; the caller fills it with
// exactly B elements. A full buffer (half, for a pipelined writer) is
// flushed before the slot is handed out, so the returned slice is always
// valid until the following Next, Flush, or FlushAsync call.
func (w *SeqWriter) Next() []Element {
	if (w.fill+1)*w.b > len(w.buf) {
		if w.duplex {
			w.flushHalf()
		} else {
			w.Flush()
		}
	}
	s := w.buf[w.fill*w.b : (w.fill+1)*w.b]
	w.fill++
	return s
}

// Pos returns the array index the next Next() slot will be written to.
func (w *SeqWriter) Pos() int { return w.next + w.fill }

// flushHalf hands the filled half to the flusher (joining any flush already
// in flight first) and makes the idle half current.
func (w *SeqWriter) flushHalf() {
	if w.fill == 0 {
		return
	}
	w.Join()
	a, lo, n, src := w.a, w.next, w.fill, w.buf
	w.next += w.fill
	w.fill = 0
	w.buf, w.other = w.other, w.buf
	if !w.async {
		a.WriteRange(lo, lo+n, src[:n*w.b])
		return
	}
	w.pending = true
	go func() {
		defer func() { w.done <- recover() }()
		a.WriteRange(lo, lo+n, src[:n*w.b])
	}()
}

// FlushAsync pushes the buffered blocks toward the store without waiting
// for the write to land: on a pipelined writer the partially filled half is
// flushed exactly like a full one (in the background when async), so the
// write overlaps whatever the caller computes next. On a plain writer it is
// Flush. Call Join (or Flush) before performing other disk I/O.
func (w *SeqWriter) FlushAsync() {
	if w.duplex {
		w.flushHalf()
		return
	}
	w.Flush()
}

// Join waits for an in-flight background flush, re-raising a panic it hit.
// After Join the caller may safely issue its own disk I/O. It is idempotent
// and a no-op for synchronous writers.
func (w *SeqWriter) Join() {
	if !w.pending {
		return
	}
	w.pending = false
	if p := <-w.done; p != nil {
		panic(p)
	}
}

// Retarget points the writer at a new destination: subsequent blocks go to
// index start of a. Buffered blocks must have been flushed first (Flush or
// FlushAsync); a background flush of the old target may still be in flight.
func (w *SeqWriter) Retarget(a Array, start int) {
	if w.fill != 0 {
		panic("extmem: SeqWriter retarget with unflushed blocks")
	}
	w.a = a
	w.next = start
}

// Flush writes the buffered blocks with one vectored call and joins any
// background flush, so the caller may free the buffer or issue its own I/O.
func (w *SeqWriter) Flush() {
	w.Join()
	if w.fill == 0 {
		return
	}
	w.a.WriteRange(w.next, w.next+w.fill, w.buf[:w.fill*w.b])
	w.next += w.fill
	w.fill = 0
}
