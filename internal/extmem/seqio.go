package extmem

import "fmt"

// SeqWriter streams sequentially produced blocks to an Array through a
// caller-provided cache buffer, flushing full buffers as vectored writes.
// It exists for producer loops whose output positions advance one block at
// a time but whose natural structure (multi-phase emit logic, interleaved
// sources) makes manual chunk bookkeeping noisy.
//
// The buffer must be a positive multiple of the array's block size and must
// be checked out of the Cache by the caller (SeqWriter does no accounting of
// its own). Call Flush before freeing the buffer.
type SeqWriter struct {
	a    Array
	buf  []Element
	b    int
	next int // array index the first buffered block will be written to
	fill int // blocks currently buffered
}

// NewSeqWriter returns a writer that will write its first block at index
// start of a.
func NewSeqWriter(a Array, start int, buf []Element) *SeqWriter {
	b := a.B()
	if len(buf) == 0 || len(buf)%b != 0 {
		panic(fmt.Sprintf("extmem: SeqWriter buffer %d not a positive multiple of block size %d", len(buf), b))
	}
	return &SeqWriter{a: a, buf: buf, b: b, next: start}
}

// Next returns the slot for the next output block; the caller fills it with
// exactly B elements. A full buffer is flushed before the slot is handed
// out, so the returned slice is always valid until the following Next or
// Flush call.
func (w *SeqWriter) Next() []Element {
	if (w.fill+1)*w.b > len(w.buf) {
		w.Flush()
	}
	s := w.buf[w.fill*w.b : (w.fill+1)*w.b]
	w.fill++
	return s
}

// Pos returns the array index the next Next() slot will be written to.
func (w *SeqWriter) Pos() int { return w.next + w.fill }

// Flush writes the buffered blocks with one vectored call.
func (w *SeqWriter) Flush() {
	if w.fill == 0 {
		return
	}
	w.a.WriteRange(w.next, w.next+w.fill, w.buf[:w.fill*w.b])
	w.next += w.fill
	w.fill = 0
}
