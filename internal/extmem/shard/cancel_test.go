package shard

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"oblivext/internal/extmem"
)

// ctxChild is a CtxStore test double over a MemStore: it can fail
// immediately or stall until its context is canceled, recording what
// happened — the shape of a remote shard mid-outage.
type ctxChild struct {
	*extmem.MemStore
	failFast bool
	stall    bool
	canceled chan struct{} // closed when a stalled call observed cancellation
}

func newCtxChild(n, b int) *ctxChild {
	return &ctxChild{MemStore: extmem.NewMemStore(n, b), canceled: make(chan struct{})}
}

func (c *ctxChild) serve(ctx context.Context) error {
	if c.failFast {
		return errors.New("ctxChild: injected failure")
	}
	if c.stall {
		select {
		case <-ctx.Done():
			close(c.canceled)
			return ctx.Err()
		case <-time.After(10 * time.Second):
			return errors.New("ctxChild: stall outlived the test")
		}
	}
	return nil
}

func (c *ctxChild) ReadBlocksCtx(ctx context.Context, addrs []int, dst []extmem.Element) error {
	if err := c.serve(ctx); err != nil {
		return err
	}
	return c.MemStore.ReadBlocks(addrs, dst)
}

func (c *ctxChild) WriteBlocksCtx(ctx context.Context, addrs []int, src []extmem.Element) error {
	if err := c.serve(ctx); err != nil {
		return err
	}
	return c.MemStore.WriteBlocks(addrs, src)
}

var _ extmem.CtxStore = (*ctxChild)(nil)

// TestFanOutCancelsStallingSibling is the regression test for the doomed
// fan-out: shard 0 fails instantly, shard 1 would stall for 10 seconds. With
// cancellation threaded through, the failure must cancel the stalled sibling
// and surface shard 0's error immediately — not after the sibling's timeout —
// and the reported error must name the real failure, not the cancellation it
// caused.
func TestFanOutCancelsStallingSibling(t *testing.T) {
	fast := newCtxChild(8, 4)
	fast.failFast = true
	slow := newCtxChild(8, 4)
	slow.stall = true
	s, err := New([]extmem.BlockStore{fast, slow})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	dst := make([]extmem.Element, 4*4)
	err = s.ReadBlocks([]int{0, 1, 2, 3}, dst) // two addrs per shard
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("fan-out with a failing shard should error")
	}
	if !strings.Contains(err.Error(), "injected failure") {
		t.Errorf("error %q should carry shard 0's real failure, not the sibling's cancellation", err)
	}
	select {
	case <-slow.canceled:
	case <-time.After(2 * time.Second):
		t.Fatal("stalling sibling was never canceled")
	}
	if elapsed > 5*time.Second {
		t.Errorf("fan-out took %v; the failure should have cancelled the 10s stall", elapsed)
	}

	// The write dual.
	slow2 := newCtxChild(8, 4)
	slow2.stall = true
	s2, err := New([]extmem.BlockStore{fast, slow2})
	if err != nil {
		t.Fatal(err)
	}
	src := make([]extmem.Element, 4*4)
	if err := s2.WriteBlocks([]int{0, 1, 2, 3}, src); err == nil {
		t.Fatal("write fan-out with a failing shard should error")
	}
	select {
	case <-slow2.canceled:
	case <-time.After(2 * time.Second):
		t.Fatal("stalling sibling was never canceled on the write path")
	}
}

// TestFanOutCallerContext pins that the caller's own context reaches the
// children: canceling it fails the vectored call on every shard.
func TestFanOutCallerContext(t *testing.T) {
	a, b := newCtxChild(8, 4), newCtxChild(8, 4)
	a.stall, b.stall = true, true
	s, err := New([]extmem.BlockStore{a, b})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		dst := make([]extmem.Element, 4*4)
		done <- s.ReadBlocksCtx(ctx, []int{0, 1, 2, 3}, dst)
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read under a canceled context should fail")
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("error %v should wrap context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read did not return after its context was canceled")
	}
}
