package shard

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"oblivext/internal/core"
	"oblivext/internal/extmem"
	"oblivext/internal/trace"
	"oblivext/internal/workload"
)

// mkSharded builds a ShardedStore of k MemStore children able to hold
// nBlocks logical blocks of b elements.
func mkSharded(t *testing.T, k, nBlocks, b int) *ShardedStore {
	t.Helper()
	children := make([]extmem.BlockStore, k)
	for i := range children {
		children[i] = extmem.NewMemStore(extmem.CeilDiv(nBlocks, k), b)
	}
	s, err := New(children)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardedMatchesFlat drives identical random scalar and vectored
// traffic through a ShardedStore and a flat MemStore and asserts every read
// observes the same bytes, for shard counts that do and do not divide the
// store size.
func TestShardedMatchesFlat(t *testing.T) {
	const nBlocks, b = 53, 4
	for _, k := range []int{1, 2, 3, 4, 8} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			sharded := mkSharded(t, k, nBlocks, b)
			flat := extmem.NewMemStore(nBlocks, b)
			r := rand.New(rand.NewPCG(uint64(k), 7))
			blk := make([]extmem.Element, b)
			got := make([]extmem.Element, b)
			want := make([]extmem.Element, b)
			for step := 0; step < 300; step++ {
				switch r.IntN(4) {
				case 0: // scalar write
					addr := r.IntN(nBlocks)
					for t := range blk {
						blk[t] = extmem.Element{Key: r.Uint64(), Val: uint64(step)}
					}
					if err := sharded.WriteBlock(addr, blk); err != nil {
						t.Fatal(err)
					}
					if err := flat.WriteBlock(addr, blk); err != nil {
						t.Fatal(err)
					}
				case 1: // scalar read
					addr := r.IntN(nBlocks)
					if err := sharded.ReadBlock(addr, got); err != nil {
						t.Fatal(err)
					}
					if err := flat.ReadBlock(addr, want); err != nil {
						t.Fatal(err)
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("step %d: block %d element %d: %+v != %+v", step, addr, i, got[i], want[i])
						}
					}
				case 2: // vectored write (duplicates allowed: later wins)
					cnt := 1 + r.IntN(12)
					addrs := make([]int, cnt)
					src := make([]extmem.Element, cnt*b)
					for i := range addrs {
						addrs[i] = r.IntN(nBlocks)
						for t := 0; t < b; t++ {
							src[i*b+t] = extmem.Element{Key: r.Uint64(), Val: uint64(step*100 + i)}
						}
					}
					if err := sharded.WriteBlocks(addrs, src); err != nil {
						t.Fatal(err)
					}
					if err := flat.WriteBlocks(addrs, src); err != nil {
						t.Fatal(err)
					}
				case 3: // vectored read (duplicates allowed)
					cnt := 1 + r.IntN(12)
					addrs := make([]int, cnt)
					for i := range addrs {
						addrs[i] = r.IntN(nBlocks)
					}
					g := make([]extmem.Element, cnt*b)
					w := make([]extmem.Element, cnt*b)
					if err := sharded.ReadBlocks(addrs, g); err != nil {
						t.Fatal(err)
					}
					if err := flat.ReadBlocks(addrs, w); err != nil {
						t.Fatal(err)
					}
					for i := range g {
						if g[i] != w[i] {
							t.Fatalf("step %d: vectored read %v element %d differs", step, addrs, i)
						}
					}
				}
			}
		})
	}
}

func TestShardedGeometry(t *testing.T) {
	// Children of unequal capacity: the logical capacity is the contiguous
	// prefix every shard can serve.
	a := extmem.NewMemStore(4, 2)
	b := extmem.NewMemStore(3, 2)
	s, err := New([]extmem.BlockStore{a, b})
	if err != nil {
		t.Fatal(err)
	}
	// Shard 1 (addresses 1,3,5,...) runs out first: first miss is 3*2+1=7.
	if got := s.NumBlocks(); got != 7 {
		t.Fatalf("NumBlocks = %d, want 7", got)
	}
	if err := s.GrowTo(20); err != nil {
		t.Fatal(err)
	}
	if got := s.NumBlocks(); got < 20 {
		t.Fatalf("NumBlocks after GrowTo(20) = %d", got)
	}
	if _, err := New(nil); err == nil {
		t.Fatal("New(nil) should fail")
	}
	if _, err := New([]extmem.BlockStore{extmem.NewMemStore(1, 2), extmem.NewMemStore(1, 4)}); err == nil {
		t.Fatal("mismatched block sizes should fail")
	}
}

// recStore wraps a child store and records the per-block access sequence it
// serves — the view the individual server at that shard observes.
type recStore struct {
	extmem.BlockStore
	ops []trace.Op
}

func (r *recStore) ReadBlock(addr int, dst []extmem.Element) error {
	r.ops = append(r.ops, trace.Op{Kind: trace.Read, Addr: int64(addr)})
	return r.BlockStore.ReadBlock(addr, dst)
}

func (r *recStore) WriteBlock(addr int, src []extmem.Element) error {
	r.ops = append(r.ops, trace.Op{Kind: trace.Write, Addr: int64(addr)})
	return r.BlockStore.WriteBlock(addr, src)
}

func (r *recStore) ReadBlocks(addrs []int, dst []extmem.Element) error {
	for _, a := range addrs {
		r.ops = append(r.ops, trace.Op{Kind: trace.Read, Addr: int64(a)})
	}
	return r.BlockStore.ReadBlocks(addrs, dst)
}

func (r *recStore) WriteBlocks(addrs []int, src []extmem.Element) error {
	for _, a := range addrs {
		r.ops = append(r.ops, trace.Op{Kind: trace.Write, Addr: int64(a)})
	}
	return r.BlockStore.WriteBlocks(addrs, src)
}

func (r *recStore) GrowTo(n int) error { return r.BlockStore.(extmem.Growable).GrowTo(n) }

// TestShardTracePartition is the obliviousness claim of the subsystem: run
// the paper's Sort over a sharded store and check that (a) the logical trace
// the Disk records is bit-identical to the unsharded run, and (b) each
// shard's observed access sequence is exactly the residue-class projection
// of that logical trace, re-numbered to local addresses — sharding
// partitions the trace, it never reorders or changes it.
func TestShardTracePartition(t *testing.T) {
	const nBlocks, b, m, k = 64, 4, 32, 4
	seed := uint64(11)

	runSort := func(store extmem.BlockStore) (*trace.Recorder, extmem.Array) {
		env := extmem.NewEnvOn(store, m, seed)
		a := env.D.Alloc(nBlocks)
		rec := trace.NewRecorder(1 << 20)
		env.D.SetRecorder(rec) // attached before Fill so the logical trace covers everything the shards see
		keys, err := workload.Keys(workload.Uniform, nBlocks*b, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := workload.Fill(a, keys); err != nil {
			t.Fatal(err)
		}
		if err := core.Sort(env, a, core.SortParams{}); err != nil {
			t.Fatal(err)
		}
		return rec, a
	}

	flatRec, _ := runSort(extmem.NewMemStore(4*nBlocks, b))

	recs := make([]*recStore, k)
	children := make([]extmem.BlockStore, k)
	for i := range children {
		recs[i] = &recStore{BlockStore: extmem.NewMemStore(4*nBlocks/k, b)}
		children[i] = recs[i]
	}
	sharded, err := New(children)
	if err != nil {
		t.Fatal(err)
	}
	shardRec, _ := runSort(sharded)

	if !flatRec.Summarize().Equal(shardRec.Summarize()) {
		t.Fatalf("logical trace changed under sharding: %v vs %v (first divergence at %d)",
			flatRec.Summarize(), shardRec.Summarize(), trace.FirstDivergence(flatRec, shardRec))
	}

	// Project the logical trace per residue class and compare with what each
	// shard's server actually saw.
	want := make([][]trace.Op, k)
	for _, op := range shardRec.Ops() {
		sh := int(op.Addr) % k
		want[sh] = append(want[sh], trace.Op{Kind: op.Kind, Addr: op.Addr / int64(k)})
	}
	var total int
	for sh := 0; sh < k; sh++ {
		if len(recs[sh].ops) != len(want[sh]) {
			t.Fatalf("shard %d saw %d accesses, projection has %d", sh, len(recs[sh].ops), len(want[sh]))
		}
		for i := range want[sh] {
			if recs[sh].ops[i] != want[sh][i] {
				t.Fatalf("shard %d access %d: saw %v, projection %v", sh, i, recs[sh].ops[i], want[sh][i])
			}
		}
		total += len(recs[sh].ops)
	}
	if total != int(shardRec.Len()) {
		t.Fatalf("shards saw %d accesses in total, logical trace has %d", total, shardRec.Len())
	}
}

// TestShardedStatsAggregation pins the accounting contract: per-shard blocks
// sum to the flat total, the fan-out count matches the Disk's round trips,
// and with per-shard latency models the critical path is the
// max-over-shards per interaction — strictly cheaper than the serial sum
// whenever a batch spans shards, and exactly recomputable from the
// sub-batch sizes.
func TestShardedStatsAggregation(t *testing.T) {
	const k, b = 4, 4
	const rtt, perBlock = 10 * time.Millisecond, time.Millisecond
	children := make([]extmem.BlockStore, k)
	for i := range children {
		children[i] = extmem.NewLatencyStore(extmem.NewMemStore(16, b),
			extmem.LatencyOptions{RTT: rtt, PerBlock: perBlock})
	}
	s, err := New(children)
	if err != nil {
		t.Fatal(err)
	}
	d := extmem.NewDisk(s)

	batches := [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7}, // 2 blocks per shard
		{0, 4, 8, 12},            // all on shard 0
		{1, 2},                   // shards 1 and 2
		{5},                      // one block
	}
	var wantCritical, wantSerial time.Duration
	var wantBlocks int64
	buf := make([]extmem.Element, 16*b)
	for _, addrs := range batches {
		d.ReadMany(addrs, buf[:len(addrs)*b])
		perShard := map[int]int{}
		for _, a := range addrs {
			perShard[a%k]++
		}
		var worst time.Duration
		for _, cnt := range perShard {
			dt := rtt + time.Duration(cnt)*perBlock
			wantSerial += dt
			if dt > worst {
				worst = dt
			}
		}
		wantCritical += worst
		wantBlocks += int64(len(addrs))
	}

	if got := s.ModeledTime(); got != wantCritical {
		t.Fatalf("critical path %v, want %v", got, wantCritical)
	}
	if got := s.SerialModeledTime(); got != wantSerial {
		t.Fatalf("serial time %v, want %v", got, wantSerial)
	}
	if s.ModeledTime() >= s.SerialModeledTime() {
		t.Fatal("critical path should beat the serial sum for multi-shard batches")
	}
	if got := s.RoundTrips(); got != int64(len(batches)) {
		t.Fatalf("fan-out count %d, want %d", got, len(batches))
	}
	if got := d.Stats().RoundTrips; got != int64(len(batches)) {
		t.Fatalf("disk round trips %d, want %d", got, len(batches))
	}
	var sumBlocks, sumTime = int64(0), time.Duration(0)
	for _, st := range s.ShardStats() {
		sumBlocks += st.BlocksMoved
		sumTime += st.ModeledTime
	}
	if sumBlocks != wantBlocks || s.BlocksMoved() != wantBlocks {
		t.Fatalf("per-shard blocks sum %d (aggregate %d), want %d", sumBlocks, s.BlocksMoved(), wantBlocks)
	}
	if sumTime != wantSerial {
		t.Fatalf("per-shard modeled times sum %v, want serial %v", sumTime, wantSerial)
	}

	s.ResetNetStats()
	if s.ModeledTime() != 0 || s.RoundTrips() != 0 || s.BlocksMoved() != 0 {
		t.Fatal("ResetNetStats left counters non-zero")
	}
	for i, st := range s.ShardStats() {
		if st != (Stats{}) {
			t.Fatalf("shard %d stats not reset: %+v", i, st)
		}
	}
	for _, ch := range children {
		if ch.(extmem.NetModel).ModeledTime() != 0 {
			t.Fatal("child latency model not reset")
		}
	}
}
