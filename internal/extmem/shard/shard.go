// Package shard stripes one logical BlockStore across many child backends —
// the "many Bobs" deployment of the paper's outsourced-data model. A
// ShardedStore assigns logical block a to shard a mod K (round-robin, so the
// sequential runs every pass-structured algorithm emits spread evenly) and
// splits every vectored call into per-shard sub-batches dispatched
// concurrently, one goroutine per participating shard. Wall-clock cost per
// interaction is then the slowest shard's round trip, not the sum: the
// critical-path accounting in Stats reflects exactly that.
//
// Sharding happens entirely below the Disk layer, so it only partitions the
// per-block access sequence the algorithms emit; each shard observes the
// subsequence of the logical trace whose addresses are ≡ its index mod K,
// re-numbered to local addresses. Obliviousness is unchanged — K servers
// each see a data-independent projection of an already data-independent
// trace (shard_test pins this, and the bucket-oblivious-sort line of work
// makes the same observation for pass-structured access patterns).
package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"oblivext/internal/extmem"
)

// Stats is one shard's cumulative view of the traffic it served: how many
// sub-batches it was handed (each one store interaction), how many blocks
// they moved, and — when the child models latency — the delay it charged.
type Stats struct {
	RoundTrips  int64
	BlocksMoved int64
	ModeledTime time.Duration
}

// ShardedStore implements extmem.BlockStore over K child stores. Like every
// BlockStore it is driven by a single caller (the Disk); the concurrency is
// internal, between the per-shard goroutines of one fan-out, and each child
// is touched by at most one goroutine at a time. Children may be any mix of
// MemStore, FileStore, and LatencyStore.
type ShardedStore struct {
	shards []extmem.BlockStore
	k      int
	b      int

	stats    []Stats       // per shard; written only between fan-out joins
	trips    int64         // fan-out interactions (logical round trips)
	blocks   int64         // total blocks moved
	critical time.Duration // sum over interactions of max-over-shards delay
	serial   time.Duration // sum over interactions of summed delays

	// Per-call scratch, reused across fan-outs (single caller).
	subAddrs [][]int            // per-shard local addresses
	subPos   [][]int            // per-shard positions in the logical batch
	subBuf   [][]extmem.Element // per-shard transfer staging
	deltas   []time.Duration    // per-shard modeled delay of this fan-out
	errs     []error            // per-shard error of this fan-out
}

// New builds a sharded store over the given children, which must all share
// one block size. One child is allowed (K=1 degenerates to a pass-through
// with fan-out accounting), zero is not.
func New(shards []extmem.BlockStore) (*ShardedStore, error) {
	if len(shards) == 0 {
		return nil, errors.New("shard: need at least one child store")
	}
	b := shards[0].BlockSize()
	for i, s := range shards {
		if s.BlockSize() != b {
			return nil, fmt.Errorf("shard: child %d block size %d != %d", i, s.BlockSize(), b)
		}
	}
	k := len(shards)
	return &ShardedStore{
		shards:   shards,
		k:        k,
		b:        b,
		stats:    make([]Stats, k),
		subAddrs: make([][]int, k),
		subPos:   make([][]int, k),
		subBuf:   make([][]extmem.Element, k),
		deltas:   make([]time.Duration, k),
		errs:     make([]error, k),
	}, nil
}

// NumShards returns K.
func (s *ShardedStore) NumShards() int { return s.k }

// shardOf maps a logical address to its owning shard and local address.
func (s *ShardedStore) shardOf(addr int) (shard, local int) { return addr % s.k, addr / s.k }

// ReadBlock implements BlockStore: a scalar access touches exactly one
// shard, so it is routed directly with no fan-out.
func (s *ShardedStore) ReadBlock(addr int, dst []extmem.Element) error {
	sh, local := s.shardOf(addr)
	t0 := modeledTime(s.shards[sh])
	err := s.shards[sh].ReadBlock(local, dst)
	s.account(sh, 1, modeledTime(s.shards[sh])-t0)
	return err
}

// WriteBlock implements BlockStore: the scalar dual of ReadBlock.
func (s *ShardedStore) WriteBlock(addr int, src []extmem.Element) error {
	sh, local := s.shardOf(addr)
	t0 := modeledTime(s.shards[sh])
	err := s.shards[sh].WriteBlock(local, src)
	s.account(sh, 1, modeledTime(s.shards[sh])-t0)
	return err
}

// ReadBlocks implements BlockStore: the batch is split by residue class into
// per-shard sub-batches fetched concurrently, then scattered back into dst
// in logical order.
func (s *ShardedStore) ReadBlocks(addrs []int, dst []extmem.Element) error {
	return s.ReadBlocksCtx(context.Background(), addrs, dst)
}

// ReadBlocksCtx implements extmem.CtxStore: ReadBlocks bound to ctx. Beyond
// honoring the caller's cancellation, the fan-out derives a per-interaction
// context so that the moment one shard definitively fails, the in-flight
// sibling sub-batches are canceled — a doomed interaction surfaces its error
// at the speed of the failing shard, not of the slowest surviving one.
func (s *ShardedStore) ReadBlocksCtx(ctx context.Context, addrs []int, dst []extmem.Element) error {
	if len(dst) != len(addrs)*s.b {
		return fmt.Errorf("shard: buffer length %d != %d blocks of %d elements", len(dst), len(addrs), s.b)
	}
	s.split(addrs)
	return s.fanOut(ctx, len(addrs), func(ctx context.Context, sh int) error {
		if len(s.subAddrs[sh]) == len(addrs) {
			// The whole batch lives on one shard (split preserves order, so
			// positions are 0..n-1): serve it into dst with no staging copy.
			return extmem.ReadBlocksCtx(ctx, s.shards[sh], s.subAddrs[sh], dst)
		}
		buf := s.staging(sh)
		if err := extmem.ReadBlocksCtx(ctx, s.shards[sh], s.subAddrs[sh], buf); err != nil {
			return err
		}
		for j, pos := range s.subPos[sh] {
			copy(dst[pos*s.b:(pos+1)*s.b], buf[j*s.b:(j+1)*s.b])
		}
		return nil
	})
}

// WriteBlocks implements BlockStore: per-shard sub-batches are gathered from
// src and dispatched concurrently.
func (s *ShardedStore) WriteBlocks(addrs []int, src []extmem.Element) error {
	return s.WriteBlocksCtx(context.Background(), addrs, src)
}

// WriteBlocksCtx implements extmem.CtxStore, the write dual of ReadBlocksCtx.
func (s *ShardedStore) WriteBlocksCtx(ctx context.Context, addrs []int, src []extmem.Element) error {
	if len(src) != len(addrs)*s.b {
		return fmt.Errorf("shard: buffer length %d != %d blocks of %d elements", len(src), len(addrs), s.b)
	}
	s.split(addrs)
	return s.fanOut(ctx, len(addrs), func(ctx context.Context, sh int) error {
		if len(s.subAddrs[sh]) == len(addrs) {
			return extmem.WriteBlocksCtx(ctx, s.shards[sh], s.subAddrs[sh], src)
		}
		buf := s.staging(sh)
		for j, pos := range s.subPos[sh] {
			copy(buf[j*s.b:(j+1)*s.b], src[pos*s.b:(pos+1)*s.b])
		}
		return extmem.WriteBlocksCtx(ctx, s.shards[sh], s.subAddrs[sh], buf)
	})
}

// split partitions the logical batch into per-shard (local address,
// batch position) lists in the reused scratch.
func (s *ShardedStore) split(addrs []int) {
	for sh := 0; sh < s.k; sh++ {
		s.subAddrs[sh] = s.subAddrs[sh][:0]
		s.subPos[sh] = s.subPos[sh][:0]
	}
	for pos, addr := range addrs {
		sh, local := s.shardOf(addr)
		s.subAddrs[sh] = append(s.subAddrs[sh], local)
		s.subPos[sh] = append(s.subPos[sh], pos)
	}
}

// staging returns shard sh's transfer buffer sized for its current
// sub-batch, growing the reusable scratch on demand.
func (s *ShardedStore) staging(sh int) []extmem.Element {
	need := len(s.subAddrs[sh]) * s.b
	if cap(s.subBuf[sh]) < need {
		s.subBuf[sh] = make([]extmem.Element, need)
	}
	return s.subBuf[sh][:need]
}

// fanOut runs work(ctx, sh) concurrently for every shard with a non-empty
// sub-batch, joins, and folds the per-shard deltas into the aggregate
// accounting: total blocks, per-shard stats, and the critical-path /
// serial modeled times for this one logical interaction.
//
// With several participants the fan-out derives a cancelable child context
// and cancels it as soon as any shard returns an error: the interaction
// already cannot succeed, so the in-flight siblings — which may be remote
// calls with generous retry budgets — are told to stop rather than run to
// their full timeout. The reported error prefers the shard that actually
// failed over siblings that merely observed the cancellation.
func (s *ShardedStore) fanOut(ctx context.Context, totalBlocks int, work func(ctx context.Context, sh int) error) error {
	only := -1 // the single participating shard, or -1 if several
	parts := 0
	for sh := 0; sh < s.k; sh++ {
		s.deltas[sh], s.errs[sh] = 0, nil
		if len(s.subAddrs[sh]) > 0 {
			only = sh
			parts++
		}
	}
	run := func(ctx context.Context, sh int) error {
		t0 := modeledTime(s.shards[sh])
		s.errs[sh] = work(ctx, sh)
		s.deltas[sh] = modeledTime(s.shards[sh]) - t0
		return s.errs[sh]
	}
	if parts == 1 {
		// One shard, nothing to overlap: skip the goroutine machinery.
		run(ctx, only)
	} else if parts > 1 {
		fanCtx, cancel := context.WithCancel(ctx)
		var wg sync.WaitGroup
		for sh := 0; sh < s.k; sh++ {
			if len(s.subAddrs[sh]) == 0 {
				continue
			}
			wg.Add(1)
			go func(sh int) {
				defer wg.Done()
				if run(fanCtx, sh) != nil {
					cancel()
				}
			}(sh)
		}
		wg.Wait()
		cancel()
	}
	s.trips++
	s.blocks += int64(totalBlocks)
	var worst time.Duration
	var err error
	canceled := false
	for sh := 0; sh < s.k; sh++ {
		if len(s.subAddrs[sh]) == 0 {
			continue
		}
		s.stats[sh].RoundTrips++
		s.stats[sh].BlocksMoved += int64(len(s.subAddrs[sh]))
		s.stats[sh].ModeledTime += s.deltas[sh]
		s.serial += s.deltas[sh]
		if s.deltas[sh] > worst {
			worst = s.deltas[sh]
		}
		if e := s.errs[sh]; e != nil {
			if errors.Is(e, context.Canceled) {
				// A sibling canceled by the fan-out is a symptom, not the
				// cause; keep it only if no shard reports a real failure.
				if err == nil && !canceled {
					err, canceled = fmt.Errorf("shard %d: %w", sh, e), true
				}
			} else if err == nil || canceled {
				err, canceled = fmt.Errorf("shard %d: %w", sh, e), false
			}
		}
	}
	s.critical += worst
	return err
}

// account folds one scalar (single-shard) interaction into the aggregates.
func (s *ShardedStore) account(sh, blocks int, delta time.Duration) {
	s.trips++
	s.blocks += int64(blocks)
	s.stats[sh].RoundTrips++
	s.stats[sh].BlocksMoved += int64(blocks)
	s.stats[sh].ModeledTime += delta
	s.critical += delta
	s.serial += delta
}

// modeledTime reads a child's cumulative modeled delay when it has a cost
// model attached, and 0 otherwise.
func modeledTime(st extmem.BlockStore) time.Duration {
	if m, ok := st.(extmem.NetModel); ok {
		return m.ModeledTime()
	}
	return 0
}

// NumBlocks implements BlockStore: the length of the contiguous logical
// prefix every shard can serve. Shard sh with capacity c serves logical
// addresses {a : a ≡ sh (mod K), a/K < c}, whose first miss is c·K+sh.
func (s *ShardedStore) NumBlocks() int {
	n := s.shards[0].NumBlocks() * s.k
	for sh := 1; sh < s.k; sh++ {
		if lim := s.shards[sh].NumBlocks()*s.k + sh; lim < n {
			n = lim
		}
	}
	return n
}

// BlockSize implements BlockStore.
func (s *ShardedStore) BlockSize() int { return s.b }

// Close implements BlockStore, closing every child and returning the first
// error.
func (s *ShardedStore) Close() error {
	var err error
	for _, sh := range s.shards {
		if e := sh.Close(); err == nil {
			err = e
		}
	}
	return err
}

// GrowTo implements extmem.Growable by growing every child to ceil(n/K)
// blocks; all children must be growable.
func (s *ShardedStore) GrowTo(n int) error {
	per := extmem.CeilDiv(n, s.k)
	for sh, st := range s.shards {
		g, ok := st.(extmem.Growable)
		if !ok {
			return fmt.Errorf("shard: child %d (%T) cannot grow", sh, st)
		}
		if err := g.GrowTo(per); err != nil {
			return fmt.Errorf("shard %d: %w", sh, err)
		}
	}
	return nil
}

// RoundTrips implements extmem.NetModel: the number of logical interactions
// (each one parallel fan-out, however many shards it touched).
func (s *ShardedStore) RoundTrips() int64 { return s.trips }

// BlocksMoved implements extmem.NetModel: total blocks across all shards.
func (s *ShardedStore) BlocksMoved() int64 { return s.blocks }

// ModeledTime implements extmem.NetModel: the critical path — for every
// interaction the slowest shard's delay, summed over interactions. This is
// the wall-clock a client waiting on all K parallel responses experiences.
func (s *ShardedStore) ModeledTime() time.Duration { return s.critical }

// SerialModeledTime returns what the same traffic would have cost had the
// per-shard sub-batches been issued one after another: the sum of every
// shard's delay, still paying one RTT per participating shard. (It is not
// the K=1 cost, which pays a single RTT per interaction; compare against a
// K=1 run for that.) ModeledTime/SerialModeledTime isolates the win from
// the fan-out being parallel rather than sequential.
func (s *ShardedStore) SerialModeledTime() time.Duration { return s.serial }

// ShardStats returns a copy of the per-shard counters.
func (s *ShardedStore) ShardStats() []Stats {
	out := make([]Stats, s.k)
	copy(out, s.stats)
	return out
}

// ResetNetStats implements extmem.NetModel: zeroes the aggregate and
// per-shard counters, and the children's own models where present.
func (s *ShardedStore) ResetNetStats() {
	s.trips, s.blocks, s.critical, s.serial = 0, 0, 0, 0
	for sh := range s.stats {
		s.stats[sh] = Stats{}
	}
	for _, st := range s.shards {
		if m, ok := st.(extmem.NetModel); ok {
			m.ResetNetStats()
		}
	}
}
