package netstore

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"oblivext/internal/extmem"
)

func TestLatencyHistogramBuckets(t *testing.T) {
	if got := LatencyBucketBound(0); got != 50*time.Microsecond {
		t.Fatalf("bucket 0 bound = %v", got)
	}
	for i := 1; i < latencyBuckets-1; i++ {
		if LatencyBucketBound(i) != 2*LatencyBucketBound(i-1) {
			t.Fatalf("bucket %d does not double bucket %d", i, i-1)
		}
	}
	if LatencyBucketBound(latencyBuckets-1) >= 0 {
		t.Fatal("overflow bucket reported a finite bound")
	}

	var h LatencyHistogram
	h.Observe(50 * time.Microsecond) // lands in bucket 0 (inclusive bound)
	h.Observe(51 * time.Microsecond) // bucket 1
	h.Observe(40 * time.Millisecond) // bucket 10 (51.2ms bound)
	h.Observe(time.Hour)             // overflow
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[10] != 1 || h.Counts[latencyBuckets-1] != 1 {
		t.Fatalf("bucket placement: %v", h.Counts)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if want := 50*time.Microsecond + 51*time.Microsecond + 40*time.Millisecond + time.Hour; h.Sum != want {
		t.Fatalf("sum = %v, want %v", h.Sum, want)
	}
}

func TestLatencyHistogramQuantiles(t *testing.T) {
	var h LatencyHistogram
	if h.P50() != 0 {
		t.Fatal("empty histogram has a nonzero quantile")
	}
	// 99 fast observations and one slow one: p50/p95 resolve to the fast
	// bucket's bound, p99 is pulled toward the slow bucket.
	for i := 0; i < 99; i++ {
		h.Observe(100 * time.Microsecond) // bucket 1, bound 100µs
	}
	h.Observe(10 * time.Millisecond) // bucket 8, bound 12.8ms
	if got := h.P50(); got != 100*time.Microsecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.P95(); got != 100*time.Microsecond {
		t.Fatalf("p95 = %v", got)
	}
	if got := h.P99(); got != 100*time.Microsecond {
		t.Fatalf("p99 = %v (99 of 100 within the fast bucket)", got)
	}
	if got := h.Quantile(1.0); got != LatencyBucketBound(8) {
		t.Fatalf("max quantile = %v, want %v", got, LatencyBucketBound(8))
	}
	// Overflow-only histogram caps at the last finite bound.
	var o LatencyHistogram
	o.Observe(time.Hour)
	if got := o.P50(); got != latencyBase<<(latencyBuckets-2) {
		t.Fatalf("overflow quantile = %v", got)
	}

	var m LatencyHistogram
	m.Merge(h)
	m.Merge(o)
	if m.Count() != h.Count()+o.Count() || m.Sum != h.Sum+o.Sum {
		t.Fatal("merge lost observations")
	}
}

func TestLatencyHistogramPrometheus(t *testing.T) {
	var h LatencyHistogram
	h.Observe(60 * time.Microsecond)
	h.Observe(60 * time.Microsecond)
	h.Observe(time.Hour)
	var b strings.Builder
	h.WritePrometheus(&b, "x_seconds")
	out := b.String()
	for _, want := range []string{
		"# TYPE x_seconds histogram",
		`x_seconds_bucket{le="5e-05"} 0`,
		`x_seconds_bucket{le="0.0001"} 2`, // cumulative
		`x_seconds_bucket{le="+Inf"} 3`,
		"x_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// TestReplayHitsCounted: a lost response forces a retry that the server
// answers from its replay window; the client sees the X-Obstore-Replay
// stamp and counts it, with ReplayHits <= Retries.
func TestReplayHitsCounted(t *testing.T) {
	// First data-plane attempt: the server executes but the response is
	// lost. The retry is a replay hit. A later attempt is refused before
	// reaching the server: that retry executes fresh — a retry with no
	// replay, exercising the <= gap.
	srv, c, _ := startFlaky(t, 16, 4, Options{}, func(call int) faultAction {
		switch call {
		case 0:
			return dropResponse
		case 3:
			return refuse
		default:
			return pass
		}
	})
	runWorkload(t, c)
	st := c.NetStats()
	if st.Retries != 2 {
		t.Fatalf("retries = %d, want 2", st.Retries)
	}
	if st.ReplayHits != 1 {
		t.Fatalf("replay hits = %d, want 1 (one lost response, one refused connection)", st.ReplayHits)
	}
	if st.ReplayHits > st.Retries {
		t.Fatalf("replay hits %d exceed retries %d", st.ReplayHits, st.Retries)
	}
	if st.Attempts != st.Requests+st.Retries {
		t.Fatalf("attempts %d != requests %d + retries %d", st.Attempts, st.Requests, st.Retries)
	}
	m := srv.MetricsSnapshot()
	if m.Replays != st.ReplayHits {
		t.Fatalf("server replays %d != client replay hits %d", m.Replays, st.ReplayHits)
	}
}

// TestMetricsAgreeWithClient runs a clean workload and checks the server's
// lifetime telemetry against the client's measured wire stats, both through
// MetricsSnapshot and the scraped /metrics text.
func TestMetricsAgreeWithClient(t *testing.T) {
	srv, ts, c := start(t, 16, 4, ServerOptions{})
	runWorkload(t, c)
	st := c.NetStats()
	m := srv.MetricsSnapshot()
	if m.Requests-m.Replays != st.Requests {
		t.Fatalf("server executed %d (- %d replays) != client %d requests", m.Requests, m.Replays, st.Requests)
	}
	if m.ReadBlocks+m.WriteBlocks != st.BlocksMoved {
		t.Fatalf("server blocks %d+%d != client %d", m.ReadBlocks, m.WriteBlocks, st.BlocksMoved)
	}
	if m.ReadBlocks != 4 || m.WriteBlocks != 4 { // runWorkload: 3+1 written, 4 read
		t.Fatalf("block split %d/%d, want 4/4", m.ReadBlocks, m.WriteBlocks)
	}
	if m.Latency.Count() != m.Requests {
		t.Fatalf("latency count %d != requests %d", m.Latency.Count(), m.Requests)
	}
	if m.BytesIn <= 0 || m.BytesOut <= 0 || m.AuthFailures != 0 {
		t.Fatalf("byte/auth counters: %+v", m)
	}

	resp, err := http.Get(ts.URL + metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	out := string(body)
	for _, want := range []string{
		fmt.Sprintf("obstore_requests_total %d", m.Requests),
		fmt.Sprintf("obstore_read_blocks_total %d", m.ReadBlocks),
		fmt.Sprintf("obstore_write_blocks_total %d", m.WriteBlocks),
		"obstore_journal_len",
		"obstore_request_latency_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in /metrics:\n%s", want, out)
		}
	}

	resp, err = http.Get(ts.URL + healthzPath)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
}

// TestMetricsBehindAuth: with an auth token set, /metrics requires the
// bearer token like every data endpoint (counters leak access volume),
// while /healthz stays open for liveness probes; failed auth is itself
// counted.
func TestMetricsBehindAuth(t *testing.T) {
	srv, ts, _ := startAuthed(t, "s3cret")

	get := func(path, token string) int {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get(healthzPath, ""); code != http.StatusOK {
		t.Fatalf("/healthz without token: %d", code)
	}
	if code := get(metricsPath, ""); code != http.StatusUnauthorized {
		t.Fatalf("/metrics without token: %d", code)
	}
	if code := get(metricsPath, "wrong"); code != http.StatusUnauthorized {
		t.Fatalf("/metrics with a wrong token: %d", code)
	}
	if code := get(metricsPath, "s3cret"); code != http.StatusOK {
		t.Fatalf("/metrics with the token: %d", code)
	}
	if m := srv.MetricsSnapshot(); m.AuthFailures != 2 {
		t.Fatalf("auth failures = %d, want 2", m.AuthFailures)
	}
}

// startAuthed spins up a token-protected server without dialing a client.
func startAuthed(t *testing.T, token string) (*Server, *httptest.Server, string) {
	t.Helper()
	srv := NewServer(extmem.NewMemStore(8, 4), ServerOptions{AuthToken: token})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, ts.URL
}
