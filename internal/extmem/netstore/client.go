package netstore

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"crypto/tls"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"oblivext/internal/extmem"
)

// Options configures a Client.
type Options struct {
	// Timeout bounds each HTTP attempt (default 10s). An attempt that blows
	// the deadline is abandoned and, budget permitting, replayed.
	Timeout time.Duration
	// MaxAttempts bounds how many times one logical request may hit the wire
	// (default 4: the first attempt plus three retries). Must be >= 1 when
	// set; 0 selects the default.
	MaxAttempts int
	// Backoff caps the delay before the first retry (default 10ms). The cap
	// doubles per further retry up to one second, and every actual delay is
	// drawn uniformly from (0, cap] — full jitter. Without the jitter, the
	// clients of a K-shard fan-out that all hit the same transient fault
	// back off in lockstep and re-arrive as a synchronized retry storm; the
	// spread de-correlates them. A server-supplied Retry-After (e.g. a 503
	// during graceful drain) overrides the jittered delay for that retry.
	Backoff time.Duration
	// MaxIdleConnsPerHost sizes the keep-alive pool of the client's default
	// transport (0 selects 4). A batched ORAM access is a drumbeat of
	// small sequential requests — one per probed level plus the grouped
	// write-back — so connection reuse, not parallelism, is what keeps the
	// per-request cost at one RTT instead of one RTT plus a dial. Size it
	// to the fan-out width when several shard clients share one Transport
	// (oblivext.New does): all K sub-batches of a vectored call are in
	// flight at once and, when shard URLs point at one host, land on the
	// same per-host pool. Ignored when Transport is set.
	MaxIdleConnsPerHost int
	// Transport overrides the HTTP transport (default: NewTransport, a
	// keep-alive transport with an explicit idle pool). The
	// fault-injection tests use this to drop, delay, and corrupt
	// responses.
	Transport http.RoundTripper
	// TLS, when non-nil, configures the default transport's TLS client
	// settings (root CAs for a self-signed obstore certificate, or
	// InsecureSkipVerify for smoke tests). Ignored when Transport is set —
	// an explicit Transport carries its own TLS config.
	TLS *tls.Config
	// AuthToken, when non-empty, is sent as "Authorization: Bearer <token>"
	// on every request. It must match the server's -auth-token; a mismatch
	// is a permanent 401, not a retried fault.
	AuthToken string
	// Namespace selects the tenant this client's traffic belongs to on a
	// multi-tenant (service-mode) server: its own block address space, its
	// own journal and trace fingerprint, its own replay-suppression window.
	// Data-plane requests carry it inline (the OBS2 framing); control-plane
	// requests pass it as the ?ns= query parameter. Empty — the default —
	// selects the default tenant over the legacy OBS1 framing, so
	// single-tenant deployments are byte-for-byte unaffected. Must satisfy
	// ValidNamespace.
	Namespace string
}

const (
	defaultTimeout        = 10 * time.Second
	defaultMaxAttempts    = 4
	defaultBackoff        = 10 * time.Millisecond
	maxBackoff            = time.Second
	maxRetryAfter         = 10 * time.Second // cap on a server-supplied Retry-After
	defaultMaxIdlePerHost = 4
)

// NewTransport returns the transport a Client uses when Options.Transport
// is nil: http.DefaultTransport's dialer and TLS settings with keep-alives
// on and an explicit idle pool, so steady request streams (the batched
// ORAM access pattern above all) reuse connections instead of re-dialing.
// perHost sizes the per-host idle pool; values below the default of 4 are
// raised to it.
func NewTransport(perHost int) *http.Transport {
	if perHost < defaultMaxIdlePerHost {
		perHost = defaultMaxIdlePerHost
	}
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConnsPerHost = perHost
	if t.MaxIdleConns < 4*perHost {
		t.MaxIdleConns = 4 * perHost
	}
	return t
}

// Stats is the measured (not modeled) network cost of the traffic a Client
// has issued: real wall-clock waits, as opposed to the LatencyStore's
// accounted model.
type Stats struct {
	// Requests counts completed logical interactions (= round trips the Disk
	// layer charged; retries of one request do not add to it).
	Requests int64
	// Attempts counts HTTP requests put on the wire, including retries.
	Attempts int64
	// Retries = Attempts - (first attempts); nonzero only when the transport
	// misbehaved.
	Retries int64
	// ReplayHits counts responses the server answered from its replay-
	// suppression window instead of executing (it stamps those with an
	// X-Obstore-Replay header): a retransmission of ours whose first
	// execution's response was lost. ReplayHits <= Retries on a correct
	// server; the gap is retries whose first attempt never executed at all.
	ReplayHits int64
	// BlocksMoved counts blocks transferred in completed interactions.
	BlocksMoved int64
	// Total is the wall-clock time spent waiting on interactions, summed —
	// for one interaction this spans first attempt through final response,
	// including backoff. With the sharded fan-out, per-shard clients wait
	// concurrently, so wall time is below the sum of their Totals.
	Total time.Duration
	// Min and Max are the fastest and slowest completed interactions.
	Min, Max time.Duration
	// Hist buckets every completed interaction's wall-clock wait, for
	// percentile summaries (Hist.P50/P95/P99).
	Hist LatencyHistogram
}

// Client is an extmem.BlockStore served by a remote obstore server over
// HTTP. Like every BlockStore it is driven by one caller at a time (the
// Disk, or one shard goroutine of a fan-out); the internal mutex only guards
// the counters, which concurrent observers may read.
type Client struct {
	base        string
	hc          *http.Client
	b           int
	blockBytes  int
	timeout     time.Duration
	maxAttempts int
	backoff     time.Duration
	authToken   string
	ns          string // tenant namespace; "" = default tenant, OBS1 framing

	// sleep and jitter are injectable for the fake-clock backoff tests:
	// sleep waits for d or until ctx is canceled, jitter draws uniformly
	// from [0, 1) to spread the backoff delay (full jitter).
	sleep  func(ctx context.Context, d time.Duration) error
	jitter func() float64

	mu    sync.Mutex
	n     int // capacity in blocks; grows via GrowTo
	seq   uint64
	stats Stats
}

// Dial connects to an obstore server at baseURL (e.g. "http://host:9220"),
// fetches its geometry, and returns a ready BlockStore.
func Dial(baseURL string, opts Options) (*Client, error) {
	if opts.Timeout <= 0 {
		opts.Timeout = defaultTimeout
	}
	if opts.MaxAttempts == 0 {
		opts.MaxAttempts = defaultMaxAttempts
	}
	if opts.MaxAttempts < 1 {
		return nil, fmt.Errorf("netstore: MaxAttempts must be >= 1, got %d", opts.MaxAttempts)
	}
	if opts.Backoff <= 0 {
		opts.Backoff = defaultBackoff
	}
	if !ValidNamespace(opts.Namespace) {
		return nil, fmt.Errorf("netstore: invalid namespace %q (want 1..%d chars of [a-zA-Z0-9._-])",
			opts.Namespace, MaxNamespaceLen)
	}
	transport := opts.Transport
	if transport == nil {
		t := NewTransport(opts.MaxIdleConnsPerHost)
		if opts.TLS != nil {
			t.TLSClientConfig = opts.TLS
		}
		transport = t
	}
	c := &Client{
		base:        strings.TrimRight(baseURL, "/"),
		hc:          &http.Client{Transport: transport},
		timeout:     opts.Timeout,
		maxAttempts: opts.MaxAttempts,
		backoff:     opts.Backoff,
		authToken:   opts.AuthToken,
		ns:          opts.Namespace,
		sleep:       sleepCtx,
		jitter:      rand.Float64,
	}
	// Request ids start at a random point so that successive client
	// processes against one long-lived server cannot collide inside its
	// replay-suppression window (a collision would silently drop journal
	// entries — the audit log must not depend on who dialed first).
	var nonce [8]byte
	if _, err := crand.Read(nonce[:]); err != nil {
		return nil, fmt.Errorf("netstore: request-id nonce: %w", err)
	}
	c.seq = binary.LittleEndian.Uint64(nonce[:])
	var info infoJSON
	if err := c.getJSON(infoPath, &info); err != nil {
		return nil, fmt.Errorf("netstore: dial %s: %w", baseURL, err)
	}
	if info.BlockSize <= 0 || info.NumBlocks < 0 {
		return nil, fmt.Errorf("netstore: dial %s: bad geometry %+v", baseURL, info)
	}
	c.b = info.BlockSize
	c.blockBytes = info.BlockSize * extmem.ElementBytes
	c.n = info.NumBlocks
	return c, nil
}

// ReadBlock implements BlockStore: a one-block read batch.
func (c *Client) ReadBlock(addr int, dst []extmem.Element) error {
	return c.ReadBlocks([]int{addr}, dst)
}

// WriteBlock implements BlockStore: a one-block write batch.
func (c *Client) WriteBlock(addr int, src []extmem.Element) error {
	return c.WriteBlocks([]int{addr}, src)
}

// ReadBlocks implements BlockStore: the whole batch travels as one request,
// so the Disk's one-RoundTrip-per-vectored-call accounting matches what the
// wire actually carries.
func (c *Client) ReadBlocks(addrs []int, dst []extmem.Element) error {
	return c.ReadBlocksCtx(context.Background(), addrs, dst)
}

// ReadBlocksCtx implements extmem.CtxStore: ReadBlocks bound to ctx. A
// canceled context abandons the in-flight attempt and stops retrying — the
// sharded fan-out cancels doomed siblings through this, and the replica
// layer reaps the losing leg of a hedged read.
func (c *Client) ReadBlocksCtx(ctx context.Context, addrs []int, dst []extmem.Element) error {
	if len(dst) != len(addrs)*c.b {
		return fmt.Errorf("netstore: buffer length %d != %d blocks of %d elements", len(dst), len(addrs), c.b)
	}
	resp, err := c.doIO(ctx, opRead, addrs, 0, nil, len(addrs)*c.blockBytes)
	if err != nil {
		return err
	}
	extmem.DecodeElements(dst, resp)
	return nil
}

// WriteBlocks implements BlockStore: one request per batch, like ReadBlocks.
// The elements are encoded straight into the request body.
func (c *Client) WriteBlocks(addrs []int, src []extmem.Element) error {
	return c.WriteBlocksCtx(context.Background(), addrs, src)
}

// WriteBlocksCtx implements extmem.CtxStore: WriteBlocks bound to ctx.
func (c *Client) WriteBlocksCtx(ctx context.Context, addrs []int, src []extmem.Element) error {
	if len(src) != len(addrs)*c.b {
		return fmt.Errorf("netstore: buffer length %d != %d blocks of %d elements", len(src), len(addrs), c.b)
	}
	_, err := c.doIO(ctx, opWrite, addrs, len(addrs)*c.blockBytes,
		func(payload []byte) { extmem.EncodeElements(payload, src) }, 0)
	return err
}

// MaxBatchBlocks returns how many blocks one request can carry under the
// protocol's wire cap; callers driving this store (oblivext.New) cap the
// Disk layer's vectored batches to it so a request can never be rejected
// for size. Splitting a batch only regroups round trips — the per-block
// trace is unchanged.
func (c *Client) MaxBatchBlocks() int {
	return (maxBatchWire - headerLen - 1 - MaxNamespaceLen) / (8 + c.blockBytes)
}

// doIO sends one data-plane request, replaying it on transient failures
// (transport errors, timeouts, 5xx, short bodies) within the attempt budget.
// Every attempt carries the same request id, so the server can recognize a
// replay of a request whose response was lost and keep its journal free of
// duplicates.
func (c *Client) doIO(ctx context.Context, op byte, addrs []int, payloadLen int, fill func(payload []byte), respLen int) ([]byte, error) {
	opName := "read"
	if op == opWrite {
		opName = "write"
	}
	// Check the wire cap before materializing the body: rejection must not
	// cost a giant allocation. The namespaced framing's header is a few
	// bytes longer; MaxBatchBlocks budgets for the worst case.
	if headerLen+1+len(c.ns)+8*len(addrs)+payloadLen > maxBatchWire {
		return nil, fmt.Errorf("netstore: %s of %d blocks exceeds the %d-byte wire cap (%d blocks max at B=%d); lower MaxBatchBlocks",
			opName, len(addrs), maxBatchWire, c.MaxBatchBlocks(), c.b)
	}
	c.mu.Lock()
	c.seq++
	seq := c.seq
	c.mu.Unlock()
	body, payload := encodeRequest(op, seq, c.ns, addrs, payloadLen)
	if fill != nil {
		fill(payload)
	}
	start := time.Now()
	var data []byte
	err := c.withRetry(ctx,
		func() { // per-retry accounting, data plane only
			c.mu.Lock()
			c.stats.Retries++
			c.mu.Unlock()
		},
		func() (bool, time.Duration, error) {
			c.mu.Lock()
			c.stats.Attempts++
			c.mu.Unlock()
			var retryable, replayed bool
			var retryAfter time.Duration
			var err error
			data, replayed, retryable, retryAfter, err = c.attempt(ctx, body, respLen)
			if err == nil && replayed {
				c.mu.Lock()
				c.stats.ReplayHits++
				c.mu.Unlock()
			}
			return retryable, retryAfter, err
		})
	if err != nil {
		return nil, fmt.Errorf("netstore: %s of %d blocks: %w", opName, len(addrs), err)
	}
	c.account(len(addrs), time.Since(start))
	return data, nil
}

// withRetry runs f until it succeeds, fails permanently, exhausts the
// attempt budget, or ctx is canceled. The delay before retry r is drawn
// uniformly from (0, min(Backoff·2^(r-1), 1s)] — full jitter, so K clients
// tripped by the same fault don't re-arrive in lockstep — unless the server
// supplied a Retry-After (f's duration result), which overrides the jittered
// delay for that one retry: the server knows how long its drain lasts, and
// honoring it keeps restarts inside the retry path instead of tripping
// failover. onRetry, when non-nil, runs before each replay. Both the data
// and control planes share this one policy.
func (c *Client) withRetry(ctx context.Context, onRetry func(), f func() (retryable bool, retryAfter time.Duration, err error)) error {
	var lastErr error
	var hint time.Duration // server-supplied Retry-After from the last failure
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			if onRetry != nil {
				onRetry()
			}
			if err := c.sleep(ctx, c.retryDelay(attempt, hint)); err != nil {
				return fmt.Errorf("canceled while backing off: %w", err)
			}
		}
		retryable, retryAfter, err := f()
		if err == nil {
			return nil
		}
		lastErr, hint = err, retryAfter
		if !retryable {
			return err
		}
		if ctx.Err() != nil {
			// The caller canceled (fan-out sibling failed, hedge lost):
			// don't burn the remaining budget on a request nobody wants.
			return fmt.Errorf("canceled after %d attempts: %w", attempt+1, lastErr)
		}
	}
	return fmt.Errorf("failed after %d attempts: %w", c.maxAttempts, lastErr)
}

// retryDelay computes the wait before the attempt-th attempt (1-based
// retries): full jitter over an exponentially-doubling cap, or the server's
// Retry-After hint verbatim (capped) when one was supplied.
func (c *Client) retryDelay(attempt int, hint time.Duration) time.Duration {
	if hint > 0 {
		return min(hint, maxRetryAfter)
	}
	d := maxBackoff // large attempt counts saturate (the shift would overflow)
	if attempt <= 16 {
		if shifted := c.backoff << (attempt - 1); shifted > 0 && shifted < maxBackoff {
			d = shifted
		}
	}
	// Full jitter: uniform in (0, d]. The +1 keeps the delay strictly
	// positive so a retry can never busy-spin.
	return time.Duration(c.jitter()*float64(d)) + 1
}

// sleepCtx is the default Client.sleep: wait d or until ctx is canceled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// attempt performs one HTTP exchange under ctx. replayed reports whether the
// server answered from its replay-suppression window (the X-Obstore-Replay
// header); retryable reports whether a failure is transient (worth
// replaying); retryAfter carries the server's Retry-After hint on a 503
// (e.g. a graceful drain), zero otherwise.
func (c *Client) attempt(ctx context.Context, body []byte, respLen int) (data []byte, replayed, retryable bool, retryAfter time.Duration, err error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+ioPath, bytes.NewReader(body))
	if err != nil {
		return nil, false, false, 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, true, 0, err // transport/deadline failure: replay
	}
	defer resp.Body.Close()
	replayed = resp.Header.Get(replayHeader) == "1"
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("server: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Prefer the millisecond-precision variant; the standard header
			// only resolves whole seconds.
			if v, perr := strconv.Atoi(strings.TrimSpace(resp.Header.Get(retryAfterMSHeader))); perr == nil && v >= 0 {
				retryAfter = time.Duration(v) * time.Millisecond
			} else if secs, perr := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); perr == nil && secs >= 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, replayed, resp.StatusCode >= 500, retryAfter, err
	}
	data, err = io.ReadAll(io.LimitReader(resp.Body, int64(respLen)+1))
	if err != nil {
		return nil, replayed, true, 0, err // connection died mid-body: replay
	}
	if len(data) != respLen {
		// A cleanly-delivered body of the wrong length is not a transient
		// fault — it means the server's geometry disagrees with ours (e.g.
		// restarted with a different -b). Burning the budget on it only
		// delays the diagnosis.
		return nil, replayed, false, 0, fmt.Errorf("response body %d bytes, want %d (server geometry changed?)", len(data), respLen)
	}
	return data, replayed, false, 0, nil
}

// authorize attaches the bearer token, when one is configured.
func (c *Client) authorize(req *http.Request) {
	if c.authToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.authToken)
	}
}

// account folds one completed interaction into the measured stats.
func (c *Client) account(blocks int, elapsed time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Requests++
	c.stats.BlocksMoved += int64(blocks)
	c.stats.Total += elapsed
	c.stats.Hist.Observe(elapsed)
	if c.stats.Min == 0 || elapsed < c.stats.Min {
		c.stats.Min = elapsed
	}
	if elapsed > c.stats.Max {
		c.stats.Max = elapsed
	}
}

// getJSON fetches a control-plane endpoint with the same retry policy as the
// data plane.
func (c *Client) getJSON(path string, out any) error {
	return c.controlJSON(http.MethodGet, path, nil, out)
}

// controlJSON performs one control-plane exchange (geometry, growth) under
// the shared retry policy; control requests are idempotent like the data
// plane. The client's namespace rides along as the ?ns= query parameter, so
// every control operation is scoped to the same tenant the data plane
// targets.
func (c *Client) controlJSON(method, path string, body []byte, out any) error {
	if c.ns != "" {
		path += "?" + nsParam + "=" + c.ns // ValidNamespace ⊂ URL-safe chars
	}
	return c.withRetry(context.Background(), nil, func() (bool, time.Duration, error) {
		ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return false, 0, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		c.authorize(req)
		resp, err := c.hc.Do(req)
		if err != nil {
			return true, 0, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err != nil {
			return true, 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode >= 500, 0,
				fmt.Errorf("server: %s: %s", resp.Status, strings.TrimSpace(string(raw)))
		}
		if out == nil {
			return false, 0, nil
		}
		return false, 0, json.Unmarshal(raw, out)
	})
}

// GrowTo implements extmem.Growable: the server extends its store (growth is
// a control operation, not a data transfer — no journal entry, matching the
// Disk's allocation-is-free accounting).
func (c *Client) GrowTo(n int) error {
	c.mu.Lock()
	have := c.n
	c.mu.Unlock()
	if n <= have {
		return nil
	}
	body, err := json.Marshal(growJSON{NumBlocks: n})
	if err != nil {
		return err
	}
	var info infoJSON
	if err := c.controlJSON(http.MethodPost, growPath, body, &info); err != nil {
		return fmt.Errorf("netstore: grow to %d blocks: %w", n, err)
	}
	c.mu.Lock()
	if info.NumBlocks > c.n {
		c.n = info.NumBlocks
	}
	c.mu.Unlock()
	return nil
}

// ServerTrace is the server-side journal fingerprint as fetched over HTTP:
// the length and hash of the per-block access sequence the server observed,
// plus its raw request count and how many retransmissions it suppressed.
type ServerTrace struct {
	Len      int64
	Hash     uint64
	Requests int64
	Replays  int64
}

// FetchServerTrace retrieves the server's journal fingerprint — the
// adversary's own record of Alice's accesses, independent of any client-side
// bookkeeping.
func (c *Client) FetchServerTrace() (ServerTrace, error) {
	var tj traceJSON
	if err := c.getJSON(tracePath, &tj); err != nil {
		return ServerTrace{}, fmt.Errorf("netstore: fetch trace: %w", err)
	}
	var hash uint64
	if _, err := fmt.Sscanf(tj.Hash, "%x", &hash); err != nil {
		return ServerTrace{}, fmt.Errorf("netstore: bad trace hash %q: %w", tj.Hash, err)
	}
	return ServerTrace{Len: tj.Len, Hash: hash, Requests: tj.Requests, Replays: tj.Replays}, nil
}

// ResetServerTrace clears the server-side journal recorder, so a fingerprint
// can cover exactly one phase (e.g. Sort alone, excluding the upload).
func (c *Client) ResetServerTrace() error {
	if err := c.controlJSON(http.MethodPost, traceResetPath, nil, nil); err != nil {
		return fmt.Errorf("netstore: reset trace: %w", err)
	}
	return nil
}

// NumBlocks implements BlockStore (the capacity learned at Dial, advanced by
// GrowTo).
func (c *Client) NumBlocks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// BlockSize implements BlockStore.
func (c *Client) BlockSize() int { return c.b }

// Close implements BlockStore: the server outlives its clients; only idle
// connections are released.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// NetStats returns the measured network counters.
func (c *Client) NetStats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// RoundTrips implements extmem.NetModel.
func (c *Client) RoundTrips() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats.Requests
}

// BlocksMoved implements extmem.NetModel.
func (c *Client) BlocksMoved() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats.BlocksMoved
}

// ModeledTime implements extmem.NetModel. For a real backend the "model" is
// measurement: the wall-clock time spent waiting on completed interactions.
func (c *Client) ModeledTime() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats.Total
}

// ResetNetStats implements extmem.NetModel.
func (c *Client) ResetNetStats() {
	c.mu.Lock()
	c.stats = Stats{}
	c.mu.Unlock()
}
