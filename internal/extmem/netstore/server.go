package netstore

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"oblivext/internal/extmem"
	"oblivext/internal/trace"
)

// ServerOptions configures a Server.
type ServerOptions struct {
	// TraceKeep is how many journal ops the in-memory recorder retains
	// verbatim (the running hash and count always cover the full journal).
	TraceKeep int
	// Journal, when non-nil, receives one line per observed block access
	// ("R 42\n" / "W 7\n") on the default tenant — the durable audit record
	// of the adversary's view. A journal write failure fails the request: an
	// unauditable access is not silently served.
	Journal io.Writer
	// DedupWindow is how many recent request ids each tenant remembers for
	// replay suppression (default 4096). The window is per namespace — the
	// replay key is (namespace, seq) — so concurrent sessions in different
	// namespaces can never suppress each other's journal entries. A client
	// has at most a handful of requests in flight, so the default window
	// exceeds any realistic replay distance by orders of magnitude. If an id
	// IS evicted before a stale duplicate arrives, that duplicate is treated
	// as new: it is journaled again and — for writes — re-executed, which can
	// roll back a newer write to the same blocks. Do not shrink the window
	// below the number of requests a client can have outstanding between a
	// send and its last retry.
	DedupWindow int
	// AuthToken, when non-empty, requires every request (data and control
	// plane, the trace endpoints included) to carry a matching
	// "Authorization: Bearer <token>" header; anything else is rejected
	// with 401 before it can touch the store or the journal. The check is
	// constant-time over digests. The token authenticates the caller to
	// Bob — it is a transport credential shared out of band, not part of
	// Alice's encryption key.
	AuthToken string
	// StoreFactory, when non-nil, turns the server multi-tenant: the first
	// request naming a namespace the server has not seen gets a fresh store
	// from StoreFactory(ns), and from then on that namespace is its own
	// isolated tenant — its own block address space, its own journal and
	// /v1/trace fingerprint, its own replay-suppression window. The factory
	// must return stores with the server's block size. Without a factory,
	// requests naming a non-default namespace are rejected with 404.
	StoreFactory func(ns string) (extmem.BlockStore, error)
	// JournalFactory, when non-nil, supplies the durable journal writer for
	// each namespace StoreFactory creates (the default tenant keeps using
	// Journal). Closing the writers is the caller's business; the server
	// only ever writes.
	JournalFactory func(ns string) (io.Writer, error)
	// MaxNamespaces caps how many tenants a multi-tenant server will create
	// (default 1024). Requests naming further namespaces are rejected with
	// 400 — a hard bound on the per-tenant memory an unauthenticated client
	// could otherwise allocate.
	MaxNamespaces int
}

// tenant is one namespace's slice of the server: its own store, journal,
// trace recorder, replay-suppression window, and scratch buffers, all behind
// its own mutex so different sessions' requests serve in parallel. Nothing
// here is shared across namespaces — that is the isolation the cross-session
// adversary tests pin.
type tenant struct {
	mu       sync.Mutex
	ns       string
	store    extmem.BlockStore
	rec      *trace.Recorder
	journal  io.Writer
	requests int64
	replays  int64
	seen     map[uint64]struct{}
	ring     []uint64 // eviction order for seen
	ringNext int
	elems    []extmem.Element
	jbuf     []byte // one batch's journal lines, written as a unit
}

// Server is Bob as an actual process: it owns one block store per namespace
// (memory- or file-backed), serves the batched binary protocol, and journals
// the per-block access sequence each tenant observes — the adversary's view,
// recorded by the adversary. Handlers are safe for concurrent use; requests
// within one namespace serialize on that tenant's mutex (so each journal's
// order is the order its requests were executed in), while requests for
// different namespaces execute in parallel.
type Server struct {
	b           int
	blockBytes  int
	keep        int
	dedupWindow int
	factory     func(ns string) (extmem.BlockStore, error)
	journalFor  func(ns string) (io.Writer, error)
	maxNS       int
	authDigest  [32]byte // sha256 of the bearer token; zero when auth is off
	authOn      bool

	mu      sync.Mutex
	tenants map[string]*tenant
	order   []string // tenant creation order, for Namespaces()
	// Lifetime telemetry for /metrics, aggregated over tenants. Unlike each
	// tenant's requests/replays these are never reset by ResetTrace:
	// Prometheus counters must be monotonic, and a client comparing its own
	// measured totals against the server's needs figures that survive
	// mid-run trace resets.
	reqTotal    int64
	replayTotal int64
	readBlocks  int64
	writeBlocks int64
	bytesIn     int64
	bytesOut    int64
	authFails   int64
	hist        LatencyHistogram
	// Readiness state: draining refuses new data-plane work with 503 +
	// Retry-After so clients absorb a graceful restart through their retry
	// path; journalErr latches a journal write failure on any tenant (the
	// server can no longer produce an auditable record, so it must stop
	// reporting ready).
	draining   bool
	drainRetry time.Duration
	journalErr error
}

// NewServer wraps a block store — the default tenant's — in a protocol
// server. With ServerOptions.StoreFactory set the server is multi-tenant:
// further namespaces materialize on first use.
func NewServer(store extmem.BlockStore, opts ServerOptions) *Server {
	if opts.DedupWindow <= 0 {
		opts.DedupWindow = 4096
	}
	if opts.MaxNamespaces <= 0 {
		opts.MaxNamespaces = 1024
	}
	s := &Server{
		b:           store.BlockSize(),
		blockBytes:  store.BlockSize() * extmem.ElementBytes,
		keep:        opts.TraceKeep,
		dedupWindow: opts.DedupWindow,
		factory:     opts.StoreFactory,
		journalFor:  opts.JournalFactory,
		maxNS:       opts.MaxNamespaces,
		tenants:     make(map[string]*tenant),
	}
	if opts.AuthToken != "" {
		s.authDigest = sha256.Sum256([]byte(opts.AuthToken))
		s.authOn = true
	}
	s.addTenant("", store, opts.Journal)
	return s
}

// addTenant installs a namespace's state; the caller must hold s.mu (or, at
// construction, be the only goroutine).
func (s *Server) addTenant(ns string, store extmem.BlockStore, journal io.Writer) *tenant {
	t := &tenant{
		ns:      ns,
		store:   store,
		rec:     trace.NewRecorder(s.keep),
		journal: journal,
		seen:    make(map[uint64]struct{}, s.dedupWindow),
		ring:    make([]uint64, s.dedupWindow),
	}
	s.tenants[ns] = t
	s.order = append(s.order, ns)
	return t
}

// tenantFor resolves a namespace to its tenant, creating it through the
// store factory on first use. The error status is permanent (4xx) for
// unknown or excess namespaces, 500 for a factory failure.
func (s *Server) tenantFor(ns string) (*tenant, int, error) {
	if !ValidNamespace(ns) {
		return nil, http.StatusBadRequest, fmt.Errorf("netstore: invalid namespace %q", ns)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[ns]; ok {
		return t, http.StatusOK, nil
	}
	if s.factory == nil {
		return nil, http.StatusNotFound, fmt.Errorf("netstore: unknown namespace %q (server is single-tenant)", ns)
	}
	if len(s.tenants) >= s.maxNS {
		return nil, http.StatusBadRequest, fmt.Errorf("netstore: namespace limit %d reached", s.maxNS)
	}
	store, err := s.factory(ns)
	if err != nil {
		return nil, http.StatusInternalServerError, fmt.Errorf("netstore: namespace %q: %w", ns, err)
	}
	if store.BlockSize() != s.b {
		store.Close()
		return nil, http.StatusInternalServerError,
			fmt.Errorf("netstore: namespace %q: factory store block size %d != %d", ns, store.BlockSize(), s.b)
	}
	var journal io.Writer
	if s.journalFor != nil {
		journal, err = s.journalFor(ns)
		if err != nil {
			store.Close()
			return nil, http.StatusInternalServerError, fmt.Errorf("netstore: namespace %q journal: %w", ns, err)
		}
	}
	return s.addTenant(ns, store, journal), http.StatusOK, nil
}

// BeginDrain puts the server into graceful drain: every subsequent
// data-plane and grow request is refused with 503 and a Retry-After of
// retryAfter (both the standard seconds header and the millisecond-precision
// variant), and /readyz flips to 503 so load balancers stop routing here.
// In-flight requests finish normally. The point of the 503 contract is that
// a restarting server is a *transient* fault: the client's retry path —
// which honors Retry-After — absorbs it, rather than the replica layer's
// failover marking the server unhealthy and dirtying its blocks. Trace and
// metrics endpoints stay live so a drained server can still be audited.
func (s *Server) BeginDrain(retryAfter time.Duration) {
	s.mu.Lock()
	s.draining, s.drainRetry = true, retryAfter
	s.mu.Unlock()
}

// EndDrain cancels a drain (a rollback of the restart, or a test bringing
// the server back): the server resumes accepting data-plane work.
func (s *Server) EndDrain() {
	s.mu.Lock()
	s.draining = false
	s.mu.Unlock()
}

// Draining reports whether the server is refusing new data-plane work.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Handler returns the HTTP handler serving the protocol. With an AuthToken
// configured every endpoint — /metrics included, since counters leak the
// access volume — sits behind the bearer-token check. /healthz and /readyz
// alone stay open: they reveal only liveness/readiness, and load balancers
// probe them without credentials.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+ioPath, s.handleIO)
	mux.HandleFunc("GET "+infoPath, s.handleInfo)
	mux.HandleFunc("POST "+growPath, s.handleGrow)
	mux.HandleFunc("GET "+tracePath, s.handleTrace)
	mux.HandleFunc("POST "+traceResetPath, s.handleTraceReset)
	mux.HandleFunc("GET "+namespacesPath, s.handleNamespaces)
	mux.HandleFunc("GET "+metricsPath, s.handleMetrics)
	var h http.Handler = mux
	if s.authOn {
		h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			token, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			if !ok || !s.tokenOK(token) {
				s.mu.Lock()
				s.authFails++
				s.mu.Unlock()
				http.Error(w, "netstore: missing or invalid bearer token", http.StatusUnauthorized)
				return
			}
			mux.ServeHTTP(w, r)
		})
	}
	outer := http.NewServeMux()
	outer.HandleFunc("GET "+healthzPath, s.handleHealthz)
	outer.HandleFunc("GET "+readyzPath, s.handleReadyz)
	outer.Handle("/", h)
	return outer
}

// tokenOK compares the presented token against the configured one in
// constant time (over fixed-length digests, so the comparison leaks neither
// contents nor length).
func (s *Server) tokenOK(token string) bool {
	d := sha256.Sum256([]byte(token))
	return subtle.ConstantTimeCompare(d[:], s.authDigest[:]) == 1
}

// TraceSummary returns the default tenant's in-memory journal fingerprint
// (for in-process tests; remote auditors use the tracePath endpoint).
func (s *Server) TraceSummary() trace.Summary { return s.TraceSummaryNS("") }

// TraceSummaryNS returns one namespace's journal fingerprint. An unknown
// namespace reports a zero summary — it has observed nothing.
func (s *Server) TraceSummaryNS(ns string) trace.Summary {
	t := s.lookup(ns)
	if t == nil {
		return trace.Summary{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rec.Summarize()
}

// TraceOps returns the default tenant's retained journal prefix.
func (s *Server) TraceOps() []trace.Op { return s.TraceOpsNS("") }

// TraceOpsNS returns one namespace's retained journal prefix.
func (s *Server) TraceOpsNS(ns string) []trace.Op {
	t := s.lookup(ns)
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]trace.Op(nil), t.rec.Ops()...)
}

// lookup returns the tenant for ns without creating it, or nil.
func (s *Server) lookup(ns string) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenants[ns]
}

// ResetTrace clears the default tenant's journal recorder and request
// counters (the replay-suppression window survives: ids keep increasing
// across phases).
func (s *Server) ResetTrace() { s.ResetTraceNS("") }

// ResetTraceNS clears one namespace's journal recorder and request counters.
func (s *Server) ResetTraceNS(ns string) {
	t := s.lookup(ns)
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rec = trace.NewRecorder(s.keep)
	t.requests, t.replays = 0, 0
}

// Namespaces returns the names of every tenant the server holds, in
// creation order; the default tenant is "".
func (s *Server) Namespaces() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Close closes every tenant's underlying store.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, ns := range s.order {
		if err := s.tenants[ns].store.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (s *Server) handleIO(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	if s.refuseIfDraining(w) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBatchWire))
	if err != nil {
		http.Error(w, fmt.Sprintf("read request: %v", err), http.StatusBadRequest)
		return
	}
	op, seq, ns, addrs, payload, err := decodeRequest(body, s.blockBytes)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	t, status, err := s.tenantFor(ns)
	if err != nil {
		http.Error(w, err.Error(), status)
		return
	}
	// All shared state is touched inside serveIO's locks; the socket writes
	// below happen after they are released, so one stalled client connection
	// cannot wedge the whole server behind a mutex.
	wire, replay, status, msg := s.serveIO(t, op, seq, addrs, payload, int64(len(body)), started)
	if status != http.StatusOK {
		http.Error(w, msg, status)
		return
	}
	if replay {
		w.Header().Set(replayHeader, "1")
	}
	if op == opRead {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(wire)
	} else {
		w.WriteHeader(http.StatusOK)
	}
}

// serveIO executes one decoded data-plane request under its tenant's mutex
// and returns the read payload (reads only), whether the request was
// answered from the replay window, and an error status + message. bodyBytes
// and started feed the telemetry counters.
func (s *Server) serveIO(t *tenant, op byte, seq uint64, addrs []int, payload []byte, bodyBytes int64, started time.Time) (wire []byte, replay bool, status int, msg string) {
	t.mu.Lock()
	replay = t.isReplay(seq)

	// Address validation is the client's responsibility gone wrong (400,
	// permanent); anything the store itself then fails on is the server's
	// problem (500, and the client's retry budget applies — a transient
	// disk fault must not abort a Sort built to survive transient faults).
	numBlocks := t.store.NumBlocks()
	for _, a := range addrs {
		if a >= numBlocks {
			t.mu.Unlock()
			return nil, replay, http.StatusBadRequest,
				fmt.Sprintf("netstore: block address %d out of range [0,%d)", a, numBlocks)
		}
	}
	kind := trace.Read
	if op == opWrite {
		kind = trace.Write
	}
	elems := t.scratchElems(len(addrs), s.b)
	if op == opRead {
		// Replayed reads re-execute — the data is needed again and reads
		// are pure.
		if err := t.store.ReadBlocks(addrs, elems); err != nil {
			t.mu.Unlock()
			return nil, replay, http.StatusInternalServerError, err.Error()
		}
	} else if !replay {
		extmem.DecodeElements(elems, payload)
		if err := t.store.WriteBlocks(addrs, elems); err != nil {
			t.mu.Unlock()
			return nil, replay, http.StatusInternalServerError, err.Error()
		}
	}
	// else: a replayed write is acknowledged without touching the store.
	// Its first execution already landed; re-applying a stale duplicate
	// (e.g. one abandoned to a timeout, arriving after a *newer* write to
	// the same blocks) would roll that newer data back.
	if !replay {
		if err := t.record(kind, addrs); err != nil {
			// The access executed but could not be journaled: fail the
			// request WITHOUT marking the id as seen, so the client's
			// replay gets journaled rather than suppressed as a phantom
			// "replay" of a request the audit log never recorded — and
			// latch the failure for /readyz: a server that cannot journal
			// cannot produce an auditable record.
			t.mu.Unlock()
			s.mu.Lock()
			s.journalErr = err
			s.mu.Unlock()
			return nil, replay, http.StatusInternalServerError, fmt.Sprintf("journal: %v", err)
		}
		t.remember(seq)
	}
	// Counters advance only for requests actually served.
	t.requests++
	if replay {
		t.replays++
	}
	if op == opRead {
		// A fresh buffer per request: the response outlives the lock (it is
		// written to the socket after release), so it cannot share scratch.
		wire = make([]byte, len(addrs)*s.blockBytes)
		extmem.EncodeElements(wire, elems)
	}
	t.mu.Unlock()

	s.mu.Lock()
	s.reqTotal++
	if replay {
		s.replayTotal++
	}
	s.bytesIn += bodyBytes
	if op == opRead {
		s.readBlocks += int64(len(addrs))
		s.bytesOut += int64(len(addrs)) * int64(s.blockBytes)
	} else {
		s.writeBlocks += int64(len(addrs))
	}
	s.hist.Observe(time.Since(started))
	s.mu.Unlock()
	return wire, replay, http.StatusOK, ""
}

// isReplay reports whether seq is in this tenant's replay-suppression
// window: a retransmission of a request the tenant already executed and
// journaled (its response was lost on the way back). The caller holds t.mu.
func (t *tenant) isReplay(seq uint64) bool {
	_, ok := t.seen[seq]
	return ok
}

// remember commits seq to the tenant's replay-suppression window — only
// after the request both executed and journaled, so suppression never hides
// an access the audit log missed. The caller holds t.mu.
func (t *tenant) remember(seq uint64) {
	delete(t.seen, t.ring[t.ringNext])
	t.ring[t.ringNext] = seq
	t.ringNext = (t.ringNext + 1) % len(t.ring)
	t.seen[seq] = struct{}{}
}

// record journals one batch's per-block accesses: the file write goes out
// as a single buffer first, and the in-memory recorder advances only once
// that write succeeded, so the two views cannot diverge mid-batch. The
// caller holds t.mu.
func (t *tenant) record(kind trace.Kind, addrs []int) error {
	if t.journal != nil {
		t.jbuf = t.jbuf[:0]
		for _, a := range addrs {
			t.jbuf = fmt.Appendf(t.jbuf, "%c %d\n", kind, a)
		}
		if _, err := t.journal.Write(t.jbuf); err != nil {
			return err
		}
	}
	for _, a := range addrs {
		t.rec.Record(kind, int64(a))
	}
	return nil
}

func (t *tenant) scratchElems(blocks, b int) []extmem.Element {
	if need := blocks * b; cap(t.elems) < need {
		t.elems = make([]extmem.Element, need)
	}
	return t.elems[:blocks*b]
}

// reqNS resolves the request's tenant from the control-plane ?ns= query
// parameter, writing the error response itself on failure.
func (s *Server) reqNS(w http.ResponseWriter, r *http.Request) (*tenant, bool) {
	t, status, err := s.tenantFor(r.URL.Query().Get(nsParam))
	if err != nil {
		http.Error(w, err.Error(), status)
		return nil, false
	}
	return t, true
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	t, ok := s.reqNS(w, r)
	if !ok {
		return
	}
	t.mu.Lock()
	info := infoJSON{NumBlocks: t.store.NumBlocks(), BlockSize: s.b}
	t.mu.Unlock()
	writeJSON(w, info)
}

// refuseIfDraining answers a data-plane or grow request with 503 plus both
// Retry-After headers when the server is draining, reporting whether the
// request was handled. The delay the client is told to wait is the drain's
// configured Retry-After — the server's own estimate of when it (or its
// replacement) will take traffic again.
func (s *Server) refuseIfDraining(w http.ResponseWriter) bool {
	s.mu.Lock()
	draining, retry := s.draining, s.drainRetry
	s.mu.Unlock()
	if !draining {
		return false
	}
	secs := int(retry / time.Second)
	if retry > 0 && secs == 0 {
		secs = 1 // the standard header can't say "less than a second"
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	w.Header().Set(retryAfterMSHeader, fmt.Sprintf("%d", retry/time.Millisecond))
	http.Error(w, "netstore: draining for restart, retry shortly", http.StatusServiceUnavailable)
	return true
}

func (s *Server) handleGrow(w http.ResponseWriter, r *http.Request) {
	if s.refuseIfDraining(w) {
		return
	}
	var req growJSON
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("grow: %v", err), http.StatusBadRequest)
		return
	}
	if req.NumBlocks < 0 {
		http.Error(w, "grow: negative capacity", http.StatusBadRequest)
		return
	}
	t, ok := s.reqNS(w, r)
	if !ok {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if req.NumBlocks > t.store.NumBlocks() {
		g, ok := t.store.(extmem.Growable)
		if !ok {
			http.Error(w, fmt.Sprintf("grow: %T cannot grow", t.store), http.StatusBadRequest)
			return
		}
		if err := g.GrowTo(req.NumBlocks); err != nil {
			http.Error(w, fmt.Sprintf("grow: %v", err), http.StatusInternalServerError)
			return
		}
	}
	writeJSON(w, infoJSON{NumBlocks: t.store.NumBlocks(), BlockSize: s.b})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	t, ok := s.reqNS(w, r)
	if !ok {
		return
	}
	t.mu.Lock()
	sum := t.rec.Summarize()
	tj := traceJSON{Len: sum.Len, Hash: fmt.Sprintf("%016x", sum.Hash),
		Requests: t.requests, Replays: t.replays}
	t.mu.Unlock()
	writeJSON(w, tj)
}

func (s *Server) handleTraceReset(w http.ResponseWriter, r *http.Request) {
	t, ok := s.reqNS(w, r)
	if !ok {
		return
	}
	t.mu.Lock()
	t.rec = trace.NewRecorder(s.keep)
	t.requests, t.replays = 0, 0
	t.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

// handleNamespaces lists every tenant with its geometry, journal length, and
// request count — the fleet-operator's view of who is on this server. It
// sits behind the bearer-token check like the trace endpoints: the tenant
// list is workload metadata.
func (s *Server) handleNamespaces(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	tenants := make([]*tenant, 0, len(s.order))
	for _, ns := range s.order {
		tenants = append(tenants, s.tenants[ns])
	}
	s.mu.Unlock()
	out := namespacesJSON{Namespaces: make([]namespaceInfoJSON, 0, len(tenants))}
	for _, t := range tenants {
		t.mu.Lock()
		out.Namespaces = append(out.Namespaces, namespaceInfoJSON{
			Name: t.ns, NumBlocks: t.store.NumBlocks(),
			JournalLen: t.rec.Len(), Requests: t.requests,
		})
		t.mu.Unlock()
	}
	writeJSON(w, out)
}

// Metrics is a snapshot of the server's lifetime telemetry (the figures
// /metrics exports), for in-process assertions.
type Metrics struct {
	Requests, Replays       int64
	ReadBlocks, WriteBlocks int64
	BytesIn, BytesOut       int64
	AuthFailures            int64
	JournalLen              int64
	Namespaces              int
	Latency                 LatencyHistogram
}

// MetricsSnapshot returns the current lifetime telemetry. JournalLen sums
// over tenants.
func (s *Server) MetricsSnapshot() Metrics {
	s.mu.Lock()
	m := Metrics{
		Requests:     s.reqTotal,
		Replays:      s.replayTotal,
		ReadBlocks:   s.readBlocks,
		WriteBlocks:  s.writeBlocks,
		BytesIn:      s.bytesIn,
		BytesOut:     s.bytesOut,
		AuthFailures: s.authFails,
		Namespaces:   len(s.tenants),
		Latency:      s.hist,
	}
	tenants := make([]*tenant, 0, len(s.order))
	for _, ns := range s.order {
		tenants = append(tenants, s.tenants[ns])
	}
	s.mu.Unlock()
	for _, t := range tenants {
		t.mu.Lock()
		m.JournalLen += t.rec.Len()
		t.mu.Unlock()
	}
	return m
}

// handleMetrics serves the lifetime telemetry in Prometheus text exposition
// format. All counters are monotonic over the server's lifetime — the
// trace-reset endpoint does not touch them.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.MetricsSnapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("obstore_requests_total", "Data-plane requests served successfully (replays included).", m.Requests)
	counter("obstore_replays_total", "Requests answered from the replay-suppression window.", m.Replays)
	counter("obstore_read_blocks_total", "Blocks served by read batches.", m.ReadBlocks)
	counter("obstore_write_blocks_total", "Blocks received by write batches.", m.WriteBlocks)
	counter("obstore_bytes_in_total", "Data-plane request body bytes received.", m.BytesIn)
	counter("obstore_bytes_out_total", "Data-plane response payload bytes sent.", m.BytesOut)
	counter("obstore_auth_failures_total", "Requests rejected by the bearer-token check.", m.AuthFailures)
	fmt.Fprintf(w, "# HELP obstore_journal_len Per-block accesses in the current journal windows, summed over namespaces.\n# TYPE obstore_journal_len gauge\nobstore_journal_len %d\n", m.JournalLen)
	fmt.Fprintf(w, "# HELP obstore_namespaces Tenants this server holds (default namespace included).\n# TYPE obstore_namespaces gauge\nobstore_namespaces %d\n", m.Namespaces)
	m.Latency.WritePrometheus(w, "obstore_request_latency_seconds")
}

// handleReadyz reports readiness — can this server take data-plane traffic
// right now? — as distinct from /healthz liveness (is the process up at
// all?). Not ready while draining (503 with both Retry-After headers, same
// contract as the data plane) or after a journal write failure on any
// tenant (the store may work, but an unauditable server must not receive
// traffic). Served outside the auth wrapper, like /healthz: it reveals only
// readiness.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.refuseIfDraining(w) {
		return
	}
	s.mu.Lock()
	jerr := s.journalErr
	s.mu.Unlock()
	if jerr != nil {
		http.Error(w, fmt.Sprintf("netstore: journal failed, refusing traffic: %v", jerr),
			http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	io.WriteString(w, "ready\n")
}

// handleHealthz reports liveness; it is served outside the auth wrapper.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	io.WriteString(w, "ok\n")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
