package netstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"oblivext/internal/extmem"
	"oblivext/internal/trace"
)

// start spins up an in-process obstore over a MemStore and dials it.
func start(t *testing.T, blocks, b int, opts ServerOptions) (*Server, *httptest.Server, *Client) {
	t.Helper()
	srv := NewServer(extmem.NewMemStore(blocks, b), opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c, err := Dial(ts.URL, Options{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, ts, c
}

func blockOf(b int, v uint64) []extmem.Element {
	out := make([]extmem.Element, b)
	for i := range out {
		out[i] = extmem.Element{Key: v, Val: uint64(i), Pos: v ^ uint64(i), Flags: extmem.FlagOccupied}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	const b = 4
	_, _, c := start(t, 16, b, ServerOptions{})
	if c.NumBlocks() != 16 || c.BlockSize() != b {
		t.Fatalf("geometry %d/%d", c.NumBlocks(), c.BlockSize())
	}

	// Scalar write/read.
	if err := c.WriteBlock(3, blockOf(b, 42)); err != nil {
		t.Fatal(err)
	}
	got := make([]extmem.Element, b)
	if err := c.ReadBlock(3, got); err != nil {
		t.Fatal(err)
	}
	if want := blockOf(b, 42); !equalElems(got, want) {
		t.Fatalf("read back %+v, want %+v", got, want)
	}

	// Vectored, non-contiguous, with a duplicate address (later write wins).
	addrs := []int{7, 1, 7, 10}
	src := make([]extmem.Element, 0, len(addrs)*b)
	for i := range addrs {
		src = append(src, blockOf(b, uint64(100+i))...)
	}
	if err := c.WriteBlocks(addrs, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]extmem.Element, len(addrs)*b)
	if err := c.ReadBlocks(addrs, dst); err != nil {
		t.Fatal(err)
	}
	if !equalElems(dst[0*b:1*b], blockOf(b, 102)) { // block 7: the later slice won
		t.Fatalf("duplicate-address write: got %+v", dst[0*b:1*b])
	}
	if !equalElems(dst[1*b:2*b], blockOf(b, 101)) || !equalElems(dst[3*b:4*b], blockOf(b, 103)) {
		t.Fatal("vectored read returned wrong blocks")
	}

	// An unwritten block reads back zeroed.
	if err := c.ReadBlock(0, got); err != nil {
		t.Fatal(err)
	}
	if !equalElems(got, make([]extmem.Element, b)) {
		t.Fatalf("unwritten block not zero: %+v", got)
	}
}

func TestGrow(t *testing.T) {
	_, _, c := start(t, 4, 4, ServerOptions{})
	if err := c.GrowTo(32); err != nil {
		t.Fatal(err)
	}
	if c.NumBlocks() != 32 {
		t.Fatalf("NumBlocks = %d after grow", c.NumBlocks())
	}
	if err := c.WriteBlock(31, blockOf(4, 9)); err != nil {
		t.Fatalf("write to grown region: %v", err)
	}
	// Shrinking is a no-op, not an error.
	if err := c.GrowTo(8); err != nil {
		t.Fatal(err)
	}
	if c.NumBlocks() != 32 {
		t.Fatalf("GrowTo shrank the store to %d", c.NumBlocks())
	}
}

func TestErrors(t *testing.T) {
	_, ts, c := start(t, 8, 4, ServerOptions{})

	dst := make([]extmem.Element, 4)
	if err := c.ReadBlock(99, dst); err == nil || !strings.Contains(err.Error(), "range") {
		t.Fatalf("out-of-range read: %v", err)
	}
	if err := c.ReadBlocks([]int{0}, make([]extmem.Element, 3)); err == nil {
		t.Fatal("bad buffer length accepted")
	}

	// A malformed body is rejected with a 4xx the client does not retry.
	resp, err := http.Post(ts.URL+ioPath, "application/octet-stream", bytes.NewReader([]byte("garbage-request")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed request: status %d", resp.StatusCode)
	}

	// Block-size mismatch at dial time is refused by the caller's check;
	// here the protocol-level mismatch: a write framed for the wrong B.
	body, _ := encodeRequest(opWrite, 1, "", []int{0}, 8) // payload too short for B=4
	resp, err = http.Post(ts.URL+ioPath, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("misframed write: status %d", resp.StatusCode)
	}
}

func TestJournalAndTraceEndpoint(t *testing.T) {
	var journal bytes.Buffer
	srv, ts, c := start(t, 8, 2, ServerOptions{TraceKeep: 16, Journal: &journal})

	if err := c.WriteBlocks([]int{2, 5}, make([]extmem.Element, 4)); err != nil {
		t.Fatal(err)
	}
	if err := c.ReadBlock(2, make([]extmem.Element, 2)); err != nil {
		t.Fatal(err)
	}

	// The journal file holds the per-block sequence in execution order.
	if got, want := journal.String(), "W 2\nW 5\nR 2\n"; got != want {
		t.Fatalf("journal %q, want %q", got, want)
	}
	// The in-memory recorder agrees with an independently built one.
	ref := trace.NewRecorder(16)
	ref.Record(trace.Write, 2)
	ref.Record(trace.Write, 5)
	ref.Record(trace.Read, 2)
	if got, want := srv.TraceSummary(), ref.Summarize(); !got.Equal(want) {
		t.Fatalf("server trace %v, want %v", got, want)
	}

	// The HTTP trace endpoint serves the same fingerprint.
	st, err := c.FetchServerTrace()
	if err != nil {
		t.Fatal(err)
	}
	// Two requests (one write batch, one read) carried the three accesses.
	if st.Len != 3 || st.Hash != ref.Hash() || st.Requests != 2 || st.Replays != 0 {
		t.Fatalf("endpoint trace %+v, want len=3 requests=2 hash=%016x", st, ref.Hash())
	}

	// Reset clears the fingerprint; subsequent ops journal afresh.
	if err := c.ResetServerTrace(); err != nil {
		t.Fatal(err)
	}
	if st, _ := c.FetchServerTrace(); st.Len != 0 {
		t.Fatalf("trace length %d after reset", st.Len)
	}

	// Raw JSON shape: hash is a hex string (uint64s don't survive JSON
	// numbers), so auditors in any language can parse it.
	resp, err := http.Get(ts.URL + tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tj map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&tj); err != nil {
		t.Fatal(err)
	}
	if _, ok := tj["hash"].(string); !ok {
		t.Fatalf("trace hash not a string: %v", tj["hash"])
	}
}

func TestDiskIntegration(t *testing.T) {
	// The client drops under the instrumented Disk unchanged: vectored
	// calls become one request each, and the server's journal equals the
	// Disk's recorded logical trace.
	srv, _, c := start(t, 64, 4, ServerOptions{})
	d := extmem.NewDisk(c)
	rec := trace.NewRecorder(0)
	d.SetRecorder(rec)

	a := d.Alloc(8)
	buf := make([]extmem.Element, 4*4)
	a.WriteRange(0, 4, buf)
	a.ReadRange(2, 6, buf)
	a.ReadMany([]int{7, 0, 3}, buf[:3*4])

	if got, want := srv.TraceSummary(), rec.Summarize(); !got.Equal(want) {
		t.Fatalf("server journal %v != client logical trace %v", got, want)
	}
	st := c.NetStats()
	if st.Requests != 3 { // one request per vectored Disk call
		t.Fatalf("%d requests for 3 vectored calls", st.Requests)
	}
	if ds := d.Stats(); ds.RoundTrips != st.Requests {
		t.Fatalf("Disk round trips %d != wire requests %d", ds.RoundTrips, st.Requests)
	}
	if st.BlocksMoved != 11 || st.Retries != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.Total <= 0 || st.Min <= 0 || st.Max < st.Min {
		t.Fatalf("measured times not populated: %+v", st)
	}
}

func TestReplayedWriteDoesNotClobberNewerData(t *testing.T) {
	// A write duplicate the client abandoned (timeout) can arrive late —
	// possibly after a NEWER write to the same block. The server must
	// acknowledge it from the dedup window without re-applying the stale
	// payload.
	srv, ts, c := start(t, 4, 2, ServerOptions{})
	mkWrite := func(seq uint64, blk []extmem.Element) []byte {
		body, payload := encodeRequest(opWrite, seq, "", []int{0}, 2*extmem.ElementBytes)
		extmem.EncodeElements(payload, blk)
		return body
	}
	post := func(body []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+ioPath, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	old, newer := blockOf(2, 1), blockOf(2, 2)
	stale := mkWrite(100, old)
	post(stale)               // original delivery of the old write
	post(mkWrite(101, newer)) // a newer write to the same block
	post(stale)               // the old write's late duplicate
	got := make([]extmem.Element, 2)
	if err := c.ReadBlock(0, got); err != nil {
		t.Fatal(err)
	}
	if !equalElems(got, newer) {
		t.Fatalf("stale replay rolled back newer data: %+v", got)
	}
	st, err := c.FetchServerTrace()
	if err != nil {
		t.Fatal(err)
	}
	// Journal: the two distinct writes plus our read; the replay was
	// acknowledged but neither journaled nor re-executed.
	if st.Len != 3 || st.Replays != 1 {
		t.Fatalf("trace %+v, want len=3 replays=1", st)
	}
	if got := srv.TraceSummary(); got.Len != 3 {
		t.Fatalf("journal holds %d accesses, want 3", got.Len)
	}
}

func TestTwoClientsJournalIndependently(t *testing.T) {
	// Successive (or concurrent) client processes against one long-lived
	// server must not collide in the replay-suppression window: request ids
	// start at a per-client random nonce, so a second client's traffic is
	// journaled in full rather than suppressed as "replays" of the first's.
	srv, ts, c1 := start(t, 8, 2, ServerOptions{})
	blk := make([]extmem.Element, 2)
	for i := 0; i < 5; i++ {
		if err := c1.WriteBlock(i, blk); err != nil {
			t.Fatal(err)
		}
	}
	c2, err := Dial(ts.URL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i := 0; i < 5; i++ {
		if err := c2.ReadBlock(i, blk); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c2.FetchServerTrace()
	if err != nil {
		t.Fatal(err)
	}
	if st.Len != 10 || st.Replays != 0 {
		t.Fatalf("second client's accesses suppressed: %+v, want len=10 replays=0", st)
	}
	if got := srv.TraceSummary(); got.Len != 10 {
		t.Fatalf("journal holds %d accesses, want 10", got.Len)
	}
}

func TestDialRejectsBadServer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"numBlocks":-1,"blockSize":0}`)
	}))
	defer ts.Close()
	if _, err := Dial(ts.URL, Options{}); err == nil {
		t.Fatal("dial accepted bad geometry")
	}
}

func equalElems(a, b []extmem.Element) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTransportTuning pins the connection-pool contract: NewTransport
// raises the per-host idle pool to the requested fan-out width (never below
// the default), keeps keep-alives enabled, and a default-dialed client
// actually reuses connections — a steady stream of requests to one server
// must not open one connection per request.
func TestTransportTuning(t *testing.T) {
	tr := NewTransport(16)
	if tr.MaxIdleConnsPerHost != 16 {
		t.Fatalf("MaxIdleConnsPerHost = %d, want 16", tr.MaxIdleConnsPerHost)
	}
	if tr.MaxIdleConns < 64 {
		t.Fatalf("MaxIdleConns = %d, want >= 4x per-host", tr.MaxIdleConns)
	}
	if tr.DisableKeepAlives {
		t.Fatal("keep-alives disabled")
	}
	if low := NewTransport(1); low.MaxIdleConnsPerHost < 4 {
		t.Fatalf("per-host pool %d below the default floor", low.MaxIdleConnsPerHost)
	}

	srv := NewServer(extmem.NewMemStore(64, 4), ServerOptions{})
	ts := httptest.NewUnstartedServer(srv.Handler())
	var mu sync.Mutex
	conns := map[string]bool{}
	ts.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			mu.Lock()
			conns[c.RemoteAddr().String()] = true
			mu.Unlock()
		}
	}
	ts.Start()
	defer ts.Close()
	c, err := Dial(ts.URL, Options{MaxIdleConnsPerHost: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]extmem.Element, 4)
	for i := 0; i < 50; i++ {
		if err := c.WriteBlock(i%64, buf); err != nil {
			t.Fatal(err)
		}
		if err := c.ReadBlock(i%64, buf); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	// One warm connection serves the serial drumbeat; allow slack for the
	// dial-time control request, but 100 sequential requests must not cost
	// anywhere near 100 dials.
	if len(conns) > 4 {
		t.Fatalf("%d connections opened for 100 sequential requests — keep-alive reuse is broken", len(conns))
	}
}

// TestBearerAuth pins the token gate: with ServerOptions.AuthToken set,
// every endpoint — data plane, control plane, and the trace/journal
// surface — requires the matching bearer token; the wrong or missing token
// is a permanent 401 (no retries burned), and an authorized client works
// end to end.
func TestBearerAuth(t *testing.T) {
	const b, token = 4, "unit-test-token"
	srv := NewServer(extmem.NewMemStore(16, b), ServerOptions{AuthToken: token})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// No token: dial (control plane) is rejected without retries.
	if _, err := Dial(ts.URL, Options{MaxAttempts: 1}); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("tokenless dial: %v", err)
	}
	// Wrong token: same.
	if _, err := Dial(ts.URL, Options{MaxAttempts: 1, AuthToken: "nope"}); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("wrong-token dial: %v", err)
	}
	// Right token: the full surface works.
	c, err := Dial(ts.URL, Options{AuthToken: token})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	in := blockOf(b, 9)
	if err := c.WriteBlock(3, in); err != nil {
		t.Fatal(err)
	}
	out := make([]extmem.Element, b)
	if err := c.ReadBlock(3, out); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("authorized round trip mismatch at %d", i)
		}
	}
	if err := c.GrowTo(32); err != nil {
		t.Fatalf("authorized grow: %v", err)
	}
	st, err := c.FetchServerTrace()
	if err != nil || st.Len == 0 {
		t.Fatalf("authorized trace fetch: %v, %+v", err, st)
	}
	// An unauthorized caller cannot even read the journal fingerprint.
	resp, err := ts.Client().Get(ts.URL + tracePath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless trace fetch: %v", resp.Status)
	}
}
