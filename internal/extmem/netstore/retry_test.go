package netstore

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"oblivext/internal/extmem"
)

// fakeClock replaces Client.sleep to capture backoff delays instead of
// waiting them out, so the jitter policy is pinned exactly, deterministically,
// and instantly.
type fakeClock struct {
	delays []time.Duration
	onWait func(d time.Duration) error // nil = record and return
}

func (f *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	f.delays = append(f.delays, d)
	if f.onWait != nil {
		return f.onWait(d)
	}
	return ctx.Err()
}

// seqJitter replaces Client.jitter with a scripted sequence of draws.
func seqJitter(vals ...float64) func() float64 {
	i := 0
	return func() float64 {
		v := vals[i%len(vals)]
		i++
		return v
	}
}

// TestBackoffFullJitter pins the retry-delay policy with a fake clock: the
// delay before retry r is jitter·min(Backoff·2^(r-1), 1s) + 1ns — uniform
// over the exponentially-doubling cap, never zero, never lockstep. Three
// scripted jitter draws must surface as exactly three scripted delays.
func TestBackoffFullJitter(t *testing.T) {
	_, c, _ := startFlaky(t, 8, 4, Options{Backoff: 10 * time.Millisecond, MaxAttempts: 4},
		func(call int) faultAction {
			if call < 3 {
				return refuse
			}
			return pass
		})
	clock := &fakeClock{}
	c.sleep = clock.sleep
	c.jitter = seqJitter(0.5, 0.3, 0.99)

	buf := make([]extmem.Element, c.BlockSize())
	if err := c.WriteBlock(0, buf); err != nil {
		t.Fatalf("write after retries: %v", err)
	}
	want := []time.Duration{
		time.Duration(0.5*float64(10*time.Millisecond)) + 1,  // cap 10ms
		time.Duration(0.3*float64(20*time.Millisecond)) + 1,  // cap 20ms
		time.Duration(0.99*float64(40*time.Millisecond)) + 1, // cap 40ms
	}
	if len(clock.delays) != len(want) {
		t.Fatalf("got %d backoff waits %v, want %d", len(clock.delays), clock.delays, len(want))
	}
	for i := range want {
		if clock.delays[i] != want[i] {
			t.Errorf("retry %d waited %v, want %v", i+1, clock.delays[i], want[i])
		}
	}
	// The jittered delays must not collapse into lockstep: every draw
	// produced a distinct wait even though the fault was identical.
	if clock.delays[0] == clock.delays[1] || clock.delays[1] == clock.delays[2] {
		t.Errorf("jitter produced lockstep delays: %v", clock.delays)
	}
}

// TestRetryDelayBounds pins the policy's edges directly: saturation at the
// 1s cap for large attempt counts, strict positivity at jitter 0, and the
// Retry-After hint overriding (and being capped) when present.
func TestRetryDelayBounds(t *testing.T) {
	c := &Client{backoff: 10 * time.Millisecond}
	c.jitter = func() float64 { return 1.0 }
	if d := c.retryDelay(30, 0); d != maxBackoff+1 {
		t.Errorf("attempt 30: %v, want saturation at %v", d, maxBackoff+1)
	}
	c.jitter = func() float64 { return 0 }
	for attempt := 1; attempt <= 5; attempt++ {
		if d := c.retryDelay(attempt, 0); d <= 0 {
			t.Errorf("attempt %d: non-positive delay %v", attempt, d)
		}
	}
	if d := c.retryDelay(1, 3*time.Second); d != 3*time.Second {
		t.Errorf("hint 3s: %v, want the hint verbatim", d)
	}
	if d := c.retryDelay(1, time.Minute); d != maxRetryAfter {
		t.Errorf("hint 1m: %v, want cap %v", d, maxRetryAfter)
	}
}

// TestDrainRetryAfter drives the two-phase graceful-restart contract: while
// the server drains, data-plane requests bounce with 503 plus Retry-After,
// and the client waits the server's hint (not its own jittered guess) before
// replaying; once the drain ends the replay lands, the result is correct,
// and the journal holds the access exactly once. The restart was absorbed by
// the retry path — no failover, no error surfaced to the caller.
func TestDrainRetryAfter(t *testing.T) {
	srv, c, _ := startFlaky(t, 8, 4, Options{MaxAttempts: 4}, func(int) faultAction { return pass })
	const drainFor = 1200 * time.Millisecond
	srv.BeginDrain(drainFor)
	if !srv.Draining() {
		t.Fatal("server should report draining")
	}
	clock := &fakeClock{onWait: func(time.Duration) error {
		srv.EndDrain() // the "restart" completes while the client waits
		return nil
	}}
	c.sleep = clock.sleep
	c.jitter = seqJitter(0.5)

	src := make([]extmem.Element, c.BlockSize())
	src[0] = extmem.Element{Key: 7, Flags: extmem.FlagOccupied}
	if err := c.WriteBlock(3, src); err != nil {
		t.Fatalf("write through drain: %v", err)
	}
	if len(clock.delays) != 1 || clock.delays[0] != drainFor {
		t.Fatalf("client waited %v, want exactly the server's Retry-After hint [%v]", clock.delays, drainFor)
	}
	if st := c.NetStats(); st.Retries != 1 {
		t.Errorf("Retries = %d, want 1", st.Retries)
	}
	sum := srv.TraceSummary()
	if sum.Len != 1 {
		t.Errorf("journal holds %d accesses, want 1 (the refused attempt must not be journaled)", sum.Len)
	}
	dst := make([]extmem.Element, c.BlockSize())
	if err := c.ReadBlock(3, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0].Key != 7 {
		t.Errorf("read back key %d, want 7", dst[0].Key)
	}
}

// TestReadyzTwoPhases distinguishes readiness from liveness across a drain:
// /healthz stays 200 throughout (the process is up), while /readyz flips to
// 503 with both Retry-After headers during the drain and recovers after.
func TestReadyzTwoPhases(t *testing.T) {
	srv, c, _ := startFlaky(t, 8, 4, Options{}, func(int) faultAction { return pass })
	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(c.base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	if resp := get(readyzPath); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before drain: %s, want 200", resp.Status)
	}
	srv.BeginDrain(2 * time.Second)
	if resp := get(healthzPath); resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz during drain: %s, want 200 (liveness is not readiness)", resp.Status)
	}
	resp := get(readyzPath)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain: %s, want 503", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	if ms := resp.Header.Get(retryAfterMSHeader); ms != "2000" {
		t.Errorf("%s = %q, want \"2000\"", retryAfterMSHeader, ms)
	}
	srv.EndDrain()
	if resp := get(readyzPath); resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz after drain: %s, want 200", resp.Status)
	}
}

// failingWriter fails every journal write after the first n.
type failingWriter struct {
	okLeft int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.okLeft > 0 {
		w.okLeft--
		return len(p), nil
	}
	return 0, io.ErrClosedPipe
}

// TestReadyzJournalFailureLatches pins that a journal write failure makes
// the server permanently not-ready: it can still serve liveness, but an
// unauditable server must stop reporting ready even though its store works.
func TestReadyzJournalFailureLatches(t *testing.T) {
	srv := NewServer(extmem.NewMemStore(8, 4), ServerOptions{Journal: &failingWriter{okLeft: 1}})
	h := srv.Handler()
	do := func(path string) int {
		req, _ := http.NewRequest(http.MethodGet, path, nil)
		rec := newRecorder()
		h.ServeHTTP(rec, req)
		return rec.code
	}
	if code := do(readyzPath); code != http.StatusOK {
		t.Fatalf("/readyz fresh: %d, want 200", code)
	}
	// First write journals fine, second one's journal write fails.
	buf := make([]extmem.Element, 4)
	if err := writeVia(h, 0, buf); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := writeVia(h, 1, buf); err == nil {
		t.Fatal("second write should fail: its journal write failed")
	}
	if code := do(readyzPath); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz after journal failure: %d, want 503 (latched)", code)
	}
	if code := do(healthzPath); code != http.StatusOK {
		t.Errorf("/healthz after journal failure: %d, want 200", code)
	}
}

// writeVia performs one write batch directly against a handler.
func writeVia(h http.Handler, addr int, src []extmem.Element) error {
	body, payload := encodeRequest(opWrite, uint64(1000+addr), "", []int{addr}, len(src)*extmem.ElementBytes)
	extmem.EncodeElements(payload, src)
	req, _ := http.NewRequest(http.MethodPost, ioPath, strings.NewReader(string(body)))
	rec := newRecorder()
	h.ServeHTTP(rec, req)
	if rec.code != http.StatusOK {
		return io.ErrUnexpectedEOF
	}
	return nil
}

// recorder is a minimal ResponseWriter for driving handlers in-process.
type recorder struct {
	code   int
	header http.Header
}

func newRecorder() *recorder                    { return &recorder{code: http.StatusOK, header: make(http.Header)} }
func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(code int)        { r.code = code }
func (r *recorder) Write(p []byte) (int, error) { return len(p), nil }

// TestCtxCancelStopsRetrying pins the context propagation path: a canceled
// context abandons the retry loop mid-backoff instead of burning the full
// attempt budget against a target that no longer matters (the sharded
// fan-out cancels doomed siblings through exactly this).
func TestCtxCancelStopsRetrying(t *testing.T) {
	_, c, rt := startFlaky(t, 8, 4, Options{MaxAttempts: 10}, func(int) faultAction { return refuse })
	ctx, cancel := context.WithCancel(context.Background())
	clock := &fakeClock{onWait: func(time.Duration) error {
		cancel() // the sibling failed while we were backing off
		return ctx.Err()
	}}
	c.sleep = clock.sleep
	c.jitter = seqJitter(0.5)

	buf := make([]extmem.Element, c.BlockSize())
	err := c.ReadBlocksCtx(ctx, []int{0}, buf)
	if err == nil {
		t.Fatal("read should fail once its context is canceled")
	}
	if !strings.Contains(err.Error(), "canceled") {
		t.Errorf("error %q should name the cancellation", err)
	}
	if n := rt.callCount(); n != 1 {
		t.Errorf("made %d attempts, want 1 — cancellation must stop the retry loop", n)
	}
}
