package netstore

import (
	"bytes"
	"testing"

	"oblivext/internal/extmem"
)

// FuzzFrameDecode throws arbitrary bytes at the wire-frame parser — the one
// piece of the server that runs on fully attacker-controlled input before
// any validation — and checks the properties the service mode leans on:
//
//   - decodeRequest never panics, never allocates past the frame's own
//     claims, and only ever returns namespaces ValidNamespace accepts;
//   - every frame encodeRequest can produce round-trips through
//     decodeRequest bit-exactly (op, seq, namespace, addresses, payload) —
//     the replay-dedup key (namespace, seq) in particular survives the trip,
//     since a key that mutated in flight would suppress the wrong tenant's
//     journal entries.
func FuzzFrameDecode(f *testing.F) {
	const blockBytes = 4 * extmem.ElementBytes
	// Seeds: a valid OBS1 read, a valid OBS2 write, and a few deliberate
	// near-misses (truncations, bad magic, oversize namespace length).
	seed1, _ := encodeRequest(opRead, 7, "", []int{0, 3}, 0)
	seed2, p := encodeRequest(opWrite, 1<<40, "tenant-9", []int{5}, blockBytes)
	for i := range p {
		p[i] = byte(i)
	}
	seed3, _ := encodeRequest(opRead, 2, "a", []int{}, 0)
	f.Add(seed1)
	f.Add(seed2)
	f.Add(seed3)
	f.Add(seed2[:len(seed2)-3]) // truncated payload
	f.Add([]byte("OBS3garbagegarbage"))
	f.Add(append([]byte("OBS2\x01"), bytes.Repeat([]byte{0xff}, 30)...)) // nsLen 255
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, body []byte) {
		op, seq, ns, addrs, payload, err := decodeRequest(body, blockBytes)
		if err != nil {
			return
		}
		// Accepted frames obey the protocol's own invariants.
		if op != opRead && op != opWrite {
			t.Fatalf("accepted unknown op %d", op)
		}
		if !ValidNamespace(ns) {
			t.Fatalf("accepted invalid namespace %q", ns)
		}
		if op == opWrite && len(payload) != len(addrs)*blockBytes {
			t.Fatalf("write payload %d bytes for %d blocks", len(payload), len(addrs))
		}
		for _, a := range addrs {
			if a < 0 {
				t.Fatalf("negative address %d", a)
			}
		}
		// Re-encoding an accepted frame reproduces it bit-exactly, so the
		// (namespace, seq) replay key and the address list cannot drift
		// between what a client sent and what the journal records.
		payloadLen := 0
		if op == opWrite {
			payloadLen = len(payload)
		}
		re, rp := encodeRequest(op, seq, ns, addrs, payloadLen)
		copy(rp, payload)
		if !bytes.Equal(re, body) {
			t.Fatalf("round trip diverged:\n in  %x\n out %x", body, re)
		}
	})
}
