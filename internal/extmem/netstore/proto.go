// Package netstore is a real remote Bob: an HTTP BlockStore client and the
// matching storage server, speaking a batched binary protocol in which one
// ReadBlocks/WriteBlocks call is exactly one request — so the round-trip
// accounting the Disk layer keeps (one RoundTrip per vectored store call)
// stays honest when the store is an actual process across a network.
//
// The server side independently journals the per-block access sequence it
// observes, which is precisely the adversary's view in the paper's model
// (§1): Bob sees the sequence and location of every block Alice touches but
// none of the contents. The end-to-end obliviousness tests compare this
// server-side journal — not the client's own bookkeeping — across inputs.
//
// Faults: requests are idempotent (reads are pure; writes are whole-block
// last-writer-wins), so the client replays a request whose response was lost
// or late. Every retry carries the same request id, and the server suppresses
// journal entries for replays of requests it already executed, keeping the
// journaled logical trace identical whether or not the network misbehaved.
package netstore

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Endpoint paths. The data plane is a single endpoint taking the binary
// request below; the control plane (geometry, growth, trace auditing) is
// small JSON.
const (
	ioPath         = "/v1/io"
	infoPath       = "/v1/info"
	growPath       = "/v1/grow"
	tracePath      = "/v1/trace"
	traceResetPath = "/v1/trace/reset"
	metricsPath    = "/metrics"
	healthzPath    = "/healthz"
	readyzPath     = "/readyz"
)

// replayHeader is set to "1" on a data-plane response the server answered
// from its replay-suppression window instead of executing, so the client
// can count observed replay hits (Stats.ReplayHits).
const replayHeader = "X-Obstore-Replay"

// retryAfterMSHeader accompanies the standard Retry-After header on a 503
// (graceful drain) with millisecond precision: Retry-After is integer
// seconds, far coarser than a drain that lasts a few hundred milliseconds.
// Clients prefer this header when present and fall back to Retry-After.
const retryAfterMSHeader = "X-Obstore-Retry-After-Ms"

// Wire format of one ioPath request body (integers little-endian):
//
//	magic   4 bytes  "OBS1"
//	op      1 byte   1 = read batch, 2 = write batch
//	seq     8 bytes  client-assigned request id, shared by every retry
//	count   4 bytes  blocks in the batch
//	addrs   count × 8 bytes
//	payload count × B × ElementBytes   (write batches only)
//
// A read response body is the payload alone (count × B × ElementBytes); a
// write response body is empty. Errors are non-200 statuses with a plain-text
// message; 5xx are transient (the client retries), 4xx are permanent.
const (
	magic             = "OBS1"
	opRead       byte = 1
	opWrite      byte = 2
	headerLen         = 4 + 1 + 8 + 4
	maxBatchWire      = 1 << 28 // 256 MiB cap on a request body
)

// encodeRequest builds an ioPath request body with room for payloadLen
// payload bytes, returning the body and the payload sub-slice for the
// caller to fill in place (write batches encode their elements directly
// into it — no intermediate copy).
func encodeRequest(op byte, seq uint64, addrs []int, payloadLen int) (body, payload []byte) {
	body = make([]byte, headerLen+8*len(addrs)+payloadLen)
	copy(body, magic)
	body[4] = op
	binary.LittleEndian.PutUint64(body[5:], seq)
	binary.LittleEndian.PutUint32(body[13:], uint32(len(addrs)))
	for i, a := range addrs {
		binary.LittleEndian.PutUint64(body[headerLen+8*i:], uint64(a))
	}
	return body, body[headerLen+8*len(addrs):]
}

// decodeRequest parses an ioPath request body into its op, request id,
// address list, and (for writes) payload, validating the framing against
// blockBytes, the payload size of one block.
func decodeRequest(body []byte, blockBytes int) (op byte, seq uint64, addrs []int, payload []byte, err error) {
	if len(body) < headerLen {
		return 0, 0, nil, nil, fmt.Errorf("netstore: request truncated at %d bytes", len(body))
	}
	if string(body[:4]) != magic {
		return 0, 0, nil, nil, fmt.Errorf("netstore: bad magic %q", body[:4])
	}
	op = body[4]
	seq = binary.LittleEndian.Uint64(body[5:])
	// Bound count before any arithmetic or allocation: a crafted header
	// must not be able to wrap the length check (32-bit int overflow) or
	// force a giant make([]int, count) for a body that cannot possibly
	// carry that many addresses.
	rawCount := binary.LittleEndian.Uint32(body[13:])
	if rawCount > uint32((maxBatchWire-headerLen)/8) {
		return 0, 0, nil, nil, fmt.Errorf("netstore: batch of %d blocks exceeds the wire cap", rawCount)
	}
	count := int(rawCount)
	want := int64(headerLen) + 8*int64(count)
	switch op {
	case opRead:
	case opWrite:
		want += int64(count) * int64(blockBytes)
	default:
		return 0, 0, nil, nil, fmt.Errorf("netstore: unknown op %d", op)
	}
	if int64(len(body)) != want {
		return 0, 0, nil, nil, fmt.Errorf("netstore: op %d with %d blocks wants %d bytes, got %d", op, count, want, len(body))
	}
	addrs = make([]int, count)
	for i := range addrs {
		a := binary.LittleEndian.Uint64(body[headerLen+8*i:])
		// Bound by the platform int so the conversion below cannot truncate
		// (on 32-bit builds a huge address must be rejected, not wrapped
		// into some other, in-range block).
		if a > uint64(math.MaxInt) {
			return 0, 0, nil, nil, fmt.Errorf("netstore: block address %d out of range", a)
		}
		addrs[i] = int(a)
	}
	if op == opWrite {
		payload = body[headerLen+8*count:]
	}
	return op, seq, addrs, payload, nil
}

// infoJSON is the infoPath (and grow response) body: the store geometry.
type infoJSON struct {
	NumBlocks int `json:"numBlocks"`
	BlockSize int `json:"blockSize"`
}

// growJSON is the growPath request body.
type growJSON struct {
	NumBlocks int `json:"numBlocks"`
}

// traceJSON is the tracePath body: the server-side journal fingerprint. Hash
// is hex-encoded (a uint64 does not survive JSON numbers). Requests counts
// data-plane requests served successfully (rejected or failed ones don't
// count); Replays is the subset that were retransmissions — acknowledged
// from the dedup window (writes) or re-read (reads), and suppressed from
// the journal either way.
type traceJSON struct {
	Len      int64  `json:"len"`
	Hash     string `json:"hash"`
	Requests int64  `json:"requests"`
	Replays  int64  `json:"replays"`
}
