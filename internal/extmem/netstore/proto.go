// Package netstore is a real remote Bob: an HTTP BlockStore client and the
// matching storage server, speaking a batched binary protocol in which one
// ReadBlocks/WriteBlocks call is exactly one request — so the round-trip
// accounting the Disk layer keeps (one RoundTrip per vectored store call)
// stays honest when the store is an actual process across a network.
//
// The server side independently journals the per-block access sequence it
// observes, which is precisely the adversary's view in the paper's model
// (§1): Bob sees the sequence and location of every block Alice touches but
// none of the contents. The end-to-end obliviousness tests compare this
// server-side journal — not the client's own bookkeeping — across inputs.
//
// Faults: requests are idempotent (reads are pure; writes are whole-block
// last-writer-wins), so the client replays a request whose response was lost
// or late. Every retry carries the same request id, and the server suppresses
// journal entries for replays of requests it already executed, keeping the
// journaled logical trace identical whether or not the network misbehaved.
package netstore

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Endpoint paths. The data plane is a single endpoint taking the binary
// request below; the control plane (geometry, growth, trace auditing) is
// small JSON.
const (
	ioPath         = "/v1/io"
	infoPath       = "/v1/info"
	growPath       = "/v1/grow"
	tracePath      = "/v1/trace"
	traceResetPath = "/v1/trace/reset"
	namespacesPath = "/v1/namespaces"
	metricsPath    = "/metrics"
	healthzPath    = "/healthz"
	readyzPath     = "/readyz"
)

// nsParam is the query parameter naming the tenant on the control-plane
// endpoints (info, grow, trace, trace reset); absent or empty selects the
// default tenant, matching the OBS1 data-plane framing.
const nsParam = "ns"

// replayHeader is set to "1" on a data-plane response the server answered
// from its replay-suppression window instead of executing, so the client
// can count observed replay hits (Stats.ReplayHits).
const replayHeader = "X-Obstore-Replay"

// retryAfterMSHeader accompanies the standard Retry-After header on a 503
// (graceful drain) with millisecond precision: Retry-After is integer
// seconds, far coarser than a drain that lasts a few hundred milliseconds.
// Clients prefer this header when present and fall back to Retry-After.
const retryAfterMSHeader = "X-Obstore-Retry-After-Ms"

// Wire format of one ioPath request body (integers little-endian). Two
// framings share the endpoint, distinguished by magic:
//
// Legacy single-tenant framing (namespace = "", the default):
//
//	magic   4 bytes  "OBS1"
//	op      1 byte   1 = read batch, 2 = write batch
//	seq     8 bytes  client-assigned request id, shared by every retry
//	count   4 bytes  blocks in the batch
//	addrs   count × 8 bytes
//	payload count × B × ElementBytes   (write batches only)
//
// Namespaced service-mode framing:
//
//	magic   4 bytes  "OBS2"
//	op      1 byte
//	seq     8 bytes
//	nsLen   1 byte   namespace length, 1..MaxNamespaceLen
//	ns      nsLen bytes of [a-zA-Z0-9._-]
//	count   4 bytes
//	addrs   count × 8 bytes
//	payload count × B × ElementBytes   (write batches only)
//
// The namespace names the tenant the batch operates on: each namespace is
// its own block address space with its own journal and its own
// replay-suppression window, so the replay key is (namespace, seq) — request
// ids from different sessions can never suppress each other's journal
// entries. A client with an empty namespace always emits OBS1, so
// single-tenant deployments and old servers are unaffected.
//
// A read response body is the payload alone (count × B × ElementBytes); a
// write response body is empty. Errors are non-200 statuses with a plain-text
// message; 5xx are transient (the client retries), 4xx are permanent.
const (
	magic             = "OBS1"
	magicNS           = "OBS2"
	opRead       byte = 1
	opWrite      byte = 2
	headerLen         = 4 + 1 + 8 + 4
	maxBatchWire      = 1 << 28 // 256 MiB cap on a request body
)

// MaxNamespaceLen bounds the length of a namespace name on the wire (the
// OBS2 framing carries it in one byte, and journal-file names derive from
// it).
const MaxNamespaceLen = 64

// ValidNamespace reports whether ns is a legal namespace name: empty (the
// default tenant) or 1..MaxNamespaceLen characters drawn from
// [a-zA-Z0-9._-]. The alphabet is restricted so a namespace can appear
// verbatim in journal file names, URLs, and metrics labels without escaping.
func ValidNamespace(ns string) bool {
	if len(ns) > MaxNamespaceLen {
		return false
	}
	for i := 0; i < len(ns); i++ {
		c := ns[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// encodeRequest builds an ioPath request body with room for payloadLen
// payload bytes, returning the body and the payload sub-slice for the
// caller to fill in place (write batches encode their elements directly
// into it — no intermediate copy). An empty namespace emits the legacy OBS1
// framing; a non-empty one emits OBS2 with the namespace inline.
func encodeRequest(op byte, seq uint64, ns string, addrs []int, payloadLen int) (body, payload []byte) {
	hdr := headerLen
	if ns != "" {
		hdr = headerLen + 1 + len(ns)
	}
	body = make([]byte, hdr+8*len(addrs)+payloadLen)
	off := 13
	if ns == "" {
		copy(body, magic)
	} else {
		copy(body, magicNS)
		body[13] = byte(len(ns))
		copy(body[14:], ns)
		off = 14 + len(ns)
	}
	body[4] = op
	binary.LittleEndian.PutUint64(body[5:], seq)
	binary.LittleEndian.PutUint32(body[off:], uint32(len(addrs)))
	for i, a := range addrs {
		binary.LittleEndian.PutUint64(body[hdr+8*i:], uint64(a))
	}
	return body, body[hdr+8*len(addrs):]
}

// decodeRequest parses an ioPath request body into its op, request id,
// namespace, address list, and (for writes) payload, validating the framing
// against blockBytes, the payload size of one block. OBS1 frames decode with
// namespace ""; OBS2 frames carry an explicit, validated namespace.
func decodeRequest(body []byte, blockBytes int) (op byte, seq uint64, ns string, addrs []int, payload []byte, err error) {
	if len(body) < headerLen {
		return 0, 0, "", nil, nil, fmt.Errorf("netstore: request truncated at %d bytes", len(body))
	}
	hdr := headerLen
	countOff := 13
	switch string(body[:4]) {
	case magic:
	case magicNS:
		// The namespace length byte is inside the minimum header, but the
		// name itself extends it; re-check the bound before reading the name.
		nsLen := int(body[13])
		if nsLen == 0 || nsLen > MaxNamespaceLen {
			return 0, 0, "", nil, nil, fmt.Errorf("netstore: namespace length %d out of range [1,%d]", nsLen, MaxNamespaceLen)
		}
		if len(body) < headerLen+1+nsLen {
			return 0, 0, "", nil, nil, fmt.Errorf("netstore: request truncated at %d bytes (namespace of %d)", len(body), nsLen)
		}
		ns = string(body[14 : 14+nsLen])
		if !ValidNamespace(ns) {
			return 0, 0, "", nil, nil, fmt.Errorf("netstore: invalid namespace %q", ns)
		}
		hdr = headerLen + 1 + nsLen
		countOff = 14 + nsLen
	default:
		return 0, 0, "", nil, nil, fmt.Errorf("netstore: bad magic %q", body[:4])
	}
	op = body[4]
	seq = binary.LittleEndian.Uint64(body[5:])
	// Bound count before any arithmetic or allocation: a crafted header
	// must not be able to wrap the length check (32-bit int overflow) or
	// force a giant make([]int, count) for a body that cannot possibly
	// carry that many addresses.
	rawCount := binary.LittleEndian.Uint32(body[countOff:])
	if rawCount > uint32((maxBatchWire-headerLen)/8) {
		return 0, 0, "", nil, nil, fmt.Errorf("netstore: batch of %d blocks exceeds the wire cap", rawCount)
	}
	count := int(rawCount)
	want := int64(hdr) + 8*int64(count)
	switch op {
	case opRead:
	case opWrite:
		want += int64(count) * int64(blockBytes)
	default:
		return 0, 0, "", nil, nil, fmt.Errorf("netstore: unknown op %d", op)
	}
	if int64(len(body)) != want {
		return 0, 0, "", nil, nil, fmt.Errorf("netstore: op %d with %d blocks wants %d bytes, got %d", op, count, want, len(body))
	}
	addrs = make([]int, count)
	for i := range addrs {
		a := binary.LittleEndian.Uint64(body[hdr+8*i:])
		// Bound by the platform int so the conversion below cannot truncate
		// (on 32-bit builds a huge address must be rejected, not wrapped
		// into some other, in-range block).
		if a > uint64(math.MaxInt) {
			return 0, 0, "", nil, nil, fmt.Errorf("netstore: block address %d out of range", a)
		}
		addrs[i] = int(a)
	}
	if op == opWrite {
		payload = body[hdr+8*count:]
	}
	return op, seq, ns, addrs, payload, nil
}

// infoJSON is the infoPath (and grow response) body: the store geometry.
type infoJSON struct {
	NumBlocks int `json:"numBlocks"`
	BlockSize int `json:"blockSize"`
}

// growJSON is the growPath request body.
type growJSON struct {
	NumBlocks int `json:"numBlocks"`
}

// traceJSON is the tracePath body: the server-side journal fingerprint. Hash
// is hex-encoded (a uint64 does not survive JSON numbers). Requests counts
// data-plane requests served successfully (rejected or failed ones don't
// count); Replays is the subset that were retransmissions — acknowledged
// from the dedup window (writes) or re-read (reads), and suppressed from
// the journal either way.
type traceJSON struct {
	Len      int64  `json:"len"`
	Hash     string `json:"hash"`
	Requests int64  `json:"requests"`
	Replays  int64  `json:"replays"`
}

// namespaceInfoJSON is one tenant's row in the namespacesPath body.
type namespaceInfoJSON struct {
	Name       string `json:"name"`
	NumBlocks  int    `json:"numBlocks"`
	JournalLen int64  `json:"journalLen"`
	Requests   int64  `json:"requests"`
}

// namespacesJSON is the namespacesPath body: every tenant the server
// currently holds, default tenant included (as name "").
type namespacesJSON struct {
	Namespaces []namespaceInfoJSON `json:"namespaces"`
}
