package netstore

import (
	"fmt"
	"io"
	"time"
)

// Latency histogram bucket geometry, shared by the client's per-shard
// measurements and the server's /metrics export so the two views are
// directly comparable. Buckets are exponential: bound i covers latencies
// up to 50µs·2^i, from 50µs through ~3.3s, with one overflow bucket above
// the last bound. Fixed buckets keep Observe allocation-free and make the
// histogram a value type (copying Stats copies the histogram).
const (
	latencyBuckets = 18 // 17 bounded + overflow
	latencyBase    = 50 * time.Microsecond
)

// LatencyHistogram is a fixed-bucket latency histogram. The zero value is
// ready to use. It is a plain value: callers needing concurrency safety
// (the Client, the Server) guard it with their own mutex.
type LatencyHistogram struct {
	Counts [latencyBuckets]int64
	Sum    time.Duration
}

// LatencyBucketBound returns the inclusive upper bound of bucket i; the
// last bucket (i == latencyBuckets-1) is unbounded and returns a negative
// duration as its sentinel.
func LatencyBucketBound(i int) time.Duration {
	if i >= latencyBuckets-1 {
		return -1
	}
	return latencyBase << i
}

// Observe folds one measured latency into the histogram.
func (h *LatencyHistogram) Observe(d time.Duration) {
	h.Sum += d
	for i := 0; i < latencyBuckets-1; i++ {
		if d <= latencyBase<<i {
			h.Counts[i]++
			return
		}
	}
	h.Counts[latencyBuckets-1]++
}

// Count returns the number of observations.
func (h *LatencyHistogram) Count() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observed latencies: the bound of the first bucket whose cumulative count
// reaches q of the total. An empty histogram returns 0; a quantile landing
// in the overflow bucket returns the last finite bound (the histogram
// cannot say more than "above everything it can resolve").
func (h *LatencyHistogram) Quantile(q float64) time.Duration {
	total := h.Count()
	if total == 0 {
		return 0
	}
	need := int64(q*float64(total) + 0.999999)
	if need < 1 {
		need = 1
	}
	var cum int64
	for i := 0; i < latencyBuckets; i++ {
		cum += h.Counts[i]
		if cum >= need {
			if i >= latencyBuckets-1 {
				return latencyBase << (latencyBuckets - 2)
			}
			return latencyBase << i
		}
	}
	return latencyBase << (latencyBuckets - 2)
}

// P50 returns the median latency upper bound.
func (h *LatencyHistogram) P50() time.Duration { return h.Quantile(0.50) }

// P95 returns the 95th-percentile latency upper bound.
func (h *LatencyHistogram) P95() time.Duration { return h.Quantile(0.95) }

// P99 returns the 99th-percentile latency upper bound.
func (h *LatencyHistogram) P99() time.Duration { return h.Quantile(0.99) }

// Merge adds another histogram's observations into this one.
func (h *LatencyHistogram) Merge(o LatencyHistogram) {
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.Sum += o.Sum
}

// WritePrometheus emits the histogram in Prometheus text exposition format
// under the given metric name (cumulative buckets with "le" labels in
// seconds, plus _sum and _count).
func (h *LatencyHistogram) WritePrometheus(w io.Writer, name string) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum int64
	for i := 0; i < latencyBuckets-1; i++ {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, (latencyBase << i).Seconds(), cum)
	}
	cum += h.Counts[latencyBuckets-1]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum.Seconds())
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}
