package netstore

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"oblivext/internal/extmem"
)

// faultAction is what the flaky transport does to one HTTP attempt.
type faultAction int

const (
	pass faultAction = iota
	// refuse fails the attempt without contacting the server (a connection
	// that never got through).
	refuse
	// dropResponse lets the server execute the request, then loses the
	// response on the way back — the nasty case, where a replay reaches a
	// server that already did the work.
	dropResponse
	// serve500 synthesizes a 500 without contacting the server.
	serve500
	// stall sleeps past the client's per-attempt deadline.
	stall
)

// flakyRT injects faults into the data plane. plan decides per attempt;
// control-plane requests (info/grow/trace) pass through untouched so tests
// can always audit the server.
type flakyRT struct {
	inner http.RoundTripper
	mu    sync.Mutex
	calls int
	plan  func(call int) faultAction
}

func (f *flakyRT) RoundTrip(req *http.Request) (*http.Response, error) {
	if !strings.HasSuffix(req.URL.Path, ioPath) {
		return f.inner.RoundTrip(req)
	}
	f.mu.Lock()
	call := f.calls
	f.calls++
	action := f.plan(call)
	f.mu.Unlock()
	switch action {
	case refuse:
		return nil, errors.New("flaky: connection refused")
	case dropResponse:
		resp, err := f.inner.RoundTrip(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return nil, errors.New("flaky: response lost in transit")
	case serve500:
		return &http.Response{
			StatusCode: http.StatusInternalServerError,
			Status:     "500 Internal Server Error",
			Body:       io.NopCloser(strings.NewReader("flaky: injected server error")),
			Header:     make(http.Header),
			Request:    req,
		}, nil
	case stall:
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(10 * time.Second):
			return nil, errors.New("flaky: stall outlived the test")
		}
	default:
		return f.inner.RoundTrip(req)
	}
}

func (f *flakyRT) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// startFlaky spins up a server and dials it through the fault-injecting
// transport.
func startFlaky(t *testing.T, blocks, b int, opts Options, plan func(call int) faultAction) (*Server, *Client, *flakyRT) {
	t.Helper()
	srv := NewServer(extmem.NewMemStore(blocks, b), ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	rt := &flakyRT{inner: http.DefaultTransport, plan: plan}
	opts.Transport = rt
	c, err := Dial(ts.URL, opts)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c, rt
}

// runWorkload performs a fixed mixed batch sequence and returns the data
// read back, so faulty and clean runs can be compared op for op.
func runWorkload(t *testing.T, c *Client) []extmem.Element {
	t.Helper()
	b := c.BlockSize()
	src := make([]extmem.Element, 3*b)
	for i := range src {
		src[i] = extmem.Element{Key: uint64(i), Val: uint64(i * i), Flags: extmem.FlagOccupied}
	}
	if err := c.WriteBlocks([]int{0, 2, 5}, src); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteBlock(1, src[:b]); err != nil {
		t.Fatal(err)
	}
	dst := make([]extmem.Element, 4*b)
	if err := c.ReadBlocks([]int{5, 1, 0, 2}, dst); err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestFaultRetriesReturnCorrectData drives every failure mode the transport
// can produce — refused connections, lost responses, injected 500s, stalls
// past the deadline — failing the first attempt of every request, and checks
// the replays return exactly what a clean run returns.
func TestFaultRetriesReturnCorrectData(t *testing.T) {
	modes := []struct {
		name   string
		action faultAction
		opts   Options
	}{
		{"refuse", refuse, Options{Backoff: time.Millisecond}},
		{"drop-response", dropResponse, Options{Backoff: time.Millisecond}},
		{"server-500", serve500, Options{Backoff: time.Millisecond}},
		{"stall-timeout", stall, Options{Backoff: time.Millisecond, Timeout: 50 * time.Millisecond}},
	}
	_, clean, _ := startFlaky(t, 8, 4, Options{}, func(int) faultAction { return pass })
	want := runWorkload(t, clean)

	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			attempt := 0
			_, c, _ := startFlaky(t, 8, 4, m.opts, func(call int) faultAction {
				attempt++
				if attempt%2 == 1 { // first attempt of each logical request fails
					return m.action
				}
				return pass
			})
			got := runWorkload(t, c)
			if !equalElems(got, want) {
				t.Fatalf("data corrupted under %s faults", m.name)
			}
			st := c.NetStats()
			if st.Retries == 0 {
				t.Fatal("no retries recorded despite injected faults")
			}
			if st.Requests != 3 { // logical interactions unchanged by retries
				t.Fatalf("%d logical requests, want 3", st.Requests)
			}
		})
	}
}

// TestFaultTraceUnchanged is the obliviousness angle of fault tolerance: the
// server-side journal after a faulty run — including responses lost *after*
// the server executed the request — is bit-identical to a clean run's.
// Replays carry the request id of the original, so the journal suppresses
// them instead of recording phantom accesses.
func TestFaultTraceUnchanged(t *testing.T) {
	cleanSrv, clean, _ := startFlaky(t, 8, 4, Options{}, func(int) faultAction { return pass })
	runWorkload(t, clean)
	want := cleanSrv.TraceSummary()

	// Drop the response of every first attempt: the server executes each
	// request twice, but must journal it once.
	attempt := 0
	faultySrv, faulty, _ := startFlaky(t, 8, 4, Options{Backoff: time.Millisecond}, func(int) faultAction {
		attempt++
		if attempt%2 == 1 {
			return dropResponse
		}
		return pass
	})
	runWorkload(t, faulty)
	got := faultySrv.TraceSummary()
	if !got.Equal(want) {
		t.Fatalf("journal changed under replay: %v, want %v", got, want)
	}
	st, err := faulty.FetchServerTrace()
	if err != nil {
		t.Fatal(err)
	}
	if st.Replays != 3 { // all three data requests were executed twice
		t.Fatalf("server saw %d replays, want 3", st.Replays)
	}
	if st.Requests != 6 {
		t.Fatalf("server executed %d requests, want 6", st.Requests)
	}
}

// TestFaultRetryBudget pins the budget: MaxAttempts attempts on the wire,
// then a hard error naming the cause.
func TestFaultRetryBudget(t *testing.T) {
	_, c, rt := startFlaky(t, 8, 4, Options{MaxAttempts: 3, Backoff: time.Millisecond},
		func(int) faultAction { return serve500 })
	err := c.ReadBlock(0, make([]extmem.Element, 4))
	if err == nil {
		t.Fatal("exhausted retries did not error")
	}
	if !strings.Contains(err.Error(), "after 3 attempts") || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("error does not name budget and cause: %v", err)
	}
	if rt.callCount() != 3 {
		t.Fatalf("%d attempts on the wire, budget was 3", rt.callCount())
	}
	st := c.NetStats()
	if st.Requests != 0 {
		t.Fatalf("failed interaction counted as completed: %+v", st)
	}
	if st.Attempts != 3 || st.Retries != 2 {
		t.Fatalf("attempt accounting %+v, want Attempts=3 Retries=2", st)
	}
}

// TestFaultPermanentErrorNoRetry: 4xx means the request itself is wrong;
// replaying it would waste the budget on a lost cause.
func TestFaultPermanentErrorNoRetry(t *testing.T) {
	_, c, rt := startFlaky(t, 8, 4, Options{Backoff: time.Millisecond},
		func(int) faultAction { return pass })
	if err := c.ReadBlock(999, make([]extmem.Element, 4)); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	if rt.callCount() != 1 {
		t.Fatalf("permanent error retried: %d attempts", rt.callCount())
	}
}
