package netstore

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"oblivext/internal/extmem"
)

// startNS spins up a multi-tenant in-process obstore: the default tenant on
// a MemStore, further namespaces from a MemStore factory, and one journal
// buffer per namespace (returned map, keyed by name; the default tenant's
// is under "").
func startNS(t *testing.T, blocks, b int) (*Server, *httptest.Server, map[string]*bytes.Buffer) {
	t.Helper()
	journals := map[string]*bytes.Buffer{"": {}}
	var mu sync.Mutex
	srv := NewServer(extmem.NewMemStore(blocks, b), ServerOptions{
		TraceKeep: 64,
		Journal:   journals[""],
		StoreFactory: func(ns string) (extmem.BlockStore, error) {
			return extmem.NewMemStore(blocks, b), nil
		},
		JournalFactory: func(ns string) (io.Writer, error) {
			mu.Lock()
			defer mu.Unlock()
			buf := &bytes.Buffer{}
			journals[ns] = buf
			return buf, nil
		},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Close() })
	return srv, ts, journals
}

func dialNS(t *testing.T, url, ns string) *Client {
	t.Helper()
	c, err := Dial(url, Options{Namespace: ns})
	if err != nil {
		t.Fatalf("dial ns %q: %v", ns, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestNamespaceIsolation(t *testing.T) {
	srv, ts, journals := startNS(t, 16, 4)
	ca := dialNS(t, ts.URL, "alice")
	cb := dialNS(t, ts.URL, "bob")
	cd := dialNS(t, ts.URL, "") // default tenant

	// Each namespace is its own address space: a write in one is invisible
	// in the others.
	if err := ca.WriteBlock(3, blockOf(4, 7)); err != nil {
		t.Fatal(err)
	}
	got := make([]extmem.Element, 4)
	if err := cb.ReadBlock(3, got); err != nil {
		t.Fatal(err)
	}
	if !equalElems(got, make([]extmem.Element, 4)) {
		t.Fatalf("bob sees alice's block: %+v", got)
	}
	if err := cd.ReadBlock(3, got); err != nil {
		t.Fatal(err)
	}
	if !equalElems(got, make([]extmem.Element, 4)) {
		t.Fatalf("default tenant sees alice's block: %+v", got)
	}
	if err := ca.ReadBlock(3, got); err != nil {
		t.Fatal(err)
	}
	if !equalElems(got, blockOf(4, 7)) {
		t.Fatalf("alice lost her own block: %+v", got)
	}

	// Per-namespace journals: alice's journal holds exactly alice's
	// accesses, bob's exactly bob's, and the default tenant saw only its
	// own read.
	if got, want := journals["alice"].String(), "W 3\nR 3\n"; got != want {
		t.Fatalf("alice journal %q, want %q", got, want)
	}
	if got, want := journals["bob"].String(), "R 3\n"; got != want {
		t.Fatalf("bob journal %q, want %q", got, want)
	}
	if got, want := journals[""].String(), "R 3\n"; got != want {
		t.Fatalf("default journal %q, want %q", got, want)
	}

	// Per-namespace trace fingerprints over the wire.
	sta, err := ca.FetchServerTrace()
	if err != nil {
		t.Fatal(err)
	}
	stb, err := cb.FetchServerTrace()
	if err != nil {
		t.Fatal(err)
	}
	if sta.Len != 2 || stb.Len != 1 {
		t.Fatalf("trace lens alice=%d bob=%d, want 2/1", sta.Len, stb.Len)
	}
	if srv.TraceSummaryNS("alice").Len != 2 || srv.TraceSummaryNS("bob").Len != 1 || srv.TraceSummary().Len != 1 {
		t.Fatal("in-process per-namespace summaries disagree with the endpoint")
	}

	// Resetting one namespace's trace leaves the others' standing.
	if err := ca.ResetServerTrace(); err != nil {
		t.Fatal(err)
	}
	if srv.TraceSummaryNS("alice").Len != 0 || srv.TraceSummaryNS("bob").Len != 1 {
		t.Fatal("trace reset leaked across namespaces")
	}

	// The tenant listing names all three, default included.
	resp, err := http.Get(ts.URL + namespacesPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var nsj namespacesJSON
	if err := json.NewDecoder(resp.Body).Decode(&nsj); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, row := range nsj.Namespaces {
		names[row.Name] = true
	}
	if !names[""] || !names["alice"] || !names["bob"] || len(nsj.Namespaces) != 3 {
		t.Fatalf("namespace listing %+v", nsj.Namespaces)
	}
}

func TestNamespaceReplayWindowScoped(t *testing.T) {
	// The replay key is (namespace, seq): the same request id arriving in
	// two namespaces is two distinct requests — both executed, both
	// journaled — while a true retransmission within one namespace is
	// suppressed. Without the scoping, concurrent sessions whose random id
	// streams collide would silently drop each other's journal entries.
	_, ts, journals := startNS(t, 8, 2)
	post := func(ns string, seq uint64) (replay bool) {
		t.Helper()
		body, payload := encodeRequest(opWrite, seq, ns, []int{1}, 2*extmem.ElementBytes)
		extmem.EncodeElements(payload, blockOf(2, seq))
		resp, err := http.Post(ts.URL+ioPath, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		return resp.Header.Get(replayHeader) == "1"
	}
	if post("alice", 42) {
		t.Fatal("first delivery flagged as replay")
	}
	if post("bob", 42) {
		t.Fatal("same id in a different namespace suppressed as a replay")
	}
	if !post("alice", 42) {
		t.Fatal("true retransmission not recognized within its namespace")
	}
	if a, b := journals["alice"].String(), journals["bob"].String(); a != "W 1\n" || b != "W 1\n" {
		t.Fatalf("journals alice=%q bob=%q, want one entry each", a, b)
	}
}

func TestNamespaceGrowScoped(t *testing.T) {
	_, ts, _ := startNS(t, 4, 4)
	ca := dialNS(t, ts.URL, "alice")
	cb := dialNS(t, ts.URL, "bob")
	if err := ca.GrowTo(32); err != nil {
		t.Fatal(err)
	}
	if ca.NumBlocks() != 32 {
		t.Fatalf("alice NumBlocks = %d after grow", ca.NumBlocks())
	}
	// Bob's geometry is untouched — on his tenant, block 31 is still out of
	// range.
	if err := cb.ReadBlock(31, make([]extmem.Element, 4)); err == nil || !strings.Contains(err.Error(), "range") {
		t.Fatalf("grow leaked into bob's namespace: %v", err)
	}
	if err := ca.WriteBlock(31, blockOf(4, 1)); err != nil {
		t.Fatalf("alice's grown region unusable: %v", err)
	}
}

func TestNamespaceRejection(t *testing.T) {
	// Client-side: an invalid namespace never reaches the wire.
	if _, err := Dial("http://127.0.0.1:1", Options{Namespace: "no/slashes"}); err == nil || !strings.Contains(err.Error(), "invalid namespace") {
		t.Fatalf("bad namespace accepted by Dial: %v", err)
	}

	// A single-tenant server (no factory) rejects unknown namespaces with a
	// permanent 404 — no retry burn, no silent tenant creation.
	_, ts, c := start(t, 8, 4, ServerOptions{})
	cn, err := Dial(ts.URL+"", Options{Namespace: "ghost"})
	if err == nil {
		cn.Close()
		t.Fatal("dial into a namespace of a single-tenant server succeeded")
	}
	if !strings.Contains(err.Error(), "single-tenant") {
		t.Fatalf("unexpected error: %v", err)
	}
	_ = c

	// A malformed OBS2 frame (bad namespace bytes) is a 400.
	body, _ := encodeRequest(opRead, 1, "ok", []int{0}, 0)
	body[14], body[15] = '/', '/' // corrupt the namespace in place
	resp, err := http.Post(ts.URL+ioPath, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt namespace: status %d", resp.StatusCode)
	}

	// The tenant cap: a multi-tenant server refuses namespaces beyond
	// MaxNamespaces with a permanent 400.
	srv := NewServer(extmem.NewMemStore(8, 4), ServerOptions{
		MaxNamespaces: 2, // the default tenant occupies one slot
		StoreFactory: func(ns string) (extmem.BlockStore, error) {
			return extmem.NewMemStore(8, 4), nil
		},
	})
	ts2 := httptest.NewServer(srv.Handler())
	defer ts2.Close()
	defer srv.Close()
	if _, err := Dial(ts2.URL, Options{Namespace: "first"}); err != nil {
		t.Fatalf("first namespace rejected: %v", err)
	}
	if _, err := Dial(ts2.URL, Options{Namespace: "second"}); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("namespace beyond the cap accepted: %v", err)
	}
}

func TestMultiplexedWire(t *testing.T) {
	// Two namespaced clients sharing the process-wide multiplexed transport
	// against an h2c-enabled server: every request travels as HTTP/2, and
	// both sessions' streams ride one TCP connection (one remote address
	// seen server-side) instead of one keep-alive pool each.
	srv := NewServer(extmem.NewMemStore(16, 4), ServerOptions{
		StoreFactory: func(ns string) (extmem.BlockStore, error) {
			return extmem.NewMemStore(16, 4), nil
		},
	})
	defer srv.Close()
	var mu sync.Mutex
	protos := map[string]int{}
	conns := map[string]bool{}
	inner := srv.Handler()
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		protos[r.Proto]++
		conns[r.RemoteAddr] = true
		mu.Unlock()
		inner.ServeHTTP(w, r)
	}))
	ConfigureMuxServer(ts.Config)
	ts.Start()
	defer ts.Close()

	ca, err := Dial(ts.URL, Options{Namespace: "alice", Transport: SharedTransport()})
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cb, err := Dial(ts.URL, Options{Namespace: "bob", Transport: SharedTransport()})
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()

	for i := 0; i < 4; i++ {
		if err := ca.WriteBlock(i, blockOf(4, uint64(i))); err != nil {
			t.Fatal(err)
		}
		if err := cb.WriteBlock(i, blockOf(4, uint64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]extmem.Element, 4)
	if err := ca.ReadBlock(2, got); err != nil {
		t.Fatal(err)
	}
	if !equalElems(got, blockOf(4, 2)) {
		t.Fatalf("alice read back %+v over the multiplexed wire", got)
	}
	if err := cb.ReadBlock(2, got); err != nil {
		t.Fatal(err)
	}
	if !equalElems(got, blockOf(4, 102)) {
		t.Fatalf("bob read back %+v over the multiplexed wire", got)
	}

	mu.Lock()
	defer mu.Unlock()
	for proto, n := range protos {
		if proto != "HTTP/2.0" {
			t.Fatalf("%d requests traveled as %s, want HTTP/2.0 only (protos: %v)", n, proto, protos)
		}
	}
	if len(conns) != 1 {
		t.Fatalf("%d TCP connections for 2 multiplexed sessions, want 1 (%v)", len(conns), conns)
	}
}
