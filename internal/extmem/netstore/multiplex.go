package netstore

import (
	"net/http"
	"sync"
)

// Wire multiplexing. A service process runs many sessions, each fanning out
// to K shards; with one HTTP/1.1 keep-alive pool per Client that is
// sessions × K TCP connections to a handful of servers, and every new
// session pays dials before its first batch. HTTP/2 collapses this: all
// sessions' requests to one server interleave as streams on a single
// long-lived connection, so concurrency costs streams (cheap) instead of
// sockets (file descriptors, dials, TLS handshakes). Request ids stay
// per-session and namespaces keep the streams' journals apart, so
// multiplexing changes connection count — never the per-tenant trace.

// sharedMux is the process-wide multiplexed transport, one per process by
// design: the whole point is that every session's Client shares it.
var (
	sharedMuxOnce sync.Once
	sharedMux     *http.Transport
)

// SharedTransport returns the process-wide multiplexed transport: HTTP/2
// for https:// URLs and unencrypted HTTP/2 (h2c, prior knowledge) for
// http:// ones, so in-cluster cleartext deployments multiplex too. Every
// Client handed this transport shares its connections — pass it as
// Options.Transport (oblivext's Config.Multiplex does). The transport never
// falls back to HTTP/1.1, so dialing a server that does not speak h2c fails
// loudly rather than silently de-multiplexing; NewMuxServer-configured
// servers (and cmd/obstore -h2c) always accept it.
func SharedTransport() http.RoundTripper {
	sharedMuxOnce.Do(func() {
		sharedMux = NewTransport(64)
		p := new(http.Protocols)
		p.SetHTTP2(true)
		p.SetUnencryptedHTTP2(true)
		sharedMux.Protocols = p
	})
	return sharedMux
}

// ConfigureMuxServer enables multiplexed serving on an http.Server: HTTP/1.1
// (old clients keep working), HTTP/2 over TLS, and unencrypted HTTP/2 so
// SharedTransport's h2c prior-knowledge connections are accepted on
// cleartext listeners.
func ConfigureMuxServer(hs *http.Server) {
	p := new(http.Protocols)
	p.SetHTTP1(true)
	p.SetHTTP2(true)
	p.SetUnencryptedHTTP2(true)
	hs.Protocols = p
}
