package extmem

import (
	"context"
	"fmt"
)

// BlockStore is Bob's storage: a flat array of fixed-size blocks addressed
// by index. Implementations must copy data on both reads and writes; callers
// own their buffers.
//
// The vectored calls ReadBlocks/WriteBlocks move many blocks in one
// interaction with the store — one network round trip when Bob is remote.
// Implementations should detect contiguous address runs and serve them with
// a single bulk transfer.
type BlockStore interface {
	// ReadBlock copies block addr into dst (len(dst) == BlockSize()).
	ReadBlock(addr int, dst []Element) error
	// WriteBlock copies src into block addr (len(src) == BlockSize()).
	WriteBlock(addr int, src []Element) error
	// ReadBlocks copies blocks addrs[i] into dst[i*B:(i+1)*B] for every i
	// (len(dst) == len(addrs)*BlockSize()) in one interaction. Duplicate
	// addresses are allowed.
	ReadBlocks(addrs []int, dst []Element) error
	// WriteBlocks copies src[i*B:(i+1)*B] into blocks addrs[i] for every i
	// (len(src) == len(addrs)*BlockSize()) in one interaction. With
	// duplicate addresses the later slice wins.
	WriteBlocks(addrs []int, src []Element) error
	// NumBlocks returns the store capacity in blocks.
	NumBlocks() int
	// BlockSize returns B, the number of elements per block.
	BlockSize() int
	// Close releases any resources held by the store.
	Close() error
}

// CtxStore is implemented by stores whose vectored calls can be bound to a
// context: a remote backend abandons the in-flight request (and stops
// retrying) when the context is canceled. The sharded fan-out uses this to
// cancel sibling sub-batches once one shard has definitively failed, and
// the replica layer uses it to cancel the losing leg of a hedged read —
// without it, a doomed fan-out runs every other request to its full
// timeout before the error can surface.
//
// Cancellation affects only delivery, never semantics: a canceled call
// returns an error and the caller treats the interaction as failed, exactly
// as if the network had dropped it.
type CtxStore interface {
	BlockStore
	// ReadBlocksCtx is ReadBlocks bound to ctx.
	ReadBlocksCtx(ctx context.Context, addrs []int, dst []Element) error
	// WriteBlocksCtx is WriteBlocks bound to ctx.
	WriteBlocksCtx(ctx context.Context, addrs []int, src []Element) error
}

// ReadBlocksCtx reads through s under ctx when s supports cancellation, and
// falls back to the plain call otherwise (a local store cannot block on the
// network, so there is nothing to cancel).
func ReadBlocksCtx(ctx context.Context, s BlockStore, addrs []int, dst []Element) error {
	if cs, ok := s.(CtxStore); ok {
		return cs.ReadBlocksCtx(ctx, addrs, dst)
	}
	return s.ReadBlocks(addrs, dst)
}

// WriteBlocksCtx writes through s under ctx when s supports cancellation,
// falling back to the plain call otherwise.
func WriteBlocksCtx(ctx context.Context, s BlockStore, addrs []int, src []Element) error {
	if cs, ok := s.(CtxStore); ok {
		return cs.WriteBlocksCtx(ctx, addrs, src)
	}
	return s.WriteBlocks(addrs, src)
}

// contiguous reports whether addrs is a run of consecutive ascending
// addresses, the case bulk transfers serve with a single copy.
func contiguous(addrs []int) bool {
	for i := 1; i < len(addrs); i++ {
		if addrs[i] != addrs[i-1]+1 {
			return false
		}
	}
	return true
}

// MemStore is an in-memory BlockStore: the default substrate for tests and
// benchmarks, where only I/O counts and traces matter.
type MemStore struct {
	b    int
	data []Element
}

// NewMemStore returns a zeroed in-memory store of n blocks of b elements.
func NewMemStore(n, b int) *MemStore {
	if n < 0 || b <= 0 {
		panic("extmem: invalid MemStore geometry")
	}
	return &MemStore{b: b, data: make([]Element, n*b)}
}

// ReadBlock implements BlockStore.
func (s *MemStore) ReadBlock(addr int, dst []Element) error {
	if err := s.check(addr, len(dst)); err != nil {
		return err
	}
	copy(dst, s.data[addr*s.b:(addr+1)*s.b])
	return nil
}

// WriteBlock implements BlockStore.
func (s *MemStore) WriteBlock(addr int, src []Element) error {
	if err := s.check(addr, len(src)); err != nil {
		return err
	}
	copy(s.data[addr*s.b:(addr+1)*s.b], src)
	return nil
}

// ReadBlocks implements BlockStore; a contiguous run is a single copy.
func (s *MemStore) ReadBlocks(addrs []int, dst []Element) error {
	if err := s.checkVec(addrs, len(dst)); err != nil {
		return err
	}
	if len(addrs) > 0 && contiguous(addrs) {
		copy(dst, s.data[addrs[0]*s.b:(addrs[0]+len(addrs))*s.b])
		return nil
	}
	for i, addr := range addrs {
		copy(dst[i*s.b:(i+1)*s.b], s.data[addr*s.b:(addr+1)*s.b])
	}
	return nil
}

// WriteBlocks implements BlockStore; a contiguous run is a single copy.
func (s *MemStore) WriteBlocks(addrs []int, src []Element) error {
	if err := s.checkVec(addrs, len(src)); err != nil {
		return err
	}
	if len(addrs) > 0 && contiguous(addrs) {
		copy(s.data[addrs[0]*s.b:(addrs[0]+len(addrs))*s.b], src)
		return nil
	}
	for i, addr := range addrs {
		copy(s.data[addr*s.b:(addr+1)*s.b], src[i*s.b:(i+1)*s.b])
	}
	return nil
}

func (s *MemStore) checkVec(addrs []int, l int) error {
	if l != len(addrs)*s.b {
		return fmt.Errorf("extmem: buffer length %d != %d blocks of %d elements", l, len(addrs), s.b)
	}
	for _, addr := range addrs {
		if addr < 0 || (addr+1)*s.b > len(s.data) {
			return fmt.Errorf("extmem: block address %d out of range [0,%d)", addr, s.NumBlocks())
		}
	}
	return nil
}

// NumBlocks implements BlockStore.
func (s *MemStore) NumBlocks() int { return len(s.data) / s.b }

// BlockSize implements BlockStore.
func (s *MemStore) BlockSize() int { return s.b }

// Close implements BlockStore.
func (s *MemStore) Close() error { return nil }

// Growable is implemented by stores that can extend their capacity; the
// Disk allocator grows such stores on demand.
type Growable interface {
	GrowTo(n int) error
}

// Grow extends the store to hold at least n blocks.
func (s *MemStore) Grow(n int) {
	if need := n * s.b; need > len(s.data) {
		nd := make([]Element, need)
		copy(nd, s.data)
		s.data = nd
	}
}

// GrowTo implements Growable.
func (s *MemStore) GrowTo(n int) error {
	s.Grow(n)
	return nil
}

func (s *MemStore) check(addr, l int) error {
	if l != s.b {
		return fmt.Errorf("extmem: buffer length %d != block size %d", l, s.b)
	}
	if addr < 0 || (addr+1)*s.b > len(s.data) {
		return fmt.Errorf("extmem: block address %d out of range [0,%d)", addr, s.NumBlocks())
	}
	return nil
}
