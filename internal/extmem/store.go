package extmem

import "fmt"

// BlockStore is Bob's storage: a flat array of fixed-size blocks addressed
// by index. Implementations must copy data on both reads and writes; callers
// own their buffers.
type BlockStore interface {
	// ReadBlock copies block addr into dst (len(dst) == BlockSize()).
	ReadBlock(addr int, dst []Element) error
	// WriteBlock copies src into block addr (len(src) == BlockSize()).
	WriteBlock(addr int, src []Element) error
	// NumBlocks returns the store capacity in blocks.
	NumBlocks() int
	// BlockSize returns B, the number of elements per block.
	BlockSize() int
	// Close releases any resources held by the store.
	Close() error
}

// MemStore is an in-memory BlockStore: the default substrate for tests and
// benchmarks, where only I/O counts and traces matter.
type MemStore struct {
	b    int
	data []Element
}

// NewMemStore returns a zeroed in-memory store of n blocks of b elements.
func NewMemStore(n, b int) *MemStore {
	if n < 0 || b <= 0 {
		panic("extmem: invalid MemStore geometry")
	}
	return &MemStore{b: b, data: make([]Element, n*b)}
}

// ReadBlock implements BlockStore.
func (s *MemStore) ReadBlock(addr int, dst []Element) error {
	if err := s.check(addr, len(dst)); err != nil {
		return err
	}
	copy(dst, s.data[addr*s.b:(addr+1)*s.b])
	return nil
}

// WriteBlock implements BlockStore.
func (s *MemStore) WriteBlock(addr int, src []Element) error {
	if err := s.check(addr, len(src)); err != nil {
		return err
	}
	copy(s.data[addr*s.b:(addr+1)*s.b], src)
	return nil
}

// NumBlocks implements BlockStore.
func (s *MemStore) NumBlocks() int { return len(s.data) / s.b }

// BlockSize implements BlockStore.
func (s *MemStore) BlockSize() int { return s.b }

// Close implements BlockStore.
func (s *MemStore) Close() error { return nil }

// Growable is implemented by stores that can extend their capacity; the
// Disk allocator grows such stores on demand.
type Growable interface {
	GrowTo(n int) error
}

// Grow extends the store to hold at least n blocks.
func (s *MemStore) Grow(n int) {
	if need := n * s.b; need > len(s.data) {
		nd := make([]Element, need)
		copy(nd, s.data)
		s.data = nd
	}
}

// GrowTo implements Growable.
func (s *MemStore) GrowTo(n int) error {
	s.Grow(n)
	return nil
}

func (s *MemStore) check(addr, l int) error {
	if l != s.b {
		return fmt.Errorf("extmem: buffer length %d != block size %d", l, s.b)
	}
	if addr < 0 || (addr+1)*s.b > len(s.data) {
		return fmt.Errorf("extmem: block address %d out of range [0,%d)", addr, s.NumBlocks())
	}
	return nil
}
