package extmem

import (
	"fmt"
	"os"
)

// FileStore is a BlockStore backed by a real file, exercising the library on
// an actual secondary-storage device. Each block occupies a fixed slot of
// BlockSize()*ElementBytes bytes. The store holds whatever bytes it is
// handed: encryption is not its concern — wrap it in a CryptStore to make
// the file hold ciphertext only.
type FileStore struct {
	f     *os.File
	b     int
	n     int
	slot  int
	vwire []byte // scratch for transfers, grown on demand
}

// NewFileStore creates (truncating) a file-backed store of n blocks of b
// elements at path. Blocks start zeroed.
func NewFileStore(path string, n, b int) (*FileStore, error) {
	if n < 0 || b <= 0 {
		return nil, fmt.Errorf("extmem: invalid FileStore geometry n=%d b=%d", n, b)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, err
	}
	slot := b * ElementBytes
	s := &FileStore{f: f, b: b, n: n, slot: slot}
	// Truncate pre-sizes the file; the holes read back as zero bytes, which
	// decode to zeroed elements.
	if err := f.Truncate(int64(n) * int64(slot)); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// ReadBlock implements BlockStore.
func (s *FileStore) ReadBlock(addr int, dst []Element) error {
	if err := s.check(addr, len(dst)); err != nil {
		return err
	}
	wire := s.vecWire(1)
	if _, err := s.f.ReadAt(wire, int64(addr)*int64(s.slot)); err != nil {
		return err
	}
	DecodeElements(dst, wire)
	return nil
}

// WriteBlock implements BlockStore.
func (s *FileStore) WriteBlock(addr int, src []Element) error {
	if err := s.check(addr, len(src)); err != nil {
		return err
	}
	wire := s.vecWire(1)
	EncodeElements(wire, src)
	_, err := s.f.WriteAt(wire, int64(addr)*int64(s.slot))
	return err
}

// ReadBlocks implements BlockStore. A contiguous address run is served with
// one ReadAt covering the whole byte range.
func (s *FileStore) ReadBlocks(addrs []int, dst []Element) error {
	if len(dst) != len(addrs)*s.b {
		return fmt.Errorf("extmem: buffer length %d != %d blocks of %d elements", len(dst), len(addrs), s.b)
	}
	for _, addr := range addrs {
		if addr < 0 || addr >= s.n {
			return fmt.Errorf("extmem: block address %d out of range [0,%d)", addr, s.n)
		}
	}
	if len(addrs) == 0 {
		return nil
	}
	if contiguous(addrs) {
		wire := s.vecWire(len(addrs))
		if _, err := s.f.ReadAt(wire, int64(addrs[0])*int64(s.slot)); err != nil {
			return err
		}
		DecodeElements(dst, wire)
		return nil
	}
	for i, addr := range addrs {
		if err := s.ReadBlock(addr, dst[i*s.b:(i+1)*s.b]); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocks implements BlockStore; a contiguous run goes to disk with one
// WriteAt.
func (s *FileStore) WriteBlocks(addrs []int, src []Element) error {
	if len(src) != len(addrs)*s.b {
		return fmt.Errorf("extmem: buffer length %d != %d blocks of %d elements", len(src), len(addrs), s.b)
	}
	for _, addr := range addrs {
		if addr < 0 || addr >= s.n {
			return fmt.Errorf("extmem: block address %d out of range [0,%d)", addr, s.n)
		}
	}
	if len(addrs) == 0 {
		return nil
	}
	if contiguous(addrs) {
		wire := s.vecWire(len(addrs))
		EncodeElements(wire, src)
		_, err := s.f.WriteAt(wire, int64(addrs[0])*int64(s.slot))
		return err
	}
	for i, addr := range addrs {
		if err := s.WriteBlock(addr, src[i*s.b:(i+1)*s.b]); err != nil {
			return err
		}
	}
	return nil
}

// vecWire returns a scratch wire buffer for n slots, growing it on demand.
func (s *FileStore) vecWire(n int) []byte {
	if need := n * s.slot; cap(s.vwire) < need {
		s.vwire = make([]byte, need)
	}
	return s.vwire[:n*s.slot]
}

// GrowTo implements Growable: the file is extended; the fresh slots read
// back as zero bytes (zeroed elements).
func (s *FileStore) GrowTo(n int) error {
	if n <= s.n {
		return nil
	}
	if err := s.f.Truncate(int64(n) * int64(s.slot)); err != nil {
		return err
	}
	s.n = n
	return nil
}

// NumBlocks implements BlockStore.
func (s *FileStore) NumBlocks() int { return s.n }

// BlockSize implements BlockStore.
func (s *FileStore) BlockSize() int { return s.b }

// Close implements BlockStore.
func (s *FileStore) Close() error { return s.f.Close() }

func (s *FileStore) check(addr, l int) error {
	if l != s.b {
		return fmt.Errorf("extmem: buffer length %d != block size %d", l, s.b)
	}
	if addr < 0 || addr >= s.n {
		return fmt.Errorf("extmem: block address %d out of range [0,%d)", addr, s.n)
	}
	return nil
}
