package extmem

import (
	"fmt"
	"os"
)

// FileStore is a BlockStore backed by a real file, exercising the library on
// an actual secondary-storage device. Each block occupies a fixed slot of
// BlockSize()*ElementBytes bytes (plus the encryption envelope when an
// encryptor is attached).
type FileStore struct {
	f     *os.File
	b     int
	n     int
	slot  int
	enc   *Encryptor
	plain []byte
	wire  []byte
	vwire []byte // scratch for vectored transfers, grown on demand
}

// NewFileStore creates (truncating) a file-backed store of n blocks of b
// elements at path. If enc is non-nil every block is encrypted with a fresh
// IV on each write, so the server cannot tell a rewrite of identical
// plaintext from a write of new data — the paper's semantic-security
// assumption.
func NewFileStore(path string, n, b int, enc *Encryptor) (*FileStore, error) {
	if n < 0 || b <= 0 {
		return nil, fmt.Errorf("extmem: invalid FileStore geometry n=%d b=%d", n, b)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, err
	}
	plain := b * ElementBytes
	slot := plain
	if enc != nil {
		slot = enc.WireSize(plain)
	}
	s := &FileStore{f: f, b: b, n: n, slot: slot, enc: enc,
		plain: make([]byte, plain), wire: make([]byte, slot)}
	if err := f.Truncate(int64(n) * int64(slot)); err != nil {
		f.Close()
		return nil, err
	}
	// Initialize every slot so that reads of never-written blocks decrypt
	// cleanly to zeroed elements.
	zero := make([]Element, b)
	for i := 0; i < n; i++ {
		if err := s.WriteBlock(i, zero); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// ReadBlock implements BlockStore.
func (s *FileStore) ReadBlock(addr int, dst []Element) error {
	if err := s.check(addr, len(dst)); err != nil {
		return err
	}
	if _, err := s.f.ReadAt(s.wire, int64(addr)*int64(s.slot)); err != nil {
		return err
	}
	buf := s.wire
	if s.enc != nil {
		var err error
		buf, err = s.enc.Open(s.plain[:0], s.wire)
		if err != nil {
			return fmt.Errorf("extmem: block %d: %w", addr, err)
		}
	}
	DecodeElements(dst, buf)
	return nil
}

// WriteBlock implements BlockStore.
func (s *FileStore) WriteBlock(addr int, src []Element) error {
	if err := s.check(addr, len(src)); err != nil {
		return err
	}
	EncodeElements(s.plain, src)
	buf := s.plain
	if s.enc != nil {
		var err error
		buf, err = s.enc.Seal(s.wire[:0], s.plain)
		if err != nil {
			return err
		}
	}
	_, err := s.f.WriteAt(buf, int64(addr)*int64(s.slot))
	return err
}

// ReadBlocks implements BlockStore. A contiguous address run is served with
// one ReadAt covering the whole byte range; decryption and decoding remain
// per block.
func (s *FileStore) ReadBlocks(addrs []int, dst []Element) error {
	if len(dst) != len(addrs)*s.b {
		return fmt.Errorf("extmem: buffer length %d != %d blocks of %d elements", len(dst), len(addrs), s.b)
	}
	for _, addr := range addrs {
		if addr < 0 || addr >= s.n {
			return fmt.Errorf("extmem: block address %d out of range [0,%d)", addr, s.n)
		}
	}
	if len(addrs) == 0 {
		return nil
	}
	if contiguous(addrs) {
		wire := s.vecWire(len(addrs))
		if _, err := s.f.ReadAt(wire, int64(addrs[0])*int64(s.slot)); err != nil {
			return err
		}
		for i, addr := range addrs {
			if err := s.decodeSlot(addr, wire[i*s.slot:(i+1)*s.slot], dst[i*s.b:(i+1)*s.b]); err != nil {
				return err
			}
		}
		return nil
	}
	for i, addr := range addrs {
		if err := s.ReadBlock(addr, dst[i*s.b:(i+1)*s.b]); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocks implements BlockStore. Every block is individually encoded and
// (when an encryptor is attached) sealed under its own fresh IV — vectoring
// batches the transfer, never the encryption envelope; a contiguous run then
// goes to disk with one WriteAt.
func (s *FileStore) WriteBlocks(addrs []int, src []Element) error {
	if len(src) != len(addrs)*s.b {
		return fmt.Errorf("extmem: buffer length %d != %d blocks of %d elements", len(src), len(addrs), s.b)
	}
	for _, addr := range addrs {
		if addr < 0 || addr >= s.n {
			return fmt.Errorf("extmem: block address %d out of range [0,%d)", addr, s.n)
		}
	}
	if len(addrs) == 0 {
		return nil
	}
	if contiguous(addrs) {
		wire := s.vecWire(len(addrs))
		for i := range addrs {
			if err := s.encodeSlot(wire[i*s.slot:(i+1)*s.slot], src[i*s.b:(i+1)*s.b]); err != nil {
				return err
			}
		}
		_, err := s.f.WriteAt(wire, int64(addrs[0])*int64(s.slot))
		return err
	}
	for i, addr := range addrs {
		if err := s.WriteBlock(addr, src[i*s.b:(i+1)*s.b]); err != nil {
			return err
		}
	}
	return nil
}

// vecWire returns a scratch wire buffer for n slots, growing it on demand.
func (s *FileStore) vecWire(n int) []byte {
	if need := n * s.slot; cap(s.vwire) < need {
		s.vwire = make([]byte, need)
	}
	return s.vwire[:n*s.slot]
}

// decodeSlot turns one on-disk slot into elements, decrypting if configured.
func (s *FileStore) decodeSlot(addr int, slot []byte, dst []Element) error {
	buf := slot
	if s.enc != nil {
		var err error
		buf, err = s.enc.Open(s.plain[:0], slot)
		if err != nil {
			return fmt.Errorf("extmem: block %d: %w", addr, err)
		}
	}
	DecodeElements(dst, buf)
	return nil
}

// encodeSlot serializes one block into the given slot (len == s.slot),
// sealing with a fresh IV when encryption is configured.
func (s *FileStore) encodeSlot(dst []byte, src []Element) error {
	EncodeElements(s.plain, src)
	if s.enc == nil {
		copy(dst, s.plain)
		return nil
	}
	_, err := s.enc.Seal(dst[:0], s.plain)
	return err
}

// GrowTo implements Growable: the file is extended and the fresh slots are
// initialized so reads decrypt cleanly.
func (s *FileStore) GrowTo(n int) error {
	if n <= s.n {
		return nil
	}
	if err := s.f.Truncate(int64(n) * int64(s.slot)); err != nil {
		return err
	}
	old := s.n
	s.n = n
	zero := make([]Element, s.b)
	for i := old; i < n; i++ {
		if err := s.WriteBlock(i, zero); err != nil {
			return err
		}
	}
	return nil
}

// NumBlocks implements BlockStore.
func (s *FileStore) NumBlocks() int { return s.n }

// BlockSize implements BlockStore.
func (s *FileStore) BlockSize() int { return s.b }

// Close implements BlockStore.
func (s *FileStore) Close() error { return s.f.Close() }

func (s *FileStore) check(addr, l int) error {
	if l != s.b {
		return fmt.Errorf("extmem: buffer length %d != block size %d", l, s.b)
	}
	if addr < 0 || addr >= s.n {
		return fmt.Errorf("extmem: block address %d out of range [0,%d)", addr, s.n)
	}
	return nil
}
