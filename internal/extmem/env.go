package extmem

import (
	"fmt"

	"oblivext/internal/obs"
	"oblivext/internal/rng"
)

// Env bundles what every algorithm in the paper runs against: Bob's disk,
// Alice's private-cache accountant, and the random tape. M is the private
// memory size in elements; M/B ("m" in the paper) must be at least 2 for
// the scan-based algorithms, at least 3 for butterfly compaction, and large
// enough for the wide-block/tall-cache assumptions where a theorem needs
// them (each algorithm documents and checks its own requirement).
type Env struct {
	D     *Disk
	Cache *Cache
	Tape  *rng.Tape
	M     int
	// Prefetch makes pass-structured I/O double-buffered: read scans use
	// the SeqReader (the next chunk's fetch overlaps the current chunk's
	// in-cache compute) and sequential writers use the pipelined SeqWriter
	// (one half-buffer flushes in the background while the caller fills
	// the other). The per-block access sequence is unchanged (the chunks
	// are half the cache window instead of the whole, so round-trip counts
	// differ, but the trace Bob sees block by block is identical in either
	// mode).
	Prefetch bool
	// Obs, when non-nil, collects hierarchical phase spans: every
	// instrumented pass opens a span around itself and the Disk folds each
	// block access into the open spans' audit fingerprints. Nil (the
	// default) disables observability at the cost of one pointer check per
	// span site. Attach via EnableObs so the Disk hook stays in step.
	Obs *obs.Collector
	// Workers is the fan-out for parallel in-cache compute (internal/par).
	// 0 and 1 both mean the serial path. Worker count is public — the
	// partition of every parallel region is a function of geometry only —
	// so the per-block trace Bob observes is identical for every value.
	// All Disk I/O and Cache accounting stay on the coordinating
	// goroutine; workers only touch private buffers already checked out.
	Workers int
}

// WorkerCount returns the effective fan-out: Workers clamped to at least 1.
func (e *Env) WorkerCount() int {
	if e.Workers < 1 {
		return 1
	}
	return e.Workers
}

// EnableObs attaches a fresh span collector to the environment and its
// disk, snapshotting the disk's counters (crypto bytes folded in) at every
// span boundary, and returns it.
func (e *Env) EnableObs() *obs.Collector {
	col := obs.NewCollector(func() obs.Counters { return obs.Counters(e.D.Stats()) })
	e.Obs = col
	e.D.SetObs(col)
	return col
}

// DisableObs detaches the span collector.
func (e *Env) DisableObs() {
	e.Obs = nil
	e.D.SetObs(nil)
}

// NewEnv builds an environment over an in-memory store.
//
// startBlocks is an initial capacity hint; the store grows on demand.
func NewEnv(startBlocks, b, m int, seed uint64) *Env {
	if m < 2*b {
		panic("extmem: need M >= 2B")
	}
	return &Env{
		D:     NewDisk(NewMemStore(startBlocks, b)),
		Cache: NewCache(m, false),
		Tape:  rng.NewTape(seed, seed^0x9e3779b97f4a7c15),
		M:     m,
	}
}

// NewEnvOn builds an environment over an arbitrary block store.
func NewEnvOn(store BlockStore, m int, seed uint64) *Env {
	if m < 2*store.BlockSize() {
		panic("extmem: need M >= 2B")
	}
	return &Env{
		D:     NewDisk(store),
		Cache: NewCache(m, false),
		Tape:  rng.NewTape(seed, seed^0x9e3779b97f4a7c15),
		M:     m,
	}
}

// B returns the block size in elements.
func (e *Env) B() int { return e.D.B() }

// ScanBatch returns how many blocks a streaming scan may move per vectored
// round trip: the free private cache split among `buffers` concurrent chunk
// buffers, less one block of slack for loop state, and at least 1 (a
// one-block buffer is exactly the scalar scan every algorithm already
// afforded). Callers check the result's worth of cache out per buffer, so
// HighWater never exceeds M beyond what the scalar path used.
//
// The k=1 floor is a documented one-block-per-buffer grace: when the free
// cache cannot even hold one block per buffer (a caller has overdrawn the
// accountant), the scan still proceeds at scalar granularity and the
// overdraft is recorded in HighWater for tests to catch. In strict mode
// there is no grace — handing out memory the accountant doesn't have is
// exactly what strict mode exists to forbid — so ScanBatch panics up
// front with the overdraft spelled out, rather than letting the caller's
// subsequent Buf trip the opaque Acquire overflow panic.
func (e *Env) ScanBatch(buffers int) int {
	if buffers < 1 {
		panic("extmem: ScanBatch needs at least one buffer")
	}
	free := e.M - e.Cache.Used()
	k := free/(buffers*e.B()) - 1
	if k < 1 {
		if e.Cache.Strict() && free < buffers*e.B() {
			panic(fmt.Sprintf("extmem: ScanBatch overdrawn in strict mode: %d elements free < %d buffers x %d block (M=%d, used=%d)",
				free, buffers, e.B(), e.M, e.Cache.Used()))
		}
		k = 1
	}
	return k
}

// ScanBatchN is ScanBatch clamped to the length of the region being
// scanned, so short scans don't check out near-cache-sized buffers.
func (e *Env) ScanBatchN(buffers, n int) int {
	k := e.ScanBatch(buffers)
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	return k
}

// MBlocks returns m = M/B, the private cache size in blocks.
func (e *Env) MBlocks() int { return e.M / e.B() }

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int) int { return (a + b - 1) / b }

// CeilDiv64 returns ceil(a/b) for positive b.
func CeilDiv64(a, b int64) int64 { return (a + b - 1) / b }

// CeilLog2 returns ceil(log2(n)) for n >= 1, and 0 for n <= 1.
func CeilLog2(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

// FloorLog2 returns floor(log2(n)) for n >= 1.
func FloorLog2(n int) int {
	if n < 1 {
		panic("extmem: FloorLog2 of non-positive value")
	}
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
