package extmem

import "fmt"

// Cache is the accountant for Alice's private memory. The paper's bounds
// hold only when the client really uses at most M words of private state;
// rather than assume that, every algorithm checks buffers out of the Cache
// and tests assert HighWater() <= Capacity().
//
// Accounting is at buffer granularity (the dominant private state: block
// buffers, sample windows, counters); loop variables and other O(1) state
// are covered by the slack callers are expected to leave.
type Cache struct {
	capacity int
	used     int
	high     int
	strict   bool
}

// NewCache returns an accountant for M elements of private memory. In
// strict mode, exceeding the capacity panics immediately; otherwise it is
// recorded in the high-water mark for tests to inspect.
func NewCache(m int, strict bool) *Cache {
	if m <= 0 {
		panic("extmem: cache capacity must be positive")
	}
	return &Cache{capacity: m, strict: strict}
}

// Capacity returns M in elements.
func (c *Cache) Capacity() int { return c.capacity }

// Strict reports whether exceeding the capacity panics immediately.
func (c *Cache) Strict() bool { return c.strict }

// Used returns the elements currently checked out.
func (c *Cache) Used() int { return c.used }

// HighWater returns the peak concurrent usage observed.
func (c *Cache) HighWater() int { return c.high }

// ResetHighWater clears the peak marker (usage is unaffected).
func (c *Cache) ResetHighWater() { c.high = c.used }

// Acquire records a checkout of n elements of private memory.
func (c *Cache) Acquire(n int) {
	if n < 0 {
		panic("extmem: negative cache acquire")
	}
	c.used += n
	if c.used > c.high {
		c.high = c.used
	}
	if c.strict && c.used > c.capacity {
		panic(fmt.Sprintf("extmem: private cache overflow: %d used > %d capacity", c.used, c.capacity))
	}
}

// Release returns n elements of private memory.
func (c *Cache) Release(n int) {
	if n < 0 || n > c.used {
		panic("extmem: unbalanced cache release")
	}
	c.used -= n
}

// Buf checks out an n-element buffer.
func (c *Cache) Buf(n int) []Element {
	c.Acquire(n)
	return make([]Element, n)
}

// Free returns a buffer checked out with Buf.
func (c *Cache) Free(buf []Element) { c.Release(cap(buf)) }
