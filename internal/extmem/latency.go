package extmem

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// NetModel is the read side of a network cost model: cumulative round
// trips, blocks moved, and modeled delay. LatencyStore implements it for a
// single remote Bob; shard.ShardedStore implements it for many, where
// ModeledTime is the max-over-shards critical path of each fan-out rather
// than the sum of per-shard delays.
type NetModel interface {
	RoundTrips() int64
	BlocksMoved() int64
	ModeledTime() time.Duration
	ResetNetStats()
}

// LatencyStore wraps a BlockStore with a network cost model: Bob is remote,
// and every store interaction — scalar or vectored — costs one round trip
// plus a per-block transfer charge. It is the concrete reason the library
// batches I/O: the paper's bounds count blocks, but in the outsourced
// setting of §1 the wall-clock cost is dominated by interactions, and a
// vectored call moves many blocks for a single RTT.
//
// The model can either merely account (the default: fast, deterministic,
// good for experiments) or actually sleep, for end-to-end demonstrations
// against a simulated WAN.
//
// Memory model: the counters are guarded by an internal mutex, so a
// LatencyStore may be charged from multiple goroutines — the sharded
// fan-out dispatches per-shard sub-batches concurrently, and the prefetching
// SeqReader issues reads from a background goroutine. Counter reads
// (RoundTrips/BlocksMoved/ModeledTime) taken while another goroutine is
// mid-call see a consistent snapshot, but attributing a delta to one call
// requires the caller to establish its own happens-before edge (the fan-out
// joins its goroutines before reading per-shard deltas).
type LatencyStore struct {
	inner    BlockStore
	rtt      time.Duration // charged once per interaction
	perBlock time.Duration // charged per block moved
	sleep    bool

	mu      sync.Mutex
	trips   int64
	blocks  int64
	modeled time.Duration
}

// LatencyOptions configures a LatencyStore.
type LatencyOptions struct {
	// RTT is the per-interaction round-trip delay (e.g. 20ms for a WAN).
	RTT time.Duration
	// PerBlock is the bandwidth component: extra delay per block moved.
	PerBlock time.Duration
	// Sleep makes every interaction really block for its modeled delay;
	// when false the delay is only accumulated in ModeledTime.
	Sleep bool
}

// NewLatencyStore wraps inner with the given cost model.
func NewLatencyStore(inner BlockStore, opts LatencyOptions) *LatencyStore {
	return &LatencyStore{inner: inner, rtt: opts.RTT, perBlock: opts.PerBlock, sleep: opts.Sleep}
}

// RoundTrips returns the number of store interactions so far.
func (s *LatencyStore) RoundTrips() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.trips
}

// BlocksMoved returns the total number of blocks transferred.
func (s *LatencyStore) BlocksMoved() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blocks
}

// ModeledTime returns the accumulated network delay under the cost model
// (whether or not Sleep is set).
func (s *LatencyStore) ModeledTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.modeled
}

// ResetNetStats zeroes the round-trip, block, and modeled-time counters.
func (s *LatencyStore) ResetNetStats() {
	s.mu.Lock()
	s.trips, s.blocks, s.modeled = 0, 0, 0
	s.mu.Unlock()
}

func (s *LatencyStore) charge(nBlocks int) {
	d := s.rtt + time.Duration(nBlocks)*s.perBlock
	s.mu.Lock()
	s.trips++
	s.blocks += int64(nBlocks)
	s.modeled += d
	s.mu.Unlock()
	if s.sleep && d > 0 {
		time.Sleep(d)
	}
}

// ReadBlock implements BlockStore: one round trip moving one block.
func (s *LatencyStore) ReadBlock(addr int, dst []Element) error {
	s.charge(1)
	return s.inner.ReadBlock(addr, dst)
}

// WriteBlock implements BlockStore: one round trip moving one block.
func (s *LatencyStore) WriteBlock(addr int, src []Element) error {
	s.charge(1)
	return s.inner.WriteBlock(addr, src)
}

// ReadBlocks implements BlockStore: one round trip moving len(addrs) blocks.
func (s *LatencyStore) ReadBlocks(addrs []int, dst []Element) error {
	s.charge(len(addrs))
	return s.inner.ReadBlocks(addrs, dst)
}

// WriteBlocks implements BlockStore: one round trip moving len(addrs) blocks.
func (s *LatencyStore) WriteBlocks(addrs []int, src []Element) error {
	s.charge(len(addrs))
	return s.inner.WriteBlocks(addrs, src)
}

// ReadBlocksCtx implements CtxStore: the charge is taken up front (the
// interaction was issued), then the read is forwarded with ctx when the
// inner store supports cancellation.
func (s *LatencyStore) ReadBlocksCtx(ctx context.Context, addrs []int, dst []Element) error {
	s.charge(len(addrs))
	return ReadBlocksCtx(ctx, s.inner, addrs, dst)
}

// WriteBlocksCtx implements CtxStore, the write dual of ReadBlocksCtx.
func (s *LatencyStore) WriteBlocksCtx(ctx context.Context, addrs []int, src []Element) error {
	s.charge(len(addrs))
	return WriteBlocksCtx(ctx, s.inner, addrs, src)
}

// NumBlocks implements BlockStore.
func (s *LatencyStore) NumBlocks() int { return s.inner.NumBlocks() }

// BlockSize implements BlockStore.
func (s *LatencyStore) BlockSize() int { return s.inner.BlockSize() }

// Close implements BlockStore.
func (s *LatencyStore) Close() error { return s.inner.Close() }

// GrowTo implements Growable when the inner store does. Growth is a control
// operation, not a data transfer; no network charge.
func (s *LatencyStore) GrowTo(n int) error {
	g, ok := s.inner.(Growable)
	if !ok {
		return fmt.Errorf("extmem: %T cannot grow", s.inner)
	}
	return g.GrowTo(n)
}
