package extmem

import (
	"strings"
	"testing"
)

// S3: in strict mode, a scan started against an overdrawn cache must panic
// up front with the overdraft spelled out, not hand out memory the
// accountant doesn't have.
func TestScanBatchStrictOverdrawPanics(t *testing.T) {
	env := &Env{D: NewDisk(NewMemStore(16, 4)), Cache: NewCache(32, true), M: 32}
	env.Cache.Acquire(30) // 2 elements free < one 4-element block
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("strict-mode ScanBatch on an overdrawn cache did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "overdrawn") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	env.ScanBatch(1)
}

// The non-strict counterpart: the documented one-block grace. The scan
// proceeds at scalar granularity and the overdraft lands in HighWater.
func TestScanBatchNonStrictGrace(t *testing.T) {
	env := &Env{D: NewDisk(NewMemStore(16, 4)), Cache: NewCache(32, false), M: 32}
	env.Cache.Acquire(30)
	if k := env.ScanBatch(1); k != 1 {
		t.Fatalf("overdrawn non-strict ScanBatch = %d, want the one-block grace", k)
	}
	// A healthy cache in strict mode stays panic-free.
	env2 := &Env{D: NewDisk(NewMemStore(16, 4)), Cache: NewCache(32, true), M: 32}
	if k := env2.ScanBatch(1); k < 1 {
		t.Fatalf("healthy strict ScanBatch = %d", k)
	}
}

// Parallel sealing/opening must be element-identical to the serial path and
// keep exact byte counters: the scratch is per worker and the counters are
// atomic, so a vectored call fanned over 4 workers round-trips the same
// plaintext and accounts the same bytes as the same call run serially.
func TestCryptStoreParallelMatchesSerial(t *testing.T) {
	const b, n = 4, 64
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	in := mkElems(n*b, 9)

	run := func(workers int) (out []Element, sealed, opened int64) {
		s := newCryptMem(t, n, b)
		s.SetWorkers(workers)
		if err := s.WriteBlocks(idx, in); err != nil {
			t.Fatal(err)
		}
		out = make([]Element, n*b)
		if err := s.ReadBlocks(idx, out); err != nil {
			t.Fatal(err)
		}
		return out, s.BytesSealed(), s.BytesOpened()
	}

	serialOut, serialSealed, serialOpened := run(1)
	for _, w := range []int{2, 4, 8} {
		out, sealed, opened := run(w)
		for i := range out {
			if out[i] != serialOut[i] {
				t.Fatalf("workers=%d: element %d differs from serial round trip", w, i)
			}
		}
		if sealed != serialSealed || opened != serialOpened {
			t.Fatalf("workers=%d: counters sealed=%d opened=%d, serial %d/%d",
				w, sealed, opened, serialSealed, serialOpened)
		}
	}
}

// A tampered block must surface as an authentication error from the
// parallel path too, and reads of intact blocks keep succeeding.
func TestCryptStoreParallelTamperDetected(t *testing.T) {
	const b, n = 4, 16
	child := NewMemStore(n, CryptChildBlockSize(b))
	s, err := NewCryptStore(child, testEncryptor(t), b)
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(4)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if err := s.WriteBlocks(idx, mkElems(n*b, 3)); err != nil {
		t.Fatal(err)
	}
	// Flip a ciphertext element of block 5 behind the decorator's back.
	tampered := make([]Element, CryptChildBlockSize(b))
	if err := child.ReadBlock(5, tampered); err != nil {
		t.Fatal(err)
	}
	tampered[1].Key ^= 1
	if err := child.WriteBlock(5, tampered); err != nil {
		t.Fatal(err)
	}
	out := make([]Element, n*b)
	if err := s.ReadBlocks(idx, out); err == nil {
		t.Fatal("vectored read of a tampered block succeeded")
	}
	intact := []int{0, 1, 2, 3, 4, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	if err := s.ReadBlocks(intact, out[:len(intact)*b]); err != nil {
		t.Fatalf("intact blocks unreadable after tamper: %v", err)
	}
}
