package extmem

import "encoding/binary"

// encodeBlock serializes a block of elements little-endian into dst, which
// must have room for len(src)*ElementBytes bytes.
func encodeBlock(dst []byte, src []Element) {
	for i, e := range src {
		off := i * ElementBytes
		binary.LittleEndian.PutUint64(dst[off:], e.Key)
		binary.LittleEndian.PutUint64(dst[off+8:], e.Val)
		binary.LittleEndian.PutUint64(dst[off+16:], e.Pos)
		binary.LittleEndian.PutUint64(dst[off+24:], e.Flags)
	}
}

// decodeBlock deserializes a block of elements from src into dst.
func decodeBlock(dst []Element, src []byte) {
	for i := range dst {
		off := i * ElementBytes
		dst[i] = Element{
			Key:   binary.LittleEndian.Uint64(src[off:]),
			Val:   binary.LittleEndian.Uint64(src[off+8:]),
			Pos:   binary.LittleEndian.Uint64(src[off+16:]),
			Flags: binary.LittleEndian.Uint64(src[off+24:]),
		}
	}
}
