package extmem

import "encoding/binary"

// EncodeElements serializes elements little-endian into dst, which must have
// room for len(src)*ElementBytes bytes. It is the single wire format shared
// by the file store's slots and the network store's block payloads.
func EncodeElements(dst []byte, src []Element) {
	for i, e := range src {
		off := i * ElementBytes
		binary.LittleEndian.PutUint64(dst[off:], e.Key)
		binary.LittleEndian.PutUint64(dst[off+8:], e.Val)
		binary.LittleEndian.PutUint64(dst[off+16:], e.Pos)
		binary.LittleEndian.PutUint64(dst[off+24:], e.Flags)
	}
}

// DecodeElements deserializes len(dst) elements from src into dst.
func DecodeElements(dst []Element, src []byte) {
	for i := range dst {
		off := i * ElementBytes
		dst[i] = Element{
			Key:   binary.LittleEndian.Uint64(src[off:]),
			Val:   binary.LittleEndian.Uint64(src[off+8:]),
			Pos:   binary.LittleEndian.Uint64(src[off+16:]),
			Flags: binary.LittleEndian.Uint64(src[off+24:]),
		}
	}
}
