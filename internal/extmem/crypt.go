package extmem

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Encryptor implements the semantically secure re-encryption the paper
// assumes (§1): AES-CTR with a fresh random IV per write plus an HMAC-SHA256
// tag (encrypt-then-MAC), so re-encrypting an unchanged block is
// indistinguishable from writing new data, and tampering is detected (Bob is
// honest-but-curious, but detection keeps the model honest). It is the
// crypto primitive under the CryptStore decorator, which applies it per
// block over any backend; see docs/THREAT_MODEL.md for what it does and
// does not protect against.
type Encryptor struct {
	block cipher.Block
	mac   []byte // HMAC key
}

const (
	ivSize  = aes.BlockSize
	tagSize = sha256.Size
)

// NewEncryptor derives an encryptor from a 32-byte key (16 bytes for AES-128,
// 16 for HMAC).
func NewEncryptor(key []byte) (*Encryptor, error) {
	if len(key) != 32 {
		return nil, fmt.Errorf("extmem: encryption key must be 32 bytes, got %d", len(key))
	}
	blk, err := aes.NewCipher(key[:16])
	if err != nil {
		return nil, err
	}
	return &Encryptor{block: blk, mac: append([]byte(nil), key[16:]...)}, nil
}

// WireSize returns the on-disk size of an encrypted block of plainSize bytes.
func (e *Encryptor) WireSize(plainSize int) int { return ivSize + plainSize + tagSize }

// tag computes HMAC(addr ‖ IV ‖ ciphertext) into out. Binding the block
// address into the tag makes each seal valid at exactly one location: a
// server that transposes two validly sealed blocks produces an
// authentication failure, not silently relocated data.
func (e *Encryptor) tag(out []byte, addr uint64, body []byte) {
	var a [8]byte
	binary.LittleEndian.PutUint64(a[:], addr)
	h := hmac.New(sha256.New, e.mac)
	h.Write(a[:])
	h.Write(body)
	copy(out, h.Sum(nil))
}

// Seal appends IV || ciphertext || tag to dst, bound to the block address
// (Open at any other address fails). A fresh IV is drawn from crypto/rand
// on every call; sealing the same plaintext twice yields different wire
// bytes.
func (e *Encryptor) Seal(dst, plain []byte, addr uint64) ([]byte, error) {
	off := len(dst)
	dst = append(dst, make([]byte, ivSize+len(plain)+tagSize)...)
	iv := dst[off : off+ivSize]
	if _, err := rand.Read(iv); err != nil {
		return nil, err
	}
	ct := dst[off+ivSize : off+ivSize+len(plain)]
	cipher.NewCTR(e.block, iv).XORKeyStream(ct, plain)
	e.tag(dst[off+ivSize+len(plain):], addr, dst[off:off+ivSize+len(plain)])
	return dst, nil
}

// Open verifies a sealed block against the address it was read from and
// decrypts it, appending the plaintext to dst.
func (e *Encryptor) Open(dst, wire []byte, addr uint64) ([]byte, error) {
	if len(wire) < ivSize+tagSize {
		return nil, errors.New("extmem: sealed block too short")
	}
	body := wire[:len(wire)-tagSize]
	var want [tagSize]byte
	e.tag(want[:], addr, body)
	if !hmac.Equal(wire[len(wire)-tagSize:], want[:]) {
		return nil, errors.New("extmem: block authentication failed")
	}
	iv := body[:ivSize]
	ct := body[ivSize:]
	off := len(dst)
	dst = append(dst, make([]byte, len(ct))...)
	cipher.NewCTR(e.block, iv).XORKeyStream(dst[off:], ct)
	return dst, nil
}
