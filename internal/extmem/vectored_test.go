package extmem

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"oblivext/internal/trace"
)

func mkElems(n int, tag uint64) []Element {
	out := make([]Element, n)
	for i := range out {
		out[i] = Element{Key: tag*1000 + uint64(i), Val: uint64(i) * 7, Pos: uint64(i), Flags: FlagOccupied}
	}
	return out
}

func TestMemStoreVectored(t *testing.T) {
	s := NewMemStore(16, 4)
	data := mkElems(3*4, 1)

	// Contiguous write + scattered read.
	if err := s.WriteBlocks([]int{5, 6, 7}, data); err != nil {
		t.Fatal(err)
	}
	got := make([]Element, 3*4)
	if err := s.ReadBlocks([]int{7, 5, 6}, got); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got[i] != data[8+i] || got[4+i] != data[i] || got[8+i] != data[4+i] {
			t.Fatalf("scattered read mismatch at %d", i)
		}
	}

	// Duplicate addresses on read are allowed.
	if err := s.ReadBlocks([]int{5, 5}, got[:8]); err != nil {
		t.Fatal(err)
	}
	if got[0] != data[0] || got[4] != data[0] {
		t.Fatal("duplicate-address read mismatch")
	}

	// Geometry violations error out.
	if err := s.ReadBlocks([]int{0}, make([]Element, 3)); err == nil {
		t.Error("short buffer accepted")
	}
	if err := s.WriteBlocks([]int{16}, make([]Element, 4)); err == nil {
		t.Error("out-of-range address accepted")
	}
}

// TestFileStoreVectoredEncrypted round-trips a dataset through a CryptStore
// over a file store with WriteBlocks/ReadBlocks and verifies both the
// contents and the fresh-IV re-encryption of every block in the file.
func TestFileStoreVectoredEncrypted(t *testing.T) {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i * 3)
	}
	enc, err := NewEncryptor(key)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "enc.dat")
	const nBlocks, b = 12, 8
	fs, err := NewFileStore(path, nBlocks, CryptChildBlockSize(b))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewCryptStore(fs, enc, b)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	data := mkElems(6*b, 9)
	addrs := []int{2, 3, 4, 5, 6, 7}
	if err := s.WriteBlocks(addrs, data); err != nil {
		t.Fatal(err)
	}

	// Contents round-trip, contiguous and scattered.
	got := make([]Element, 6*b)
	if err := s.ReadBlocks(addrs, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("contiguous vectored round-trip mismatch at element %d", i)
		}
	}
	scattered := []int{7, 2, 5}
	sg := make([]Element, 3*b)
	if err := s.ReadBlocks(scattered, sg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b; i++ {
		if sg[i] != data[5*b+i] || sg[b+i] != data[i] || sg[2*b+i] != data[3*b+i] {
			t.Fatalf("scattered vectored round-trip mismatch at %d", i)
		}
	}

	// Fresh-IV re-encryption per block: rewriting identical plaintext must
	// change every block's wire bytes (semantic security — Bob cannot tell
	// a rewrite from new data).
	slot := CryptChildBlockSize(b) * ElementBytes
	wireOf := func(addr int) []byte {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), raw[addr*slot:(addr+1)*slot]...)
	}
	before := make(map[int][]byte)
	for _, a := range addrs {
		before[a] = wireOf(a)
	}
	if err := s.WriteBlocks(addrs, data); err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs {
		if bytes.Equal(before[a], wireOf(a)) {
			t.Fatalf("block %d re-encrypted with identical wire bytes (IV reuse)", a)
		}
	}
	// And the rewritten store still decrypts to the same contents.
	if err := s.ReadBlocks(addrs, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("post-rewrite mismatch at element %d", i)
		}
	}
}

// TestDiskVectoredTraceAndStats checks the core refactor contract: ReadMany
// and WriteMany record the identical per-block trace the scalar loop would,
// count one read/write per block, and one round trip per store call under
// the configured batch cap.
func TestDiskVectoredTraceAndStats(t *testing.T) {
	scalar := func() *trace.Recorder {
		d := NewDisk(NewMemStore(16, 4))
		rec := trace.NewRecorder(64)
		d.SetRecorder(rec)
		buf := make([]Element, 4)
		for _, a := range []int{3, 1, 4, 1, 5} {
			d.Read(a, buf)
		}
		for _, a := range []int{2, 6} {
			d.Write(a, buf)
		}
		return rec
	}()

	for _, maxBatch := range []int{0, 1, 2, 3} {
		d := NewDisk(NewMemStore(16, 4))
		d.SetMaxBatch(maxBatch)
		rec := trace.NewRecorder(64)
		d.SetRecorder(rec)
		buf := make([]Element, 5*4)
		d.ReadMany([]int{3, 1, 4, 1, 5}, buf)
		d.WriteMany([]int{2, 6}, buf[:8])
		if trace.FirstDivergence(scalar, rec) != -1 || rec.Len() != scalar.Len() {
			t.Fatalf("maxBatch=%d: vectored trace diverges from scalar", maxBatch)
		}
		st := d.Stats()
		if st.Reads != 5 || st.Writes != 2 {
			t.Fatalf("maxBatch=%d: stats %+v", maxBatch, st)
		}
		wantTrips := int64(2) // one per vectored call
		if maxBatch == 1 {
			wantTrips = 7
		} else if maxBatch == 2 {
			wantTrips = 4 // ceil(5/2) + ceil(2/2)
		} else if maxBatch == 3 {
			wantTrips = 3 // ceil(5/3) + ceil(2/3)
		}
		if st.RoundTrips != wantTrips {
			t.Fatalf("maxBatch=%d: %d round trips, want %d", maxBatch, st.RoundTrips, wantTrips)
		}
	}
}

func TestLatencyStoreAccounting(t *testing.T) {
	inner := NewMemStore(8, 4)
	ls := NewLatencyStore(inner, LatencyOptions{RTT: 10 * time.Millisecond, PerBlock: time.Millisecond})
	buf := make([]Element, 3*4)
	if err := ls.WriteBlocks([]int{1, 2, 3}, buf); err != nil {
		t.Fatal(err)
	}
	if err := ls.ReadBlock(1, buf[:4]); err != nil {
		t.Fatal(err)
	}
	if ls.RoundTrips() != 2 || ls.BlocksMoved() != 4 {
		t.Fatalf("trips=%d blocks=%d, want 2/4", ls.RoundTrips(), ls.BlocksMoved())
	}
	// (10ms + 3·1ms) + (10ms + 1·1ms) = 24ms, accounted without sleeping.
	if ls.ModeledTime() != 24*time.Millisecond {
		t.Fatalf("modeled time %v, want 24ms", ls.ModeledTime())
	}
	ls.ResetNetStats()
	if ls.RoundTrips() != 0 || ls.ModeledTime() != 0 {
		t.Fatal("reset did not clear counters")
	}
}

func TestSeqWriter(t *testing.T) {
	env := NewEnv(16, 4, 32, 1)
	arr := env.D.Alloc(10)
	buf := env.Cache.Buf(3 * 4) // 3-block buffer forces mid-stream flushes
	w := NewSeqWriter(arr, 2, buf)
	for i := 0; i < 7; i++ {
		blk := w.Next()
		for t := range blk {
			blk[t] = Element{Key: uint64(100 + i), Flags: FlagOccupied}
		}
	}
	w.Flush()
	env.Cache.Free(buf)
	got := make([]Element, 4)
	for i := 0; i < 7; i++ {
		arr.Read(2+i, got)
		if got[0].Key != uint64(100+i) {
			t.Fatalf("block %d holds key %d", 2+i, got[0].Key)
		}
	}
}
