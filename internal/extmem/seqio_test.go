package extmem

import (
	"fmt"
	"testing"

	"oblivext/internal/trace"
)

// TestSeqReaderMatchesSyncScan pins the prefetcher's contract: for every
// range shape (empty, sub-chunk, chunk-aligned, ragged tail), the async
// double-buffered reader yields exactly the blocks a synchronous scan
// yields, in order, and issues the identical per-block read trace.
func TestSeqReaderMatchesSyncScan(t *testing.T) {
	const b = 4
	for _, tc := range []struct{ nBlocks, lo, hi, half int }{
		{0, 0, 0, 2}, {1, 0, 1, 2}, {7, 0, 7, 2}, {8, 0, 8, 2},
		{9, 0, 9, 2}, {20, 3, 17, 3}, {16, 8, 16, 4}, {5, 2, 2, 1},
	} {
		t.Run(fmt.Sprintf("n=%d[%d,%d)k=%d", tc.nBlocks, tc.lo, tc.hi, tc.half), func(t *testing.T) {
			mk := func() (*Disk, Array, *trace.Recorder) {
				d := NewDisk(NewMemStore(tc.nBlocks+1, b))
				a := d.Alloc(max(tc.nBlocks, 1))
				buf := make([]Element, b)
				for i := 0; i < tc.nBlocks; i++ {
					for t := range buf {
						buf[t] = Element{Key: uint64(i*100 + t), Flags: FlagOccupied}
					}
					a.Write(i, buf)
				}
				rec := trace.NewRecorder(1 << 16)
				d.SetRecorder(rec)
				return d, a, rec
			}

			read := func(async bool) ([]Element, trace.Summary) {
				_, a, rec := mk()
				buf := make([]Element, 2*tc.half*b)
				r := NewSeqReader(a, tc.lo, tc.hi, buf, async)
				var got []Element
				wantIdx := tc.lo
				for {
					i, blk, ok := r.Next()
					if !ok {
						break
					}
					if i != wantIdx {
						t.Fatalf("async=%v: got index %d, want %d", async, i, wantIdx)
					}
					wantIdx++
					got = append(got, blk...)
				}
				r.Close()
				r.Close() // idempotent
				return got, rec.Summarize()
			}

			syncData, syncTrace := read(false)
			asyncData, asyncTrace := read(true)
			if len(syncData) != (tc.hi-tc.lo)*b || len(asyncData) != len(syncData) {
				t.Fatalf("lengths: sync %d async %d, want %d", len(syncData), len(asyncData), (tc.hi-tc.lo)*b)
			}
			for i := range syncData {
				if syncData[i] != asyncData[i] {
					t.Fatalf("element %d: sync %+v != async %+v", i, syncData[i], asyncData[i])
				}
			}
			if !syncTrace.Equal(asyncTrace) {
				t.Fatalf("traces differ: sync %v async %v", syncTrace, asyncTrace)
			}
		})
	}
}

// TestSeqReaderPrefetchesAhead checks the overlap actually happens: with an
// async reader over a two-chunk range, the second chunk's read must already
// be recorded by the time the caller has consumed the first block — the
// fetch was issued eagerly, not on demand. (Close joins the in-flight fetch,
// which establishes the happens-before needed to inspect the recorder.)
func TestSeqReaderPrefetchesAhead(t *testing.T) {
	const b, nBlocks, half = 4, 8, 2
	d := NewDisk(NewMemStore(nBlocks, b))
	a := d.Alloc(nBlocks)
	buf := make([]Element, b)
	for i := 0; i < nBlocks; i++ {
		a.Write(i, buf)
	}
	rec := trace.NewRecorder(1 << 10)
	d.SetRecorder(rec)
	rbuf := make([]Element, 2*half*b)
	r := NewSeqReader(a, 0, nBlocks, rbuf, true)
	if _, _, ok := r.Next(); !ok {
		t.Fatal("no first block")
	}
	r.Close() // joins the outstanding prefetch of chunk 2
	if got := rec.Len(); got < 2*half {
		t.Fatalf("after one Next + Close, %d block reads recorded — the second chunk was never prefetched", got)
	}
}

// TestSeqWriterPipelinedMatchesPlain pins the pipelined writer's contract:
// for every output shape (sub-half, half-aligned, ragged tail) and every
// mode — plain whole-buffer writer, pipelined sync, pipelined async — the
// array contents are identical, and the two pipelined modes issue the
// identical per-block write trace (their flush boundaries sit at the same
// half-buffer marks whether or not the flush runs in the background).
func TestSeqWriterPipelinedMatchesPlain(t *testing.T) {
	const b = 4
	for _, tc := range []struct{ nBlocks, half int }{
		{1, 2}, {3, 2}, {4, 2}, {5, 2}, {16, 3}, {17, 4}, {2, 1},
	} {
		t.Run(fmt.Sprintf("n=%d_half=%d", tc.nBlocks, tc.half), func(t *testing.T) {
			write := func(mode int) ([]Element, trace.Summary) {
				d := NewDisk(NewMemStore(tc.nBlocks, b))
				a := d.Alloc(tc.nBlocks)
				rec := trace.NewRecorder(1 << 16)
				d.SetRecorder(rec)
				buf := make([]Element, 2*tc.half*b)
				var w *SeqWriter
				switch mode {
				case 0:
					w = NewSeqWriter(a, 0, buf)
				case 1:
					w = NewSeqWriterPipelined(a, 0, buf, false)
				default:
					w = NewSeqWriterPipelined(a, 0, buf, true)
				}
				for i := 0; i < tc.nBlocks; i++ {
					if got := w.Pos(); got != i {
						t.Fatalf("mode %d: Pos() = %d before block %d", mode, got, i)
					}
					blk := w.Next()
					for t := range blk {
						blk[t] = Element{Key: uint64(i*100 + t), Flags: FlagOccupied}
					}
				}
				w.Flush()
				w.Flush() // idempotent
				got := make([]Element, tc.nBlocks*b)
				a.ReadRange(0, tc.nBlocks, got)
				return got, rec.Summarize()
			}
			plainData, _ := write(0)
			syncData, syncTrace := write(1)
			asyncData, asyncTrace := write(2)
			for i := range plainData {
				if plainData[i] != syncData[i] || plainData[i] != asyncData[i] {
					t.Fatalf("element %d differs: plain %+v sync %+v async %+v",
						i, plainData[i], syncData[i], asyncData[i])
				}
			}
			if !syncTrace.Equal(asyncTrace) {
				t.Fatalf("pipelined traces differ: sync %v async %v", syncTrace, asyncTrace)
			}
		})
	}
}

// TestSeqWriterRetarget pins the deal-step usage: one pipelined writer
// retargeted across independent destination arrays, FlushAsync between
// retargets, with the background flush of the previous target still in
// flight while the next target's blocks are produced.
func TestSeqWriterRetarget(t *testing.T) {
	const b, n, targets = 4, 6, 3
	d := NewDisk(NewMemStore(targets*n, b))
	arrs := make([]Array, targets)
	for c := range arrs {
		arrs[c] = d.Alloc(n)
	}
	buf := make([]Element, 2*2*b)
	w := NewSeqWriterPipelined(arrs[0], 0, buf, true)
	for c := 0; c < targets; c++ {
		w.Retarget(arrs[c], 0)
		for i := 0; i < n; i++ {
			blk := w.Next()
			for t := range blk {
				blk[t] = Element{Key: uint64(c*1000 + i)}
			}
		}
		w.FlushAsync()
	}
	w.Join()
	got := make([]Element, n*b)
	for c := 0; c < targets; c++ {
		arrs[c].ReadRange(0, n, got)
		for i := 0; i < n; i++ {
			if got[i*b].Key != uint64(c*1000+i) {
				t.Fatalf("target %d block %d holds key %d", c, i, got[i*b].Key)
			}
		}
	}
}

// TestSeqWriterRetargetUnflushedPanics pins the misuse guard.
func TestSeqWriterRetargetUnflushedPanics(t *testing.T) {
	d := NewDisk(NewMemStore(8, 4))
	a := d.Alloc(8)
	w := NewSeqWriterPipelined(a, 0, make([]Element, 4*4), true)
	w.Next()
	defer func() {
		if recover() == nil {
			t.Fatal("Retarget with unflushed blocks did not panic")
		}
	}()
	w.Retarget(a, 4)
}
