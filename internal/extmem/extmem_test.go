package extmem

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"oblivext/internal/trace"
)

func TestMemStoreRoundTrip(t *testing.T) {
	s := NewMemStore(4, 3)
	in := []Element{{Key: 1, Val: 2, Pos: 3, Flags: 4}, {Key: 5}, {Key: 6}}
	if err := s.WriteBlock(2, in); err != nil {
		t.Fatal(err)
	}
	out := make([]Element, 3)
	if err := s.ReadBlock(2, out); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("element %d: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestMemStoreErrors(t *testing.T) {
	s := NewMemStore(2, 4)
	if err := s.ReadBlock(2, make([]Element, 4)); err == nil {
		t.Error("expected out-of-range read error")
	}
	if err := s.ReadBlock(-1, make([]Element, 4)); err == nil {
		t.Error("expected negative-address read error")
	}
	if err := s.WriteBlock(0, make([]Element, 3)); err == nil {
		t.Error("expected wrong-size write error")
	}
}

func TestMemStoreGrow(t *testing.T) {
	s := NewMemStore(1, 2)
	in := []Element{{Key: 7}, {Key: 8}}
	if err := s.WriteBlock(0, in); err != nil {
		t.Fatal(err)
	}
	s.Grow(10)
	if s.NumBlocks() != 10 {
		t.Fatalf("NumBlocks = %d, want 10", s.NumBlocks())
	}
	out := make([]Element, 2)
	if err := s.ReadBlock(0, out); err != nil {
		t.Fatal(err)
	}
	if out[0].Key != 7 || out[1].Key != 8 {
		t.Fatalf("grow lost data: %+v", out)
	}
}

func TestDiskCountsAndTrace(t *testing.T) {
	d := NewDisk(NewMemStore(8, 2))
	rec := trace.NewRecorder(100)
	d.SetRecorder(rec)
	buf := make([]Element, 2)
	d.Write(3, buf)
	d.Read(3, buf)
	d.Read(5, buf)
	st := d.Stats()
	if st.Reads != 2 || st.Writes != 1 {
		t.Fatalf("stats = %+v, want 2 reads 1 write", st)
	}
	ops := rec.Ops()
	want := []trace.Op{{Kind: trace.Write, Addr: 3}, {Kind: trace.Read, Addr: 3}, {Kind: trace.Read, Addr: 5}}
	if len(ops) != len(want) {
		t.Fatalf("trace len = %d, want %d", len(ops), len(want))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("op %d = %v, want %v", i, ops[i], want[i])
		}
	}
}

func TestDiskAllocatorStackDiscipline(t *testing.T) {
	d := NewDisk(NewMemStore(4, 2))
	a := d.Alloc(3)
	if a.Base() != 0 || a.Len() != 3 {
		t.Fatalf("first alloc = base %d len %d", a.Base(), a.Len())
	}
	mark := d.Mark()
	b := d.Alloc(10) // forces growth
	if b.Base() != 3 {
		t.Fatalf("second alloc base = %d, want 3", b.Base())
	}
	d.Release(mark)
	c := d.Alloc(2)
	if c.Base() != 3 {
		t.Fatalf("post-release alloc base = %d, want 3", c.Base())
	}
}

func TestArraySliceAndBounds(t *testing.T) {
	d := NewDisk(NewMemStore(10, 2))
	a := d.Alloc(10)
	s := a.Slice(4, 8)
	buf := []Element{{Key: 42}, {Key: 43}}
	s.Write(0, buf)
	got := make([]Element, 2)
	a.Read(4, got)
	if got[0].Key != 42 {
		t.Fatalf("slice write not visible through parent: %+v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range array access")
		}
	}()
	s.Read(4, buf)
}

func TestCacheAccounting(t *testing.T) {
	c := NewCache(100, false)
	b1 := c.Buf(60)
	b2 := c.Buf(60) // over capacity, non-strict: recorded not fatal
	if c.HighWater() != 120 {
		t.Fatalf("high water = %d, want 120", c.HighWater())
	}
	c.Free(b1)
	c.Free(b2)
	if c.Used() != 0 {
		t.Fatalf("used = %d after frees, want 0", c.Used())
	}
}

func TestCacheStrictPanics(t *testing.T) {
	c := NewCache(10, true)
	defer func() {
		if recover() == nil {
			t.Error("expected strict cache overflow panic")
		}
	}()
	c.Acquire(11)
}

func TestElementLessOrdering(t *testing.T) {
	occ := func(k, p uint64) Element { return Element{Key: k, Pos: p, Flags: FlagOccupied} }
	empty := Element{}
	cases := []struct {
		a, b Element
		want bool
	}{
		{occ(1, 0), occ(2, 0), true},
		{occ(2, 0), occ(1, 0), false},
		{occ(1, 3), occ(1, 5), true}, // tie broken by Pos
		{occ(1, 5), occ(1, 3), false},
		{occ(99, 0), empty, true}, // occupied before empty
		{empty, occ(0, 0), false},
		{empty, empty, false},
	}
	for i, tc := range cases {
		if got := tc.a.Less(tc.b); got != tc.want {
			t.Errorf("case %d: Less(%+v,%+v) = %v, want %v", i, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestElementColor(t *testing.T) {
	var e Element
	e.Flags = FlagOccupied | FlagMarked
	e.SetColor(12345)
	if e.Color() != 12345 {
		t.Fatalf("color = %d, want 12345", e.Color())
	}
	if !e.Occupied() || !e.Marked() {
		t.Fatal("SetColor clobbered flag bits")
	}
	e.SetColor(7)
	if e.Color() != 7 {
		t.Fatalf("recolor = %d, want 7", e.Color())
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(k, v, p, fl uint64, k2, v2 uint64) bool {
		in := []Element{{k, v, p, fl}, {k2, v2, k ^ v, fl >> 1}}
		buf := make([]byte, 2*ElementBytes)
		EncodeElements(buf, in)
		out := make([]Element, 2)
		DecodeElements(out, buf)
		return out[0] == in[0] && out[1] == in[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blocks.dat")
	s, err := NewFileStore(path, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	in := []Element{{Key: 10}, {Key: 20, Flags: FlagOccupied}, {Key: 30}, {Key: 40}}
	if err := s.WriteBlock(5, in); err != nil {
		t.Fatal(err)
	}
	out := make([]Element, 4)
	if err := s.ReadBlock(5, out); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("element %d mismatch", i)
		}
	}
	// Unwritten blocks read back zeroed.
	if err := s.ReadBlock(0, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != (Element{}) {
		t.Fatalf("unwritten block not zero: %+v", out[0])
	}
}

func TestEncryptedFileStore(t *testing.T) {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i * 7)
	}
	enc, err := NewEncryptor(key)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "enc.dat")
	fs, err := NewFileStore(path, 3, CryptChildBlockSize(2))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewCryptStore(fs, enc, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	in := []Element{{Key: 77, Flags: FlagOccupied}, {Key: 88}}
	if err := s.WriteBlock(1, in); err != nil {
		t.Fatal(err)
	}
	out := make([]Element, 2)
	if err := s.ReadBlock(1, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != in[0] || out[1] != in[1] {
		t.Fatal("encrypted round trip mismatch")
	}
}

// TestReEncryptionIndistinguishable checks the semantic-security property
// the paper assumes: writing the same plaintext twice produces different
// ciphertext bytes on the wire.
func TestReEncryptionIndistinguishable(t *testing.T) {
	key := make([]byte, 32)
	enc, err := NewEncryptor(key)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "reenc.dat")
	fs, err := NewFileStore(path, 1, CryptChildBlockSize(2))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewCryptStore(fs, enc, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	in := []Element{{Key: 1}, {Key: 2}}
	read := func() []byte {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if err := s.WriteBlock(0, in); err != nil {
		t.Fatal(err)
	}
	w1 := read()
	if err := s.WriteBlock(0, in); err != nil {
		t.Fatal(err)
	}
	w2 := read()
	if bytes.Equal(w1, w2) {
		t.Fatal("re-encryption of identical plaintext produced identical wire bytes")
	}
}

func TestEncryptorTamperDetection(t *testing.T) {
	key := make([]byte, 32)
	enc, _ := NewEncryptor(key)
	wire, err := enc.Seal(nil, []byte("hello block"), 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Open(nil, wire, 7); err != nil {
		t.Fatalf("honest open failed: %v", err)
	}
	// The seal is bound to its address: a validly sealed block served from
	// the wrong location must not authenticate.
	if _, err := enc.Open(nil, wire, 8); err == nil {
		t.Fatal("relocated block authenticated")
	}
	wire[len(wire)/2] ^= 1
	if _, err := enc.Open(nil, wire, 7); err == nil {
		t.Fatal("tampered block authenticated")
	}
}

func TestEnvGeometry(t *testing.T) {
	e := NewEnv(16, 8, 64, 1)
	if e.B() != 8 || e.MBlocks() != 8 {
		t.Fatalf("B=%d m=%d, want 8 and 8", e.B(), e.MBlocks())
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for M < 2B")
		}
	}()
	NewEnv(16, 8, 15, 1)
}

func TestHelperMath(t *testing.T) {
	if CeilDiv(7, 3) != 3 || CeilDiv(6, 3) != 2 || CeilDiv(1, 3) != 1 {
		t.Error("CeilDiv wrong")
	}
	if CeilLog2(1) != 0 || CeilLog2(2) != 1 || CeilLog2(3) != 2 || CeilLog2(1024) != 10 {
		t.Error("CeilLog2 wrong")
	}
	if FloorLog2(1) != 0 || FloorLog2(7) != 2 || FloorLog2(8) != 3 {
		t.Error("FloorLog2 wrong")
	}
}
