package replica

import "time"

// Minimal fixed-bucket latency histogram used to derive the hedge delay from
// observed read latencies. Same exponential geometry as the netstore wire
// histograms (50µs·2^i) so operators comparing the two see aligned buckets,
// but deliberately reimplemented here: the replica layer wraps any
// BlockStore and must not depend on the HTTP transport package.
const (
	histBuckets = 18 // 17 bounded + overflow
	histBase    = 50 * time.Microsecond
)

type hist struct {
	counts [histBuckets]int64
	total  int64
}

func (h *hist) observe(d time.Duration) {
	h.total++
	for i := 0; i < histBuckets-1; i++ {
		if d <= histBase<<i {
			h.counts[i]++
			return
		}
	}
	h.counts[histBuckets-1]++
}

// quantile returns an upper bound on the q-quantile: the bound of the first
// bucket whose cumulative count reaches q of the total. Empty → 0; overflow
// bucket → the last finite bound.
func (h *hist) quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	need := int64(q*float64(h.total) + 0.999999)
	if need < 1 {
		need = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i]
		if cum >= need {
			if i >= histBuckets-1 {
				break
			}
			return histBase << i
		}
	}
	return histBase << (histBuckets - 2)
}
