package replica

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"oblivext/internal/chaos"
	"oblivext/internal/extmem"
)

// flaky is a controllable child: a MemStore whose reads/writes can be made
// to fail or dawdle, with call counters.
type flaky struct {
	*extmem.MemStore
	mu         sync.Mutex
	failReads  bool
	failWrites bool
	readDelay  time.Duration
	reads      int
	writes     int
}

func newFlaky(n, b int) *flaky { return &flaky{MemStore: extmem.NewMemStore(n, b)} }

func (f *flaky) set(failReads, failWrites bool) {
	f.mu.Lock()
	f.failReads, f.failWrites = failReads, failWrites
	f.mu.Unlock()
}

func (f *flaky) ReadBlocks(addrs []int, dst []extmem.Element) error {
	f.mu.Lock()
	f.reads++
	fail, delay := f.failReads, f.readDelay
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return errors.New("flaky: read refused")
	}
	return f.MemStore.ReadBlocks(addrs, dst)
}

func (f *flaky) WriteBlocks(addrs []int, src []extmem.Element) error {
	f.mu.Lock()
	f.writes++
	fail := f.failWrites
	f.mu.Unlock()
	if fail {
		return errors.New("flaky: write refused")
	}
	return f.MemStore.WriteBlocks(addrs, src)
}

func (f *flaky) counts() (reads, writes int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reads, f.writes
}

func block(b int, key uint64) []extmem.Element {
	out := make([]extmem.Element, b)
	for i := range out {
		out[i] = extmem.Element{Key: key, Val: uint64(i), Flags: extmem.FlagOccupied}
	}
	return out
}

// TestWriteFansOutReadsPickOne pins the basic replication contract: a write
// lands on every replica, a read costs only one of them, and both return
// correct data.
func TestWriteFansOutReadsPickOne(t *testing.T) {
	c0, c1, c2 := newFlaky(8, 4), newFlaky(8, 4), newFlaky(8, 4)
	s, err := New([]extmem.BlockStore{c0, c1, c2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlocks([]int{0, 3}, append(block(4, 10), block(4, 11)...)); err != nil {
		t.Fatal(err)
	}
	for i, c := range []*flaky{c0, c1, c2} {
		if _, w := c.counts(); w != 1 {
			t.Errorf("replica %d saw %d writes, want 1 (fan-out)", i, w)
		}
	}
	dst := make([]extmem.Element, 2*4)
	if err := s.ReadBlocks([]int{3, 0}, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0].Key != 11 || dst[4].Key != 10 {
		t.Errorf("read back keys %d,%d want 11,10", dst[0].Key, dst[4].Key)
	}
	r0, _ := c0.counts()
	r1, _ := c1.counts()
	r2, _ := c2.counts()
	if r0+r1+r2 != 1 {
		t.Errorf("read touched %d replicas, want exactly 1", r0+r1+r2)
	}
}

// TestReadFailover pins failover: when the preferred replica fails a read,
// the batch reroutes to the next one, the caller sees success, and the
// failure is recorded against the right replica.
func TestReadFailover(t *testing.T) {
	c0, c1 := newFlaky(8, 4), newFlaky(8, 4)
	s, err := New([]extmem.BlockStore{c0, c1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlocks([]int{2}, block(4, 42)); err != nil {
		t.Fatal(err)
	}
	c0.set(true, false)
	dst := make([]extmem.Element, 4)
	if err := s.ReadBlocks([]int{2}, dst); err != nil {
		t.Fatalf("read should fail over, got: %v", err)
	}
	if dst[0].Key != 42 {
		t.Errorf("failover read returned key %d, want 42", dst[0].Key)
	}
	st := s.ReplicaStats()
	if st[0].Failures != 1 || st[0].Failovers != 1 {
		t.Errorf("replica 0: Failures=%d Failovers=%d, want 1,1", st[0].Failures, st[0].Failovers)
	}
	if st[1].Failures != 0 {
		t.Errorf("replica 1 charged %d failures, want 0", st[1].Failures)
	}
}

// TestAllReplicasFailedSurfacesError pins the no-quorum case: when every
// replica holding current data has failed, the read errors instead of
// serving stale or fabricated blocks.
func TestAllReplicasFailedSurfacesError(t *testing.T) {
	c0, c1 := newFlaky(8, 4), newFlaky(8, 4)
	s, err := New([]extmem.BlockStore{c0, c1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlocks([]int{1}, block(4, 9)); err != nil {
		t.Fatal(err)
	}
	c0.set(true, true)
	c1.set(true, true)
	dst := make([]extmem.Element, 4)
	if err := s.ReadBlocks([]int{1}, dst); err == nil {
		t.Fatal("read with every replica failing should error")
	}
}

// TestBreakerOpensAndSkips pins the circuit breaker: consecutive write
// failures open it, an open replica stops receiving traffic (its missed
// writes are marked dirty instead), and writes keep succeeding on the
// survivors.
func TestBreakerOpensAndSkips(t *testing.T) {
	c0, c1 := newFlaky(8, 4), newFlaky(8, 4)
	s, err := New([]extmem.BlockStore{c0, c1}, Options{FailureThreshold: 2, Cooldown: 1000})
	if err != nil {
		t.Fatal(err)
	}
	c0.set(true, true)
	for k := 0; k < 4; k++ {
		if err := s.WriteBlocks([]int{k}, block(4, uint64(k))); err != nil {
			t.Fatalf("write %d should succeed on the survivor: %v", k, err)
		}
	}
	if _, w := c0.counts(); w != 2 {
		t.Errorf("dead replica saw %d writes, want 2 (breaker opens after the threshold)", w)
	}
	st := s.ReplicaStats()
	if st[0].State != "open" {
		t.Errorf("replica 0 state %q, want open", st[0].State)
	}
	if st[0].Dirty != 4 {
		t.Errorf("replica 0 has %d dirty blocks, want 4 (every missed write)", st[0].Dirty)
	}
	if st[1].State != "closed" || st[1].Dirty != 0 {
		t.Errorf("replica 1 state=%q dirty=%d, want closed,0", st[1].State, st[1].Dirty)
	}
}

// TestRecoveryProbeAndReadRepair walks the full recovery arc: breaker opens,
// cooldown expires, a half-open probe write closes it, and a read of blocks
// the replica missed repairs them in place — after which the recovered
// replica serves reads with current data.
func TestRecoveryProbeAndReadRepair(t *testing.T) {
	c0, c1 := newFlaky(8, 4), newFlaky(8, 4)
	s, err := New([]extmem.BlockStore{c0, c1}, Options{FailureThreshold: 1, Cooldown: 2})
	if err != nil {
		t.Fatal(err)
	}
	c0.set(false, true)
	// ops=1: c0 write fails -> breaker opens (threshold 1), addr 0 dirty.
	if err := s.WriteBlocks([]int{0}, block(4, 100)); err != nil {
		t.Fatal(err)
	}
	// ops=2: c0 skipped (open), addr 1 dirty too.
	if err := s.WriteBlocks([]int{1}, block(4, 101)); err != nil {
		t.Fatal(err)
	}
	if st := s.ReplicaStats(); st[0].State != "open" || st[0].Dirty != 2 {
		t.Fatalf("after two writes: state=%q dirty=%d, want open,2", st[0].State, st[0].Dirty)
	}
	c0.set(false, false) // the replica comes back
	// ops=3 >= openUntil: the write doubles as the half-open probe; success
	// closes the breaker and addr 1 is now current on both replicas.
	if err := s.WriteBlocks([]int{1}, block(4, 201)); err != nil {
		t.Fatal(err)
	}
	st := s.ReplicaStats()
	if st[0].State != "closed" {
		t.Fatalf("after probe write: state=%q, want closed", st[0].State)
	}
	if st[0].Dirty != 1 {
		t.Fatalf("after probe write: dirty=%d, want 1 (addr 0 still stale)", st[0].Dirty)
	}
	// Reading addr 0 must avoid the dirty replica, then repair it.
	dst := make([]extmem.Element, 4)
	if err := s.ReadBlocks([]int{0}, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0].Key != 100 {
		t.Errorf("read of missed block returned key %d, want 100 — served stale data?", dst[0].Key)
	}
	st = s.ReplicaStats()
	if st[0].Repairs != 1 || st[0].Dirty != 0 {
		t.Errorf("after read: Repairs=%d Dirty=%d, want 1,0 (read-repair)", st[0].Repairs, st[0].Dirty)
	}
	// The repaired replica is preferred again (lowest index, closed) and
	// must serve the repaired content.
	r0Before, _ := c0.counts()
	if err := s.ReadBlocks([]int{0}, dst); err != nil {
		t.Fatal(err)
	}
	if r0After, _ := c0.counts(); r0After != r0Before+1 {
		t.Errorf("recovered replica did not serve the follow-up read")
	}
	if dst[0].Key != 100 {
		t.Errorf("repaired replica served key %d, want 100", dst[0].Key)
	}
}

// TestHedgedReadWinsOnSlowPrimary pins hedging: with the preferred replica
// slow, the hedge fires after the configured delay and the fast secondary's
// response wins, returning correct data well before the primary finishes.
func TestHedgedReadWinsOnSlowPrimary(t *testing.T) {
	c0, c1 := newFlaky(8, 4), newFlaky(8, 4)
	c0.readDelay = 300 * time.Millisecond
	s, err := New([]extmem.BlockStore{c0, c1}, Options{HedgeAfter: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlocks([]int{5}, block(4, 77)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	dst := make([]extmem.Element, 4)
	if err := s.ReadBlocks([]int{5}, dst); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Errorf("hedged read took %v; the secondary should have won long before the 300ms primary", elapsed)
	}
	if dst[0].Key != 77 {
		t.Errorf("hedged read returned key %d, want 77", dst[0].Key)
	}
	st := s.ReplicaStats()
	if st[1].Hedges != 1 || st[1].HedgeWins != 1 {
		t.Errorf("replica 1: Hedges=%d HedgeWins=%d, want 1,1", st[1].Hedges, st[1].HedgeWins)
	}
}

// driveWorkload runs a fixed read/write sequence against a replica store
// over one chaos-wrapped child, returning the decision logs.
func driveWorkload(t *testing.T, schedule chaos.Schedule) (replicaEvents, chaosDecisions []string) {
	t.Helper()
	faulty := chaos.NewStore(extmem.NewMemStore(16, 4), "r0", schedule)
	healthy := extmem.NewMemStore(16, 4)
	s, err := New([]extmem.BlockStore{faulty, healthy}, Options{FailureThreshold: 2, Cooldown: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		if err := s.WriteBlocks([]int{k}, block(4, uint64(k))); err != nil {
			t.Fatalf("write %d: %v", k, err)
		}
	}
	dst := make([]extmem.Element, 4)
	for k := 0; k < 10; k++ {
		if err := s.ReadBlocks([]int{k}, dst); err != nil {
			t.Fatalf("read %d: %v", k, err)
		}
		if dst[0].Key != uint64(k) {
			t.Fatalf("read %d returned key %d under chaos", k, dst[0].Key)
		}
	}
	return s.Events(), faulty.Decisions()
}

// TestDeterministicFailoverReplay pins the headline determinism property at
// the unit level: the same fault schedule, replayed against the same
// workload, drives the breaker and failover machinery through an identical
// decision log — no wall-clock, no randomness, nothing data-dependent.
func TestDeterministicFailoverReplay(t *testing.T) {
	schedule := chaos.Schedule{
		{Target: "r0", At: 3, For: 4, Kind: chaos.Err500},
		{Target: "r0", At: 12, For: 2, Kind: chaos.Drop},
	}
	ev1, cd1 := driveWorkload(t, schedule)
	ev2, cd2 := driveWorkload(t, schedule)
	if !reflect.DeepEqual(ev1, ev2) {
		t.Errorf("replica decision logs diverged across replays:\nrun1: %v\nrun2: %v", ev1, ev2)
	}
	if !reflect.DeepEqual(cd1, cd2) {
		t.Errorf("chaos decision logs diverged across replays:\nrun1: %v\nrun2: %v", cd1, cd2)
	}
	if len(ev1) == 0 || len(cd1) == 0 {
		t.Errorf("schedule injected nothing (replica events %d, chaos decisions %d) — the replay assertion is vacuous",
			len(ev1), len(cd1))
	}
}

// TestNetModelCounts pins the group's NetModel view: one logical round trip
// per interaction regardless of fan-out width, blocks counted once.
func TestNetModelCounts(t *testing.T) {
	mk := func() extmem.BlockStore {
		return extmem.NewLatencyStore(extmem.NewMemStore(8, 4),
			extmem.LatencyOptions{RTT: time.Millisecond})
	}
	s, err := New([]extmem.BlockStore{mk(), mk(), mk()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlocks([]int{0, 1}, append(block(4, 1), block(4, 2)...)); err != nil {
		t.Fatal(err)
	}
	dst := make([]extmem.Element, 2*4)
	if err := s.ReadBlocks([]int{0, 1}, dst); err != nil {
		t.Fatal(err)
	}
	if got := s.RoundTrips(); got != 2 {
		t.Errorf("RoundTrips = %d, want 2 (one per logical interaction)", got)
	}
	if got := s.BlocksMoved(); got != 4 {
		t.Errorf("BlocksMoved = %d, want 4 (logical blocks, not x replicas)", got)
	}
	// Critical path: the write fanned out in parallel (1ms each, max 1ms)
	// and the read touched one replica (1ms): 2ms total, not the 4ms serial
	// sum over participants.
	if got := s.ModeledTime(); got != 2*time.Millisecond {
		t.Errorf("ModeledTime = %v, want 2ms (critical path)", got)
	}
}

// TestGeometryValidation pins the constructor's checks.
func TestGeometryValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("zero children should be rejected")
	}
	if _, err := New([]extmem.BlockStore{extmem.NewMemStore(4, 4), extmem.NewMemStore(4, 8)}, Options{}); err == nil {
		t.Error("mismatched block sizes should be rejected")
	}
}

// TestScalarOps smoke-tests the scalar BlockStore surface.
func TestScalarOps(t *testing.T) {
	s, err := New([]extmem.BlockStore{newFlaky(8, 4), newFlaky(8, 4)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlock(6, block(4, 5)); err != nil {
		t.Fatal(err)
	}
	dst := make([]extmem.Element, 4)
	if err := s.ReadBlock(6, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0].Key != 5 {
		t.Errorf("scalar read returned key %d, want 5", dst[0].Key)
	}
	if got, want := fmt.Sprint(s.NumBlocks(), s.BlockSize(), s.NumReplicas()), "8 4 2"; got != want {
		t.Errorf("geometry %s, want %s", got, want)
	}
}
