package replica

import (
	"testing"

	"oblivext/internal/extmem"
)

// TestStaleAuthenticatedDivergence pins the freshness gap and its actual
// defense. CryptStore's MAC binds a sealed block to its address but carries
// no freshness counter, so a replica rolled back to an OLD sealed block at
// the SAME address authenticates cleanly — cryptography does not catch
// replica divergence (documented in docs/THREAT_MODEL.md). What does catch
// it, for the failure mode the fleet actually produces (a replica that
// missed writes while down), is the replica layer's dirty tracking: a
// replica is never read at an address it missed a write for until
// read-repair has overwritten it.
func TestStaleAuthenticatedDivergence(t *testing.T) {
	const b = 4
	enc, err := extmem.NewEncryptor(make([]byte, 32))
	if err != nil {
		t.Fatal(err)
	}
	cb := extmem.CryptChildBlockSize(b)

	// Part 1: pin the gap. An old sealed block restored at the same address
	// opens without error — the MAC authenticates stale data.
	backend := extmem.NewMemStore(8, cb)
	cs, err := extmem.NewCryptStore(backend, enc, b)
	if err != nil {
		t.Fatal(err)
	}
	write := func(s extmem.BlockStore, addr int, key uint64) {
		t.Helper()
		src := make([]extmem.Element, b)
		src[0] = extmem.Element{Key: key, Flags: extmem.FlagOccupied}
		if err := s.WriteBlock(addr, src); err != nil {
			t.Fatal(err)
		}
	}
	write(cs, 3, 1)
	oldWire := make([]extmem.Element, cb)
	if err := backend.ReadBlock(3, oldWire); err != nil {
		t.Fatal(err)
	}
	write(cs, 3, 2)
	if err := backend.WriteBlock(3, oldWire); err != nil { // Bob rolls the slot back
		t.Fatal(err)
	}
	dst := make([]extmem.Element, b)
	if err := cs.ReadBlock(3, dst); err != nil {
		t.Fatalf("rollback to an old seal at the same address should AUTHENTICATE (the gap this test pins): %v", err)
	}
	if dst[0].Key != 1 {
		t.Fatalf("read back key %d; the rolled-back slot should open as the stale value 1", dst[0].Key)
	}

	// Part 2: the fleet's defense. Two replicas under one CryptStore; one
	// replica misses an update (it was down), so it diverges while holding a
	// perfectly authenticated old seal. Dirty tracking keeps reads off it,
	// and read-repair reconverges it, even with the fresher replica breaking
	// afterward.
	r0 := newFlaky(8, cb)
	r1 := newFlaky(8, cb)
	grp, err := New([]extmem.BlockStore{r0, r1}, Options{FailureThreshold: 1, Cooldown: 1})
	if err != nil {
		t.Fatal(err)
	}
	cs2, err := extmem.NewCryptStore(grp, enc, b)
	if err != nil {
		t.Fatal(err)
	}
	write(cs2, 5, 10) // both replicas hold seal(10)
	r0.set(false, true)
	write(cs2, 5, 20) // r0 down: only r1 holds seal(20); r0 is dirty at 5
	r0.set(false, false)
	// r0 is back, holding stale-but-authenticated data. The next read must
	// come from r1 and repair r0 in place.
	if err := cs2.ReadBlock(5, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0].Key != 20 {
		t.Fatalf("read served key %d — the stale authenticated replica leaked through; want 20", dst[0].Key)
	}
	if st := grp.ReplicaStats(); st[0].Dirty != 0 || st[0].Repairs == 0 {
		t.Fatalf("replica 0 not repaired: %+v", st[0])
	}
	// After repair, r0 alone must serve the current value: kill r1 and read.
	r1.set(true, true)
	if err := cs2.ReadBlock(5, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0].Key != 20 {
		t.Fatalf("repaired replica served key %d, want 20", dst[0].Key)
	}
}
