// Package replica makes one logical BlockStore out of R redundant children —
// the fault-tolerance layer of the outsourced-data deployment. Where
// shard.ShardedStore partitions the address space across many Bobs, a
// replica.Store gives every Bob a full copy: writes fan out to every live
// replica, reads are served by the healthiest one, and the loss of any R-1
// replicas costs availability of nothing.
//
// Obliviousness is preserved by construction. Each replica observes (a
// fault-determined subsequence of) the same per-block access trace the
// algorithms emit — replication duplicates the adversary's view, it does not
// widen it. Every routing decision this layer makes (which replica serves a
// read, which breaker opens, when a probe fires) is a function of the fault
// history and the public geometry alone, never of block contents or of the
// input being processed; the chaos tests replay identical fault schedules
// against different inputs and assert the decision logs and surviving
// journals are bit-identical.
//
// Health tracking is a per-replica circuit breaker: consecutive failures
// beyond a threshold open the breaker, and an open breaker is skipped (its
// missed writes are remembered as dirty blocks) until a cooldown expires and
// a half-open probe is allowed through. The cooldown is measured in group
// interactions, not wall time, so a replayed fault schedule drives the
// breaker through exactly the same transitions — determinism is what lets
// the tests assert failover leaks nothing.
//
// A replica that missed writes (breaker open, or the write itself failed) is
// dirty at those addresses: reads never route to a replica dirty at any
// requested address, and a later successful read repairs the dirty replicas
// by writing the freshly-read blocks back to them. This, not the crypto
// layer, is what prevents stale-but-authenticated data from being served:
// the sealing MAC binds ciphertext to an address but carries no freshness
// counter, so an old sealed block at the right address authenticates — see
// THREAT_MODEL.md.
//
// Hedged reads are the one wall-clock feature: when enabled, a read still
// outstanding after a delay derived from the observed P95 is raced against a
// second replica and the first response wins. Hedging trades determinism for
// tail latency and stays off in the deterministic chaos harness.
package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"oblivext/internal/extmem"
)

// Breaker states.
const (
	stClosed = iota
	stOpen
	stHalfOpen
)

func stateName(st int) string {
	switch st {
	case stOpen:
		return "open"
	case stHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Options configures a Store.
type Options struct {
	// FailureThreshold is how many consecutive failures open a replica's
	// breaker (default 3). A failure while half-open reopens immediately.
	FailureThreshold int
	// Cooldown is how many group interactions an open breaker stays open
	// before a half-open probe may route traffic to it again (default 16).
	// Interactions, not wall time: replayed fault schedules must drive the
	// breaker deterministically.
	Cooldown int
	// HedgeAfter enables hedged reads when positive: a read outstanding for
	// longer than the hedge delay is raced against a second replica. The
	// delay starts at HedgeAfter and switches to the observed P95 read
	// latency once HedgeMinSamples reads have been measured. Zero disables
	// hedging (the deterministic configuration).
	HedgeAfter time.Duration
	// HedgeMinSamples is how many measured reads the P95 estimate needs
	// before it replaces HedgeAfter as the hedge delay (default 32).
	HedgeMinSamples int
}

// Stats is one replica's cumulative view of the traffic and faults it saw.
type Stats struct {
	RoundTrips  int64         // sub-batches dispatched to this replica
	BlocksMoved int64         // blocks those sub-batches carried
	ModeledTime time.Duration // modeled delay charged by this replica's chain
	Failures    int64         // failed sub-batches
	Failovers   int64         // read sub-batches rerouted away after a failure
	Hedges      int64         // hedged reads launched against this replica
	HedgeWins   int64         // hedged reads this replica won as the secondary
	Repairs     int64         // read-repair writes applied to this replica
	Dirty       int           // addresses currently known stale on this replica
	State       string        // breaker state at snapshot time
}

// health is one replica's breaker.
type health struct {
	state       int
	consecFails int
	openUntil   int64 // group interaction count at which a probe is allowed
}

// Store implements extmem.BlockStore over R replica children. Like every
// BlockStore it is driven by a single caller (the Disk); the concurrency is
// internal — write fan-outs, failover retries, and hedge races. Because a
// hedge loser may still be touching its child after the interaction that
// launched it has returned, every child is guarded by its own mutex.
type Store struct {
	children []extmem.BlockStore
	r        int
	b        int

	repMu []sync.Mutex // serializes all access to children[i]

	mu     sync.Mutex // guards everything below
	ops    int64      // logical interactions; the breaker's clock
	hp     []health
	dirty  []map[int]struct{} // per replica: addresses that missed writes
	stats  []Stats
	trips  int64 // logical interactions (NetModel)
	blocks int64
	crit   time.Duration // critical-path modeled time
	lat    hist          // measured read latencies, feeds the hedge delay
	events []string      // breaker/failover decision log, for replay checks

	failThresh  int
	cooldown    int64
	hedgeAfter  time.Duration
	hedgeMinObs int64
}

// New builds a replicated store over the given children, which must all
// share one block size. A single child degenerates to a pass-through with
// breaker accounting; zero children is an error.
func New(children []extmem.BlockStore, opts Options) (*Store, error) {
	if len(children) == 0 {
		return nil, errors.New("replica: need at least one child store")
	}
	b := children[0].BlockSize()
	for i, c := range children {
		if c.BlockSize() != b {
			return nil, fmt.Errorf("replica: child %d block size %d != %d", i, c.BlockSize(), b)
		}
	}
	if opts.FailureThreshold <= 0 {
		opts.FailureThreshold = 3
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 16
	}
	if opts.HedgeMinSamples <= 0 {
		opts.HedgeMinSamples = 32
	}
	r := len(children)
	s := &Store{
		children:    children,
		r:           r,
		b:           b,
		repMu:       make([]sync.Mutex, r),
		hp:          make([]health, r),
		dirty:       make([]map[int]struct{}, r),
		stats:       make([]Stats, r),
		failThresh:  opts.FailureThreshold,
		cooldown:    int64(opts.Cooldown),
		hedgeAfter:  opts.HedgeAfter,
		hedgeMinObs: int64(opts.HedgeMinSamples),
	}
	for i := range s.dirty {
		s.dirty[i] = make(map[int]struct{})
	}
	return s, nil
}

// NumReplicas returns R.
func (s *Store) NumReplicas() int { return s.r }

// logf appends one line to the decision log (caller holds s.mu).
func (s *Store) logf(format string, args ...any) {
	s.events = append(s.events, fmt.Sprintf(format, args...))
}

// Events returns a copy of the decision log: one line per breaker
// transition, failover, and repair, each stamped with the interaction count
// it happened at. Two runs under the same fault schedule produce identical
// logs regardless of the data being processed — the replay tests diff them.
func (s *Store) Events() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.events...)
}

// ReplicaStats returns a snapshot of the per-replica counters.
func (s *Store) ReplicaStats() []Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Stats, s.r)
	copy(out, s.stats)
	for i := range out {
		out[i].Dirty = len(s.dirty[i])
		out[i].State = stateName(s.hp[i].state)
	}
	return out
}

// ReadLatencyQuantile returns an upper bound on the q-quantile of observed
// read-leg flight times (for hedged reads, the winning leg's own
// launch-to-completion time, excluding the hedge wait) — the same histogram
// the adaptive hedge delay derives its P95 from, estimating healthy-path
// latency. Zero until a read has completed.
func (s *Store) ReadLatencyQuantile(q float64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lat.quantile(q)
}

// available reports whether replica i may be routed traffic right now
// (caller holds s.mu): breaker closed, already half-open, or open with an
// expired cooldown (routing to it is the half-open probe).
func (s *Store) available(i int) bool {
	h := &s.hp[i]
	return h.state == stClosed || h.state == stHalfOpen ||
		(h.state == stOpen && s.ops >= h.openUntil)
}

// markProbing flips an open-with-expired-cooldown breaker to half-open when
// replica i is about to receive probe traffic (caller holds s.mu).
func (s *Store) markProbing(i int) {
	if h := &s.hp[i]; h.state == stOpen && s.ops >= h.openUntil {
		h.state = stHalfOpen
		s.logf("ops=%d replica=%d half-open probe", s.ops, i)
	}
}

// noteSuccess records a successful sub-batch on replica i (caller holds
// s.mu): any non-closed breaker closes.
func (s *Store) noteSuccess(i int) {
	h := &s.hp[i]
	h.consecFails = 0
	if h.state != stClosed {
		h.state = stClosed
		s.logf("ops=%d replica=%d closed", s.ops, i)
	}
}

// noteFailure records a failed sub-batch on replica i (caller holds s.mu):
// a half-open probe reopens immediately, a closed breaker opens once the
// consecutive-failure threshold is reached.
func (s *Store) noteFailure(i int) {
	h := &s.hp[i]
	h.consecFails++
	s.stats[i].Failures++
	if h.state == stHalfOpen || (h.state != stOpen && h.consecFails >= s.failThresh) {
		h.state = stOpen
		h.openUntil = s.ops + s.cooldown
		s.logf("ops=%d replica=%d open (fails=%d, retry at ops=%d)", s.ops, i, h.consecFails, h.openUntil)
	}
}

// markDirty remembers that replica i missed the current write at addrs
// (caller holds s.mu).
func (s *Store) markDirty(i int, addrs []int) {
	for _, a := range addrs {
		s.dirty[i][a] = struct{}{}
	}
}

// clearDirty forgets dirt on replica i at addrs after a successful write or
// repair (caller holds s.mu).
func (s *Store) clearDirty(i int, addrs []int) {
	for _, a := range addrs {
		delete(s.dirty[i], a)
	}
}

// cleanAt reports whether replica i holds current data at addr (caller
// holds s.mu).
func (s *Store) cleanAt(i, addr int) bool {
	_, stale := s.dirty[i][addr]
	return !stale
}

// tierOf ranks replica i as a read candidate (caller holds s.mu): closed
// breakers first, then half-open probes, then open ones (the desperation
// tier — a clean-but-suspect replica still beats no data at all). Lower is
// better; ties break toward the lower index.
func (s *Store) tierOf(i int) int {
	h := &s.hp[i]
	switch {
	case h.state == stClosed:
		return 0
	case h.state == stHalfOpen || (h.state == stOpen && s.ops >= h.openUntil):
		return 1
	default:
		return 2
	}
}

// modeled reads child i's cumulative modeled delay when it carries a cost
// model, 0 otherwise.
func (s *Store) modeled(i int) time.Duration {
	if m, ok := s.children[i].(extmem.NetModel); ok {
		return m.ModeledTime()
	}
	return 0
}

// callRead performs one sub-read on replica i under its mutex, returning the
// modeled-time delta it charged.
func (s *Store) callRead(ctx context.Context, i int, addrs []int, dst []extmem.Element) (time.Duration, error) {
	s.repMu[i].Lock()
	defer s.repMu[i].Unlock()
	t0 := s.modeled(i)
	err := extmem.ReadBlocksCtx(ctx, s.children[i], addrs, dst)
	return s.modeled(i) - t0, err
}

// callWrite is the write dual of callRead.
func (s *Store) callWrite(ctx context.Context, i int, addrs []int, src []extmem.Element) (time.Duration, error) {
	s.repMu[i].Lock()
	defer s.repMu[i].Unlock()
	t0 := s.modeled(i)
	err := extmem.WriteBlocksCtx(ctx, s.children[i], addrs, src)
	return s.modeled(i) - t0, err
}

// ReadBlock implements BlockStore via a one-block batch.
func (s *Store) ReadBlock(addr int, dst []extmem.Element) error {
	return s.ReadBlocks([]int{addr}, dst)
}

// WriteBlock implements BlockStore via a one-block batch.
func (s *Store) WriteBlock(addr int, src []extmem.Element) error {
	return s.WriteBlocks([]int{addr}, src)
}

// ReadBlocks implements BlockStore.
func (s *Store) ReadBlocks(addrs []int, dst []extmem.Element) error {
	return s.ReadBlocksCtx(context.Background(), addrs, dst)
}

// WriteBlocks implements BlockStore.
func (s *Store) WriteBlocks(addrs []int, src []extmem.Element) error {
	return s.WriteBlocksCtx(context.Background(), addrs, src)
}

// assignment is one failover round's routing decision: per participating
// replica, the addresses it serves and their positions in the logical batch.
type assignment struct {
	rep   int
	addrs []int
	pos   []int
}

// assign routes each pending address to its best candidate replica (caller
// holds s.mu): the clean replica in the lowest tier, lowest index breaking
// ties, never a replica excluded by an earlier failure this interaction.
// An address with no candidate at all yields an error — every replica that
// holds current data for it has already failed.
func (s *Store) assign(addrs, pos []int, excluded []bool) ([]assignment, error) {
	perRep := make([]assignment, 0, 2)
	idx := make([]int, s.r)
	for i := range idx {
		idx[i] = -1
	}
	for j, a := range addrs {
		best, bestTier := -1, 3
		for i := 0; i < s.r; i++ {
			if excluded[i] || !s.cleanAt(i, a) {
				continue
			}
			if t := s.tierOf(i); t < bestTier {
				best, bestTier = i, t
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("replica: no live replica holds current data for block %d", a)
		}
		if idx[best] < 0 {
			idx[best] = len(perRep)
			perRep = append(perRep, assignment{rep: best})
		}
		g := &perRep[idx[best]]
		g.addrs = append(g.addrs, a)
		g.pos = append(g.pos, pos[j])
	}
	for i := range perRep {
		s.markProbing(perRep[i].rep)
	}
	return perRep, nil
}

// ReadBlocksCtx implements extmem.CtxStore. Each address is served by the
// healthiest replica holding current data for it; a failed sub-batch marks
// the replica, excludes it for the rest of the interaction, and reroutes its
// addresses to the next candidate (failover). After a successful read, any
// live replica known dirty at the addresses just read is repaired in place
// with the freshly-read blocks.
func (s *Store) ReadBlocksCtx(ctx context.Context, addrs []int, dst []extmem.Element) error {
	if len(dst) != len(addrs)*s.b {
		return fmt.Errorf("replica: buffer length %d != %d blocks of %d elements", len(dst), len(addrs), s.b)
	}
	s.mu.Lock()
	s.ops++
	s.trips++
	s.blocks += int64(len(addrs))
	s.mu.Unlock()
	if len(addrs) == 0 {
		return nil
	}

	pending := append([]int(nil), addrs...)
	pos := make([]int, len(addrs))
	for i := range pos {
		pos[i] = i
	}
	excluded := make([]bool, s.r)
	first := true
	var worst time.Duration
	for len(pending) > 0 {
		s.mu.Lock()
		groups, err := s.assign(pending, pos, excluded)
		s.mu.Unlock()
		if err != nil {
			return err
		}
		if first && len(groups) == 1 && s.hedgeEligible(groups[0].rep, excluded) {
			// The whole batch rides one replica and another clean candidate
			// exists: the hedge race handles this interaction end to end.
			if done, err := s.hedgedRead(ctx, groups[0], excluded, dst, &worst); done {
				if err == nil {
					s.repair(ctx, addrs, dst)
				}
				s.finishRead(worst)
				return err
			}
			// Hedge machinery declined or both legs failed over; fall through
			// to the plain failover loop with the losers excluded.
		}
		first = false

		type result struct {
			delta time.Duration
			err   error
		}
		results := make([]result, len(groups))
		started := time.Now()
		if len(groups) == 1 {
			g := groups[0]
			buf := dst
			scatter := false
			if len(g.addrs) != len(addrs) {
				buf = make([]extmem.Element, len(g.addrs)*s.b)
				scatter = true
			}
			d, err := s.callRead(ctx, g.rep, g.addrs, buf)
			results[0] = result{d, err}
			if err == nil && scatter {
				s.scatterInto(dst, buf, g.pos)
			}
		} else {
			var wg sync.WaitGroup
			bufs := make([][]extmem.Element, len(groups))
			for gi := range groups {
				wg.Add(1)
				go func(gi int) {
					defer wg.Done()
					g := groups[gi]
					bufs[gi] = make([]extmem.Element, len(g.addrs)*s.b)
					d, err := s.callRead(ctx, g.rep, g.addrs, bufs[gi])
					results[gi] = result{d, err}
				}(gi)
			}
			wg.Wait()
			for gi, g := range groups {
				if results[gi].err == nil {
					s.scatterInto(dst, bufs[gi], g.pos)
				}
			}
		}
		elapsed := time.Since(started)

		// Fold outcomes in replica-index order (groups are built in
		// first-use order, but health updates must not depend on goroutine
		// scheduling — sort by replica index via a simple pass).
		var nextPending, nextPos []int
		s.mu.Lock()
		for i := 0; i < s.r; i++ {
			for gi, g := range groups {
				if g.rep != i {
					continue
				}
				s.stats[i].RoundTrips++
				s.stats[i].BlocksMoved += int64(len(g.addrs))
				s.stats[i].ModeledTime += results[gi].delta
				if results[gi].delta > worst {
					worst = results[gi].delta
				}
				if results[gi].err == nil {
					s.noteSuccess(i)
					s.lat.observe(elapsed)
				} else {
					s.noteFailure(i)
					s.stats[i].Failovers++
					s.logf("ops=%d replica=%d read failover (%d blocks)", s.ops, i, len(g.addrs))
					excluded[i] = true
					nextPending = append(nextPending, g.addrs...)
					nextPos = append(nextPos, g.pos...)
				}
			}
		}
		s.mu.Unlock()
		pending, pos = nextPending, nextPos
	}

	s.repair(ctx, addrs, dst)
	s.finishRead(worst)
	return nil
}

// finishRead folds the interaction's critical-path delay into the group
// model.
func (s *Store) finishRead(worst time.Duration) {
	s.mu.Lock()
	s.crit += worst
	s.mu.Unlock()
}

// scatterInto copies sub-batch blocks back to their logical positions.
func (s *Store) scatterInto(dst, buf []extmem.Element, pos []int) {
	for j, p := range pos {
		copy(dst[p*s.b:(p+1)*s.b], buf[j*s.b:(j+1)*s.b])
	}
}

// repair writes freshly-read blocks back to live replicas known dirty at
// those addresses — synchronous read-repair, in replica-index order so the
// decision log is deterministic. Repair failures feed the breaker like any
// other write failure; the dirt stays recorded.
func (s *Store) repair(ctx context.Context, addrs []int, data []extmem.Element) {
	for i := 0; i < s.r; i++ {
		s.mu.Lock()
		if !s.available(i) || len(s.dirty[i]) == 0 {
			s.mu.Unlock()
			continue
		}
		var raddrs []int
		var rpos []int
		for j, a := range addrs {
			if !s.cleanAt(i, a) {
				raddrs = append(raddrs, a)
				rpos = append(rpos, j)
			}
		}
		if len(raddrs) == 0 {
			s.mu.Unlock()
			continue
		}
		s.markProbing(i)
		s.mu.Unlock()

		buf := make([]extmem.Element, len(raddrs)*s.b)
		for j, p := range rpos {
			copy(buf[j*s.b:(j+1)*s.b], data[p*s.b:(p+1)*s.b])
		}
		delta, err := s.callWrite(ctx, i, raddrs, buf)

		s.mu.Lock()
		s.stats[i].RoundTrips++
		s.stats[i].BlocksMoved += int64(len(raddrs))
		s.stats[i].ModeledTime += delta
		if err == nil {
			s.noteSuccess(i)
			s.clearDirty(i, raddrs)
			s.stats[i].Repairs++
			s.logf("ops=%d replica=%d repaired %d blocks (%d still dirty)", s.ops, i, len(raddrs), len(s.dirty[i]))
		} else {
			s.noteFailure(i)
		}
		s.mu.Unlock()
	}
}

// WriteBlocksCtx implements extmem.CtxStore. The write fans out to every
// replica whose breaker admits traffic; replicas skipped or failed are
// marked dirty at the written addresses (a later read must not be served
// stale data from them), and the write succeeds as long as at least one
// replica took it.
func (s *Store) WriteBlocksCtx(ctx context.Context, addrs []int, src []extmem.Element) error {
	if len(src) != len(addrs)*s.b {
		return fmt.Errorf("replica: buffer length %d != %d blocks of %d elements", len(src), len(addrs), s.b)
	}
	s.mu.Lock()
	s.ops++
	s.trips++
	s.blocks += int64(len(addrs))
	targets := make([]bool, s.r)
	for i := 0; i < s.r; i++ {
		if s.available(i) {
			targets[i] = true
			s.markProbing(i)
		} else {
			s.markDirty(i, addrs)
		}
	}
	s.mu.Unlock()
	if len(addrs) == 0 {
		return nil
	}

	deltas := make([]time.Duration, s.r)
	errs := make([]error, s.r)
	var wg sync.WaitGroup
	for i := 0; i < s.r; i++ {
		if !targets[i] {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			deltas[i], errs[i] = s.callWrite(ctx, i, addrs, src)
		}(i)
	}
	wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	okCount := 0
	var worst time.Duration
	var firstErr error
	for i := 0; i < s.r; i++ {
		if !targets[i] {
			continue
		}
		s.stats[i].RoundTrips++
		s.stats[i].BlocksMoved += int64(len(addrs))
		s.stats[i].ModeledTime += deltas[i]
		if deltas[i] > worst {
			worst = deltas[i]
		}
		if errs[i] == nil {
			okCount++
			s.noteSuccess(i)
			// This replica now holds the newest data at addrs, whatever it
			// missed before.
			s.clearDirty(i, addrs)
		} else {
			s.noteFailure(i)
			s.markDirty(i, addrs)
			s.logf("ops=%d replica=%d write failed (%d blocks dirty)", s.ops, i, len(s.dirty[i]))
			if firstErr == nil {
				firstErr = fmt.Errorf("replica %d: %w", i, errs[i])
			}
		}
	}
	s.crit += worst
	if okCount == 0 {
		if firstErr == nil {
			firstErr = errors.New("replica: no replica admitted the write")
		}
		return firstErr
	}
	return nil
}

// hedgeEligible reports whether a hedged read may run: hedging configured,
// the primary has a clean, available alternative, and the children support
// cancellation (without CtxStore the loser could not be abandoned).
func (s *Store) hedgeEligible(primary int, excluded []bool) bool {
	if s.hedgeAfter <= 0 {
		return false
	}
	return s.hedgeAlt(primary, excluded, nil) >= 0
}

// hedgeAlt picks the best clean available alternative to primary for the
// given addresses (nil = any), or -1.
func (s *Store) hedgeAlt(primary int, excluded []bool, addrs []int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	best, bestTier := -1, 2 // desperation-tier replicas are not hedge targets
	for i := 0; i < s.r; i++ {
		if i == primary || excluded[i] || !s.available(i) {
			continue
		}
		clean := true
		for _, a := range addrs {
			if !s.cleanAt(i, a) {
				clean = false
				break
			}
		}
		if !clean {
			continue
		}
		if t := s.tierOf(i); t < bestTier {
			best, bestTier = i, t
		}
	}
	return best
}

// hedgeDelay returns the current hedge trigger: the observed P95 read
// latency once enough samples exist, the configured bootstrap before that.
func (s *Store) hedgeDelay() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lat.total >= s.hedgeMinObs {
		if p := s.lat.quantile(0.95); p > 0 {
			return p
		}
	}
	return s.hedgeAfter
}

// hedgedRead races the primary assignment against the best alternative
// replica: the secondary launches only if the primary is still outstanding
// after the hedge delay, and the first successful response wins while the
// loser's context is canceled. Reports done=false when both legs failed —
// the caller's failover loop takes over with both replicas excluded.
func (s *Store) hedgedRead(ctx context.Context, g assignment, excluded []bool, dst []extmem.Element, worst *time.Duration) (done bool, err error) {
	alt := s.hedgeAlt(g.rep, excluded, g.addrs)
	if alt < 0 {
		return false, nil
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type leg struct {
		rep    int
		buf    []extmem.Element
		delta  time.Duration
		flight time.Duration // the leg's own launch-to-completion time
		err    error
	}
	results := make(chan leg, 2)
	launch := func(rep int) {
		buf := make([]extmem.Element, len(g.addrs)*s.b)
		go func() {
			t0 := time.Now()
			d, err := s.callRead(raceCtx, rep, g.addrs, buf)
			results <- leg{rep: rep, buf: buf, delta: d, flight: time.Since(t0), err: err}
		}()
	}
	launch(g.rep)
	legs := 1
	timer := time.NewTimer(s.hedgeDelay())
	defer timer.Stop()

	var winner *leg
	var fails []leg
	for winner == nil && legs > 0 {
		select {
		case <-timer.C:
			if legs == 1 && len(fails) == 0 {
				launch(alt)
				legs++
				s.mu.Lock()
				s.stats[alt].Hedges++
				s.mu.Unlock()
			}
		case l := <-results:
			legs--
			if l.err == nil {
				winner = &l
			} else {
				fails = append(fails, l)
				if legs == 0 && l.rep == g.rep && len(fails) == 1 {
					// Primary failed before the hedge fired: give the
					// alternative its chance immediately.
					launch(alt)
					legs++
				}
			}
		}
	}
	cancel() // the loser, if any, stops retrying now

	s.mu.Lock()
	defer s.mu.Unlock()
	account := func(l *leg, won bool) {
		s.stats[l.rep].RoundTrips++
		s.stats[l.rep].BlocksMoved += int64(len(g.addrs))
		s.stats[l.rep].ModeledTime += l.delta
		if l.delta > *worst {
			*worst = l.delta
		}
		if l.err == nil {
			s.noteSuccess(l.rep)
		} else {
			s.noteFailure(l.rep)
			s.stats[l.rep].Failovers++
			excluded[l.rep] = true
		}
		if won && l.rep == alt {
			s.stats[alt].HedgeWins++
		}
	}
	for i := range fails {
		account(&fails[i], false)
	}
	if winner == nil {
		// Both legs failed; the failover loop reassigns what's left.
		return false, nil
	}
	account(winner, true)
	// Feed the histogram the winning leg's own flight time, not the race's
	// total elapsed: the histogram estimates *healthy* read latency so the
	// adaptive delay hedges the tail above it. Observing delay+flight for
	// every rescue would ratchet the P95 up one bucket per win until hedging
	// disabled itself.
	s.lat.observe(winner.flight)
	s.scatterInto(dst, winner.buf, g.pos)
	// The detached loser (still in flight, canceled) is ignored entirely:
	// its result arrives on a buffered channel nobody reads and its health
	// impact is unknowable without waiting, which would defeat the hedge.
	return true, nil
}

// NumBlocks implements BlockStore: the group's serving capacity is the best
// replica's, not the worst's — a replica that failed to grow is behind, and
// reads routed to addresses it lacks fail over like any other fault.
func (s *Store) NumBlocks() int {
	n := 0
	for _, c := range s.children {
		if m := c.NumBlocks(); m > n {
			n = m
		}
	}
	return n
}

// BlockSize implements BlockStore.
func (s *Store) BlockSize() int { return s.b }

// Close implements BlockStore, closing every child and returning the first
// error.
func (s *Store) Close() error {
	var err error
	for i := range s.children {
		s.repMu[i].Lock()
		e := s.children[i].Close()
		s.repMu[i].Unlock()
		if err == nil {
			err = e
		}
	}
	return err
}

// GrowTo implements extmem.Growable: every child is asked to grow, and the
// group grows as long as at least one succeeded. A replica that failed to
// grow takes breaker failures through the ordinary write path when traffic
// reaches addresses it lacks.
func (s *Store) GrowTo(n int) error {
	ok := 0
	var firstErr error
	for i, c := range s.children {
		g, isG := c.(extmem.Growable)
		if !isG {
			if firstErr == nil {
				firstErr = fmt.Errorf("replica %d: %T cannot grow", i, c)
			}
			continue
		}
		s.repMu[i].Lock()
		err := g.GrowTo(n)
		s.repMu[i].Unlock()
		if err == nil {
			ok++
		} else if firstErr == nil {
			firstErr = fmt.Errorf("replica %d: %w", i, err)
		}
	}
	if ok == 0 {
		return firstErr
	}
	return nil
}

// RoundTrips implements extmem.NetModel: logical interactions (each one
// fan-out or read race, however many replicas it touched).
func (s *Store) RoundTrips() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.trips
}

// BlocksMoved implements extmem.NetModel: logical blocks moved (counted
// once per interaction, not per replica — replication is overhead the
// per-replica Stats expose, not extra logical traffic).
func (s *Store) BlocksMoved() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blocks
}

// ModeledTime implements extmem.NetModel: per interaction the slowest
// participating replica's modeled delay — the parallel fan-out's critical
// path — summed over interactions.
func (s *Store) ModeledTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crit
}

// ResetNetStats implements extmem.NetModel: zeroes the group aggregates and
// the children's own models. Health, dirt, and the decision log survive — a
// stats reset must not close breakers or forget missed writes.
func (s *Store) ResetNetStats() {
	s.mu.Lock()
	s.trips, s.blocks, s.crit = 0, 0, 0
	for i := range s.stats {
		st := &s.stats[i]
		st.RoundTrips, st.BlocksMoved, st.ModeledTime = 0, 0, 0
	}
	s.mu.Unlock()
	for i := range s.children {
		s.repMu[i].Lock()
		if m, ok := s.children[i].(extmem.NetModel); ok {
			m.ResetNetStats()
		}
		s.repMu[i].Unlock()
	}
}
