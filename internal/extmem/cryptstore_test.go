package extmem

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oblivext/internal/trace"
)

func testEncryptor(t *testing.T) *Encryptor {
	t.Helper()
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i*11 + 3)
	}
	enc, err := NewEncryptor(key)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func newCryptMem(t *testing.T, nBlocks, b int) *CryptStore {
	t.Helper()
	s, err := NewCryptStore(NewMemStore(nBlocks, CryptChildBlockSize(b)), testEncryptor(t), b)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCryptStoreGeometry(t *testing.T) {
	s := newCryptMem(t, 10, 4)
	if s.BlockSize() != 4 || s.NumBlocks() != 10 {
		t.Fatalf("geometry B=%d n=%d, want 4 and 10", s.BlockSize(), s.NumBlocks())
	}
	// A child of the wrong block size is refused.
	if _, err := NewCryptStore(NewMemStore(10, 4), testEncryptor(t), 4); err == nil {
		t.Fatal("plaintext-sized child accepted")
	}
	if _, err := NewCryptStore(NewMemStore(10, CryptChildBlockSize(4)), nil, 4); err == nil {
		t.Fatal("nil encryptor accepted")
	}
}

func TestCryptStoreRoundTripAndZeroConvention(t *testing.T) {
	const b = 4
	s := newCryptMem(t, 8, b)
	in := mkElems(3*b, 5)
	if err := s.WriteBlocks([]int{1, 4, 6}, in); err != nil {
		t.Fatal(err)
	}
	out := make([]Element, 3*b)
	if err := s.ReadBlocks([]int{6, 1, 4}, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b; i++ {
		if out[i] != in[2*b+i] || out[b+i] != in[i] || out[2*b+i] != in[b+i] {
			t.Fatalf("vectored round trip mismatch at %d", i)
		}
	}
	// Never-written blocks read back zeroed, not as an authentication
	// failure.
	zero := make([]Element, b)
	if err := s.ReadBlock(0, zero); err != nil {
		t.Fatalf("never-written block: %v", err)
	}
	for i, e := range zero {
		if e != (Element{}) {
			t.Fatalf("never-written block element %d = %+v", i, e)
		}
	}
	// Same after growth.
	if err := s.GrowTo(16); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadBlock(15, zero); err != nil {
		t.Fatalf("grown block: %v", err)
	}
}

// TestCryptStoreChildSeesOnlyCiphertext pins the decorator's reason to
// exist: the child store never holds a recognizable plaintext encoding, and
// rewriting identical plaintext yields different child bytes (fresh IVs).
func TestCryptStoreChildSeesOnlyCiphertext(t *testing.T) {
	const b = 4
	child := NewMemStore(4, CryptChildBlockSize(b))
	s, err := NewCryptStore(child, testEncryptor(t), b)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := []Element{{Key: 0xfeedfacecafebeef, Val: 0x0123456789abcdef, Pos: 42, Flags: FlagOccupied},
		{Key: 1}, {Key: 2}, {Key: 3}}
	if err := s.WriteBlock(2, sentinel); err != nil {
		t.Fatal(err)
	}
	childBytes := func() []byte {
		raw := make([]Element, CryptChildBlockSize(b))
		if err := child.ReadBlock(2, raw); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(raw)*ElementBytes)
		EncodeElements(buf, raw)
		return buf
	}
	plain := make([]byte, b*ElementBytes)
	EncodeElements(plain, sentinel)
	w1 := childBytes()
	if bytes.Contains(w1, plain[:ElementBytes]) {
		t.Fatal("child store contains the plaintext element encoding")
	}
	if err := s.WriteBlock(2, sentinel); err != nil {
		t.Fatal(err)
	}
	if w2 := childBytes(); bytes.Equal(w1, w2) {
		t.Fatal("rewriting identical plaintext produced identical child bytes (IV reuse)")
	}
}

// TestCryptStoreTamperDetection flips one ciphertext byte in the backing
// file and requires the read to fail loudly, not return garbage.
func TestCryptStoreTamperDetection(t *testing.T) {
	const b = 4
	path := filepath.Join(t.TempDir(), "tamper.dat")
	fs, err := NewFileStore(path, 4, CryptChildBlockSize(b))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewCryptStore(fs, testEncryptor(t), b)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.WriteBlock(1, mkElems(b, 7)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	slot := CryptChildBlockSize(b) * ElementBytes
	raw[slot+ivSize+3] ^= 1 // one ciphertext byte of block 1
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	out := make([]Element, b)
	err = s.ReadBlock(1, out)
	if err == nil {
		t.Fatal("tampered block read back without error")
	}
	if !strings.Contains(err.Error(), "authentication failed") {
		t.Fatalf("tamper error does not name the cause: %v", err)
	}
	// The untampered block 1 is gone, but the rest of the store still
	// serves (per-block envelopes: corruption is contained).
	if err := s.ReadBlock(0, out); err != nil {
		t.Fatalf("unrelated block after tamper: %v", err)
	}
}

// TestCryptStoreRelocationDetected pins the address binding: a server that
// transposes two validly sealed blocks must trigger an authentication
// failure, not serve silently relocated data.
func TestCryptStoreRelocationDetected(t *testing.T) {
	const b = 4
	child := NewMemStore(8, CryptChildBlockSize(b))
	s, err := NewCryptStore(child, testEncryptor(t), b)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlocks([]int{2, 5}, mkElems(2*b, 3)); err != nil {
		t.Fatal(err)
	}
	// Bob swaps the sealed images of blocks 2 and 5.
	cb := CryptChildBlockSize(b)
	b2, b5 := make([]Element, cb), make([]Element, cb)
	if err := child.ReadBlock(2, b2); err != nil {
		t.Fatal(err)
	}
	if err := child.ReadBlock(5, b5); err != nil {
		t.Fatal(err)
	}
	if err := child.WriteBlock(2, b5); err != nil {
		t.Fatal(err)
	}
	if err := child.WriteBlock(5, b2); err != nil {
		t.Fatal(err)
	}
	out := make([]Element, b)
	if err := s.ReadBlock(2, out); err == nil || !strings.Contains(err.Error(), "authentication failed") {
		t.Fatalf("relocated block served: %v", err)
	}
}

// TestCryptStoreTraceAndRoundTripNeutral pins that the decorator is
// invisible to the adversary's view: the same Disk workload produces a
// bit-identical per-block trace and identical round-trip counts with and
// without encryption.
func TestCryptStoreTraceAndRoundTripNeutral(t *testing.T) {
	const b = 4
	workload := func(store BlockStore) (trace.Summary, Stats) {
		d := NewDisk(store)
		rec := trace.NewRecorder(0)
		d.SetRecorder(rec)
		buf := make([]Element, 3*b)
		d.WriteMany([]int{2, 5, 7}, mkElems(3*b, 1))
		d.ReadMany([]int{7, 2, 5}, buf)
		d.Write(3, buf[:b])
		d.Read(3, buf[:b])
		d.ReadRun(2, 3, buf)
		return rec.Summarize(), d.Stats()
	}
	plainSum, plainStats := workload(NewMemStore(16, b))
	cryptSum, cryptStats := workload(newCryptMem(t, 16, b))
	if !plainSum.Equal(cryptSum) {
		t.Fatalf("encryption changed the trace: %+v vs %+v", plainSum, cryptSum)
	}
	// The crypto byte counters are the one legitimate difference: Stats
	// folds them in from the sealing store, and only the encrypted run has
	// any. Everything else must be identical.
	if cryptStats.BytesSealed == 0 || cryptStats.BytesOpened == 0 {
		t.Fatalf("encrypted run reported no crypto bytes: %+v", cryptStats)
	}
	cryptStats.BytesSealed, cryptStats.BytesOpened = 0, 0
	if plainStats != cryptStats {
		t.Fatalf("encryption changed the I/O accounting: %+v vs %+v", plainStats, cryptStats)
	}
}

func TestCryptStoreByteCounters(t *testing.T) {
	const b = 4
	s := newCryptMem(t, 8, b)
	wire := int64(testEncryptor(t).WireSize(b * ElementBytes))
	if err := s.WriteBlocks([]int{0, 1, 2}, mkElems(3*b, 2)); err != nil {
		t.Fatal(err)
	}
	if got := s.BytesSealed(); got != 3*wire {
		t.Fatalf("BytesSealed = %d, want %d", got, 3*wire)
	}
	buf := make([]Element, 2*b)
	if err := s.ReadBlocks([]int{1, 2}, buf); err != nil {
		t.Fatal(err)
	}
	// A never-written block costs no crypto.
	if err := s.ReadBlock(7, buf[:b]); err != nil {
		t.Fatal(err)
	}
	if got := s.BytesOpened(); got != 2*wire {
		t.Fatalf("BytesOpened = %d, want %d", got, 2*wire)
	}
	s.ResetCryptStats()
	if s.BytesSealed() != 0 || s.BytesOpened() != 0 {
		t.Fatal("ResetCryptStats left counters non-zero")
	}
}
