// Package extmem implements the paper's computational model (§1): Alice, a
// client with a private cache of M words, computes over data held by Bob, an
// honest-but-curious storage server that serves fixed-size blocks of B words
// and observes every block address Alice touches.
//
// The package provides block stores (in-memory, file-backed, plus the
// CryptStore decorator that makes any of them — and the sharded/network
// stores built on the same interface — hold only client-side-sealed
// ciphertext), an instrumented Disk that counts I/Os and records the
// adversary's view, arena allocation for the scratch arrays the algorithms
// need, and a Cache accountant that enforces — rather than assumes — the
// private-memory bound.
package extmem

// Flag bits carried by every element. Flags travel inside block contents, so
// the server never sees them (contents are encrypted in the paper's model).
const (
	// FlagOccupied marks a cell as holding a real item (vs. empty/dummy).
	FlagOccupied uint64 = 1 << 0
	// FlagMarked marks an item as "distinguished" for compaction/selection.
	FlagMarked uint64 = 1 << 1
	// FlagFailed marks a region whose randomized subcomputation failed and
	// must be repaired by failure sweeping (§5).
	FlagFailed uint64 = 1 << 2

	// colorShift is where the bucket color of §5's sorting algorithm lives.
	// The same bits double as the Aux field (a cell's origin during
	// butterfly routing) — the two uses never overlap in time.
	colorShift = 8
	colorMask  = uint64(0xffffff) << colorShift

	// destShift is where butterfly routing keeps a cell's destination.
	destShift = 32
	destMask  = uint64(0x7fffffff) << destShift
)

// Element is the unit of data: one "memory word" of the paper's model,
// supporting read, write, copy, compare, add and subtract. Key orders
// elements; Val is an opaque payload; Pos carries original positions,
// routing distance labels, or ranks depending on the algorithm; Flags holds
// occupancy/marking bits and the bucket color.
type Element struct {
	Key   uint64
	Val   uint64
	Pos   uint64
	Flags uint64
}

// ElementWords is the element footprint in 64-bit words; block size B and
// cache size M are measured in elements throughout the library.
const ElementWords = 4

// ElementBytes is the serialized size of an element.
const ElementBytes = 8 * ElementWords

// Occupied reports whether the element holds a real item.
func (e Element) Occupied() bool { return e.Flags&FlagOccupied != 0 }

// Marked reports whether the element is distinguished.
func (e Element) Marked() bool { return e.Flags&FlagMarked != 0 }

// Color returns the bucket color assigned by the sorting algorithm.
func (e Element) Color() int { return int((e.Flags & colorMask) >> colorShift) }

// SetColor stores a bucket color in the element's flags.
func (e *Element) SetColor(c int) {
	e.Flags = (e.Flags &^ colorMask) | (uint64(c) << colorShift & colorMask)
}

// Aux returns the auxiliary routing field (a cell's origin position during
// butterfly compaction). It shares bits with Color; the two uses are
// mutually exclusive in time.
func (e Element) Aux() int { return e.Color() }

// SetAux stores the auxiliary routing field.
func (e *Element) SetAux(v int) { e.SetColor(v) }

// CellDest returns the butterfly routing destination stored in the flags.
func (e Element) CellDest() int { return int((e.Flags & destMask) >> destShift) }

// SetCellDest stores a butterfly routing destination.
func (e *Element) SetCellDest(d int) {
	e.Flags = (e.Flags &^ destMask) | (uint64(d) << destShift & destMask)
}

// Less orders elements by (Key, Pos) so that ties are broken by original
// position; the paper's algorithms assume distinct keys can be arranged
// "by a number of methods" and this is ours. Unoccupied elements sort after
// all occupied ones, which implements the paper's "+infinity" padding.
func (e Element) Less(o Element) bool {
	eo, oo := e.Occupied(), o.Occupied()
	if eo != oo {
		return eo // occupied < empty
	}
	if e.Key != o.Key {
		return e.Key < o.Key
	}
	return e.Pos < o.Pos
}
