package extmem

import "fmt"

// CryptOverheadElements is the per-block footprint of the encryption
// envelope (IV + MAC tag), rounded up to whole elements: a sealed block of B
// plaintext elements occupies B + CryptOverheadElements elements in the
// child store.
const CryptOverheadElements = (ivSize + tagSize + ElementBytes - 1) / ElementBytes

// CryptChildBlockSize returns the block size (in elements) the child store
// under a CryptStore must have to hold sealed blocks of b plaintext
// elements.
func CryptChildBlockSize(b int) int { return b + CryptOverheadElements }

// CryptStore is the client-side encryption decorator: an extmem.BlockStore
// that seals every block written through it (AES-CTR with a fresh random IV
// per write, plus an HMAC-SHA256 tag, encrypt-then-MAC) and opens every
// block read back, storing only IV‖ciphertext‖tag in the child store. The
// child may be any BlockStore — memory, file, latency-modeled, the sharded
// fan-out, or the HTTP network client — so Bob, whatever his substrate,
// only ever holds semantically secure ciphertext, which is exactly the
// paper's §1 assumption ("Alice encrypts her data before outsourcing it").
//
// Geometry: the store presents blocks of B plaintext elements upward while
// the child holds blocks of CryptChildBlockSize(B) elements (the sealed
// wire image, zero-padded to whole elements). Addresses map one-to-one and
// every vectored call maps to exactly one child call over the same address
// list, so the decorator changes neither the access trace nor the
// round-trip count — only the bytes Bob stores.
//
// Each seal is bound to its block address (the HMAC covers addr‖IV‖ct), so
// a server that transposes two validly sealed blocks triggers an
// authentication failure, not silently relocated data.
//
// Never-written child blocks read back all-zero; CryptStore decodes an
// all-zero wire image as a zeroed plaintext block rather than a forgery
// (a genuine seal starts with 16 random IV bytes, so an honest all-zero
// wire image never occurs). The flip side is that a server which *zeroes*
// a written slot rolls it back to the never-written state undetected —
// one instance of the freshness/rollback non-goal docs/THREAT_MODEL.md
// declares. Any other wire image that fails authentication — a tampering
// or corruption event — is returned as an error, which the Disk layer
// escalates to a panic: integrity violations abort the computation loudly
// rather than feeding the algorithms attacker-chosen plaintext.
//
// Like every BlockStore, a CryptStore is driven by one caller at a time
// (the Disk, including its prefetch goroutines, which synchronize before
// handing the buffer over); the scratch buffers and counters rely on that.
type CryptStore struct {
	child BlockStore
	enc   *Encryptor
	b     int // plaintext block size exposed upward
	cb    int // child (sealed) block size in elements
	wire  int // sealed image length in bytes, <= cb*ElementBytes

	bytesSealed int64
	bytesOpened int64

	plain []byte    // one plaintext block, encoded
	sbuf  []byte    // one sealed block, padded to cb elements
	celem []Element // child-geometry staging for vectored calls
}

// NewCryptStore wraps child with the encryption decorator, presenting
// blocks of b plaintext elements. The child's block size must be
// CryptChildBlockSize(b) — the caller provisions the child with the sealed
// footprint.
func NewCryptStore(child BlockStore, enc *Encryptor, b int) (*CryptStore, error) {
	if enc == nil {
		return nil, fmt.Errorf("extmem: CryptStore needs an encryptor")
	}
	if b <= 0 {
		return nil, fmt.Errorf("extmem: invalid CryptStore block size %d", b)
	}
	if want := CryptChildBlockSize(b); child.BlockSize() != want {
		return nil, fmt.Errorf("extmem: child block size %d != sealed block size %d (B=%d + %d overhead elements)",
			child.BlockSize(), want, b, CryptOverheadElements)
	}
	plain := b * ElementBytes
	return &CryptStore{
		child: child,
		enc:   enc,
		b:     b,
		cb:    CryptChildBlockSize(b),
		wire:  enc.WireSize(plain),
		plain: make([]byte, plain),
		sbuf:  make([]byte, CryptChildBlockSize(b)*ElementBytes),
	}, nil
}

// Child returns the wrapped store (Bob's side of the boundary).
func (s *CryptStore) Child() BlockStore { return s.child }

// BytesSealed returns the cumulative ciphertext bytes produced by writes —
// the wire footprint Bob stores, envelope included.
func (s *CryptStore) BytesSealed() int64 { return s.bytesSealed }

// BytesOpened returns the cumulative ciphertext bytes verified and
// decrypted by reads (all-zero never-written blocks are not counted: no
// crypto ran).
func (s *CryptStore) BytesOpened() int64 { return s.bytesOpened }

// ResetCryptStats zeroes the sealed/opened byte counters.
func (s *CryptStore) ResetCryptStats() { s.bytesSealed, s.bytesOpened = 0, 0 }

// seal encodes and seals one plaintext block (bound to its address) into
// the staging buffer, decoding it as child-geometry elements into dst.
func (s *CryptStore) seal(addr int, dst []Element, src []Element) error {
	EncodeElements(s.plain, src)
	out, err := s.enc.Seal(s.sbuf[:0], s.plain, uint64(addr))
	if err != nil {
		return err
	}
	// Zero the padding up to a whole child block; the pad is public
	// structure, not data.
	for i := len(out); i < len(s.sbuf); i++ {
		s.sbuf[i] = 0
	}
	DecodeElements(dst, s.sbuf)
	s.bytesSealed += int64(s.wire)
	return nil
}

// open verifies and decodes one sealed child block into dst. An all-zero
// wire image is a never-written block and decodes to zeroed elements.
func (s *CryptStore) open(addr int, src []Element, dst []Element) error {
	allZero := true
	for _, e := range src {
		if e != (Element{}) {
			allZero = false
			break
		}
	}
	if allZero {
		clear(dst)
		return nil
	}
	EncodeElements(s.sbuf, src)
	buf, err := s.enc.Open(s.plain[:0], s.sbuf[:s.wire], uint64(addr))
	if err != nil {
		return fmt.Errorf("extmem: block %d: %w", addr, err)
	}
	DecodeElements(dst, buf)
	s.bytesOpened += int64(s.wire)
	return nil
}

// childElems returns the child-geometry staging buffer for n blocks.
func (s *CryptStore) childElems(n int) []Element {
	if need := n * s.cb; cap(s.celem) < need {
		s.celem = make([]Element, need)
	}
	return s.celem[:n*s.cb]
}

// ReadBlock implements BlockStore: one child read, then open.
func (s *CryptStore) ReadBlock(addr int, dst []Element) error {
	if len(dst) != s.b {
		return fmt.Errorf("extmem: buffer length %d != block size %d", len(dst), s.b)
	}
	buf := s.childElems(1)
	if err := s.child.ReadBlock(addr, buf); err != nil {
		return err
	}
	return s.open(addr, buf, dst)
}

// WriteBlock implements BlockStore: seal under a fresh IV, one child write.
func (s *CryptStore) WriteBlock(addr int, src []Element) error {
	if len(src) != s.b {
		return fmt.Errorf("extmem: buffer length %d != block size %d", len(src), s.b)
	}
	buf := s.childElems(1)
	if err := s.seal(addr, buf, src); err != nil {
		return err
	}
	return s.child.WriteBlock(addr, buf)
}

// ReadBlocks implements BlockStore: the whole batch is fetched with a
// single child call over the same address list (one interaction, identical
// trace), then each block is opened individually.
func (s *CryptStore) ReadBlocks(addrs []int, dst []Element) error {
	if len(dst) != len(addrs)*s.b {
		return fmt.Errorf("extmem: buffer length %d != %d blocks of %d elements", len(dst), len(addrs), s.b)
	}
	buf := s.childElems(len(addrs))
	if err := s.child.ReadBlocks(addrs, buf); err != nil {
		return err
	}
	for i, addr := range addrs {
		if err := s.open(addr, buf[i*s.cb:(i+1)*s.cb], dst[i*s.b:(i+1)*s.b]); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocks implements BlockStore: every block is sealed under its own
// fresh IV — vectoring batches the transfer, never the envelope — then the
// batch travels as a single child call over the same address list.
func (s *CryptStore) WriteBlocks(addrs []int, src []Element) error {
	if len(src) != len(addrs)*s.b {
		return fmt.Errorf("extmem: buffer length %d != %d blocks of %d elements", len(src), len(addrs), s.b)
	}
	buf := s.childElems(len(addrs))
	for i, addr := range addrs {
		if err := s.seal(addr, buf[i*s.cb:(i+1)*s.cb], src[i*s.b:(i+1)*s.b]); err != nil {
			return err
		}
	}
	return s.child.WriteBlocks(addrs, buf)
}

// NumBlocks implements BlockStore: addresses map one-to-one to the child.
func (s *CryptStore) NumBlocks() int { return s.child.NumBlocks() }

// BlockSize implements BlockStore: the plaintext block size.
func (s *CryptStore) BlockSize() int { return s.b }

// Close implements BlockStore.
func (s *CryptStore) Close() error { return s.child.Close() }

// GrowTo implements Growable when the child does. Fresh child blocks read
// back all-zero, which open decodes as zeroed plaintext.
func (s *CryptStore) GrowTo(n int) error {
	g, ok := s.child.(Growable)
	if !ok {
		return fmt.Errorf("extmem: %T cannot grow", s.child)
	}
	return g.GrowTo(n)
}
