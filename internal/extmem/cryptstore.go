package extmem

import (
	"fmt"
	"sync/atomic"

	"oblivext/internal/par"
)

// CryptOverheadElements is the per-block footprint of the encryption
// envelope (IV + MAC tag), rounded up to whole elements: a sealed block of B
// plaintext elements occupies B + CryptOverheadElements elements in the
// child store.
const CryptOverheadElements = (ivSize + tagSize + ElementBytes - 1) / ElementBytes

// CryptChildBlockSize returns the block size (in elements) the child store
// under a CryptStore must have to hold sealed blocks of b plaintext
// elements.
func CryptChildBlockSize(b int) int { return b + CryptOverheadElements }

// CryptStore is the client-side encryption decorator: an extmem.BlockStore
// that seals every block written through it (AES-CTR with a fresh random IV
// per write, plus an HMAC-SHA256 tag, encrypt-then-MAC) and opens every
// block read back, storing only IV‖ciphertext‖tag in the child store. The
// child may be any BlockStore — memory, file, latency-modeled, the sharded
// fan-out, or the HTTP network client — so Bob, whatever his substrate,
// only ever holds semantically secure ciphertext, which is exactly the
// paper's §1 assumption ("Alice encrypts her data before outsourcing it").
//
// Geometry: the store presents blocks of B plaintext elements upward while
// the child holds blocks of CryptChildBlockSize(B) elements (the sealed
// wire image, zero-padded to whole elements). Addresses map one-to-one and
// every vectored call maps to exactly one child call over the same address
// list, so the decorator changes neither the access trace nor the
// round-trip count — only the bytes Bob stores.
//
// Each seal is bound to its block address (the HMAC covers addr‖IV‖ct), so
// a server that transposes two validly sealed blocks triggers an
// authentication failure, not silently relocated data.
//
// Never-written child blocks read back all-zero; CryptStore decodes an
// all-zero wire image as a zeroed plaintext block rather than a forgery
// (a genuine seal starts with 16 random IV bytes, so an honest all-zero
// wire image never occurs). The flip side is that a server which *zeroes*
// a written slot rolls it back to the never-written state undetected —
// one instance of the freshness/rollback non-goal docs/THREAT_MODEL.md
// declares. Any other wire image that fails authentication — a tampering
// or corruption event — is returned as an error, which the Disk layer
// escalates to a panic: integrity violations abort the computation loudly
// rather than feeding the algorithms attacker-chosen plaintext.
//
// Like every BlockStore, a CryptStore is driven by one caller at a time
// (the Disk, including its prefetch goroutines, which synchronize before
// handing the buffer over); the staging buffer relies on that. Within one
// vectored call the store may fan the per-block seal/open work out across
// SetWorkers goroutines — each worker owns its own scratch pair and the
// byte counters are atomic, so the fan-out is invisible to the caller and
// the child sees exactly one call over the same address list either way.
type CryptStore struct {
	child   BlockStore
	enc     *Encryptor
	b       int // plaintext block size exposed upward
	cb      int // child (sealed) block size in elements
	wire    int // sealed image length in bytes, <= cb*ElementBytes
	workers int // fan-out for per-block seal/open inside one batch

	bytesSealed atomic.Int64
	bytesOpened atomic.Int64

	scratch []cryptScratch // one entry per worker; entry 0 serves the scalar paths
	celem   []Element      // child-geometry staging for vectored calls
}

// cryptScratch is one worker's private staging: an encoded plaintext block
// and a sealed block padded to child geometry.
type cryptScratch struct {
	plain []byte
	sbuf  []byte
}

// NewCryptStore wraps child with the encryption decorator, presenting
// blocks of b plaintext elements. The child's block size must be
// CryptChildBlockSize(b) — the caller provisions the child with the sealed
// footprint.
func NewCryptStore(child BlockStore, enc *Encryptor, b int) (*CryptStore, error) {
	if enc == nil {
		return nil, fmt.Errorf("extmem: CryptStore needs an encryptor")
	}
	if b <= 0 {
		return nil, fmt.Errorf("extmem: invalid CryptStore block size %d", b)
	}
	if want := CryptChildBlockSize(b); child.BlockSize() != want {
		return nil, fmt.Errorf("extmem: child block size %d != sealed block size %d (B=%d + %d overhead elements)",
			child.BlockSize(), want, b, CryptOverheadElements)
	}
	s := &CryptStore{
		child:   child,
		enc:     enc,
		b:       b,
		cb:      CryptChildBlockSize(b),
		wire:    enc.WireSize(b * ElementBytes),
		workers: 1,
	}
	s.scratch = []cryptScratch{s.newScratch()}
	return s, nil
}

func (s *CryptStore) newScratch() cryptScratch {
	return cryptScratch{
		plain: make([]byte, s.b*ElementBytes),
		sbuf:  make([]byte, s.cb*ElementBytes),
	}
}

// SetWorkers sets the fan-out for per-block sealing/opening within one
// vectored call (0 and 1 both mean serial) and provisions one scratch pair
// per worker. Call it during setup, before the store is driven; it is not
// safe concurrently with I/O.
func (s *CryptStore) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
	for len(s.scratch) < n {
		s.scratch = append(s.scratch, s.newScratch())
	}
}

// Child returns the wrapped store (Bob's side of the boundary).
func (s *CryptStore) Child() BlockStore { return s.child }

// BytesSealed returns the cumulative ciphertext bytes produced by writes —
// the wire footprint Bob stores, envelope included.
func (s *CryptStore) BytesSealed() int64 { return s.bytesSealed.Load() }

// BytesOpened returns the cumulative ciphertext bytes verified and
// decrypted by reads (all-zero never-written blocks are not counted: no
// crypto ran).
func (s *CryptStore) BytesOpened() int64 { return s.bytesOpened.Load() }

// ResetCryptStats zeroes the sealed/opened byte counters.
func (s *CryptStore) ResetCryptStats() {
	s.bytesSealed.Store(0)
	s.bytesOpened.Store(0)
}

// seal encodes and seals one plaintext block (bound to its address) via
// the given worker scratch, decoding it as child-geometry elements into
// dst. The Encryptor itself is safe for concurrent Seal calls (fresh IV,
// fresh HMAC state per call); only the scratch is per-worker.
func (s *CryptStore) seal(sc *cryptScratch, addr int, dst []Element, src []Element) error {
	EncodeElements(sc.plain, src)
	out, err := s.enc.Seal(sc.sbuf[:0], sc.plain, uint64(addr))
	if err != nil {
		return err
	}
	// Zero the padding up to a whole child block; the pad is public
	// structure, not data.
	for i := len(out); i < len(sc.sbuf); i++ {
		sc.sbuf[i] = 0
	}
	DecodeElements(dst, sc.sbuf)
	s.bytesSealed.Add(int64(s.wire))
	return nil
}

// open verifies and decodes one sealed child block into dst. An all-zero
// wire image is a never-written block and decodes to zeroed elements.
func (s *CryptStore) open(sc *cryptScratch, addr int, src []Element, dst []Element) error {
	allZero := true
	for _, e := range src {
		if e != (Element{}) {
			allZero = false
			break
		}
	}
	if allZero {
		clear(dst)
		return nil
	}
	EncodeElements(sc.sbuf, src)
	buf, err := s.enc.Open(sc.plain[:0], sc.sbuf[:s.wire], uint64(addr))
	if err != nil {
		return fmt.Errorf("extmem: block %d: %w", addr, err)
	}
	DecodeElements(dst, buf)
	s.bytesOpened.Add(int64(s.wire))
	return nil
}

// childElems returns the child-geometry staging buffer for n blocks.
func (s *CryptStore) childElems(n int) []Element {
	if need := n * s.cb; cap(s.celem) < need {
		s.celem = make([]Element, need)
	}
	return s.celem[:n*s.cb]
}

// ReadBlock implements BlockStore: one child read, then open.
func (s *CryptStore) ReadBlock(addr int, dst []Element) error {
	if len(dst) != s.b {
		return fmt.Errorf("extmem: buffer length %d != block size %d", len(dst), s.b)
	}
	buf := s.childElems(1)
	if err := s.child.ReadBlock(addr, buf); err != nil {
		return err
	}
	return s.open(&s.scratch[0], addr, buf, dst)
}

// WriteBlock implements BlockStore: seal under a fresh IV, one child write.
func (s *CryptStore) WriteBlock(addr int, src []Element) error {
	if len(src) != s.b {
		return fmt.Errorf("extmem: buffer length %d != block size %d", len(src), s.b)
	}
	buf := s.childElems(1)
	if err := s.seal(&s.scratch[0], addr, buf, src); err != nil {
		return err
	}
	return s.child.WriteBlock(addr, buf)
}

// cryptParMin is the batch size below which per-block crypto stays on the
// calling goroutine: spawning workers costs more than sealing a handful of
// blocks. The threshold compares against a public batch length only.
const cryptParMin = 8

// forBlocks runs fn over every (block index, worker scratch) pair — fanned
// out across s.workers goroutines for large batches, inline otherwise —
// and returns the first error by block order. Block i's staging slices are
// disjoint for distinct i, so workers never share bytes; the choice to fan
// out depends only on the public batch length, never on block contents.
func (s *CryptStore) forBlocks(n int, fn func(sc *cryptScratch, i int) error) error {
	w := s.workers
	if w > len(s.scratch) {
		w = len(s.scratch)
	}
	if w <= 1 || n < cryptParMin {
		sc := &s.scratch[0]
		for i := 0; i < n; i++ {
			if err := fn(sc, i); err != nil {
				return err
			}
		}
		return nil
	}
	errAt := make([]error, n)
	par.ForWorker(w, n, func(worker, lo, hi int) {
		sc := &s.scratch[worker]
		for i := lo; i < hi; i++ {
			if err := fn(sc, i); err != nil {
				errAt[i] = err
				return
			}
		}
	})
	for _, err := range errAt {
		if err != nil {
			return err
		}
	}
	return nil
}

// ReadBlocks implements BlockStore: the whole batch is fetched with a
// single child call over the same address list (one interaction, identical
// trace), then each block is opened individually — across the worker pool
// for large batches.
func (s *CryptStore) ReadBlocks(addrs []int, dst []Element) error {
	if len(dst) != len(addrs)*s.b {
		return fmt.Errorf("extmem: buffer length %d != %d blocks of %d elements", len(dst), len(addrs), s.b)
	}
	buf := s.childElems(len(addrs))
	if err := s.child.ReadBlocks(addrs, buf); err != nil {
		return err
	}
	return s.forBlocks(len(addrs), func(sc *cryptScratch, i int) error {
		return s.open(sc, addrs[i], buf[i*s.cb:(i+1)*s.cb], dst[i*s.b:(i+1)*s.b])
	})
}

// WriteBlocks implements BlockStore: every block is sealed under its own
// fresh IV — vectoring batches the transfer, never the envelope; sealing
// fans out across the worker pool for large batches — then the batch
// travels as a single child call over the same address list.
func (s *CryptStore) WriteBlocks(addrs []int, src []Element) error {
	if len(src) != len(addrs)*s.b {
		return fmt.Errorf("extmem: buffer length %d != %d blocks of %d elements", len(src), len(addrs), s.b)
	}
	buf := s.childElems(len(addrs))
	if err := s.forBlocks(len(addrs), func(sc *cryptScratch, i int) error {
		return s.seal(sc, addrs[i], buf[i*s.cb:(i+1)*s.cb], src[i*s.b:(i+1)*s.b])
	}); err != nil {
		return err
	}
	return s.child.WriteBlocks(addrs, buf)
}

// NumBlocks implements BlockStore: addresses map one-to-one to the child.
func (s *CryptStore) NumBlocks() int { return s.child.NumBlocks() }

// BlockSize implements BlockStore: the plaintext block size.
func (s *CryptStore) BlockSize() int { return s.b }

// Close implements BlockStore.
func (s *CryptStore) Close() error { return s.child.Close() }

// GrowTo implements Growable when the child does. Fresh child blocks read
// back all-zero, which open decodes as zeroed plaintext.
func (s *CryptStore) GrowTo(n int) error {
	g, ok := s.child.(Growable)
	if !ok {
		return fmt.Errorf("extmem: %T cannot grow", s.child)
	}
	return g.GrowTo(n)
}
