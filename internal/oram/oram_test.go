package oram

import (
	"math/rand/v2"
	"testing"

	"oblivext/internal/extmem"
	"oblivext/internal/trace"
)

func newEnv(b, m int, seed uint64) *extmem.Env {
	return extmem.NewEnv(256, b, m, seed)
}

func TestReadAfterInitIsZero(t *testing.T) {
	env := newEnv(4, 64, 1)
	o, err := New(env, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		v, err := o.Read(i)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		for _, w := range v {
			if w != 0 {
				t.Fatalf("block %d not zero-initialized: %v", i, v)
			}
		}
	}
}

func TestReadYourWrites(t *testing.T) {
	env := newEnv(4, 64, 2)
	o, err := New(env, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := func(i int) []uint64 {
		return []uint64{uint64(i) * 7, uint64(i) + 1, uint64(i) * uint64(i), 42}
	}
	for i := 0; i < 16; i++ {
		if err := o.Write(i, payload(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := 15; i >= 0; i-- {
		v, err := o.Read(i)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		want := payload(i)
		for j := range want {
			if v[j] != want[j] {
				t.Fatalf("block %d word %d = %d, want %d", i, j, v[j], want[j])
			}
		}
	}
}

// TestAgainstReferenceModel drives the ORAM with a long random workload and
// checks every read against a plain map.
func TestAgainstReferenceModel(t *testing.T) {
	env := newEnv(4, 64, 3)
	const n = 24
	o, err := New(env, n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[int][]uint64)
	r := rand.New(rand.NewPCG(7, 7))
	for step := 0; step < 600; step++ {
		i := r.IntN(n)
		switch r.IntN(3) {
		case 0:
			v := []uint64{r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()}
			if err := o.Write(i, v); err != nil {
				t.Fatalf("step %d write: %v", step, err)
			}
			ref[i] = v
		case 1:
			got, err := o.Read(i)
			if err != nil {
				t.Fatalf("step %d read: %v", step, err)
			}
			want := ref[i]
			if want == nil {
				want = make([]uint64, 4)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("step %d: block %d word %d = %d want %d", step, i, j, got[j], want[j])
				}
			}
		default:
			if err := o.Dummy(); err != nil {
				t.Fatalf("step %d dummy: %v", step, err)
			}
		}
	}
	if o.Failed() {
		t.Fatal("ORAM failed during workload")
	}
}

// TestObliviousness checks the ORAM security property. Unlike the scan and
// circuit algorithms, hierarchical ORAM gives *distributional* trace
// independence: each (epoch, key) pair is probed at most once, so bucket
// choices are fresh PRF outputs. We therefore check (a) trace length is a
// function of the access count alone, and (b) even the most revealing
// workload — hammering one logical block — produces well-spread bucket
// probes rather than repeated addresses.
func TestObliviousness(t *testing.T) {
	run := func(pattern func(step int) int) (trace.Summary, []trace.Op) {
		env := newEnv(4, 64, 99)
		rec := trace.NewRecorder(1 << 20)
		env.D.SetRecorder(rec)
		o, err := New(env, 16, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rec.Enable(1 << 20) // drop the build trace, keep the access trace
		for step := 0; step < 200; step++ {
			i := pattern(step)
			if step%2 == 0 {
				if err := o.Write(i, []uint64{uint64(step), 0, 0, 0}); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := o.Read(i); err != nil {
					t.Fatal(err)
				}
			}
		}
		return rec.Summarize(), rec.Ops()
	}
	sameBlock, opsSame := run(func(int) int { return 3 })
	scan, _ := run(func(s int) int { return s % 16 })
	random, _ := run(func(s int) int { return (s*7 + 3) % 16 })
	if sameBlock.Len != scan.Len || sameBlock.Len != random.Len {
		t.Fatalf("ORAM trace length depends on the access pattern: %d %d %d",
			sameBlock.Len, scan.Len, random.Len)
	}
	// Hammering block 3 must not hammer any disk address: no single block
	// address may dominate the probe trace.
	freq := map[int64]int{}
	for _, op := range opsSame {
		freq[op.Addr]++
	}
	maxFreq, total := 0, len(opsSame)
	for _, f := range freq {
		if f > maxFreq {
			maxFreq = f
		}
	}
	if maxFreq > total/10 {
		t.Fatalf("one address receives %d of %d accesses under a repeated-key workload", maxFreq, total)
	}
}

// TestDummyIndistinguishable: a dummy access has the same structural trace
// as a real one — identical length, identical read/write kind sequence, and
// an identical sequence of level visits; only the (PRF-fresh) bucket index
// within each level differs.
func TestDummyIndistinguishable(t *testing.T) {
	shape := func(dummy bool) []string {
		env := newEnv(4, 64, 42)
		rec := trace.NewRecorder(1 << 20)
		env.D.SetRecorder(rec)
		o, err := New(env, 8, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rec.Enable(1 << 20)
		for step := 0; step < 100; step++ {
			if dummy {
				err = o.Dummy()
			} else {
				_, err = o.Read(step % 8)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		ranges := o.LevelRanges()
		var out []string
		for _, op := range rec.Ops() {
			lvl := -1
			for li, r := range ranges {
				if op.Addr >= int64(r[0]) && op.Addr < int64(r[1]) {
					lvl = li
					break
				}
			}
			out = append(out, string(op.Kind)+rune2s(lvl))
		}
		return out
	}
	d, r := shape(true), shape(false)
	if len(d) != len(r) {
		t.Fatalf("trace lengths differ: %d vs %d", len(d), len(r))
	}
	for i := range d {
		if d[i] != r[i] {
			t.Fatalf("trace shape diverges at op %d: %s vs %s", i, d[i], r[i])
		}
	}
}

func rune2s(l int) string { return string(rune('a' + l + 1)) }

// TestAccessRoundTripBudget pins the tentpole bound: one logical access
// costs at most LiveLevels()+1 store round trips — one vectored read per
// probed level plus the single grouped write-back — and moves exactly the
// same block counts the scalar path did (beta blocks read and written per
// live level). Accesses that trigger a rebuild are excluded; that work is
// amortized and measured separately.
func TestAccessRoundTripBudget(t *testing.T) {
	env := newEnv(4, 256, 11)
	const n = 32
	o, err := New(env, n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	beta := int64(o.BucketSize())
	budgeted := 0
	for step := 0; step < 200; step++ {
		before := env.D.Stats()
		rebuilds := o.Rebuilds().Count
		live := int64(o.LiveLevels())
		switch step % 3 {
		case 0:
			_, err = o.Read(step % n)
		case 1:
			err = o.Write(step%n, make([]uint64, 4))
		default:
			err = o.Dummy()
		}
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if o.Rebuilds().Count != rebuilds {
			continue
		}
		budgeted++
		delta := env.D.Stats().Sub(before)
		if delta.RoundTrips > live+1 {
			t.Fatalf("step %d: access cost %d round trips > L+1 = %d (L=%d live levels)",
				step, delta.RoundTrips, live+1, live)
		}
		if delta.Reads != beta*live || delta.Writes != beta*live {
			t.Fatalf("step %d: access moved %d reads / %d writes, want %d each (beta=%d, L=%d)",
				step, delta.Reads, delta.Writes, beta*live, beta, live)
		}
	}
	if budgeted == 0 {
		t.Fatal("every access triggered a rebuild; the budget was never checked")
	}
}

// TestAccessReadThenGroupedWriteBack pins the trace shape of one access:
// per live level a run of beta reads covering one aligned bucket, then a
// write-back of exactly the probed addresses in probe order — the deferred
// grouped flush that replaces the scalar path's interleaved per-slot
// read/write pairs.
func TestAccessReadThenGroupedWriteBack(t *testing.T) {
	env := newEnv(4, 256, 13)
	o, err := New(env, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(1 << 16)
	env.D.SetRecorder(rec)
	beta := o.BucketSize()
	for step := 0; step < 48; step++ {
		rebuilds := o.Rebuilds().Count
		rec.Enable(1 << 16)
		if step%2 == 0 {
			_, err = o.Read(step % 16)
		} else {
			err = o.Dummy()
		}
		if err != nil {
			t.Fatal(err)
		}
		if o.Rebuilds().Count != rebuilds {
			continue // rebuild ops interleave; shape checked on plain accesses
		}
		ops := rec.Ops()
		if len(ops)%2 != 0 {
			t.Fatalf("step %d: odd trace length %d", step, len(ops))
		}
		half := len(ops) / 2
		if half%beta != 0 {
			t.Fatalf("step %d: %d reads is not a whole number of beta=%d buckets", step, half, beta)
		}
		for i, op := range ops[:half] {
			if op.Kind != trace.Read {
				t.Fatalf("step %d: op %d is %v, want read-phase reads first", step, i, op)
			}
			if i%beta == 0 {
				if (op.Addr-levelBase(t, o, op.Addr))%int64(beta) != 0 {
					t.Fatalf("step %d: bucket read at op %d not beta-aligned: %v", step, i, op)
				}
			} else if op.Addr != ops[i-1].Addr+1 {
				t.Fatalf("step %d: bucket read not contiguous at op %d: %v after %v", step, i, op, ops[i-1])
			}
		}
		for i, op := range ops[half:] {
			if op.Kind != trace.Write {
				t.Fatalf("step %d: op %d of write-back is %v", step, half+i, op)
			}
			if op.Addr != ops[i].Addr {
				t.Fatalf("step %d: write-back addr %d != probe addr %d at position %d",
					step, op.Addr, ops[i].Addr, i)
			}
		}
	}
}

// levelBase returns the table base address of the level containing addr.
func levelBase(t *testing.T, o *ORAM, addr int64) int64 {
	t.Helper()
	for _, r := range o.LevelRanges() {
		if addr >= int64(r[0]) && addr < int64(r[1]) {
			return int64(r[0])
		}
	}
	t.Fatalf("probe address %d outside every level table", addr)
	return 0
}

// TestAccessSequenceIndistinguishability is the upgraded security test for
// the batched access path. The hierarchical ORAM's guarantee is
// distributional — the bucket index probed for a key is a fresh PRF output
// per (level, epoch) — so the strongest checkable invariant is that
// everything EXCEPT those fresh bucket indices is a deterministic function
// of (n, B, t, seed) alone: trace length, the read/write kind sequence, the
// level each probe lands in, the slot offset inside the probed bucket, the
// rebuild traffic, the exact I/O and round-trip counts. Three access
// streams of equal length t that differ in every data-dependent way —
// disjoint key sets, different read/write mixes, a Dummy-heavy mix — must
// produce bit-identical normalized traces and identical I/O stats.
func TestAccessSequenceIndistinguishability(t *testing.T) {
	const n, steps = 16, 240
	type fingerprint struct {
		norm  uint64 // FNV-1a over (kind, level, slot) triples
		len   int
		stats extmem.Stats
	}
	run := func(name string, op func(o *ORAM, step int) error) fingerprint {
		env := newEnv(4, 256, 77)
		rec := trace.NewRecorder(1 << 22)
		env.D.SetRecorder(rec)
		o, err := New(env, n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rec.Enable(1 << 22)
		env.D.ResetStats()
		for step := 0; step < steps; step++ {
			if err := op(o, step); err != nil {
				t.Fatalf("%s step %d: %v", name, step, err)
			}
		}
		ranges := o.LevelRanges()
		beta := int64(o.BucketSize())
		const fnvOffset, fnvPrime = 14695981039346656037, 1099511628211
		h := uint64(fnvOffset)
		mix := func(v uint64) {
			for i := 0; i < 8; i++ {
				h ^= v & 0xff
				h *= fnvPrime
				v >>= 8
			}
		}
		ops := rec.Ops()
		if int64(len(ops)) != rec.Len() {
			t.Fatalf("%s: trace overflowed the recorder (%d kept of %d)", name, len(ops), rec.Len())
		}
		for _, opr := range ops {
			lvl, slot := int64(-1), opr.Addr
			for li, r := range ranges {
				if opr.Addr >= int64(r[0]) && opr.Addr < int64(r[1]) {
					// Erase exactly the bucket index; keep level and slot.
					lvl, slot = int64(li), (opr.Addr-int64(r[0]))%beta
					break
				}
			}
			mix(uint64(opr.Kind))
			mix(uint64(lvl))
			mix(uint64(slot))
		}
		return fingerprint{norm: h, len: len(ops), stats: env.D.Stats()}
	}

	low := run("low-keys", func(o *ORAM, step int) error {
		if step%2 == 0 {
			_, err := o.Read(step % (n / 2))
			return err
		}
		return o.Write(step%(n/2), []uint64{uint64(step), 1, 2, 3})
	})
	high := run("high-keys", func(o *ORAM, step int) error {
		k := n/2 + step%(n/2) // disjoint from low-keys' set
		if step%3 == 0 {
			_, err := o.Read(k)
			return err
		}
		return o.Write(k, []uint64{9, 9, 9, uint64(step)})
	})
	dummies := run("dummy-heavy", func(o *ORAM, step int) error {
		if step%4 == 0 {
			return o.Write(step%n, make([]uint64, 4))
		}
		return o.Dummy()
	})

	for _, fp := range []fingerprint{high, dummies} {
		if fp.norm != low.norm || fp.len != low.len {
			t.Fatalf("normalized trace differs across access sequences: %d/%016x vs %d/%016x",
				low.len, low.norm, fp.len, fp.norm)
		}
		if fp.stats != low.stats {
			t.Fatalf("I/O stats differ across access sequences: %+v vs %+v", low.stats, fp.stats)
		}
	}
}

func TestCacheBudgetRespected(t *testing.T) {
	env := newEnv(4, 64, 5)
	o, err := New(env, 32, Options{})
	if err != nil {
		t.Fatal(err)
	}
	env.Cache.ResetHighWater()
	for step := 0; step < 300; step++ {
		if err := o.Write(step%32, []uint64{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
	}
	if hw := env.Cache.HighWater(); hw > env.M {
		t.Fatalf("ORAM used %d private elements > M=%d", hw, env.M)
	}
}

func TestAmortizedCostGrowsWithN(t *testing.T) {
	cost := func(n int) float64 {
		env := newEnv(4, 64, 5)
		o, err := New(env, n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		env.D.ResetStats()
		steps := 4 * n
		for step := 0; step < steps; step++ {
			if _, err := o.Read(step % n); err != nil {
				t.Fatal(err)
			}
		}
		return float64(env.D.Stats().Total()) / float64(steps)
	}
	small, large := cost(8), cost(128)
	if large <= small {
		t.Fatalf("amortized cost should grow with n: %f vs %f", small, large)
	}
}

func TestIndexOutOfRange(t *testing.T) {
	env := newEnv(4, 64, 6)
	o, err := New(env, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Read(4); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := o.Write(99, []uint64{0, 0, 0, 0}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := o.Write(0, []uint64{1}); err == nil {
		t.Fatal("expected width error")
	}
}
