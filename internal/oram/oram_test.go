package oram

import (
	"math/rand/v2"
	"testing"

	"oblivext/internal/extmem"
	"oblivext/internal/trace"
)

func newEnv(b, m int, seed uint64) *extmem.Env {
	return extmem.NewEnv(256, b, m, seed)
}

func TestReadAfterInitIsZero(t *testing.T) {
	env := newEnv(4, 64, 1)
	o, err := New(env, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		v, err := o.Read(i)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		for _, w := range v {
			if w != 0 {
				t.Fatalf("block %d not zero-initialized: %v", i, v)
			}
		}
	}
}

func TestReadYourWrites(t *testing.T) {
	env := newEnv(4, 64, 2)
	o, err := New(env, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := func(i int) []uint64 {
		return []uint64{uint64(i) * 7, uint64(i) + 1, uint64(i) * uint64(i), 42}
	}
	for i := 0; i < 16; i++ {
		if err := o.Write(i, payload(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := 15; i >= 0; i-- {
		v, err := o.Read(i)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		want := payload(i)
		for j := range want {
			if v[j] != want[j] {
				t.Fatalf("block %d word %d = %d, want %d", i, j, v[j], want[j])
			}
		}
	}
}

// TestAgainstReferenceModel drives the ORAM with a long random workload and
// checks every read against a plain map.
func TestAgainstReferenceModel(t *testing.T) {
	env := newEnv(4, 64, 3)
	const n = 24
	o, err := New(env, n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[int][]uint64)
	r := rand.New(rand.NewPCG(7, 7))
	for step := 0; step < 600; step++ {
		i := r.IntN(n)
		switch r.IntN(3) {
		case 0:
			v := []uint64{r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()}
			if err := o.Write(i, v); err != nil {
				t.Fatalf("step %d write: %v", step, err)
			}
			ref[i] = v
		case 1:
			got, err := o.Read(i)
			if err != nil {
				t.Fatalf("step %d read: %v", step, err)
			}
			want := ref[i]
			if want == nil {
				want = make([]uint64, 4)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("step %d: block %d word %d = %d want %d", step, i, j, got[j], want[j])
				}
			}
		default:
			if err := o.Dummy(); err != nil {
				t.Fatalf("step %d dummy: %v", step, err)
			}
		}
	}
	if o.Failed() {
		t.Fatal("ORAM failed during workload")
	}
}

// TestObliviousness checks the ORAM security property. Unlike the scan and
// circuit algorithms, hierarchical ORAM gives *distributional* trace
// independence: each (epoch, key) pair is probed at most once, so bucket
// choices are fresh PRF outputs. We therefore check (a) trace length is a
// function of the access count alone, and (b) even the most revealing
// workload — hammering one logical block — produces well-spread bucket
// probes rather than repeated addresses.
func TestObliviousness(t *testing.T) {
	run := func(pattern func(step int) int) (trace.Summary, []trace.Op) {
		env := newEnv(4, 64, 99)
		rec := trace.NewRecorder(1 << 20)
		env.D.SetRecorder(rec)
		o, err := New(env, 16, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rec.Enable(1 << 20) // drop the build trace, keep the access trace
		for step := 0; step < 200; step++ {
			i := pattern(step)
			if step%2 == 0 {
				if err := o.Write(i, []uint64{uint64(step), 0, 0, 0}); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := o.Read(i); err != nil {
					t.Fatal(err)
				}
			}
		}
		return rec.Summarize(), rec.Ops()
	}
	sameBlock, opsSame := run(func(int) int { return 3 })
	scan, _ := run(func(s int) int { return s % 16 })
	random, _ := run(func(s int) int { return (s*7 + 3) % 16 })
	if sameBlock.Len != scan.Len || sameBlock.Len != random.Len {
		t.Fatalf("ORAM trace length depends on the access pattern: %d %d %d",
			sameBlock.Len, scan.Len, random.Len)
	}
	// Hammering block 3 must not hammer any disk address: no single block
	// address may dominate the probe trace.
	freq := map[int64]int{}
	for _, op := range opsSame {
		freq[op.Addr]++
	}
	maxFreq, total := 0, len(opsSame)
	for _, f := range freq {
		if f > maxFreq {
			maxFreq = f
		}
	}
	if maxFreq > total/10 {
		t.Fatalf("one address receives %d of %d accesses under a repeated-key workload", maxFreq, total)
	}
}

// TestDummyIndistinguishable: a dummy access has the same structural trace
// as a real one — identical length, identical read/write kind sequence, and
// an identical sequence of level visits; only the (PRF-fresh) bucket index
// within each level differs.
func TestDummyIndistinguishable(t *testing.T) {
	shape := func(dummy bool) []string {
		env := newEnv(4, 64, 42)
		rec := trace.NewRecorder(1 << 20)
		env.D.SetRecorder(rec)
		o, err := New(env, 8, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rec.Enable(1 << 20)
		for step := 0; step < 100; step++ {
			if dummy {
				err = o.Dummy()
			} else {
				_, err = o.Read(step % 8)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		ranges := o.LevelRanges()
		var out []string
		for _, op := range rec.Ops() {
			lvl := -1
			for li, r := range ranges {
				if op.Addr >= int64(r[0]) && op.Addr < int64(r[1]) {
					lvl = li
					break
				}
			}
			out = append(out, string(op.Kind)+rune2s(lvl))
		}
		return out
	}
	d, r := shape(true), shape(false)
	if len(d) != len(r) {
		t.Fatalf("trace lengths differ: %d vs %d", len(d), len(r))
	}
	for i := range d {
		if d[i] != r[i] {
			t.Fatalf("trace shape diverges at op %d: %s vs %s", i, d[i], r[i])
		}
	}
}

func rune2s(l int) string { return string(rune('a' + l + 1)) }

func TestCacheBudgetRespected(t *testing.T) {
	env := newEnv(4, 64, 5)
	o, err := New(env, 32, Options{})
	if err != nil {
		t.Fatal(err)
	}
	env.Cache.ResetHighWater()
	for step := 0; step < 300; step++ {
		if err := o.Write(step%32, []uint64{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
	}
	if hw := env.Cache.HighWater(); hw > env.M {
		t.Fatalf("ORAM used %d private elements > M=%d", hw, env.M)
	}
}

func TestAmortizedCostGrowsWithN(t *testing.T) {
	cost := func(n int) float64 {
		env := newEnv(4, 64, 5)
		o, err := New(env, n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		env.D.ResetStats()
		steps := 4 * n
		for step := 0; step < steps; step++ {
			if _, err := o.Read(step % n); err != nil {
				t.Fatal(err)
			}
		}
		return float64(env.D.Stats().Total()) / float64(steps)
	}
	small, large := cost(8), cost(128)
	if large <= small {
		t.Fatalf("amortized cost should grow with n: %f vs %f", small, large)
	}
}

func TestIndexOutOfRange(t *testing.T) {
	env := newEnv(4, 64, 6)
	o, err := New(env, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Read(4); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := o.Write(99, []uint64{0, 0, 0, 0}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := o.Write(0, []uint64{1}); err == nil {
		t.Fatal("expected width error")
	}
}
