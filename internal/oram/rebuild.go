package oram

import (
	"fmt"
	"math/bits"

	"oblivext/internal/extmem"
	"oblivext/internal/obsort"
	"oblivext/internal/par"
)

// rebuildOnSchedule flushes the full top buffer down the hierarchy using
// the classic binary-counter schedule: after the j-th flush, the target
// level is l0 + trailingZeros(j) + 1 (capped at the largest level), and all
// levels below it are merged in. The schedule — and therefore the entire
// rebuild trace — depends only on the access count.
func (o *ORAM) rebuildOnSchedule() error {
	j := o.t / int64(o.bufCap)
	k := bits.TrailingZeros64(uint64(j)) + 1
	target := o.l0 + k
	if target > o.lmax {
		target = o.lmax
	}
	var sources []extmem.Array
	for l := o.l0 + 1; l < target; l++ {
		lv := o.lvl(l)
		if lv.live {
			sources = append(sources, lv.table)
		}
	}
	tl := o.lvl(target)
	if target == o.lmax && tl.live {
		sources = append(sources, tl.table)
	}
	err := o.rebuildInto(target, sources, true)
	for l := o.l0 + 1; l < target; l++ {
		o.lvl(l).live = false
	}
	o.bufLen = 0
	return err
}

// initialBuild loads the n zeroed logical blocks into the largest level.
// The entries are produced in cache, so the pipelined writer's flushes
// overlap the production of the next chunk.
func (o *ORAM) initialBuild() error {
	mark := o.env.D.Mark()
	defer o.env.D.Release(mark)
	src := o.env.D.Alloc(o.n)
	wbuf := o.env.Cache.Buf(o.env.ScanBatchN(1, o.n) * o.b)
	wr := extmem.NewSeqWriterPipelined(src, 0, wbuf, o.env.Prefetch)
	for i := 0; i < o.n; i++ {
		blk := wr.Next()
		for t := range blk {
			blk[t] = extmem.Element{Flags: extmem.FlagOccupied}
			blk[t].SetColor(i)
			blk[t].SetCellDest(i & 0x7fffffff)
		}
	}
	wr.Flush()
	o.env.Cache.Free(wbuf)
	o.ts = uint64(o.n)
	o.t = 0
	return o.rebuildInto(o.lmax, []extmem.Array{src}, false)
}

// In-flight entry representation during a rebuild. Rebuild sorts may be
// performed by any padded oblivious Sorter — including the randomized sort,
// which clobbers the color/dest flag bits it uses as routing scratch — so
// between sorts an entry's metadata lives only in fields every sorter
// preserves: the Key and Pos of its elements (plus FlagOccupied).
//
//	sort 1 (dedupe):   Key = logicalKey (fillerKey sentinel for fillers)
//	                   Pos = (maxTS − ts)<<8 | elementIndex  (freshest first)
//	sorts 2–3 (bucket): Key = bucket<<33 | fillerBit<<32 | logicalKey
//	                   Pos = ts<<8 | elementIndex
//
// Discarded entries are simply unoccupied: padded sorts treat their content
// as don't-care, which is exactly right.
const (
	fillerKey  = uint64(1) << 40
	fillerBit  = uint64(1) << 32
	keyLowMask = (uint64(1) << 32) - 1
	maxTS      = uint64(0x7fffffff)
)

// rebuildInto rebuilds the target level's bucket table from the given
// source arrays (tables of lower levels and/or scratch) plus, when withBuf
// is set, the private top buffer. The pipeline is three oblivious sorts
// with interleaved scans:
//
//  1. sort by logical key with freshest-first tiebreak, then a scan that
//     drops stale duplicates and assigns PRF buckets under the new epoch;
//  2. sort by (bucket, real-before-filler), then a scan that keeps exactly
//     beta entries per bucket (a real entry beyond beta is an overflow);
//  3. sort survivors to the front and copy the exactly buckets*beta-block
//     prefix into the level table.
//
// Every pass touches every block, so the trace depends only on the source
// sizes, which the schedule fixes.
func (o *ORAM) rebuildInto(target int, sources []extmem.Array, withBuf bool) error {
	tl := o.lvl(target)
	tl.epoch++
	buckets := tl.bucket
	b := o.b

	srcBlocks := 0
	for _, s := range sources {
		srcBlocks += s.Len()
	}
	bufBlocks := 0
	if withBuf {
		bufBlocks = o.bufCap
	}
	fill := buckets * o.beta
	total := srcBlocks + bufBlocks + fill

	mark := o.env.D.Mark()
	defer o.env.D.Release(mark)
	work := o.env.D.Alloc(total)

	sp := o.env.Obs.Start("oram-rebuild")
	sp.SetAttrInt("target-level", int64(target))
	sp.SetAttrInt("blocks", int64(total))
	sp.SetAttr("sorter", o.sorterName)
	if o.sorterName != "randomized" {
		// The rebuild trace is a deterministic function of the geometry and
		// the array layout (every scan pass touches every block; the sorter's
		// trace depends only on size) — except under the randomized sorter,
		// which consumes tape. The key pins every address-determining input
		// so equal keys really do promise equal traces.
		srcSig := ""
		for _, s := range sources {
			srcSig += fmt.Sprintf("+%d:%d", s.Base(), s.Len())
		}
		sp.Audit(fmt.Sprintf("oram/rebuild/target=%d/total=%d/beta=%d/B=%d/M=%d/work=%d/table=%d/src=%s",
			target, total, o.beta, b, o.env.M, work.Base(), tl.table.Base(), srcSig))
	}
	defer o.env.Obs.End(sp)

	// Copy sources and the buffer, converting each live entry from table
	// form (metadata in color/dest bits) to in-flight form (metadata in
	// Key/Pos); then append the fillers. Sources are read a vectored chunk
	// at a time and the conversion is pure compute, so the pipelined
	// writer's flushes overlap it.
	toFlight := func(blk []extmem.Element) {
		if !blk[0].Occupied() {
			return
		}
		key := uint64(blk[0].Color())
		ts := uint64(blk[0].CellDest())
		for t := range blk {
			blk[t].Key = key
			blk[t].Pos = (maxTS-ts)<<8 | uint64(t)
			blk[t].Flags = extmem.FlagOccupied
		}
	}
	spf := o.env.Obs.Start("flight-copy")
	spf.SetPredicted(int64(srcBlocks)+int64(total), -1)
	kc := o.env.ScanBatchN(2, total)
	rbuf := o.env.Cache.Buf(kc * b)
	wbuf := o.env.Cache.Buf(kc * b)
	wr := extmem.NewSeqWriterPipelined(work, 0, wbuf, o.env.Prefetch)
	nw := o.env.WorkerCount()
	for _, s := range sources {
		for lo := 0; lo < s.Len(); lo += kc {
			hi := min(lo+kc, s.Len())
			wr.Join()
			s.ReadRange(lo, hi, rbuf[:(hi-lo)*b])
			// Convert the chunk's blocks to in-flight form in parallel
			// (toFlight is pure per-block compute), then hand them to the
			// pipelined writer serially so its flush order is unchanged.
			pw := nw
			if (hi-lo)*b < 2048 {
				pw = 1
			}
			par.For(pw, hi-lo, func(plo, phi int) {
				for i := plo; i < phi; i++ {
					toFlight(rbuf[i*b : (i+1)*b])
				}
			})
			for i := lo; i < hi; i++ {
				blk := wr.Next()
				copy(blk, rbuf[(i-lo)*b:(i-lo+1)*b])
			}
		}
	}
	if withBuf {
		for i := 0; i < o.bufCap; i++ {
			blk := wr.Next()
			copy(blk, o.buf[i*b:(i+1)*b])
			toFlight(blk)
		}
	}
	for i := 0; i < fill; i++ {
		blk := wr.Next()
		for t := range blk {
			blk[t] = extmem.Element{
				Key:   fillerKey,
				Pos:   uint64(i)<<8 | uint64(t),
				Flags: extmem.FlagOccupied,
			}
		}
	}
	wr.Flush()
	o.env.Cache.Free(wbuf)
	o.env.Cache.Free(rbuf)
	o.env.Obs.End(spf)
	o.sorter(o.env, work, obsort.ByKey)

	// Pass 1: drop stale duplicates (the freshest copy of each key sorts
	// first), assign buckets under the new epoch, and give fillers their
	// deterministic buckets. Each chunk is read with one vectored call,
	// rewritten in cache, and written back with one vectored call; every
	// block is written whether kept or discarded, keeping the trace fixed.
	sp1 := o.env.Obs.Start("assign-buckets")
	sp1.SetPredicted(2*int64(total), -1)
	kp := o.env.ScanBatchN(1, total)
	pbuf := o.env.Cache.Buf(kp * b)
	prevKey := int64(-1)
	fillerIdx := 0
	overflow := false
	for lo := 0; lo < total; lo += kp {
		hi := min(lo+kp, total)
		work.ReadRange(lo, hi, pbuf[:(hi-lo)*b])
		for i := lo; i < hi; i++ {
			blk := pbuf[(i-lo)*b : (i-lo+1)*b]
			if !blk[0].Occupied() {
				continue // discarded; still written back below
			}
			if blk[0].Key == fillerKey {
				bkt := uint64(fillerIdx / o.beta)
				ts := uint64(fillerIdx)
				fillerIdx++
				for t := range blk {
					blk[t].Key = bkt<<33 | fillerBit
					blk[t].Pos = ts<<8 | uint64(t)
				}
			} else {
				key := blk[0].Key
				ts := maxTS - blk[0].Pos>>8
				if int64(key) == prevKey {
					for t := range blk {
						blk[t].Flags &^= extmem.FlagOccupied
					}
				} else {
					prevKey = int64(key)
					bkt := uint64(o.bucketOf(tl, target, key))
					for t := range blk {
						blk[t].Key = bkt<<33 | key
						blk[t].Pos = ts<<8 | uint64(t)
					}
				}
			}
		}
		work.WriteRange(lo, hi, pbuf[:(hi-lo)*b])
	}
	o.env.Cache.Free(pbuf)
	o.env.Obs.End(sp1)
	o.sorter(o.env, work, obsort.ByKey)

	// Pass 2: keep exactly beta entries per bucket (reals sort before
	// fillers within a bucket, so only real overflow is a failure). Same
	// vectored read-rewrite-write chunking as pass 1.
	sp2 := o.env.Obs.Start("cap-buckets")
	sp2.SetPredicted(2*int64(total), -1)
	kp = o.env.ScanBatchN(1, total)
	pbuf = o.env.Cache.Buf(kp * b)
	curBucket := int64(-1)
	kept := 0
	for lo := 0; lo < total; lo += kp {
		hi := min(lo+kp, total)
		work.ReadRange(lo, hi, pbuf[:(hi-lo)*b])
		for i := lo; i < hi; i++ {
			blk := pbuf[(i-lo)*b : (i-lo+1)*b]
			if blk[0].Occupied() {
				bkt := int64(blk[0].Key >> 33)
				real := blk[0].Key&fillerBit == 0
				if bkt != curBucket {
					curBucket = bkt
					kept = 0
				}
				kept++
				if kept > o.beta {
					if real {
						overflow = true
					}
					for t := range blk {
						blk[t].Flags &^= extmem.FlagOccupied
					}
				}
			}
		}
		work.WriteRange(lo, hi, pbuf[:(hi-lo)*b])
	}
	o.env.Cache.Free(pbuf)
	o.env.Obs.End(sp2)
	o.sorter(o.env, work, obsort.ByKey)

	// Pass 3: the survivors are exactly buckets*beta blocks in bucket
	// order; install them as the new table, converting back to table form
	// and demoting fillers to empty slots — chunked run reads from the work
	// prefix, chunked run writes into the table.
	sp3 := o.env.Obs.Start("install")
	sp3.SetPredicted(2*int64(fill), -1)
	ki := o.env.ScanBatchN(1, fill)
	ibuf := o.env.Cache.Buf(ki * b)
	for lo := 0; lo < fill; lo += ki {
		hi := min(lo+ki, fill)
		work.ReadRange(lo, hi, ibuf[:(hi-lo)*b])
		// Serial invariant check first (deterministic panic point), then the
		// per-block table-form conversion fans out — each block is rewritten
		// independently from its own header.
		for i := 0; i < hi-lo; i++ {
			if !ibuf[i*b].Occupied() {
				panic("oram: rebuild prefix not fully occupied")
			}
		}
		pw := nw
		if (hi-lo)*b < 2048 {
			pw = 1
		}
		par.For(pw, hi-lo, func(plo, phi int) {
			for i := plo; i < phi; i++ {
				blk := ibuf[i*b : (i+1)*b]
				if blk[0].Key&fillerBit != 0 {
					for t := range blk {
						blk[t] = extmem.Element{}
					}
				} else {
					key := int(blk[0].Key & keyLowMask)
					ts := int(blk[0].Pos >> 8)
					for t := range blk {
						blk[t].Key = 0
						blk[t].Pos = 0
						blk[t].Flags = extmem.FlagOccupied
						blk[t].SetColor(key)
						blk[t].SetCellDest(ts & 0x7fffffff)
					}
				}
			}
		})
		tl.table.WriteRange(lo, hi, ibuf[:(hi-lo)*b])
	}
	o.env.Cache.Free(ibuf)
	o.env.Obs.End(sp3)

	tl.live = true
	o.rebuild.Count++
	o.rebuild.EntryBlocks += int64(total)
	if overflow {
		o.failed = true
		return ErrOverflow
	}
	return nil
}
