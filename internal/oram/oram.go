// Package oram implements a hierarchical oblivious RAM simulation in the
// external-memory model, in the style of Goldreich–Ostrovsky as adapted by
// Goodrich–Mitzenmacher [24]: a hierarchy of bucket hash tables, each
// rebuilt on a deterministic binary-counter schedule by a data-oblivious
// sort. The sort is pluggable — running the hierarchy with the
// deterministic Lemma-2 sort versus the paper's randomized optimal sort is
// experiment E10, which demonstrates the paper's headline claim that its
// sorting result improves the amortized I/O overhead of oblivious RAM
// simulation by a logarithmic factor.
//
// The ORAM stores n logical blocks of B words each, addressed 0..n-1, all
// initialized to zero. Every logical access probes one bucket per live
// level (real key at the first level that might hold it, PRF-driven dummies
// elsewhere), so the address trace is independent of the access sequence's
// keys and of the stored values. I/O is vectored: each probed bucket's beta
// slots travel as one read round trip and all write-backs are deferred into
// a single grouped flush, so one access costs at most LiveLevels()+1 store
// interactions, and the rebuild passes move cache-sized runs per round trip.
package oram

import (
	"errors"
	"fmt"

	"oblivext/internal/extmem"
	"oblivext/internal/obsort"
	"oblivext/internal/rng"
)

// Options configures the hierarchy.
type Options struct {
	// Sorter rebuilds levels; nil defaults to obsort.Bitonic.
	Sorter obsort.Sorter
	// SorterName names the configured Sorter for observability: it is
	// attached to rebuild spans, and rebuild spans are exact-audited only
	// when it is not "randomized" (the randomized pipeline consumes tape,
	// so its trace differs per rebuild; the deterministic engines replay
	// bit-identical rebuild traces for equal geometry). Empty means the
	// auto-selecting default.
	SorterName string
	// BucketSize is the number of entry blocks per hash bucket; 0 chooses
	// max(3, ceil(log2 n)).
	BucketSize int
	// TopLevel is l0: the private buffer holds 2^l0 entries; 0 chooses a
	// cache-appropriate default.
	TopLevel int
}

// ErrOverflow reports a hash-bucket overflow during a rebuild; per the
// library's Monte-Carlo convention the structure keeps a fixed trace and
// reports failure afterwards.
var ErrOverflow = errors.New("oram: bucket overflow during rebuild")

// entry flag layout: the color bits carry the logical key, the dest bits
// carry the freshness timestamp, FlagOccupied marks live entries, and
// FlagMarked marks entries dropped during a rebuild.

// ORAM is a hierarchical oblivious RAM. Not safe for concurrent use.
type ORAM struct {
	env        *extmem.Env
	n          int
	b          int
	sorter     obsort.Sorter
	sorterName string
	beta       int
	l0         int
	lmax       int
	levels     []level
	buf        []extmem.Element // private top buffer, bufCap entry blocks
	bufLen     int
	bufCap     int
	t          int64 // accesses since creation
	ts         uint64
	seed       uint64
	failed     bool
	rebuild    RebuildStats
	addrs      []int // probe address scratch (addresses are public, not cache-accounted)
}

type level struct {
	table  extmem.Array // buckets * beta entry blocks
	epoch  uint64
	live   bool
	bucket int // number of buckets = capacity in entries
}

// RebuildStats counts rebuild work for the E10 analysis.
type RebuildStats struct {
	Count       int64
	EntryBlocks int64
}

// New creates an ORAM of n zeroed logical blocks.
func New(env *extmem.Env, n int, opts Options) (*ORAM, error) {
	if n < 1 {
		return nil, fmt.Errorf("oram: need n >= 1, got %d", n)
	}
	o := &ORAM{env: env, n: n, b: env.B(), seed: env.Tape.Uint64()}
	o.sorter = opts.Sorter
	o.sorterName = opts.SorterName
	if o.sorterName == "" {
		o.sorterName = "auto"
	}
	if o.sorter == nil {
		// Auto-select per rebuild geometry. The pick is a public function
		// of (table size, B, M), so the rebuild trace stays deterministic
		// in (n, B, t, seed).
		o.sorter = obsort.Auto
	}
	o.beta = opts.BucketSize
	if o.beta <= 0 {
		// Level l holds at most 2^(l-1) live entries in 2^l buckets; beta of
		// roughly 2·log2(n) makes the per-rebuild overflow probability
		// negligible (balls-in-bins tail), matching the w.h.p. claims.
		o.beta = max(4, 2*extmem.CeilLog2(n))
	}
	o.l0 = opts.TopLevel
	if o.l0 <= 0 {
		o.l0 = 2
		for (1<<(o.l0+1))*o.b*4 <= env.M && 1<<(o.l0+1) <= n {
			o.l0++
		}
	}
	o.bufCap = 1 << o.l0
	// The buffer shares the cache with the rebuild sorter's window, so it
	// may claim at most a quarter of M.
	if o.bufCap*o.b > env.M/4 && o.bufCap > 4 {
		return nil, fmt.Errorf("oram: top buffer 2^%d blocks exceeds a quarter of the cache", o.l0)
	}
	o.lmax = extmem.CeilLog2(n) + 1
	if o.lmax <= o.l0 {
		o.lmax = o.l0 + 1
	}
	o.buf = env.Cache.Buf(o.bufCap * o.b)
	for l := o.l0 + 1; l <= o.lmax; l++ {
		buckets := 1 << l
		o.levels = append(o.levels, level{
			table:  env.D.Alloc(buckets * o.beta),
			bucket: buckets,
		})
	}
	// Initial build: load all n zeroed entries into the top level.
	if err := o.initialBuild(); err != nil {
		return nil, err
	}
	return o, nil
}

// N returns the number of logical blocks.
func (o *ORAM) N() int { return o.n }

// BlockWords returns the payload width of one logical block.
func (o *ORAM) BlockWords() int { return o.b }

// Accesses returns the number of logical accesses performed.
func (o *ORAM) Accesses() int64 { return o.t }

// Rebuilds returns rebuild statistics.
func (o *ORAM) Rebuilds() RebuildStats { return o.rebuild }

// LevelRanges returns the absolute block-address range [base, base+len) of
// each level's table, smallest level first — a diagnostic for tests that
// check the structural shape of the probe trace.
func (o *ORAM) LevelRanges() [][2]int {
	out := make([][2]int, len(o.levels))
	for i, lv := range o.levels {
		out[i] = [2]int{lv.table.Base(), lv.table.Base() + lv.table.Len()}
	}
	return out
}

// Failed reports whether an internal rebuild overflowed (Monte-Carlo
// failure); subsequent accesses return ErrOverflow.
func (o *ORAM) Failed() bool { return o.failed }

// LiveLevels returns how many levels the next access will probe — the L in
// the per-access round-trip bound of L reads plus one grouped write-back.
func (o *ORAM) LiveLevels() int {
	live := 0
	for i := range o.levels {
		if o.levels[i].live {
			live++
		}
	}
	return live
}

// BucketSize returns beta, the number of entry blocks per hash bucket.
func (o *ORAM) BucketSize() int { return o.beta }

func (o *ORAM) lvl(l int) *level { return &o.levels[l-o.l0-1] }

// bucketOf returns the PRF bucket for a key at a level epoch.
func (o *ORAM) bucketOf(lv *level, l int, key uint64) int {
	h := rng.Mix(o.seed, uint64(l)<<56^lv.epoch<<28^rng.Mix(lv.epoch+1, key))
	return int(h % uint64(lv.bucket))
}

// Read returns the payload of logical block i.
func (o *ORAM) Read(i int) ([]uint64, error) { return o.access(i, nil) }

// Write replaces the payload of logical block i (len(words) == B).
func (o *ORAM) Write(i int, words []uint64) error {
	if len(words) != o.b {
		return fmt.Errorf("oram: payload width %d != %d", len(words), o.b)
	}
	_, err := o.access(i, words)
	return err
}

// Dummy performs an access indistinguishable from a real one without
// touching any logical block — the padding operation data-oblivious
// callers (Theorem 4's padded peeling schedule) rely on.
func (o *ORAM) Dummy() error {
	_, err := o.access(-1, nil)
	return err
}

// access probes the hierarchy for key i (or performs a pure dummy access
// for i < 0), optionally replacing the payload, then appends the result to
// the top buffer and rebuilds on schedule.
func (o *ORAM) access(i int, newData []uint64) ([]uint64, error) {
	if o.failed {
		return nil, ErrOverflow
	}
	if i >= o.n {
		return nil, fmt.Errorf("oram: index %d out of range [0,%d)", i, o.n)
	}
	o.ts++
	sp := o.env.Obs.Start("oram-access")
	defer o.env.Obs.End(sp)
	found := false
	var payload []uint64

	// Probe the private buffer (free: it is cache-resident).
	if i >= 0 {
		for e := 0; e < o.bufLen; e++ {
			blk := o.buf[e*o.b : (e+1)*o.b]
			if blk[0].Occupied() && blk[0].Color() == i {
				payload = extractPayload(blk)
				found = true
				// Supersede in place: mark stale; the fresh copy is
				// appended below.
				for t := range blk {
					blk[t].Flags &^= extmem.FlagOccupied
				}
				break
			}
		}
	}

	// Probe one bucket per live level. Reads stay sequential across levels
	// (the level-l bucket depends on found-so-far), but each bucket's beta
	// slots travel as one vectored read, and every write-back is deferred:
	// the probed blocks are flushed with a single grouped WriteMany at the
	// end, so one access costs at most LiveLevels()+1 round trips instead
	// of 2·beta·LiveLevels() scalar ones. The write-backs have no ordering
	// dependency — each probed block is rewritten (re-encrypted in the real
	// deployment) whether or not it held the key, so the trace keeps its
	// fixed, access-independent shape.
	live := o.LiveLevels()
	spp := o.env.Obs.Start("probe")
	spp.SetAttrInt("live-levels", int64(live))
	// The probed bucket indices are PRF-fresh per access, so an exact trace
	// fingerprint would differ between accesses of identical geometry; the
	// kind sequence (beta reads per live level, one grouped write-back) is
	// the geometry-determined invariant, so probe spans audit in shape mode.
	spp.AuditShape(fmt.Sprintf("oram/probe/live=%d/beta=%d", live, o.beta))
	if live > 0 {
		spp.SetPredicted(2*int64(o.beta)*int64(live), int64(live)+1)
	} else {
		spp.SetPredicted(0, 0)
	}
	wcap := (o.env.M-o.env.Cache.Used())/o.b - 1 // write-back buffer budget, in blocks
	if wcap < 1 {
		wcap = 1
	}
	if wcap > o.beta*live {
		wcap = o.beta * live
	}
	if wcap == 0 {
		wcap = 1 // no live levels: keep the buffer checkout well-formed
	}
	buf := o.env.Cache.Buf(wcap * o.b)
	o.addrs = o.addrs[:0]
	held := 0 // probed blocks buffered for the grouped write-back
	flush := func() {
		if held > 0 {
			o.env.D.WriteMany(o.addrs[:held], buf[:held*o.b])
			o.addrs = o.addrs[:0]
			held = 0
		}
	}
	for l := o.l0 + 1; l <= o.lmax; l++ {
		lv := o.lvl(l)
		if !lv.live {
			continue
		}
		var bkt int
		if i >= 0 && !found {
			bkt = o.bucketOf(lv, l, uint64(i))
		} else {
			bkt = o.bucketOf(lv, l, 1<<40|o.ts)
		}
		base := lv.table.Base() + bkt*o.beta
		for s := 0; s < o.beta; {
			c := o.beta - s
			if c > wcap {
				c = wcap // cache too small for a whole bucket: chunk it
			}
			if held+c > wcap {
				flush() // make room; only undersized caches ever hit this
			}
			for j := 0; j < c; j++ {
				o.addrs = append(o.addrs, base+s+j)
			}
			chunk := buf[held*o.b : (held+c)*o.b]
			o.env.D.ReadMany(o.addrs[held:held+c], chunk)
			if i >= 0 && !found {
				for j := 0; j < c; j++ {
					blk := chunk[j*o.b : (j+1)*o.b]
					if blk[0].Occupied() && blk[0].Color() == i {
						payload = extractPayload(blk)
						found = true
						// Erase the found entry so future epochs cannot
						// hold two live copies (content-only change; every
						// probed block is written back regardless, keeping
						// the trace fixed).
						for t := range blk {
							blk[t].Flags &^= extmem.FlagOccupied
						}
						break
					}
				}
			}
			held += c
			s += c
		}
	}
	flush() // the one grouped write-back of every probed bucket
	o.env.Cache.Free(buf)
	o.env.Obs.End(spp)

	if i >= 0 {
		if payload == nil {
			payload = make([]uint64, o.b)
		}
		if newData != nil {
			copy(payload, newData)
		}
		o.appendBuf(uint64(i), payload)
	} else {
		o.appendBuf(1<<23-1, nil) // dummy filler entry, never matched
	}

	o.t++
	if o.bufLen == o.bufCap {
		if err := o.rebuildOnSchedule(); err != nil {
			return nil, err
		}
	}
	if !found && i >= 0 {
		// Key absent from every level: cannot happen after initialBuild.
		return nil, fmt.Errorf("oram: key %d vanished", i)
	}
	return payload, nil
}

// extractPayload copies the Val words out of an entry block.
func extractPayload(blk []extmem.Element) []uint64 {
	out := make([]uint64, len(blk))
	for t := range blk {
		out[t] = blk[t].Val
	}
	return out
}

// appendBuf adds an entry to the private top buffer. key 1<<23-1 with nil
// payload is the dummy filler.
func (o *ORAM) appendBuf(key uint64, payload []uint64) {
	blk := o.buf[o.bufLen*o.b : (o.bufLen+1)*o.b]
	for t := range blk {
		var v uint64
		if payload != nil {
			v = payload[t]
		}
		blk[t] = extmem.Element{Val: v}
		if payload != nil {
			blk[t].Flags = extmem.FlagOccupied
			blk[t].SetColor(int(key))
			blk[t].SetCellDest(int(o.ts & 0x7fffffff))
		}
	}
	o.bufLen++
}
