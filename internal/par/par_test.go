package par

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestSplitCoversRangeDisjointly(t *testing.T) {
	for _, tc := range []struct{ n, w int }{
		{0, 4}, {1, 1}, {1, 8}, {7, 3}, {10, 4}, {100, 7}, {5, 5}, {3, 16},
	} {
		ranges := Split(tc.n, tc.w)
		covered := 0
		prev := 0
		for _, r := range ranges {
			if r[0] != prev {
				t.Fatalf("Split(%d,%d): range starts at %d, want %d", tc.n, tc.w, r[0], prev)
			}
			if r[1] <= r[0] {
				t.Fatalf("Split(%d,%d): empty or inverted range %v", tc.n, tc.w, r)
			}
			covered += r[1] - r[0]
			prev = r[1]
		}
		if covered != tc.n {
			t.Fatalf("Split(%d,%d): ranges cover %d of %d elements", tc.n, tc.w, covered, tc.n)
		}
		if len(ranges) > tc.w {
			t.Fatalf("Split(%d,%d): %d ranges exceed the worker count", tc.n, tc.w, len(ranges))
		}
	}
}

func TestSplitIsDeterministic(t *testing.T) {
	a, b := Split(1000, 7), Split(1000, 7)
	if len(a) != len(b) {
		t.Fatal("nondeterministic range count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("range %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, w := range []int{0, 1, 2, 4, 8} {
		const n = 1000
		var visits [n]int32
		For(w, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("w=%d: index %d visited %d times", w, i, v)
			}
		}
	}
}

func TestForWorkerIDsMatchRanges(t *testing.T) {
	const n, w = 100, 4
	ranges := Split(n, w)
	got := make([][2]int, len(ranges))
	ForWorker(w, n, func(worker, lo, hi int) {
		got[worker] = [2]int{lo, hi}
	})
	for i, r := range ranges {
		if got[i] != r {
			t.Fatalf("worker %d ran %v, Split says %v", i, got[i], r)
		}
	}
}

func TestForPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic not re-raised on caller")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("unexpected panic payload %v", r)
		}
	}()
	For(4, 100, func(lo, hi int) {
		if lo >= 50 {
			panic("boom")
		}
	})
}
