// Package par provides the static fan-out primitive for parallel
// oblivious compute on Alice's side.
//
// The security argument for parallelism is that the work partition must be
// a function of PUBLIC geometry only — the range length and the worker
// count — never of data values. par.Split is exactly that: contiguous
// near-equal ranges computed arithmetically from (n, w). There is no work
// stealing and no dynamic load balancing, because either would make worker
// scheduling (and potentially the order or timing of any observable side
// effect) depend on how long each element took to process, i.e. on data.
// Data-oblivious schedules are statically partitionable precisely because
// every worker's slice of the work is known before any data is read.
//
// Callers keep all external I/O outside the parallel region: workers
// compute over private in-cache buffers only, and the coordinating
// goroutine performs every Disk access in the same order as the serial
// path, so the per-block access trace is bit-identical for every worker
// count.
package par

import "sync"

// Split partitions [0, n) into at most w contiguous ranges of near-equal
// size. The boundaries are a pure function of (n, w): range i is
// [i·n/w, (i+1)·n/w). Empty ranges are omitted, so the result holds
// min(w, n) entries for n > 0 and is empty for n <= 0.
func Split(n, w int) [][2]int {
	if n <= 0 {
		return nil
	}
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	out := make([][2]int, 0, w)
	for i := 0; i < w; i++ {
		lo, hi := i*n/w, (i+1)*n/w
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// For runs fn over the ranges of Split(n, w) on up to w goroutines and
// waits for all of them. With w <= 1 (or a single range) it calls fn
// inline — the serial path spawns nothing, so Workers=0/1 behaves exactly
// like code written without this package. fn must not touch the extmem
// cache accountant or perform Disk I/O; both belong to the caller, before
// and after the fan-out.
//
// A panic inside any worker is captured and re-raised on the calling
// goroutine after every worker has finished, so buffers owned by the
// caller are never written concurrently with the unwinding.
func For(w, n int, fn func(lo, hi int)) {
	ForWorker(w, n, func(_, lo, hi int) { fn(lo, hi) })
}

// ForWorker is For with the worker's index (its position in Split(n, w),
// 0-based) passed to fn, so callers can hand each worker its own
// pre-allocated scratch. Worker i processes exactly the i-th Split range —
// the assignment is static, never raced for.
func ForWorker(w, n int, fn func(worker, lo, hi int)) {
	ranges := Split(n, w)
	switch len(ranges) {
	case 0:
		return
	case 1:
		fn(0, ranges[0][0], ranges[0][1])
		return
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failure any
	capture := func(worker, lo, hi int) {
		defer func() {
			if p := recover(); p != nil {
				mu.Lock()
				if failure == nil {
					failure = p
				}
				mu.Unlock()
			}
		}()
		fn(worker, lo, hi)
	}
	for i, r := range ranges[1:] {
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			capture(worker, lo, hi)
		}(i+1, r[0], r[1])
	}
	capture(0, ranges[0][0], ranges[0][1])
	wg.Wait()
	if failure != nil {
		panic(failure)
	}
}
