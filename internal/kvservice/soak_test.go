package kvservice

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"oblivext"
	"oblivext/internal/extmem"
	"oblivext/internal/extmem/netstore"
)

// nsFleet spins up a k-server multi-tenant, h2c-capable obstore fleet — the
// deployment cmd/oramkv points at.
func nsFleet(t *testing.T, k int) []string {
	t.Helper()
	urls := make([]string, k)
	for i := range urls {
		srv := netstore.NewServer(extmem.NewMemStore(4096, 8), netstore.ServerOptions{
			StoreFactory: func(ns string) (extmem.BlockStore, error) {
				return extmem.NewMemStore(4096, 8), nil
			},
		})
		ts := httptest.NewUnstartedServer(srv.Handler())
		netstore.ConfigureMuxServer(ts.Config)
		ts.Start()
		t.Cleanup(ts.Close)
		t.Cleanup(func() { srv.Close() })
		urls[i] = ts.URL
	}
	return urls
}

// TestServiceSoak hammers the full service stack — HTTP front end, one ORAM
// session per namespace, a shared 2-shard multi-tenant obstore fleet on a
// multiplexed wire — with 32 concurrent clients doing mixed Get/Put for a
// fixed op budget. Run under -race in CI (service-soak job, GOMAXPROCS 1
// and 4). Asserts: zero errors, read-your-writes per client, per-session
// stats summing exactly to fleet totals, and audit-clean traces in every
// namespace.
func TestServiceSoak(t *testing.T) {
	const (
		clients     = 32
		namespaces  = 8                           // 4 clients share each namespace
		slotsPerCli = 64 / (clients / namespaces) // exclusive slots per client
	)
	opsPerClient := 6 // op budget; the CI soak job raises it via SOAK_OPS
	if s := os.Getenv("SOAK_OPS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 2 {
			t.Fatalf("bad SOAK_OPS %q", s)
		}
		opsPerClient = n
	}
	urls := nsFleet(t, 2)
	svc, err := New(Options{
		Base: oblivext.Config{
			BlockSize: 8, CacheWords: 512, Seed: 5,
			NumShards: len(urls), ShardURLs: urls, Multiplex: true,
		},
		Slots: 64,
		Audit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	front := httptest.NewServer(svc.Handler())
	defer front.Close()

	var wg sync.WaitGroup
	var errCount, getCount, putCount atomic.Int64
	fail := func(format string, args ...any) {
		errCount.Add(1)
		t.Errorf(format, args...)
	}
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ns := fmt.Sprintf("tenant%d", g%namespaces)
			base := (g / namespaces) * slotsPerCli
			want := map[int]string{} // this client's read-your-writes oracle
			for i := 0; i < opsPerClient; i++ {
				slot := base + (g*7+i*3)%slotsPerCli
				kvURL := fmt.Sprintf("%s/v1/kv/%s/%d", front.URL, ns, slot)
				if i%2 == 0 {
					value := fmt.Sprintf("g%d-i%d", g, i)
					req, _ := http.NewRequest(http.MethodPut, kvURL, strings.NewReader(value))
					resp, err := http.DefaultClient.Do(req)
					if err != nil {
						fail("client %d put: %v", g, err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						fail("client %d put: status %d: %s", g, resp.StatusCode, body)
						return
					}
					want[slot] = value
					putCount.Add(1)
				} else {
					resp, err := http.Get(kvURL)
					if err != nil {
						fail("client %d get: %v", g, err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						fail("client %d get: status %d: %s", g, resp.StatusCode, body)
						return
					}
					if got := string(body); got != want[slot] {
						fail("client %d slot %d: read %q, want %q (lost write or cross-tenant bleed)", g, slot, got, want[slot])
						return
					}
					getCount.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := errCount.Load(); n != 0 {
		t.Fatalf("%d errors during soak", n)
	}

	// Per-session stats sum exactly to the fleet totals, and both agree
	// with what the clients themselves counted.
	st := svc.StatsSnapshot()
	if len(st.Sessions) != namespaces {
		t.Fatalf("%d sessions, want %d", len(st.Sessions), namespaces)
	}
	var gets, puts, errs, violations int64
	for _, row := range st.Sessions {
		gets += row.Gets
		puts += row.Puts
		errs += row.Errors
		violations += row.AuditViolations
		if row.Gets == 0 || row.Puts == 0 {
			t.Errorf("session %q idle: %+v (work not spread across namespaces?)", row.Namespace, row)
		}
	}
	if gets != st.Gets || puts != st.Puts || errs != st.Errors {
		t.Errorf("per-session sums (g=%d p=%d e=%d) != fleet totals (g=%d p=%d e=%d)",
			gets, puts, errs, st.Gets, st.Puts, st.Errors)
	}
	if st.Gets != getCount.Load() || st.Puts != putCount.Load() || st.Errors != 0 {
		t.Errorf("fleet totals (g=%d p=%d e=%d) != client-side counts (g=%d p=%d)",
			st.Gets, st.Puts, st.Errors, getCount.Load(), putCount.Load())
	}
	// Audit-clean: every namespace's live auditor saw only golden traces.
	if violations != 0 {
		t.Errorf("%d audit violations across sessions", violations)
	}

	// The metrics endpoint agrees on the session count.
	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if want := fmt.Sprintf("oramkv_sessions %d", namespaces); !strings.Contains(string(metrics), want) {
		t.Errorf("/metrics missing %q", want)
	}
}

func TestPackValueRoundTrip(t *testing.T) {
	for _, s := range []string{"", "a", "attack at dawn", strings.Repeat("x", 56), "nul\x00bytes\x00ok"} {
		if got := UnpackValue(PackValue(s, 8)); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	// A corrupt length cannot read past the block.
	words := PackValue("hi", 8)
	words[0] = 1 << 40
	if got := UnpackValue(words); len(got) > 56 {
		t.Errorf("corrupt length decoded %d bytes", len(got))
	}
	if UnpackValue(nil) != "" {
		t.Error("nil block should decode empty")
	}
}

func TestServiceValidation(t *testing.T) {
	svc, err := New(Options{Base: oblivext.Config{BlockSize: 8, CacheWords: 512, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Get("bad/ns", 0); err == nil || !strings.Contains(err.Error(), "invalid namespace") {
		t.Errorf("bad namespace accepted: %v", err)
	}
	if _, err := svc.Get("ok", 99); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("bad slot accepted: %v", err)
	}
	if err := svc.Put("ok", 0, strings.Repeat("x", svc.ValueBytes()+1)); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Errorf("oversized value accepted: %v", err)
	}
	if err := svc.Put("ok", 0, strings.Repeat("y", svc.ValueBytes())); err != nil {
		t.Errorf("max-size value rejected: %v", err)
	}

	// The accounting contract: pre-session refusals count as Rejected, every
	// Error is charged to a session row, so rows always sum to Errors — even
	// with failures in the mix.
	st := svc.StatsSnapshot()
	if st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1 (the invalid-namespace Get)", st.Rejected)
	}
	var rowErrs int64
	for _, row := range st.Sessions {
		rowErrs += row.Errors
	}
	if st.Errors != 2 || rowErrs != st.Errors {
		t.Errorf("Errors = %d (rows sum %d), want 2 == sum (bad slot + oversized value)", st.Errors, rowErrs)
	}
}

func TestServiceInitFailureAccounting(t *testing.T) {
	// A session whose construction fails (unreachable backend) must charge
	// its own row, not just the fleet total — found live when a block-size
	// mismatch left /v1/stats showing fleet errors with all-zero rows.
	svc, err := New(Options{Base: oblivext.Config{
		BlockSize: 8, CacheWords: 512, Seed: 1,
		URL: "http://127.0.0.1:1", NetRetries: -1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Get("ghost", 0); err == nil {
		t.Fatal("Get against an unreachable backend succeeded")
	}
	if err := svc.Put("ghost", 0, "x"); err == nil {
		t.Fatal("Put against an unreachable backend succeeded")
	}
	st := svc.StatsSnapshot()
	if len(st.Sessions) != 1 || st.Sessions[0].Namespace != "ghost" {
		t.Fatalf("sessions %+v, want the one failed row", st.Sessions)
	}
	if st.Errors != 2 || st.Sessions[0].Errors != 2 || st.Rejected != 0 {
		t.Fatalf("errors fleet=%d row=%d rejected=%d, want 2/2/0", st.Errors, st.Sessions[0].Errors, st.Rejected)
	}
}

func TestServiceDrain(t *testing.T) {
	svc, err := New(Options{Base: oblivext.Config{BlockSize: 8, CacheWords: 512, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	front := httptest.NewServer(svc.Handler())
	defer front.Close()

	if err := svc.Put("alice", 1, "before"); err != nil {
		t.Fatal(err)
	}
	svc.BeginDrain()
	resp, err := http.Get(front.URL + "/v1/kv/alice/1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining GET: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp, err = http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz: status %d", resp.StatusCode)
	}
	// Liveness and stats stay up through a drain.
	resp, err = http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining /healthz: status %d", resp.StatusCode)
	}
	if !svc.StatsSnapshot().Draining {
		t.Fatal("stats don't report draining")
	}
}
