// Package kvservice is the ORAM-backed key-value service: a long-lived HTTP
// front end that hosts one oblivious RAM per namespace, so many tenants'
// Get/Put traffic rides one shared obstore fleet while each tenant's access
// pattern stays hidden inside its own ORAM simulation — the storage fleet
// sees which *namespace* is active (it must route the blocks somewhere) but
// learns nothing about which keys any tenant touches, with what values, or
// whether two requests touch the same key.
//
// The package is the service's engine; cmd/oramkv is the thin process
// wrapper (flags, signals) around it. Sessions — (namespace → oblivext
// Client + ORAM) pairs — materialize lazily on first use and serialize
// their own requests on a per-session mutex, so concurrent namespaces
// proceed in parallel while each ORAM sees the single-caller discipline the
// client stack requires.
package kvservice

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"oblivext"
	"oblivext/internal/extmem/netstore"
	"oblivext/internal/obs"
)

// Options configures a Service.
type Options struct {
	// Base is the oblivext configuration template every session is built
	// from; the service overrides Namespace per session (Base.Namespace
	// must be empty). Point it at a -namespaces obstore fleet for real
	// deployments, or leave it memory-backed for tests.
	Base oblivext.Config
	// Slots is each namespace's ORAM capacity in logical slots (default
	// 64). Keys are slot indices in [0, Slots); the ORAM touches the same
	// bucket shape whichever slot a request names.
	Slots int
	// MaxSessions caps how many namespaces the service will host (default
	// 64): each session holds an ORAM and a client cache, so the cap
	// bounds what an open endpoint could make the process allocate.
	MaxSessions int
	// Audit, when set, runs every session's live obliviousness auditor in
	// learn mode: each session folds its ORAM accesses into golden
	// fingerprints as it goes and any deviation (same op shape, different
	// trace) is a violation — surfaced per session in /v1/stats and summed
	// in /metrics. The soak tests run with this on.
	Audit bool
	// RetryAfter is the Retry-After hint on 503s while draining (default
	// 1s).
	RetryAfter time.Duration
}

// session is one namespace's slice of the service. Its mutex serializes the
// namespace's requests (an oblivext.Client is single-caller by contract)
// and guards the per-session counters; distinct sessions share nothing but
// the Service's bookkeeping map, so they run concurrently.
type session struct {
	mu      sync.Mutex
	ns      string
	client  *oblivext.Client
	kv      *oblivext.ORAM
	auditor *obs.Auditor
	initErr error
	gets    int64
	puts    int64
	errs    int64
}

// Service hosts the sessions and serves the HTTP API. Create with New,
// mount Handler, drain with BeginDrain, release with Close.
type Service struct {
	opts       Options
	valueBytes int // payload capacity of one slot

	mu       sync.Mutex
	sessions map[string]*session
	order    []string
	draining bool
	// Fleet-wide telemetry: request latency (wall clock, queueing on the
	// session mutex included — that wait is what a loaded tenant's callers
	// actually experience) and lifetime counters.
	getHist  netstore.LatencyHistogram
	putHist  netstore.LatencyHistogram
	gets     int64
	puts     int64
	errs     int64
	rejected int64
}

// New validates opts and returns a Service with no sessions yet.
func New(opts Options) (*Service, error) {
	if opts.Base.Namespace != "" {
		return nil, fmt.Errorf("kvservice: Base.Namespace %q must be empty (namespaces are per session)", opts.Base.Namespace)
	}
	if opts.Slots == 0 {
		opts.Slots = 64
	}
	if opts.Slots < 1 {
		return nil, fmt.Errorf("kvservice: Slots must be >= 1, got %d", opts.Slots)
	}
	if opts.MaxSessions == 0 {
		opts.MaxSessions = 64
	}
	if opts.MaxSessions < 1 {
		return nil, fmt.Errorf("kvservice: MaxSessions must be >= 1, got %d", opts.MaxSessions)
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	b := opts.Base.BlockSize
	if b == 0 {
		b = 8 // oblivext.New's own default
	}
	return &Service{
		opts:       opts,
		valueBytes: (b - 1) * 8,
		sessions:   make(map[string]*session),
	}, nil
}

// ValueBytes returns the payload capacity of one slot: one word of the
// BlockSize-word block carries the value length, the rest carry its bytes.
func (s *Service) ValueBytes() int { return s.valueBytes }

// session returns the namespace's session with its mutex HELD — the caller
// owns the session until it calls unlock. Status conveys the HTTP class of
// a failure (400 for a bad or excess namespace, 500 for a session whose
// construction failed).
func (s *Service) session(ns string) (se *session, status int, err error) {
	// Failures in here do their own accounting: a request refused before a
	// session exists counts as rejected (fleet-level only — there is no row
	// to charge), while an init failure charges the session's row AND the
	// fleet total, keeping rows-sum-to-Errors exact.
	if ns == "" || !netstore.ValidNamespace(ns) {
		s.countRejected()
		return nil, http.StatusBadRequest,
			fmt.Errorf("kvservice: invalid namespace %q (want 1..%d chars of [a-zA-Z0-9._-])", ns, netstore.MaxNamespaceLen)
	}
	s.mu.Lock()
	se, ok := s.sessions[ns]
	if !ok {
		if len(s.sessions) >= s.opts.MaxSessions {
			s.rejected++
			s.mu.Unlock()
			return nil, http.StatusBadRequest, fmt.Errorf("kvservice: session limit %d reached", s.opts.MaxSessions)
		}
		se = &session{ns: ns}
		s.sessions[ns] = se
		s.order = append(s.order, ns)
	}
	s.mu.Unlock()

	// Initialization happens under the session's own mutex, not the
	// service's: building an ORAM uploads and rebuilds levels (real I/O),
	// and other namespaces must not stall behind it.
	se.mu.Lock()
	if se.initErr != nil {
		se.errs++
		se.mu.Unlock()
		s.countErr()
		return nil, http.StatusInternalServerError, se.initErr
	}
	if se.client == nil {
		cfg := s.opts.Base
		cfg.Namespace = ns
		cfg.Seed = sessionSeed(s.opts.Base.Seed, ns)
		client, err := oblivext.New(cfg)
		if err != nil {
			se.initErr = fmt.Errorf("kvservice: session %q: %w", ns, err)
			se.errs++
			se.mu.Unlock()
			s.countErr()
			return nil, http.StatusInternalServerError, se.initErr
		}
		var auditor *obs.Auditor
		if s.opts.Audit {
			auditor = client.EnableAudit(true)
		}
		kv, err := client.NewORAM(s.opts.Slots)
		if err != nil {
			client.Close()
			se.initErr = fmt.Errorf("kvservice: session %q: %w", ns, err)
			se.errs++
			se.mu.Unlock()
			s.countErr()
			return nil, http.StatusInternalServerError, se.initErr
		}
		se.client, se.kv, se.auditor = client, kv, auditor
	}
	return se, http.StatusOK, nil
}

// sessionSeed derives a namespace's PRF seed from the base seed: a
// deterministic function of the namespace alone (never of creation order),
// so a namespace's trace is reproducible run-to-run and identical whether
// the session runs alone or alongside others — the property the
// cross-session adversary tests compare server journals across. FNV-1a over
// the name, folded to keep the offset positive.
func sessionSeed(base uint64, ns string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(ns); i++ {
		h ^= uint64(ns[i])
		h *= 1099511628211
	}
	return base + h
}

// Get reads the value stored at slot in ns ("" if never written). The
// programmatic twin of GET /v1/kv/{ns}/{slot} — the soak tests drive this
// directly so -race watches the service's own locking, not the HTTP stack.
func (s *Service) Get(ns string, slot int) (string, error) {
	start := time.Now()
	se, _, err := s.session(ns)
	if err != nil {
		return "", err
	}
	defer se.mu.Unlock()
	if slot < 0 || slot >= s.opts.Slots {
		se.errs++
		s.countErr()
		return "", fmt.Errorf("kvservice: slot %d out of range [0,%d)", slot, s.opts.Slots)
	}
	words, err := se.kv.Read(slot)
	if err != nil {
		se.errs++
		s.countErr()
		return "", err
	}
	se.gets++
	s.mu.Lock()
	s.gets++
	s.getHist.Observe(time.Since(start))
	s.mu.Unlock()
	return UnpackValue(words), nil
}

// Put stores value at slot in ns, replacing what was there. The
// programmatic twin of PUT /v1/kv/{ns}/{slot}.
func (s *Service) Put(ns string, slot int, value string) error {
	start := time.Now()
	se, _, err := s.session(ns)
	if err != nil {
		return err
	}
	defer se.mu.Unlock()
	if slot < 0 || slot >= s.opts.Slots {
		se.errs++
		s.countErr()
		return fmt.Errorf("kvservice: slot %d out of range [0,%d)", slot, s.opts.Slots)
	}
	if len(value) > s.valueBytes {
		se.errs++
		s.countErr()
		return fmt.Errorf("kvservice: value of %d bytes exceeds the %d-byte slot capacity", len(value), s.valueBytes)
	}
	b := s.valueBytes/8 + 1
	if err := se.kv.Write(slot, PackValue(value, b)); err != nil {
		se.errs++
		s.countErr()
		return err
	}
	se.puts++
	s.mu.Lock()
	s.puts++
	s.putHist.Observe(time.Since(start))
	s.mu.Unlock()
	return nil
}

func (s *Service) countErr() {
	s.mu.Lock()
	s.errs++
	s.mu.Unlock()
}

func (s *Service) countRejected() {
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
}

// PackValue encodes a string value into a b-word ORAM block: word 0 is the
// byte length, the remaining words carry the bytes little-endian. Length-
// prefixing (rather than NUL termination) keeps arbitrary bytes storable.
func PackValue(value string, b int) []uint64 {
	words := make([]uint64, b)
	words[0] = uint64(len(value))
	for i := 0; i < len(value); i++ {
		words[1+i/8] |= uint64(value[i]) << (8 * (i % 8))
	}
	return words
}

// UnpackValue decodes PackValue's encoding; a zero block (a slot never
// written) decodes as "".
func UnpackValue(words []uint64) string {
	if len(words) == 0 {
		return ""
	}
	n := int(words[0])
	if max := (len(words) - 1) * 8; n > max {
		n = max // a corrupt length must not make us read past the block
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(words[1+i/8] >> (8 * (i % 8)))
	}
	return string(out)
}

// SessionStats is one namespace's row in StatsSnapshot.
type SessionStats struct {
	Namespace string `json:"namespace"`
	Gets      int64  `json:"gets"`
	Puts      int64  `json:"puts"`
	Errors    int64  `json:"errors"`
	// BlockIOs is the session's lifetime oblivious block I/O count
	// (reads+writes the ORAM issued below the cache).
	BlockIOs int64 `json:"blockIOs"`
	// WireRequests is how many round trips the session's Disk charged —
	// with a network backend, requests actually put on the wire.
	WireRequests int64 `json:"wireRequests"`
	// AuditViolations counts live-auditor deviations (with Options.Audit;
	// always 0 on a correctly oblivious stack).
	AuditViolations int64 `json:"auditViolations"`
}

// Stats is the StatsSnapshot result: per-session rows plus fleet totals.
// The totals are maintained independently of the rows, so tests can assert
// the rows sum to them — per-session accounting that leaked across sessions
// would break the equality. Requests refused before a session row exists
// (invalid namespace, session cap) count under Rejected, not Errors, so
// Errors always equals the sum of the rows' Errors.
type Stats struct {
	Sessions []SessionStats `json:"sessions"`
	Gets     int64          `json:"gets"`
	Puts     int64          `json:"puts"`
	Errors   int64          `json:"errors"`
	Rejected int64          `json:"rejected"`
	Draining bool           `json:"draining"`
	GetP50Ms float64        `json:"getP50Ms"`
	GetP95Ms float64        `json:"getP95Ms"`
	GetP99Ms float64        `json:"getP99Ms"`
	PutP50Ms float64        `json:"putP50Ms"`
	PutP95Ms float64        `json:"putP95Ms"`
	PutP99Ms float64        `json:"putP99Ms"`
}

// StatsSnapshot collects the per-session counters and fleet totals.
func (s *Service) StatsSnapshot() Stats {
	s.mu.Lock()
	st := Stats{
		Gets: s.gets, Puts: s.puts, Errors: s.errs, Rejected: s.rejected, Draining: s.draining,
		GetP50Ms: ms(s.getHist.P50()), GetP95Ms: ms(s.getHist.P95()), GetP99Ms: ms(s.getHist.P99()),
		PutP50Ms: ms(s.putHist.P50()), PutP95Ms: ms(s.putHist.P95()), PutP99Ms: ms(s.putHist.P99()),
	}
	names := append([]string(nil), s.order...)
	sessions := make([]*session, 0, len(names))
	for _, ns := range names {
		sessions = append(sessions, s.sessions[ns])
	}
	s.mu.Unlock()
	for _, se := range sessions {
		se.mu.Lock()
		row := SessionStats{Namespace: se.ns, Gets: se.gets, Puts: se.puts, Errors: se.errs}
		if se.client != nil {
			io := se.client.Stats()
			row.BlockIOs = io.Total()
			row.WireRequests = io.RoundTrips
			if se.auditor != nil {
				_, _, violated := se.auditor.Stats()
				row.AuditViolations = int64(violated)
			}
		}
		se.mu.Unlock()
		st.Sessions = append(st.Sessions, row)
	}
	sort.Slice(st.Sessions, func(i, j int) bool { return st.Sessions[i].Namespace < st.Sessions[j].Namespace })
	return st
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BeginDrain flips the service into graceful drain: KV requests get 503 +
// Retry-After, /readyz reports not ready, in-flight requests finish. Stats
// and metrics stay live.
func (s *Service) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether the service refuses new KV work.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Close releases every session (each session's client in turn releases its
// connections and store). Callers drain first; Close does not wait.
func (s *Service) Close() error {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.order))
	for _, ns := range s.order {
		sessions = append(sessions, s.sessions[ns])
	}
	s.mu.Unlock()
	var first error
	for _, se := range sessions {
		se.mu.Lock()
		if se.client != nil {
			if err := se.client.Close(); err != nil && first == nil {
				first = err
			}
			se.client, se.kv = nil, nil
			se.initErr = fmt.Errorf("kvservice: session %q closed", se.ns)
		}
		se.mu.Unlock()
	}
	return first
}

// Handler returns the service's HTTP API:
//
//	GET  /v1/kv/{ns}/{slot}   read a slot (the body is the value verbatim)
//	PUT  /v1/kv/{ns}/{slot}   write a slot (the body is the value verbatim)
//	GET  /v1/stats            per-session counters + fleet totals (JSON)
//	GET  /metrics             Prometheus text
//	GET  /healthz             liveness
//	GET  /readyz              readiness (503 while draining)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/kv/{ns}/{slot}", s.handleGet)
	mux.HandleFunc("PUT /v1/kv/{ns}/{slot}", s.handlePut)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.refuseIfDraining(w) {
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, "ready\n")
	})
	return mux
}

func (s *Service) refuseIfDraining(w http.ResponseWriter) bool {
	s.mu.Lock()
	draining, retry := s.draining, s.opts.RetryAfter
	s.mu.Unlock()
	if !draining {
		return false
	}
	secs := int(retry / time.Second)
	if secs == 0 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, "kvservice: draining, retry shortly", http.StatusServiceUnavailable)
	return true
}

// reqSlot parses the {ns}/{slot} path values; it writes the error response
// itself when they don't parse.
func (s *Service) reqSlot(w http.ResponseWriter, r *http.Request) (ns string, slot int, ok bool) {
	ns = r.PathValue("ns")
	slot, err := strconv.Atoi(r.PathValue("slot"))
	if err != nil {
		http.Error(w, fmt.Sprintf("kvservice: bad slot %q", r.PathValue("slot")), http.StatusBadRequest)
		return "", 0, false
	}
	return ns, slot, true
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	if s.refuseIfDraining(w) {
		return
	}
	ns, slot, ok := s.reqSlot(w, r)
	if !ok {
		return
	}
	value, err := s.Get(ns, slot)
	if err != nil {
		http.Error(w, err.Error(), statusOf(err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	io.WriteString(w, value)
}

func (s *Service) handlePut(w http.ResponseWriter, r *http.Request) {
	if s.refuseIfDraining(w) {
		return
	}
	ns, slot, ok := s.reqSlot(w, r)
	if !ok {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, int64(s.valueBytes)+1))
	if err != nil {
		http.Error(w, fmt.Sprintf("kvservice: read value: %v", err), http.StatusRequestEntityTooLarge)
		return
	}
	if err := s.Put(ns, slot, string(body)); err != nil {
		http.Error(w, err.Error(), statusOf(err))
		return
	}
	w.WriteHeader(http.StatusOK)
}

// statusOf maps a Get/Put error to its HTTP status: caller mistakes (bad
// namespace, bad slot, oversized value) are 400/413, backend failures 500.
func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.StatsSnapshot())
}

func statusOf(err error) int {
	msg := err.Error()
	switch {
	case contains(msg, "out of range"), contains(msg, "invalid namespace"), contains(msg, "session limit"):
		return http.StatusBadRequest
	case contains(msg, "slot capacity"):
		return http.StatusRequestEntityTooLarge
	default:
		return http.StatusInternalServerError
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// handleMetrics exports the fleet counters in Prometheus text format.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.StatsSnapshot()
	var violations int64
	for _, row := range st.Sessions {
		violations += row.AuditViolations
	}
	s.mu.Lock()
	getHist, putHist := s.getHist, s.putHist
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("oramkv_gets_total", "Get requests served successfully.", st.Gets)
	counter("oramkv_puts_total", "Put requests served successfully.", st.Puts)
	counter("oramkv_errors_total", "Requests that failed inside a session (bad input or backend fault).", st.Errors)
	counter("oramkv_rejected_total", "Requests refused before a session existed (invalid namespace, session cap).", st.Rejected)
	counter("oramkv_audit_violations_total", "Live-auditor trace deviations, summed over sessions.", violations)
	fmt.Fprintf(w, "# HELP oramkv_sessions Namespaces this service hosts.\n# TYPE oramkv_sessions gauge\noramkv_sessions %d\n", len(st.Sessions))
	getHist.WritePrometheus(w, "oramkv_get_latency_seconds")
	putHist.WritePrometheus(w, "oramkv_put_latency_seconds")
}
