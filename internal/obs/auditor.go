package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// Fingerprint is a compact digest of one span's normalized access trace:
// the number of block accesses folded in and their running FNV-1a hash.
// Two spans with the same audit key must produce the same fingerprint — the
// obliviousness property, stated per phase.
type Fingerprint struct {
	Len  int64  `json:"len"`
	Hash uint64 `json:"hash"`
}

// Violation records one observed divergence from the golden fingerprint.
type Violation struct {
	Key    string      `json:"key"`
	Want   Fingerprint `json:"want"`
	Got    Fingerprint `json:"got"`
	Repeat int64       `json:"repeat"` // how many times this key diverged
}

func (v Violation) String() string {
	return fmt.Sprintf("audit violation for %q: trace fingerprint %016x/%d, golden %016x/%d",
		v.Key, v.Got.Hash, v.Got.Len, v.Want.Hash, v.Want.Len)
}

// Auditor is the live obliviousness monitor: audited spans report their
// trace fingerprints keyed by operation geometry (op, engine, n, B, M,
// placement), and the auditor compares each against the golden fingerprint
// recorded for that key. In learn mode the first observation of a key
// becomes golden; in enforce mode an unknown key is itself a violation.
//
// The property this monitors is exactly what the e2e adversary tests pin
// offline: for a data-oblivious algorithm the (normalized) access trace is
// a function of public geometry and the seed only, so replaying the same
// operation must replay the same fingerprint — any divergence means the
// access pattern depends on something it must not.
//
// An Auditor is safe for concurrent use (multiple collectors may share
// one), though a single collector drives it from one goroutine.
type Auditor struct {
	mu         sync.Mutex
	learn      bool
	golden     map[string]Fingerprint
	violations map[string]*Violation
	order      []string // violation keys, first-seen order
	observed   int64
	matched    int64
	// OnViolation, when set, is called (outside the lock) on every
	// divergence — the loud-flagging hook; cmd/obsort points it at stderr.
	OnViolation func(Violation)
}

// NewAuditor returns an auditor. With learn true, the first fingerprint
// seen for each key is recorded as golden; with learn false, every key must
// already be present (via LoadJSON or SetGolden) or its observation counts
// as a violation.
func NewAuditor(learn bool) *Auditor {
	return &Auditor{
		learn:      learn,
		golden:     make(map[string]Fingerprint),
		violations: make(map[string]*Violation),
	}
}

// Learning reports whether the auditor records first observations as golden.
func (a *Auditor) Learning() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.learn
}

// SetGolden installs (or overwrites) the golden fingerprint for a key.
func (a *Auditor) SetGolden(key string, fp Fingerprint) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.golden[key] = fp
}

// Golden returns the golden fingerprint for a key, if recorded.
func (a *Auditor) Golden(key string) (Fingerprint, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	fp, ok := a.golden[key]
	return fp, ok
}

// Observe compares one span's fingerprint against the golden one for its
// key, recording (and flagging) a violation on divergence.
func (a *Auditor) Observe(key string, fp Fingerprint) {
	a.mu.Lock()
	a.observed++
	want, ok := a.golden[key]
	if !ok && a.learn {
		a.golden[key] = fp
		a.matched++
		a.mu.Unlock()
		return
	}
	if ok && want == fp {
		a.matched++
		a.mu.Unlock()
		return
	}
	v, seen := a.violations[key]
	if seen {
		v.Repeat++
		v.Got = fp
	} else {
		v = &Violation{Key: key, Want: want, Got: fp, Repeat: 1}
		a.violations[key] = v
		a.order = append(a.order, key)
	}
	out := *v
	cb := a.OnViolation
	a.mu.Unlock()
	if cb != nil {
		cb(out)
	}
}

// Violations returns every recorded divergence, in first-seen order.
func (a *Auditor) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Violation, 0, len(a.order))
	for _, k := range a.order {
		out = append(out, *a.violations[k])
	}
	return out
}

// Stats returns (spans observed, spans matched, distinct violated keys).
func (a *Auditor) Stats() (observed, matched int64, violated int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.observed, a.matched, len(a.violations)
}

// goldenFile is the on-disk golden-fingerprint format: a versioned map so
// future normalization changes can invalidate stale files explicitly.
type goldenFile struct {
	Version int                    `json:"version"`
	Golden  map[string]Fingerprint `json:"golden"`
}

const goldenVersion = 1

// SaveJSON writes the golden fingerprints (keys sorted for stable diffs).
func (a *Auditor) SaveJSON(w io.Writer) error {
	a.mu.Lock()
	g := make(map[string]Fingerprint, len(a.golden))
	for k, v := range a.golden {
		g[k] = v
	}
	a.mu.Unlock()
	keys := make([]string, 0, len(g))
	for k := range g {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := goldenFile{Version: goldenVersion, Golden: make(map[string]Fingerprint, len(g))}
	for _, k := range keys {
		ordered.Golden[k] = g[k]
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&ordered)
}

// LoadJSON merges golden fingerprints from a prior SaveJSON.
func (a *Auditor) LoadJSON(r io.Reader) error {
	var gf goldenFile
	if err := json.NewDecoder(r).Decode(&gf); err != nil {
		return fmt.Errorf("obs: decoding golden fingerprints: %w", err)
	}
	if gf.Version != goldenVersion {
		return fmt.Errorf("obs: golden fingerprint file version %d, want %d (re-record)", gf.Version, goldenVersion)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for k, v := range gf.Golden {
		a.golden[k] = v
	}
	return nil
}

// SaveFile and LoadFile are the path-based conveniences cmd/obsort uses.
func (a *Auditor) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.SaveJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (a *Auditor) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return a.LoadJSON(f)
}
