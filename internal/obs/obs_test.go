package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fakeCounters drives a collector with a hand-cranked counter source.
type fakeCounters struct{ c Counters }

func (f *fakeCounters) read(kind byte, n int64) {
	if kind == 'R' {
		f.c.Reads += n
	} else {
		f.c.Writes += n
	}
	f.c.RoundTrips++
}

func TestSpanNestingAndDeltas(t *testing.T) {
	var fc fakeCounters
	col := NewCollector(func() Counters { return fc.c })

	root := col.Start("root")
	fc.read('R', 10)
	child1 := col.Start("child1")
	fc.read('W', 5)
	col.End(child1)
	child2 := col.Start("child2")
	fc.read('R', 3)
	fc.read('W', 3)
	col.End(child2)
	fc.read('W', 1)
	col.End(root)

	roots := col.Roots()
	if len(roots) != 1 || len(roots[0].Children) != 2 {
		t.Fatalf("tree shape: %d roots, %d children", len(roots), len(roots[0].Children))
	}
	if got := root.IO; got.Reads != 13 || got.Writes != 9 || got.RoundTrips != 5 {
		t.Fatalf("root IO = %+v", got)
	}
	if got := child1.IO; got.Writes != 5 || got.Reads != 0 {
		t.Fatalf("child1 IO = %+v", got)
	}
	// The attribution invariant: parent total = self + sum of children.
	want := child1.IO.Add(child2.IO).Add(root.Self())
	if root.IO != want {
		t.Fatalf("root.IO = %+v, self+children = %+v", root.IO, want)
	}
	if self := root.Self(); self.Reads != 10 || self.Writes != 1 || self.RoundTrips != 2 {
		t.Fatalf("root.Self() = %+v", self)
	}
	if sum := SumIO(roots); sum != root.IO {
		t.Fatalf("SumIO = %+v, want %+v", sum, root.IO)
	}
}

func TestEndOutOfOrderPanics(t *testing.T) {
	col := NewCollector(nil)
	outer := col.Start("outer")
	col.Start("inner")
	defer func() {
		if recover() == nil {
			t.Fatal("ending the outer span before the inner one did not panic")
		}
	}()
	col.End(outer)
}

func TestResetWithOpenSpanPanics(t *testing.T) {
	col := NewCollector(nil)
	col.Start("open")
	defer func() {
		if recover() == nil {
			t.Fatal("Reset with an open span did not panic")
		}
	}()
	col.Reset()
}

func TestNilCollectorIsFree(t *testing.T) {
	var col *Collector
	if col.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	sp := col.Start("anything") // must not panic, must return nil
	sp.SetAttr("k", "v")
	sp.SetAttrInt("n", 7)
	sp.SetPredicted(1, 2)
	sp.Audit("key")
	sp.AuditShape("key")
	col.Access('R', 42)
	col.End(sp)
	col.Reset()
	if col.Roots() != nil || col.Depth() != 0 || col.Auditor() != nil {
		t.Fatal("nil collector leaked state")
	}
}

func TestFingerprintModes(t *testing.T) {
	run := func(mode AuditMode, addrs []int64) Fingerprint {
		col := NewCollector(nil)
		sp := col.Start("s")
		if mode == AuditShape {
			sp.AuditShape("k")
		} else {
			sp.Audit("k")
		}
		for _, a := range addrs {
			col.Access('R', a)
		}
		col.End(sp)
		return sp.Fingerprint()
	}
	// Exact mode distinguishes address sequences; shape mode does not.
	a := run(AuditExact, []int64{1, 2, 3})
	b := run(AuditExact, []int64{3, 2, 1})
	if a == b {
		t.Fatal("exact fingerprints ignored addresses")
	}
	sa := run(AuditShape, []int64{1, 2, 3})
	sb := run(AuditShape, []int64{9, 8, 7})
	if sa != sb {
		t.Fatal("shape fingerprints depended on addresses")
	}
	if sa.Len != 3 {
		t.Fatalf("shape fingerprint length = %d, want 3", sa.Len)
	}
	// Replaying the same sequence replays the same fingerprint.
	if again := run(AuditExact, []int64{1, 2, 3}); again != a {
		t.Fatal("exact fingerprint not reproducible")
	}
}

func TestAuditorLearnAndEnforce(t *testing.T) {
	a := NewAuditor(true)
	var flagged []Violation
	a.OnViolation = func(v Violation) { flagged = append(flagged, v) }

	fp := Fingerprint{Len: 10, Hash: 0xabc}
	a.Observe("op/x", fp) // learn: becomes golden
	a.Observe("op/x", fp) // match
	if obs, matched, violated := a.Stats(); obs != 2 || matched != 2 || violated != 0 {
		t.Fatalf("clean stats: %d/%d/%d", obs, matched, violated)
	}
	a.Observe("op/x", Fingerprint{Len: 10, Hash: 0xdef}) // diverge
	if _, _, violated := a.Stats(); violated != 1 {
		t.Fatal("divergence not recorded")
	}
	if len(flagged) != 1 || flagged[0].Key != "op/x" {
		t.Fatalf("OnViolation: %+v", flagged)
	}
	if !strings.Contains(flagged[0].String(), "op/x") {
		t.Fatalf("violation message: %s", flagged[0])
	}

	// Enforce mode: an unknown key is a violation in itself.
	e := NewAuditor(false)
	e.Observe("never-seen", fp)
	if _, _, violated := e.Stats(); violated != 1 {
		t.Fatal("enforce mode accepted an unknown key")
	}
}

func TestAuditorJSONRoundTrip(t *testing.T) {
	a := NewAuditor(true)
	a.SetGolden("k1", Fingerprint{Len: 5, Hash: 0x1111})
	a.SetGolden("k2", Fingerprint{Len: 7, Hash: 0x2222})
	var buf bytes.Buffer
	if err := a.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	b := NewAuditor(false)
	if err := b.LoadJSON(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"k1", "k2"} {
		got, ok := b.Golden(k)
		want, _ := a.Golden(k)
		if !ok || got != want {
			t.Fatalf("golden %q: %+v vs %+v", k, got, want)
		}
	}
	// A wrong version must be rejected loudly, not half-loaded.
	bad := strings.Replace(buf.String(), `"version": 1`, `"version": 99`, 1)
	if err := NewAuditor(false).LoadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("version-99 golden file accepted")
	}
}

func TestChromeTraceStructure(t *testing.T) {
	var fc fakeCounters
	col := NewCollector(func() Counters { return fc.c })
	root := col.Start("sort")
	root.SetAttr("engine", "zigzag")
	root.Audit("sort/zigzag/test")
	fc.read('R', 4)
	child := col.Start("pass")
	child.SetPredicted(8, 2)
	fc.read('W', 4)
	col.End(child)
	col.End(root)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, col.Roots()); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 2 || out.DisplayTimeUnit != "ms" {
		t.Fatalf("events = %d, unit = %q", len(out.TraceEvents), out.DisplayTimeUnit)
	}
	ev := out.TraceEvents[0]
	if ev.Name != "sort" || ev.Ph != "X" || ev.Tid != 1 {
		t.Fatalf("root event: %+v", ev)
	}
	if ev.Args["engine"] != "zigzag" || ev.Args["audit_key"] != "sort/zigzag/test" {
		t.Fatalf("root args: %+v", ev.Args)
	}
	if out.TraceEvents[1].Args["predicted_io"] != float64(8) {
		t.Fatalf("child args: %+v", out.TraceEvents[1].Args)
	}

	// Multi-forest export: one tid per forest.
	col2 := NewCollector(nil)
	col2.End(col2.Start("other"))
	buf.Reset()
	if err := WriteChromeTrace(&buf, col.Roots(), col2.Roots()); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	tids := map[int]bool{}
	for _, e := range out.TraceEvents {
		tids[e.Tid] = true
	}
	if !tids[1] || !tids[2] {
		t.Fatalf("merged forests share tids: %+v", tids)
	}
}

func TestRenderTree(t *testing.T) {
	var fc fakeCounters
	col := NewCollector(func() Counters { return fc.c })
	root := col.Start("emsort")
	fc.read('R', 2)
	child := col.Start("run-formation")
	child.SetPredicted(4, -1)
	fc.read('W', 2)
	col.End(child)
	col.End(root)
	out := RenderTree(col.Roots())
	if !strings.Contains(out, "emsort:") || !strings.Contains(out, "  run-formation:") {
		t.Fatalf("tree rendering:\n%s", out)
	}
	if !strings.Contains(out, "[predicted 4 I/O, measured 2]") {
		t.Fatalf("prediction annotation missing:\n%s", out)
	}
}
