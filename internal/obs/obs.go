// Package obs is the observability layer: hierarchical phase spans with
// per-span I/O deltas, Chrome trace-event export, and a live obliviousness
// auditor that compares each span's access-trace fingerprint against a
// recorded golden one.
//
// The package is deliberately leaf-level (standard library only): extmem
// threads a Collector through the Disk and Env, and every stratum above —
// core passes, sorter engine rounds, ORAM accesses and rebuilds, emsort
// runs — opens spans around its phases. A nil *Collector is the disabled
// state: every method is nil-receiver safe and free, so instrumented code
// pays one pointer check when observability is off.
//
// Concurrency: a Collector is not internally synchronized. It relies on the
// same discipline as the Disk's I/O counters — spans are started and ended
// by the single goroutine driving the algorithms, and the prefetch/flush
// goroutines (which do call Access via the Disk) never overlap any other
// disk I/O or a span boundary; callers join them before a pass ends.
package obs

import (
	"fmt"
	"time"
)

// Counters is a snapshot of the I/O counters a Collector diffs around each
// span. Field-for-field it mirrors extmem.Stats (the Disk's counters with
// the crypto byte counters folded in), so the two convert as whole structs
// and a counter added to one cannot be silently dropped from the other.
type Counters struct {
	Reads       int64
	Writes      int64
	RoundTrips  int64
	BytesSealed int64
	BytesOpened int64
}

// Sub returns the component-wise difference c - o.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Reads:       c.Reads - o.Reads,
		Writes:      c.Writes - o.Writes,
		RoundTrips:  c.RoundTrips - o.RoundTrips,
		BytesSealed: c.BytesSealed - o.BytesSealed,
		BytesOpened: c.BytesOpened - o.BytesOpened,
	}
}

// Add returns the component-wise sum c + o.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		Reads:       c.Reads + o.Reads,
		Writes:      c.Writes + o.Writes,
		RoundTrips:  c.RoundTrips + o.RoundTrips,
		BytesSealed: c.BytesSealed + o.BytesSealed,
		BytesOpened: c.BytesOpened + o.BytesOpened,
	}
}

// Total returns reads plus writes — the block-I/O quantity the paper's
// bounds are stated in.
func (c Counters) Total() int64 { return c.Reads + c.Writes }

// Attr is one key=value annotation on a span (engine name, problem size,
// pass index — public quantities only; attrs end up in exported traces).
type Attr struct {
	Key, Value string
}

// AuditMode selects how a span's access trace is folded into its audit
// fingerprint.
type AuditMode byte

const (
	// AuditOff leaves the span unaudited (the default).
	AuditOff AuditMode = iota
	// AuditExact fingerprints the full normalized trace — the (kind,
	// address) sequence. Sound for spans whose trace is a deterministic
	// function of public geometry and the seed (every sorter engine, the
	// ORAM rebuilds under a deterministic rebuild sort): replaying the same
	// operation must replay the same fingerprint.
	AuditExact
	// AuditShape fingerprints only the kind sequence (R/W, in order),
	// discarding addresses. This is the normalization for spans that
	// legitimately contain PRF-fresh addresses — the ORAM's probe phase,
	// whose bucket indices differ per access while everything else about
	// the trace (how many reads per level, the one grouped write-back) is
	// fixed by the geometry.
	AuditShape
)

// Span is one phase of an algorithm: a named node in the span tree carrying
// wall time and the I/O counter deltas that occurred between its Start and
// End, its own children, and optionally a predicted I/O cost and an audit
// fingerprint.
type Span struct {
	Name  string
	Attrs []Attr
	// Start is the span's wall-clock start; Dur its wall duration.
	Start time.Time
	Dur   time.Duration
	// IO is the total counter delta over the span — self plus children.
	IO Counters
	// PredictedIO and PredictedRT carry an engine predictor's expected
	// block I/Os / round trips for the span; -1 means no prediction.
	PredictedIO int64
	PredictedRT int64
	Children    []*Span

	startIO   Counters
	auditKey  string
	auditMode AuditMode
	fpLen     int64
	fpHash    uint64
}

// SetAttr appends a key=value annotation.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{key, value})
}

// SetAttrInt appends an integer annotation.
func (s *Span) SetAttrInt(key string, value int64) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{key, fmt.Sprintf("%d", value)})
}

// SetPredicted attaches an engine predictor's expected block-I/O and
// round-trip counts (pass a negative value to leave one unset).
func (s *Span) SetPredicted(ios, roundTrips int64) {
	if s == nil {
		return
	}
	s.PredictedIO, s.PredictedRT = ios, roundTrips
}

// Audit marks the span for exact-trace auditing under the given key: at
// End, the collector hands the span's (kind, address) fingerprint to the
// attached Auditor. The key must name the operation and every public input
// that determines the trace — op, engine, n, B, M, placement, seed class.
func (s *Span) Audit(key string) {
	if s == nil {
		return
	}
	s.auditKey, s.auditMode = key, AuditExact
}

// AuditShape marks the span for shape-only auditing (kind sequence,
// addresses discarded) — the normalization for spans containing PRF-fresh
// addresses, like the ORAM probe phase.
func (s *Span) AuditShape(key string) {
	if s == nil {
		return
	}
	s.auditKey, s.auditMode = key, AuditShape
}

// AuditKey returns the span's audit key ("" when unaudited).
func (s *Span) AuditKey() string {
	if s == nil {
		return ""
	}
	return s.auditKey
}

// Fingerprint returns the span's accumulated trace fingerprint.
func (s *Span) Fingerprint() Fingerprint {
	if s == nil {
		return Fingerprint{}
	}
	return Fingerprint{Len: s.fpLen, Hash: s.fpHash}
}

// Self returns the span's own counter delta: IO minus the children's
// totals. By construction IO == Self() + sum of children's IO, which the
// attribution tests pin.
func (s *Span) Self() Counters {
	out := s.IO
	for _, ch := range s.Children {
		out = out.Sub(ch.IO)
	}
	return out
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Collector accumulates a span tree. Zero overhead when nil; one counter
// snapshot per span boundary and one hash fold per block access per open
// span when enabled.
type Collector struct {
	snapshot func() Counters
	roots    []*Span
	stack    []*Span
	auditor  *Auditor
}

// NewCollector returns a collector that reads counter snapshots from the
// given function (typically the Disk's Stats, crypto counters folded in).
func NewCollector(snapshot func() Counters) *Collector {
	if snapshot == nil {
		snapshot = func() Counters { return Counters{} }
	}
	return &Collector{snapshot: snapshot}
}

// Enabled reports whether the collector is live (non-nil).
func (c *Collector) Enabled() bool { return c != nil }

// SetAuditor attaches an auditor; every subsequently ended span with an
// audit key reports its fingerprint to it.
func (c *Collector) SetAuditor(a *Auditor) {
	if c == nil {
		return
	}
	c.auditor = a
}

// Auditor returns the attached auditor, if any.
func (c *Collector) Auditor() *Auditor {
	if c == nil {
		return nil
	}
	return c.auditor
}

// Start opens a span as a child of the innermost open span (or as a new
// root) and returns it. Nil-safe: a nil collector returns a nil span, which
// every Span method accepts.
func (c *Collector) Start(name string) *Span {
	if c == nil {
		return nil
	}
	s := &Span{
		Name:        name,
		Start:       time.Now(),
		PredictedIO: -1,
		PredictedRT: -1,
		startIO:     c.snapshot(),
		fpHash:      fnvOffset,
	}
	if n := len(c.stack); n > 0 {
		c.stack[n-1].Children = append(c.stack[n-1].Children, s)
	} else {
		c.roots = append(c.roots, s)
	}
	c.stack = append(c.stack, s)
	return s
}

// End closes the span, computing its wall duration and counter delta, and
// reports its fingerprint to the auditor when the span was marked for
// auditing. Spans must end in LIFO order; End(nil) is a no-op.
func (c *Collector) End(s *Span) {
	if c == nil || s == nil {
		return
	}
	n := len(c.stack)
	if n == 0 || c.stack[n-1] != s {
		panic(fmt.Sprintf("obs: End(%q) out of order", s.Name))
	}
	c.stack = c.stack[:n-1]
	s.Dur = time.Since(s.Start)
	s.IO = c.snapshot().Sub(s.startIO)
	if s.auditKey != "" && c.auditor != nil {
		c.auditor.Observe(s.auditKey, s.Fingerprint())
	}
}

// Access folds one block access into the fingerprint of every open span.
// The Disk calls this once per block moved; kind is 'R' or 'W'.
func (c *Collector) Access(kind byte, addr int64) {
	if c == nil {
		return
	}
	for _, s := range c.stack {
		h := s.fpHash
		h ^= uint64(kind)
		h *= fnvPrime
		if s.auditMode != AuditShape {
			x := uint64(addr)
			for i := 0; i < 8; i++ {
				h ^= x & 0xff
				h *= fnvPrime
				x >>= 8
			}
		}
		s.fpHash = h
		s.fpLen++
	}
}

// Roots returns the finished top-level spans (open spans are included once
// ended).
func (c *Collector) Roots() []*Span {
	if c == nil {
		return nil
	}
	return c.roots
}

// Depth returns how many spans are currently open.
func (c *Collector) Depth() int {
	if c == nil {
		return 0
	}
	return len(c.stack)
}

// Reset drops all finished spans. It panics if a span is still open — a
// reset mid-span would corrupt the tree's delta arithmetic, exactly like
// resetting the I/O counters mid-span would.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	if len(c.stack) > 0 {
		panic(fmt.Sprintf("obs: Reset with %d open span(s), innermost %q", len(c.stack), c.stack[len(c.stack)-1].Name))
	}
	c.roots = nil
}
