package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// chromeEvent is one Chrome trace-event ("ph":"X" complete event). The
// format is what Perfetto and chrome://tracing load natively: timestamps
// and durations in microseconds, args free-form.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the span forest as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Each tree
// gets its own tid so parallel collectors (one per bench environment) can
// be merged into one file.
func WriteChromeTrace(w io.Writer, forests ...[]*Span) error {
	tr := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	var t0 time.Time
	for _, roots := range forests {
		for _, s := range roots {
			if t0.IsZero() || s.Start.Before(t0) {
				t0 = s.Start
			}
		}
	}
	tid := 0
	for _, roots := range forests {
		tid++
		for _, s := range roots {
			appendChrome(&tr.TraceEvents, s, t0, tid)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&tr)
}

func appendChrome(out *[]chromeEvent, s *Span, t0 time.Time, tid int) {
	args := map[string]any{
		"reads":       s.IO.Reads,
		"writes":      s.IO.Writes,
		"round_trips": s.IO.RoundTrips,
	}
	if s.IO.BytesSealed > 0 || s.IO.BytesOpened > 0 {
		args["bytes_sealed"] = s.IO.BytesSealed
		args["bytes_opened"] = s.IO.BytesOpened
	}
	if s.PredictedIO >= 0 {
		args["predicted_io"] = s.PredictedIO
	}
	if s.PredictedRT >= 0 {
		args["predicted_round_trips"] = s.PredictedRT
	}
	for _, a := range s.Attrs {
		args[a.Key] = a.Value
	}
	if s.auditKey != "" {
		args["audit_key"] = s.auditKey
		args["audit_fp"] = fmt.Sprintf("%016x/%d", s.fpHash, s.fpLen)
	}
	*out = append(*out, chromeEvent{
		Name: s.Name,
		Ph:   "X",
		Ts:   float64(s.Start.Sub(t0).Microseconds()),
		Dur:  float64(s.Dur.Microseconds()),
		Pid:  1,
		Tid:  tid,
		Args: args,
	})
	for _, ch := range s.Children {
		appendChrome(out, ch, t0, tid)
	}
}

// RenderTree renders the span forest as a human-readable indented tree,
// one line per span with wall time, I/O deltas, and measured-vs-predicted
// block I/O where an engine predictor was attached.
func RenderTree(roots []*Span) string {
	var b strings.Builder
	for _, s := range roots {
		renderSpan(&b, s, 0)
	}
	return b.String()
}

func renderSpan(b *strings.Builder, s *Span, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s", s.Name)
	for _, a := range s.Attrs {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Value)
	}
	fmt.Fprintf(b, ": %v, %d R + %d W, %d rt",
		s.Dur.Round(time.Microsecond), s.IO.Reads, s.IO.Writes, s.IO.RoundTrips)
	if s.IO.BytesSealed > 0 || s.IO.BytesOpened > 0 {
		fmt.Fprintf(b, ", %d B sealed / %d B opened", s.IO.BytesSealed, s.IO.BytesOpened)
	}
	if s.PredictedIO >= 0 {
		fmt.Fprintf(b, " [predicted %d I/O, measured %d]", s.PredictedIO, s.IO.Total())
	}
	if s.PredictedRT >= 0 {
		fmt.Fprintf(b, " [predicted %d rt]", s.PredictedRT)
	}
	if s.auditKey != "" {
		fmt.Fprintf(b, " {audit %016x/%d}", s.fpHash, s.fpLen)
	}
	b.WriteByte('\n')
	for _, ch := range s.Children {
		renderSpan(b, ch, depth+1)
	}
}

// SumIO returns the component-wise sum of the root spans' counter deltas.
// When spans cover every operation between two stats resets, this equals
// the Disk's counters over the same window — the attribution invariant the
// tests and cmd/obsort check.
func SumIO(roots []*Span) Counters {
	var out Counters
	for _, s := range roots {
		out = out.Add(s.IO)
	}
	return out
}
