// Package rng provides the random tape and keyed hash family used by the
// data-oblivious algorithms.
//
// Obliviousness proofs in the paper condition on the algorithm's coin flips:
// the distribution of the I/O trace must be independent of the data values.
// The strongest checkable form of that property is "same tape, different
// data => identical trace", which requires that algorithms consume tape in a
// data-independent pattern (one coin per scanned position, never one coin
// per distinguished item). Tape makes that discipline auditable: it counts
// every draw, so tests can assert that two runs on different inputs consumed
// exactly the same number of random words.
package rng

import "math/rand/v2"

// Tape is a deterministic, seeded source of randomness. All randomized
// decisions in the library draw from a Tape so that runs are reproducible
// and obliviousness is testable ("fix the tape, vary the data").
type Tape struct {
	src   *rand.Rand
	draws int64
}

// NewTape returns a tape seeded with the two given words. Equal seeds yield
// identical draw sequences.
func NewTape(seed1, seed2 uint64) *Tape {
	return &Tape{src: rand.New(rand.NewPCG(seed1, seed2))}
}

// Draws reports how many random words have been consumed. Oblivious
// algorithms must consume a data-independent number of draws; tests compare
// this across inputs.
func (t *Tape) Draws() int64 { return t.draws }

// Uint64 returns the next random word.
func (t *Tape) Uint64() uint64 {
	t.draws++
	return t.src.Uint64()
}

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (t *Tape) IntN(n int) int {
	if n <= 0 {
		panic("rng: IntN with non-positive bound")
	}
	t.draws++
	return t.src.IntN(n)
}

// Coin returns true with probability num/den, consuming exactly one draw
// regardless of the outcome. It panics on a degenerate denominator.
func (t *Tape) Coin(num, den uint64) bool {
	if den == 0 {
		panic("rng: Coin with zero denominator")
	}
	t.draws++
	return t.src.Uint64N(den) < num
}

// CoinP returns true with probability p (clamped to [0,1]), consuming
// exactly one draw.
func (t *Tape) CoinP(p float64) bool {
	t.draws++
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return t.src.Float64() < p
}

// Fork returns a new tape seeded from this one. Subcomputations that run a
// data-independent number of times may use forked tapes to keep their draw
// counts local.
func (t *Tape) Fork() *Tape {
	return NewTape(t.Uint64(), t.Uint64())
}
