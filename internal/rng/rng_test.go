package rng

import (
	"testing"
	"testing/quick"
)

func TestTapeDeterminism(t *testing.T) {
	a := NewTape(42, 43)
	b := NewTape(42, 43)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("draw %d diverged for equal seeds", i)
		}
	}
	if a.Draws() != 1000 {
		t.Fatalf("draws = %d, want 1000", a.Draws())
	}
}

func TestTapeSeedsDiffer(t *testing.T) {
	a := NewTape(1, 2)
	b := NewTape(1, 3)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 4 {
		t.Fatalf("different seeds produced %d/64 equal draws", same)
	}
}

// TestCoinConsumptionIsOutcomeIndependent verifies the property that makes
// trace-equality testing sound: every Coin costs exactly one draw whether it
// lands heads or tails.
func TestCoinConsumptionIsOutcomeIndependent(t *testing.T) {
	tp := NewTape(7, 8)
	for i := 0; i < 100; i++ {
		before := tp.Draws()
		tp.Coin(1, 1000) // almost always false
		tp.CoinP(0.999)  // almost always true
		if tp.Draws() != before+2 {
			t.Fatal("coin draw count depended on outcome")
		}
	}
}

func TestCoinBias(t *testing.T) {
	tp := NewTape(9, 10)
	n, hits := 200000, 0
	for i := 0; i < n; i++ {
		if tp.Coin(1, 4) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if got < 0.24 || got > 0.26 {
		t.Fatalf("Coin(1,4) frequency = %.4f, want ~0.25", got)
	}
}

func TestCoinPEdges(t *testing.T) {
	tp := NewTape(1, 1)
	if tp.CoinP(0) {
		t.Error("CoinP(0) returned true")
	}
	if !tp.CoinP(1) {
		t.Error("CoinP(1) returned false")
	}
	if tp.CoinP(-0.5) {
		t.Error("CoinP(-0.5) returned true")
	}
}

func TestIntNRange(t *testing.T) {
	tp := NewTape(5, 6)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := tp.IntN(7)
		if v < 0 || v >= 7 {
			t.Fatalf("IntN(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("IntN(7) hit only %d/7 values in 1000 draws", len(seen))
	}
}

func TestForkIndependence(t *testing.T) {
	a := NewTape(11, 12)
	b := NewTape(11, 12)
	fa := a.Fork()
	fb := b.Fork()
	for i := 0; i < 100; i++ {
		if fa.Uint64() != fb.Uint64() {
			t.Fatal("forks of identical tapes diverged")
		}
	}
}

func TestHasherDistinctIndices(t *testing.T) {
	h := NewHasher(99, 4, 100)
	idx := make([]int, 0, 4)
	for key := uint64(0); key < 500; key++ {
		idx = h.Indices(idx[:0], key)
		seen := map[int]bool{}
		for _, v := range idx {
			if v < 0 || v >= 100 {
				t.Fatalf("index %d out of table", v)
			}
			if seen[v] {
				t.Fatalf("key %d: duplicate cell index %d", key, v)
			}
			seen[v] = true
		}
	}
}

func TestHasherSubtablePartition(t *testing.T) {
	for _, cfg := range []struct{ k, m int }{{4, 103}, {4, 6}, {3, 3}, {4, 100}, {5, 17}} {
		h := NewHasher(3, cfg.k, cfg.m)
		for key := uint64(0); key < 200; key++ {
			for i := 0; i < cfg.k; i++ {
				v := h.Index(i, key)
				lo := i * cfg.m / cfg.k
				hi := (i + 1) * cfg.m / cfg.k
				if v < lo || v >= hi {
					t.Fatalf("k=%d m=%d: h_%d(%d) = %d outside subtable [%d,%d)", cfg.k, cfg.m, i, key, v, lo, hi)
				}
				if h.Subtable(v) != i {
					t.Fatalf("k=%d m=%d: Subtable(%d) = %d, want %d", cfg.k, cfg.m, v, h.Subtable(v), i)
				}
			}
		}
	}
}

func TestHasherDeterminism(t *testing.T) {
	f := func(seed, key uint64) bool {
		h1 := NewHasher(seed, 3, 50)
		h2 := NewHasher(seed, 3, 50)
		for i := 0; i < 3; i++ {
			if h1.Index(i, key) != h2.Index(i, key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHasherSpread(t *testing.T) {
	h := NewHasher(17, 1, 64)
	counts := make([]int, 64)
	for key := uint64(0); key < 6400; key++ {
		counts[h.Index(0, key)]++
	}
	for c, v := range counts {
		if v == 0 {
			t.Fatalf("cell %d never hit in 6400 draws over 64 cells", c)
		}
	}
}

func TestMixAvalanche(t *testing.T) {
	// Flipping one input bit should change roughly half the output bits.
	base := Mix(1, 12345)
	flipped := Mix(1, 12345^1)
	diff := base ^ flipped
	bits := 0
	for diff != 0 {
		bits += int(diff & 1)
		diff >>= 1
	}
	if bits < 16 || bits > 48 {
		t.Fatalf("avalanche bits = %d, want ~32", bits)
	}
}
