package rng

// Hasher is the keyed hash family h_1..h_k used by the invertible Bloom
// lookup table (paper §2). The paper assumes the random-oracle model and
// that the k values h_i(x) are distinct, "which can be achieved by a number
// of methods, including partitioning" — we partition: the table of m cells
// is split into k subtables and h_i maps into subtable i, so the k cell
// indices are always distinct.
type Hasher struct {
	seed uint64
	k    int
	m    int
}

// NewHasher returns a hash family of k functions over a table of m cells.
// It panics unless 1 <= k <= m. Subtable i spans cells
// [floor(i·m/k), floor((i+1)·m/k)) — a balanced partition in which every
// subtable is non-empty for any m >= k.
func NewHasher(seed uint64, k, m int) *Hasher {
	if k < 1 || m < k {
		panic("rng: NewHasher requires 1 <= k <= m")
	}
	return &Hasher{seed: seed, k: k, m: m}
}

// K returns the number of hash functions.
func (h *Hasher) K() int { return h.k }

// M returns the table size the family maps into.
func (h *Hasher) M() int { return h.m }

// mix64 is the splitmix64 finalizer: a strong 64-bit mixing permutation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Index returns h_i(key): a cell index inside subtable i. The k indices for
// a fixed key are pairwise distinct because subtables are disjoint.
func (h *Hasher) Index(i int, key uint64) int {
	if i < 0 || i >= h.k {
		panic("rng: hash function index out of range")
	}
	lo := i * h.m / h.k
	hi := (i + 1) * h.m / h.k
	v := mix64(h.seed ^ mix64(key+uint64(i)*0x9e3779b97f4a7c15))
	return lo + int(v%uint64(hi-lo))
}

// Subtable returns which hash function's subtable the given cell index
// belongs to: the smallest i with cell < floor((i+1)·m/k).
func (h *Hasher) Subtable(cell int) int {
	if cell < 0 || cell >= h.m {
		panic("rng: cell index out of range")
	}
	return (cell*h.k+h.k+h.m-1)/h.m - 1
}

// Indices appends the k distinct cell indices for key to dst and returns it.
func (h *Hasher) Indices(dst []int, key uint64) []int {
	for i := 0; i < h.k; i++ {
		dst = append(dst, h.Index(i, key))
	}
	return dst
}

// Mix returns a data-independent 64-bit mix of the seed and x; used for
// deterministic dummy addresses and tie-breaking.
func Mix(seed, x uint64) uint64 { return mix64(seed ^ mix64(x)) }
