//go:build race

package integration

// raceEnabled reports that this binary was built with the race detector.
// The randomized suite uses it to trim its heaviest backend × size
// duplicates: under the detector every store interaction costs roughly an
// order of magnitude more wall clock (each HTTP request and each per-shard
// fan-out goroutine is instrumented), so the largest network and sharded
// randomized-sorter cases alone would exceed go test's per-package timeout
// while adding no interleaving coverage beyond their smaller siblings.
const raceEnabled = true
