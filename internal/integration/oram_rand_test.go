// Package integration holds cross-package tests that would create import
// cycles if they lived next to the code they exercise (core depends on
// oram; these tests drive oram with core's randomized sorter), plus the
// whole-stack randomized suites that need every backend at once: MemStore,
// the sharded fan-out, and the real HTTP network store.
package integration

import (
	"fmt"
	"math/rand/v2"
	"net/http/httptest"
	"strings"
	"testing"

	"oblivext/internal/core"
	"oblivext/internal/extmem"
	"oblivext/internal/extmem/netstore"
	"oblivext/internal/extmem/shard"
	"oblivext/internal/obsort"
	"oblivext/internal/oram"
	"oblivext/internal/trace"
)

const (
	blockB = 8
	cacheM = 512
)

// backendCase builds an Env over one of the storage backends. Every backend
// must be indistinguishable above the BlockStore interface, so the same
// deterministic workload must pass — and produce the same contents — on all
// of them.
type backendCase struct {
	name string
	make func(t *testing.T, startBlocks int, seed uint64) *extmem.Env
}

func backends() []backendCase {
	return []backendCase{
		{"mem", func(t *testing.T, startBlocks int, seed uint64) *extmem.Env {
			return extmem.NewEnv(startBlocks, blockB, cacheM, seed)
		}},
		{"sharded-4", func(t *testing.T, startBlocks int, seed uint64) *extmem.Env {
			const k = 4
			children := make([]extmem.BlockStore, k)
			for i := range children {
				children[i] = extmem.NewMemStore(extmem.CeilDiv(startBlocks, k), blockB)
			}
			sh, err := shard.New(children)
			if err != nil {
				t.Fatal(err)
			}
			return extmem.NewEnvOn(sh, cacheM, seed)
		}},
		{"network", func(t *testing.T, startBlocks int, seed uint64) *extmem.Env {
			srv := netstore.NewServer(extmem.NewMemStore(startBlocks, blockB), netstore.ServerOptions{})
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(ts.Close)
			c, err := netstore.Dial(ts.URL, netstore.Options{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			return extmem.NewEnvOn(c, cacheM, seed)
		}},
		// The crypt leg runs the whole randomized suite through the
		// client-side encryption decorator: every write seals under a fresh
		// IV, every read authenticates and opens, and — via the shared
		// trace-invariance tests — the logical trace must stay bit-identical
		// to the plaintext backends'.
		{"crypt-mem", func(t *testing.T, startBlocks int, seed uint64) *extmem.Env {
			cs, err := extmem.NewCryptStore(
				extmem.NewMemStore(startBlocks, extmem.CryptChildBlockSize(blockB)), testEncryptor(t), blockB)
			if err != nil {
				t.Fatal(err)
			}
			return extmem.NewEnvOn(cs, cacheM, seed)
		}},
		{"crypt-network", func(t *testing.T, startBlocks int, seed uint64) *extmem.Env {
			srv := netstore.NewServer(
				extmem.NewMemStore(startBlocks, extmem.CryptChildBlockSize(blockB)), netstore.ServerOptions{})
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(ts.Close)
			c, err := netstore.Dial(ts.URL, netstore.Options{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			cs, err := extmem.NewCryptStore(c, testEncryptor(t), blockB)
			if err != nil {
				t.Fatal(err)
			}
			return extmem.NewEnvOn(cs, cacheM, seed)
		}},
	}
}

// testEncryptor builds the fixed-key encryptor the crypt backends share.
func testEncryptor(t *testing.T) *extmem.Encryptor {
	t.Helper()
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i*29 + 5)
	}
	enc, err := extmem.NewEncryptor(key)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// sorters are the rebuild strategies under test: the auto-selecting default
// (nil Sorter — every rebuild picks an engine from its own public geometry),
// deterministic bitonic (Lemma 2's role), and the paper's randomized sort
// (the §1 headline configuration).
var sorters = []struct {
	name string
	s    obsort.Sorter
}{
	{"auto", nil},
	{"bitonic", obsort.BitonicSorter},
	{"randomized", core.RandomizedSorter},
}

// TestORAMRandomizedBackends is the deterministic-seed randomized suite:
// for every backend × ORAM size × rebuild sorter, a seeded stream of mixed
// reads and writes is checked against an in-memory mirror, then the full
// address space is swept. Equal seeds make failures reproducible — rerun
// with the printed case name.
func TestORAMRandomizedBackends(t *testing.T) {
	cases := []struct {
		n, ops int
		seed   uint64
	}{
		{n: 16, ops: 64, seed: 1},
		{n: 32, ops: 96, seed: 2},
		{n: 64, ops: 128, seed: 3},
	}
	for _, be := range backends() {
		for _, sc := range sorters {
			for _, tc := range cases {
				// ORAM accesses are batched (≤ LiveLevels+1 round trips per
				// access instead of 2·beta·L scalar ones), so the default
				// auto-selected engine and bitonic run the full size matrix
				// on every backend, real HTTP included — no network caps.
				// The randomized rebuild sorter keeps exactly one small HTTP
				// case (n=16) as a regression control: its rebuilds move
				// ~50× a deterministic engine's block volume at this tiny
				// cache, which over loopback HTTP buys minutes of wall clock
				// and no coverage beyond the small case.
				ops := tc.ops
				overHTTP := be.name == "network" || be.name == "crypt-network"
				isCrypt := strings.HasPrefix(be.name, "crypt-")
				if overHTTP && sc.name == "randomized" && tc.n > 16 {
					continue
				}
				// The crypt legs are here to exercise the sealing path under
				// randomized workloads and pin its trace invariance — size
				// coverage belongs to the plaintext backends. Per-block
				// HMAC-SHA256 makes the randomized sorter's rebuild volume
				// ~10× slower sealed, so cap the crypt cases.
				if isCrypt && (tc.n > 32 || (sc.name == "randomized" && tc.n > 16)) {
					continue
				}
				// Under the race detector every interaction is ~10× slower;
				// keep one representative per backend and drop the heavy
				// duplicates (they add size, not interleaving coverage).
				if raceEnabled {
					if (overHTTP || isCrypt) && (tc.n > 16 || sc.name == "randomized") {
						continue
					}
					if be.name == "sharded-4" && sc.name == "randomized" && tc.n > 32 {
						continue
					}
				}
				name := fmt.Sprintf("%s/%s/n=%d/seed=%d", be.name, sc.name, tc.n, tc.seed)
				t.Run(name, func(t *testing.T) {
					env := be.make(t, 64, tc.seed)
					o, err := oram.New(env, tc.n, oram.Options{Sorter: sc.s})
					if err != nil {
						t.Fatal(err)
					}
					r := rand.New(rand.NewPCG(tc.seed, 0x6f72616d)) // "oram"
					mirror := make([][]uint64, tc.n)
					for i := 0; i < ops; i++ {
						j := r.IntN(tc.n)
						if r.IntN(3) > 0 { // writes twice as likely: churn the levels
							payload := make([]uint64, blockB)
							for w := range payload {
								payload[w] = r.Uint64()
							}
							if err := o.Write(j, payload); err != nil {
								t.Fatalf("op %d write %d: %v", i, j, err)
							}
							mirror[j] = payload
						} else {
							got, err := o.Read(j)
							if err != nil {
								t.Fatalf("op %d read %d: %v", i, j, err)
							}
							checkPayload(t, i, j, got, mirror[j])
						}
					}
					// Full sweep: every logical block, written or not.
					for j := 0; j < tc.n; j++ {
						got, err := o.Read(j)
						if err != nil {
							t.Fatalf("sweep read %d: %v", j, err)
						}
						checkPayload(t, -1, j, got, mirror[j])
					}
				})
			}
		}
	}
}

// checkPayload compares an ORAM read against the mirror; a never-written
// block must read back zeroed.
func checkPayload(t *testing.T, op, j int, got, want []uint64) {
	t.Helper()
	if len(got) != blockB {
		t.Fatalf("op %d: block %d has %d words, want %d", op, j, len(got), blockB)
	}
	for w := range got {
		expect := uint64(0)
		if want != nil {
			expect = want[w]
		}
		if got[w] != expect {
			t.Fatalf("op %d: block %d word %d = %d, want %d", op, j, w, got[w], expect)
		}
	}
}

// TestORAMTraceInvarianceAcrossBackends pins that the backend cannot change
// what the algorithms do: the Disk-level logical trace of the same seeded
// workload is bit-identical on MemStore, the sharded store, and the network
// store (each backend only changes who serves the sequence, never the
// sequence).
func TestORAMTraceInvarianceAcrossBackends(t *testing.T) {
	// Rebuilds run the default auto-selected engine: the pick is a public
	// function of each rebuild's geometry, so it resolves identically on
	// every backend and the claim covers the default configuration.
	const n, ops, seed = 16, 32, 7
	type result struct {
		name string
		len  int64
		hash uint64
	}
	var results []result
	for _, be := range backends() {
		env := be.make(t, 64, seed)
		env.D.SetRecorder(trace.NewRecorder(0))
		o, err := oram.New(env, n, oram.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewPCG(seed, 99))
		for i := 0; i < ops; i++ {
			j := r.IntN(n)
			switch r.IntN(3) {
			case 0:
				if err := o.Write(j, make([]uint64, blockB)); err != nil {
					t.Fatal(err)
				}
			case 1:
				if _, err := o.Read(j); err != nil {
					t.Fatal(err)
				}
			default:
				if err := o.Dummy(); err != nil {
					t.Fatal(err)
				}
			}
		}
		s := env.D.Recorder().Summarize()
		results = append(results, result{be.name, s.Len, s.Hash})
	}
	for _, r := range results[1:] {
		if r.len != results[0].len || r.hash != results[0].hash {
			t.Fatalf("logical trace differs across backends: %s %d/%016x vs %s %d/%016x",
				results[0].name, results[0].len, results[0].hash, r.name, r.len, r.hash)
		}
	}
}

// TestORAMAccessSequenceShapeInvariance is the cross-backend half of the
// batched-access security upgrade. For every backend it runs two access
// streams of equal length that differ in every data-dependent way (disjoint
// key sets, different read/write/Dummy mixes) and asserts: (a) the raw
// per-block trace of each stream is bit-identical across mem, sharded, and
// HTTP backends — the backend can never change what Bob is told; and
// (b) within each backend, the two streams' normalized traces — every op
// mapped to (kind, level, slot-within-bucket), erasing only the PRF-fresh
// bucket index that carries the construction's distributional randomness —
// are bit-identical, as are their exact round-trip counts. Everything the
// adversary sees except the fresh bucket draws is a deterministic function
// of (n, B, t, seed).
func TestORAMAccessSequenceShapeInvariance(t *testing.T) {
	const n, steps, seed = 16, 48, 23
	type stream struct {
		name string
		op   func(o *oram.ORAM, step int) error
	}
	streams := []stream{
		{"low-keys-rw", func(o *oram.ORAM, step int) error {
			if step%2 == 0 {
				_, err := o.Read(step % (n / 2))
				return err
			}
			return o.Write(step%(n/2), make([]uint64, blockB))
		}},
		{"high-keys-dummy", func(o *oram.ORAM, step int) error {
			if step%3 == 0 {
				return o.Dummy()
			}
			k := n/2 + step%(n/2)
			if step%3 == 1 {
				_, err := o.Read(k)
				return err
			}
			payload := make([]uint64, blockB)
			payload[0] = uint64(step)
			return o.Write(k, payload)
		}},
	}
	type result struct {
		raw   trace.Summary
		norm  uint64
		rts   int64
		beLab string
	}
	results := make(map[string][]result) // stream name -> per-backend results
	for _, be := range backends() {
		for _, st := range streams {
			env := be.make(t, 64, seed)
			rec := trace.NewRecorder(1 << 22)
			env.D.SetRecorder(rec)
			o, err := oram.New(env, n, oram.Options{})
			if err != nil {
				t.Fatal(err)
			}
			rec.Enable(1 << 22)
			env.D.ResetStats()
			for step := 0; step < steps; step++ {
				if err := st.op(o, step); err != nil {
					t.Fatalf("%s/%s step %d: %v", be.name, st.name, step, err)
				}
			}
			ops := rec.Ops()
			if int64(len(ops)) != rec.Len() {
				t.Fatalf("%s/%s: recorder overflow (%d kept of %d)", be.name, st.name, len(ops), rec.Len())
			}
			ranges := o.LevelRanges()
			beta := int64(o.BucketSize())
			const fnvOffset, fnvPrime = 14695981039346656037, 1099511628211
			h := uint64(fnvOffset)
			mix := func(v uint64) {
				for i := 0; i < 8; i++ {
					h ^= v & 0xff
					h *= fnvPrime
					v >>= 8
				}
			}
			for _, op := range ops {
				lvl, slot := int64(-1), op.Addr
				for li, r := range ranges {
					if op.Addr >= int64(r[0]) && op.Addr < int64(r[1]) {
						lvl, slot = int64(li), (op.Addr-int64(r[0]))%beta
						break
					}
				}
				mix(uint64(op.Kind))
				mix(uint64(lvl))
				mix(uint64(slot))
			}
			results[st.name] = append(results[st.name], result{
				raw: rec.Summarize(), norm: h, rts: env.D.Stats().RoundTrips, beLab: be.name,
			})
		}
	}
	// (a) same stream, different backends: raw traces bit-identical.
	for name, rs := range results {
		for _, r := range rs[1:] {
			if !r.raw.Equal(rs[0].raw) {
				t.Fatalf("stream %s: raw trace differs across backends: %s %v vs %s %v",
					name, rs[0].beLab, rs[0].raw, r.beLab, r.raw)
			}
		}
	}
	// (b) same backend, different streams: normalized traces and round
	// trips identical.
	a, b := results[streams[0].name], results[streams[1].name]
	for i := range a {
		if a[i].norm != b[i].norm || a[i].rts != b[i].rts {
			t.Fatalf("backend %s: access streams distinguishable: norm %016x/%d rts vs %016x/%d rts",
				a[i].beLab, a[i].norm, a[i].rts, b[i].norm, b[i].rts)
		}
	}
}

// TestORAMWithRandomizedRebuilds keeps the original E10 smoke shape: an
// ORAM whose level rebuilds use the paper's randomized sort, driven past 2N
// writes so the deeper levels rebuild at least once.
func TestORAMWithRandomizedRebuilds(t *testing.T) {
	for _, n := range []int{32, 64} {
		for si, s := range []obsort.Sorter{obsort.BitonicSorter, core.RandomizedSorter} {
			env := extmem.NewEnv(64, 8, 512, uint64(n))
			o, err := oram.New(env, n, oram.Options{Sorter: s})
			if err != nil {
				t.Fatalf("n=%d sorter=%d: %v", n, si, err)
			}
			for i := 0; i < 2*n; i++ {
				if err := o.Write(i%n, make([]uint64, 8)); err != nil {
					t.Fatalf("n=%d sorter=%d write %d: %v", n, si, i, err)
				}
			}
		}
	}
}
