// Package integration holds cross-package tests that would create import
// cycles if they lived next to the code they exercise (core depends on
// oram; these tests drive oram with core's randomized sorter), plus the
// whole-stack randomized suites that need every backend at once: MemStore,
// the sharded fan-out, and the real HTTP network store.
package integration

import (
	"fmt"
	"math/rand/v2"
	"net/http/httptest"
	"testing"

	"oblivext/internal/core"
	"oblivext/internal/extmem"
	"oblivext/internal/extmem/netstore"
	"oblivext/internal/extmem/shard"
	"oblivext/internal/obsort"
	"oblivext/internal/oram"
	"oblivext/internal/trace"
)

const (
	blockB = 8
	cacheM = 512
)

// backendCase builds an Env over one of the storage backends. Every backend
// must be indistinguishable above the BlockStore interface, so the same
// deterministic workload must pass — and produce the same contents — on all
// of them.
type backendCase struct {
	name string
	make func(t *testing.T, startBlocks int, seed uint64) *extmem.Env
}

func backends() []backendCase {
	return []backendCase{
		{"mem", func(t *testing.T, startBlocks int, seed uint64) *extmem.Env {
			return extmem.NewEnv(startBlocks, blockB, cacheM, seed)
		}},
		{"sharded-4", func(t *testing.T, startBlocks int, seed uint64) *extmem.Env {
			const k = 4
			children := make([]extmem.BlockStore, k)
			for i := range children {
				children[i] = extmem.NewMemStore(extmem.CeilDiv(startBlocks, k), blockB)
			}
			sh, err := shard.New(children)
			if err != nil {
				t.Fatal(err)
			}
			return extmem.NewEnvOn(sh, cacheM, seed)
		}},
		{"network", func(t *testing.T, startBlocks int, seed uint64) *extmem.Env {
			srv := netstore.NewServer(extmem.NewMemStore(startBlocks, blockB), netstore.ServerOptions{})
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(ts.Close)
			c, err := netstore.Dial(ts.URL, netstore.Options{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			return extmem.NewEnvOn(c, cacheM, seed)
		}},
	}
}

// sorters are the two rebuild strategies: deterministic bitonic (Lemma 2's
// role) and the paper's randomized sort (the §1 headline configuration).
var sorters = []struct {
	name string
	s    obsort.Sorter
}{
	{"bitonic", obsort.BitonicSorter},
	{"randomized", core.RandomizedSorter},
}

// TestORAMRandomizedBackends is the deterministic-seed randomized suite:
// for every backend × ORAM size × rebuild sorter, a seeded stream of mixed
// reads and writes is checked against an in-memory mirror, then the full
// address space is swept. Equal seeds make failures reproducible — rerun
// with the printed case name.
func TestORAMRandomizedBackends(t *testing.T) {
	cases := []struct {
		n, ops int
		seed   uint64
	}{
		{n: 16, ops: 64, seed: 1},
		{n: 32, ops: 96, seed: 2},
	}
	for _, be := range backends() {
		for _, sc := range sorters {
			for _, tc := range cases {
				ops := tc.ops
				if be.name == "network" {
					// The hierarchical ORAM still probes level by level
					// (scalar requests — see ROADMAP "Batched ORAM
					// accesses"), so larger sizes over real HTTP are all
					// latency and no extra coverage.
					if tc.n > 16 {
						continue
					}
					ops = min(ops, 32)
				}
				name := fmt.Sprintf("%s/%s/n=%d/seed=%d", be.name, sc.name, tc.n, tc.seed)
				t.Run(name, func(t *testing.T) {
					env := be.make(t, 64, tc.seed)
					o, err := oram.New(env, tc.n, oram.Options{Sorter: sc.s})
					if err != nil {
						t.Fatal(err)
					}
					r := rand.New(rand.NewPCG(tc.seed, 0x6f72616d)) // "oram"
					mirror := make([][]uint64, tc.n)
					for i := 0; i < ops; i++ {
						j := r.IntN(tc.n)
						if r.IntN(3) > 0 { // writes twice as likely: churn the levels
							payload := make([]uint64, blockB)
							for w := range payload {
								payload[w] = r.Uint64()
							}
							if err := o.Write(j, payload); err != nil {
								t.Fatalf("op %d write %d: %v", i, j, err)
							}
							mirror[j] = payload
						} else {
							got, err := o.Read(j)
							if err != nil {
								t.Fatalf("op %d read %d: %v", i, j, err)
							}
							checkPayload(t, i, j, got, mirror[j])
						}
					}
					// Full sweep: every logical block, written or not.
					for j := 0; j < tc.n; j++ {
						got, err := o.Read(j)
						if err != nil {
							t.Fatalf("sweep read %d: %v", j, err)
						}
						checkPayload(t, -1, j, got, mirror[j])
					}
				})
			}
		}
	}
}

// checkPayload compares an ORAM read against the mirror; a never-written
// block must read back zeroed.
func checkPayload(t *testing.T, op, j int, got, want []uint64) {
	t.Helper()
	if len(got) != blockB {
		t.Fatalf("op %d: block %d has %d words, want %d", op, j, len(got), blockB)
	}
	for w := range got {
		expect := uint64(0)
		if want != nil {
			expect = want[w]
		}
		if got[w] != expect {
			t.Fatalf("op %d: block %d word %d = %d, want %d", op, j, w, got[w], expect)
		}
	}
}

// TestORAMTraceInvarianceAcrossBackends pins that the backend cannot change
// what the algorithms do: the Disk-level logical trace of the same seeded
// workload is bit-identical on MemStore, the sharded store, and the network
// store (each backend only changes who serves the sequence, never the
// sequence).
func TestORAMTraceInvarianceAcrossBackends(t *testing.T) {
	// The bitonic sorter keeps this cheap over real HTTP; which rebuild
	// sorter runs is irrelevant to the claim (both consume the same tape
	// positions on every backend).
	const n, ops, seed = 16, 32, 7
	type result struct {
		name string
		len  int64
		hash uint64
	}
	var results []result
	for _, be := range backends() {
		env := be.make(t, 64, seed)
		env.D.SetRecorder(trace.NewRecorder(0))
		o, err := oram.New(env, n, oram.Options{Sorter: obsort.BitonicSorter})
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewPCG(seed, 99))
		for i := 0; i < ops; i++ {
			j := r.IntN(n)
			if r.IntN(2) == 0 {
				if err := o.Write(j, make([]uint64, blockB)); err != nil {
					t.Fatal(err)
				}
			} else if _, err := o.Read(j); err != nil {
				t.Fatal(err)
			}
		}
		s := env.D.Recorder().Summarize()
		results = append(results, result{be.name, s.Len, s.Hash})
	}
	for _, r := range results[1:] {
		if r.len != results[0].len || r.hash != results[0].hash {
			t.Fatalf("logical trace differs across backends: %s %d/%016x vs %s %d/%016x",
				results[0].name, results[0].len, results[0].hash, r.name, r.len, r.hash)
		}
	}
}

// TestORAMWithRandomizedRebuilds keeps the original E10 smoke shape: an
// ORAM whose level rebuilds use the paper's randomized sort, driven past 2N
// writes so the deeper levels rebuild at least once.
func TestORAMWithRandomizedRebuilds(t *testing.T) {
	for _, n := range []int{32, 64} {
		for si, s := range []obsort.Sorter{obsort.BitonicSorter, core.RandomizedSorter} {
			env := extmem.NewEnv(64, 8, 512, uint64(n))
			o, err := oram.New(env, n, oram.Options{Sorter: s})
			if err != nil {
				t.Fatalf("n=%d sorter=%d: %v", n, si, err)
			}
			for i := 0; i < 2*n; i++ {
				if err := o.Write(i%n, make([]uint64, 8)); err != nil {
					t.Fatalf("n=%d sorter=%d write %d: %v", n, si, i, err)
				}
			}
		}
	}
}
