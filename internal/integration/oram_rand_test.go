// Package integration holds cross-package tests that would create import
// cycles if they lived next to the code they exercise (core depends on
// oram; these tests drive oram with core's randomized sorter).
package integration

import (
	"testing"

	"oblivext/internal/core"
	"oblivext/internal/extmem"
	"oblivext/internal/obsort"
	"oblivext/internal/oram"
)

// TestORAMWithRandomizedRebuilds runs the E10 configuration: an ORAM whose
// level rebuilds use the paper's randomized sort.
func TestORAMWithRandomizedRebuilds(t *testing.T) {
	for _, n := range []int{32, 64} {
		for si, s := range []obsort.Sorter{obsort.BitonicSorter, core.RandomizedSorter} {
			env := extmem.NewEnv(64, 8, 512, uint64(n))
			o, err := oram.New(env, n, oram.Options{Sorter: s})
			if err != nil {
				t.Fatalf("n=%d sorter=%d: %v", n, si, err)
			}
			for i := 0; i < 2*n; i++ {
				if err := o.Write(i%n, make([]uint64, 8)); err != nil {
					t.Fatalf("n=%d sorter=%d write %d: %v", n, si, i, err)
				}
			}
		}
	}
}
