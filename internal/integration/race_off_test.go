//go:build !race

package integration

// raceEnabled reports that this binary was built with the race detector;
// see race_on_test.go.
const raceEnabled = false
