// Package workload generates the key distributions the experiments run on:
// uniform random, pre-sorted, reverse-sorted, few-distinct (heavy
// duplicates), and Zipf-skewed. The data-oblivious algorithms must behave
// identically on all of them — that invariance is experiment E13 — while
// the non-oblivious baselines visibly vary.
package workload

import (
	"fmt"
	"math/rand"

	"oblivext/internal/extmem"
)

// Kind names a key distribution.
type Kind string

// The supported distributions.
const (
	Uniform Kind = "uniform"
	Sorted  Kind = "sorted"
	Reverse Kind = "reverse"
	FewDup  Kind = "fewdup"
	Zipf    Kind = "zipf"
	Equal   Kind = "equal"
)

// Kinds lists every distribution, in report order.
func Kinds() []Kind { return []Kind{Uniform, Sorted, Reverse, FewDup, Zipf, Equal} }

// Keys generates n keys of the given distribution, deterministically from
// the seed.
func Keys(kind Kind, n int, seed uint64) ([]uint64, error) {
	r := rand.New(rand.NewSource(int64(seed)))
	out := make([]uint64, n)
	switch kind {
	case Uniform:
		for i := range out {
			out[i] = r.Uint64()
		}
	case Sorted:
		for i := range out {
			out[i] = uint64(i)
		}
	case Reverse:
		for i := range out {
			out[i] = uint64(n - i)
		}
	case FewDup:
		for i := range out {
			out[i] = uint64(r.Intn(5))
		}
	case Zipf:
		z := rand.NewZipf(r, 1.2, 1, uint64(max(2, n)))
		for i := range out {
			out[i] = z.Uint64()
		}
	case Equal:
		for i := range out {
			out[i] = 7
		}
	default:
		return nil, fmt.Errorf("workload: unknown kind %q", kind)
	}
	return out, nil
}

// Fill writes n occupied elements with the given keys into the array
// (Pos = index, Val = key echoed), padding remaining cells empty.
func Fill(a extmem.Array, keys []uint64) error {
	b := a.B()
	if len(keys) > a.Len()*b {
		return fmt.Errorf("workload: %d keys exceed %d cells", len(keys), a.Len()*b)
	}
	buf := make([]extmem.Element, b)
	idx := 0
	for blk := 0; blk < a.Len(); blk++ {
		for t := 0; t < b; t++ {
			if idx < len(keys) {
				buf[t] = extmem.Element{Key: keys[idx], Val: keys[idx], Pos: uint64(idx), Flags: extmem.FlagOccupied}
				idx++
			} else {
				buf[t] = extmem.Element{}
			}
		}
		a.Write(blk, buf)
	}
	return nil
}

// MarkFraction sets FlagMarked on every element whose index is in the
// first markCount positions of a fixed pseudorandom permutation — a
// deterministic way to mark an exact count for the compaction experiments.
func MarkFraction(a extmem.Array, markCount int, seed uint64) error {
	b := a.B()
	total := a.Len() * b
	if markCount > total {
		return fmt.Errorf("workload: mark count %d exceeds %d cells", markCount, total)
	}
	r := rand.New(rand.NewSource(int64(seed)))
	marked := make([]bool, total)
	for i, p := range r.Perm(total)[:markCount] {
		_ = i
		marked[p] = true
	}
	buf := make([]extmem.Element, b)
	for blk := 0; blk < a.Len(); blk++ {
		a.Read(blk, buf)
		for t := range buf {
			buf[t].Flags &^= extmem.FlagMarked
			if marked[blk*b+t] && buf[t].Occupied() {
				buf[t].Flags |= extmem.FlagMarked
			}
		}
		a.Write(blk, buf)
	}
	return nil
}
