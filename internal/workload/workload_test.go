package workload

import (
	"testing"

	"oblivext/internal/extmem"
)

func TestKeysDeterministic(t *testing.T) {
	for _, k := range Kinds() {
		a, err := Keys(k, 100, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Keys(k, 100, 42)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: draw %d differs across equal seeds", k, i)
			}
		}
	}
}

func TestKeysShapes(t *testing.T) {
	srt, _ := Keys(Sorted, 50, 1)
	for i := 1; i < 50; i++ {
		if srt[i] < srt[i-1] {
			t.Fatal("sorted keys not sorted")
		}
	}
	rev, _ := Keys(Reverse, 50, 1)
	for i := 1; i < 50; i++ {
		if rev[i] > rev[i-1] {
			t.Fatal("reverse keys not descending")
		}
	}
	few, _ := Keys(FewDup, 1000, 1)
	distinct := map[uint64]bool{}
	for _, k := range few {
		distinct[k] = true
	}
	if len(distinct) > 5 {
		t.Fatalf("fewdup produced %d distinct keys", len(distinct))
	}
	eq, _ := Keys(Equal, 10, 1)
	for _, k := range eq {
		if k != 7 {
			t.Fatal("equal keys not constant")
		}
	}
	if _, err := Keys(Kind("nope"), 5, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestZipfSkew(t *testing.T) {
	keys, _ := Keys(Zipf, 10000, 3)
	zero := 0
	for _, k := range keys {
		if k == 0 {
			zero++
		}
	}
	if zero < 1000 {
		t.Fatalf("zipf head frequency %d/10000 — not skewed", zero)
	}
}

func TestFillAndMark(t *testing.T) {
	env := extmem.NewEnv(16, 4, 16, 1)
	a := env.D.Alloc(8)
	keys, _ := Keys(Uniform, 20, 5)
	if err := Fill(a, keys); err != nil {
		t.Fatal(err)
	}
	if err := MarkFraction(a, 7, 9); err != nil {
		t.Fatal(err)
	}
	buf := make([]extmem.Element, 4)
	occ, mk := 0, 0
	for i := 0; i < 8; i++ {
		a.Read(i, buf)
		for _, e := range buf {
			if e.Occupied() {
				occ++
			}
			if e.Marked() {
				mk++
			}
		}
	}
	if occ != 20 {
		t.Fatalf("occupied = %d, want 20", occ)
	}
	if mk == 0 || mk > 7 {
		t.Fatalf("marked = %d, want in (0,7]", mk)
	}
	if err := Fill(a, make([]uint64, 100)); err == nil {
		t.Fatal("overfill accepted")
	}
	if err := MarkFraction(a, 100, 1); err == nil {
		t.Fatal("overmark accepted")
	}
}
