package iblt

import "oblivext/internal/rng"

// CellStore abstracts where the table's cells live during peeling: in
// private memory (fast path), or behind an ORAM so that the whole
// listEntries computation is data-oblivious (Theorem 4's "RAM simulation").
// Dummy performs an access indistinguishable from a real Load+Store pair,
// letting the padded schedule hide which cells were extractable.
type CellStore interface {
	Len() int
	Load(i int) Cell
	Store(i int, c Cell)
	Dummy()
}

// DefaultPasses returns the pass budget used when peeling m cells: the
// peeling depth of a sparse random k-uniform hypergraph is O(log m) with
// high probability, so a small multiple of log2(m) suffices.
func DefaultPasses(m int) int {
	l := 0
	for v := 1; v < m; v <<= 1 {
		l++
	}
	return 2*l + 8
}

// Peel runs pass-based peeling over the cells: each pass scans every cell
// in index order and, when a cell is pure (count 1, key hashes back),
// extracts its pair and deletes it from the key's k cells. emit is called
// once per recovered pair; skip (if non-nil) is called once per visited
// cell that was not pure, so callers can mirror emit's work with dummy
// operations. Peel returns true if the table emptied.
//
// The schedule is deliberately rigid — passes × cells iterations, each
// doing one Load plus exactly k Load/Store pairs (real or Dummy) — so that
// when cells live behind an ORAM the access pattern reveals nothing about
// which cells were pure. With maxPasses <= 0 a DefaultPasses budget is
// used. In padded mode every pass runs to the full budget with no
// early exit, making even the pass count data-independent — the mode
// Theorem 4's oblivious listEntries simulation requires.
//
// Unlike the classic queue-driven peeler this costs O(passes·m·k) cell
// accesses rather than O(m + n·k); the queue version is what Table.Get
// users want in RAM, but the paper's oblivious setting needs the fixed
// schedule. Both recover exactly the same set (peeling is confluent).
func Peel(cs CellStore, h *rng.Hasher, maxPasses int, padded bool, emit func(key uint64, val []uint64), skip func()) bool {
	m := cs.Len()
	if maxPasses <= 0 {
		maxPasses = DefaultPasses(m)
	}
	k := h.K()
	idx := make([]int, 0, k)
	for pass := 0; pass < maxPasses; pass++ {
		extracted := false
		remaining := false
		for i := 0; i < m; i++ {
			c := cs.Load(i)
			if c.Count != 0 {
				remaining = true
			}
			if c.pure(h, i) {
				key := c.KeySum
				// c.ValSum aliases cell storage for in-memory stores and the
				// deletion below mutates it, so snapshot before emitting.
				snap := make([]uint64, len(c.ValSum))
				copy(snap, c.ValSum)
				emit(key, snap)
				idx = h.Indices(idx[:0], key)
				for _, j := range idx {
					cj := cs.Load(j)
					cj.add(key, snap, -1)
					cs.Store(j, cj)
				}
				extracted = true
			} else {
				for j := 0; j < k; j++ {
					cs.Dummy()
				}
				if skip != nil {
					skip()
				}
			}
		}
		if padded {
			continue
		}
		if !remaining {
			return true
		}
		if !extracted {
			return false // stuck: 2-core is non-empty
		}
	}
	// Budget exhausted; check emptiness.
	for i := 0; i < m; i++ {
		if cs.Load(i).Count != 0 {
			return false
		}
	}
	return true
}

// SliceStore is a CellStore over a private slice of cells; Dummy is a no-op
// since private memory is invisible to the adversary.
type SliceStore []Cell

// Len implements CellStore.
func (s SliceStore) Len() int { return len(s) }

// Load implements CellStore.
func (s SliceStore) Load(i int) Cell { return s[i] }

// Store implements CellStore.
func (s SliceStore) Store(i int, c Cell) { s[i] = c }

// Dummy implements CellStore.
func (s SliceStore) Dummy() {}
