// Package iblt implements the invertible Bloom lookup table of Goodrich and
// Mitzenmacher (paper §2): a randomized table of cells holding a count, a
// key sum, and a value sum under k hash functions. Insertions and deletions
// touch exactly the k cells determined by the key — a property the paper
// exploits for data-oblivious compaction, because the touched locations are
// independent of the value and of how many items the table holds.
//
// Values are fixed-width vectors of 64-bit words (width 1 for plain
// key-value pairs, width 4·B for whole blocks in the external-memory
// algorithms), summed element-wise mod 2^64 so that deletion is exact
// subtraction.
package iblt

import (
	"oblivext/internal/rng"
)

// Cell is one table cell: the number of items mapped here, the sum of their
// keys, and the element-wise sum of their values.
type Cell struct {
	Count  int64
	KeySum uint64
	ValSum []uint64
}

// add folds (key, val) into the cell with the given sign (+1 insert,
// -1 delete).
func (c *Cell) add(key uint64, val []uint64, sign int64) {
	c.Count += sign
	if sign > 0 {
		c.KeySum += key
		for i, v := range val {
			c.ValSum[i] += v
		}
	} else {
		c.KeySum -= key
		for i, v := range val {
			c.ValSum[i] -= v
		}
	}
}

// Pure reports whether the cell holds exactly one item whose key hashes
// back to this cell — the recoverable state the peeler looks for. The
// hash-back check rejects "ghost" cells that can arise from deleting keys
// that were never inserted.
func (c *Cell) pure(h *rng.Hasher, self int) bool {
	if c.Count != 1 {
		return false
	}
	return h.Index(h.Subtable(self), c.KeySum) == self
}

// Entry is one recovered key-value pair.
type Entry struct {
	Key uint64
	Val []uint64
}

// Table is an in-memory invertible Bloom lookup table.
type Table struct {
	h     *rng.Hasher
	w     int
	cells []Cell
	n     int64 // net items inserted
	idx   []int // scratch for hash indices
}

// New returns a table of m cells under k hash functions (seeded), storing
// values of the given word width.
func New(m, k, valWidth int, seed uint64) *Table {
	t := &Table{h: rng.NewHasher(seed, k, m), w: valWidth}
	t.cells = make([]Cell, m)
	flat := make([]uint64, m*valWidth)
	for i := range t.cells {
		t.cells[i].ValSum = flat[i*valWidth : (i+1)*valWidth : (i+1)*valWidth]
	}
	t.idx = make([]int, 0, k)
	return t
}

// M returns the number of cells.
func (t *Table) M() int { return len(t.cells) }

// K returns the number of hash functions.
func (t *Table) K() int { return t.h.K() }

// ValWidth returns the value width in words.
func (t *Table) ValWidth() int { return t.w }

// Len returns the net number of items inserted (inserts minus deletes). The
// table keeps working as a sum sketch even when Len exceeds M; only Get and
// ListEntries need Len < M to succeed with good probability (Lemma 1).
func (t *Table) Len() int64 { return t.n }

// Hasher exposes the hash family (shared with external-memory layouts of
// the same table).
func (t *Table) Hasher() *rng.Hasher { return t.h }

// Cell returns a copy of cell i (ValSum is shared; callers must not modify).
func (t *Table) Cell(i int) Cell { return t.cells[i] }

// Insert adds the key-value pair to the table. It always succeeds; keys are
// assumed distinct across live items.
func (t *Table) Insert(key uint64, val []uint64) {
	t.checkVal(val)
	t.idx = t.h.Indices(t.idx[:0], key)
	for _, i := range t.idx {
		t.cells[i].add(key, val, 1)
	}
	t.n++
}

// Delete removes a key-value pair previously inserted.
func (t *Table) Delete(key uint64, val []uint64) {
	t.checkVal(val)
	t.idx = t.h.Indices(t.idx[:0], key)
	for _, i := range t.idx {
		t.cells[i].add(key, val, -1)
	}
	t.n--
}

// Get looks up the value for key. ok=false means the table cannot answer
// (which the paper allows with some probability); a definite absence (some
// cell has count 0) reports ok=true with found=false.
func (t *Table) Get(key uint64) (val []uint64, found, ok bool) {
	t.idx = t.h.Indices(t.idx[:0], key)
	for _, i := range t.idx {
		c := &t.cells[i]
		switch {
		case c.Count == 0 && c.KeySum == 0:
			return nil, false, true
		case c.Count == 1 && c.KeySum == key:
			out := make([]uint64, t.w)
			copy(out, c.ValSum)
			return out, true, true
		}
	}
	return nil, false, false
}

// ListEntries recovers and removes all stored pairs by peeling. It returns
// the recovered entries and whether the table fully emptied; a false result
// is the paper's "list-incomplete" condition (Lemma 1 bounds its
// probability when Len < M). The operation is destructive, as in the paper;
// copy the table first for a non-destructive listing.
func (t *Table) ListEntries() ([]Entry, bool) {
	var out []Entry
	ok := Peel(memCells{t}, t.h, 0, false, func(key uint64, val []uint64) {
		v := make([]uint64, len(val))
		copy(v, val)
		out = append(out, Entry{Key: key, Val: v})
		t.n--
	}, nil)
	return out, ok
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := New(t.M(), t.K(), t.w, 0)
	c.h = t.h
	for i := range t.cells {
		c.cells[i].Count = t.cells[i].Count
		c.cells[i].KeySum = t.cells[i].KeySum
		copy(c.cells[i].ValSum, t.cells[i].ValSum)
	}
	c.n = t.n
	return c
}

func (t *Table) checkVal(val []uint64) {
	if len(val) != t.w {
		panic("iblt: value width mismatch")
	}
}

// memCells adapts Table to the CellStore interface used by the peeler.
type memCells struct{ t *Table }

func (m memCells) Len() int            { return len(m.t.cells) }
func (m memCells) Load(i int) Cell     { return m.t.cells[i] }
func (m memCells) Store(i int, c Cell) { m.t.cells[i] = c }
func (m memCells) Dummy()              {}
