package iblt

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func mkVal(w int, base uint64) []uint64 {
	v := make([]uint64, w)
	for i := range v {
		v[i] = base + uint64(i)
	}
	return v
}

func TestInsertGetDelete(t *testing.T) {
	tb := New(64, 4, 2, 1)
	tb.Insert(10, []uint64{100, 200})
	tb.Insert(11, []uint64{101, 201})
	if tb.Len() != 2 {
		t.Fatalf("len = %d", tb.Len())
	}
	v, found, ok := tb.Get(10)
	if !ok || !found || v[0] != 100 || v[1] != 200 {
		t.Fatalf("get(10) = %v found=%v ok=%v", v, found, ok)
	}
	tb.Delete(10, []uint64{100, 200})
	_, found, ok = tb.Get(10)
	if !ok {
		t.Skip("get indeterminate after delete (allowed)")
	}
	if found {
		t.Fatal("found deleted key")
	}
}

func TestListEntriesExact(t *testing.T) {
	const n = 50
	tb := New(3*n, 4, 1, 7)
	want := map[uint64]uint64{}
	for i := 0; i < n; i++ {
		k := uint64(1000 + i)
		v := uint64(i * i)
		want[k] = v
		tb.Insert(k, []uint64{v})
	}
	got, ok := tb.ListEntries()
	if !ok {
		t.Fatal("listEntries incomplete at load 1/3")
	}
	if len(got) != n {
		t.Fatalf("recovered %d entries, want %d", len(got), n)
	}
	for _, e := range got {
		if want[e.Key] != e.Val[0] {
			t.Fatalf("entry %d: got %d want %d", e.Key, e.Val[0], want[e.Key])
		}
		delete(want, e.Key)
	}
	if tb.Len() != 0 {
		t.Fatalf("table len %d after full listing", tb.Len())
	}
}

func TestListEntriesOverloadedFails(t *testing.T) {
	// n >> m: listing must report incomplete, not invent entries.
	tb := New(16, 3, 1, 9)
	for i := 0; i < 200; i++ {
		tb.Insert(uint64(i), []uint64{uint64(i)})
	}
	got, ok := tb.ListEntries()
	if ok {
		t.Fatal("overloaded table claimed complete listing")
	}
	// Anything it did emit must be a genuinely inserted pair.
	for _, e := range got {
		if e.Key >= 200 || e.Val[0] != e.Key {
			t.Fatalf("invented entry %+v", e)
		}
	}
}

func TestInsertionsBeyondCapacityThenDelete(t *testing.T) {
	// The paper: insertions/deletions proceed independent of capacity; the
	// structure recovers once n drops below m again.
	tb := New(30, 4, 1, 3)
	for i := 0; i < 100; i++ {
		tb.Insert(uint64(i), []uint64{uint64(2 * i)})
	}
	for i := 10; i < 100; i++ {
		tb.Delete(uint64(i), []uint64{uint64(2 * i)})
	}
	got, ok := tb.ListEntries()
	if !ok {
		t.Fatal("listEntries incomplete after deletions brought n below m")
	}
	if len(got) != 10 {
		t.Fatalf("recovered %d, want 10", len(got))
	}
	sort.Slice(got, func(i, j int) bool { return got[i].Key < got[j].Key })
	for i, e := range got {
		if e.Key != uint64(i) || e.Val[0] != uint64(2*i) {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
}

func TestGetDefiniteAbsence(t *testing.T) {
	tb := New(128, 4, 1, 5)
	tb.Insert(1, []uint64{10})
	// A key whose cells are all empty reports found=false, ok=true.
	misses := 0
	for k := uint64(100); k < 200; k++ {
		_, found, ok := tb.Get(k)
		if found {
			t.Fatalf("phantom key %d found", k)
		}
		if ok {
			misses++
		}
	}
	if misses == 0 {
		t.Fatal("no definite absences in a nearly empty table")
	}
}

func TestCloneIndependence(t *testing.T) {
	tb := New(32, 3, 1, 11)
	tb.Insert(5, []uint64{50})
	cl := tb.Clone()
	cl.Insert(6, []uint64{60})
	if tb.Len() != 1 || cl.Len() != 2 {
		t.Fatalf("clone not independent: %d %d", tb.Len(), cl.Len())
	}
	got, ok := tb.ListEntries()
	if !ok || len(got) != 1 || got[0].Key != 5 {
		t.Fatalf("original damaged by clone ops: %+v", got)
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	tb := New(8, 2, 3, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected width-mismatch panic")
		}
	}()
	tb.Insert(1, []uint64{1})
}

// TestLemma1SuccessRate measures the paper's Lemma 1: with m >= 3n and k=4,
// listEntries succeeds with overwhelming probability.
func TestLemma1SuccessRate(t *testing.T) {
	const n, trials = 100, 200
	fails := 0
	for tr := 0; tr < trials; tr++ {
		tb := New(3*n, 4, 1, uint64(tr)*2654435761)
		for i := 0; i < n; i++ {
			tb.Insert(uint64(i), []uint64{uint64(i)})
		}
		if _, ok := tb.ListEntries(); !ok {
			fails++
		}
	}
	if fails > trials/50 {
		t.Fatalf("listEntries failed %d/%d times at load 1/3", fails, trials)
	}
}

// TestPeelMatchesQueueSemantics checks confluence: the pass-based peeler
// recovers exactly the inserted multiset, in any order.
func TestPeelMatchesQueueSemantics(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 4))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.IntN(60)
		tb := New(4*n, 4, 1, r.Uint64())
		ref := map[uint64]uint64{}
		for i := 0; i < n; i++ {
			k := r.Uint64() % 100000
			for _, dup := ref[k]; dup; _, dup = ref[k] {
				k = r.Uint64() % 100000
			}
			ref[k] = r.Uint64()
			tb.Insert(k, []uint64{ref[k]})
		}
		got, ok := tb.ListEntries()
		if !ok {
			continue // rare at load 1/4; success rate tested elsewhere
		}
		if len(got) != len(ref) {
			t.Fatalf("trial %d: got %d entries want %d", trial, len(got), len(ref))
		}
		for _, e := range got {
			if ref[e.Key] != e.Val[0] {
				t.Fatalf("trial %d: wrong value for %d", trial, e.Key)
			}
		}
	}
}

// TestInsertTouchesOnlyKeyCells verifies the property the oblivious use
// depends on (paper §2): the cells an insert touches depend only on the key.
func TestInsertTouchesOnlyKeyCells(t *testing.T) {
	h1 := New(64, 4, 1, 42)
	h2 := New(64, 4, 1, 42)
	h1.Insert(9, []uint64{1})
	h2.Insert(9, []uint64{999999}) // different value, same key
	for i := 0; i < 64; i++ {
		c1, c2 := h1.Cell(i), h2.Cell(i)
		if (c1.Count == 0) != (c2.Count == 0) {
			t.Fatalf("cell %d occupancy differs across values", i)
		}
	}
}

func TestPropertyInsertDeleteIsIdentity(t *testing.T) {
	f := func(keys []uint64, vals []uint64) bool {
		tb := New(50, 3, 1, 77)
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		seen := map[uint64]bool{}
		var ins [][2]uint64
		for i := 0; i < n; i++ {
			if seen[keys[i]] {
				continue
			}
			seen[keys[i]] = true
			ins = append(ins, [2]uint64{keys[i], vals[i]})
			tb.Insert(keys[i], []uint64{vals[i]})
		}
		for _, kv := range ins {
			tb.Delete(kv[0], []uint64{kv[1]})
		}
		if tb.Len() != 0 {
			return false
		}
		for i := 0; i < tb.M(); i++ {
			c := tb.Cell(i)
			if c.Count != 0 || c.KeySum != 0 || c.ValSum[0] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDefaultPassesGrowth(t *testing.T) {
	if DefaultPasses(1) < 8 {
		t.Error("pass budget too small for tiny tables")
	}
	if DefaultPasses(1<<20) < 40 {
		t.Error("pass budget too small for large tables")
	}
}
