package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"oblivext/internal/extmem"
)

// TestStoreScheduleWindows pins the injector's counting semantics: events
// fire on exactly the scripted 0-based interactions, windows span [At,
// At+For), and untouched interactions pass through.
func TestStoreScheduleWindows(t *testing.T) {
	s := NewStore(extmem.NewMemStore(8, 2), "bob", Schedule{
		{Target: "bob", At: 1, Kind: Err500},
		{Target: "bob", At: 3, For: 2, Kind: Drop},
	})
	dst := make([]extmem.Element, 2)
	wantFail := []bool{false, true, false, true, true, false}
	for i, want := range wantFail {
		err := s.ReadBlock(0, dst)
		if got := err != nil; got != want {
			t.Errorf("interaction %d: failed=%v, want %v (err=%v)", i, got, want, err)
		}
	}
	want := []string{"bob#1 err500", "bob#3 drop", "bob#4 drop"}
	if got := s.Decisions(); !reflect.DeepEqual(got, want) {
		t.Errorf("decisions %v, want %v", got, want)
	}
	if n := s.Interactions("bob"); n != int64(len(wantFail)) {
		t.Errorf("Interactions = %d, want %d", n, len(wantFail))
	}
}

// TestStoreKillIsPermanent pins the kill latch: from the trigger point on,
// every interaction fails — including ones long past the event — and GrowTo
// (control plane, normally unfaulted) dies with the target.
func TestStoreKillIsPermanent(t *testing.T) {
	s := NewStore(extmem.NewMemStore(8, 2), "bob", Schedule{{Target: "bob", At: 2, Kind: Kill}})
	dst := make([]extmem.Element, 2)
	if err := s.GrowTo(8); err != nil {
		t.Fatalf("GrowTo before death should pass: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := s.ReadBlock(0, dst); err != nil {
			t.Fatalf("interaction %d should pass: %v", i, err)
		}
	}
	for i := 2; i < 6; i++ {
		if err := s.ReadBlock(0, dst); err == nil {
			t.Fatalf("interaction %d should fail: the target is dead", i)
		}
	}
	if err := s.GrowTo(16); err == nil {
		t.Error("GrowTo on a dead target should fail")
	}
}

// TestStoreAddEventArmsLate pins the mid-run arming path used by the e2e
// tests: traffic that predates AddEvent is untouched; the event's At is
// measured on the same counter Interactions reports.
func TestStoreAddEventArmsLate(t *testing.T) {
	s := NewStore(extmem.NewMemStore(8, 2), "bob", nil)
	dst := make([]extmem.Element, 2)
	for i := 0; i < 5; i++ {
		if err := s.ReadBlock(0, dst); err != nil {
			t.Fatalf("setup interaction %d: %v", i, err)
		}
	}
	s.AddEvent(Event{Target: "bob", At: s.Interactions("bob") + 1, Kind: Err503})
	if err := s.ReadBlock(0, dst); err != nil {
		t.Fatalf("interaction 5 predates the armed event: %v", err)
	}
	if err := s.ReadBlock(0, dst); err == nil {
		t.Fatal("interaction 6 should hit the armed event")
	}
	if err := s.ReadBlock(0, dst); err != nil {
		t.Fatalf("interaction 7 is past the window: %v", err)
	}
}

// TestStoreStallDelaysOnly pins that Stall changes timing, not outcomes.
func TestStoreStallDelaysOnly(t *testing.T) {
	s := NewStore(extmem.NewMemStore(8, 2), "bob", Schedule{
		{Target: "bob", At: 0, Kind: Stall, Stall: 30 * time.Millisecond},
	})
	src := []extmem.Element{{Key: 3, Flags: extmem.FlagOccupied}, {}}
	start := time.Now()
	if err := s.WriteBlock(1, src); err != nil {
		t.Fatalf("stalled write must still succeed: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("stalled write returned in %v, want >= 30ms", d)
	}
	dst := make([]extmem.Element, 2)
	if err := s.ReadBlock(1, dst); err != nil || dst[0].Key != 3 {
		t.Errorf("read after stall: err=%v key=%d, want nil,3", err, dst[0].Key)
	}
}

// TestEmptyTargetMatchesAll pins wildcard events.
func TestEmptyTargetMatchesAll(t *testing.T) {
	s := NewStore(extmem.NewMemStore(8, 2), "anything", Schedule{{At: 0, Kind: Err500}})
	dst := make([]extmem.Element, 2)
	if err := s.ReadBlock(0, dst); err == nil {
		t.Fatal("wildcard event should match any target label")
	}
}

// TestTransportFaultsDataPlaneOnly pins the Transport's plane split: /v1/io
// requests advance the counter and take faults; control-plane paths pass
// through unfaulted and uncounted — until a Kill, which takes everything
// down.
func TestTransportFaultsDataPlaneOnly(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer backend.Close()
	host := strings.TrimPrefix(backend.URL, "http://")

	tr := NewTransport(nil, Schedule{{Target: host, At: 1, Kind: Err503}})
	client := &http.Client{Transport: tr}
	get := func(path string) (int, error) {
		resp, err := client.Get(backend.URL + path)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	// Control traffic neither counts nor faults.
	for i := 0; i < 3; i++ {
		if code, err := get("/v1/trace"); err != nil || code != http.StatusOK {
			t.Fatalf("control request %d: code=%d err=%v", i, code, err)
		}
	}
	if n := tr.Interactions(host); n != 0 {
		t.Fatalf("control traffic advanced the counter to %d", n)
	}
	// Data-plane interaction 0 passes, 1 takes the synthesized 503.
	if code, err := get("/v1/io"); err != nil || code != http.StatusOK {
		t.Fatalf("io #0: code=%d err=%v, want 200", code, err)
	}
	code, err := get("/v1/io")
	if err != nil || code != http.StatusServiceUnavailable {
		t.Fatalf("io #1: code=%d err=%v, want a synthesized 503", code, err)
	}
	if want := []string{host + "#1 err503"}; !reflect.DeepEqual(tr.Decisions(), want) {
		t.Errorf("decisions %v, want %v", tr.Decisions(), want)
	}

	// Kill takes the control plane down too.
	tr.AddEvent(Event{Target: host, At: tr.Interactions(host), Kind: Kill})
	if _, err := get("/v1/io"); err == nil {
		t.Fatal("io after kill should fail at the transport")
	}
	if _, err := get("/v1/trace"); err == nil {
		t.Fatal("control traffic to a dead host should fail")
	}
}

// TestTransportDropIsWireError pins that Drop surfaces as a transport error
// (no response), the shape of a reset connection — which the netstore client
// treats as retryable.
func TestTransportDropIsWireError(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer backend.Close()
	host := strings.TrimPrefix(backend.URL, "http://")
	tr := NewTransport(nil, Schedule{{Target: host, At: 0, Kind: Drop}})
	client := &http.Client{Transport: tr}
	if _, err := client.Get(backend.URL + "/v1/io"); err == nil {
		t.Fatal("dropped request should surface as a wire error")
	}
	if resp, err := client.Get(backend.URL + "/v1/io"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("interaction 1 is past the drop window: %v", err)
	} else {
		resp.Body.Close()
	}
}
