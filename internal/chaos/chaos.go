// Package chaos is a deterministic fault injector for the storage fleet: a
// scripted schedule of failures (kill, stall, error, drop, partition) keyed
// not to wall-clock time but to per-target interaction counters, so the same
// schedule replayed against the same workload triggers at exactly the same
// points in the access sequence — every time, on any machine.
//
// Determinism is the whole point. The headline robustness claim is that
// obliviousness survives failures: under any fault schedule the algorithms
// still return correct results, every surviving Bob's journal remains
// input-independent, and the client's failover decisions are a function of
// the fault events and the public geometry alone. Those are replay
// assertions — run the schedule twice, diff the journals, the decision logs,
// the traces — and replay assertions need an injector with no hidden
// randomness and no timing dependence.
//
// Two injectors share one schedule format: Transport wraps an
// http.RoundTripper and breaks netstore traffic at the wire (what a real
// fleet failure looks like to the client), and Store wraps a BlockStore for
// in-process tests below the HTTP layer.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"oblivext/internal/extmem"
)

// Kind is a fault class.
type Kind int

const (
	// Kill makes the target refuse everything — data plane and control
	// plane — from the trigger point onward, permanently: a crashed server.
	Kill Kind = iota
	// Stall delays matching interactions by Event.Stall before serving them
	// normally: a slow disk or congested link. Stalls change timing only,
	// never outcomes, so they are safe in replay assertions that compare
	// traces (not durations).
	Stall
	// Err503 answers matching interactions with 503 Service Unavailable
	// (Transport) or a transient error (Store): an overloaded or draining
	// server. Clients retry these.
	Err503
	// Err500 answers matching interactions with 500 Internal Server Error:
	// a server-side fault. Clients retry these too.
	Err500
	// Drop loses matching interactions on the wire (a transport error with
	// no response): a lost packet or reset connection.
	Drop
	// Partition refuses connections for the event's window, then heals: the
	// target is unreachable but not dead.
	Partition
)

func (k Kind) String() string {
	switch k {
	case Kill:
		return "kill"
	case Stall:
		return "stall"
	case Err503:
		return "err503"
	case Err500:
		return "err500"
	case Drop:
		return "drop"
	case Partition:
		return "partition"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one scheduled fault. At and For are measured in the target's own
// data-plane interactions (0-based): the event is live for interactions
// numbered [At, At+For), with For defaulting to 1. Kill ignores For — death
// is permanent.
type Event struct {
	// Target selects the victim: the URL host ("127.0.0.1:8441") for a
	// Transport, an arbitrary label (or empty, matching everything) for a
	// Store.
	Target string
	// At is the 0-based data-plane interaction that triggers the event.
	At int64
	// For is the window length in interactions (default 1).
	For int64
	// Kind is what happens.
	Kind Kind
	// Stall is the added delay for Stall events.
	Stall time.Duration
}

func (e Event) window() (lo, hi int64) {
	n := e.For
	if n <= 0 {
		n = 1
	}
	return e.At, e.At + n
}

// Schedule is a fault script. Events for the same target may overlap; the
// first matching event in schedule order wins an interaction (Kill always
// wins once triggered).
type Schedule []Event

// injector is the shared core: per-target interaction counters, kill latches,
// and the decision log.
type injector struct {
	mu       sync.Mutex
	schedule Schedule
	count    map[string]int64
	dead     map[string]bool
	log      []string
}

func newInjector(schedule Schedule) *injector {
	return &injector{
		schedule: append(Schedule(nil), schedule...),
		count:    make(map[string]int64),
		dead:     make(map[string]bool),
	}
}

// next advances target's interaction counter and returns the fault to apply
// to this interaction, if any. Every injected fault is appended to the
// decision log as "target#n kind".
func (inj *injector) next(target string) (Event, bool) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	n := inj.count[target]
	inj.count[target] = n + 1
	if inj.dead[target] {
		return Event{Target: target, Kind: Kill}, true
	}
	for _, e := range inj.schedule {
		if e.Target != "" && e.Target != target {
			continue
		}
		if e.Kind == Kill {
			if n >= e.At {
				inj.dead[target] = true
				inj.log = append(inj.log, fmt.Sprintf("%s#%d kill", target, n))
				return e, true
			}
			continue
		}
		if lo, hi := e.window(); n >= lo && n < hi {
			inj.log = append(inj.log, fmt.Sprintf("%s#%d %s", target, n, e.Kind))
			return e, true
		}
	}
	return Event{}, false
}

// AddEvent appends an event to the live schedule. Used by tests that must
// arm a fault only after setup traffic (upload, grow) has passed — the
// interaction counters keep running; the new event simply starts matching.
func (inj *injector) AddEvent(e Event) {
	inj.mu.Lock()
	inj.schedule = append(inj.schedule, e)
	inj.mu.Unlock()
}

// Decisions returns the injected-fault log: one "target#n kind" line per
// fault applied, in injection order for each target. Replaying a schedule
// against the same workload must reproduce this log exactly; the replay
// tests diff it. Lines are sorted (per-target order is preserved; the
// interleaving across targets is concurrent fan-out scheduling, which is
// not part of the determinism claim).
func (inj *injector) Decisions() []string {
	inj.mu.Lock()
	out := append([]string(nil), inj.log...)
	inj.mu.Unlock()
	sort.Strings(out)
	return out
}

// Interactions returns how many data-plane interactions target has seen —
// what an Event.At for a future fault on that target is measured against.
func (inj *injector) Interactions(target string) int64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.count[target]
}

// Transport is an http.RoundTripper that injects scheduled faults into
// netstore traffic, keyed per host. Only data-plane requests (the /v1/io
// endpoint) advance a host's interaction counter — control traffic
// (geometry, traces, metrics) passes through unfaulted so tests can audit a
// fleet mid-chaos — but a killed host refuses everything, as a crashed
// process would.
type Transport struct {
	*injector
	base http.RoundTripper
}

// NewTransport wraps base (nil = http.DefaultTransport) with the schedule.
func NewTransport(base http.RoundTripper, schedule Schedule) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{injector: newInjector(schedule), base: base}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	if !strings.HasPrefix(req.URL.Path, "/v1/io") {
		// Control plane: unfaulted unless the host is already dead.
		t.mu.Lock()
		dead := t.dead[host]
		t.mu.Unlock()
		if dead {
			return nil, fmt.Errorf("chaos: %s is dead", host)
		}
		return t.base.RoundTrip(req)
	}
	e, hit := t.next(host)
	if !hit {
		return t.base.RoundTrip(req)
	}
	switch e.Kind {
	case Kill:
		return nil, fmt.Errorf("chaos: %s is dead", host)
	case Stall:
		select {
		case <-time.After(e.Stall):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.base.RoundTrip(req)
	case Err503:
		return synthesize(req, http.StatusServiceUnavailable, "chaos: injected 503"), nil
	case Err500:
		return synthesize(req, http.StatusInternalServerError, "chaos: injected 500"), nil
	case Drop, Partition:
		return nil, fmt.Errorf("chaos: dropped request to %s", host)
	default:
		return t.base.RoundTrip(req)
	}
}

// synthesize builds an error response without touching the network, the way
// a proxy or the server itself would have answered.
func synthesize(req *http.Request, status int, msg string) *http.Response {
	return &http.Response{
		StatusCode: status,
		Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     make(http.Header),
		Body:       io.NopCloser(bytes.NewReader([]byte(msg + "\n"))),
		Request:    req,
	}
}

// Store is a BlockStore decorator that injects scheduled faults below the
// HTTP layer, for in-process tests. Every vectored or scalar call advances
// the interaction counter; injected faults surface as errors (Kill, Drop,
// Partition, Err500, Err503 — all indistinguishable to a BlockStore caller)
// or added latency (Stall).
type Store struct {
	*injector
	inner  extmem.BlockStore
	target string
}

// NewStore wraps inner with the schedule, under the given target label
// (events with an empty Target match any label).
func NewStore(inner extmem.BlockStore, target string, schedule Schedule) *Store {
	return &Store{injector: newInjector(schedule), inner: inner, target: target}
}

// fault applies the next scheduled event, returning a non-nil error when the
// interaction must fail.
func (s *Store) fault() error {
	e, hit := s.next(s.target)
	if !hit {
		return nil
	}
	switch e.Kind {
	case Stall:
		time.Sleep(e.Stall)
		return nil
	default:
		return fmt.Errorf("chaos: injected %s on %s", e.Kind, s.target)
	}
}

// ReadBlock implements BlockStore.
func (s *Store) ReadBlock(addr int, dst []extmem.Element) error {
	if err := s.fault(); err != nil {
		return err
	}
	return s.inner.ReadBlock(addr, dst)
}

// WriteBlock implements BlockStore.
func (s *Store) WriteBlock(addr int, src []extmem.Element) error {
	if err := s.fault(); err != nil {
		return err
	}
	return s.inner.WriteBlock(addr, src)
}

// ReadBlocks implements BlockStore.
func (s *Store) ReadBlocks(addrs []int, dst []extmem.Element) error {
	if err := s.fault(); err != nil {
		return err
	}
	return s.inner.ReadBlocks(addrs, dst)
}

// WriteBlocks implements BlockStore.
func (s *Store) WriteBlocks(addrs []int, src []extmem.Element) error {
	if err := s.fault(); err != nil {
		return err
	}
	return s.inner.WriteBlocks(addrs, src)
}

// NumBlocks implements BlockStore.
func (s *Store) NumBlocks() int { return s.inner.NumBlocks() }

// BlockSize implements BlockStore.
func (s *Store) BlockSize() int { return s.inner.BlockSize() }

// Close implements BlockStore.
func (s *Store) Close() error { return s.inner.Close() }

// GrowTo implements extmem.Growable when the inner store does. Growth is
// control traffic: unfaulted unless the store is dead.
func (s *Store) GrowTo(n int) error {
	s.mu.Lock()
	dead := s.dead[s.target]
	s.mu.Unlock()
	if dead {
		return fmt.Errorf("chaos: %s is dead", s.target)
	}
	g, ok := s.inner.(extmem.Growable)
	if !ok {
		return fmt.Errorf("chaos: %T cannot grow", s.inner)
	}
	return g.GrowTo(n)
}
