package bench

import (
	"net/http/httptest"
	"runtime"
	"time"

	"oblivext"
	"oblivext/internal/extmem"
	"oblivext/internal/extmem/netstore"
)

// E21 measures the compute-scaling win of Config.Workers: the same
// encrypted Sort (sealing/opening plus the in-cache sort phases are the
// compute; the store round trips are untouched) run at Workers 1, 2, 4, and
// 8 over three backends — in-memory, a 4-way sharded memory store, and a
// real HTTP obstore. The trace column re-checks the parallelism contract:
// the per-block trace must be bit-identical at every worker count, because
// the partitioning is a function of public geometry only.
func E21() *Table {
	const (
		n     = 1 << 14 // records
		b     = 8
		cache = 4096
		seed  = 99
	)
	workerCounts := []int{1, 2, 4, 8}
	t := &Table{
		ID: "E21",
		Title: f("Parallel compute scaling: encrypted Sort (N=2^14, B=8) at Workers 1/2/4/8 (GOMAXPROCS=%d)",
			runtime.GOMAXPROCS(0)),
		Headers: []string{"backend", "workers", "wall time", "speedup vs w=1",
			"bytes sealed", "trace == w=1?"},
		Metrics: map[string]float64{},
	}

	recs := make([]oblivext.Record, n)
	for i := range recs {
		recs[i] = oblivext.Record{Key: uint64(i*2654435761) % (1 << 30), Val: uint64(i)}
	}
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i*3 + 1)
	}

	type result struct {
		wall  time.Duration
		stats oblivext.IOStats
		sum   oblivext.TraceSummary
	}
	run := func(cfg oblivext.Config) result {
		c, err := oblivext.New(cfg)
		if err != nil {
			panic(err)
		}
		defer c.Close()
		arr, err := c.Store(recs)
		if err != nil {
			panic(err)
		}
		c.EnableTrace(0)
		c.ResetStats()
		start := time.Now()
		if err := arr.Sort(); err != nil {
			panic(err)
		}
		wall := time.Since(start)
		got, err := arr.Records()
		if err != nil {
			panic(err)
		}
		if len(got) != n {
			panic("lost records")
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].Key > got[i].Key {
				panic("not sorted")
			}
		}
		return result{wall: wall, stats: c.Stats(), sum: c.TraceSummary()}
	}
	spinSealed := func() (string, func()) {
		srv := netstore.NewServer(
			extmem.NewMemStore(16384, extmem.CryptChildBlockSize(b)), netstore.ServerOptions{})
		ts := httptest.NewServer(srv.Handler())
		return ts.URL, ts.Close
	}

	base := oblivext.Config{BlockSize: b, CacheWords: cache, Seed: seed,
		StartBlocks: 16384, EncryptionKey: key}
	backends := []struct {
		name string
		cfg  func() (oblivext.Config, func())
	}{
		{"mem", func() (oblivext.Config, func()) { return base, func() {} }},
		{"sharded-4", func() (oblivext.Config, func()) {
			cfg := base
			cfg.NumShards = 4
			return cfg, func() {}
		}},
		{"http (obstore -b 10)", func() (oblivext.Config, func()) {
			url, stop := spinSealed()
			cfg := base
			cfg.URL = url
			return cfg, stop
		}},
	}

	allInvariant := true
	for _, be := range backends {
		var base1 result
		for wi, w := range workerCounts {
			cfg, stop := be.cfg()
			cfg.Workers = w
			r := run(cfg)
			stop()
			if wi == 0 {
				base1 = r
			}
			tracesOK := "yes"
			if r.sum != base1.sum {
				tracesOK = "NO"
				allInvariant = false
			}
			t.Rows = append(t.Rows, []string{be.name, f("%d", w),
				f("%v", r.wall.Round(time.Millisecond)),
				ratio(float64(base1.wall), float64(r.wall)),
				f("%d", r.stats.BytesSealed), tracesOK})
			metric := map[string]string{"mem": "mem", "sharded-4": "sharded4", "http (obstore -b 10)": "http"}[be.name]
			t.Metrics[f("%s_w%d_wall_ms", metric, w)] = float64(r.wall.Milliseconds())
			if w == 4 {
				t.Metrics[f("speedup_%s_w4", metric)] = float64(base1.wall) / float64(r.wall)
				if be.name == "mem" {
					t.Metrics["speedup_w4"] = float64(base1.wall) / float64(r.wall)
				}
			}
		}
	}
	t.Metrics["traces_invariant"] = boolMetric(allInvariant)
	// Speedup is bounded by the cores the runner grants; record it so the
	// archived JSON is interpretable across machines.
	t.Metrics["gomaxprocs"] = float64(runtime.GOMAXPROCS(0))

	t.Notes = append(t.Notes,
		"Workers parallelizes only Alice's private compute — block sealing/opening, in-cache sort phases, routing and stamp passes — between unchanged store round trips; the partition is a pure function of public geometry, which the trace column re-verifies (equal fingerprints at every worker count).",
		"Encrypted runs are crypto-dominated, so the scaling mostly reflects the per-worker AES-CTR + HMAC sealing; over HTTP the wire time bounds the win (Amdahl).",
		"speedup_w4 (mem backend) is the tracked perf metric: wall(w=1)/wall(w=4) on the same machine and geometry.")
	return t
}
