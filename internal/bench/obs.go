package bench

import (
	"io"
	"sync"
	"time"

	"oblivext/internal/extmem"
	"oblivext/internal/obs"
	"oblivext/internal/obsort"
)

// Span capture: with EnableSpanCapture on, every measurement environment the
// experiments build through newEnv gets a span collector, and the forests
// they grow can be merged into one Chrome trace (obench -trace-out). Off by
// default — most runs want the experiments unobserved.
var (
	spanMu         sync.Mutex
	spanCapture    bool
	spanCollectors []*obs.Collector
)

// EnableSpanCapture turns on span collection for every environment built
// after the call.
func EnableSpanCapture() {
	spanMu.Lock()
	spanCapture = true
	spanMu.Unlock()
}

// WriteCapturedTrace merges every captured environment's span forest into
// one Chrome trace (one track per environment) and reports how many forests
// it wrote.
func WriteCapturedTrace(w io.Writer) (int, error) {
	spanMu.Lock()
	var forests [][]*obs.Span
	for _, col := range spanCollectors {
		if roots := col.Roots(); len(roots) > 0 {
			forests = append(forests, roots)
		}
	}
	spanMu.Unlock()
	if len(forests) == 0 {
		return 0, nil
	}
	return len(forests), obs.WriteChromeTrace(w, forests...)
}

// captureEnv attaches a collector to env when capture is on.
func captureEnv(env *extmem.Env) *extmem.Env {
	spanMu.Lock()
	on := spanCapture
	spanMu.Unlock()
	if on {
		col := env.EnableObs()
		spanMu.Lock()
		spanCollectors = append(spanCollectors, col)
		spanMu.Unlock()
	}
	return env
}

// E20 measures the cost of the observability layer itself: the same zigzag
// sort, spans off versus spans on (collector attached, every phase span
// opened and snapshotted). The claim under test is that instrumentation
// stays under a few percent — counters are already maintained by the Disk;
// spans only add two snapshots and a tree node per phase.
func E20() *Table {
	t := &Table{
		ID:      "E20",
		Title:   "Observability overhead: phase spans off vs on",
		Headers: []string{"n blocks", "spans off", "spans on", "overhead"},
		Metrics: map[string]float64{},
	}
	const b, m = 16, 1 << 12
	for _, blocks := range []int{1 << 10, 1 << 12} {
		timeSort := func(withSpans bool) float64 {
			var samples []float64
			for rep := 0; rep < 5; rep++ {
				env := extmem.NewEnv(blocks, b, m, uint64(rep+1))
				env.Workers = defaultWorkers
				if withSpans {
					env.EnableObs()
				}
				a := fillUniform(env, blocks, blocks*b, uint64(rep+1))
				start := time.Now()
				obsort.Zigzag(env, a, obsort.ByKey)
				samples = append(samples, time.Since(start).Seconds())
			}
			return median(samples)
		}
		off := timeSort(false)
		on := timeSort(true)
		overhead := 0.0
		if off > 0 {
			overhead = (on - off) / off * 100
		}
		t.Rows = append(t.Rows, []string{
			f("%d", blocks),
			f("%.2fms", off*1000),
			f("%.2fms", on*1000),
			f("%+.1f%%", overhead),
		})
		t.Metrics[f("overhead_pct_n%d", blocks)] = overhead
	}
	t.Notes = append(t.Notes,
		"Median of 5 reps per cell. Spans piggyback on counters the Disk maintains regardless; each phase adds two counter snapshots and one tree node.")
	return t
}
