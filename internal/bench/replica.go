package bench

import (
	"net/http/httptest"
	"strings"
	"time"

	"oblivext"
	"oblivext/internal/chaos"
	"oblivext/internal/extmem"
	"oblivext/internal/extmem/netstore"
)

// E22 measures the replicated fleet from PR 9 on two axes.
//
// Mixed-latency fleet: one shard, two real obstore servers, with the
// preferred replica suffering a deterministic 10ms stall on every fourth
// data-plane interaction — tail latency, the case hedging exists for (a
// uniformly slow replica is routing's problem, and the P95-adaptive hedge
// delay deliberately self-disables there rather than double every read).
// Unhedged, every fourth read eats the stall and the P99 is the stall;
// hedged, a second replica's read races after the hedge delay and rescues
// exactly the stalled tail. The P50/P99 columns are the replica layer's own
// logical read-latency histogram — the one the adaptive hedge derives its
// P95 from.
//
// Kill recovery: a 2x2 fleet sorts N=2^12 while one replica of one shard is
// killed mid-sort (permanently, at a scripted interaction). The sort must
// complete and verify through breaker + failover; the overhead column is its
// wall time against the same fleet left healthy.
func E22() *Table {
	t := &Table{
		ID:    "E22",
		Title: "Replicated fleet: hedged reads on a mixed-latency fleet; replica-kill recovery (N=2^12)",
		Headers: []string{"scenario", "read P50", "read P99", "wall time",
			"hedges (won)", "failures/failovers", "sorted?"},
		Metrics: map[string]float64{},
	}

	type fleet struct {
		servers []*netstore.Server
		urls    []string
		hosts   []string
		close   func()
	}
	spin := func(k, blocks, b int) fleet {
		fl := fleet{}
		var stops []func()
		for i := 0; i < k; i++ {
			srv := netstore.NewServer(extmem.NewMemStore(blocks, b), netstore.ServerOptions{})
			ts := httptest.NewServer(srv.Handler())
			fl.servers = append(fl.servers, srv)
			fl.urls = append(fl.urls, ts.URL)
			fl.hosts = append(fl.hosts, strings.TrimPrefix(ts.URL, "http://"))
			stops = append(stops, ts.Close)
		}
		fl.close = func() {
			for _, f := range stops {
				f()
			}
		}
		return fl
	}

	const (
		b     = 8
		cache = 512
		seed  = 42
		// Both scales sit well above the ~1ms OS timer granularity that
		// bounds how precisely a hedge timer can fire: with a sub-ms stall a
		// "late" hedge races the primary's own completion and the comparison
		// measures the scheduler, not the policy.
		stall = 10 * time.Millisecond
		hedge = time.Millisecond
		// Every stallEvery-th interaction on the slow replica stalls: a 25%
		// latency tail.
		stallEvery = 4
	)

	// --- Mixed-latency fleet: hedged vs unhedged reads. ---
	readRun := func(hedge time.Duration) (p50, p99 time.Duration, wall time.Duration, hedges, wins int64) {
		const nBlocks = 256
		fl := spin(2, 4*nBlocks, b)
		defer fl.close()
		tr := chaos.NewTransport(nil, nil)
		c, err := oblivext.New(oblivext.Config{
			BlockSize: b, CacheWords: cache, Seed: seed, StartBlocks: 4 * nBlocks,
			Replicas: 2, ReplicaURLs: fl.urls, HedgeAfter: hedge,
			HTTPTransport: tr, Workers: defaultWorkers,
		})
		if err != nil {
			panic(err)
		}
		defer c.Close()
		arr, err := c.Store(mkRecordsUniform(nBlocks*b, seed))
		if err != nil {
			panic(err)
		}
		// The tail appears only after the upload: from here on, every
		// stallEvery-th data-plane interaction on the preferred replica
		// stalls.
		base := tr.Interactions(fl.hosts[0])
		for i := int64(0); i < 4096; i += stallEvery {
			tr.AddEvent(chaos.Event{Target: fl.hosts[0], At: base + i, Kind: chaos.Stall, Stall: stall})
		}
		start := time.Now()
		for pass := 0; pass < 30; pass++ {
			if _, err := arr.Records(); err != nil {
				panic(err)
			}
		}
		wall = time.Since(start)
		p50, p99 = c.ReplicaReadLatency(0.50), c.ReplicaReadLatency(0.99)
		for _, grp := range c.ReplicaStats() {
			for _, s := range grp {
				hedges += s.Hedges
				wins += s.HedgeWins
			}
		}
		return
	}

	p50u, p99u, wallU, _, _ := readRun(0)
	t.Rows = append(t.Rows, []string{"reads, 25% tail on preferred replica, unhedged",
		f("%v", p50u), f("%v", p99u), f("%v", wallU.Round(time.Millisecond)), "0 (0)", "0/0", "-"})
	p50h, p99h, wallH, hedges, wins := readRun(hedge)
	t.Rows = append(t.Rows, []string{"reads, 25% tail on preferred replica, hedged",
		f("%v", p50h), f("%v", p99h), f("%v", wallH.Round(time.Millisecond)),
		f("%d (%d)", hedges, wins), "0/0", "-"})
	t.Metrics["read_p99_unhedged_us"] = float64(p99u.Microseconds())
	t.Metrics["read_p99_hedged_us"] = float64(p99h.Microseconds())
	t.Metrics["read_wall_unhedged_ms"] = float64(wallU.Milliseconds())
	t.Metrics["read_wall_hedged_ms"] = float64(wallH.Milliseconds())
	t.Metrics["hedge_wins"] = float64(wins)

	// --- Replica-kill mid-Sort recovery. ---
	sortRun := func(kill bool) (wall time.Duration, failures, failovers int64, sorted bool) {
		const nBlocks = 512 // x B=8 = 2^12 records, the acceptance size
		fl := spin(4, 4*nBlocks, b)
		defer fl.close()
		tr := chaos.NewTransport(nil, nil)
		c, err := oblivext.New(oblivext.Config{
			BlockSize: b, CacheWords: cache, Seed: seed, StartBlocks: 4 * nBlocks,
			NumShards: 2, Replicas: 2, ReplicaURLs: fl.urls,
			HTTPTransport: tr, NetRetries: -1, Workers: defaultWorkers,
		})
		if err != nil {
			panic(err)
		}
		defer c.Close()
		arr, err := c.Store(mkRecordsUniform(nBlocks*b, seed))
		if err != nil {
			panic(err)
		}
		if kill {
			tr.AddEvent(chaos.Event{Target: fl.hosts[0],
				At: tr.Interactions(fl.hosts[0]) + 8, Kind: chaos.Kill})
		}
		start := time.Now()
		if err := arr.Sort(); err != nil {
			panic(err)
		}
		wall = time.Since(start)
		got, err := arr.Records()
		if err != nil {
			panic(err)
		}
		sorted = true
		for i := 1; i < len(got); i++ {
			if got[i-1].Key > got[i].Key {
				sorted = false
			}
		}
		for _, grp := range c.ReplicaStats() {
			for _, s := range grp {
				failures += s.Failures
				failovers += s.Failovers
			}
		}
		return
	}

	healthyWall, _, _, healthySorted := sortRun(false)
	t.Rows = append(t.Rows, []string{"sort 2x2 fleet, healthy", "-", "-",
		f("%v", healthyWall.Round(time.Millisecond)), "-", "0/0", yesNo(healthySorted)})
	killWall, kf, ko, killSorted := sortRun(true)
	t.Rows = append(t.Rows, []string{"sort 2x2 fleet, replica killed mid-sort", "-", "-",
		f("%v", killWall.Round(time.Millisecond)), "-", f("%d/%d", kf, ko), yesNo(killSorted)})
	t.Metrics["sort_healthy_ms"] = float64(healthyWall.Milliseconds())
	t.Metrics["sort_kill_ms"] = float64(killWall.Milliseconds())
	t.Metrics["kill_failovers"] = float64(ko)

	t.Notes = append(t.Notes,
		"The stall is injected at the HTTP transport, beneath the netstore client, so it is indistinguishable from a genuinely slow server. Reads prefer the lowest-index healthy replica — the one with the tail: unhedged, the P99 is the stall; hedged, the second replica's read launched after the hedge delay rescues the stalled tail, so the P99 collapses toward the hedge delay plus loopback latency while the P50 (untouched fast reads) stays put.",
		"Hedging targets tail latency specifically: against a *uniformly* slow replica the P95-adaptive delay converges to the observed latency and hedging self-disables — by design, since doubling every read buys nothing a health-based routing decision wouldn't buy cheaper.",
		"Hedging is off by default and changes only timing, never the access sequence — the chaos e2e suite pins that the trace and the failover decision log are byte-identical across replays and inputs.",
		"The kill is permanent and scripted at a fixed data-plane interaction, so the recovery path (breaker opens after 3 consecutive failures, reads fail over, missed writes are tracked dirty) is deterministic; the wall-time delta against the healthy fleet is the cost of riding through a crash with NetRetries=-1 (fail fast, no retry).",
	)
	return t
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}
