package bench

import (
	"oblivext/internal/core"
	"oblivext/internal/emsort"
	"oblivext/internal/extmem"
	"oblivext/internal/obsort"
	"oblivext/internal/oram"
	"oblivext/internal/trace"
	"oblivext/internal/workload"
)

// E7 compares oblivious selection against sort-then-pick (the paper's
// log-factor win) and against the non-oblivious quickselect (the price of
// obliviousness).
func E7() *Table {
	t := &Table{
		ID:    "E7",
		Title: "Selection (Theorems 12/13: O(N/B) I/Os, beating sort-then-pick by ~log_{M/B}(N/B))",
		Headers: []string{"N (elems)", "select I/O", "per block", "sort-then-pick I/O",
			"win", "quickselect I/O (leaky)"},
	}
	for _, nBlocks := range []int{256, 1024, 4096} {
		b, m := 8, 32
		n := nBlocks * b

		env := newEnv(16*nBlocks, b, m*b, uint64(n))
		a := fillUniform(env, nBlocks, n, uint64(n))
		env.D.ResetStats()
		if _, err := core.Select(env, a, int64(n/2)); err != nil {
			panic(err)
		}
		sel := env.D.Stats().Total()

		env2 := newEnv(16*nBlocks, b, m*b, uint64(n))
		a2 := fillUniform(env2, nBlocks, n, uint64(n))
		env2.D.ResetStats()
		obsort.Bitonic(env2, a2, obsort.ByKey)
		stp := env2.D.Stats().Total() + int64(nBlocks) // + scan to rank

		env3 := newEnv(16*nBlocks, b, m*b, uint64(n))
		a3 := fillUniform(env3, nBlocks, n, uint64(n))
		env3.D.ResetStats()
		if _, err := emsort.QuickSelect(env3, a3, int64(n/2)); err != nil {
			panic(err)
		}
		qs := env3.D.Stats().Total()

		t.Rows = append(t.Rows, []string{f("%d", n), f("%d", sel),
			f("%.1f", float64(sel)/float64(nBlocks)), f("%d", stp),
			ratio(float64(stp), float64(sel)), f("%d", qs)})
	}
	t.Notes = append(t.Notes,
		"The 'win' ratio (sort-then-pick / select) rises steadily with N, as linear-vs-log² predicts; at these sizes sort-then-pick is still cheaper because selection's O(N^{7/8}) candidate range is not yet far below N and the tight compactions fall back to the butterfly (adding a small log factor) at this cache size. The asymptotic claim shows as the monotone trend, not as an in-range crossover.",
		"The paper notes this beats the Ω(n·log log n) compare-exchange lower bound of Leighton et al. — legitimately, because the algorithm also uses copies, sums and random hashing as primitives.")
	return t
}

// E8 measures Theorem 17: quantile I/O stays linear across N and q.
func E8() *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Quantiles (Theorem 17: q ≤ (M/B)^{1/4} quantiles in O(N/B) I/Os)",
		Headers: []string{"N (elems)", "q", "I/O", "per block", "exact ranks"},
	}
	for _, nBlocks := range []int{512, 2048} {
		for _, q := range []int{1, 2, 4} {
			b, m := 8, 32
			n := nBlocks * b
			env := newEnv(32*nBlocks, b, m*b, uint64(n+q))
			a := fillUniform(env, nBlocks, n, uint64(n))
			env.D.ResetStats()
			qs, err := core.Quantiles(env, a, q)
			exact := "yes"
			if err != nil {
				exact = "FAILED"
			}
			_ = qs
			io := env.D.Stats().Total()
			t.Rows = append(t.Rows, []string{f("%d", n), f("%d", q), f("%d", io),
				f("%.1f", float64(io)/float64(nBlocks)), exact})
		}
	}
	t.Notes = append(t.Notes, "Exactness (returned elements sit at exactly the target ranks) is verified by the test suite; here we record the I/O shape: flat per-block cost in N, mild growth in q.")
	return t
}

// E9 is the headline sorting comparison: the randomized optimal sort vs the
// deterministic Lemma-2 sort vs columnsort vs the non-oblivious optimal.
func E9() *Table {
	t := &Table{
		ID:    "E9",
		Title: "Sorting (Theorem 21: O((N/B)·log_{M/B}(N/B)) I/Os vs Lemma 2's extra log factor)",
		Headers: []string{"N (elems)", "m=M/B", "randomized I/O", "bitonic(L2) I/O", "columnsort I/O",
			"mergesort I/O (leaky)", "bitonic/rand", "rand/mergesort"},
	}
	for _, cfg := range []struct{ nBlocks, b, m int }{
		{256, 8, 32}, {1024, 8, 32}, {4096, 8, 32}, {1024, 8, 128},
	} {
		n := cfg.nBlocks * cfg.b
		run := func(fn func(env *extmem.Env, a extmem.Array)) int64 {
			env := newEnv(64*cfg.nBlocks, cfg.b, cfg.m*cfg.b, uint64(n+cfg.m))
			a := fillUniform(env, cfg.nBlocks, n, uint64(n))
			env.D.ResetStats()
			fn(env, a)
			return env.D.Stats().Total()
		}
		randIO := run(func(env *extmem.Env, a extmem.Array) {
			if err := core.Sort(env, a, core.SortParams{}); err != nil {
				panic(err)
			}
		})
		bitIO := run(func(env *extmem.Env, a extmem.Array) { obsort.Bitonic(env, a, obsort.ByKey) })
		colIO := int64(-1)
		if _, _, err := obsort.ColumnSortGeometry(cfg.nBlocks, cfg.b, cfg.m*cfg.b); err == nil {
			colIO = run(func(env *extmem.Env, a extmem.Array) {
				if err := obsort.ColumnSort(env, a, obsort.ByKey); err != nil {
					panic(err)
				}
			})
		}
		mrgIO := run(func(env *extmem.Env, a extmem.Array) { emsort.MergeSort(env, a, obsort.ByKey) })
		col := "size-limited"
		if colIO >= 0 {
			col = f("%d", colIO)
		}
		t.Rows = append(t.Rows, []string{f("%d", n), f("%d", cfg.m), f("%d", randIO), f("%d", bitIO),
			col, f("%d", mrgIO), ratio(float64(bitIO), float64(randIO)), ratio(float64(randIO), float64(mrgIO))})
	}
	t.Notes = append(t.Notes,
		"Measured story, honestly: at every size a laptop-scale simulation can reach, the deterministic sort's tiny constants win outright (bitonic/rand << 1) — the randomized pipeline pays for sampling, quantile sub-selections, shuffling, thinning and sweeping on every level. The paper's separation is asymptotic: the randomized sort's per-block I/O grows with the recursion depth log_{M/B}(N/B) (one extra level per (q+1)× growth in N) while the deterministic sort's grows with log²(N/M); the growth *rates* in the table reflect that, but the constants put the crossover far beyond feasible N. This matches the paper's framing — it claims asymptotic optimality, reporting no implementation.",
		"Columnsort stops being applicable beyond its r ≥ 2(s−1)² size limit, exactly the Chaudhry–Cormen limitation the paper cites; the non-oblivious mergesort shows the floor: obliviousness costs bitonic ~5-15× and the randomized sort far more at these sizes.")
	return t
}

// E10 is the paper's headline application: the amortized I/O overhead of
// hierarchical ORAM simulation with rebuilds by the deterministic sort vs
// the randomized optimal sort.
func E10() *Table {
	t := &Table{
		ID:    "E10",
		Title: "ORAM simulation overhead (§1: optimal oblivious sorting improves the amortized rebuild cost)",
		Headers: []string{"n (logical blocks)", "accesses", "amortized I/O/access (bitonic)",
			"amortized I/O/access (randomized)", "bitonic/randomized"},
	}
	for _, n := range []int{32, 64, 128} {
		run := func(s obsort.Sorter) float64 {
			env := newEnv(64, 8, 512, uint64(n))
			o, err := oram.New(env, n, oram.Options{Sorter: s})
			if err != nil {
				panic(err)
			}
			env.D.ResetStats()
			steps := 4 * n
			for i := 0; i < steps; i++ {
				if _, err := o.Read(i % n); err != nil {
					panic(err)
				}
			}
			return float64(env.D.Stats().Total()) / float64(steps)
		}
		bit := run(obsort.BitonicSorter)
		rnd := run(core.RandomizedSorter)
		t.Rows = append(t.Rows, []string{f("%d", n), f("%d", 4*n), f("%.1f", bit), f("%.1f", rnd),
			ratio(bit, rnd)})
	}
	t.Notes = append(t.Notes,
		"The rebuild sorts dominate the amortized cost, which is why the paper's headline says an optimal oblivious sort improves ORAM simulation by a log factor: the rebuild term inherits the sort's complexity directly. The mechanism reproduces — swap the Sorter and the rebuild cost changes accordingly — but at simulable n the randomized sort's constants outweigh its asymptotic advantage (see E9), so the deterministic-rebuild ORAM is cheaper here. The log-factor *improvement* is an asymptotic statement inherited from E9's growth rates.")
	return t
}

// E11 measures Lemma 18 / Corollary 19: the deal-step color overflow
// probability as the constant c shrinks.
func E11() *Table {
	t := &Table{
		ID:      "E11",
		Title:   "Shuffle-and-deal overflow (Lemma 18/Cor 19: overflow prob < (N/B)^{-d} for c > 2de^{1/2})",
		Headers: []string{"c", "quota (c·√m)", "trials", "overflow %"},
	}
	// Fixed geometry: n' blocks of q+1 colors, batch = m^{3/4}.
	const nBlocks, m, colors, batch = 4096, 256, 4, 64
	for _, c := range []int{1, 2, 3, 5} {
		quota := c * 16 // sqrt(256) = 16
		const trials = 10
		overflows := 0
		for tr := 0; tr < trials; tr++ {
			env := newEnv(8*nBlocks, 4, m*4, uint64(100+tr))
			a := env.D.Alloc(nBlocks)
			buf := make([]extmem.Element, 4)
			for i := 0; i < nBlocks; i++ {
				color := 1 + (i % colors)
				for tt := range buf {
					buf[tt] = extmem.Element{Key: uint64(i), Pos: uint64(i*4 + tt), Flags: extmem.FlagOccupied}
					buf[tt].SetColor(color)
				}
				a.Write(i, buf)
			}
			core.ShuffleBlocksForTest(env, a)
			if !core.DealForTest(env, a, colors, batch, quota) {
				overflows++
			}
		}
		t.Rows = append(t.Rows, []string{f("%d", c), f("%d", quota), f("%d", trials),
			f("%.0f", 100*float64(overflows)/trials)})
	}
	t.Notes = append(t.Notes, "Expected blocks per color per batch is batch/colors = 16; c = 1 sits at the mean (overflow ~certain), and the probability collapses as c grows — the Chernoff behaviour behind Corollary 19.")
	return t
}

// E13 demonstrates the defining property across the whole library: fixed
// tape + different data ⇒ identical traces for every oblivious algorithm,
// while the non-oblivious baselines diverge.
func E13() *Table {
	t := &Table{
		ID:      "E13",
		Title:   "Input-invariance of traces (obliviousness, §1 definition)",
		Headers: []string{"algorithm", "distributions compared", "traces identical?"},
	}
	const nBlocks, b, m = 256, 8, 32
	n := nBlocks * b
	kinds := workload.Kinds()

	tr := func(fn func(env *extmem.Env, a extmem.Array)) []trace.Summary {
		var out []trace.Summary
		for _, k := range kinds {
			env := newEnv(32*nBlocks, b, m*b, 999)
			rec := trace.NewRecorder(0)
			env.D.SetRecorder(rec)
			a := env.D.Alloc(nBlocks)
			keys, _ := workload.Keys(k, n, 5)
			if err := workload.Fill(a, keys); err != nil {
				panic(err)
			}
			fn(env, a)
			out = append(out, rec.Summarize())
		}
		return out
	}
	allEqual := func(ss []trace.Summary) string {
		for _, s := range ss[1:] {
			if !s.Equal(ss[0]) {
				return "NO"
			}
		}
		return "yes"
	}
	distros := f("%d kinds: uniform/sorted/reverse/fewdup/zipf/equal", len(kinds))

	t.Rows = append(t.Rows, []string{"oblivious sort (Thm 21)", distros, allEqual(tr(func(env *extmem.Env, a extmem.Array) {
		if err := core.Sort(env, a, core.SortParams{}); err != nil {
			panic(err)
		}
	}))})
	t.Rows = append(t.Rows, []string{"bitonic sort (Lemma 2)", distros, allEqual(tr(func(env *extmem.Env, a extmem.Array) {
		obsort.Bitonic(env, a, obsort.ByKey)
	}))})
	t.Rows = append(t.Rows, []string{"selection (Thm 13)", distros, allEqual(tr(func(env *extmem.Env, a extmem.Array) {
		if _, err := core.Select(env, a, int64(n/2)); err != nil {
			panic(err)
		}
	}))})
	t.Rows = append(t.Rows, []string{"quantiles (Thm 17)", distros, allEqual(tr(func(env *extmem.Env, a extmem.Array) {
		if _, err := core.Quantiles(env, a, 2); err != nil {
			panic(err)
		}
	}))})
	t.Rows = append(t.Rows, []string{"consolidate+tight compaction (L3+Thm 6)", distros, allEqual(tr(func(env *extmem.Env, a extmem.Array) {
		core.CompactBlocksTight(env, a, core.PredOccupied, 0)
	}))})
	t.Rows = append(t.Rows, []string{"NON-oblivious quickselect (baseline)", distros, allEqual(tr(func(env *extmem.Env, a extmem.Array) {
		if _, err := emsort.QuickSelect(env, a, int64(n/2)); err != nil {
			panic(err)
		}
	}))})
	t.Notes = append(t.Notes, "Every oblivious algorithm produces bit-identical traces across all six input distributions under a fixed tape; the non-oblivious baseline's trace varies — exactly the leak (Chen et al. [15]) that motivates the paper.")
	return t
}
