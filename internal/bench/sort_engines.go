package bench

import (
	"net/http/httptest"
	"time"

	"oblivext/internal/core"
	"oblivext/internal/extmem"
	"oblivext/internal/extmem/netstore"
	"oblivext/internal/extmem/shard"
	"oblivext/internal/obsort"
	"oblivext/internal/workload"
)

// E19 races the four sorter engines — the paper's randomized sort, external
// bitonic, zig-zag (merge-split rounds over cache-sized runs), and bucket
// oblivious sort — head to head on the same seeded workloads over three
// backends: in-process memory, a 4-way sharded store, and a real HTTP
// obstore server. Block I/O is the paper's cost measure; round trips are
// what dominate wall-clock against a remote Bob, and over HTTP both the
// request count and the measured wire wait are real, not modeled.
//
// The table is what the auto-selection policy (obsort.Pick) is calibrated
// against: block volume decides on local backends, round trips on network
// ones, and the "auto picks" note records the choice Pick makes for each
// geometry so a regression in the policy shows up as a mismatch with the
// measured winner.
func E19() *Table {
	const (
		b     = 8
		cache = 4096 // M in elements; M/B = 512 blocks of cache
		seed  = 7
	)
	t := &Table{
		ID:    "E19",
		Title: "Sorter engines head-to-head (randomized vs bitonic vs zigzag vs bucket; B=8, M=4096)",
		Headers: []string{"backend", "N (elems)", "engine", "block I/O", "per block",
			"round trips", "wall"},
		Metrics: map[string]float64{},
	}

	engines := []string{obsort.EngineRandomized, obsort.EngineBitonic,
		obsort.EngineZigzag, obsort.EngineBucket}

	type result struct {
		io, rts int64
		wall    time.Duration
		sorted  bool
	}
	// run sorts nBlocks blocks of uniform keys with the named engine over
	// the named backend and measures I/O, round trips and wall time.
	run := func(backend string, nBlocks int, engine string) result {
		var store extmem.BlockStore
		cleanup := func() {}
		switch backend {
		case "mem":
			store = extmem.NewMemStore(16*nBlocks, b)
		case "sharded-4":
			children := make([]extmem.BlockStore, 4)
			for i := range children {
				children[i] = extmem.NewMemStore(4*nBlocks, b)
			}
			sh, err := shard.New(children)
			if err != nil {
				panic(err)
			}
			store = sh
		case "http":
			srv := netstore.NewServer(extmem.NewMemStore(16*nBlocks, b), netstore.ServerOptions{})
			ts := httptest.NewServer(srv.Handler())
			c, err := netstore.Dial(ts.URL, netstore.Options{})
			if err != nil {
				ts.Close()
				panic(err)
			}
			store = c
			cleanup = func() { c.Close(); ts.Close() }
		}
		defer cleanup()
		env := extmem.NewEnvOn(store, cache, seed)
		env.Workers = defaultWorkers
		a := env.D.Alloc(nBlocks)
		keys, err := workload.Keys(workload.Uniform, nBlocks*b, uint64(nBlocks))
		if err != nil {
			panic(err)
		}
		if err := workload.Fill(a, keys); err != nil {
			panic(err)
		}
		env.D.ResetStats()
		start := time.Now()
		if engine == obsort.EngineRandomized {
			if err := core.Sort(env, a, core.SortParams{}); err != nil {
				panic(err)
			}
		} else {
			obsort.PickSorter(engine)(env, a, obsort.ByKey)
		}
		wall := time.Since(start)
		st := env.D.Stats()

		// Verify after the measurement window: occupied records ascend.
		sorted := true
		buf := make([]extmem.Element, b)
		last := uint64(0)
		for i := 0; i < nBlocks && sorted; i++ {
			a.Read(i, buf)
			for _, e := range buf {
				if !e.Occupied() {
					continue
				}
				if e.Key < last {
					sorted = false
					break
				}
				last = e.Key
			}
		}
		return result{io: st.Reads + st.Writes, rts: st.RoundTrips, wall: wall, sorted: sorted}
	}

	type matrix struct {
		backend string
		sizes   []int
	}
	// HTTP runs only the acceptance size (n = 2^12 blocks): the point of the
	// wire rows is the round-trip separation, and loopback requests are slow
	// enough that the full size sweep belongs on the in-process backends.
	cases := []matrix{
		{"mem", []int{1024, 4096, 8192}},
		{"sharded-4", []int{4096}},
		{"http", []int{4096}},
	}
	allSorted := true
	results := map[string]result{} // "backend/n/engine"
	for _, mc := range cases {
		for _, nBlocks := range mc.sizes {
			for _, engine := range engines {
				r := run(mc.backend, nBlocks, engine)
				results[f("%s/%d/%s", mc.backend, nBlocks, engine)] = r
				allSorted = allSorted && r.sorted
				t.Rows = append(t.Rows, []string{mc.backend, f("%d", nBlocks*b), engine,
					f("%d", r.io), f("%.1f", float64(r.io)/float64(nBlocks)),
					f("%d", r.rts), f("%v", r.wall.Round(time.Millisecond))})
			}
		}
	}

	// Record what the auto policy picks per geometry, next to the measured
	// winner it should agree with.
	pickNotes := ""
	for _, mc := range cases {
		costModel := "mem"
		if mc.backend == "http" {
			costModel = "net"
		}
		for _, nBlocks := range mc.sizes {
			pick := obsort.Pick(nBlocks, b, cache, costModel)
			if pickNotes != "" {
				pickNotes += ", "
			}
			pickNotes += f("%s n=%d → %s", mc.backend, nBlocks*b, pick)
			// Encode the picked engine as its index in the engines list.
			for i, e := range engines {
				if e == pick {
					t.Metrics[f("%s_%d_pick", mc.backend, nBlocks)] = float64(i)
				}
			}
		}
	}

	// Acceptance metric: at n = 2^12 blocks over HTTP, at least one of the
	// new engines must beat the randomized sort on BOTH block volume and
	// round trips.
	httpRand := results["http/4096/randomized"]
	httpZig := results["http/4096/zigzag"]
	httpBuck := results["http/4096/bucket"]
	beats := func(x result) bool { return x.io < httpRand.io && x.rts < httpRand.rts }
	newEnginesWin := beats(httpZig) || beats(httpBuck)

	for _, engine := range engines {
		r := results[f("http/4096/%s", engine)]
		t.Metrics[f("http_io_%s", engine)] = float64(r.io)
		t.Metrics[f("http_rt_%s", engine)] = float64(r.rts)
		t.Metrics[f("http_wall_ms_%s", engine)] = float64(r.wall.Milliseconds())
		m := results[f("mem/8192/%s", engine)]
		t.Metrics[f("mem8192_io_%s", engine)] = float64(m.io)
	}
	t.Metrics["http_new_engine_beats_randomized"] = boolMetric(newEnginesWin)
	t.Metrics["all_outputs_sorted"] = boolMetric(allSorted)

	winNote := "NO — policy calibration is stale"
	if newEnginesWin {
		winNote = f("yes — zigzag %.1fx less I/O and %.1fx fewer round trips than randomized over HTTP; bucket %.1fx / %.1fx",
			float64(httpRand.io)/float64(httpZig.io), float64(httpRand.rts)/float64(httpZig.rts),
			float64(httpRand.io)/float64(httpBuck.io), float64(httpRand.rts)/float64(httpBuck.rts))
	}
	t.Notes = append(t.Notes,
		f("New deterministic engines beat the randomized sort on both block volume and round trips at N = 2^15 elements over HTTP: %s.", winNote),
		f("Auto picks: %s. The policy compares predicted round trips over network backends and predicted block volume elsewhere — all public functions of (n, B, M).", pickNotes),
		"Zigzag's advantage on the wire is structural: a merge-split moves half a cache of blocks in exactly 2 vectored round trips, while bitonic's streaming levels pay a round trip per flushed pair batch and the randomized pipeline re-reads every level of its recursion. Bucket's 3-pass asymptotics only overtake zigzag once log² (N/M) outgrows the bin+distribute constant — beyond this table's sizes for M = 4096.",
		f("Every engine's output verified sorted on every backend: %s.", map[bool]string{true: "yes", false: "NO"}[allSorted]))
	return t
}
