package bench

import (
	"net/http/httptest"
	"time"

	"oblivext"
	"oblivext/internal/extmem"
	"oblivext/internal/extmem/netstore"
)

// E16 measures the real network backend: the same Sort, same seed, same
// geometry, run against an in-process MemStore, one real HTTP obstore
// server, and four of them behind the sharded fan-out. Unlike E14/E15 the
// network numbers are *measured* — actual requests over actual sockets —
// and the trace column is audited from the server's own journal, not the
// client's bookkeeping: the server-side fingerprint of the Sort must equal
// the MemStore run's logical trace (K=1) or its residue-class projection
// union (K=4, checked by per-server counts summing to the logical length).
func E16() *Table {
	const (
		nBlocks = 512 // × B=8 elements = 2^12, the acceptance size
		b       = 8
		cache   = 512
		seed    = 42
	)
	t := &Table{
		ID:    "E16",
		Title: "Real HTTP backend (obstore): measured cost of Sort (N=2^12, B=8)",
		Headers: []string{"backend", "round trips", "block I/Os", "measured net wait",
			"wall time", "retries", "server trace == mem logical?"},
	}

	type serverSet struct {
		servers []*netstore.Server
		urls    []string
		close   func()
	}
	spin := func(k int) serverSet {
		ss := serverSet{}
		var stops []func()
		for i := 0; i < k; i++ {
			srv := netstore.NewServer(extmem.NewMemStore(4*nBlocks, b), netstore.ServerOptions{})
			ts := httptest.NewServer(srv.Handler())
			ss.servers = append(ss.servers, srv)
			ss.urls = append(ss.urls, ts.URL)
			stops = append(stops, ts.Close)
		}
		ss.close = func() {
			for _, f := range stops {
				f()
			}
		}
		return ss
	}

	run := func(cfg oblivext.Config, servers []*netstore.Server) (st oblivext.IOStats,
		ts oblivext.TraceSummary, wall time.Duration, netWait time.Duration, retries int64,
		serverLen int64, serverHash uint64) {
		cfg.Workers = defaultWorkers
		c, err := oblivext.New(cfg)
		if err != nil {
			panic(err)
		}
		defer c.Close()
		arr, err := c.Store(mkRecordsUniform(nBlocks*b, seed))
		if err != nil {
			panic(err)
		}
		c.EnableTrace(0)
		c.ResetStats()
		for _, s := range servers {
			s.ResetTrace()
		}
		start := time.Now()
		if err := arr.Sort(); err != nil {
			panic(err)
		}
		wall = time.Since(start)
		st, ts = c.Stats(), c.TraceSummary()
		netWait = c.MeasuredNetworkTime()
		for _, s := range c.MeasuredNetworkStats() {
			retries += s.Retries
		}
		for _, s := range servers {
			sum := s.TraceSummary()
			serverLen += sum.Len
			if len(servers) == 1 {
				serverHash = sum.Hash
			}
		}
		return
	}

	base := oblivext.Config{BlockSize: b, CacheWords: cache, Seed: seed, StartBlocks: 4 * nBlocks}

	memStats, memTrace, memWall, _, _, _, _ := run(base, nil)
	t.Rows = append(t.Rows, []string{"memstore", f("%d", memStats.RoundTrips),
		f("%d", memStats.Total()), "-", f("%v", memWall.Round(time.Millisecond)), "-", "(reference)"})

	one := spin(1)
	cfg1 := base
	cfg1.URL = one.urls[0]
	st1, tr1, wall1, wait1, retr1, len1, hash1 := run(cfg1, one.servers)
	eq1 := "yes"
	if len1 != memTrace.Len || hash1 != memTrace.Hash || tr1 != memTrace {
		eq1 = "NO"
	}
	t.Rows = append(t.Rows, []string{"http K=1", f("%d", st1.RoundTrips), f("%d", st1.Total()),
		f("%v", wait1.Round(time.Millisecond)), f("%v", wall1.Round(time.Millisecond)),
		f("%d", retr1), eq1})
	one.close()

	four := spin(4)
	cfg4 := base
	cfg4.NumShards = 4
	cfg4.ShardURLs = four.urls
	st4, tr4, wall4, wait4, retr4, len4, _ := run(cfg4, four.servers)
	eq4 := "yes (projected)"
	if len4 != memTrace.Len || tr4 != memTrace {
		eq4 = "NO"
	}
	t.Rows = append(t.Rows, []string{"http K=4", f("%d", st4.RoundTrips), f("%d", st4.Total()),
		f("%v", wait4.Round(time.Millisecond)), f("%v", wall4.Round(time.Millisecond)),
		f("%d", retr4), eq4})
	four.close()

	t.Notes = append(t.Notes,
		"The servers are real processes-behind-sockets (httptest on loopback), so 'measured net wait' is wall-clock HTTP time, not a model. One vectored store call is exactly one request; the round-trip column therefore equals the request count the servers saw.",
		"Trace equality for K=1 compares the *server's own journal* (length and FNV-1a hash) against the MemStore run's client-side logical trace — the end-to-end obliviousness check of the paper's model, with Bob doing the recording. For K=4 each server journals its residue class; the per-server lengths must sum to the logical length and the client-side logical trace must be bit-identical to the MemStore run's.",
		"Loopback RTTs are tens of microseconds; against a WAN Bob multiply by the RTT ratio — the request count is the portable number (cf. E14's >20x round-trip reduction from batching).",
		"On loopback K=4 is *slower* than K=1: each logical interaction becomes four HTTP requests whose fixed per-request overhead dwarfs the near-zero propagation delay, so the fan-out's parallelism has nothing to hide. The sharded win needs real RTT (E15 models it; 'measured net wait' sums per-server waits, which overlap, hence it can exceed wall time).")
	return t
}
