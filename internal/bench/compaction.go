package bench

import (
	"math/rand/v2"

	"oblivext/internal/core"
	"oblivext/internal/extmem"
	"oblivext/internal/iblt"
	"oblivext/internal/workload"
)

// E1 measures Lemma 1: the success probability of IBLT listEntries as a
// function of the load factor m/n at k = 4 hash functions.
func E1() *Table {
	t := &Table{
		ID:      "E1",
		Title:   "IBLT listEntries success rate (Lemma 1: success w.p. 1-1/n^c at m = δkn)",
		Headers: []string{"n (pairs)", "m/n", "trials", "success %"},
	}
	for _, n := range []int{64, 256, 1024} {
		for _, load := range []float64{1.2, 1.5, 2, 3} {
			m := int(load * float64(n))
			const trials = 400
			okCount := 0
			for tr := 0; tr < trials; tr++ {
				tb := iblt.New(m, 4, 1, uint64(n*1000+tr))
				for i := 0; i < n; i++ {
					tb.Insert(uint64(i), []uint64{uint64(i)})
				}
				if _, ok := tb.ListEntries(); ok {
					okCount++
				}
			}
			t.Rows = append(t.Rows, []string{f("%d", n), f("%.1f", load), f("%d", trials),
				f("%.1f", 100*float64(okCount)/trials)})
		}
	}
	t.Notes = append(t.Notes, "Paper: success probability 1-1/n^c for m = δkn (δ,k ≥ 2). Shape check: success goes to 100% as m/n grows past the k=4 peeling threshold (~1.3) and improves with n.")
	return t
}

// E2 verifies Lemma 3: consolidation costs exactly ceil(N/B) reads and
// ceil(N/B) writes regardless of density.
func E2() *Table {
	t := &Table{
		ID:      "E2",
		Title:   "Consolidation I/O (Lemma 3: exactly ⌈N/B⌉ reads + ⌈N/B⌉ writes)",
		Headers: []string{"blocks", "B", "marked %", "reads", "writes", "predicted"},
	}
	for _, n := range []int{256, 1024, 4096} {
		for _, pct := range []int{0, 25, 100} {
			env := newEnv(4*n, 8, 64, 7)
			a := fillUniform(env, n, n*8, uint64(n))
			if err := workload.MarkFraction(a, n*8*pct/100, 3); err != nil {
				panic(err)
			}
			env.D.ResetStats()
			core.Consolidate(env, a)
			st := env.D.Stats()
			t.Rows = append(t.Rows, []string{f("%d", n), "8", f("%d", pct),
				f("%d", st.Reads), f("%d", st.Writes), f("%d+%d", n, n)})
		}
	}
	return t
}

// E3 measures Theorem 4: sparse tight compaction I/O scaling and success
// rate at r = n/log²n-style sparsity.
func E3() *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Sparse tight compaction (Theorem 4: O(n + r·log²r), success 1-1/r^c)",
		Headers: []string{"n (blocks)", "r (cap)", "I/O", "I/O per block", "trials", "success %"},
	}
	r := rand.New(rand.NewPCG(1, 1))
	for _, n := range []int{128, 512, 2048} {
		rCap := n / 16
		const trials = 25
		okCount := 0
		var lastIO int64
		for tr := 0; tr < trials; tr++ {
			env := newEnv(8*n, 8, 1<<18, uint64(n+tr))
			a := env.D.Alloc(n)
			buildOccupiedCells(a, r.Perm(n)[:rCap])
			env.D.ResetStats()
			_, _, err := core.CompactBlocksSparse(env, a, rCap, core.SparseParams{})
			lastIO = env.D.Stats().Total()
			if err == nil {
				okCount++
			}
		}
		t.Rows = append(t.Rows, []string{f("%d", n), f("%d", rCap), f("%d", lastIO),
			f("%.1f", float64(lastIO)/float64(n)), f("%d", trials), f("%.0f", 100*float64(okCount)/trials)})
	}
	t.Notes = append(t.Notes, "I/O per block should be flat (linear total): the k=4 cell touches dominate at 1 + 4k·2 ≈ 33 I/Os per input block plus table init and the order-restoring sort of the r-block output.")
	return t
}

// buildOccupiedCells writes full occupied blocks at the listed cells.
func buildOccupiedCells(a extmem.Array, occ []int) {
	b := a.B()
	isOcc := map[int]bool{}
	for _, j := range occ {
		isOcc[j] = true
	}
	buf := make([]extmem.Element, b)
	for j := 0; j < a.Len(); j++ {
		for t := 0; t < b; t++ {
			if isOcc[j] {
				buf[t] = extmem.Element{Key: uint64(j*1000 + t), Pos: uint64(j*b + t), Flags: extmem.FlagOccupied}
			} else {
				buf[t] = extmem.Element{}
			}
		}
		a.Write(j, buf)
	}
}

// E4 sweeps butterfly compaction over n and M/B, comparing the naive
// per-level network against the windowed variant (the ablation pair), and
// checking measured I/O against the closed-form pass count.
func E4() *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Butterfly tight compaction (Theorem 6: O((N/B)·log_{M/B}(N/B)) I/Os)",
		Headers: []string{"n (blocks)", "m=M/B", "naive I/O", "windowed I/O", "speedup", "predicted windowed"},
	}
	r := rand.New(rand.NewPCG(2, 2))
	for _, n := range []int{256, 1024, 4096} {
		for _, m := range []int{8, 32, 128} {
			run := func(lpp int) int64 {
				env := newEnv(2*n+16, 4, m*4, uint64(n))
				a := env.D.Alloc(n)
				buildOccupiedCells(a, r.Perm(n)[:n/3])
				env.D.ResetStats()
				core.CompactBlocksTight(env, a, core.PredOccupied, lpp)
				return env.D.Stats().Total()
			}
			naive, win := run(1), run(0)
			pred := int64(core.ButterflyPassCount(n, 0, m)) * int64(2*n)
			t.Rows = append(t.Rows, []string{f("%d", n), f("%d", m), f("%d", naive), f("%d", win),
				ratio(float64(naive), float64(win)), f("%d", pred)})
		}
	}
	t.Notes = append(t.Notes, "Windowed grouping divides the level count by ~log2(m/4); measured I/O must equal the predicted pass count exactly (deterministic network).")
	return t
}

// Fig1 reproduces the paper's Figure 1: the 7-occupied-cell butterfly
// instance with distance labels 2,3,3,6,8,8,9, rendered level by level.
func Fig1() *Table {
	t := &Table{
		ID:      "FIG1",
		Title:   "Figure 1 — butterfly-like compaction network, paper's example instance",
		Headers: []string{"level", "cells (occupied cells show remaining leftward distance)"},
	}
	labels := []int{2, 3, 3, 6, 8, 8, 9}
	n := 16
	// Occupied positions: rank k sits at position k + label(k).
	occ := map[int]int{} // position -> dest(rank)
	for k, d := range labels {
		occ[k+d] = k
	}
	render := func(pos map[int]int) string {
		var cells []string
		for j := 0; j < n; j++ {
			if dest, is := pos[j]; is {
				cells = append(cells, f("%d", j-dest))
			} else {
				cells = append(cells, "·")
			}
		}
		return "`" + joinCells(cells) + "`"
	}
	pos := occ
	t.Rows = append(t.Rows, []string{"L0", render(pos)})
	levels := 4 // ceil(log2 16)
	for i := 0; i < levels; i++ {
		next := map[int]int{}
		for j, dest := range pos {
			d := j - dest
			move := d % (1 << (i + 1))
			next[j-move] = dest
		}
		pos = next
		t.Rows = append(t.Rows, []string{f("L%d", i+1), render(pos)})
	}
	t.Notes = append(t.Notes,
		"Matches the paper's figure: labels 2,3,3,6,8,8,9 route left without collisions (Lemma 5); the implementation asserts collision-freeness at runtime on every instance.")
	return t
}

func joinCells(cells []string) string {
	out := ""
	for i, c := range cells {
		if i > 0 {
			out += " "
		}
		out += c
	}
	return out
}

// E5 measures Theorem 8: loose compaction uses O(N/B) I/Os — flat per-block
// cost across n — and compares against tight alternatives.
func E5() *Table {
	t := &Table{
		ID:      "E5",
		Title:   "Loose compaction (Theorem 8: O(N/B) I/Os into 5R cells)",
		Headers: []string{"n (blocks)", "R", "loose I/O", "per block", "butterfly(tight) I/O", "loose/butterfly"},
	}
	r := rand.New(rand.NewPCG(3, 3))
	for _, n := range []int{512, 2048, 8192} {
		occ := r.Perm(n)[:n/8]
		env := newEnv(16*n, 8, 1024, uint64(n))
		a := env.D.Alloc(n)
		buildOccupiedCells(a, occ)
		env.D.ResetStats()
		if _, _, err := core.CompactBlocksLoose(env, a, n/4, core.LooseParams{}); err != nil {
			panic(err)
		}
		loose := env.D.Stats().Total()

		env2 := newEnv(16*n, 8, 1024, uint64(n))
		a2 := env2.D.Alloc(n)
		buildOccupiedCells(a2, occ)
		env2.D.ResetStats()
		core.CompactBlocksTight(env2, a2, core.PredOccupied, 0)
		tight := env2.D.Stats().Total()

		t.Rows = append(t.Rows, []string{f("%d", n), f("%d", n/8), f("%d", loose),
			f("%.1f", float64(loose)/float64(n)), f("%d", tight), ratio(float64(loose), float64(tight))})
	}
	t.Notes = append(t.Notes, "Loose per-block cost is flat (linear); the butterfly's grows with log(n)/log(m), so the loose/butterfly ratio falls as n grows — the trade the paper's sorting algorithm exploits.")
	return t
}

// E6 measures Theorem 9: near-linear I/O with the log* phase structure.
func E6() *Table {
	t := &Table{
		ID:      "E6",
		Title:   "log*-round loose compaction (Theorem 9: O((N/B)·log*(N/B)) I/Os into 4.25R cells)",
		Headers: []string{"n (blocks)", "c0", "phases", "I/O", "per block"},
	}
	r := rand.New(rand.NewPCG(4, 4))
	for _, n := range []int{512, 2048, 8192} {
		for _, c0 := range []int{8, 23} { // default vs the paper's proof constant
			env := newEnv(32*n, 8, 2048, uint64(n))
			a := env.D.Alloc(n)
			buildOccupiedCells(a, r.Perm(n)[:n/8])
			env.D.ResetStats()
			_, _, phases, err := core.CompactBlocksLogStar(env, a, n/4, core.LogStarParams{C0: c0})
			if err != nil {
				panic(err)
			}
			io := env.D.Stats().Total()
			t.Rows = append(t.Rows, []string{f("%d", n), f("%d", c0), f("%d", phases),
				f("%d", io), f("%.1f", float64(io)/float64(n))})
		}
	}
	t.Notes = append(t.Notes, "The tower-of-twos collapses at practical scale (phases = 0 for n ≤ 2^32), so cost is c0·4 thinning I/Os per block plus the final compaction — the log* behaviour. The paper's c0 = 23 roughly triples the constant, as predicted.")
	return t
}

// E12 measures Lemma 7's engine: survivor counts decay geometrically with
// thinning passes (expectation factor <= 1/4 per pass).
func E12() *Table {
	t := &Table{
		ID:      "E12",
		Title:   "Thinning-pass survivor decay (Lemma 7 / Lemma 24: ≤ 1/4 per pass in expectation)",
		Headers: []string{"pass", "survivors (of 256)", "fraction of previous"},
	}
	env := newEnv(1<<14, 4, 256, 21)
	n, rCap := 1024, 256
	a := env.D.Alloc(n)
	r := rand.New(rand.NewPCG(8, 8))
	buildOccupiedCells(a, r.Perm(n)[:rCap])
	c := env.D.Alloc(4 * rCap)
	zero := make([]extmem.Element, 4)
	for i := 0; i < c.Len(); i++ {
		c.Write(i, zero)
	}
	prev := rCap
	for pass := 1; pass <= 6; pass++ {
		core.ThinningPassForTest(env, a, c)
		surv := 0
		buf := make([]extmem.Element, 4)
		for i := 0; i < n; i++ {
			a.Read(i, buf)
			if core.PredOccupied(buf) {
				surv++
			}
		}
		t.Rows = append(t.Rows, []string{f("%d", pass), f("%d", surv), ratio(float64(surv), float64(prev))})
		prev = surv
		if surv == 0 {
			break
		}
	}
	return t
}
