package bench

import (
	"time"

	"oblivext/internal/core"
	"oblivext/internal/extmem"
	"oblivext/internal/obsort"
	"oblivext/internal/trace"
)

// E14 measures the vectored-I/O refactor: the same algorithms, same seeds,
// same geometry, run once with MaxBatch=1 (one round trip per block — the
// scalar baseline every pre-batching revision effectively was) and once
// with unlimited batching, comparing round trips and asserting the traces
// are bit-identical. The headline row is the acceptance target: randomized
// Sort at N=2^16, B=8, default cache, ≥4× fewer round trips.
func E14() *Table {
	t := &Table{
		ID:    "E14",
		Title: "Vectored block I/O (round trips: scalar vs batched, identical traces)",
		Headers: []string{"algorithm", "N (elems)", "block I/O", "RT scalar", "RT batched",
			"RT reduction", "trace equal?", "modeled time @20ms RTT: scalar vs batched"},
	}

	type probe struct {
		name    string
		nBlocks int
		b, m    int
		run     func(env *extmem.Env, a extmem.Array)
	}
	probes := []probe{
		{"randomized sort (Thm 21)", 8192, 8, 64, func(env *extmem.Env, a extmem.Array) {
			if err := core.Sort(env, a, core.SortParams{}); err != nil {
				panic(err)
			}
		}},
		{"bitonic sort (Lemma 2)", 8192, 8, 64, func(env *extmem.Env, a extmem.Array) {
			obsort.Bitonic(env, a, obsort.ByKey)
		}},
		{"selection (Thm 13)", 8192, 8, 64, func(env *extmem.Env, a extmem.Array) {
			if _, err := core.Select(env, a, int64(8192*8/2)); err != nil {
				panic(err)
			}
		}},
		{"tight compaction (Thm 6)", 8192, 8, 64, func(env *extmem.Env, a extmem.Array) {
			core.CompactBlocksTight(env, a, core.PredOccupied, 0)
		}},
	}

	const rtt = 20 * time.Millisecond
	for _, p := range probes {
		n := p.nBlocks * p.b
		run := func(maxBatch int) (extmem.Stats, trace.Summary) {
			env := newEnv(16*p.nBlocks, p.b, p.m*p.b, uint64(n))
			env.D.SetMaxBatch(maxBatch)
			rec := trace.NewRecorder(0)
			env.D.SetRecorder(rec)
			a := fillUniform(env, p.nBlocks, n, uint64(n))
			env.D.ResetStats()
			p.run(env, a)
			return env.D.Stats(), rec.Summarize()
		}
		scalar, strace := run(1)
		batched, btrace := run(0)
		eq := "yes"
		if !strace.Equal(btrace) {
			eq = "NO"
		}
		t.Rows = append(t.Rows, []string{p.name, f("%d", n), f("%d", batched.Total()),
			f("%d", scalar.RoundTrips), f("%d", batched.RoundTrips),
			f("%.1fx", float64(scalar.RoundTrips)/float64(batched.RoundTrips)), eq,
			f("%v vs %v", time.Duration(scalar.RoundTrips)*rtt, time.Duration(batched.RoundTrips)*rtt)})
	}
	t.Notes = append(t.Notes,
		"Round trips are what a remote Bob charges for: every vectored store call is one interaction regardless of how many blocks it moves (LatencyStore models this as RTT + perBlock·blocks). The scalar column pins RT = Reads+Writes; the batched column shows the win from moving up to M/B−O(1) blocks per interaction.",
		"Trace equality is the safety claim: batching changes how the requests are grouped, never which (kind, address) sequence Bob observes, so the obliviousness guarantees carry over verbatim.")
	return t
}
