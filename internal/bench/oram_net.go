package bench

import (
	"net/http/httptest"
	"time"

	"oblivext/internal/extmem"
	"oblivext/internal/extmem/netstore"
	"oblivext/internal/extmem/shard"
	"oblivext/internal/obsort"
	"oblivext/internal/oram"
	"oblivext/internal/trace"
)

// E17 measures the batched ORAM access path against a real HTTP obstore
// server: the same seeded workload is run with per-block round trips
// (MaxBatch=1, the wire grouping of the pre-batching scalar path: 2·beta·L
// requests per access, scalar rebuilds) and with vectored grouping (one
// request per probed bucket plus one grouped write-back: ≤ L+1 requests per
// access, run-I/O rebuilds). Both round trips and wall clock are measured
// on the wire, not modeled. A second set of runs pins the security
// invariant the batching must preserve: the same workload produces a
// bit-identical per-block trace on MemStore, a 4-way sharded store, and the
// HTTP backend, and a second workload with a disjoint key set produces a
// trace of identical length and round-trip count (bucket indices are the
// construction's fresh PRF draws; the full normalized-shape check lives in
// the oram and integration test suites).
func E17() *Table {
	const (
		n     = 64 // logical ORAM blocks
		b     = 8
		cache = 512
		seed  = 21
		ops   = 24 // crosses one rebuild boundary (top buffer holds 16)
	)
	t := &Table{
		ID:    "E17",
		Title: "Batched ORAM accesses over a real HTTP obstore server (n=64, B=8)",
		Headers: []string{"wire grouping", "requests", "req/access", "worst probe req (L+1 bound)",
			"measured net wait", "wall time", "blocks moved"},
		Metrics: map[string]float64{},
	}

	// workload drives o with the seeded mixed stream; keyBase shifts the key
	// set (disjoint ranges for the indistinguishability rows).
	workload := func(d *extmem.Disk, o *oram.ORAM, keyBase int) (probeWorst, boundWorst int) {
		for i := 0; i < ops; i++ {
			before := o.Rebuilds().Count
			rts0 := d.Stats().RoundTrips
			live := o.LiveLevels()
			var err error
			switch i % 3 {
			case 0:
				_, err = o.Read(keyBase + (i*5)%(n/2))
			case 1:
				err = o.Write(keyBase+(i*3)%(n/2), make([]uint64, b))
			default:
				err = o.Dummy()
			}
			if err != nil {
				panic(err)
			}
			if o.Rebuilds().Count == before {
				if delta := int(d.Stats().RoundTrips - rts0); delta > probeWorst {
					probeWorst = delta
					boundWorst = live + 1
				}
			}
		}
		return
	}

	type measured struct {
		requests   int64
		blocks     int64
		probeWorst int
		boundWorst int
		netWait    time.Duration
		wall       time.Duration
		traceSum   trace.Summary
	}
	runHTTP := func(scalar bool) measured {
		srv := netstore.NewServer(extmem.NewMemStore(4096, b), netstore.ServerOptions{})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		c, err := netstore.Dial(ts.URL, netstore.Options{})
		if err != nil {
			panic(err)
		}
		defer c.Close()
		env := extmem.NewEnvOn(c, cache, seed)
		env.Workers = defaultWorkers
		rec := trace.NewRecorder(0)
		env.D.SetRecorder(rec)
		o, err := oram.New(env, n, oram.Options{Sorter: obsort.BitonicSorter})
		if err != nil {
			panic(err)
		}
		// The grouping under test applies to the whole measured phase —
		// accesses and the rebuilds they amortize. (The initial build runs
		// vectored in both configurations; it is setup, not measurement.)
		if scalar {
			env.D.SetMaxBatch(1)
		}
		rec.Enable(0)
		env.D.ResetStats()
		c.ResetNetStats()
		start := time.Now()
		probeWorst, boundWorst := workload(env.D, o, 0)
		wall := time.Since(start)
		ns := c.NetStats()
		return measured{
			requests: ns.Requests, blocks: ns.BlocksMoved,
			probeWorst: probeWorst, boundWorst: boundWorst,
			netWait: ns.Total, wall: wall, traceSum: rec.Summarize(),
		}
	}

	scalar := runHTTP(true)
	batched := runHTTP(false)

	row := func(label string, m measured, bounded bool) {
		bound := "-"
		switch {
		case m.probeWorst > 0 && bounded:
			bound = f("%d (<= %d)", m.probeWorst, m.boundWorst)
		case m.probeWorst > 0:
			bound = f("%d (2·beta·L)", m.probeWorst)
		}
		t.Rows = append(t.Rows, []string{label, f("%d", m.requests),
			f("%.1f", float64(m.requests)/ops), bound,
			f("%v", m.netWait.Round(time.Millisecond)),
			f("%v", m.wall.Round(time.Millisecond)), f("%d", m.blocks)})
	}
	row("per-block (scalar baseline)", scalar, false)
	row("vectored (batched accesses)", batched, true)

	// Security rows: the same workload's logical trace on three backends,
	// plus a disjoint-key workload on the HTTP backend.
	type traceRun struct {
		label    string
		sum      trace.Summary
		requests int64
	}
	var traceRuns []traceRun
	runTrace := func(label string, store extmem.BlockStore, keyBase int, cleanup func()) {
		if cleanup != nil {
			defer cleanup()
		}
		env := extmem.NewEnvOn(store, cache, seed)
		env.Workers = defaultWorkers
		rec := trace.NewRecorder(0)
		env.D.SetRecorder(rec)
		o, err := oram.New(env, n, oram.Options{Sorter: obsort.BitonicSorter})
		if err != nil {
			panic(err)
		}
		rec.Enable(0)
		env.D.ResetStats()
		workload(env.D, o, keyBase)
		traceRuns = append(traceRuns, traceRun{label, rec.Summarize(), env.D.Stats().RoundTrips})
	}
	runTrace("mem", extmem.NewMemStore(4096, b), 0, nil)
	children := make([]extmem.BlockStore, 4)
	for i := range children {
		children[i] = extmem.NewMemStore(1024, b)
	}
	sh, err := shard.New(children)
	if err != nil {
		panic(err)
	}
	runTrace("sharded-4", sh, 0, nil)
	{
		srv := netstore.NewServer(extmem.NewMemStore(4096, b), netstore.ServerOptions{})
		ts := httptest.NewServer(srv.Handler())
		c, err := netstore.Dial(ts.URL, netstore.Options{})
		if err != nil {
			panic(err)
		}
		runTrace("http", c, 0, func() { c.Close(); ts.Close() })
	}
	{
		srv := netstore.NewServer(extmem.NewMemStore(4096, b), netstore.ServerOptions{})
		ts := httptest.NewServer(srv.Handler())
		c, err := netstore.Dial(ts.URL, netstore.Options{})
		if err != nil {
			panic(err)
		}
		runTrace("http, disjoint keys", c, n/2, func() { c.Close(); ts.Close() })
	}
	same := traceRuns[0]
	tracesOK := "yes"
	for _, r := range traceRuns[1:3] {
		if !r.sum.Equal(same.sum) {
			tracesOK = "NO"
		}
	}
	// The two perf runs must also agree with each other and with the mem
	// reference: regrouping round trips never changes the per-block trace.
	if !scalar.traceSum.Equal(batched.traceSum) || !batched.traceSum.Equal(same.sum) {
		tracesOK = "NO"
	}
	disjoint := traceRuns[3]
	lenOK := "yes"
	if disjoint.sum.Len != same.sum.Len || disjoint.requests != traceRuns[2].requests {
		lenOK = "NO"
	}

	reduction := float64(scalar.requests) / float64(batched.requests)
	t.Notes = append(t.Notes,
		f("Round-trip reduction: %.1fx fewer wire requests for the identical %d-access workload (rebuilds included). Per plain access the bound is L+1 vectored requests — one per probed level plus the single grouped write-back — versus 2·beta·L per-block ones.", reduction, ops),
		f("Trace bit-identical across mem / sharded-4 / http backends for the same workload: %s. Disjoint-key workload of the same length: trace length and request count identical: %s (bucket indices are fresh PRF draws — the distributional part of the guarantee; the normalized-shape equality is pinned by TestAccessSequenceIndistinguishability and the integration suite).", tracesOK, lenOK),
		"Wall times are loopback HTTP (httptest); against a WAN Bob multiply by the RTT ratio — the request count is the portable number.")

	t.Metrics["ops"] = ops
	t.Metrics["scalar_requests"] = float64(scalar.requests)
	t.Metrics["batched_requests"] = float64(batched.requests)
	t.Metrics["scalar_req_per_access"] = float64(scalar.requests) / ops
	t.Metrics["batched_req_per_access"] = float64(batched.requests) / ops
	t.Metrics["rt_reduction"] = reduction
	t.Metrics["batched_probe_req_worst"] = float64(batched.probeWorst)
	t.Metrics["probe_bound_L_plus_1"] = float64(batched.boundWorst)
	t.Metrics["scalar_net_wait_ms"] = float64(scalar.netWait.Milliseconds())
	t.Metrics["batched_net_wait_ms"] = float64(batched.netWait.Milliseconds())
	t.Metrics["scalar_wall_ms"] = float64(scalar.wall.Milliseconds())
	t.Metrics["batched_wall_ms"] = float64(batched.wall.Milliseconds())
	t.Metrics["traces_identical"] = boolMetric(tracesOK == "yes" && lenOK == "yes")
	return t
}

func boolMetric(ok bool) float64 {
	if ok {
		return 1
	}
	return 0
}
