// Package bench is the experiment harness: one generator per experiment in
// DESIGN.md's index (E1–E23 plus the Figure 1 rendering), each producing
// the markdown table recorded in EXPERIMENTS.md. cmd/obench runs them.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"oblivext/internal/extmem"
	"oblivext/internal/workload"
)

// Table is one experiment's output: a title, column headers, and rows.
// Metrics optionally carries machine-readable key figures (obench -json
// serializes them so CI can track the perf trajectory across PRs).
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
	Metrics map[string]float64 `json:",omitempty"`
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		b.WriteString("\n> " + n + "\n")
	}
	return b.String()
}

// Experiment is a runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func() *Table
}

// All returns every experiment in report order.
func All() []Experiment {
	return []Experiment{
		{"E1", "IBLT listEntries success rate (Lemma 1)", E1},
		{"E2", "Consolidation exact I/O (Lemma 3)", E2},
		{"E3", "Sparse tight compaction (Theorem 4)", E3},
		{"E4", "Butterfly compaction sweep + ablation (Theorem 6)", E4},
		{"FIG1", "Figure 1 routing example", Fig1},
		{"E5", "Loose compaction linear I/O (Theorem 8)", E5},
		{"E6", "log*-round loose compaction (Theorem 9)", E6},
		{"E7", "Selection vs baselines (Theorems 12/13)", E7},
		{"E8", "Quantiles (Theorem 17)", E8},
		{"E9", "Sorting: randomized vs deterministic vs non-oblivious (Theorem 21)", E9},
		{"E10", "ORAM amortized overhead by rebuild sort (§1 headline)", E10},
		{"E11", "Shuffle-and-deal overflow vs c (Lemma 18/Cor 19)", E11},
		{"E12", "Thinning-pass survivor decay (Lemma 7)", E12},
		{"E13", "Input-invariance of oblivious traces (E13)", E13},
		{"E14", "Vectored block I/O: round trips scalar vs batched", E14},
		{"E15", "Sharded multi-backend store: parallel fan-out speedup", E15},
		{"E16", "Real HTTP backend: measured cost and server-audited trace", E16},
		{"E17", "Batched ORAM accesses: measured round trips over a real server", E17},
		{"E18", "Client-side encryption overhead: sealed vs plaintext backends", E18},
		{"E19", "Sorter engines head-to-head: randomized vs bitonic vs zigzag vs bucket", E19},
		{"E20", "Observability overhead: phase spans off vs on", E20},
		{"E21", "Parallel compute scaling: Config.Workers speedup, trace-invariant", E21},
		{"E22", "Replicated fleet: hedged-read latency and replica-kill recovery", E22},
		{"E23", "Service mode under load: throughput and latency vs concurrent sessions", E23},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// defaultWorkers is the Env.Workers / Config.Workers value every
// measurement environment uses (obench -workers). E21 ignores it — that
// experiment IS the worker sweep and sets the count per row.
var defaultWorkers = 1

// SetWorkers sets the worker count applied to every experiment
// environment; 0 or 1 means serial.
func SetWorkers(w int) { defaultWorkers = w }

// newEnv builds a measurement environment (span-collected when obench
// -trace-out enabled capture).
func newEnv(blocks, b, m int, seed uint64) *extmem.Env {
	env := captureEnv(extmem.NewEnv(blocks, b, m, seed))
	env.Workers = defaultWorkers
	return env
}

// fillUniform loads nKeys uniform keys into a fresh array.
func fillUniform(env *extmem.Env, blocks, nKeys int, seed uint64) extmem.Array {
	a := env.D.Alloc(blocks)
	keys, err := workload.Keys(workload.Uniform, nKeys, seed)
	if err != nil {
		panic(err)
	}
	if err := workload.Fill(a, keys); err != nil {
		panic(err)
	}
	return a
}

func f(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// ratio formats a/b with two decimals, or "-" when b is zero.
func ratio(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return f("%.2f", a/b)
}

// median returns the middle value of a sample.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
