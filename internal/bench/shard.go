package bench

import (
	"time"

	"oblivext"
)

// E15 measures the sharded fan-out: the same Sort and Select, same seed,
// same geometry, run against K ∈ {1,2,4,8} simulated remote backends with a
// per-shard latency model (RTT + per-block bandwidth charge). The modeled
// network time under sharding is the critical path — per interaction, the
// slowest shard's delay, since the K sub-batches travel in parallel — so it
// shrinks toward RTT·interactions as K grows while the serial sum stays
// put. The headline row is the acceptance target: Sort at N=2^16 with K=4
// in ≤ half the K=1 modeled time, with a bit-identical logical trace.
func E15() *Table {
	const (
		nBlocks  = 8192 // × B=8 elements = 2^16
		b        = 8
		cache    = 512 // M = 64 blocks
		rtt      = 10 * time.Millisecond
		perBlock = 5 * time.Millisecond
		seed     = 42
	)
	t := &Table{
		ID:    "E15",
		Title: "Sharded multi-backend store: modeled time vs K parallel Bobs (N=2^16, B=8)",
		Headers: []string{"algorithm", "K", "round trips", "blocks moved", "critical-path time",
			"serial time", "speedup vs K=1", "max shard skew", "trace equal?"},
	}

	type probe struct {
		name string
		run  func(arr *oblivext.Array)
	}
	probes := []probe{
		{"randomized sort (Thm 21)", func(arr *oblivext.Array) {
			if err := arr.Sort(); err != nil {
				panic(err)
			}
		}},
		{"selection (Thm 13)", func(arr *oblivext.Array) {
			if _, err := arr.Select(nBlocks * b / 2); err != nil {
				panic(err)
			}
		}},
	}

	for _, p := range probes {
		var baseTime time.Duration
		var baseTrace oblivext.TraceSummary
		for _, k := range []int{1, 2, 4, 8} {
			c, err := oblivext.New(oblivext.Config{
				BlockSize: b, CacheWords: cache, Seed: seed, NumShards: k,
				StartBlocks: 4 * nBlocks, SimulatedRTT: rtt, SimulatedPerBlock: perBlock,
				Workers: defaultWorkers,
			})
			if err != nil {
				panic(err)
			}
			c.EnableTrace(0)
			arr, err := c.Store(mkRecordsUniform(nBlocks*b, seed))
			if err != nil {
				panic(err)
			}
			c.ResetStats()
			p.run(arr)
			st := c.Stats()
			crit, serial := c.ModeledNetworkTime(), c.SerialModeledNetworkTime()
			ts := c.TraceSummary()

			// Skew: the busiest shard's share of the blocks relative to a
			// perfect 1/K split (1.00 = perfectly balanced striping).
			skew := "-"
			if ss := c.ShardStats(); len(ss) > 0 {
				var maxBlocks int64
				for _, s := range ss {
					if s.BlocksMoved > maxBlocks {
						maxBlocks = s.BlocksMoved
					}
				}
				skew = f("%.2fx", float64(maxBlocks)*float64(k)/float64(st.Total()))
			}
			if k == 1 {
				baseTime, baseTrace = crit, ts
			}
			eq := "yes"
			if ts != baseTrace {
				eq = "NO"
			}
			t.Rows = append(t.Rows, []string{p.name, f("%d", k), f("%d", st.RoundTrips),
				f("%d", st.Total()), f("%v", crit.Round(time.Millisecond)),
				f("%v", serial.Round(time.Millisecond)), ratio(float64(baseTime), float64(crit)) + "x",
				skew, eq})
			c.Close()
		}
	}
	t.Notes = append(t.Notes,
		"The model charges each shard RTT + perBlock·(its sub-batch) per interaction; with the sub-batches in flight simultaneously the client waits for the slowest shard, so the critical path divides the bandwidth term by ~K. The serial column is what contacting the same K shards one after another would cost — it grows with K (every participating shard still pays its own RTT) and is the cost the parallel fan-out avoids. RTT is not divided — the critical path's floor as K→∞ is RTT·interactions, which is what the prefetching SeqReader then hides behind compute.",
		"Trace equality is against the K=1 run: sharding partitions the identical per-logical-address sequence across servers by addr mod K (each server sees only its residue class, re-numbered), so the adversary's per-server view is a projection of the same data-independent trace.",
		"Max shard skew is the busiest shard's block share normalized by 1/K: round-robin striping keeps the fan-out balanced, which is why the critical path tracks serial/K.")
	return t
}

// mkRecordsUniform builds n records with uniform keys for the public-API
// probes.
func mkRecordsUniform(n int, seed uint64) []oblivext.Record {
	recs := make([]oblivext.Record, n)
	s := seed*0x9e3779b97f4a7c15 + 1
	for i := range recs {
		// splitmix64, matching the repo's seeded-reproducibility style.
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		recs[i] = oblivext.Record{Key: z ^ (z >> 31), Val: uint64(i)}
	}
	return recs
}
