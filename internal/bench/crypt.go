package bench

import (
	"net/http/httptest"
	"time"

	"oblivext"
	"oblivext/internal/extmem"
	"oblivext/internal/extmem/netstore"
)

// E18 measures the cost of Alice-side encryption: the same Sort, same seed,
// same geometry, run unencrypted and with the CryptStore decorator sealing
// every block (fresh IV per write, HMAC per read) over both the in-memory
// and the real HTTP backend. The crypto-overhead line the IOStats
// BytesSealed/BytesOpened counters feed is reported alongside wall time,
// and the trace column re-checks the decorator's security contract: the
// logical trace must be bit-identical with encryption on and off.
func E18() *Table {
	const (
		n     = 1 << 13 // records
		b     = 8
		cache = 2048
		seed  = 77
	)
	t := &Table{
		ID:    "E18",
		Title: "Client-side encryption overhead: Sort (N=2^13, B=8), sealed vs plaintext",
		Headers: []string{"backend", "encrypted", "wall time", "block I/Os",
			"bytes sealed", "bytes opened", "wire expansion", "trace == plaintext mem?"},
		Metrics: map[string]float64{},
	}

	recs := make([]oblivext.Record, n)
	for i := range recs {
		recs[i] = oblivext.Record{Key: uint64(i*2654435761) % (1 << 30), Val: uint64(i)}
	}
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i*7 + 2)
	}

	type result struct {
		wall  time.Duration
		stats oblivext.IOStats
		sum   oblivext.TraceSummary
	}
	run := func(cfg oblivext.Config) result {
		cfg.Workers = defaultWorkers
		c, err := oblivext.New(cfg)
		if err != nil {
			panic(err)
		}
		defer c.Close()
		arr, err := c.Store(recs)
		if err != nil {
			panic(err)
		}
		c.EnableTrace(0)
		c.ResetStats()
		start := time.Now()
		if err := arr.Sort(); err != nil {
			panic(err)
		}
		wall := time.Since(start)
		got, err := arr.Records()
		if err != nil {
			panic(err)
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].Key > got[i].Key {
				panic("not sorted")
			}
		}
		return result{wall: wall, stats: c.Stats(), sum: c.TraceSummary()}
	}
	spinSealed := func() (string, func()) {
		srv := netstore.NewServer(
			extmem.NewMemStore(8192, extmem.CryptChildBlockSize(b)), netstore.ServerOptions{})
		ts := httptest.NewServer(srv.Handler())
		return ts.URL, ts.Close
	}

	base := oblivext.Config{BlockSize: b, CacheWords: cache, Seed: seed, StartBlocks: 8192}
	plainMem := run(base)

	encMemCfg := base
	encMemCfg.EncryptionKey = key
	encMem := run(encMemCfg)

	url, stop := spinSealed()
	encHTTPCfg := base
	encHTTPCfg.EncryptionKey = key
	encHTTPCfg.URL = url
	encHTTP := run(encHTTPCfg)
	stop()

	plainBytes := func(r result) float64 {
		return float64(r.stats.Total()) * float64(b) * float64(extmem.ElementBytes)
	}
	expansion := func(r result) string {
		if r.stats.BytesSealed == 0 {
			return "-"
		}
		return ratio(float64(r.stats.BytesSealed+r.stats.BytesOpened), plainBytes(r))
	}
	row := func(backend string, encrypted bool, r result) {
		enc := "no"
		if encrypted {
			enc = "yes"
		}
		tracesOK := "yes"
		if r.sum != plainMem.sum {
			tracesOK = "NO"
		}
		t.Rows = append(t.Rows, []string{backend, enc, f("%v", r.wall.Round(time.Millisecond)),
			f("%d", r.stats.Total()), f("%d", r.stats.BytesSealed), f("%d", r.stats.BytesOpened),
			expansion(r), tracesOK})
	}
	row("mem", false, plainMem)
	row("mem", true, encMem)
	row("http (obstore -b 10)", true, encHTTP)

	t.Notes = append(t.Notes,
		"Every sealed block carries a 16-byte IV and a 32-byte HMAC tag, so the wire/stored footprint approaches (B+2)/B = 1.25x the plaintext at B=8; the wire-expansion column measures it from the BytesSealed/BytesOpened counters (reads of never-written blocks cost no crypto, which is why it lands slightly below the ceiling).",
		f("CPU cost of sealing: mem Sort went %v -> %v; over real HTTP the crypto hides behind the wire (%v total).",
			plainMem.wall.Round(time.Millisecond), encMem.wall.Round(time.Millisecond), encHTTP.wall.Round(time.Millisecond)),
		"The trace column is the security contract: the CryptStore decorator changes the bytes Bob stores, never the (kind, address) sequence he observes.")

	t.Metrics["plain_mem_wall_ms"] = float64(plainMem.wall.Milliseconds())
	t.Metrics["enc_mem_wall_ms"] = float64(encMem.wall.Milliseconds())
	t.Metrics["enc_http_wall_ms"] = float64(encHTTP.wall.Milliseconds())
	t.Metrics["enc_mem_bytes_sealed"] = float64(encMem.stats.BytesSealed)
	t.Metrics["enc_mem_bytes_opened"] = float64(encMem.stats.BytesOpened)
	t.Metrics["enc_http_bytes_sealed"] = float64(encHTTP.stats.BytesSealed)
	t.Metrics["enc_http_bytes_opened"] = float64(encHTTP.stats.BytesOpened)
	t.Metrics["wire_expansion"] = (float64(encMem.stats.BytesSealed+encMem.stats.BytesOpened) /
		plainBytes(encMem))
	t.Metrics["traces_identical"] = boolMetric(encMem.sum == plainMem.sum && encHTTP.sum == plainMem.sum)
	return t
}
