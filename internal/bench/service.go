package bench

import (
	"fmt"
	"sync"
	"time"

	"oblivext"
	"oblivext/internal/kvservice"
)

// E23 measures the service mode under concurrent load: one kvservice fleet,
// N re-entrant sessions (one namespace each) issuing mixed Get/Put, at
// N = 1, 8, 64. Bob is modeled as remote (SimulatedRTT with real sleeps),
// so a single session spends almost all of its wall clock waiting on the
// wire; the aggregate throughput curve then shows what the multi-session
// service buys — independent sessions' network waits overlap, so fleet
// throughput scales with session count until the single CPU saturates,
// while each session's obliviousness contract (and its wire-requests-per-op
// cost) is untouched. Reported per row: aggregate throughput, the speedup
// over one session, service-side Get latency quantiles, and the
// per-session wire cost of one op — the last must NOT grow with N, since
// namespace isolation means contention may queue a session's requests but
// never add to or reorder them.
func E23() *Table {
	const (
		rtt        = 500 * time.Microsecond
		slots      = 32
		opsPerSess = 24
		warmups    = 2 // per-session ops before the clock starts (first pays ORAM build)
	)
	t := &Table{
		ID: "E23",
		Title: fmt.Sprintf("Service mode under load: aggregate throughput vs concurrent sessions (RTT=%v, %d ops/session)",
			rtt, opsPerSess),
		Headers: []string{"sessions", "ops", "wall", "agg ops/s", "speedup vs 1",
			"get P50", "get P95", "get P99", "wire req/op/session"},
		Metrics: map[string]float64{},
	}

	type row struct {
		sessions int
		ops      int
		wall     time.Duration
		stats    kvservice.Stats
		reqPerOp float64
	}
	run := func(sessions int) row {
		svc, err := kvservice.New(kvservice.Options{
			Base: oblivext.Config{
				BlockSize: 8, CacheWords: 512, Seed: 23,
				SimulatedRTT: rtt, SimulatedSleep: true,
			},
			Slots:       slots,
			MaxSessions: sessions,
		})
		if err != nil {
			panic(err)
		}
		defer svc.Close()

		nsOf := func(g int) string { return fmt.Sprintf("sess%02d", g) }
		drive := func(g, from, to int) {
			ns := nsOf(g)
			for i := from; i < to; i++ {
				slot := (g*5 + i*3) % slots
				var err error
				if i%2 == 0 {
					err = svc.Put(ns, slot, fmt.Sprintf("g%d-i%d", g, i))
				} else {
					_, err = svc.Get(ns, slot)
				}
				if err != nil {
					panic(err)
				}
			}
		}
		spawn := func(from, to int) {
			var wg sync.WaitGroup
			for g := 0; g < sessions; g++ {
				wg.Add(1)
				go func() { defer wg.Done(); drive(g, from, to) }()
			}
			wg.Wait()
		}

		// Warmup: every session built and touched before the clock starts, so
		// the timed window measures steady-state service, not ORAM builds.
		spawn(0, warmups)
		before := map[string]int64{}
		for _, s := range svc.StatsSnapshot().Sessions {
			before[s.Namespace] = s.WireRequests
		}

		start := time.Now()
		spawn(warmups, warmups+opsPerSess)
		wall := time.Since(start)

		// Per-session wire cost of the timed window. Sessions run the same
		// op mix, so their per-op costs should agree with each other too.
		st := svc.StatsSnapshot()
		var reqSum int64
		for _, s := range st.Sessions {
			reqSum += s.WireRequests - before[s.Namespace]
		}
		ops := sessions * opsPerSess
		return row{
			sessions: sessions,
			ops:      ops,
			wall:     wall,
			stats:    st,
			reqPerOp: float64(reqSum) / float64(ops),
		}
	}

	var base float64
	for _, sessions := range []int{1, 8, 64} {
		r := run(sessions)
		tput := float64(r.ops) / r.wall.Seconds()
		if sessions == 1 {
			base = tput
		}
		speedup := tput / base
		t.Rows = append(t.Rows, []string{
			f("%d", r.sessions), f("%d", r.ops), r.wall.Round(time.Millisecond).String(),
			f("%.0f", tput), f("%.2fx", speedup),
			f("%.2fms", r.stats.GetP50Ms), f("%.2fms", r.stats.GetP95Ms), f("%.2fms", r.stats.GetP99Ms),
			f("%.1f", r.reqPerOp),
		})
		t.Metrics[f("throughput_ops_per_s_%d_sessions", sessions)] = tput
		t.Metrics[f("speedup_%d_sessions", sessions)] = speedup
		t.Metrics[f("wire_req_per_op_%d_sessions", sessions)] = r.reqPerOp
		t.Metrics[f("get_p99_ms_%d_sessions", sessions)] = r.stats.GetP99Ms
	}
	t.Notes = append(t.Notes,
		"Bob's distance is modeled (Config.SimulatedRTT, real sleeps), so the scaling is latency hiding: "+
			"concurrent sessions overlap their wire waits, which is exactly what the namespaced obstore and "+
			"multiplexed transport make safe — each namespace's journal stays bit-identical to its solo run "+
			"(TestCrossSessionTrafficAnalysis).",
		"wire req/op/session is flat across the sweep: contention queues a session's requests but never adds to them, "+
			"so serving more tenants costs latency, not obliviousness.",
		"Latency quantiles are service-lifetime (coarse power-of-two buckets) and include each session's first-touch "+
			"ORAM build and periodic hierarchy rebuilds — the deterministic tail every ORAM-backed KV op stream carries.",
	)
	return t
}
