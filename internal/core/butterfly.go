package core

import (
	"oblivext/internal/extmem"
	"oblivext/internal/route"
)

// The butterfly routing network of Theorem 6 (Figure 1) lives in
// internal/route so the sorter engines can share it; these aliases keep
// core's historical surface intact for the algorithm pipeline and tests.

// BlockPred decides whether a block-cell counts as occupied for routing.
type BlockPred = route.BlockPred

// PredOccupied treats a cell as occupied if any element is occupied.
func PredOccupied(blk []extmem.Element) bool { return route.PredOccupied(blk) }

// PredFailed treats a cell as occupied if any element carries FlagFailed —
// the predicate used by the failure-sweeping step of Theorem 21.
func PredFailed(blk []extmem.Element) bool { return route.PredFailed(blk) }

// CompactBlocksTight performs Theorem 6's tight order-preserving compaction
// in place at block granularity; see route.CompactBlocksTight.
func CompactBlocksTight(env *extmem.Env, a extmem.Array, pred BlockPred, levelsPerPass int) int {
	return route.CompactBlocksTight(env, a, pred, levelsPerPass)
}

// ExpandBlocks reverses a tight compaction; see route.ExpandBlocks.
func ExpandBlocks(env *extmem.Env, a extmem.Array, pred BlockPred, levelsPerPass int) {
	route.ExpandBlocks(env, a, pred, levelsPerPass)
}

// ButterflyPassCount predicts the number of full read+write passes the
// routing makes: one labelling pass plus one per level group. E4 checks
// measured I/O against 2n times this.
func ButterflyPassCount(n, levelsPerPass, mBlocks int) int {
	return route.ButterflyPassCount(n, levelsPerPass, mBlocks)
}
