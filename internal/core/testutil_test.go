package core

import (
	"math/rand/v2"
	"testing"

	"oblivext/internal/extmem"
	"oblivext/internal/trace"
)

// newTestEnv builds an environment with the given geometry.
func newTestEnv(blocks, b, m int, seed uint64) *extmem.Env {
	return extmem.NewEnv(blocks, b, m, seed)
}

// writeElems lays the given elements into the array sequentially, padding
// with empty cells.
func writeElems(a extmem.Array, elems []extmem.Element) {
	b := a.B()
	buf := make([]extmem.Element, b)
	idx := 0
	for blk := 0; blk < a.Len(); blk++ {
		for t := 0; t < b; t++ {
			if idx < len(elems) {
				buf[t] = elems[idx]
				idx++
			} else {
				buf[t] = extmem.Element{}
			}
		}
		a.Write(blk, buf)
	}
	if idx != len(elems) {
		panic("writeElems: array too small")
	}
}

// readElems returns every element of the array in order.
func readElems(a extmem.Array) []extmem.Element {
	b := a.B()
	buf := make([]extmem.Element, b)
	out := make([]extmem.Element, 0, a.Len()*b)
	for blk := 0; blk < a.Len(); blk++ {
		a.Read(blk, buf)
		out = append(out, buf...)
	}
	return out
}

// occupiedKeys extracts the keys of occupied elements in order.
func occupiedKeys(elems []extmem.Element) []uint64 {
	var out []uint64
	for _, e := range elems {
		if e.Occupied() {
			out = append(out, e.Key)
		}
	}
	return out
}

// markedKeys extracts the keys of marked elements in order.
func markedKeys(elems []extmem.Element) []uint64 {
	var out []uint64
	for _, e := range elems {
		if e.Marked() {
			out = append(out, e.Key)
		}
	}
	return out
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameMultisetU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[uint64]int{}
	for _, k := range a {
		m[k]++
	}
	for _, k := range b {
		m[k]--
		if m[k] < 0 {
			return false
		}
	}
	return true
}

// randomMarkedInput builds n*b elements where each is occupied and a random
// subset of size exactly r is marked.
func randomMarkedInput(r *rand.Rand, total, marked int) []extmem.Element {
	elems := make([]extmem.Element, total)
	for i := range elems {
		elems[i] = extmem.Element{Key: uint64(i)*10 + 1, Val: uint64(i), Pos: uint64(i), Flags: extmem.FlagOccupied}
	}
	perm := r.Perm(total)
	for i := 0; i < marked; i++ {
		elems[perm[i]].Flags |= extmem.FlagMarked
	}
	return elems
}

// traceOf runs fn against a fresh env with a recorder attached and returns
// the trace summary.
func traceOf(t *testing.T, blocks, b, m int, seed uint64, fn func(env *extmem.Env)) trace.Summary {
	t.Helper()
	env := newTestEnv(blocks, b, m, seed)
	rec := trace.NewRecorder(0)
	env.D.SetRecorder(rec)
	fn(env)
	return rec.Summarize()
}
