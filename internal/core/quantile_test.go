package core

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"oblivext/internal/extmem"
	"oblivext/internal/trace"
)

func quantileRanks(total int64, q int) []int64 {
	out := make([]int64, q)
	for i := range out {
		out[i] = int64(math.Round(float64(i+1) * float64(total) / float64(q+1)))
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out
}

func TestQuantilesSmallSortPath(t *testing.T) {
	env := newTestEnv(64, 4, 512, 3)
	a := env.D.Alloc(8)
	keys := []uint64{9, 1, 8, 2, 7, 3, 6, 4, 5, 10, 12, 11}
	sorted := buildKeyArray(a, keys)
	got, err := Quantiles(env, a, 3)
	if err != nil {
		t.Fatal(err)
	}
	ranks := quantileRanks(int64(len(keys)), 3)
	for i, e := range got {
		if e.Key != sorted[ranks[i]-1] {
			t.Fatalf("quantile %d: got %d want %d", i, e.Key, sorted[ranks[i]-1])
		}
	}
}

func TestQuantilesSamplingPath(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 7))
	env := newTestEnv(1<<15, 8, 256, 5)
	nBlocks := 1024 // N = 8192 >> M
	a := env.D.Alloc(nBlocks)
	keys := make([]uint64, nBlocks*8)
	for i := range keys {
		keys[i] = r.Uint64() % (1 << 40)
	}
	sorted := buildKeyArray(a, keys)
	for _, q := range []int{1, 2, 4} {
		got, err := Quantiles(env, a, q)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		ranks := quantileRanks(int64(len(keys)), q)
		for i, e := range got {
			if e.Key != sorted[ranks[i]-1] {
				t.Fatalf("q=%d quantile %d: got %d want %d", q, i, e.Key, sorted[ranks[i]-1])
			}
		}
	}
}

func TestQuantilesDuplicateHeavy(t *testing.T) {
	env := newTestEnv(1<<14, 8, 256, 11)
	nBlocks := 512
	a := env.D.Alloc(nBlocks)
	keys := make([]uint64, nBlocks*8)
	for i := range keys {
		keys[i] = uint64(i % 5)
	}
	sorted := buildKeyArray(a, keys)
	got, err := Quantiles(env, a, 4)
	if err != nil {
		t.Fatal(err)
	}
	ranks := quantileRanks(int64(len(keys)), 4)
	for i, e := range got {
		if e.Key != sorted[ranks[i]-1] {
			t.Fatalf("quantile %d: got %d want %d", i, e.Key, sorted[ranks[i]-1])
		}
	}
}

func TestQuantilesValidation(t *testing.T) {
	env := newTestEnv(64, 4, 256, 5)
	a := env.D.Alloc(4)
	buildKeyArray(a, []uint64{1, 2, 3})
	if _, err := Quantiles(env, a, 0); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := Quantiles(env, a, 4); err == nil {
		t.Error("q > N accepted")
	}
	if _, err := Quantiles(env, a, 3); err != nil {
		t.Errorf("q = N rejected: %v", err)
	}
	// q beyond the private-memory budget must be rejected up front.
	tiny := newTestEnv(64, 4, 64, 5)
	at := tiny.D.Alloc(4)
	buildKeyArray(at, []uint64{1, 2, 3, 4, 5})
	if _, err := Quantiles(tiny, at, 3); err == nil {
		t.Error("q over memory budget accepted")
	}
}

func TestQuantilesOblivious(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 9))
	run := func(keys []uint64) trace.Summary {
		return traceOf(t, 1<<14, 8, 256, 77, func(env *extmem.Env) {
			a := env.D.Alloc(512)
			buildKeyArray(a, keys)
			Quantiles(env, a, 3)
		})
	}
	uniform := make([]uint64, 4096)
	for i := range uniform {
		uniform[i] = r.Uint64()
	}
	constant := make([]uint64, 4096)
	for i := range constant {
		constant[i] = 5
	}
	s1, s2 := run(uniform), run(constant)
	if !s1.Equal(s2) {
		t.Fatalf("quantile trace depends on data: %v vs %v", s1, s2)
	}
}

func TestQuantilesLinearIO(t *testing.T) {
	io := func(nBlocks int) float64 {
		env := newTestEnv(16*nBlocks, 8, 256, 13)
		a := env.D.Alloc(nBlocks)
		r := rand.New(rand.NewPCG(uint64(nBlocks), 3))
		keys := make([]uint64, nBlocks*8)
		for i := range keys {
			keys[i] = r.Uint64()
		}
		buildKeyArray(a, keys)
		env.D.ResetStats()
		if _, err := Quantiles(env, a, 2); err != nil {
			t.Fatal(err)
		}
		return float64(env.D.Stats().Total()) / float64(nBlocks)
	}
	small, large := io(512), io(4096)
	if large > small*2.1 {
		t.Fatalf("quantiles I/O per block grew from %.1f to %.1f", small, large)
	}
}

// TestQuantilesRankError measures the paper's accuracy claim: each returned
// value sits exactly at its target rank (the algorithm is exact, not
// approximate — Lemma 16 bounds the *failure* probability, not the error).
func TestQuantilesRankError(t *testing.T) {
	fails := 0
	const trials = 10
	for tr := 0; tr < trials; tr++ {
		env := newTestEnv(1<<14, 8, 256, uint64(tr+500))
		a := env.D.Alloc(512)
		r := rand.New(rand.NewPCG(uint64(tr), 17))
		keys := make([]uint64, 4096)
		for i := range keys {
			keys[i] = r.Uint64()
		}
		sorted := buildKeyArray(a, keys)
		got, err := Quantiles(env, a, 4)
		if err != nil {
			fails++
			continue
		}
		ranks := quantileRanks(4096, 4)
		for i, e := range got {
			want := sorted[ranks[i]-1]
			if e.Key != want {
				// Exact-rank check; any deviation is a correctness bug.
				idx := sort.Search(len(sorted), func(j int) bool { return sorted[j] >= e.Key })
				t.Fatalf("trial %d quantile %d: got key at sorted index %d, want rank %d", tr, i, idx, ranks[i]-1)
			}
		}
	}
	if fails > 2 {
		t.Fatalf("quantiles failed %d/%d trials", fails, trials)
	}
}
