package core

import (
	"oblivext/internal/extmem"
	"oblivext/internal/obsort"
)

// ShuffleBlocksForTest exposes the block-level Fisher–Yates shuffle for the
// E11 experiment and external tests.
func ShuffleBlocksForTest(env *extmem.Env, a extmem.Array) { shuffleBlocks(env, a) }

// DealForTest exposes the deal step for the E11 experiment; it reports
// whether the deal completed without a Corollary 19 overflow.
func DealForTest(env *extmem.Env, a extmem.Array, colors, batch, quota int) bool {
	_, ok := deal(env, a, colors, batch, quota)
	return ok
}

// consolidateColors is §5's (q+1)-way data consolidation: scan the array in
// groups of `colors` blocks, keep per-color staging lists in the cache, and
// emit exactly `colors` blocks per group — as many monochromatic full
// blocks as available (up to the group quota), padded with empty blocks —
// plus a fixed 2·colors-block flush of the partial remainders. Every block
// of the output is monochromatic; all but the flush blocks are full. The
// trace is a strict left-to-right read/write sequence.
func consolidateColors(env *extmem.Env, a extmem.Array, colors int) extmem.Array {
	n := a.Len()
	b := a.B()
	groups := extmem.CeilDiv(n, colors)
	out := env.D.Alloc(groups*colors + 2*colors)

	// Staging: held elements never exceed colors*(2B-1) by the group
	// accounting invariant (see package tests), plus the vectored chunk
	// buffers sized from what cache remains.
	env.Cache.Acquire(colors * (2*b - 1))
	hold := make([][]extmem.Element, colors+1) // 1-based colors
	k := env.ScanBatchN(2, out.Len())
	kg := min(k, colors)
	in := env.Cache.Buf(kg * b)
	wbuf := env.Cache.Buf(k * b)
	// Emitting is pure compute over the staging lists, so with Prefetch the
	// double-buffered writer's flushes overlap it; the per-block write
	// sequence is identical either way.
	wr := extmem.NewSeqWriterPipelined(out, 0, wbuf, env.Prefetch)

	emit := func(quota int) {
		emitted := 0
		for c := 1; c <= colors && emitted < quota; c++ {
			for len(hold[c]) >= b && emitted < quota {
				copy(wr.Next(), hold[c][:b])
				hold[c] = hold[c][b:]
				emitted++
			}
		}
		for ; emitted < quota; emitted++ {
			blk := wr.Next()
			for t := range blk {
				blk[t] = extmem.Element{}
			}
		}
	}

	for g := 0; g < groups; g++ {
		lo := g * colors
		hi := lo + colors
		if hi > n {
			hi = n
		}
		for clo := lo; clo < hi; clo += kg {
			chi := min(clo+kg, hi)
			wr.Join() // a flush may be in flight; the writer owns the disk until joined
			a.ReadRange(clo, chi, in[:(chi-clo)*b])
			for i := clo; i < chi; i++ {
				for _, e := range in[(i-clo)*b : (i-clo+1)*b] {
					if e.Occupied() {
						hold[e.Color()] = append(hold[e.Color()], e)
					}
				}
			}
		}
		emit(colors)
	}
	// Flush: partial blocks, padded to exactly 2·colors outputs.
	flushed := 0
	for c := 1; c <= colors; c++ {
		for len(hold[c]) > 0 && flushed < 2*colors {
			take := len(hold[c])
			if take > b {
				take = b
			}
			blk := wr.Next()
			for t := 0; t < b; t++ {
				if t < take {
					blk[t] = hold[c][t]
				} else {
					blk[t] = extmem.Element{}
				}
			}
			hold[c] = hold[c][take:]
			flushed++
		}
	}
	for ; flushed < 2*colors; flushed++ {
		blk := wr.Next()
		for t := range blk {
			blk[t] = extmem.Element{}
		}
	}
	wr.Flush()
	env.Cache.Free(wbuf)
	env.Cache.Free(in)
	env.Cache.Release(colors * (2*b - 1))
	return out
}

// deal distributes the shuffled monochromatic blocks into one array per
// color: each batch of `batch` blocks is read into the cache and exactly
// `quota` blocks are written to every color array (full blocks first,
// empties after). A batch holding more than quota full blocks of one color
// is the Corollary 19 overflow event: the excess is dropped and dealOK
// returns false, with the trace unchanged.
func deal(env *extmem.Env, a extmem.Array, colors, batch, quota int) ([]extmem.Array, bool) {
	n := a.Len()
	b := a.B()
	batches := extmem.CeilDiv(n, batch)
	out := make([]extmem.Array, colors)
	for c := range out {
		out[c] = env.D.Alloc(batches * quota)
	}

	buf := env.Cache.Buf(batch * b)
	wbuf := env.Cache.Buf(env.ScanBatchN(1, quota) * b)
	// The color arrays are independent targets fed from the in-cache batch
	// buffer, so one pipelined writer retargeted color by color overlaps
	// color c's flush with color c+1's compute (async when Prefetch; the
	// flush boundaries — and so the per-block trace — are mode-independent).
	wr := extmem.NewSeqWriterPipelined(out[0], 0, wbuf, env.Prefetch)
	ok := true
	for g := 0; g < batches; g++ {
		lo := g * batch
		hi := lo + batch
		if hi > n {
			hi = n
		}
		cnt := hi - lo
		wr.Join() // the previous batch's last flush may still be in flight
		a.ReadRange(lo, hi, buf[:cnt*b])
		// Index the batch's full blocks by color (private).
		perColor := make([][]int, colors+1)
		for i := 0; i < cnt; i++ {
			cell := buf[i*b : (i+1)*b]
			if cell[0].Occupied() {
				c := cell[0].Color()
				perColor[c] = append(perColor[c], i)
			}
		}
		for c := 1; c <= colors; c++ {
			if len(perColor[c]) > quota {
				ok = false // Corollary 19 overflow; excess blocks dropped
			}
			wr.Retarget(out[c-1], g*quota)
			for s := 0; s < quota; s++ {
				blk := wr.Next()
				if s < len(perColor[c]) {
					copy(blk, buf[perColor[c][s]*b:(perColor[c][s]+1)*b])
				} else {
					for t := range blk {
						blk[t] = extmem.Element{}
					}
				}
			}
			wr.FlushAsync()
		}
	}
	wr.Join()
	env.Cache.Free(wbuf)
	env.Cache.Free(buf)
	return out, ok
}

// sweepFailures is the data-oblivious failure sweeping of §5. It runs the
// same trace whether zero, one, or several buckets failed: copy the failed
// cells (marked with FlagFailed) into a scratch array, tightly compact them
// with the butterfly network, record each compacted cell's fill count and
// origin, sort the prefix deterministically, repack the sorted elements
// into cells with the original fill shape, route them back with the
// expansion network, and merge. Returns false if the failure set exceeded
// capD cells (irreparable; probability bounded by Lemma 20's argument).
func sweepFailures(env *extmem.Env, res extmem.Array, capD int) bool {
	n := res.Len()
	if n == 0 || capD == 0 {
		return true
	}
	b := res.B()
	mark := env.D.Mark()
	defer env.D.Release(mark)

	// Copy failed cells; everything else becomes empty.
	cpy := env.D.Alloc(n)
	kc := env.ScanBatchN(1, n)
	cbuf := env.Cache.Buf(kc * b)
	for lo := 0; lo < n; lo += kc {
		hi := min(lo+kc, n)
		res.ReadRange(lo, hi, cbuf[:(hi-lo)*b])
		for i := lo; i < hi; i++ {
			blk := cbuf[(i-lo)*b : (i-lo+1)*b]
			if !PredFailed(blk) {
				for t := range blk {
					blk[t] = extmem.Element{}
				}
			} else {
				for t := range blk {
					blk[t].Flags &^= extmem.FlagFailed
				}
			}
		}
		cpy.WriteRange(lo, hi, cbuf[:(hi-lo)*b])
	}
	env.Cache.Free(cbuf)

	failedCells := CompactBlocksTight(env, cpy, PredOccupied, 0)
	ok := failedCells <= capD

	// Record fill counts and origins of the compacted prefix.
	fo := env.D.Alloc(extmem.CeilDiv(capD, b))
	ent := env.Cache.Buf(b)
	for i := range ent {
		ent[i] = extmem.Element{}
	}
	kf := env.ScanBatchN(1, capD)
	fbuf := env.Cache.Buf(kf * b)
	for lo := 0; lo < capD; lo += kf {
		hi := min(lo+kf, capD)
		cpy.ReadRange(lo, hi, fbuf[:(hi-lo)*b])
		for i := lo; i < hi; i++ {
			blk := fbuf[(i-lo)*b : (i-lo+1)*b]
			cnt := 0
			for _, e := range blk {
				if e.Occupied() {
					cnt++
				}
			}
			ent[i%b] = extmem.Element{Val: uint64(cnt), Pos: uint64(blk[0].Aux())}
			if (i+1)%b == 0 || i == capD-1 {
				fo.Write(i/b, ent)
				for t := range ent {
					ent[t] = extmem.Element{}
				}
			}
		}
	}
	env.Cache.Free(fbuf)

	// Deterministic sort of the prefix (Lemma 2).
	obsort.Bitonic(env, cpy.Slice(0, capD), obsort.ByKey)

	// Repack the dense sorted stream into cells with the recorded fill
	// shape, stamping each cell's expansion target. The schedule is
	// lockstep — at step s read stream block s and write output cell s —
	// so the trace never depends on the fill pattern. Feasibility: output
	// cell s needs at most (s+1)·B elements, and the dense stream's first
	// s+1 blocks hold at least that many when they exist. The private
	// queue absorbs the lag, which stays small because almost every failed
	// cell is full (only consolidation flush blocks are partial).
	d2 := env.D.Alloc(capD)
	queueCap := env.M / 4
	queue := env.Cache.Buf(queueCap)
	qh, qt := 0, 0 // ring indices: head (consume), tail (produce)
	qlen := 0
	kd := env.ScanBatchN(2, capD)
	sbuf := env.Cache.Buf(kd * b)
	dbuf := env.Cache.Buf(kd * b)
	for lo := 0; lo < capD; lo += kd {
		hi := min(lo+kd, capD)
		cpy.ReadRange(lo, hi, sbuf[:(hi-lo)*b])
		for s := lo; s < hi; s++ {
			for _, e := range sbuf[(s-lo)*b : (s-lo+1)*b] {
				if !e.Occupied() {
					continue
				}
				if qlen == queueCap {
					ok = false // queue overflow: drop, keep the trace fixed
					continue
				}
				queue[qt] = e
				qt = (qt + 1) % queueCap
				qlen++
			}
			if s%b == 0 {
				fo.Read(s/b, ent)
			}
			fill := int(ent[s%b].Val)
			origin := int(ent[s%b].Pos)
			blk := dbuf[(s-lo)*b : (s-lo+1)*b]
			for t := 0; t < b; t++ {
				blk[t] = extmem.Element{}
				if t < fill && qlen > 0 {
					blk[t] = queue[qh]
					qh = (qh + 1) % queueCap
					qlen--
				}
				blk[t].SetAux(origin)
			}
		}
		d2.WriteRange(lo, hi, dbuf[:(hi-lo)*b])
	}
	env.Cache.Free(dbuf)
	env.Cache.Free(sbuf)
	env.Cache.Free(queue)
	env.Cache.Free(ent)

	// Install the repacked prefix and route everything home.
	ki := env.ScanBatchN(1, capD)
	ibuf := env.Cache.Buf(ki * b)
	for lo := 0; lo < capD; lo += ki {
		hi := min(lo+ki, capD)
		d2.ReadRange(lo, hi, ibuf[:(hi-lo)*b])
		cpy.WriteRange(lo, hi, ibuf[:(hi-lo)*b])
	}
	env.Cache.Free(ibuf)
	ExpandBlocks(env, cpy, PredOccupied, 0)

	// Merge: failed cells take the repaired copy.
	km := env.ScanBatchN(2, n)
	rb := env.Cache.Buf(km * b)
	cb := env.Cache.Buf(km * b)
	for lo := 0; lo < n; lo += km {
		hi := min(lo+km, n)
		res.ReadRange(lo, hi, rb[:(hi-lo)*b])
		cpy.ReadRange(lo, hi, cb[:(hi-lo)*b])
		for i := lo; i < hi; i++ {
			blk := rb[(i-lo)*b : (i-lo+1)*b]
			if PredFailed(blk) {
				copy(blk, cb[(i-lo)*b:(i-lo+1)*b])
			}
			for t := range blk {
				blk[t].Flags &^= extmem.FlagFailed
			}
		}
		res.WriteRange(lo, hi, rb[:(hi-lo)*b])
	}
	env.Cache.Free(cb)
	env.Cache.Free(rb)
	return ok
}
