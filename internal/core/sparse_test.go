package core

import (
	"errors"
	"math/rand/v2"
	"testing"

	"oblivext/internal/extmem"
	"oblivext/internal/trace"
)

// buildSparseCells writes n cells; the cells listed in occ get a full block
// of occupied elements with Pos recording their global element order.
func buildSparseCells(a extmem.Array, occ []int) {
	b := a.B()
	isOcc := map[int]bool{}
	for _, j := range occ {
		isOcc[j] = true
	}
	buf := make([]extmem.Element, b)
	for j := 0; j < a.Len(); j++ {
		for t := 0; t < b; t++ {
			if isOcc[j] {
				buf[t] = extmem.Element{Key: uint64(j*1000 + t), Val: uint64(j), Pos: uint64(j*b + t), Flags: extmem.FlagOccupied}
			} else {
				buf[t] = extmem.Element{}
			}
		}
		a.Write(j, buf)
	}
}

func TestSparseCompactPrivatePath(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	for _, cfg := range []struct{ n, rCap, occ int }{
		{16, 4, 3}, {16, 4, 4}, {32, 8, 5}, {64, 6, 6}, {20, 5, 0}, {8, 2, 1},
	} {
		env := newTestEnv(256, 4, 4096, uint64(cfg.n)) // big cache: private peel
		a := env.D.Alloc(cfg.n)
		perm := r.Perm(cfg.n)
		occ := append([]int(nil), perm[:cfg.occ]...)
		buildSparseCells(a, occ)
		out, got, err := CompactBlocksSparse(env, a, cfg.rCap, SparseParams{})
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if got != cfg.occ {
			t.Fatalf("cfg %+v: occupied=%d", cfg, got)
		}
		if out.Len() != cfg.rCap {
			t.Fatalf("cfg %+v: out len %d", cfg, out.Len())
		}
		elems := readElems(out)
		// Occupied elements must appear first, in original Pos order.
		var poss []uint64
		for i, e := range elems {
			if e.Occupied() {
				if i >= cfg.occ*4 {
					t.Fatalf("cfg %+v: occupied element beyond prefix at %d", cfg, i)
				}
				poss = append(poss, e.Pos)
			}
		}
		if len(poss) != cfg.occ*4 {
			t.Fatalf("cfg %+v: %d occupied elements, want %d", cfg, len(poss), cfg.occ*4)
		}
		for i := 1; i < len(poss); i++ {
			if poss[i-1] >= poss[i] {
				t.Fatalf("cfg %+v: order not restored at %d", cfg, i)
			}
		}
	}
}

func TestSparseCompactORAMPath(t *testing.T) {
	env := newTestEnv(512, 4, 96, 3)
	a := env.D.Alloc(12)
	buildSparseCells(a, []int{2, 7, 11})
	out, got, err := CompactBlocksSparse(env, a, 3, SparseParams{ForceORAM: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("occupied = %d", got)
	}
	elems := readElems(out)
	keys := occupiedKeys(elems)
	if len(keys) != 12 {
		t.Fatalf("%d occupied elements, want 12", len(keys))
	}
	want := []uint64{2000, 2001, 2002, 2003, 7000, 7001, 7002, 7003, 11000, 11001, 11002, 11003}
	if !equalU64(keys, want) {
		t.Fatalf("keys = %v", keys)
	}
}

func TestSparseCompactOverCapacityFails(t *testing.T) {
	env := newTestEnv(256, 4, 4096, 9)
	a := env.D.Alloc(16)
	buildSparseCells(a, []int{0, 1, 2, 3, 4})
	_, _, err := CompactBlocksSparse(env, a, 3, SparseParams{})
	if !errors.Is(err, ErrCompactionFailed) {
		t.Fatalf("err = %v, want ErrCompactionFailed", err)
	}
}

func TestSparseCompactOblivious(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 5))
	run := func(occ []int) trace.Summary {
		return traceOf(t, 256, 4, 4096, 42, func(env *extmem.Env) {
			a := env.D.Alloc(24)
			buildSparseCells(a, occ)
			CompactBlocksSparse(env, a, 6, SparseParams{})
		})
	}
	s1 := run([]int{1, 5, 9})
	s2 := run([]int{20, 21, 22, 23})
	s3 := run(nil)
	s4 := run(r.Perm(24)[:6])
	if !s1.Equal(s2) || !s1.Equal(s3) || !s1.Equal(s4) {
		t.Fatalf("sparse compaction trace depends on data: %v %v %v %v", s1, s2, s3, s4)
	}
}

func TestSparseCompactInsertionIOLinear(t *testing.T) {
	// Insertion touches k*(2 reads + 2 writes) + 1 read per input cell plus
	// table init and output; total must scale linearly in n at fixed rCap.
	io := func(n int) int64 {
		env := newTestEnv(4*n, 4, 1<<20, 11)
		a := env.D.Alloc(n)
		buildSparseCells(a, []int{0, 1})
		env.D.ResetStats()
		if _, _, err := CompactBlocksSparse(env, a, 4, SparseParams{}); err != nil {
			t.Fatal(err)
		}
		return env.D.Stats().Total()
	}
	lo, hi := io(64), io(256)
	ratio := float64(hi-io(1)) / float64(lo-io(1))
	if ratio > 5.2 {
		t.Fatalf("sparse compaction I/O superlinear: 64->%d, 256->%d (ratio %.2f)", lo, hi, ratio)
	}
}

func TestSparseFailureRateLemma1(t *testing.T) {
	// Lemma 1 at table factor 3, k=4: failures should be rare.
	fails := 0
	const trials = 60
	r := rand.New(rand.NewPCG(13, 13))
	for tr := 0; tr < trials; tr++ {
		env := newTestEnv(256, 4, 1<<20, uint64(1000+tr))
		a := env.D.Alloc(48)
		occ := r.Perm(48)[:12]
		buildSparseCells(a, occ)
		if _, _, err := CompactBlocksSparse(env, a, 12, SparseParams{}); err != nil {
			fails++
		}
	}
	if fails > 2 {
		t.Fatalf("sparse compaction failed %d/%d times", fails, trials)
	}
}
