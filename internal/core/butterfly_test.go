package core

import (
	"math/rand/v2"
	"testing"

	"oblivext/internal/extmem"
	"oblivext/internal/trace"
)

// buildCells writes n block-cells: cells listed in occ hold a full block of
// occupied elements keyed by cell index; others are empty.
func buildCells(a extmem.Array, occ map[int]bool) {
	b := a.B()
	buf := make([]extmem.Element, b)
	for j := 0; j < a.Len(); j++ {
		for t := 0; t < b; t++ {
			if occ[j] {
				buf[t] = extmem.Element{Key: uint64(j), Val: uint64(j*100 + t), Pos: uint64(j*b + t), Flags: extmem.FlagOccupied}
			} else {
				buf[t] = extmem.Element{}
			}
		}
		a.Write(j, buf)
	}
}

// cellKeys reads the per-cell occupancy: key of the first element of each
// occupied cell, -1 for empty cells.
func cellKeys(a extmem.Array) []int {
	b := a.B()
	buf := make([]extmem.Element, b)
	out := make([]int, a.Len())
	for j := 0; j < a.Len(); j++ {
		a.Read(j, buf)
		if buf[0].Occupied() {
			out[j] = int(buf[0].Key)
		} else {
			out[j] = -1
		}
	}
	return out
}

func occupiedSets(r *rand.Rand, n, count int) map[int]bool {
	occ := map[int]bool{}
	perm := r.Perm(n)
	for i := 0; i < count; i++ {
		occ[perm[i]] = true
	}
	return occ
}

func TestCompactTightCorrectness(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for _, lpp := range []int{0, 1, 2} { // windowed auto, naive, fixed-2
		for _, n := range []int{1, 2, 3, 7, 16, 33, 64, 100} {
			for _, density := range []int{0, 1, n / 2, n} {
				if density > n {
					continue
				}
				env := newTestEnv(n+8, 4, 64, 5)
				a := env.D.Alloc(n)
				occ := occupiedSets(r, n, density)
				buildCells(a, occ)
				got := CompactBlocksTight(env, a, PredOccupied, lpp)
				if got != density {
					t.Fatalf("lpp=%d n=%d density=%d: count=%d", lpp, n, density, got)
				}
				keys := cellKeys(a)
				// Prefix = occupied cells' keys in increasing order
				// (order preservation); suffix empty.
				var want []int
				for j := 0; j < n; j++ {
					if occ[j] {
						want = append(want, j)
					}
				}
				for i := 0; i < n; i++ {
					if i < len(want) {
						if keys[i] != want[i] {
							t.Fatalf("lpp=%d n=%d density=%d: cell %d = %d, want %d", lpp, n, density, i, keys[i], want[i])
						}
					} else if keys[i] != -1 {
						t.Fatalf("lpp=%d n=%d density=%d: cell %d not empty", lpp, n, density, i)
					}
				}
			}
		}
	}
}

func TestCompactTightPreservesBlockContents(t *testing.T) {
	env := newTestEnv(24, 4, 64, 5)
	a := env.D.Alloc(16)
	occ := map[int]bool{3: true, 9: true, 15: true}
	buildCells(a, occ)
	CompactBlocksTight(env, a, PredOccupied, 0)
	buf := make([]extmem.Element, 4)
	wantCells := []int{3, 9, 15}
	for i, wc := range wantCells {
		a.Read(i, buf)
		for tt := 0; tt < 4; tt++ {
			if buf[tt].Val != uint64(wc*100+tt) || buf[tt].Pos != uint64(wc*4+tt) {
				t.Fatalf("cell %d element %d content mangled: %+v", i, tt, buf[tt])
			}
		}
		// Aux must record the origin for later expansion.
		if buf[0].Aux() != wc {
			t.Fatalf("cell %d aux = %d, want origin %d", i, buf[0].Aux(), wc)
		}
	}
}

func TestCompactThenExpandIsIdentity(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	for _, lpp := range []int{0, 1} {
		for _, n := range []int{5, 16, 37, 64} {
			for trial := 0; trial < 4; trial++ {
				env := newTestEnv(n+8, 4, 64, 5)
				a := env.D.Alloc(n)
				cnt := r.IntN(n + 1)
				occ := occupiedSets(r, n, cnt)
				buildCells(a, occ)
				before := cellKeys(a)
				CompactBlocksTight(env, a, PredOccupied, lpp)
				ExpandBlocks(env, a, PredOccupied, lpp)
				after := cellKeys(a)
				for j := range before {
					if before[j] != after[j] {
						t.Fatalf("lpp=%d n=%d trial=%d: cell %d was %d now %d", lpp, n, trial, j, before[j], after[j])
					}
				}
			}
		}
	}
}

func TestButterflyOblivious(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 9))
	run := func(count int) trace.Summary {
		occ := occupiedSets(r, 32, count)
		return traceOf(t, 64, 4, 48, 7, func(env *extmem.Env) {
			a := env.D.Alloc(32)
			buildCells(a, occ)
			buildTrace := env.D.Recorder().Summarize()
			_ = buildTrace
			CompactBlocksTight(env, a, PredOccupied, 0)
		})
	}
	// Different occupancy counts and layouts must give identical traces;
	// the build phase writes the same 32 blocks each time.
	s1, s2, s3 := run(0), run(16), run(32)
	if !s1.Equal(s2) || !s1.Equal(s3) {
		t.Fatalf("butterfly trace depends on data: %v %v %v", s1, s2, s3)
	}
}

func TestButterflyIOMatchesPassCount(t *testing.T) {
	for _, cfg := range []struct{ n, m, lpp int }{
		{64, 48, 0}, {64, 48, 1}, {128, 24, 0}, {100, 48, 2},
	} {
		env := newTestEnv(cfg.n+8, 4, cfg.m, 5)
		a := env.D.Alloc(cfg.n)
		r := rand.New(rand.NewPCG(3, 3))
		buildCells(a, occupiedSets(r, cfg.n, cfg.n/3))
		env.D.ResetStats()
		CompactBlocksTight(env, a, PredOccupied, cfg.lpp)
		got := env.D.Stats().Total()
		want := int64(ButterflyPassCount(cfg.n, cfg.lpp, cfg.m/4)) * int64(2*cfg.n)
		if got != want {
			t.Errorf("n=%d m=%d lpp=%d: measured %d I/Os, predicted %d", cfg.n, cfg.m, cfg.lpp, got, want)
		}
	}
}

// TestWindowedBeatsNaive pins the E4 ablation: grouped levels make fewer
// passes than the naive per-level network.
func TestWindowedBeatsNaive(t *testing.T) {
	n := 256
	run := func(lpp int) int64 {
		env := newTestEnv(n+8, 4, 256, 5)
		a := env.D.Alloc(n)
		r := rand.New(rand.NewPCG(4, 4))
		buildCells(a, occupiedSets(r, n, n/4))
		env.D.ResetStats()
		CompactBlocksTight(env, a, PredOccupied, lpp)
		return env.D.Stats().Total()
	}
	naive, windowed := run(1), run(0)
	if windowed*2 > naive {
		t.Fatalf("windowed (%d I/Os) should be well under naive (%d I/Os) at m=16", windowed, naive)
	}
}

func TestCompactTightWithFailedPredicate(t *testing.T) {
	env := newTestEnv(24, 4, 64, 5)
	a := env.D.Alloc(16)
	buf := make([]extmem.Element, 4)
	// All cells occupied; cells 2, 5, 11 additionally carry FlagFailed.
	for j := 0; j < 16; j++ {
		for tt := range buf {
			buf[tt] = extmem.Element{Key: uint64(j), Flags: extmem.FlagOccupied}
			if j == 2 || j == 5 || j == 11 {
				buf[tt].Flags |= extmem.FlagFailed
			}
		}
		a.Write(j, buf)
	}
	cnt := CompactBlocksTight(env, a, PredFailed, 0)
	if cnt != 3 {
		t.Fatalf("failed-cell count = %d, want 3", cnt)
	}
	keys := cellKeys(a)
	if keys[0] != 2 || keys[1] != 5 || keys[2] != 11 {
		t.Fatalf("failed cells not compacted in order: %v", keys[:4])
	}
}

func TestExpandRejectsNonMonotoneTargets(t *testing.T) {
	env := newTestEnv(16, 4, 64, 5)
	a := env.D.Alloc(8)
	buf := make([]extmem.Element, 4)
	for j := 0; j < 8; j++ {
		for tt := range buf {
			buf[tt] = extmem.Element{}
			if j < 2 {
				buf[tt] = extmem.Element{Key: uint64(j), Flags: extmem.FlagOccupied}
				buf[tt].SetAux(5 - j*3) // targets 5, 2: decreasing — invalid
			}
		}
		a.Write(j, buf)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-monotone expansion targets")
		}
	}()
	ExpandBlocks(env, a, PredOccupied, 0)
}

// TestFigure1Example reproduces the concrete 7-cell instance drawn in the
// paper's Figure 1: occupied cells with leftward distance labels
// 2,3,3,6,8,8,9 compact to a tight prefix without collisions.
func TestFigure1Example(t *testing.T) {
	// Figure 1 shows 16 cells; occupied cells sit at positions where
	// label = #empties to the left. Labels 2,3,3,6,8,8,9 correspond to
	// occupied positions: rank k at position p with p - k = label.
	labels := []int{2, 3, 3, 6, 8, 8, 9}
	occ := map[int]bool{}
	for k, d := range labels {
		occ[k+d] = true // position = rank + distance
	}
	n := 16
	env := newTestEnv(n+8, 2, 32, 5)
	a := env.D.Alloc(n)
	buildCells(a, occ)
	cnt := CompactBlocksTight(env, a, PredOccupied, 1) // level-by-level, as drawn
	if cnt != len(labels) {
		t.Fatalf("count = %d, want %d", cnt, len(labels))
	}
	keys := cellKeys(a)
	for k, d := range labels {
		if keys[k] != k+d {
			t.Fatalf("cell %d should hold the block from position %d, got %d", k, k+d, keys[k])
		}
	}
}
