package core

import "oblivext/internal/extmem"

// This file provides the batched scan skeletons the pass-structured
// algorithms share. Each streams blocks in order through a callback while
// moving up to M/B−O(1) blocks per vectored round trip; the callback sees
// exactly the per-block view the scalar loops used, so converting a pass is
// a mechanical rewrite that cannot change its element-level semantics.

// scanRead streams a's blocks in order through fn (read-only).
func scanRead(env *extmem.Env, a extmem.Array, fn func(i int, blk []extmem.Element)) {
	n := a.Len()
	if n == 0 {
		return
	}
	b := a.B()
	k := env.ScanBatchN(1, n)
	buf := env.Cache.Buf(k * b)
	for lo := 0; lo < n; lo += k {
		hi := min(lo+k, n)
		a.ReadRange(lo, hi, buf[:(hi-lo)*b])
		for i := lo; i < hi; i++ {
			fn(i, buf[(i-lo)*b:(i-lo+1)*b])
		}
	}
	env.Cache.Free(buf)
}

// scanRMW streams a's blocks through fn, which may modify them in place;
// every chunk is written back where it came from.
func scanRMW(env *extmem.Env, a extmem.Array, fn func(i int, blk []extmem.Element)) {
	n := a.Len()
	if n == 0 {
		return
	}
	b := a.B()
	k := env.ScanBatchN(1, n)
	buf := env.Cache.Buf(k * b)
	for lo := 0; lo < n; lo += k {
		hi := min(lo+k, n)
		a.ReadRange(lo, hi, buf[:(hi-lo)*b])
		for i := lo; i < hi; i++ {
			fn(i, buf[(i-lo)*b:(i-lo+1)*b])
		}
		a.WriteRange(lo, hi, buf[:(hi-lo)*b])
	}
	env.Cache.Free(buf)
}

// scanCopy streams src's blocks through fn (which may modify them) and
// writes the results to the same positions of dst (dst.Len() >= src.Len(),
// dst distinct from src).
func scanCopy(env *extmem.Env, src, dst extmem.Array, fn func(i int, blk []extmem.Element)) {
	n := src.Len()
	if n == 0 {
		return
	}
	b := src.B()
	k := env.ScanBatchN(1, n)
	buf := env.Cache.Buf(k * b)
	for lo := 0; lo < n; lo += k {
		hi := min(lo+k, n)
		src.ReadRange(lo, hi, buf[:(hi-lo)*b])
		for i := lo; i < hi; i++ {
			fn(i, buf[(i-lo)*b:(i-lo+1)*b])
		}
		dst.WriteRange(lo, hi, buf[:(hi-lo)*b])
	}
	env.Cache.Free(buf)
}

// zeroArray overwrites every block of a with empty elements, batched.
func zeroArray(env *extmem.Env, a extmem.Array) {
	n := a.Len()
	if n == 0 {
		return
	}
	b := a.B()
	k := env.ScanBatchN(1, n)
	buf := env.Cache.Buf(k * b) // Buf returns zeroed storage
	for lo := 0; lo < n; lo += k {
		hi := min(lo+k, n)
		a.WriteRange(lo, hi, buf[:(hi-lo)*b])
	}
	env.Cache.Free(buf)
}
