package core

import (
	"oblivext/internal/extmem"
	"oblivext/internal/par"
)

// This file provides the batched scan skeletons the pass-structured
// algorithms share. Each streams blocks in order through a callback while
// moving up to M/B−O(1) blocks per vectored round trip; the callback sees
// exactly the per-block view the scalar loops used, so converting a pass is
// a mechanical rewrite that cannot change its element-level semantics.

// scanRead streams a's blocks in order through fn (read-only). With
// env.Prefetch set the scan is double-buffered: the cache window is split in
// two halves and the next half's fetch runs concurrently with fn over the
// current one. fn must stay pure compute (no disk I/O) — true of every
// read-scan callback in this package — so the prefetch goroutine is the only
// I/O issuer while the scan runs.
func scanRead(env *extmem.Env, a extmem.Array, fn func(i int, blk []extmem.Element)) {
	n := a.Len()
	if n == 0 {
		return
	}
	b := a.B()
	if env.Prefetch {
		// Each half holds at most ceil(n/2) blocks, so even a scan shorter
		// than the cache window splits into two chunks and gets overlap.
		k := env.ScanBatchN(2, extmem.CeilDiv(n, 2))
		buf := env.Cache.Buf(2 * k * b)
		// Both teardown steps are deferred so that a panic in fn (or a
		// future early return) still joins the in-flight prefetch before the
		// buffer is released — Close must run first (LIFO), otherwise the
		// prefetch goroutine keeps writing into a buffer the accountant has
		// already reclaimed.
		defer env.Cache.Free(buf)
		r := extmem.NewSeqReader(a, 0, n, buf, true)
		defer r.Close()
		for {
			i, blk, ok := r.Next()
			if !ok {
				break
			}
			fn(i, blk)
		}
		return
	}
	scanReadSync(env, a, fn)
}

// scanReadSync is scanRead without the prefetch option: for read scans whose
// callback itself issues I/O (e.g. feeding a SeqWriter that flushes
// mid-scan), where a concurrent prefetch would interleave two I/O streams
// and make the trace order scheduling-dependent.
func scanReadSync(env *extmem.Env, a extmem.Array, fn func(i int, blk []extmem.Element)) {
	n := a.Len()
	if n == 0 {
		return
	}
	b := a.B()
	k := env.ScanBatchN(1, n)
	buf := env.Cache.Buf(k * b)
	for lo := 0; lo < n; lo += k {
		hi := min(lo+k, n)
		a.ReadRange(lo, hi, buf[:(hi-lo)*b])
		for i := lo; i < hi; i++ {
			fn(i, buf[(i-lo)*b:(i-lo+1)*b])
		}
	}
	env.Cache.Free(buf)
}

// scanRMW streams a's blocks through fn, which may modify them in place;
// every chunk is written back where it came from.
func scanRMW(env *extmem.Env, a extmem.Array, fn func(i int, blk []extmem.Element)) {
	n := a.Len()
	if n == 0 {
		return
	}
	b := a.B()
	k := env.ScanBatchN(1, n)
	buf := env.Cache.Buf(k * b)
	for lo := 0; lo < n; lo += k {
		hi := min(lo+k, n)
		a.ReadRange(lo, hi, buf[:(hi-lo)*b])
		for i := lo; i < hi; i++ {
			fn(i, buf[(i-lo)*b:(i-lo+1)*b])
		}
		a.WriteRange(lo, hi, buf[:(hi-lo)*b])
	}
	env.Cache.Free(buf)
}

// parMinCells is the per-chunk element count below which the parallel
// helpers stay serial; it compares public lengths only.
const parMinCells = 2048

// parCells fans fn out over [0, n) across the environment's worker pool
// when n is large enough to amortize the spawns. fn must be pure in-cache
// compute over disjoint index ranges — no I/O, no tape, no shared state.
func parCells(env *extmem.Env, n int, fn func(lo, hi int)) {
	w := env.WorkerCount()
	if n < parMinCells {
		w = 1
	}
	par.For(w, n, fn)
}

// scanRMWPar is scanRMW with the per-block callback fanned out across
// env.Workers goroutines within each in-cache chunk (I/O and chunk order
// are untouched, so the trace is identical to scanRMW's). fn must be pure
// per-block compute — no shared mutable state, no tape draws, no I/O —
// which holds for the stamp/colorize passes that use this variant.
func scanRMWPar(env *extmem.Env, a extmem.Array, fn func(i int, blk []extmem.Element)) {
	n := a.Len()
	if n == 0 {
		return
	}
	b := a.B()
	k := env.ScanBatchN(1, n)
	buf := env.Cache.Buf(k * b)
	w := env.WorkerCount()
	for lo := 0; lo < n; lo += k {
		hi := min(lo+k, n)
		a.ReadRange(lo, hi, buf[:(hi-lo)*b])
		par.For(w, hi-lo, func(plo, phi int) {
			for i := lo + plo; i < lo+phi; i++ {
				fn(i, buf[(i-lo)*b:(i-lo+1)*b])
			}
		})
		a.WriteRange(lo, hi, buf[:(hi-lo)*b])
	}
	env.Cache.Free(buf)
}

// scanCopy streams src's blocks through fn (which may modify them) and
// writes the results to the same positions of dst (dst.Len() >= src.Len(),
// dst distinct from src).
func scanCopy(env *extmem.Env, src, dst extmem.Array, fn func(i int, blk []extmem.Element)) {
	n := src.Len()
	if n == 0 {
		return
	}
	b := src.B()
	k := env.ScanBatchN(1, n)
	buf := env.Cache.Buf(k * b)
	for lo := 0; lo < n; lo += k {
		hi := min(lo+k, n)
		src.ReadRange(lo, hi, buf[:(hi-lo)*b])
		for i := lo; i < hi; i++ {
			fn(i, buf[(i-lo)*b:(i-lo+1)*b])
		}
		dst.WriteRange(lo, hi, buf[:(hi-lo)*b])
	}
	env.Cache.Free(buf)
}

// zeroArray overwrites every block of a with empty elements, batched.
func zeroArray(env *extmem.Env, a extmem.Array) {
	n := a.Len()
	if n == 0 {
		return
	}
	b := a.B()
	k := env.ScanBatchN(1, n)
	buf := env.Cache.Buf(k * b) // Buf returns zeroed storage
	for lo := 0; lo < n; lo += k {
		hi := min(lo+k, n)
		a.WriteRange(lo, hi, buf[:(hi-lo)*b])
	}
	env.Cache.Free(buf)
}
