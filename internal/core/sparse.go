package core

import (
	"errors"
	"fmt"
	"slices"

	"oblivext/internal/extmem"
	"oblivext/internal/iblt"
	"oblivext/internal/obsort"
	"oblivext/internal/oram"
	"oblivext/internal/rng"
)

// This file implements Theorem 4: tight order-preserving compaction of a
// sparse array through an invertible Bloom lookup table. Every position i
// of the input touches the same k table cells whether or not cell i is
// occupied — the semi-oblivious property of IBLT insertion (§2) — after
// which the table is peeled: privately when it fits Alice's cache, or
// through the ORAM substrate with a fully padded schedule (the paper's
// "RAM simulation of the listEntries method").

// ErrCompactionFailed reports that IBLT peeling did not recover every
// occupied cell (probability bounded by Lemma 1) or that the occupied count
// exceeded the declared capacity. The trace up to the failure is exactly
// the success trace — Monte-Carlo semantics, no data-dependent retry.
var ErrCompactionFailed = errors.New("core: sparse compaction failed")

// SparseParams tunes Theorem 4's table geometry.
type SparseParams struct {
	// K is the number of hash functions (default 4).
	K int
	// TableFactor is m/r, the cells per unit capacity (default 3, the
	// paper's "table of size 3r").
	TableFactor int
	// ForceORAM forces the ORAM peeling path even when the table would fit
	// in cache (used by tests and the E3 ablation).
	ForceORAM bool
}

func (p *SparseParams) setDefaults() {
	if p.K == 0 {
		p.K = 4
	}
	if p.TableFactor == 0 {
		p.TableFactor = 3
	}
}

// cellWords returns the serialized width of one IBLT cell for block values:
// count and keySum plus ElementWords words per element of the block.
func cellWords(b int) int { return 2 + extmem.ElementWords*b }

// SparseTableFits reports whether Theorem 4's table for capacity rCap would
// fit Alice's cache, i.e. whether CompactBlocksSparse would peel privately.
func SparseTableFits(env *extmem.Env, rCap int, p SparseParams) bool {
	p.setDefaults()
	m := p.TableFactor * max(rCap, 1)
	if m < p.K {
		m = p.K
	}
	return m*(cellWords(env.B())+2) <= env.M-4*env.B()
}

// CompactMarkedTight consolidates the marked elements of a (Lemma 3) and
// tightly compacts the resulting full blocks into a fresh array of exactly
// rCap blocks, preserving element order. It chooses Theorem 4's IBLT path
// when the table fits in cache — the regime where Theorem 13's strictly
// linear I/O bound is realized — and otherwise falls back to Theorem 6's
// butterfly network, paying a log_{M/B}(n) factor but no ORAM overhead.
// (The fully general Theorem 4 path through the ORAM substrate remains
// available via CompactBlocksSparse with ForceORAM.)
func CompactMarkedTight(env *extmem.Env, a extmem.Array, rCap int) (extmem.Array, int64, error) {
	cons, marked := Consolidate(env, a)
	need := extmem.CeilDiv(int(marked), env.B())
	if marked > 0 && need > rCap {
		return cons, marked, fmt.Errorf("%w: %d marked blocks exceed capacity %d", ErrCompactionFailed, need, rCap)
	}
	if SparseTableFits(env, rCap, SparseParams{}) {
		out, _, err := CompactBlocksSparse(env, cons, rCap, SparseParams{})
		return out, marked, err
	}
	CompactBlocksTight(env, cons, PredOccupied, 0)
	if cons.Len() < rCap {
		// Pad: allocate the full capacity and copy the prefix, a chunked
		// run copy with zero-fill past the prefix.
		out := env.D.Alloc(rCap)
		b := env.B()
		k := env.ScanBatchN(1, rCap)
		buf := env.Cache.Buf(k * b)
		for lo := 0; lo < rCap; lo += k {
			hi := min(lo+k, rCap)
			rh := min(hi, cons.Len())
			if rh > lo {
				cons.ReadRange(lo, rh, buf[:(rh-lo)*b])
			}
			for t := max(rh, lo) * b; t < hi*b; t++ {
				buf[t-lo*b] = extmem.Element{}
			}
			out.WriteRange(lo, hi, buf[:(hi-lo)*b])
		}
		env.Cache.Free(buf)
		return out, marked, nil
	}
	return cons.Slice(0, rCap), marked, nil
}

// CompactBlocksSparse compacts the occupied block-cells of a — at most rCap
// of them — into a fresh array of exactly rCap blocks, occupied cells
// first in their original element order (by the Pos field), empties after.
// It uses O(n + rCap·polylog) I/Os: one insertion scan with k cell touches
// per input position, a peel, and an order-restoring oblivious sort.
//
// The occupied count is returned privately. If more than rCap cells are
// occupied, or peeling fails (Lemma 1's low-probability event), the full
// fixed-length trace is still produced and ErrCompactionFailed is returned.
func CompactBlocksSparse(env *extmem.Env, a extmem.Array, rCap int, p SparseParams) (extmem.Array, int, error) {
	p.setDefaults()
	n := a.Len()
	b := a.B()
	if rCap < 1 {
		rCap = 1
	}
	m := p.TableFactor * rCap
	if m < p.K {
		m = p.K
	}
	seed := env.Tape.Uint64() // hash family seed: one draw, data-independent
	hasher := rng.NewHasher(seed, p.K, m)

	mark := env.D.Mark()
	out := env.D.Alloc(rCap)

	// Table storage: one sum block per cell plus packed (count, keySum)
	// headers, B per block. Zeroing is a chunked run write.
	sums := env.D.Alloc(m)
	hdrs := env.D.Alloc(extmem.CeilDiv(m, b))
	zk := env.ScanBatchN(1, sums.Len())
	zero := env.Cache.Buf(zk * b)
	for i := range zero {
		zero[i] = extmem.Element{}
	}
	for lo := 0; lo < sums.Len(); lo += zk {
		hi := min(lo+zk, sums.Len())
		sums.WriteRange(lo, hi, zero[:(hi-lo)*b])
	}
	for lo := 0; lo < hdrs.Len(); lo += zk {
		hi := min(lo+zk, hdrs.Len())
		hdrs.WriteRange(lo, hi, zero[:(hi-lo)*b])
	}
	env.Cache.Free(zero)

	// Insertion pass: each position touches its k cells; unoccupied
	// positions write the cells back unchanged (re-encrypted in the real
	// deployment — indistinguishable either way). The cell indices are hash
	// outputs of the (public) position, so the k sum cells and their header
	// blocks travel as vectored batches: one read and one write each —
	// four round trips per position instead of 4k. Colliding hash functions
	// are deduplicated first-touch so each address appears once per batch;
	// the in-cache copy absorbs the multiplicity exactly as the scalar
	// read-modify-write sequence did.
	ablk := env.Cache.Buf(b)
	g := env.ScanBatchN(2, p.K) // unique cells per vectored group
	sbuf := env.Cache.Buf(g * b)
	hbuf := env.Cache.Buf(g * b)
	cells := make([]int, 0, p.K)
	hblks := make([]int, 0, p.K)
	occCount := 0
	for i := 0; i < n; i++ {
		a.Read(i, ablk)
		occ := PredOccupied(ablk)
		if occ {
			occCount++
		}
		// Keys are positions offset by one so that a zero keySum is never a
		// valid key; the peeler subtracts the offset back.
		cells = cells[:0]
		hblks = hblks[:0]
		for j := 0; j < p.K; j++ {
			c := hasher.Index(j, uint64(i)+1)
			if !slices.Contains(cells, c) {
				cells = append(cells, c)
			}
			if !slices.Contains(hblks, c/b) {
				hblks = append(hblks, c/b)
			}
		}
		for glo := 0; glo < len(cells); glo += g {
			grp := cells[glo:min(glo+g, len(cells))]
			sums.ReadMany(grp, sbuf[:len(grp)*b])
			if occ {
				for j := 0; j < p.K; j++ {
					c := hasher.Index(j, uint64(i)+1)
					gi := slices.Index(grp, c)
					if gi < 0 {
						continue
					}
					sblk := sbuf[gi*b : (gi+1)*b]
					for t := 0; t < b; t++ {
						sblk[t].Key += ablk[t].Key
						sblk[t].Val += ablk[t].Val
						sblk[t].Pos += ablk[t].Pos
						sblk[t].Flags += ablk[t].Flags
					}
				}
			}
			sums.WriteMany(grp, sbuf[:len(grp)*b])
		}
		for glo := 0; glo < len(hblks); glo += g {
			grp := hblks[glo:min(glo+g, len(hblks))]
			hdrs.ReadMany(grp, hbuf[:len(grp)*b])
			if occ {
				for j := 0; j < p.K; j++ {
					c := hasher.Index(j, uint64(i)+1)
					gi := slices.Index(grp, c/b)
					if gi < 0 {
						continue
					}
					hbuf[gi*b+c%b].Val++                // count
					hbuf[gi*b+c%b].Key += uint64(i) + 1 // keySum (offset keys: key 0 stays distinguishable)
				}
			}
			hdrs.WriteMany(grp, hbuf[:len(grp)*b])
		}
	}
	env.Cache.Free(hbuf)
	env.Cache.Free(sbuf)
	env.Cache.Free(ablk)

	// Peel: private if the whole table fits comfortably in cache,
	// otherwise through the ORAM substrate.
	footprint := m * (cellWords(b) + 2)
	var recovered int
	var err error
	if !p.ForceORAM && footprint <= env.M-4*b {
		recovered, err = peelPrivate(env, sums, hdrs, hasher, m, rCap, out)
	} else {
		recovered, err = peelViaORAM(env, sums, hdrs, hasher, m, rCap, out)
	}
	if err == nil && (recovered != occCount || occCount > rCap) {
		err = fmt.Errorf("%w: recovered %d of %d occupied cells (capacity %d)",
			ErrCompactionFailed, recovered, occCount, rCap)
	}

	// Order restoration: sort the fixed-size output by original position.
	obsort.Bitonic(env, out, obsort.ByPos)

	// Reclaim the table arenas but keep out: it was allocated first, so
	// releasing to its end preserves it.
	env.D.Release(mark + rCap)
	return out, occCount, err
}

// peelPrivate loads the table into Alice's memory, peels it there (no trace
// at all), and writes exactly rCap output blocks.
func peelPrivate(env *extmem.Env, sums, hdrs extmem.Array, h *rng.Hasher, m, rCap int, out extmem.Array) (int, error) {
	b := sums.B()
	w := cellWords(b) - 2
	env.Cache.Acquire(m * (w + 2))
	cells := make([]iblt.Cell, m)
	flat := make([]uint64, m*w)
	for i := range cells {
		cells[i].ValSum = flat[i*w : (i+1)*w]
	}

	kc := env.ScanBatchN(1, m)
	cbuf := env.Cache.Buf(kc * b)
	for lo := 0; lo < m; lo += kc {
		hi := min(lo+kc, m)
		sums.ReadRange(lo, hi, cbuf[:(hi-lo)*b])
		for c := lo; c < hi; c++ {
			encodeBlockWords(cells[c].ValSum, cbuf[(c-lo)*b:(c-lo+1)*b])
		}
	}
	for lo := 0; lo < hdrs.Len(); lo += kc {
		hi := min(lo+kc, hdrs.Len())
		hdrs.ReadRange(lo, hi, cbuf[:(hi-lo)*b])
		for hb := lo; hb < hi; hb++ {
			for t := 0; t < b; t++ {
				c := hb*b + t
				if c >= m {
					break
				}
				cells[c].Count = int64(cbuf[(hb-lo)*b+t].Val)
				cells[c].KeySum = cbuf[(hb-lo)*b+t].Key
			}
		}
	}
	env.Cache.Free(cbuf)

	type rec struct {
		key   uint64
		words []uint64
	}
	var recs []rec
	env.Cache.Acquire(rCap * (w + 1))
	iblt.Peel(iblt.SliceStore(cells), h, 0, false, func(key uint64, val []uint64) {
		v := make([]uint64, len(val))
		copy(v, val)
		if len(recs) < rCap {
			recs = append(recs, rec{key: key - 1, words: v})
		}
	}, nil)

	// Emit exactly rCap blocks: recovered cells then empties, streamed
	// through a vectored sequential writer.
	kw := env.ScanBatchN(1, rCap)
	wbuf := env.Cache.Buf(kw * b)
	wr := extmem.NewSeqWriter(out, 0, wbuf)
	for i := 0; i < rCap; i++ {
		blk := wr.Next()
		if i < len(recs) {
			decodeBlockWords(blk, recs[i].words)
		} else {
			for t := range blk {
				blk[t] = extmem.Element{}
			}
		}
	}
	wr.Flush()
	env.Cache.Free(wbuf)
	env.Cache.Release(rCap * (w + 1))
	env.Cache.Release(m * (w + 2))
	return len(recs), nil
}

// peelViaORAM is Theorem 4's general case: the table cells live behind an
// ORAM, the peeling schedule is fully padded (every pass visits every cell
// with identical operation counts), and recovered pairs go into a second
// ORAM so emission times stay hidden.
func peelViaORAM(env *extmem.Env, sums, hdrs extmem.Array, h *rng.Hasher, m, rCap int, out extmem.Array) (int, error) {
	b := sums.B()
	cw := cellWords(b)
	cb := extmem.CeilDiv(cw, b) // ORAM blocks per cell
	ob := extmem.ElementWords   // ORAM blocks per output block value

	cellRAM, err := oram.New(env, m*cb, oram.Options{})
	if err != nil {
		return 0, err
	}
	outRAM, err := oram.New(env, rCap*ob, oram.Options{})
	if err != nil {
		return 0, err
	}

	// Load the table into the cell ORAM. The direct sums/hdrs reads are
	// chunked run reads (a chunk's cells span at most kc/b+1 header
	// blocks); the ORAM writes dominate the cost regardless.
	words := make([]uint64, cb*b)
	env.Cache.Acquire(cb * b)
	kc := env.ScanBatchN(2, m)
	sb := env.Cache.Buf(kc * b)
	hb := env.Cache.Buf((kc/b + 1) * b)
	for lo := 0; lo < m; lo += kc {
		hi := min(lo+kc, m)
		sums.ReadRange(lo, hi, sb[:(hi-lo)*b])
		h0, h1 := lo/b, (hi-1)/b+1
		hdrs.ReadRange(h0, h1, hb[:(h1-h0)*b])
		for c := lo; c < hi; c++ {
			hdr := hb[(c/b-h0)*b : (c/b-h0+1)*b]
			words[0] = uint64(hdr[c%b].Val)
			words[1] = hdr[c%b].Key
			encodeBlockWords(words[2:2+extmem.ElementWords*b], sb[(c-lo)*b:(c-lo+1)*b])
			for j := 0; j < cb; j++ {
				if err := cellRAM.Write(c*cb+j, words[j*b:(j+1)*b]); err != nil {
					env.Cache.Free(hb)
					env.Cache.Free(sb)
					env.Cache.Release(cb * b)
					return 0, err
				}
			}
		}
	}
	env.Cache.Free(hb)
	env.Cache.Free(sb)

	cs := &oramCells{ram: cellRAM, m: m, cb: cb, b: b, cw: cw}
	emitted := 0
	var oramErr error
	outWords := make([]uint64, ob*b)
	env.Cache.Acquire(ob * b)
	iblt.Peel(cs, h, 0, true, func(key uint64, val []uint64) {
		copy(outWords, val)
		for j := 0; j < ob; j++ {
			var e error
			if emitted < rCap {
				e = outRAM.Write(emitted*ob+j, outWords[j*b:(j+1)*b])
			} else {
				e = outRAM.Dummy()
			}
			if e != nil && oramErr == nil {
				oramErr = e
			}
		}
		emitted++
	}, func() {
		for j := 0; j < ob; j++ {
			if e := outRAM.Dummy(); e != nil && oramErr == nil {
				oramErr = e
			}
		}
	})
	if cs.err != nil && oramErr == nil {
		oramErr = cs.err
	}

	// Dump the output ORAM into the result array, streaming the result
	// blocks through a vectored sequential writer (the ORAM reads keep
	// their own fixed trace).
	kw := env.ScanBatchN(1, rCap)
	wbuf := env.Cache.Buf(kw * b)
	wr := extmem.NewSeqWriter(out, 0, wbuf)
	for i := 0; i < rCap; i++ {
		for j := 0; j < ob; j++ {
			v, e := outRAM.Read(i*ob + j)
			if e != nil && oramErr == nil {
				oramErr = e
			}
			if e == nil {
				copy(outWords[j*b:(j+1)*b], v)
			}
		}
		blk := wr.Next()
		if i < emitted {
			decodeBlockWords(blk, outWords)
		} else {
			for t := range blk {
				blk[t] = extmem.Element{}
			}
		}
	}
	wr.Flush()
	env.Cache.Free(wbuf)
	env.Cache.Release(cb * b)
	env.Cache.Release(ob * b)
	if emitted > rCap {
		emitted = rCap
	}
	return emitted, oramErr
}

// oramCells adapts the cell ORAM to the peeler's CellStore interface with
// fixed per-operation costs.
type oramCells struct {
	ram *oram.ORAM
	m   int
	cb  int
	b   int
	cw  int
	err error
}

func (o *oramCells) Len() int { return o.m }

func (o *oramCells) Load(i int) iblt.Cell {
	words := make([]uint64, o.cb*o.b)
	for j := 0; j < o.cb; j++ {
		v, err := o.ram.Read(i*o.cb + j)
		if err != nil {
			if o.err == nil {
				o.err = err
			}
			return iblt.Cell{ValSum: make([]uint64, o.cw-2)}
		}
		copy(words[j*o.b:(j+1)*o.b], v)
	}
	return iblt.Cell{
		Count:  int64(words[0]),
		KeySum: words[1],
		ValSum: words[2:o.cw],
	}
}

func (o *oramCells) Store(i int, c iblt.Cell) {
	words := make([]uint64, o.cb*o.b)
	words[0] = uint64(c.Count)
	words[1] = c.KeySum
	copy(words[2:o.cw], c.ValSum)
	for j := 0; j < o.cb; j++ {
		if err := o.ram.Write(i*o.cb+j, words[j*o.b:(j+1)*o.b]); err != nil && o.err == nil {
			o.err = err
		}
	}
}

func (o *oramCells) Dummy() {
	for j := 0; j < 2*o.cb; j++ {
		if err := o.ram.Dummy(); err != nil && o.err == nil {
			o.err = err
		}
	}
}

// encodeBlockWords flattens a block's elements into words.
func encodeBlockWords(dst []uint64, blk []extmem.Element) {
	for t, e := range blk {
		dst[t*4+0] = e.Key
		dst[t*4+1] = e.Val
		dst[t*4+2] = e.Pos
		dst[t*4+3] = e.Flags
	}
}

// decodeBlockWords unflattens words into a block's elements.
func decodeBlockWords(blk []extmem.Element, src []uint64) {
	for t := range blk {
		blk[t] = extmem.Element{
			Key:   src[t*4+0],
			Val:   src[t*4+1],
			Pos:   src[t*4+2],
			Flags: src[t*4+3],
		}
	}
}
