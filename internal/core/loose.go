package core

import (
	"errors"
	"fmt"

	"oblivext/internal/extmem"
	"oblivext/internal/obsort"
)

// This file implements Theorem 8: loose compaction of at most R < N/4
// marked blocks into an array of size 5R using O(N/B) I/Os. The algorithm
// runs c0 randomized thinning passes that scatter occupied cells into a
// 4R-cell array C, then repeatedly sorts O(log n)-block regions and keeps
// only their first halves (each region holds at most half its cells of
// survivors w.h.p. — Lemma 7), until the residue is small enough that one
// deterministic sort is linear; the residue compacts into the final R
// cells.

// ErrLooseOverflow reports a low-probability failure: a region held more
// survivors than the halving step can keep (Lemma 7's bad event), or the
// final residue exceeded R. The trace is unchanged by the failure.
var ErrLooseOverflow = errors.New("core: loose compaction overflow")

// LooseParams tunes Theorem 8's constants.
type LooseParams struct {
	// C0 is the number of thinning passes per round (paper: >= 3 for the
	// Lemma 7 analysis; default 4).
	C0 int
	// C1 scales the region size c1·log2(n) (paper: d+2; default 4).
	C1 int
}

func (p *LooseParams) setDefaults() {
	if p.C0 == 0 {
		p.C0 = 4
	}
	if p.C1 == 0 {
		p.C1 = 4
	}
}

// CompactBlocksLoose compacts the occupied block-cells of a — at most rCap
// of them, with rCap <= len/4 — into a fresh array of exactly 5·rCap
// blocks using O(n) I/Os. Order is not preserved (this is the paper's
// loose compaction). Returns the output array and the occupied count.
func CompactBlocksLoose(env *extmem.Env, a extmem.Array, rCap int, p LooseParams) (extmem.Array, int, error) {
	p.setDefaults()
	n := a.Len()
	b := a.B()
	if rCap < 1 {
		rCap = 1
	}
	if n < 8 {
		// Degenerate small case: fall back to a single sort.
		return looseBySort(env, a, rCap)
	}

	mark := env.D.Mark()
	out := env.D.Alloc(5 * rCap)
	c := out.Slice(0, 4*rCap)
	tail := out.Slice(4*rCap, 5*rCap)

	// Zero C.
	zeroArray(env, c)

	// Working copy of A (the halving is destructive).
	work := env.D.Alloc(n)
	occ := 0
	scanCopy(env, a, work, func(_ int, blk []extmem.Element) {
		if PredOccupied(blk) {
			occ++
		}
	})

	var failed error
	if occ > rCap {
		failed = fmt.Errorf("%w: %d occupied cells exceed declared capacity %d", ErrLooseOverflow, occ, rCap)
	}

	// Region size: c1·log2(n) blocks, at least 2 and even.
	g := p.C1 * extmem.CeilLog2(max(2, n))
	if g < 2 {
		g = 2
	}
	g += g % 2

	// Stop halving when one deterministic sort of the residue is linear:
	// with the bitonic realization that is s ~ n/(1+log2^2(nB/M)).
	l := extmem.CeilLog2(max(2, n*b/env.M))
	stop := n / (1 + l*l)
	if stop < g {
		stop = g
	}
	if stop < 4 {
		stop = 4
	}

	s := n
	cur := work
	for s > stop {
		for pass := 0; pass < p.C0; pass++ {
			thinningPass(env, cur.Slice(0, s), c)
		}
		// Region halving: sort each region occupied-first, keep the first
		// half of each.
		ns := 0
		for lo := 0; lo < s; lo += g {
			hi := lo + g
			if hi > s {
				hi = s
			}
			ns += (hi - lo + 1) / 2
		}
		next := env.D.Alloc(ns)
		w := 0
		for lo := 0; lo < s; lo += g {
			hi := lo + g
			if hi > s {
				hi = s
			}
			keep := (hi - lo + 1) / 2
			if err := halveRegion(env, cur.Slice(lo, hi), next.Slice(w, w+keep)); err != nil && failed == nil {
				failed = err
			}
			w += keep
		}
		cur = next
		s = ns
	}

	// Final deterministic compression of the residue into the tail.
	obsort.Bitonic(env, cur.Slice(0, s), blockOccLess)
	wbuf := env.Cache.Buf(env.ScanBatchN(2, tail.Len()) * b)
	wr := extmem.NewSeqWriter(tail, 0, wbuf)
	survivors := 0
	scanReadSync(env, cur.Slice(0, s), func(i int, blk []extmem.Element) {
		if PredOccupied(blk) {
			survivors++
		}
		if i < tail.Len() {
			copy(wr.Next(), blk)
		}
	})
	for i := s; i < tail.Len(); i++ {
		blk := wr.Next()
		for t := range blk {
			blk[t] = extmem.Element{}
		}
	}
	wr.Flush()
	env.Cache.Free(wbuf)
	if survivors > tail.Len() && failed == nil {
		failed = fmt.Errorf("%w: %d survivors exceed tail capacity %d", ErrLooseOverflow, survivors, tail.Len())
	}

	env.D.Release(mark + out.Len())
	return out, occ, failed
}

// ThinningPassForTest exposes one A-to-C thinning pass for the E12
// experiment and external tests.
func ThinningPassForTest(env *extmem.Env, src, dst extmem.Array) { thinningPass(env, src, dst) }

// thinningPass is one A-to-C pass: for every cell of src, draw a uniform
// slot of dst, and move the cell there if the cell is occupied and the slot
// empty — the probe sequence is tape-driven, so the trace is
// data-independent.
//
// The pass runs in windows: w source cells are fetched with one vectored
// read, their w probe slots are drawn from the tape and fetched (distinct
// slots only — a repeated probe reuses the cached copy, preserving the
// scalar loop's sequential move semantics), the transfers happen privately,
// and both sides go back with vectored writes.
func thinningPass(env *extmem.Env, src, dst extmem.Array) {
	b := src.B()
	w := env.ScanBatchN(2, src.Len())
	sbuf := env.Cache.Buf(w * b)
	dbuf := env.Cache.Buf(w * b)
	js := make([]int, w)
	idx := make([]int, 0, w)
	slot := make(map[int]int, w)
	for i0 := 0; i0 < src.Len(); i0 += w {
		cnt := min(w, src.Len()-i0)
		src.ReadRange(i0, i0+cnt, sbuf[:cnt*b])
		idx = idx[:0]
		clear(slot)
		for t := 0; t < cnt; t++ {
			j := env.Tape.IntN(dst.Len())
			js[t] = j
			if _, seen := slot[j]; !seen {
				slot[j] = len(idx)
				idx = append(idx, j)
			}
		}
		dst.ReadMany(idx, dbuf[:len(idx)*b])
		for t := 0; t < cnt; t++ {
			sblk := sbuf[t*b : (t+1)*b]
			dblk := dbuf[slot[js[t]]*b : (slot[js[t]]+1)*b]
			if PredOccupied(sblk) && !PredOccupied(dblk) {
				copy(dblk, sblk)
				for e := range sblk {
					sblk[e] = extmem.Element{}
				}
			}
		}
		dst.WriteMany(idx, dbuf[:len(idx)*b])
		src.WriteRange(i0, i0+cnt, sbuf[:cnt*b])
	}
	env.Cache.Free(dbuf)
	env.Cache.Free(sbuf)
}

// blockOccLess orders elements so that blocks of occupied cells precede
// empty cells; within the occupied prefix the order is irrelevant for
// loose compaction, but Key order keeps the sort total.
func blockOccLess(a, b extmem.Element) bool { return a.Less(b) }

// halveRegion sorts one region occupied-first and writes its first half to
// dst, reporting overflow if more than half the region survived.
func halveRegion(env *extmem.Env, region, dst extmem.Array) error {
	b := region.B()
	g := region.Len()
	if g*b <= env.M-env.B() {
		buf := env.Cache.Buf(g * b)
		region.ReadRange(0, g, buf)
		// Private block-level sort: occupied cells first. Order within a
		// block must be preserved, so sort at block granularity.
		type cell struct {
			occ  bool
			data []extmem.Element
		}
		cells := make([]cell, g)
		for i := range cells {
			d := buf[i*b : (i+1)*b]
			cells[i] = cell{occ: PredOccupied(d), data: d}
		}
		surv := 0
		wbuf := env.Cache.Buf(env.ScanBatchN(1, dst.Len()) * b)
		wr := extmem.NewSeqWriter(dst, 0, wbuf)
		for _, cl := range cells {
			if cl.occ && wr.Pos() < dst.Len() {
				copy(wr.Next(), cl.data)
			}
			if cl.occ {
				surv++
			}
		}
		for wr.Pos() < dst.Len() {
			blk := wr.Next()
			for t := range blk {
				blk[t] = extmem.Element{}
			}
		}
		wr.Flush()
		env.Cache.Free(wbuf)
		env.Cache.Free(buf)
		if surv > dst.Len() {
			return fmt.Errorf("%w: region with %d survivors > %d", ErrLooseOverflow, surv, dst.Len())
		}
		return nil
	}
	// Region exceeds cache (no wide-block assumption): sort it obliviously.
	obsort.Bitonic(env, region, blockOccLess)
	wbuf := env.Cache.Buf(env.ScanBatchN(2, dst.Len()) * b)
	wr := extmem.NewSeqWriter(dst, 0, wbuf)
	surv := 0
	scanReadSync(env, region, func(i int, blk []extmem.Element) {
		if PredOccupied(blk) {
			surv++
		}
		if i < dst.Len() {
			copy(wr.Next(), blk)
		}
	})
	wr.Flush()
	env.Cache.Free(wbuf)
	if surv > dst.Len() {
		return fmt.Errorf("%w: region with %d survivors > %d", ErrLooseOverflow, surv, dst.Len())
	}
	return nil
}

// looseBySort is the tiny-input fallback: one deterministic sort.
func looseBySort(env *extmem.Env, a extmem.Array, rCap int) (extmem.Array, int, error) {
	n := a.Len()
	mark := env.D.Mark()
	out := env.D.Alloc(5 * rCap)
	work := env.D.Alloc(n)
	occ := 0
	scanCopy(env, a, work, func(_ int, blk []extmem.Element) {
		if PredOccupied(blk) {
			occ++
		}
	})
	obsort.Bitonic(env, work, blockOccLess)
	cp := min(n, out.Len())
	scanCopy(env, work.Slice(0, cp), out.Slice(0, cp), func(_ int, blk []extmem.Element) {})
	if cp < out.Len() {
		zeroArray(env, out.Slice(cp, out.Len()))
	}
	var err error
	if occ > rCap {
		err = fmt.Errorf("%w: %d occupied > capacity %d", ErrLooseOverflow, occ, rCap)
	}
	env.D.Release(mark + out.Len())
	return out, occ, err
}
