package core

import (
	"errors"
	"fmt"

	"oblivext/internal/extmem"
	"oblivext/internal/obsort"
)

// This file implements Theorem 8: loose compaction of at most R < N/4
// marked blocks into an array of size 5R using O(N/B) I/Os. The algorithm
// runs c0 randomized thinning passes that scatter occupied cells into a
// 4R-cell array C, then repeatedly sorts O(log n)-block regions and keeps
// only their first halves (each region holds at most half its cells of
// survivors w.h.p. — Lemma 7), until the residue is small enough that one
// deterministic sort is linear; the residue compacts into the final R
// cells.

// ErrLooseOverflow reports a low-probability failure: a region held more
// survivors than the halving step can keep (Lemma 7's bad event), or the
// final residue exceeded R. The trace is unchanged by the failure.
var ErrLooseOverflow = errors.New("core: loose compaction overflow")

// LooseParams tunes Theorem 8's constants.
type LooseParams struct {
	// C0 is the number of thinning passes per round (paper: >= 3 for the
	// Lemma 7 analysis; default 4).
	C0 int
	// C1 scales the region size c1·log2(n) (paper: d+2; default 4).
	C1 int
}

func (p *LooseParams) setDefaults() {
	if p.C0 == 0 {
		p.C0 = 4
	}
	if p.C1 == 0 {
		p.C1 = 4
	}
}

// CompactBlocksLoose compacts the occupied block-cells of a — at most rCap
// of them, with rCap <= len/4 — into a fresh array of exactly 5·rCap
// blocks using O(n) I/Os. Order is not preserved (this is the paper's
// loose compaction). Returns the output array and the occupied count.
func CompactBlocksLoose(env *extmem.Env, a extmem.Array, rCap int, p LooseParams) (extmem.Array, int, error) {
	p.setDefaults()
	n := a.Len()
	b := a.B()
	if rCap < 1 {
		rCap = 1
	}
	if n < 8 {
		// Degenerate small case: fall back to a single sort.
		return looseBySort(env, a, rCap)
	}

	mark := env.D.Mark()
	out := env.D.Alloc(5 * rCap)
	c := out.Slice(0, 4*rCap)
	tail := out.Slice(4*rCap, 5*rCap)

	// Zero C.
	blk := env.Cache.Buf(b)
	for i := range blk {
		blk[i] = extmem.Element{}
	}
	for i := 0; i < c.Len(); i++ {
		c.Write(i, blk)
	}

	// Working copy of A (the halving is destructive).
	work := env.D.Alloc(n)
	occ := 0
	for i := 0; i < n; i++ {
		a.Read(i, blk)
		if PredOccupied(blk) {
			occ++
		}
		work.Write(i, blk)
	}
	env.Cache.Free(blk)

	var failed error
	if occ > rCap {
		failed = fmt.Errorf("%w: %d occupied cells exceed declared capacity %d", ErrLooseOverflow, occ, rCap)
	}

	// Region size: c1·log2(n) blocks, at least 2 and even.
	g := p.C1 * extmem.CeilLog2(max(2, n))
	if g < 2 {
		g = 2
	}
	g += g % 2

	// Stop halving when one deterministic sort of the residue is linear:
	// with the bitonic realization that is s ~ n/(1+log2^2(nB/M)).
	l := extmem.CeilLog2(max(2, n*b/env.M))
	stop := n / (1 + l*l)
	if stop < g {
		stop = g
	}
	if stop < 4 {
		stop = 4
	}

	s := n
	cur := work
	for s > stop {
		for pass := 0; pass < p.C0; pass++ {
			thinningPass(env, cur.Slice(0, s), c)
		}
		// Region halving: sort each region occupied-first, keep the first
		// half of each.
		ns := 0
		for lo := 0; lo < s; lo += g {
			hi := lo + g
			if hi > s {
				hi = s
			}
			ns += (hi - lo + 1) / 2
		}
		next := env.D.Alloc(ns)
		w := 0
		for lo := 0; lo < s; lo += g {
			hi := lo + g
			if hi > s {
				hi = s
			}
			keep := (hi - lo + 1) / 2
			if err := halveRegion(env, cur.Slice(lo, hi), next.Slice(w, w+keep)); err != nil && failed == nil {
				failed = err
			}
			w += keep
		}
		cur = next
		s = ns
	}

	// Final deterministic compression of the residue into the tail.
	obsort.Bitonic(env, cur.Slice(0, s), blockOccLess)
	blk = env.Cache.Buf(b)
	survivors := 0
	for i := 0; i < s; i++ {
		cur.Read(i, blk)
		if PredOccupied(blk) {
			survivors++
		}
		if i < tail.Len() {
			tail.Write(i, blk)
		}
	}
	for i := s; i < tail.Len(); i++ {
		for t := range blk {
			blk[t] = extmem.Element{}
		}
		tail.Write(i, blk)
	}
	env.Cache.Free(blk)
	if survivors > tail.Len() && failed == nil {
		failed = fmt.Errorf("%w: %d survivors exceed tail capacity %d", ErrLooseOverflow, survivors, tail.Len())
	}

	env.D.Release(mark + out.Len())
	return out, occ, failed
}

// ThinningPassForTest exposes one A-to-C thinning pass for the E12
// experiment and external tests.
func ThinningPassForTest(env *extmem.Env, src, dst extmem.Array) { thinningPass(env, src, dst) }

// thinningPass is one A-to-C pass: for every cell of src, draw a uniform
// slot of dst, and move the cell there if the cell is occupied and the slot
// empty — writing both locations back in all cases so the trace is a
// deterministic scan with one tape-driven random probe per cell.
func thinningPass(env *extmem.Env, src, dst extmem.Array) {
	b := src.B()
	sblk := env.Cache.Buf(b)
	dblk := env.Cache.Buf(b)
	for i := 0; i < src.Len(); i++ {
		src.Read(i, sblk)
		j := env.Tape.IntN(dst.Len())
		dst.Read(j, dblk)
		if PredOccupied(sblk) && !PredOccupied(dblk) {
			copy(dblk, sblk)
			for t := range sblk {
				sblk[t] = extmem.Element{}
			}
		}
		dst.Write(j, dblk)
		src.Write(i, sblk)
	}
	env.Cache.Free(dblk)
	env.Cache.Free(sblk)
}

// blockOccLess orders elements so that blocks of occupied cells precede
// empty cells; within the occupied prefix the order is irrelevant for
// loose compaction, but Key order keeps the sort total.
func blockOccLess(a, b extmem.Element) bool { return a.Less(b) }

// halveRegion sorts one region occupied-first and writes its first half to
// dst, reporting overflow if more than half the region survived.
func halveRegion(env *extmem.Env, region, dst extmem.Array) error {
	b := region.B()
	g := region.Len()
	if g*b <= env.M-env.B() {
		buf := env.Cache.Buf(g * b)
		for i := 0; i < g; i++ {
			region.Read(i, buf[i*b:(i+1)*b])
		}
		// Private block-level sort: occupied cells first. Order within a
		// block must be preserved, so sort at block granularity.
		type cell struct {
			occ  bool
			data []extmem.Element
		}
		cells := make([]cell, g)
		for i := range cells {
			d := buf[i*b : (i+1)*b]
			cells[i] = cell{occ: PredOccupied(d), data: d}
		}
		surv := 0
		wr := env.Cache.Buf(b)
		w := 0
		for _, cl := range cells {
			if cl.occ && w < dst.Len() {
				copy(wr, cl.data)
				dst.Write(w, wr)
				w++
			}
			if cl.occ {
				surv++
			}
		}
		for ; w < dst.Len(); w++ {
			for t := range wr {
				wr[t] = extmem.Element{}
			}
			dst.Write(w, wr)
		}
		env.Cache.Free(wr)
		env.Cache.Free(buf)
		if surv > dst.Len() {
			return fmt.Errorf("%w: region with %d survivors > %d", ErrLooseOverflow, surv, dst.Len())
		}
		return nil
	}
	// Region exceeds cache (no wide-block assumption): sort it obliviously.
	obsort.Bitonic(env, region, blockOccLess)
	blk := env.Cache.Buf(b)
	surv := 0
	for i := 0; i < g; i++ {
		region.Read(i, blk)
		occ := PredOccupied(blk)
		if occ {
			surv++
		}
		if i < dst.Len() {
			dst.Write(i, blk)
		}
	}
	env.Cache.Free(blk)
	if surv > dst.Len() {
		return fmt.Errorf("%w: region with %d survivors > %d", ErrLooseOverflow, surv, dst.Len())
	}
	return nil
}

// looseBySort is the tiny-input fallback: one deterministic sort.
func looseBySort(env *extmem.Env, a extmem.Array, rCap int) (extmem.Array, int, error) {
	n := a.Len()
	b := a.B()
	mark := env.D.Mark()
	out := env.D.Alloc(5 * rCap)
	work := env.D.Alloc(n)
	blk := env.Cache.Buf(b)
	occ := 0
	for i := 0; i < n; i++ {
		a.Read(i, blk)
		if PredOccupied(blk) {
			occ++
		}
		work.Write(i, blk)
	}
	obsort.Bitonic(env, work, blockOccLess)
	for i := 0; i < out.Len(); i++ {
		if i < n {
			work.Read(i, blk)
		} else {
			for t := range blk {
				blk[t] = extmem.Element{}
			}
		}
		out.Write(i, blk)
	}
	env.Cache.Free(blk)
	var err error
	if occ > rCap {
		err = fmt.Errorf("%w: %d occupied > capacity %d", ErrLooseOverflow, occ, rCap)
	}
	env.D.Release(mark + out.Len())
	return out, occ, err
}
