package core

import (
	"math/rand/v2"
	"testing"

	"oblivext/internal/extmem"
	"oblivext/internal/trace"
)

func logStarCheck(t *testing.T, a extmem.Array, out extmem.Array, rCap int) {
	t.Helper()
	want := map[uint64]bool{}
	for _, e := range readElems(a) {
		if e.Occupied() {
			want[e.Key] = true
		}
	}
	got := map[uint64]bool{}
	for _, e := range readElems(out) {
		if e.Occupied() {
			if got[e.Key] {
				t.Fatalf("duplicate key %d in log* output", e.Key)
			}
			got[e.Key] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%d keys out, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("key %d lost", k)
		}
	}
	if out.Len() != 4*rCap+extmem.CeilDiv(rCap, 4) {
		t.Fatalf("output size %d, want 4.25R = %d", out.Len(), 4*rCap+extmem.CeilDiv(rCap, 4))
	}
}

func TestLogStarCorrectness(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 4))
	for _, cfg := range []struct{ n, rCap, occ int }{
		{64, 16, 10}, {128, 32, 32}, {256, 32, 20}, {8, 2, 1}, {100, 25, 0},
	} {
		env := newTestEnv(16*cfg.n, 4, 1024, uint64(cfg.n))
		a := env.D.Alloc(cfg.n)
		buildSparseCells(a, r.Perm(cfg.n)[:cfg.occ])
		out, occ, _, err := CompactBlocksLogStar(env, a, cfg.rCap, LogStarParams{})
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if occ != cfg.occ {
			t.Fatalf("cfg %+v: occ=%d", cfg, occ)
		}
		if cfg.n >= 16 {
			logStarCheck(t, a, out, cfg.rCap)
		}
	}
}

func TestLogStarForcedPhases(t *testing.T) {
	// Exercise the tower machinery (thinning-out + region compaction).
	r := rand.New(rand.NewPCG(5, 6))
	env := newTestEnv(1<<14, 4, 1024, 31)
	a := env.D.Alloc(256)
	buildSparseCells(a, r.Perm(256)[:40])
	out, occ, phases, err := CompactBlocksLogStar(env, a, 64, LogStarParams{ForcePhases: 2})
	if err != nil {
		t.Fatal(err)
	}
	if phases != 2 {
		t.Fatalf("phases = %d, want forced 2", phases)
	}
	if occ != 40 {
		t.Fatalf("occ = %d", occ)
	}
	logStarCheck(t, a, out, 64)
}

func TestLogStarPhaseCountCollapsesAtPracticalScale(t *testing.T) {
	// The tower threshold r/t_1^4 <= n/log²n holds for every n <= 2^32, so
	// the phase count is 0 — the log* behaviour the theorem promises.
	env := newTestEnv(1<<13, 4, 1024, 3)
	a := env.D.Alloc(512)
	r := rand.New(rand.NewPCG(1, 2))
	buildSparseCells(a, r.Perm(512)[:100])
	_, _, phases, err := CompactBlocksLogStar(env, a, 128, LogStarParams{})
	if err != nil {
		t.Fatal(err)
	}
	if phases != 0 {
		t.Fatalf("phases = %d at practical scale, want 0", phases)
	}
}

func TestLogStarOblivious(t *testing.T) {
	r := rand.New(rand.NewPCG(8, 8))
	run := func(occ []int) trace.Summary {
		return traceOf(t, 1<<13, 4, 1024, 55, func(env *extmem.Env) {
			a := env.D.Alloc(128)
			buildSparseCells(a, occ)
			CompactBlocksLogStar(env, a, 32, LogStarParams{ForcePhases: 1})
		})
	}
	s1 := run(nil)
	s2 := run(r.Perm(128)[:32])
	s3 := run([]int{0, 1, 2})
	if !s1.Equal(s2) || !s1.Equal(s3) {
		t.Fatalf("log* compaction trace depends on data: %v %v %v", s1, s2, s3)
	}
}

func TestLogStarNearLinearIO(t *testing.T) {
	io := func(n int) float64 {
		env := newTestEnv(16*n, 8, 2048, uint64(n))
		a := env.D.Alloc(n)
		r := rand.New(rand.NewPCG(uint64(n), 7))
		buildSparseCells(a, r.Perm(n)[:n/8])
		env.D.ResetStats()
		if _, _, _, err := CompactBlocksLogStar(env, a, n/4, LogStarParams{}); err != nil {
			t.Fatal(err)
		}
		return float64(env.D.Stats().Total()) / float64(n)
	}
	small, large := io(256), io(2048)
	if large > small*1.8 {
		t.Fatalf("log* compaction I/O per block grew from %.1f to %.1f", small, large)
	}
}
