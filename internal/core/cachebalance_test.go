package core

import (
	"errors"
	"testing"

	"oblivext/internal/extmem"
)

// S1 regression: every declared-failure return must leave the private-cache
// accountant exactly where it found it. A leak here compounds — the next
// pass sees less free cache, its ScanBatch shrinks, and after enough failed
// calls the one-block grace kicks in with an overdrawn accountant.
func assertCacheBalanced(t *testing.T, env *extmem.Env, name string, wantErr error, call func() error) {
	t.Helper()
	before := env.Cache.Used()
	err := call()
	if err == nil {
		t.Fatalf("%s: expected a declared failure, got nil", name)
	}
	if wantErr != nil && !errors.Is(err, wantErr) {
		t.Fatalf("%s: error %v, want %v", name, err, wantErr)
	}
	if after := env.Cache.Used(); after != before {
		t.Errorf("%s: cache checkout leaked across the error return: %d used before, %d after", name, before, after)
	}
}

func TestErrorPathsRestoreCacheCheckout(t *testing.T) {
	const blocks, b, m = 32, 4, 64

	// Quantiles: q exceeding the occupied count is a declared failure.
	{
		env := newTestEnv(blocks, b, m, 11)
		a := env.D.Alloc(blocks)
		elems := make([]extmem.Element, 4)
		for i := range elems {
			elems[i] = extmem.Element{Key: uint64(i + 1), Pos: uint64(i), Flags: extmem.FlagOccupied}
		}
		writeElems(a, elems)
		assertCacheBalanced(t, env, "Quantiles(q>N)", ErrQuantilesFailed, func() error {
			_, err := Quantiles(env, a, 8)
			return err
		})
	}

	// Quantiles: q blowing the private-memory budget fails before any pass.
	{
		env := newTestEnv(blocks, b, m, 12)
		a := env.D.Alloc(blocks)
		writeElems(a, nil)
		assertCacheBalanced(t, env, "Quantiles(q too large for M)", ErrQuantilesFailed, func() error {
			_, err := Quantiles(env, a, m)
			return err
		})
	}

	// Select: rank out of range is a declared failure.
	{
		env := newTestEnv(blocks, b, m, 13)
		a := env.D.Alloc(blocks)
		elems := make([]extmem.Element, 8)
		for i := range elems {
			elems[i] = extmem.Element{Key: uint64(i + 1), Pos: uint64(i), Flags: extmem.FlagOccupied}
		}
		writeElems(a, elems)
		assertCacheBalanced(t, env, "Select(k>N)", ErrSelectFailed, func() error {
			_, err := Select(env, a, 100)
			return err
		})
	}

	// Tight compaction: more marked cells than the declared capacity.
	{
		env := newTestEnv(blocks, b, m, 14)
		a := env.D.Alloc(blocks)
		elems := make([]extmem.Element, blocks*b)
		for i := range elems {
			elems[i] = extmem.Element{Key: uint64(i + 1), Pos: uint64(i),
				Flags: extmem.FlagOccupied | extmem.FlagMarked}
		}
		writeElems(a, elems)
		assertCacheBalanced(t, env, "CompactMarkedTight(cap too small)", nil, func() error {
			_, _, err := CompactMarkedTight(env, a, 2)
			return err
		})
	}

	// Loose compaction: occupied cells exceeding the declared capacity.
	{
		env := newTestEnv(blocks, b, m, 15)
		a := env.D.Alloc(blocks)
		elems := make([]extmem.Element, blocks*b)
		for i := range elems {
			elems[i] = extmem.Element{Key: uint64(i + 1), Pos: uint64(i), Flags: extmem.FlagOccupied}
		}
		writeElems(a, elems)
		assertCacheBalanced(t, env, "CompactBlocksLoose(cap too small)", ErrLooseOverflow, func() error {
			_, _, err := CompactBlocksLoose(env, a, 2, LooseParams{})
			return err
		})
	}
}
