package core

import (
	"errors"
	"fmt"

	"oblivext/internal/extmem"
)

// This file implements Theorem 9 (Appendix B): loose compaction of at most
// R < N/4 marked blocks into an array of size 4.25R using
// O((N/B)·log*(N/B)) I/Os, with neither the wide-block nor the tall-cache
// assumption. The algorithm follows Matias–Vishkin-style doubly-logarithmic
// progress: after c0 initial thinning passes into the first 4R cells of the
// output, phase i assumes at most R/t_i^4 survivors (t_1 = 4,
// t_{i+1} = 2^{t_i} — the tower-of-twos, so there are O(log* n) phases),
// runs a thinning-out step through an auxiliary array of R/t_i cells
// (growing A), compacts regions of 2^{4t_i} cells, and thins the compacted
// region prefixes into the output. Once survivors drop below n/log²n the
// remainder compacts tightly into the reserved last 0.25R cells.
//
// At any practical scale the tower collapses the loop after one or two
// phases — exactly the log* behaviour the theorem promises. The paper's
// proof constant c0 = 23 makes the initial passes dominate; it is
// configurable and E6 reports both settings.

// ErrLogStarOverflow reports the low-probability failure of Theorem 9's
// final compaction (more survivors than the reserved 0.25R cells).
var ErrLogStarOverflow = errors.New("core: log-star compaction overflow")

// LogStarParams tunes Theorem 9's constants.
type LogStarParams struct {
	// C0 is the number of initial thinning passes (paper's proof uses 23;
	// default 8, and E6 measures both).
	C0 int
	// N0 is the small-input cutoff below which one deterministic sort
	// finishes the job. Default 16.
	N0 int
	// MaxPhases bounds the tower loop (safety; the tower exits by itself).
	MaxPhases int
	// ForcePhases overrides the survivor-threshold test for that many
	// phases. At any practical n the tower exits immediately (r/t_1^4 is
	// already below n/log²n), so tests use this to exercise the
	// thinning-out and region-compaction machinery.
	ForcePhases int
}

func (p *LogStarParams) setDefaults() {
	if p.C0 == 0 {
		p.C0 = 8
	}
	if p.N0 == 0 {
		p.N0 = 16
	}
	if p.MaxPhases == 0 {
		p.MaxPhases = 5
	}
}

// CompactBlocksLogStar compacts the occupied block-cells of a — at most
// rCap of them, rCap <= len/4 — into a fresh array of exactly
// ceil(4.25·rCap) blocks. Order is not preserved. It returns the output,
// the occupied count, and the number of tower phases executed.
func CompactBlocksLogStar(env *extmem.Env, a extmem.Array, rCap int, p LogStarParams) (extmem.Array, int, int, error) {
	p.setDefaults()
	n := a.Len()
	b := a.B()
	if rCap < 1 {
		rCap = 1
	}
	outLen := 4*rCap + extmem.CeilDiv(rCap, 4)

	if n < p.N0 {
		out, occ, err := looseBySort(env, a, rCap)
		// Reshape to the 4.25R contract: looseBySort returns 5R; slice.
		if errors.Is(err, ErrLooseOverflow) {
			err = fmt.Errorf("%w: %v", ErrLogStarOverflow, err)
		}
		return out.Slice(0, min(outLen, out.Len())), occ, 0, err
	}

	mark := env.D.Mark()
	out := env.D.Alloc(outLen)
	d4 := out.Slice(0, 4*rCap)
	tail := out.Slice(4*rCap, outLen)

	blk := env.Cache.Buf(b)
	for i := range blk {
		blk[i] = extmem.Element{}
	}
	for i := 0; i < out.Len(); i++ {
		out.Write(i, blk)
	}

	// Working copy (thinning empties source cells).
	work := env.D.Alloc(n)
	occ := 0
	for i := 0; i < n; i++ {
		a.Read(i, blk)
		if PredOccupied(blk) {
			occ++
		}
		work.Write(i, blk)
	}
	env.Cache.Free(blk)
	var failed error
	if occ > rCap {
		failed = fmt.Errorf("%w: %d occupied cells exceed capacity %d", ErrLogStarOverflow, occ, rCap)
	}

	for pass := 0; pass < p.C0; pass++ {
		thinningPass(env, work, d4)
	}

	// Tower phases.
	t := 4
	phases := 0
	logn := extmem.CeilLog2(max(2, n))
	cur := work
	for phases < p.MaxPhases {
		// Final-phase test: survivors <= rCap/t^4 vs n/log²n. Once t
		// reaches 256, t^4 exceeds 2^32 and the quotient is zero for any
		// real capacity (also guarding the tower against overflow).
		below := t >= 256
		if !below {
			below = rCap/(t*t*t*t) <= max(1, n/(logn*logn))
		}
		if phases >= p.ForcePhases && below {
			break
		}
		phases++
		// Thinning-out: two A-to-Caux passes, t Caux-to-D passes, grow A.
		cauxLen := max(1, rCap/t)
		caux := env.D.Alloc(cauxLen)
		zeroArray(env, caux)
		thinningPass(env, cur, caux)
		thinningPass(env, cur, caux)
		for j := 0; j < t; j++ {
			thinningPass(env, caux, d4)
		}
		grown := env.D.Alloc(cur.Len() + cauxLen)
		copyArray(env, cur, grown.Slice(0, cur.Len()))
		copyArray(env, caux, grown.Slice(cur.Len(), grown.Len()))
		cur = grown

		// Region compaction: compact each 2^{4t}-cell region in place and
		// thin its prefix into D.
		regionSize := 1 << min(4*t, 30)
		if regionSize > cur.Len() {
			regionSize = cur.Len()
		}
		for lo := 0; lo < cur.Len(); lo += regionSize {
			hi := min(lo+regionSize, cur.Len())
			region := cur.Slice(lo, hi)
			CompactBlocksTight(env, region, PredOccupied, 0)
			prefix := region.Slice(0, min(rCap, region.Len()))
			for j := 0; j < t*t; j++ {
				thinningPass(env, prefix, d4)
			}
		}
		// Tower step (guarded against overflow; the loop exits well
		// before t overflows in any real configuration).
		if t >= 30 {
			t = 1 << 30
		} else {
			t = 1 << t
		}
	}

	// Final deterministic compaction of the survivors into the tail.
	blk = env.Cache.Buf(b)
	for i := 0; i < cur.Len(); i++ {
		cur.Read(i, blk)
		occb := PredOccupied(blk)
		for tt := range blk {
			if occb {
				blk[tt].Flags |= extmem.FlagMarked
			} else {
				blk[tt].Flags &^= extmem.FlagMarked
			}
		}
		cur.Write(i, blk)
	}
	env.Cache.Free(blk)
	fin, survivors, err := CompactMarkedTight(env, cur, tail.Len())
	if err != nil && failed == nil {
		failed = fmt.Errorf("%w: final compaction: %v", ErrLogStarOverflow, err)
	}
	if int(survivors) > tail.Len()*b && failed == nil {
		failed = fmt.Errorf("%w: %d survivor elements exceed reserved tail", ErrLogStarOverflow, survivors)
	}
	copyArray(env, fin, tail)

	env.D.Release(mark + out.Len())
	return out, occ, phases, failed
}
