package core

import (
	"errors"
	"fmt"
	"math"

	"oblivext/internal/extmem"
	"oblivext/internal/obsort"
	"oblivext/internal/par"
)

// This file implements §5 / Theorem 21: randomized data-oblivious sorting
// with O((N/B)·log_{M/B}(N/B)) I/Os. One level of the recursion:
//
//  1. q = (M/B)^{1/4} quantiles split the input into q+1 balanced buckets
//     (Theorem 17); balance is exact because the splitters carry position
//     tie-breaks, so duplicate keys never skew a bucket.
//  2. A multi-way consolidation pass (§5) rewrites the array into
//     monochromatic full-or-empty blocks.
//  3. Shuffle-and-deal: a block-level Fisher–Yates shuffle (the "shuffle",
//     whose swaps come from the tape, not the data) followed by batched
//     dealing — read (M/B)^{3/4} blocks, then write a fixed quota of blocks
//     per color, padding with empties (Lemma 18 / Corollary 19 bound the
//     overflow probability).
//  4. Each color array is loose-compacted (Theorem 8) to O(N/q) size and
//     sorted recursively.
//  5. Data-oblivious failure sweeping: whether or not any recursive call
//     failed, the sweep compacts the (possibly empty) set of failed-bucket
//     cells with the butterfly network (Theorem 6), sorts them
//     deterministically (Lemma 2), routes them back with the expansion
//     network, and merges — a fixed trace that repairs up to a capD-sized
//     failure set.
//
// The top-level Sort finishes with a tight order-preserving compaction
// (Theorem 6), so the array ends with all occupied elements sorted in a
// tight prefix.

// ErrSortFailed reports that the top-level pipeline failed beyond what
// failure sweeping could repair (probability 1/(N/B)^d).
var ErrSortFailed = errors.New("core: oblivious sort failed")

// SortParams tunes §5's constants.
type SortParams struct {
	// DealC is the c of Lemma 18: blocks written per color per deal batch,
	// times ceil(sqrt(M/B)). Default 5 (which also keeps loose compaction's
	// occupancy under 1/4).
	DealC int
	// MaxDepth bounds the recursion as a safety net; deeper levels fall
	// back to the deterministic sort. Default 12.
	MaxDepth int
	// Loose passes through Theorem 8's constants.
	Loose LooseParams
}

func (p *SortParams) setDefaults() {
	if p.DealC == 0 {
		p.DealC = 5
	}
	if p.MaxDepth == 0 {
		p.MaxDepth = 12
	}
}

// Sort sorts the occupied elements of a in place by (Key, Pos): after it
// returns, the occupied elements form a tight sorted prefix and all other
// cells are empty. Occupied elements must have distinct (Key, Pos) pairs
// (give each element its original index as Pos). The trace depends only on
// (len, B, M, N_occupied) and the tape.
func Sort(env *extmem.Env, a extmem.Array, p SortParams) error {
	p.setDefaults()
	n := a.Len()
	if n == 0 {
		return nil
	}
	mark := env.D.Mark()
	defer env.D.Release(mark)

	res, ok := sortPadded(env, a, p, 0)
	if !ok {
		return fmt.Errorf("%w: top-level pipeline failure", ErrSortFailed)
	}

	// Tight order-preserving compaction (Theorem 6) back into a.
	sp := env.Obs.Start("final-compact")
	defer env.Obs.End(sp)
	b := a.B()
	k := env.ScanBatchN(1, res.Len())
	buf := env.Cache.Buf(k * b)
	for lo := 0; lo < res.Len(); lo += k {
		hi := min(lo+k, res.Len())
		res.ReadRange(lo, hi, buf[:(hi-lo)*b])
		parCells(env, (hi-lo)*b, func(plo, phi int) {
			for t := plo; t < phi; t++ {
				if buf[t].Occupied() {
					buf[t].Flags |= extmem.FlagMarked
				} else {
					buf[t].Flags &^= extmem.FlagMarked
				}
			}
		})
		res.WriteRange(lo, hi, buf[:(hi-lo)*b])
	}
	env.Cache.Free(buf)
	cons, _ := Consolidate(env, res)
	CompactBlocksTight(env, cons, PredOccupied, 0)
	k = env.ScanBatchN(1, n)
	buf = env.Cache.Buf(k * b)
	for lo := 0; lo < n; lo += k {
		hi := min(lo+k, n)
		cl := max(lo, min(hi, cons.Len())) // read [lo, cl) from cons, zero the rest
		if lo < cl {
			cons.ReadRange(lo, cl, buf[:(cl-lo)*b])
		}
		for t := (cl - lo) * b; t < (hi-lo)*b; t++ {
			buf[t] = extmem.Element{}
		}
		parCells(env, (hi-lo)*b, func(plo, phi int) {
			for t := plo; t < phi; t++ {
				buf[t].Flags &^= extmem.FlagMarked
				buf[t].SetCellDest(0)
				buf[t].SetColor(0)
			}
		})
		a.WriteRange(lo, hi, buf[:(hi-lo)*b])
	}
	env.Cache.Free(buf)
	return nil
}

// RandomizedSorter adapts Sort to the obsort.Sorter interface used by the
// ORAM rebuilds (E10). The less argument must order by the canonical
// occupied-first (Key, Pos) relation — which every rebuild sort does; the
// randomized pipeline's samplers assume that order internally.
func RandomizedSorter(env *extmem.Env, a extmem.Array, less obsort.Less) {
	// The randomized sort is padded (empties sink) and total on (Key, Pos),
	// matching obsort.ByKey semantics.
	_ = less
	if err := Sort(env, a, SortParams{}); err != nil {
		panic(err)
	}
}

// sortPadded sorts the occupied elements of a into a padded result array
// (occupied ascending, empties interspersed region-wise). It returns the
// result array and whether this level succeeded; on ok=false the contents
// are garbage but the trace is unchanged.
func sortPadded(env *extmem.Env, a extmem.Array, p SortParams, depth int) (extmem.Array, bool) {
	n := a.Len()
	b := a.B()
	m := env.MBlocks()

	lvl := env.Obs.Start("randomized-level")
	lvl.SetAttrInt("depth", int64(depth))
	lvl.SetAttrInt("blocks", int64(n))
	defer env.Obs.End(lvl)

	// Count occupied elements (public: part of the problem size). Each
	// worker counts a disjoint range into its own slot; the serial sum is
	// order-independent, so the total matches the scalar loop exactly.
	count := env.Obs.Start("count-occupied")
	k := env.ScanBatchN(1, n)
	buf := env.Cache.Buf(k * b)
	var nOcc int64
	partial := make([]int64, env.WorkerCount())
	for lo := 0; lo < n; lo += k {
		hi := min(lo+k, n)
		a.ReadRange(lo, hi, buf[:(hi-lo)*b])
		ne := (hi - lo) * b
		pw := env.WorkerCount()
		if ne < parMinCells {
			pw = 1
		}
		par.ForWorker(pw, ne, func(wk, plo, phi int) {
			var c int64
			for _, e := range buf[plo:phi] {
				if e.Occupied() {
					c++
				}
			}
			partial[wk] += c
		})
	}
	for _, c := range partial {
		nOcc += c
	}
	env.Cache.Free(buf)
	env.Obs.End(count)

	q := int(math.Floor(math.Pow(float64(m), 0.25)))
	if int(nOcc) <= env.M/2 {
		return sortPrivate(env, a), true
	}
	if q < 1 || depth >= p.MaxDepth {
		// Tiny-cache or depth-limit fallback: the deterministic oblivious
		// sort of Lemma 2.
		out := env.D.Alloc(n)
		copyArray(env, a, out)
		obsort.Bitonic(env, out, obsort.ByKey)
		return out, true
	}

	ok := true

	// Step 1: quantile splitters.
	spq := env.Obs.Start("quantile-splitters")
	splitters, err := Quantiles(env, a, q)
	env.Obs.End(spq)
	if err != nil {
		ok = false
		splitters = make([]extmem.Element, q) // zero splitters; trace goes on
	}
	bounds := make([]bound, q)
	for i, s := range splitters {
		bounds[i] = boundOf(s)
	}

	// Step 2: color by bucket = 1 + #splitters strictly below the element.
	spc := env.Obs.Start("colorize")
	work := env.D.Alloc(n)
	k = env.ScanBatchN(1, n)
	buf = env.Cache.Buf(k * b)
	for lo := 0; lo < n; lo += k {
		hi := min(lo+k, n)
		a.ReadRange(lo, hi, buf[:(hi-lo)*b])
		// Each element's color is a pure function of the element and the
		// private splitter bounds, so the coloring pass fans out freely.
		parCells(env, (hi-lo)*b, func(plo, phi int) {
			for t := plo; t < phi; t++ {
				buf[t].SetColor(0)
				if !buf[t].Occupied() {
					continue
				}
				c := 1
				for j := 0; j < q; j++ {
					if bounds[j].lessElem(buf[t]) {
						c = j + 2
					}
				}
				buf[t].SetColor(c)
			}
		})
		work.WriteRange(lo, hi, buf[:(hi-lo)*b])
	}
	env.Cache.Free(buf)
	env.Obs.End(spc)

	// Step 3: multi-way consolidation into monochromatic blocks.
	spm := env.Obs.Start("consolidate-colors")
	ap := consolidateColors(env, work, q+1)
	env.Obs.End(spm)

	// Step 4: shuffle (block-level Fisher–Yates from the tape).
	sps := env.Obs.Start("shuffle")
	shuffleBlocks(env, ap)
	env.Obs.End(sps)

	// Step 5: deal into per-color arrays with fixed per-batch quotas.
	bucketCap := extmem.CeilDiv(int(extmem.CeilDiv64(nOcc, int64(q+1))), b) + q + 2
	batch := int(math.Floor(math.Pow(float64(m), 0.75)))
	if batch < 1 {
		batch = 1
	}
	if batch > m/2 {
		batch = m / 2
	}
	batches := extmem.CeilDiv(ap.Len(), batch)
	quota := p.DealC * int(math.Ceil(math.Sqrt(float64(m))))
	if batches*quota < 4*bucketCap {
		quota = extmem.CeilDiv(4*bucketCap, batches)
	}
	spd := env.Obs.Start("deal")
	colorArrs, dealOK := deal(env, ap, q+1, batch, quota)
	env.Obs.End(spd)
	if !dealOK {
		ok = false
	}

	// Step 6: loose-compact each color, tighten, and recurse; concatenate
	// results. The tightening pass (consolidate + butterfly, Theorem 6) is
	// not in the paper's description — it tolerates O(N)-sized padded
	// arrays — but at small M/B the bucket count q+1 cannot outpace loose
	// compaction's 5× padding, so without it the physical recursion sizes
	// grow geometrically. Tightening costs a few passes per level and
	// restores the strict n/(q+1) shrink; DESIGN.md records the deviation.
	sub := make([]extmem.Array, q+1)
	subOK := make([]bool, q+1)
	outLen := 0
	for i := 0; i <= q; i++ {
		spb := env.Obs.Start("bucket")
		spb.SetAttrInt("color", int64(i))
		lc, _, err := CompactBlocksLoose(env, colorArrs[i], bucketCap, p.Loose)
		if err != nil {
			ok = false
		}
		tight := tightenPadded(env, lc, bucketCap+2)
		sorted, sok := sortPadded(env, tight, p, depth+1)
		env.Obs.End(spb)
		sub[i], subOK[i] = sorted, sok
		outLen += sorted.Len()
	}
	res := env.D.Alloc(outLen)
	k = env.ScanBatchN(1, outLen)
	buf = env.Cache.Buf(k * b)
	w := 0
	for i := 0; i <= q; i++ {
		failed := !subOK[i]
		for lo := 0; lo < sub[i].Len(); lo += k {
			hi := min(lo+k, sub[i].Len())
			sub[i].ReadRange(lo, hi, buf[:(hi-lo)*b])
			parCells(env, (hi-lo)*b, func(plo, phi int) {
				for t := plo; t < phi; t++ {
					if failed && buf[t].Occupied() {
						buf[t].Flags |= extmem.FlagFailed
					} else {
						buf[t].Flags &^= extmem.FlagFailed
					}
				}
			})
			res.WriteRange(w, w+hi-lo, buf[:(hi-lo)*b])
			w += hi - lo
		}
	}
	env.Cache.Free(buf)

	// Step 7: data-oblivious failure sweeping — runs unconditionally.
	spw := env.Obs.Start("sweep-failures")
	capD := 2*5*bucketCap + 8
	if capD > res.Len() {
		capD = res.Len()
	}
	swept := sweepFailures(env, res, capD)
	env.Obs.End(spw)
	if !swept {
		ok = false
	}
	return res, ok
}

// sortPrivate reads every occupied element into the cache, sorts there, and
// writes a tight result of the same geometry.
func sortPrivate(env *extmem.Env, a extmem.Array) extmem.Array {
	n := a.Len()
	b := a.B()
	out := env.D.Alloc(n)
	env.Cache.Acquire(env.M / 2)
	k := env.ScanBatchN(1, n)
	buf := env.Cache.Buf(k * b)
	var all []extmem.Element
	for lo := 0; lo < n; lo += k {
		hi := min(lo+k, n)
		a.ReadRange(lo, hi, buf[:(hi-lo)*b])
		for _, e := range buf[:(hi-lo)*b] {
			if e.Occupied() {
				all = append(all, e)
			}
		}
	}
	obsort.InCachePar(env, all, obsort.ByKey)
	idx := 0
	for lo := 0; lo < n; lo += k {
		hi := min(lo+k, n)
		for t := 0; t < (hi-lo)*b; t++ {
			if idx < len(all) {
				buf[t] = all[idx]
				idx++
			} else {
				buf[t] = extmem.Element{}
			}
		}
		out.WriteRange(lo, hi, buf[:(hi-lo)*b])
	}
	env.Cache.Free(buf)
	env.Cache.Release(env.M / 2)
	return out
}

// tightenPadded squeezes a padded array's occupied elements into a fresh
// array of exactly capBlocks blocks (mark-all + Lemma 3 consolidation +
// Theorem 6 butterfly compaction). Element order is preserved, though the
// callers run it on pre-recursion buckets where order is irrelevant.
func tightenPadded(env *extmem.Env, a extmem.Array, capBlocks int) extmem.Array {
	b := a.B()
	k := env.ScanBatchN(1, a.Len())
	buf := env.Cache.Buf(k * b)
	for lo := 0; lo < a.Len(); lo += k {
		hi := min(lo+k, a.Len())
		a.ReadRange(lo, hi, buf[:(hi-lo)*b])
		parCells(env, (hi-lo)*b, func(plo, phi int) {
			for t := plo; t < phi; t++ {
				if buf[t].Occupied() {
					buf[t].Flags |= extmem.FlagMarked
				} else {
					buf[t].Flags &^= extmem.FlagMarked
				}
			}
		})
		a.WriteRange(lo, hi, buf[:(hi-lo)*b])
	}
	env.Cache.Free(buf)
	cons, _ := Consolidate(env, a)
	CompactBlocksTight(env, cons, PredOccupied, 0)
	if capBlocks > cons.Len() {
		capBlocks = cons.Len()
	}
	return cons.Slice(0, capBlocks)
}

// copyArray copies src into dst in batched chunks (equal lengths).
func copyArray(env *extmem.Env, src, dst extmem.Array) {
	b := src.B()
	k := env.ScanBatchN(1, src.Len())
	buf := env.Cache.Buf(k * b)
	for lo := 0; lo < src.Len(); lo += k {
		hi := min(lo+k, src.Len())
		src.ReadRange(lo, hi, buf[:(hi-lo)*b])
		dst.WriteRange(lo, hi, buf[:(hi-lo)*b])
	}
	env.Cache.Free(buf)
}

// shuffleBlocks applies the block-level Fisher–Yates shuffle of §5: the
// swap sequence comes entirely from the tape, so the adversary learns
// nothing from watching it ("even though Bob can see us perform this
// shuffle, the choices we make do not depend on data values").
//
// Swaps are processed in windows: the window's swap targets are drawn from
// the tape up front, the distinct blocks they touch are fetched with one
// vectored read, the swaps are replayed in order inside the cache, and the
// final contents go back with one vectored write. The permutation is
// identical to the scalar loop's for the same tape, and the addresses
// revealed are a deterministic function of the tape alone.
func shuffleBlocks(env *extmem.Env, a extmem.Array) {
	n := a.Len()
	if n < 2 {
		return
	}
	b := a.B()
	w := max(1, min(env.ScanBatch(1)/2, n-1)) // each swap touches at most 2 distinct blocks
	buf := env.Cache.Buf(2 * w * b)
	idx := make([]int, 0, 2*w)     // distinct touched blocks, first-touch order
	slot := make(map[int]int, 2*w) // block index -> slot in buf
	js := make([]int, w)
	for i0 := 0; i0 < n-1; i0 += w {
		cnt := min(w, n-1-i0)
		idx = idx[:0]
		clear(slot)
		for t := 0; t < cnt; t++ {
			i := i0 + t
			j := i + env.Tape.IntN(n-i)
			js[t] = j
			if _, seen := slot[i]; !seen {
				slot[i] = len(idx)
				idx = append(idx, i)
			}
			if _, seen := slot[j]; !seen {
				slot[j] = len(idx)
				idx = append(idx, j)
			}
		}
		a.ReadMany(idx, buf[:len(idx)*b])
		for t := 0; t < cnt; t++ {
			si, sj := slot[i0+t], slot[js[t]]
			if si == sj {
				continue
			}
			x, y := buf[si*b:(si+1)*b], buf[sj*b:(sj+1)*b]
			for e := range x {
				x[e], y[e] = y[e], x[e]
			}
		}
		a.WriteMany(idx, buf[:len(idx)*b])
	}
	env.Cache.Free(buf)
}
