// Package core implements the paper's algorithms: data-oblivious
// consolidation (Lemma 3), tight order-preserving compaction via an
// invertible Bloom lookup table (Theorem 4) and via a butterfly-like
// routing network (Theorem 6, Figure 1), loose compaction (Theorem 8) and
// its log*-round variant (Theorem 9, Appendix B), selection (Theorems 12
// and 13), quantiles (Theorem 17), and the randomized I/O-optimal
// data-oblivious sort (Theorem 21, §5).
//
// All algorithms run against an extmem.Env; their address traces depend
// only on (N, M, B) and the random tape, never on data values — the test
// suite asserts this by running each algorithm on different inputs with a
// fixed tape and comparing traces bit-for-bit.
package core

import (
	"oblivext/internal/extmem"
	"oblivext/internal/route"
)

// Consolidate is the data consolidation of Lemma 3 over FlagMarked
// elements; the generalized scan lives in route.Consolidate so the sorter
// engines can consolidate by occupancy instead.
func Consolidate(env *extmem.Env, a extmem.Array) (extmem.Array, int64) {
	return route.Consolidate(env, a, extmem.Element.Marked)
}
