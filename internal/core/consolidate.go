// Package core implements the paper's algorithms: data-oblivious
// consolidation (Lemma 3), tight order-preserving compaction via an
// invertible Bloom lookup table (Theorem 4) and via a butterfly-like
// routing network (Theorem 6, Figure 1), loose compaction (Theorem 8) and
// its log*-round variant (Theorem 9, Appendix B), selection (Theorems 12
// and 13), quantiles (Theorem 17), and the randomized I/O-optimal
// data-oblivious sort (Theorem 21, §5).
//
// All algorithms run against an extmem.Env; their address traces depend
// only on (N, M, B) and the random tape, never on data values — the test
// suite asserts this by running each algorithm on different inputs with a
// fixed tape and comparing traces bit-for-bit.
package core

import (
	"oblivext/internal/extmem"
)

// Consolidate is the data consolidation of Lemma 3: given an array A of
// blocks whose elements may carry FlagMarked, produce a new array A' of
// exactly ceil(N/B) blocks in which every block is either completely full
// of marked elements or completely empty of them (at most the final block
// is partially full), preserving the relative order of marked elements.
//
// The scan reads each input block once and writes each output block once
// (2·ceil(N/B) I/Os total), needs only M >= 2B, and is deterministic: the
// trace is a left-to-right scan regardless of where the marked elements
// are. Returns the output array and the number of marked elements (which
// only Alice learns — it travels in block contents, never in the trace).
//
// Marked elements in A' keep FlagOccupied|FlagMarked; filler cells are
// zero elements.
func Consolidate(env *extmem.Env, a extmem.Array) (extmem.Array, int64) {
	n := a.Len()
	b := a.B()
	out := env.D.Alloc(n)
	if n == 0 {
		return out, 0
	}

	hold := env.Cache.Buf(2 * b) // pending marked elements, always < B live + incoming B
	in := env.Cache.Buf(b)
	wr := env.Cache.Buf(b)
	pending := 0
	var marked int64

	emit := func(dst int, full bool) {
		if full {
			copy(wr, hold[:b])
			copy(hold, hold[b:b+pending-b])
			pending -= b
		} else {
			for i := range wr {
				wr[i] = extmem.Element{}
			}
		}
		out.Write(dst, wr)
	}

	// Prime with block 0, then for each further block read one and write
	// one; the final write flushes the partial remainder.
	a.Read(0, in)
	for _, e := range in {
		if e.Marked() {
			hold[pending] = e
			pending++
			marked++
		}
	}
	for i := 1; i < n; i++ {
		a.Read(i, in)
		for _, e := range in {
			if e.Marked() {
				hold[pending] = e
				pending++
				marked++
			}
		}
		emit(i-1, pending >= b)
	}
	// Final block: whatever remains (possibly a partial block).
	for i := range wr {
		wr[i] = extmem.Element{}
	}
	copy(wr, hold[:min(pending, b)])
	if pending > b {
		// Cannot happen: pending < B before the last read, so pending <
		// 2B, and pending >= B would have emitted a full block — unless
		// the last block pushed it over; flush the full block then the
		// remainder would be lost. Guard explicitly.
		panic("core: consolidation invariant violated")
	}
	out.Write(n-1, wr)

	env.Cache.Free(wr)
	env.Cache.Free(in)
	env.Cache.Free(hold)
	return out, marked
}
