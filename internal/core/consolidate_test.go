package core

import (
	"math/rand/v2"
	"testing"

	"oblivext/internal/extmem"
	"oblivext/internal/trace"
)

func TestConsolidateBasic(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	for _, cfg := range []struct{ n, b, marked int }{
		{1, 4, 0}, {1, 4, 4}, {4, 4, 7}, {10, 8, 40}, {10, 8, 80}, {16, 2, 1}, {9, 4, 36},
	} {
		env := newTestEnv(cfg.n*2+4, cfg.b, 4*cfg.b, 3)
		a := env.D.Alloc(cfg.n)
		in := randomMarkedInput(r, cfg.n*cfg.b, cfg.marked)
		writeElems(a, in)
		out, cnt := Consolidate(env, a)
		if cnt != int64(cfg.marked) {
			t.Fatalf("n=%d marked=%d: count %d", cfg.n, cfg.marked, cnt)
		}
		if out.Len() != cfg.n {
			t.Fatalf("output has %d blocks, want %d", out.Len(), cfg.n)
		}
		got := readElems(out)
		// Order preservation of marked elements.
		if !equalU64(markedKeys(in), occupiedKeys(got)) {
			t.Fatalf("n=%d marked=%d: order not preserved", cfg.n, cfg.marked)
		}
		// Full-or-empty block structure (except possibly one partial).
		partials := 0
		buf := make([]extmem.Element, cfg.b)
		for blk := 0; blk < out.Len(); blk++ {
			out.Read(blk, buf)
			occ := 0
			for _, e := range buf {
				if e.Occupied() {
					occ++
				}
			}
			if occ != 0 && occ != cfg.b {
				partials++
			}
		}
		if partials > 1 {
			t.Fatalf("n=%d marked=%d: %d partial blocks, want <= 1", cfg.n, cfg.marked, partials)
		}
	}
}

func TestConsolidateIOExact(t *testing.T) {
	// Lemma 3: a single scan — n reads of A and n writes of A'.
	env := newTestEnv(64, 4, 16, 3)
	a := env.D.Alloc(20)
	r := rand.New(rand.NewPCG(2, 2))
	writeElems(a, randomMarkedInput(r, 80, 33))
	env.D.ResetStats()
	Consolidate(env, a)
	st := env.D.Stats()
	if st.Reads != 20 || st.Writes != 20 {
		t.Fatalf("I/O = %+v, want exactly 20 reads and 20 writes", st)
	}
}

func TestConsolidateOblivious(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 3))
	run := func(marked int) trace.Summary {
		return traceOf(t, 64, 4, 16, 7, func(env *extmem.Env) {
			a := env.D.Alloc(16)
			writeElems(a, randomMarkedInput(r, 64, marked))
			Consolidate(env, a)
		})
	}
	s0, s1, s2 := run(0), run(64), run(17)
	if !s0.Equal(s1) || !s0.Equal(s2) {
		t.Fatalf("consolidation trace depends on data: %v %v %v", s0, s1, s2)
	}
}

func TestConsolidateCacheBound(t *testing.T) {
	env := newTestEnv(64, 8, 32, 3) // M = 4B
	a := env.D.Alloc(16)
	r := rand.New(rand.NewPCG(4, 4))
	writeElems(a, randomMarkedInput(r, 128, 100))
	env.Cache.ResetHighWater()
	Consolidate(env, a)
	if hw := env.Cache.HighWater(); hw > env.M {
		t.Fatalf("consolidation used %d private elements > M=%d", hw, env.M)
	}
}

func TestConsolidatePreservesPayload(t *testing.T) {
	env := newTestEnv(16, 4, 16, 3)
	a := env.D.Alloc(4)
	elems := make([]extmem.Element, 16)
	for i := range elems {
		elems[i] = extmem.Element{Key: uint64(100 + i), Val: uint64(i * i), Pos: uint64(i), Flags: extmem.FlagOccupied}
		if i%3 == 0 {
			elems[i].Flags |= extmem.FlagMarked
		}
	}
	writeElems(a, elems)
	out, _ := Consolidate(env, a)
	var got []extmem.Element
	for _, e := range readElems(out) {
		if e.Occupied() {
			got = append(got, e)
		}
	}
	j := 0
	for _, e := range elems {
		if !e.Marked() {
			continue
		}
		g := got[j]
		if g.Key != e.Key || g.Val != e.Val || g.Pos != e.Pos {
			t.Fatalf("payload mangled at %d: %+v vs %+v", j, g, e)
		}
		j++
	}
}
