package core

import (
	"math/rand/v2"
	"sort"
	"testing"

	"oblivext/internal/extmem"
	"oblivext/internal/obsort"
	"oblivext/internal/trace"
)

func checkSorted(t *testing.T, a extmem.Array, wantKeys []uint64) {
	t.Helper()
	elems := readElems(a)
	var got []uint64
	seenEmpty := false
	for i, e := range elems {
		if !e.Occupied() {
			seenEmpty = true
			continue
		}
		if seenEmpty {
			t.Fatalf("occupied cell after empty at element %d (not tight)", i)
		}
		got = append(got, e.Key)
	}
	want := append([]uint64(nil), wantKeys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("%d keys out, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestSortSmall(t *testing.T) {
	env := newTestEnv(256, 4, 256, 3)
	a := env.D.Alloc(8)
	keys := []uint64{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	buildKeyArray(a, keys)
	if err := Sort(env, a, SortParams{}); err != nil {
		t.Fatal(err)
	}
	checkSorted(t, a, keys)
}

func TestSortRecursivePipeline(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	for _, cfg := range []struct {
		nBlocks, b, m int
		kind          string
	}{
		{256, 8, 256, "rand"}, // N=2048, M=256: real recursion
		{256, 8, 256, "sorted"},
		{256, 8, 256, "reverse"},
		{256, 8, 256, "dup"},
		{512, 8, 512, "rand"},
		{100, 4, 128, "rand"}, // non-power-of-two blocks
	} {
		env := newTestEnv(1<<16, cfg.b, cfg.m, uint64(cfg.nBlocks))
		a := env.D.Alloc(cfg.nBlocks)
		total := cfg.nBlocks * cfg.b * 3 / 4
		keys := make([]uint64, total)
		for i := range keys {
			switch cfg.kind {
			case "sorted":
				keys[i] = uint64(i)
			case "reverse":
				keys[i] = uint64(total - i)
			case "dup":
				keys[i] = uint64(i % 7)
			default:
				keys[i] = r.Uint64() % (1 << 48)
			}
		}
		buildKeyArray(a, keys)
		if err := Sort(env, a, SortParams{}); err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		checkSorted(t, a, keys)
	}
}

func TestSortPreservesPayload(t *testing.T) {
	env := newTestEnv(1<<14, 8, 256, 5)
	a := env.D.Alloc(128)
	elems := make([]extmem.Element, 1024)
	for i := range elems {
		elems[i] = extmem.Element{Key: uint64(1024 - i), Val: uint64(1024-i) * 31, Pos: uint64(i), Flags: extmem.FlagOccupied}
	}
	writeElems(a, elems)
	if err := Sort(env, a, SortParams{}); err != nil {
		t.Fatal(err)
	}
	for i, e := range readElems(a) {
		if i >= 1024 {
			break
		}
		if !e.Occupied() || e.Key != uint64(i+1) || e.Val != e.Key*31 {
			t.Fatalf("element %d: %+v", i, e)
		}
	}
}

func TestSortOblivious(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 4))
	run := func(keys []uint64) trace.Summary {
		return traceOf(t, 1<<15, 8, 256, 123, func(env *extmem.Env) {
			a := env.D.Alloc(256)
			buildKeyArray(a, keys)
			if err := Sort(env, a, SortParams{}); err != nil {
				t.Fatal(err)
			}
		})
	}
	total := 2048
	uniform := make([]uint64, total)
	for i := range uniform {
		uniform[i] = r.Uint64()
	}
	constant := make([]uint64, total)
	for i := range constant {
		constant[i] = 99
	}
	sortedK := make([]uint64, total)
	for i := range sortedK {
		sortedK[i] = uint64(i)
	}
	s1, s2, s3 := run(uniform), run(constant), run(sortedK)
	if !s1.Equal(s2) || !s1.Equal(s3) {
		t.Fatalf("sort trace depends on data: %v %v %v", s1, s2, s3)
	}
}

func TestSortCacheBound(t *testing.T) {
	env := newTestEnv(1<<15, 8, 256, 7)
	a := env.D.Alloc(256)
	r := rand.New(rand.NewPCG(5, 5))
	keys := make([]uint64, 2048)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	buildKeyArray(a, keys)
	env.Cache.ResetHighWater()
	if err := Sort(env, a, SortParams{}); err != nil {
		t.Fatal(err)
	}
	if hw := env.Cache.HighWater(); hw > env.M {
		t.Fatalf("sort used %d private elements > M=%d", hw, env.M)
	}
}

// TestSweepRepairsInjectedFailure injects a deliberately scrambled, flagged
// bucket into a concatenated result and checks the sweep restores global
// sorted order — the §5 failure-sweeping mechanism in isolation.
func TestSweepRepairsInjectedFailure(t *testing.T) {
	env := newTestEnv(4096, 4, 512, 9)
	// Three "buckets" of 8 blocks each over disjoint key ranges; bucket 1
	// is unsorted and failed.
	res := env.D.Alloc(24)
	blk := make([]extmem.Element, 4)
	write := func(cell int, keys [4]uint64, failed, occupied bool) {
		for t := range blk {
			blk[t] = extmem.Element{}
			if occupied {
				blk[t] = extmem.Element{Key: keys[t], Pos: uint64(cell*4 + t), Flags: extmem.FlagOccupied}
				if failed {
					blk[t].Flags |= extmem.FlagFailed
				}
			}
		}
		res.Write(cell, blk)
	}
	// Bucket 0 (cells 0-7): sorted keys 0..27, some cells empty.
	k := uint64(0)
	for c := 0; c < 8; c++ {
		if c == 7 {
			write(c, [4]uint64{}, false, false)
			continue
		}
		write(c, [4]uint64{k, k + 1, k + 2, k + 3}, false, true)
		k += 4
	}
	// Bucket 1 (cells 8-15): keys 100..131 scrambled, failed.
	scr := []uint64{117, 103, 128, 111, 131, 100, 124, 107, 119, 102, 126, 113, 105, 121, 109, 130, 101, 122, 115, 127, 108, 104, 129, 110, 118, 106, 123, 112, 120, 114, 125, 116}
	for c := 0; c < 8; c++ {
		write(c+8, [4]uint64{scr[c*4], scr[c*4+1], scr[c*4+2], scr[c*4+3]}, true, true)
	}
	// Bucket 2 (cells 16-23): sorted keys 200..219, trailing empties.
	k = 200
	for c := 0; c < 8; c++ {
		if c >= 5 {
			write(c+16, [4]uint64{}, false, false)
			continue
		}
		write(c+16, [4]uint64{k, k + 1, k + 2, k + 3}, false, true)
		k += 4
	}

	if !sweepFailures(env, res, 16) {
		t.Fatal("sweep reported irreparable failure")
	}
	elems := readElems(res)
	// Bucket 1's region (cells 8-15) must now be sorted 100..131.
	var got []uint64
	for _, e := range elems[32:64] {
		if e.Occupied() {
			got = append(got, e.Key)
		}
	}
	if len(got) != 32 {
		t.Fatalf("bucket 1 has %d elements after sweep, want 32", len(got))
	}
	for i := range got {
		if got[i] != uint64(100+i) {
			t.Fatalf("bucket 1 position %d = %d, want %d", i, got[i], 100+i)
		}
	}
	// Buckets 0 and 2 untouched.
	for i, e := range elems[:28] {
		if !e.Occupied() || e.Key != uint64(i) {
			t.Fatalf("bucket 0 damaged at %d: %+v", i, e)
		}
	}
	for i, e := range elems[64:84] {
		if !e.Occupied() || e.Key != uint64(200+i) {
			t.Fatalf("bucket 2 damaged at %d: %+v", i, e)
		}
	}
	// No FlagFailed bits remain.
	for i, e := range elems {
		if e.Flags&extmem.FlagFailed != 0 {
			t.Fatalf("FlagFailed left at element %d", i)
		}
	}
}

// TestSweepNoFailuresIsIdentity: with nothing flagged the sweep must leave
// the array bit-identical (after FlagFailed clearing, which is a no-op).
func TestSweepNoFailuresIsIdentity(t *testing.T) {
	env := newTestEnv(2048, 4, 512, 11)
	res := env.D.Alloc(16)
	r := rand.New(rand.NewPCG(3, 3))
	keys := make([]uint64, 48)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	buildKeyArray(res, keys)
	before := readElems(res)
	if !sweepFailures(env, res, 12) {
		t.Fatal("sweep failed with no failures")
	}
	after := readElems(res)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("sweep modified healthy element %d: %+v -> %+v", i, before[i], after[i])
		}
	}
}

// TestSweepTraceIndependentOfFailures: the sweep's trace must not reveal
// whether anything failed.
func TestSweepTraceIndependentOfFailures(t *testing.T) {
	run := func(fail bool) trace.Summary {
		return traceOf(t, 2048, 4, 512, 13, func(env *extmem.Env) {
			res := env.D.Alloc(16)
			blk := make([]extmem.Element, 4)
			for c := 0; c < 16; c++ {
				for t := range blk {
					blk[t] = extmem.Element{Key: uint64(100 - c*4 - t), Pos: uint64(c*4 + t), Flags: extmem.FlagOccupied}
					if fail && c < 8 {
						blk[t].Flags |= extmem.FlagFailed
					}
				}
				res.Write(c, blk)
			}
			sweepFailures(env, res, 12)
		})
	}
	if !run(false).Equal(run(true)) {
		t.Fatal("sweep trace depends on the failure set")
	}
}

func TestConsolidateColorsStructure(t *testing.T) {
	env := newTestEnv(1024, 4, 256, 15)
	a := env.D.Alloc(32)
	r := rand.New(rand.NewPCG(6, 6))
	elems := make([]extmem.Element, 128)
	counts := map[int]int{}
	for i := range elems {
		c := 1 + r.IntN(4)
		elems[i] = extmem.Element{Key: uint64(i), Pos: uint64(i), Flags: extmem.FlagOccupied}
		elems[i].SetColor(c)
		counts[c]++
	}
	writeElems(a, elems)
	out := consolidateColors(env, a, 4)
	gotCounts := map[int]int{}
	buf := make([]extmem.Element, 4)
	for i := 0; i < out.Len(); i++ {
		out.Read(i, buf)
		blockColor := -1
		for _, e := range buf {
			if !e.Occupied() {
				continue
			}
			if blockColor == -1 {
				blockColor = e.Color()
			}
			if e.Color() != blockColor {
				t.Fatalf("block %d not monochromatic", i)
			}
			gotCounts[e.Color()]++
		}
	}
	for c, want := range counts {
		if gotCounts[c] != want {
			t.Fatalf("color %d: %d elements out, want %d", c, gotCounts[c], want)
		}
	}
}

func TestDealQuotasAndOverflow(t *testing.T) {
	env := newTestEnv(2048, 4, 256, 17)
	a := env.D.Alloc(32)
	// All 32 blocks the same color: with quota 2 and batch 8 every batch
	// overflows.
	blk := make([]extmem.Element, 4)
	for c := 0; c < 32; c++ {
		for t := range blk {
			blk[t] = extmem.Element{Key: uint64(c), Pos: uint64(c*4 + t), Flags: extmem.FlagOccupied}
			blk[t].SetColor(1)
		}
		a.Write(c, blk)
	}
	arrs, ok := deal(env, a, 2, 8, 2)
	if ok {
		t.Fatal("overflow not reported")
	}
	if arrs[0].Len() != 8 || arrs[1].Len() != 8 {
		t.Fatalf("deal output sizes %d/%d, want 8/8", arrs[0].Len(), arrs[1].Len())
	}
	// Generous quota: no overflow, all blocks present.
	arrs, ok = deal(env, a, 2, 8, 8)
	if !ok {
		t.Fatal("unexpected overflow")
	}
	occ := 0
	for i := 0; i < arrs[0].Len(); i++ {
		arrs[0].Read(i, blk)
		if blk[0].Occupied() {
			occ++
		}
	}
	if occ != 32 {
		t.Fatalf("color 1 received %d blocks, want 32", occ)
	}
}

func TestRandomizedSorterInterface(t *testing.T) {
	env := newTestEnv(1<<14, 8, 256, 19)
	a := env.D.Alloc(64)
	r := rand.New(rand.NewPCG(7, 7))
	keys := make([]uint64, 512)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	buildKeyArray(a, keys)
	RandomizedSorter(env, a, obsort.ByKey)
	checkSorted(t, a, keys)
}
