package core

import (
	"errors"
	"fmt"
	"math"

	"oblivext/internal/extmem"
	"oblivext/internal/obsort"
)

// This file implements Theorem 17: selecting the q quantiles of an array in
// O(N/B) I/Os. A rate-N^{-1/4} sample is compacted and sorted; sample ranks
// bracket each quantile in an interval [x_i, y_i] holding O(N^{3/4})
// elements w.h.p.; interval members are compacted, padded per interval to
// exactly capI = 8·N^{3/4} slots, sorted by (interval, key); and each
// quantile is read out of its interval by the selection algorithm
// (Theorem 13).
//
// The paper's probability analysis assumes q <= (M/B)^{1/4}; the
// implementation accepts any q that fits the private-memory budget and lets
// the failure probability degrade, which experiment E8 measures.

// ErrQuantilesFailed reports a low-probability bracketing or capacity
// failure; the trace matches the success trace.
var ErrQuantilesFailed = errors.New("core: quantile computation failed")

// Quantiles returns the q elements of ranks round(i·N/(q+1)), i = 1..q,
// among the occupied elements of a (the paper's q quantiles), without
// modifying a, in O(n) I/Os.
func Quantiles(env *extmem.Env, a extmem.Array, q int) ([]extmem.Element, error) {
	n := a.Len()
	b := a.B()
	if q < 1 {
		return nil, fmt.Errorf("%w: q=%d", ErrQuantilesFailed, q)
	}
	if 8*q*b > env.M {
		return nil, fmt.Errorf("%w: q=%d exceeds the private-memory budget (M=%d, B=%d)", ErrQuantilesFailed, q, env.M, b)
	}
	mark := env.D.Mark()
	defer env.D.Release(mark)

	// Pass 1: copy, count, find extremes.
	work := env.D.Alloc(n)
	var total int64
	var lo, hi extmem.Element
	first := true
	scanCopy(env, a, work, func(_ int, blk []extmem.Element) {
		for t := range blk {
			blk[t].Flags &^= extmem.FlagMarked
			if !blk[t].Occupied() {
				continue
			}
			total++
			if first {
				lo, hi = blk[t], blk[t]
				first = false
				continue
			}
			if blk[t].Less(lo) {
				lo = blk[t]
			}
			if hi.Less(blk[t]) {
				hi = blk[t]
			}
		}
	})
	if int64(q) > total {
		return nil, fmt.Errorf("%w: q=%d > N=%d", ErrQuantilesFailed, q, total)
	}
	ranks := make([]int64, q)
	for i := range ranks {
		ranks[i] = int64(math.Round(float64(i+1) * float64(total) / float64(q+1)))
		if ranks[i] < 1 {
			ranks[i] = 1
		}
	}

	// Small inputs (or the paper's large-cache regime, where one
	// deterministic sort is linear): sort and read the ranks off.
	if int(total) <= env.M/2 || float64(env.MBlocks()) > math.Pow(float64(n), 0.25) {
		return quantilesBySort(env, work, ranks)
	}

	nf := float64(total)
	nhat := math.Pow(nf, 0.75)
	sqrtN := math.Sqrt(nf)
	capC := int64(math.Ceil(nhat + sqrtN))
	capI := int64(math.Ceil(8 * nhat))
	if capI > total {
		capI = total
	}
	capIBlocks := extmem.CeilDiv(int(capI), b)
	capI = int64(capIBlocks * b)

	// Pass 2: Bernoulli(N^{-1/4}) sampling, one coin per slot.
	p := 1 / math.Pow(nf, 0.25)
	var sampled int64
	scanRMW(env, work, func(_ int, blk []extmem.Element) {
		for t := range blk {
			coin := env.Tape.CoinP(p)
			if coin && blk[t].Occupied() {
				blk[t].Flags |= extmem.FlagMarked
				sampled++
			}
		}
	})

	rCapC := extmem.CeilDiv(int(capC), b) + 1
	sample, _, err := CompactMarkedTight(env, work, rCapC)
	if err != nil {
		return nil, err
	}
	if sampled > capC {
		return nil, fmt.Errorf("%w: sample %d exceeds %d", ErrQuantilesFailed, sampled, capC)
	}
	obsort.Bitonic(env, sample, obsort.ByKey)

	// Interval bounds from sample ranks (clamped; clamping only widens).
	xs := make([]bound, q)
	ys := make([]bound, q)
	sampleAt := make(map[int64]int) // target sample ranks -> bound index
	for i := 0; i < q; i++ {
		rx := int64(math.Ceil(nhat*float64(i+1)/float64(q+1) - sqrtN))
		ry := sampled - int64(math.Ceil(nhat-nhat*float64(i+1)/float64(q+1)-2*sqrtN))
		if rx < 1 {
			rx = 1
		}
		if rx > sampled {
			rx = sampled
		}
		if ry < rx {
			ry = rx
		}
		if ry > sampled {
			ry = sampled
		}
		sampleAt[rx] = -1
		sampleAt[ry] = -1
		xs[i] = bound{neg: true}
		ys[i] = bound{pos2: true}
		xs[i].key, ys[i].key = uint64(rx), uint64(ry) // stash ranks temporarily
	}
	// One scan of the sorted sample resolving every needed rank.
	rankVal := map[int64]bound{}
	var idx int64
	scanRead(env, sample, func(_ int, blk []extmem.Element) {
		for t := range blk {
			if !blk[t].Occupied() {
				continue
			}
			idx++
			if _, want := sampleAt[idx]; want {
				rankVal[idx] = boundOf(blk[t])
			}
		}
	})
	for i := 0; i < q; i++ {
		if v, ok := rankVal[int64(xs[i].key)]; ok {
			xs[i] = v
		}
		if v, ok := rankVal[int64(ys[i].key)]; ok {
			ys[i] = v
		}
	}
	xs[0] = boundOf(lo)   // the paper's exception: x_1 = min(A)
	ys[q-1] = boundOf(hi) // and y_q = max(A)
	// Disjointify: the analysis makes overlaps vanishingly unlikely at
	// large N, but at practical sizes adjacent intervals can overlap; an
	// element then belongs to the first interval containing it, which is
	// equivalent to starting interval i just above y_{i-1}.
	for i := 1; i < q; i++ {
		succ := bound{key: ys[i-1].key, pos: ys[i-1].pos + 1}
		if ys[i-1].pos2 {
			succ = bound{pos2: true}
		}
		if !xs[i].greaterElemBound(succ) {
			xs[i] = succ
		}
	}

	// Pass 3: assign elements to intervals; count below_i and cnt_i.
	below := make([]int64, q)
	cnt := make([]int64, q)
	scanRMW(env, work, func(_ int, blk []extmem.Element) {
		for t := range blk {
			blk[t].Flags &^= extmem.FlagMarked
			if !blk[t].Occupied() {
				continue
			}
			e := blk[t]
			assigned := false
			for j := 0; j < q; j++ {
				if xs[j].greaterElem(e) {
					// Below interval j — and therefore below every later
					// interval too; keep counting for each.
					below[j]++
					continue
				}
				if !assigned && !ys[j].lessElem(e) {
					blk[t].Flags |= extmem.FlagMarked
					cnt[j]++
					assigned = true
				}
			}
		}
	})
	for j := 0; j < q; j++ {
		if cnt[j] > capI {
			return nil, fmt.Errorf("%w: interval %d holds %d > %d elements", ErrQuantilesFailed, j+1, cnt[j], capI)
		}
		k := ranks[j] - below[j]
		if k < 1 || k > cnt[j] {
			return nil, fmt.Errorf("%w: interval %d missed its quantile (k=%d, cnt=%d)", ErrQuantilesFailed, j+1, k, cnt[j])
		}
	}

	// Compact the union of intervals.
	rCapD := q*capIBlocks + 1
	d, _, err := CompactMarkedTight(env, work, rCapD)
	if err != nil {
		return nil, err
	}
	// Color pass: re-derive each element's interval from the private
	// bounds (tight compaction may clobber color bits, so assign after).
	// Pure per-block compute against read-only bounds, so it fans out.
	scanRMWPar(env, d, func(_ int, blk []extmem.Element) {
		for t := range blk {
			if !blk[t].Occupied() {
				continue
			}
			e := blk[t]
			for j := 0; j < q; j++ {
				if !xs[j].greaterElem(e) && !ys[j].lessElem(e) {
					blk[t].SetColor(j + 1)
					break
				}
			}
		}
	})

	// Padding region: exactly capI - cnt_j dummies per interval.
	padBlocks := q * capIBlocks
	padded := env.D.Alloc(d.Len() + padBlocks)
	scanCopy(env, d, padded, func(_ int, blk []extmem.Element) {})
	wbuf := env.Cache.Buf(env.ScanBatchN(1, padBlocks) * b)
	wr := extmem.NewSeqWriter(padded, d.Len(), wbuf)
	j, emitted := 0, int64(0)
	for i := 0; i < padBlocks; i++ {
		blk := wr.Next()
		for t := range blk {
			blk[t] = extmem.Element{}
			for j < q && emitted >= capI-cnt[j] {
				j, emitted = j+1, 0
			}
			if j < q {
				blk[t] = extmem.Element{Key: math.MaxUint64, Pos: math.MaxUint64, Flags: extmem.FlagOccupied}
				blk[t].SetColor(j + 1)
				emitted++
			}
		}
	}
	wr.Flush()
	env.Cache.Free(wbuf)

	// Sort by (interval, key, pos): interval i now occupies blocks
	// [i·capIBlocks, (i+1)·capIBlocks).
	obsort.Bitonic(env, padded, byIntervalKey)

	out := make([]extmem.Element, q)
	for i := 0; i < q; i++ {
		sub := padded.Slice(i*capIBlocks, (i+1)*capIBlocks)
		e, err := Select(env, sub, ranks[i]-below[i])
		if err != nil {
			return nil, fmt.Errorf("%w: interval %d: %v", ErrQuantilesFailed, i+1, err)
		}
		e.SetColor(0)
		e.Flags &^= extmem.FlagMarked
		out[i] = e
	}
	return out, nil
}

// byIntervalKey orders occupied elements by (color, key, pos), empties last.
func byIntervalKey(a, b extmem.Element) bool {
	ao, bo := a.Occupied(), b.Occupied()
	if ao != bo {
		return ao
	}
	if a.Color() != b.Color() {
		return a.Color() < b.Color()
	}
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Pos < b.Pos
}

// greaterElemBound compares two bounds: bd > o.
func (bd bound) greaterElemBound(o bound) bool {
	if bd.pos2 || o.neg {
		return !(bd.neg || o.pos2) || (bd.pos2 && o.neg)
	}
	if bd.neg || o.pos2 {
		return false
	}
	if bd.key != o.key {
		return bd.key > o.key
	}
	return bd.pos > o.pos
}

// quantilesBySort sorts a copy and reads the ranks off — the fast path for
// inputs that fit the cache or the paper's (M/B) > (N/B)^{1/4} regime.
func quantilesBySort(env *extmem.Env, work extmem.Array, ranks []int64) ([]extmem.Element, error) {
	obsort.Bitonic(env, work, obsort.ByKey)
	out := make([]extmem.Element, len(ranks))
	var idx int64
	ri := 0
	scanRead(env, work, func(_ int, blk []extmem.Element) {
		for t := range blk {
			if !blk[t].Occupied() {
				continue
			}
			idx++
			for ri < len(ranks) && ranks[ri] == idx {
				out[ri] = blk[t]
				ri++
			}
		}
	})
	if ri != len(ranks) {
		return nil, fmt.Errorf("%w: resolved %d of %d ranks", ErrQuantilesFailed, ri, len(ranks))
	}
	return out, nil
}
