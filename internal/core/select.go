package core

import (
	"errors"
	"fmt"
	"math"

	"oblivext/internal/extmem"
	"oblivext/internal/obsort"
)

// This file implements Theorems 12 and 13: data-oblivious selection of the
// k-th smallest element in O(N/B) I/Os. Each element joins a random sample
// with probability N^{-1/2}; the sample is compacted (Lemma 3 + Theorem 4)
// and sorted, two sample ranks bracket the target in a range [x, y] that
// w.h.p. contains O(N^{7/8}) elements; those are compacted and sorted, and
// the answer is read off at rank k − rank(x).
//
// Selection is over the total order (Key, Pos) on occupied elements — ties
// are broken by original position, so ranks are always well defined.

// ErrSelectFailed reports one of the algorithm's low-probability failures:
// sample overflow (Lemma 10), bracket miss or range overflow (Lemma 11).
// The trace is the same as on success.
var ErrSelectFailed = errors.New("core: selection failed")

// bound is ±infinity-capable comparison bound over (Key, Pos).
type bound struct {
	key, pos  uint64
	neg, pos2 bool // neg: -inf; pos2: +inf
}

func (bd bound) lessElem(e extmem.Element) bool { // bd < e
	if bd.neg {
		return true
	}
	if bd.pos2 {
		return false
	}
	if bd.key != e.Key {
		return bd.key < e.Key
	}
	return bd.pos < e.Pos
}

func (bd bound) greaterElem(e extmem.Element) bool { // bd > e
	if bd.neg {
		return false
	}
	if bd.pos2 {
		return true
	}
	if bd.key != e.Key {
		return bd.key > e.Key
	}
	return bd.pos > e.Pos
}

func boundOf(e extmem.Element) bound { return bound{key: e.Key, pos: e.Pos} }

// Select returns the k-th smallest occupied element of a (k is 1-based)
// using O(n) I/Os with a data-oblivious trace. The input array is not
// modified. Requires 1 <= k <= N where N is the occupied count.
func Select(env *extmem.Env, a extmem.Array, k int64) (extmem.Element, error) {
	n := a.Len()
	b := a.B()
	mark := env.D.Mark()
	defer env.D.Release(mark)

	// Pass 1: copy the input (clearing stale marks), count N, find min/max.
	work := env.D.Alloc(n)
	var total int64
	var lo, hi extmem.Element
	first := true
	scanCopy(env, a, work, func(_ int, blk []extmem.Element) {
		for t := range blk {
			blk[t].Flags &^= extmem.FlagMarked
			if !blk[t].Occupied() {
				continue
			}
			total++
			if first {
				lo, hi = blk[t], blk[t]
				first = false
				continue
			}
			if blk[t].Less(lo) {
				lo = blk[t]
			}
			if hi.Less(blk[t]) {
				hi = blk[t]
			}
		}
	})
	if k < 1 || k > total {
		return extmem.Element{}, fmt.Errorf("%w: rank %d out of range [1,%d]", ErrSelectFailed, k, total)
	}
	nf := float64(total)

	// Small inputs: one in-cache selection (the powers of N below are
	// meaningless at tiny N, and the whole input fits private memory).
	if int(total) <= env.M/2 {
		return selectInCache(env, work, int(k))
	}

	sqrtN := math.Sqrt(nf)
	n38 := math.Pow(nf, 0.375)
	cap1 := int64(math.Ceil(sqrtN + n38))
	cap2 := int64(math.Ceil(8 * math.Pow(nf, 0.875)))
	if cap2 > total {
		cap2 = total
	}

	// Pass 2: Bernoulli(N^{-1/2}) sampling; one coin per cell slot so the
	// tape consumption is data-independent.
	var sampled int64
	scanRMW(env, work, func(_ int, blk []extmem.Element) {
		for t := range blk {
			coin := env.Tape.CoinP(1 / sqrtN)
			if coin && blk[t].Occupied() {
				blk[t].Flags |= extmem.FlagMarked
				sampled++
			}
		}
	})

	// Compact the sample: consolidation then tight compaction.
	rCap1 := extmem.CeilDiv(int(cap1), b) + 1
	sample, _, err := CompactMarkedTight(env, work, rCap1)
	if err != nil {
		return extmem.Element{}, err
	}
	if sampled > cap1 {
		return extmem.Element{}, fmt.Errorf("%w: sample size %d exceeds %d", ErrSelectFailed, sampled, cap1)
	}
	obsort.Bitonic(env, sample, obsort.ByKey)

	// Bracket ranks within the sorted sample (1-based).
	rx := int64(math.Ceil(float64(k)/sqrtN - n38))
	ry := sampled - int64(math.Ceil(float64(total-k)/sqrtN-2*n38))
	x := bound{neg: true}
	y := bound{pos2: true}
	var idx int64
	scanRead(env, sample, func(_ int, blk []extmem.Element) {
		for t := range blk {
			if !blk[t].Occupied() {
				continue
			}
			idx++
			if idx == rx {
				x = boundOf(blk[t])
			}
			if idx == ry {
				y = boundOf(blk[t])
			}
		}
	})
	// x = max(x', min(A)) and y = min(y', max(A)): since min(A) is a lower
	// bound on everything, the max only matters when x' = -inf, and
	// symmetrically for y'.
	if x.neg {
		x = boundOf(lo)
	}
	if y.pos2 {
		y = boundOf(hi)
	}

	// Pass 3: clear the sampling marks, mark elements in [x, y], count
	// rank(x) and the range size.
	var rankX, inRange int64
	scanRMW(env, work, func(_ int, blk []extmem.Element) {
		for t := range blk {
			blk[t].Flags &^= extmem.FlagMarked
			if !blk[t].Occupied() {
				continue
			}
			e := blk[t]
			switch {
			case x.greaterElem(e):
				rankX++
			case !y.lessElem(e): // x <= e <= y
				blk[t].Flags |= extmem.FlagMarked
				inRange++
			}
		}
	})
	target := k - rankX
	if target < 1 || target > inRange {
		return extmem.Element{}, fmt.Errorf("%w: bracket missed the target (rank(x)=%d, in-range=%d, k=%d)", ErrSelectFailed, rankX, inRange, k)
	}
	if inRange > cap2 {
		return extmem.Element{}, fmt.Errorf("%w: range size %d exceeds %d", ErrSelectFailed, inRange, cap2)
	}

	// Compact and sort the range, then read off the target rank.
	rCap2 := extmem.CeilDiv(int(cap2), b) + 1
	d, _, err := CompactMarkedTight(env, work, rCap2)
	if err != nil {
		return extmem.Element{}, err
	}
	obsort.Bitonic(env, d, obsort.ByKey)

	var result extmem.Element
	idx = 0
	scanRead(env, d, func(_ int, blk []extmem.Element) {
		for t := range blk {
			if !blk[t].Occupied() {
				continue
			}
			idx++
			if idx == target {
				result = blk[t]
			}
		}
	})
	if !result.Occupied() {
		return extmem.Element{}, fmt.Errorf("%w: target rank never materialized", ErrSelectFailed)
	}
	result.Flags &^= extmem.FlagMarked
	return result, nil
}

// selectInCache reads every occupied element into private memory and picks
// the k-th there; the trace is a single scan.
func selectInCache(env *extmem.Env, a extmem.Array, k int) (extmem.Element, error) {
	var all []extmem.Element
	env.Cache.Acquire(env.M / 2)
	scanRead(env, a, func(_ int, blk []extmem.Element) {
		for _, e := range blk {
			if e.Occupied() {
				all = append(all, e)
			}
		}
	})
	obsort.InCache(all, obsort.ByKey)
	env.Cache.Release(env.M / 2)
	if k < 1 || k > len(all) {
		return extmem.Element{}, fmt.Errorf("%w: rank %d of %d", ErrSelectFailed, k, len(all))
	}
	e := all[k-1]
	e.Flags &^= extmem.FlagMarked
	return e, nil
}
