package core

import (
	"errors"
	"math/rand/v2"
	"sort"
	"testing"

	"oblivext/internal/extmem"
	"oblivext/internal/trace"
)

func TestLooseCompactCorrectness(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 9))
	for _, cfg := range []struct{ n, rCap, occ int }{
		{64, 16, 16}, {64, 16, 5}, {128, 16, 10}, {32, 8, 0}, {256, 32, 30}, {7, 2, 1},
	} {
		env := newTestEnv(8*cfg.n+16, 4, 256, uint64(cfg.n))
		a := env.D.Alloc(cfg.n)
		occ := r.Perm(cfg.n)[:cfg.occ]
		buildSparseCells(a, occ)
		want := map[uint64]bool{}
		for _, e := range readElems(a) {
			if e.Occupied() {
				want[e.Key] = true
			}
		}
		out, got, err := CompactBlocksLoose(env, a, cfg.rCap, LooseParams{})
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if got != cfg.occ {
			t.Fatalf("cfg %+v: occupied = %d", cfg, got)
		}
		if out.Len() != 5*cfg.rCap {
			t.Fatalf("cfg %+v: out size %d, want %d", cfg, out.Len(), 5*cfg.rCap)
		}
		gotKeys := map[uint64]bool{}
		for _, e := range readElems(out) {
			if e.Occupied() {
				if gotKeys[e.Key] {
					t.Fatalf("cfg %+v: duplicate key %d in output", cfg, e.Key)
				}
				gotKeys[e.Key] = true
			}
		}
		if len(gotKeys) != len(want) {
			t.Fatalf("cfg %+v: %d keys out, want %d", cfg, len(gotKeys), len(want))
		}
		for k := range want {
			if !gotKeys[k] {
				t.Fatalf("cfg %+v: key %d lost", cfg, k)
			}
		}
	}
}

func TestLooseCompactOblivious(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 7))
	run := func(occ []int) trace.Summary {
		return traceOf(t, 1024, 4, 256, 77, func(env *extmem.Env) {
			a := env.D.Alloc(64)
			buildSparseCells(a, occ)
			CompactBlocksLoose(env, a, 16, LooseParams{})
		})
	}
	s1 := run(nil)
	s2 := run(r.Perm(64)[:16])
	s3 := run([]int{0, 1, 2, 3})
	if !s1.Equal(s2) || !s1.Equal(s3) {
		t.Fatalf("loose compaction trace depends on data: %v %v %v", s1, s2, s3)
	}
}

func TestLooseCompactLinearIO(t *testing.T) {
	io := func(n int) float64 {
		env := newTestEnv(8*n, 8, 512, 13)
		a := env.D.Alloc(n)
		r := rand.New(rand.NewPCG(uint64(n), 2))
		buildSparseCells(a, r.Perm(n)[:n/8])
		env.D.ResetStats()
		if _, _, err := CompactBlocksLoose(env, a, n/4, LooseParams{}); err != nil {
			t.Fatal(err)
		}
		return float64(env.D.Stats().Total()) / float64(n)
	}
	small, large := io(128), io(2048)
	if large > small*1.7 {
		t.Fatalf("loose compaction I/O per block grew from %.1f to %.1f — not linear", small, large)
	}
}

func TestLooseCompactOverflowDetected(t *testing.T) {
	env := newTestEnv(512, 4, 256, 5)
	a := env.D.Alloc(64)
	occ := make([]int, 40)
	for i := range occ {
		occ[i] = i
	}
	buildSparseCells(a, occ)
	_, _, err := CompactBlocksLoose(env, a, 8, LooseParams{}) // 40 > 8
	if !errors.Is(err, ErrLooseOverflow) {
		t.Fatalf("err = %v, want ErrLooseOverflow", err)
	}
}

// TestThinningPassSurvivorRate is E12's core measurement: each pass leaves
// at most ~1/4 of occupied cells uncopied in expectation (C is at least 3/4
// empty), so survivors decay geometrically.
func TestThinningPassSurvivorRate(t *testing.T) {
	env := newTestEnv(4096, 4, 256, 21)
	n, rCap := 256, 64
	a := env.D.Alloc(n)
	r := rand.New(rand.NewPCG(8, 8))
	buildSparseCells(a, r.Perm(n)[:rCap])
	c := env.D.Alloc(4 * rCap)
	blk := make([]extmem.Element, 4)
	for i := range blk {
		blk[i] = extmem.Element{}
	}
	for i := 0; i < c.Len(); i++ {
		c.Write(i, blk)
	}
	counts := []int{rCap}
	for pass := 0; pass < 4; pass++ {
		thinningPass(env, a, c)
		surv := 0
		for i := 0; i < n; i++ {
			a.Read(i, blk)
			if PredOccupied(blk) {
				surv++
			}
		}
		counts = append(counts, surv)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	// After 4 passes survivors should be far below the start; expectation
	// is <= rCap/4^4 = 0.25 cells, allow generous slack.
	if counts[len(counts)-1] > rCap/8 {
		t.Fatalf("survivor counts %v decay too slowly", counts)
	}
}

func TestLooseCompactCacheBound(t *testing.T) {
	env := newTestEnv(2048, 4, 128, 31)
	a := env.D.Alloc(128)
	r := rand.New(rand.NewPCG(9, 9))
	buildSparseCells(a, r.Perm(128)[:16])
	env.Cache.ResetHighWater()
	if _, _, err := CompactBlocksLoose(env, a, 32, LooseParams{}); err != nil {
		t.Fatal(err)
	}
	if hw := env.Cache.HighWater(); hw > env.M {
		t.Fatalf("loose compaction used %d private elements > M=%d", hw, env.M)
	}
}
