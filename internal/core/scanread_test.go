package core

import (
	"testing"

	"oblivext/internal/extmem"
)

// S2 regression: a panic in the callback of a prefetching read scan must
// still join the in-flight prefetch goroutine and return the scan buffer
// before the stack unwinds. Before the defer fix, the prefetch goroutine
// kept writing into a buffer the accountant had already reclaimed — a leak
// the race detector flags when the next pass reuses that memory.
func TestScanReadPrefetchPanicCleansUp(t *testing.T) {
	const blocks, b, m = 64, 4, 64
	env := newTestEnv(blocks, b, m, 21)
	env.Prefetch = true
	a := env.D.Alloc(blocks)
	elems := make([]extmem.Element, blocks*b)
	for i := range elems {
		elems[i] = extmem.Element{Key: uint64(i), Pos: uint64(i), Flags: extmem.FlagOccupied}
	}
	writeElems(a, elems)

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("callback panic did not propagate")
			}
		}()
		scanRead(env, a, func(i int, blk []extmem.Element) {
			if i == blocks/2 {
				panic("mid-scan failure")
			}
		})
	}()

	if used := env.Cache.Used(); used != 0 {
		t.Fatalf("scan buffer leaked after panic: %d elements still checked out", used)
	}

	// The environment is still fully usable: a fresh scan sees every block.
	seen := 0
	scanRead(env, a, func(i int, blk []extmem.Element) { seen++ })
	if seen != blocks {
		t.Fatalf("follow-up scan saw %d of %d blocks", seen, blocks)
	}
	if used := env.Cache.Used(); used != 0 {
		t.Fatalf("follow-up scan leaked: %d elements checked out", used)
	}
}
