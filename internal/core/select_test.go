package core

import (
	"errors"
	"math/rand/v2"
	"sort"
	"testing"

	"oblivext/internal/extmem"
	"oblivext/internal/trace"
)

// buildKeyArray fills an array with count occupied elements having the
// given keys (Pos = index) and returns the sorted copy of the keys.
func buildKeyArray(a extmem.Array, keys []uint64) []uint64 {
	elems := make([]extmem.Element, len(keys))
	for i, k := range keys {
		elems[i] = extmem.Element{Key: k, Val: k * 2, Pos: uint64(i), Flags: extmem.FlagOccupied}
	}
	writeElems(a, elems)
	s := append([]uint64(nil), keys...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

func TestSelectInCachePath(t *testing.T) {
	env := newTestEnv(64, 4, 256, 3)
	a := env.D.Alloc(8)
	keys := []uint64{50, 10, 40, 20, 30}
	sorted := buildKeyArray(a, keys)
	for k := 1; k <= len(keys); k++ {
		e, err := Select(env, a, int64(k))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if e.Key != sorted[k-1] {
			t.Fatalf("k=%d: got %d want %d", k, e.Key, sorted[k-1])
		}
	}
}

func TestSelectLargePath(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 3))
	env := newTestEnv(1<<14, 8, 128, 7) // M=128, N=4096 >> M: sampling path
	nBlocks := 512
	a := env.D.Alloc(nBlocks)
	keys := make([]uint64, nBlocks*8)
	for i := range keys {
		keys[i] = r.Uint64() % 1_000_000
	}
	sorted := buildKeyArray(a, keys)
	for _, k := range []int64{1, 5, 2048, 4000, 4096} {
		e, err := Select(env, a, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if e.Key != sorted[k-1] {
			t.Fatalf("k=%d: got %d want %d", k, e.Key, sorted[k-1])
		}
	}
}

func TestSelectWithHeavyDuplicates(t *testing.T) {
	env := newTestEnv(1<<14, 8, 128, 11)
	nBlocks := 256
	a := env.D.Alloc(nBlocks)
	keys := make([]uint64, nBlocks*8)
	for i := range keys {
		keys[i] = uint64(i % 3) // only 3 distinct keys
	}
	sorted := buildKeyArray(a, keys)
	for _, k := range []int64{1, 700, 1365, 2048} {
		e, err := Select(env, a, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if e.Key != sorted[k-1] {
			t.Fatalf("k=%d: got %d want %d", k, e.Key, sorted[k-1])
		}
	}
}

func TestSelectRankOutOfRange(t *testing.T) {
	env := newTestEnv(64, 4, 64, 5)
	a := env.D.Alloc(4)
	buildKeyArray(a, []uint64{1, 2, 3})
	if _, err := Select(env, a, 0); !errors.Is(err, ErrSelectFailed) {
		t.Fatalf("k=0: err=%v", err)
	}
	if _, err := Select(env, a, 4); !errors.Is(err, ErrSelectFailed) {
		t.Fatalf("k=4: err=%v", err)
	}
}

func TestSelectDoesNotModifyInput(t *testing.T) {
	env := newTestEnv(1<<13, 8, 128, 13)
	a := env.D.Alloc(128)
	r := rand.New(rand.NewPCG(4, 4))
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = r.Uint64() % 10000
	}
	buildKeyArray(a, keys)
	before := readElems(a)
	if _, err := Select(env, a, 512); err != nil {
		t.Fatal(err)
	}
	after := readElems(a)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("input modified at element %d", i)
		}
	}
}

func TestSelectOblivious(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 6))
	run := func(keys []uint64, k int64) trace.Summary {
		return traceOf(t, 1<<13, 8, 128, 99, func(env *extmem.Env) {
			a := env.D.Alloc(128)
			buildKeyArray(a, keys)
			Select(env, a, k)
		})
	}
	uniform := make([]uint64, 1024)
	for i := range uniform {
		uniform[i] = r.Uint64() % 1_000_000
	}
	equalKeys := make([]uint64, 1024)
	for i := range equalKeys {
		equalKeys[i] = 42
	}
	sortedKeys := make([]uint64, 1024)
	for i := range sortedKeys {
		sortedKeys[i] = uint64(i)
	}
	s1 := run(uniform, 100)
	s2 := run(equalKeys, 100)
	s3 := run(sortedKeys, 1000) // even the rank must not show in the trace
	if !s1.Equal(s2) || !s1.Equal(s3) {
		t.Fatalf("selection trace depends on data: %v %v %v", s1, s2, s3)
	}
}

func TestSelectLinearIO(t *testing.T) {
	io := func(nBlocks int) float64 {
		env := newTestEnv(8*nBlocks+64, 8, 128, 17)
		a := env.D.Alloc(nBlocks)
		r := rand.New(rand.NewPCG(uint64(nBlocks), 5))
		keys := make([]uint64, nBlocks*8)
		for i := range keys {
			keys[i] = r.Uint64()
		}
		buildKeyArray(a, keys)
		env.D.ResetStats()
		if _, err := Select(env, a, int64(nBlocks*4)); err != nil {
			t.Fatal(err)
		}
		return float64(env.D.Stats().Total()) / float64(nBlocks)
	}
	small, large := io(256), io(2048)
	if large > small*2 {
		t.Fatalf("selection I/O per block grew from %.1f to %.1f — superlinear", small, large)
	}
}

func TestSelectFailureRate(t *testing.T) {
	// The bracketing succeeds with high probability; measure it.
	fails := 0
	const trials = 30
	for tr := 0; tr < trials; tr++ {
		env := newTestEnv(1<<13, 8, 128, uint64(100+tr))
		a := env.D.Alloc(128)
		r := rand.New(rand.NewPCG(uint64(tr), 9))
		keys := make([]uint64, 1024)
		for i := range keys {
			keys[i] = r.Uint64()
		}
		sorted := buildKeyArray(a, keys)
		e, err := Select(env, a, 512)
		if err != nil {
			fails++
			continue
		}
		if e.Key != sorted[511] {
			t.Fatalf("trial %d: wrong answer %d vs %d", tr, e.Key, sorted[511])
		}
	}
	if fails > 3 {
		t.Fatalf("selection failed %d/%d trials", fails, trials)
	}
}
