package obsort

import (
	"errors"
	"math/rand/v2"
	"testing"

	"oblivext/internal/extmem"
	"oblivext/internal/trace"
)

func TestZigzagSortCorrectness(t *testing.T) {
	r := rand.New(rand.NewPCG(21, 22))
	for _, b := range []int{2, 8} {
		for _, nBlocks := range []int{1, 2, 3, 5, 8, 17, 64} {
			for _, kind := range []string{"rand", "sorted", "reverse", "dup", "equal"} {
				for _, frac := range []int{100, 60} {
					env := extmem.NewEnv(4*nBlocks+16, b, 8*b, 7)
					a := env.D.Alloc(nBlocks)
					nk := nBlocks * b * frac / 100
					keys := genKeys(r, nk, kind)
					fillArray(env, a, keys)
					Zigzag(env, a, ByKey)
					got := checkSortedPadded(t, readAll(a))
					if !sameMultiset(got, keys) {
						t.Fatalf("b=%d n=%d kind=%s frac=%d: multiset changed", b, nBlocks, kind, frac)
					}
				}
			}
		}
	}
}

func TestZigzagNonPowerOfTwoBlockSize(t *testing.T) {
	// Unlike Bitonic, Zigzag has no power-of-two block-size requirement.
	r := rand.New(rand.NewPCG(23, 24))
	for _, b := range []int{3, 6} {
		env := extmem.NewEnv(128, b, 16*b, 5)
		a := env.D.Alloc(19)
		keys := genKeys(r, 19*b, "rand")
		fillArray(env, a, keys)
		Zigzag(env, a, ByKey)
		got := checkSortedPadded(t, readAll(a))
		if !sameMultiset(got, keys) {
			t.Fatalf("b=%d: multiset changed", b)
		}
	}
}

func TestZigzagRespectsCacheBound(t *testing.T) {
	env := extmem.NewEnv(64, 4, 32, 3)
	a := env.D.Alloc(32)
	r := rand.New(rand.NewPCG(25, 25))
	fillArray(env, a, genKeys(r, 128, "rand"))
	env.Cache.ResetHighWater()
	Zigzag(env, a, ByKey)
	if hw := env.Cache.HighWater(); hw > env.M {
		t.Fatalf("zigzag used %d private elements, budget %d", hw, env.M)
	}
}

func TestZigzagOblivious(t *testing.T) {
	r := rand.New(rand.NewPCG(27, 27))
	run := func(keys []uint64) trace.Summary {
		env := extmem.NewEnv(64, 4, 32, 3)
		a := env.D.Alloc(24)
		fillArray(env, a, keys)
		rec := trace.NewRecorder(0)
		env.D.SetRecorder(rec)
		Zigzag(env, a, ByKey)
		return rec.Summarize()
	}
	s1 := run(genKeys(r, 96, "rand"))
	s2 := run(genKeys(r, 96, "equal"))
	s3 := run(genKeys(r, 96, "reverse"))
	if !s1.Equal(s2) || !s1.Equal(s3) {
		t.Fatalf("zigzag trace depends on data: %v %v %v", s1, s2, s3)
	}
}

func TestZigzagIOCountMatchesMeasuredIO(t *testing.T) {
	for _, cfg := range []struct{ n, b, m int }{{16, 4, 16}, {64, 4, 32}, {128, 8, 64}, {17, 4, 32}} {
		env := extmem.NewEnv(cfg.n*2, cfg.b, cfg.m, 1)
		a := env.D.Alloc(cfg.n)
		r := rand.New(rand.NewPCG(4, 4))
		fillArray(env, a, genKeys(r, cfg.n*cfg.b, "rand"))
		env.D.ResetStats()
		Zigzag(env, a, ByKey)
		st := env.D.Stats()
		want := ZigzagIOCount(cfg.n, cfg.b, cfg.m)
		if st.Total() != want {
			t.Errorf("n=%d b=%d m=%d: measured %d I/Os, predicted %d", cfg.n, cfg.b, cfg.m, st.Total(), want)
		}
	}
}

func TestZigzagPreservesMarkedFlags(t *testing.T) {
	env := extmem.NewEnv(64, 4, 32, 3)
	a := env.D.Alloc(8)
	b := a.B()
	buf := make([]extmem.Element, b)
	for blk := 0; blk < 8; blk++ {
		for tt := range buf {
			idx := uint64(blk*b + tt)
			buf[tt] = extmem.Element{Key: 1000 - idx, Pos: idx, Flags: extmem.FlagOccupied}
			if idx%3 == 0 {
				buf[tt].Flags |= extmem.FlagMarked
			}
		}
		a.Write(blk, buf)
	}
	Zigzag(env, a, ByKey)
	for _, e := range readAll(a) {
		wantMarked := (1000-e.Key)%3 == 0
		if e.Marked() != wantMarked {
			t.Fatalf("marked flag lost across zigzag: key %d", e.Key)
		}
	}
}

// bucketEnv builds a geometry where BucketSort runs its own pipeline
// rather than the Bitonic fallback.
func bucketEnv(nBlocks, b, m int, seed uint64) (*extmem.Env, extmem.Array) {
	env := extmem.NewEnv(16*nBlocks+64, b, m, seed)
	return env, env.D.Alloc(nBlocks)
}

func TestBucketSortCorrectness(t *testing.T) {
	r := rand.New(rand.NewPCG(31, 32))
	for _, cfg := range []struct{ n, b, m int }{
		{8, 8, 512}, {17, 8, 512}, {64, 8, 512}, {128, 8, 512},
		{64, 4, 512}, {33, 2, 512},
	} {
		if !BucketSupported(cfg.n, cfg.b, cfg.m) {
			t.Fatalf("n=%d b=%d m=%d: geometry unexpectedly unsupported", cfg.n, cfg.b, cfg.m)
		}
		for _, kind := range []string{"rand", "sorted", "reverse", "dup", "equal"} {
			for _, frac := range []int{100, 60} {
				env, a := bucketEnv(cfg.n, cfg.b, cfg.m, 7)
				nk := cfg.n * cfg.b * frac / 100
				keys := genKeys(r, nk, kind)
				fillArray(env, a, keys)
				if err := BucketSort(env, a, ByKey); err != nil {
					t.Fatalf("n=%d b=%d kind=%s frac=%d: %v", cfg.n, cfg.b, kind, frac, err)
				}
				got := checkSortedPadded(t, readAll(a))
				if !sameMultiset(got, keys) {
					t.Fatalf("n=%d b=%d kind=%s frac=%d: multiset changed", cfg.n, cfg.b, kind, frac)
				}
			}
		}
	}
}

func TestBucketSortDeepRecursion(t *testing.T) {
	// Small cache against a large array: the distribution phase must
	// recurse more than one level (k1 > fLeaf·k2max).
	const n, b, m = 1 << 10, 8, 512
	env, a := bucketEnv(n, b, m, 11)
	r := rand.New(rand.NewPCG(33, 34))
	keys := genKeys(r, n*b, "rand")
	fillArray(env, a, keys)
	if err := BucketSort(env, a, ByKey); err != nil {
		t.Fatalf("deep recursion run failed: %v", err)
	}
	got := checkSortedPadded(t, readAll(a))
	if !sameMultiset(got, keys) {
		t.Fatal("multiset changed")
	}
}

func TestBucketSortRespectsCacheBound(t *testing.T) {
	env, a := bucketEnv(128, 8, 512, 9)
	r := rand.New(rand.NewPCG(35, 35))
	fillArray(env, a, genKeys(r, 128*8, "rand"))
	env.Cache.ResetHighWater()
	if err := BucketSort(env, a, ByKey); err != nil {
		t.Fatal(err)
	}
	if hw := env.Cache.HighWater(); hw > env.M {
		t.Fatalf("bucket sort used %d private elements, budget %d", hw, env.M)
	}
}

func TestBucketSortOblivious(t *testing.T) {
	r := rand.New(rand.NewPCG(37, 37))
	run := func(keys []uint64) trace.Summary {
		env, a := bucketEnv(64, 8, 512, 7)
		fillArray(env, a, keys)
		rec := trace.NewRecorder(0)
		env.D.SetRecorder(rec)
		if err := BucketSort(env, a, ByKey); err != nil {
			t.Fatal(err)
		}
		return rec.Summarize()
	}
	s1 := run(genKeys(r, 512, "rand"))
	s2 := run(genKeys(r, 512, "equal"))
	s3 := run(genKeys(r, 512, "reverse"))
	if !s1.Equal(s2) || !s1.Equal(s3) {
		t.Fatalf("bucket sort trace depends on data: %v %v %v", s1, s2, s3)
	}
}

func TestBucketIOCountMatchesMeasuredIO(t *testing.T) {
	// Every pass of a successful run is geometry-addressed, so the I/O
	// count prediction is exact, not a bound.
	for _, cfg := range []struct{ n, b, m int }{{64, 8, 512}, {128, 8, 512}, {256, 4, 512}} {
		env, a := bucketEnv(cfg.n, cfg.b, cfg.m, 7)
		r := rand.New(rand.NewPCG(6, 6))
		fillArray(env, a, genKeys(r, cfg.n*cfg.b, "rand"))
		env.D.ResetStats()
		if err := BucketSort(env, a, ByKey); err != nil {
			t.Fatal(err)
		}
		st := env.D.Stats()
		want := BucketIOCount(cfg.n, cfg.b, cfg.m)
		if st.Total() != want {
			t.Errorf("n=%d b=%d m=%d: measured %d I/Os, predicted %d", cfg.n, cfg.b, cfg.m, st.Total(), want)
		}
	}
}

func TestBucketSortTinyCacheFallsBack(t *testing.T) {
	// Geometry the buckets cannot fit: BucketSort must quietly run the
	// deterministic engine and still sort.
	env := extmem.NewEnv(64, 8, 8*8, 7)
	a := env.D.Alloc(16)
	r := rand.New(rand.NewPCG(39, 39))
	keys := genKeys(r, 16*8, "rand")
	fillArray(env, a, keys)
	if BucketSupported(16, 8, env.M) {
		t.Fatal("tiny geometry unexpectedly supported")
	}
	if err := BucketSort(env, a, ByKey); err != nil {
		t.Fatal(err)
	}
	if got := checkSortedPadded(t, readAll(a)); !sameMultiset(got, keys) {
		t.Fatal("multiset changed")
	}
}

// TestBucketSortOverflowDeclared pins the declared-failure contract across
// a seed scan: failures happen (the geometry is deliberately tight),
// successes happen, every failure is ErrBucketOverflow with the input
// array untouched, its trace is a strict prefix of the success trace, and
// all success traces for one seed are identical across inputs.
func TestBucketSortOverflowDeclared(t *testing.T) {
	const n, b, m = 64, 4, 96 // Z = 8 cells: overflow-prone by design
	r := rand.New(rand.NewPCG(41, 41))
	keys := genKeys(r, n*b, "rand")

	run := func(seed uint64, keys []uint64) ([]trace.Op, error, []extmem.Element) {
		env, a := bucketEnv(n, b, m, seed)
		fillArray(env, a, keys)
		rec := trace.NewRecorder(1 << 22)
		env.D.SetRecorder(rec)
		err := BucketSort(env, a, ByKey)
		return rec.Ops(), err, readAll(a)
	}

	var successOps []trace.Op
	fails, succs := 0, 0
	for seed := uint64(1); seed <= 80 && (fails == 0 || succs == 0); seed++ {
		ops, err, elems := run(seed, keys)
		if err == nil {
			succs++
			successOps = ops
			checkSortedPadded(t, elems)
			continue
		}
		fails++
		if !errors.Is(err, ErrBucketOverflow) {
			t.Fatalf("seed %d: unexpected error %v", seed, err)
		}
		// The input array is untouched on failure.
		env2, a2 := bucketEnv(n, b, m, seed)
		fillArray(env2, a2, keys)
		want := readAll(a2)
		for i := range elems {
			if elems[i] != want[i] {
				t.Fatalf("seed %d: failed run modified the input at cell %d", seed, i)
			}
		}
		// Same seed, different input: the failure trace is a prefix of
		// that input's trace (success or a later failure).
		ops2, _, _ := run(seed, genKeys(rand.New(rand.NewPCG(seed, 99)), n*b, "rand"))
		if len(ops) > len(ops2) {
			// The other input failed even earlier; prefix check swaps.
			ops, ops2 = ops2, ops
		}
		for i := range ops {
			if ops[i] != ops2[i] {
				t.Fatalf("seed %d: failure trace diverges from same-seed trace at op %d", seed, i)
			}
		}
	}
	if fails == 0 || succs == 0 {
		t.Fatalf("seed scan saw %d failures and %d successes; want both (geometry mistuned)", fails, succs)
	}
	// Success traces are identical across inputs for the same seed: find a
	// succeeding seed and rerun it on a different input.
	for seed := uint64(1); seed <= 80; seed++ {
		ops, err, _ := run(seed, keys)
		if err != nil {
			continue
		}
		ops2, err2, _ := run(seed, genKeys(rand.New(rand.NewPCG(seed, 123)), n*b, "dup"))
		if err2 != nil {
			continue
		}
		if len(ops) != len(ops2) {
			t.Fatalf("seed %d: success trace lengths differ across inputs: %d vs %d", seed, len(ops), len(ops2))
		}
		for i := range ops {
			if ops[i] != ops2[i] {
				t.Fatalf("seed %d: success traces diverge at op %d", seed, i)
			}
		}
		_ = successOps
		return
	}
	t.Fatal("no seed succeeded on both inputs")
}

func TestBucketSorterRetriesThenSorts(t *testing.T) {
	// The adapter must always sort, even at the overflow-prone geometry.
	const n, b, m = 64, 4, 96
	for seed := uint64(1); seed <= 10; seed++ {
		env, a := bucketEnv(n, b, m, seed)
		r := rand.New(rand.NewPCG(seed, 77))
		keys := genKeys(r, n*b, "rand")
		fillArray(env, a, keys)
		BucketSorter(env, a, ByKey)
		if got := checkSortedPadded(t, readAll(a)); !sameMultiset(got, keys) {
			t.Fatalf("seed %d: multiset changed", seed)
		}
	}
}

func TestPickPolicy(t *testing.T) {
	// Within-cache inputs: bitonic's single windowed pass wins everywhere.
	if got := Pick(16, 8, 4096, "mem"); got != EngineBitonic {
		t.Errorf("small mem pick = %s, want bitonic", got)
	}
	// Large over HTTP: a deterministic merge-split engine must win — the
	// acceptance bar is beating randomized, which never wins a pick.
	got := Pick(1<<12, 8, 4096, "net")
	if got != EngineZigzag && got != EngineBucket {
		t.Errorf("large net pick = %s, want a merge-split engine", got)
	}
	// The pick is public: same geometry, same answer.
	for _, backend := range []string{"mem", "net"} {
		if Pick(1<<12, 8, 4096, backend) != Pick(1<<12, 8, 4096, backend) {
			t.Fatal("pick not deterministic")
		}
	}
	// Every pick is a valid engine the registry resolves.
	for _, n := range []int{1, 7, 64, 1 << 10, 1 << 14} {
		for _, backend := range []string{"mem", "net"} {
			name := Pick(n, 8, 512, backend)
			if !ValidEngine(name) {
				t.Fatalf("pick returned unknown engine %q", name)
			}
			if PickSorter(name) == nil {
				t.Fatalf("no sorter for picked engine %q", name)
			}
		}
	}
}

func TestEngineNameValidation(t *testing.T) {
	for _, n := range EngineNames() {
		if !ValidEngine(n) {
			t.Errorf("registry rejects its own name %q", n)
		}
	}
	if ValidEngine("quicksort") {
		t.Error("invalid name accepted")
	}
	if err := EngineNameError("quicksort"); err == nil {
		t.Error("no rejection error")
	}
}

func TestAutoSorterSorts(t *testing.T) {
	r := rand.New(rand.NewPCG(51, 52))
	for _, nBlocks := range []int{4, 64, 256} {
		env := extmem.NewEnv(4*nBlocks+16, 8, 512, 7)
		a := env.D.Alloc(nBlocks)
		keys := genKeys(r, nBlocks*8, "rand")
		fillArray(env, a, keys)
		Auto(env, a, ByKey)
		if got := checkSortedPadded(t, readAll(a)); !sameMultiset(got, keys) {
			t.Fatalf("n=%d: multiset changed", nBlocks)
		}
	}
}
