package obsort

import (
	"math/rand/v2"
	"testing"

	"oblivext/internal/extmem"
)

// InCachePar must be indistinguishable from InCache: same sorted order,
// same stability (equal keys keep their input order), cache returned to
// its starting balance — for every worker count, including ones that
// don't divide the buffer length.
func TestInCacheParWorkersMatchSerial(t *testing.T) {
	const n = 3 * parMinElems
	r := rand.New(rand.NewPCG(11, 11))
	base := make([]extmem.Element, n)
	for i := range base {
		// Few distinct keys so stability is actually exercised; Pos
		// records the input order the tie-break must preserve.
		base[i] = extmem.Element{Key: uint64(r.IntN(64)), Pos: uint64(i), Flags: extmem.FlagOccupied}
	}
	want := append([]extmem.Element(nil), base...)
	InCache(want, ByKey)

	for _, w := range []int{2, 3, 4, 8} {
		env := extmem.NewEnv(8, 4, 4*n, 1)
		env.Workers = w
		buf := append([]extmem.Element(nil), base...)
		before := env.Cache.Used()
		InCachePar(env, buf, ByKey)
		if after := env.Cache.Used(); after != before {
			t.Fatalf("workers=%d: scratch leaked, cache %d -> %d", w, before, after)
		}
		for i := range buf {
			if buf[i] != want[i] {
				t.Fatalf("workers=%d: element %d = %+v, serial %+v", w, i, buf[i], want[i])
			}
		}
	}
}

// When the accountant can't cover the merge scratch, InCachePar must fall
// back to the serial path rather than overdraw the cache — and still sort.
func TestInCacheParFallsBackUnderCachePressure(t *testing.T) {
	const n = parMinElems
	env := extmem.NewEnv(8, 4, n+n/2, 1)
	env.Workers = 4
	// Check out enough that free < n.
	held := env.Cache.Buf(n)
	defer env.Cache.Free(held)

	buf := make([]extmem.Element, n)
	for i := range buf {
		buf[i] = extmem.Element{Key: uint64(n - i), Pos: uint64(i), Flags: extmem.FlagOccupied}
	}
	InCachePar(env, buf, ByKey)
	if hw := env.Cache.HighWater(); hw > env.M {
		t.Fatalf("cache high water %d exceeds M=%d", hw, env.M)
	}
	for i := 1; i < len(buf); i++ {
		if ByKey(buf[i], buf[i-1]) {
			t.Fatalf("not sorted at %d", i)
		}
	}
}
