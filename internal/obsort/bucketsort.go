package obsort

import (
	"errors"
	"fmt"

	"oblivext/internal/extmem"
	"oblivext/internal/par"
	"oblivext/internal/route"
)

// This file implements bucket oblivious sort in the style of Asharov, Chan,
// Nayak, Pass, Ren and Shi (arXiv:2008.01765), adapted to this repository's
// block model. The pipeline:
//
//  1. Seed: stream the input into a 2× scratch arena of k1 half-loaded
//     buckets of Z cells, tagging every input cell — occupied or not — with
//     a uniform random bucket label from the tape and its scan index.
//  2. Random bin assignment: a log2(k1)-level butterfly of bucket
//     merge-splits routes each cell to the bucket matching its label. A
//     merge-split reads a bucket pair with one vectored round trip,
//     partitions privately by one label bit, and writes both buckets back
//     with one vectored round trip. A bucket receiving more than Z cells is
//     a declared failure (ErrBucketOverflow) with probability independent
//     of the data: labels come from the tape and every cell participates.
//  3. Distribution: the shuffled cells are split recursively into
//     order-ranges. A region samples tape-chosen blocks, picks splitters at
//     even quantiles of the sample (scan-index tie-breaks keep them exact
//     under duplicate keys), tags each cell with its range index, and a
//     second, mirror-image butterfly of merge-splits confines every range
//     to its sub-region. Regions that fit in half the cache are leaves,
//     sorted privately.
//  4. Finish: consolidation (Lemma 3) gathers the occupied cells into
//     full-or-empty blocks and the butterfly network (Theorem 6) compacts
//     them into a tight sorted prefix — the same finish the randomized
//     sort uses.
//
// Every address issued is a function of (len, B, M) and the tape, never the
// data. Phase 2 failures depend on the tape alone; phase 3 failures also
// depend on splitter sample quality (as do the randomized sort's deal
// overflows) — both are declared publicly and abort before the input array
// is touched, so a failed run's trace is a prefix of the success trace and
// the input is unchanged. The total I/O volume is O((N/B)·log(N/M)) with
// small constants, but each merge-split moves a full cache of blocks in 2
// round trips, which is what makes the engine competitive on high-latency
// backends at large N.

// ErrBucketOverflow reports a declared bucket-overflow failure: a bucket
// exceeded its Z-cell capacity. The input array is unchanged; retrying
// continues the tape and draws fresh labels.
var ErrBucketOverflow = errors.New("obsort: bucket overflow (declared failure; retry draws fresh labels)")

// padColor marks bucket-padding cells in the scratch arena (the maximum
// 24-bit color; cargo labels and range indices are checked to stay below).
const padColor = 0xFFFFFF

// bucketGeom holds the public geometry of a bucket sort run.
type bucketGeom struct {
	b     int // elements per block
	zb    int // blocks per bucket
	z     int // cells per bucket (zb·b)
	k1    int // number of buckets, a power of two
	g1    int // log2(k1)
	fLeaf int // max buckets per leaf region (fLeaf·z <= m/2)
}

// bucketGeometry derives the public geometry, reporting ok=false when the
// cache is too small for the bucket layout (callers fall back to a
// deterministic engine, mirroring the randomized sort's tiny-cache
// fallback). A merge-split holds two buckets in and two out (4Z cells)
// plus slack.
func bucketGeometry(nBlocks, b, m int) (bucketGeom, bool) {
	if nBlocks == 0 || (m-64)/(4*b) < 2 {
		return bucketGeom{}, false
	}
	nc := nBlocks * b
	if nc >= 1<<30 { // scan indices must fit the 31-bit CellDest field
		return bucketGeom{}, false
	}
	zb := 1 << extmem.FloorLog2((m-64)/(4*b))
	z := zb * b
	// Target load per bucket: Z/2 for comfortable bucket sizes, Z/4 when
	// the cache forces small buckets — splitter quantile errors compound
	// multiplicatively down the distribution recursion, and small-Z tails
	// are fat enough that half-loading makes declared overflows routine.
	loadDiv := 2
	if z < 512 {
		loadDiv = 4
	}
	k1 := 1 << extmem.CeilLog2(max(2, extmem.CeilDiv(loadDiv*nc, z)))
	if k1 >= padColor {
		return bucketGeom{}, false
	}
	fLeaf := 1 << extmem.FloorLog2(m/(2*z))
	if fLeaf < 1 {
		return bucketGeom{}, false
	}
	return bucketGeom{b: b, zb: zb, z: z, k1: k1, g1: extmem.CeilLog2(k1), fLeaf: fLeaf}, true
}

// regionFanout returns the split factor for a region of f > fLeaf buckets:
// a power of two dividing f, capped by the splitter budget the cache
// affords.
func (g bucketGeom) regionFanout(f, m int) int {
	k2 := f / g.fLeaf
	if k2 > 64 {
		k2 = 64
	}
	if lim := 1 << extmem.FloorLog2(max(2, m/(4*g.b))); k2 > lim {
		k2 = lim
	}
	// Splitter quality: demand at least 64 sample cells per range, so the
	// range loads concentrate well inside the Z-cell bucket capacity. A
	// thinner sample would make phase-3 overflows routine instead of rare.
	cells := g.sampleBlocks(f, m) * g.b
	if lim := 1 << extmem.FloorLog2(max(2, cells/64)); k2 > lim {
		k2 = lim
	}
	return max(2, k2)
}

// sampleBlocks returns the number of tape-chosen blocks a region of f
// buckets samples for splitters — capped so the sample fits in half the
// cache.
func (g bucketGeom) sampleBlocks(f, m int) int {
	return max(1, min(f*g.zb, m/(2*g.b)))
}

// BucketSort sorts the occupied elements of a in place with padded
// semantics (occupied ascend by less with scan-index tie-breaks, empties
// sink). It may fail with ErrBucketOverflow — a declared, public failure
// that leaves a unchanged. Geometry the cache cannot support falls back to
// the deterministic Bitonic engine and never fails.
//
// Side effects on success: the Color and CellDest scratch bits of every
// element are cleared; Key, Pos, Val and the occupied/marked/failed flags
// are preserved.
func BucketSort(env *extmem.Env, a extmem.Array, less Less) error {
	n := a.Len()
	if n == 0 {
		return nil
	}
	b := a.B()
	g, ok := bucketGeometry(n, b, env.M)
	if !ok {
		Bitonic(env, a, less)
		return nil
	}
	sp := env.Obs.Start("bucket")
	sp.SetAttrInt("blocks", int64(n))
	sp.SetPredicted(BucketIOCount(n, b, env.M), BucketRoundTrips(n, b, env.M))
	defer env.Obs.End(sp)
	mark := env.D.Mark()
	defer env.D.Release(mark)

	// ltCargo is the total order used for splitters, range indices and leaf
	// sorts: occupied first, then less, then the unique scan index — total
	// even when every key is equal, so splitters never skew a range.
	ltCargo := func(x, y extmem.Element) bool {
		if xo, yo := x.Occupied(), y.Occupied(); xo != yo {
			return xo
		}
		if less(x, y) {
			return true
		}
		if less(y, x) {
			return false
		}
		return x.CellDest() < y.CellDest()
	}

	w := env.D.Alloc(g.k1 * g.zb)
	sps := env.Obs.Start("seed")
	err := bucketSeed(env, a, w, g)
	env.Obs.End(sps)
	if err != nil {
		return err
	}
	spb := env.Obs.Start("bin-phase")
	err = bucketBinPhase(env, w, g)
	env.Obs.End(spb)
	if err != nil {
		return err
	}
	spr := env.Obs.Start("split-regions")
	err = bucketSplitRegion(env, w, g, 0, g.k1, ltCargo)
	env.Obs.End(spr)
	if err != nil {
		return err
	}

	// Finish exactly as the randomized sort does: gather occupied cells
	// into full blocks, butterfly-compact them to a tight prefix, and copy
	// back, clearing the scratch bits.
	spf := env.Obs.Start("gather")
	defer env.Obs.End(spf)
	cons, _ := route.Consolidate(env, w, extmem.Element.Occupied)
	route.CompactBlocksTight(env, cons, route.PredOccupied, 0)
	k := env.ScanBatchN(1, n)
	buf := env.Cache.Buf(k * b)
	for lo := 0; lo < n; lo += k {
		hi := min(lo+k, n)
		cons.ReadRange(lo, hi, buf[:(hi-lo)*b])
		for t := range buf[:(hi-lo)*b] {
			buf[t].SetCellDest(0)
			buf[t].SetColor(0)
		}
		a.WriteRange(lo, hi, buf[:(hi-lo)*b])
	}
	env.Cache.Free(buf)
	return nil
}

// bucketSeed streams the input into the scratch arena: bucket i receives
// the i-th slice of ceil(nc/k1) consecutive input cells (at most Z/2) plus
// padding. Every cell — occupied or not — draws a bucket label, so tape
// consumption and the bucket loads the labels induce are data-independent.
func bucketSeed(env *extmem.Env, a, w extmem.Array, g bucketGeom) error {
	n, b := a.Len(), g.b
	nc := n * b
	per := extmem.CeilDiv(nc, g.k1)
	pad := extmem.Element{}
	pad.SetColor(padColor)

	rk := env.ScanBatchN(2, n)
	rbuf := env.Cache.Buf(rk * b)
	wbuf := env.Cache.Buf(rk * b)
	wr := extmem.NewSeqWriter(w, 0, wbuf)
	rlo, rhi := 0, 0
	for i := 0; i < g.k1; i++ {
		lo, hi := min(i*per, nc), min((i+1)*per, nc)
		got := 0
		for blk := 0; blk < g.zb; blk++ {
			out := wr.Next()
			for t := range out {
				if lo+got >= hi {
					out[t] = pad
					continue
				}
				cell := lo + got
				got++
				cb := cell / b
				if cb >= rhi {
					rlo = cb
					rhi = min(rlo+rk, n)
					a.ReadRange(rlo, rhi, rbuf[:(rhi-rlo)*b])
				}
				e := rbuf[(cb-rlo)*b+cell%b]
				e.SetColor(env.Tape.IntN(g.k1))
				e.SetCellDest(cell)
				out[t] = e
			}
		}
	}
	wr.Flush()
	env.Cache.Free(wbuf)
	env.Cache.Free(rbuf)
	return nil
}

// bucketMergeSplit reads buckets i and j of w with one vectored round
// trip, partitions their cargo privately — side() returns 0 or 1 per cargo
// cell — and writes both buckets back with one vectored round trip, cargo
// compacted at the front and padding behind. More than Z cells on either
// side is a declared overflow.
func bucketMergeSplit(env *extmem.Env, w extmem.Array, g bucketGeom, i, j int, side func(extmem.Element) int) error {
	z := g.z
	rbuf := env.Cache.Buf(2 * z)
	obuf := env.Cache.Buf(2 * z)
	defer env.Cache.Free(obuf)
	defer env.Cache.Free(rbuf)
	idx := make([]int, 2*g.zb)
	for t := 0; t < g.zb; t++ {
		idx[t] = i*g.zb + t
		idx[g.zb+t] = j*g.zb + t
	}
	w.ReadMany(idx, rbuf)

	pad := extmem.Element{}
	pad.SetColor(padColor)

	if nw := env.WorkerCount(); nw > 1 && 2*z >= parMinElems {
		// Parallel binning: count each worker range's cargo per side, take
		// the serial prefix (which also detects overflow, before any write
		// goes back — the same externally visible failure point as the
		// serial path), then scatter each range into its disjoint slice of
		// obuf. The output is element-identical to the serial partition:
		// prefix offsets preserve the rbuf scan order on both sides.
		ranges := par.Split(2*z, nw)
		c0 := make([]int, len(ranges))
		c1 := make([]int, len(ranges))
		par.ForWorker(nw, len(ranges), func(_, rlo, rhi int) {
			for r := rlo; r < rhi; r++ {
				for _, e := range rbuf[ranges[r][0]:ranges[r][1]] {
					if e.Color() == padColor {
						continue
					}
					if side(e) == 0 {
						c0[r]++
					} else {
						c1[r]++
					}
				}
			}
		})
		n0, n1 := 0, 0
		off0 := make([]int, len(ranges))
		off1 := make([]int, len(ranges))
		for r := range ranges {
			off0[r], off1[r] = n0, n1
			n0 += c0[r]
			n1 += c1[r]
		}
		if n0 > z || n1 > z {
			return ErrBucketOverflow
		}
		par.ForWorker(nw, len(ranges), func(_, rlo, rhi int) {
			for r := rlo; r < rhi; r++ {
				p0, p1 := off0[r], z+off1[r]
				for _, e := range rbuf[ranges[r][0]:ranges[r][1]] {
					if e.Color() == padColor {
						continue
					}
					if side(e) == 0 {
						obuf[p0] = e
						p0++
					} else {
						obuf[p1] = e
						p1++
					}
				}
			}
		})
		for t := n0; t < z; t++ {
			obuf[t] = pad
		}
		for t := z + n1; t < 2*z; t++ {
			obuf[t] = pad
		}
		w.WriteMany(idx, obuf)
		return nil
	}

	n0, n1 := 0, z
	for _, e := range rbuf {
		if e.Color() == padColor {
			continue
		}
		if side(e) == 0 {
			if n0 == z {
				return ErrBucketOverflow
			}
			obuf[n0] = e
			n0++
		} else {
			if n1 == 2*z {
				return ErrBucketOverflow
			}
			obuf[n1] = e
			n1++
		}
	}
	for t := n0; t < z; t++ {
		obuf[t] = pad
	}
	for t := n1; t < 2*z; t++ {
		obuf[t] = pad
	}
	w.WriteMany(idx, obuf)
	return nil
}

// bucketBinPhase runs the label butterfly: level l pairs buckets whose
// indices differ in bit l and splits their cargo by label bit l. After
// log2(k1) levels every cell sits in the bucket its label names — a
// tape-random permutation of the cells across buckets.
func bucketBinPhase(env *extmem.Env, w extmem.Array, g bucketGeom) error {
	for l := 0; l < g.g1; l++ {
		s := 1 << l
		for base := 0; base < g.k1; base += 2 * s {
			for off := 0; off < s; off++ {
				i := base + off
				err := bucketMergeSplit(env, w, g, i, i+s, func(e extmem.Element) int {
					return e.Color() >> l & 1
				})
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// bucketSplitRegion recursively confines order-ranges of the region
// [lo, lo+f) of buckets to sub-regions until a region fits in half the
// cache, then sorts it privately. The recursion structure, sample sizes
// and every address depend only on the geometry and the tape.
func bucketSplitRegion(env *extmem.Env, w extmem.Array, g bucketGeom, lo, f int, ltCargo Less) error {
	b := g.b
	if f <= g.fLeaf {
		buf := env.Cache.Buf(f * g.z)
		defer env.Cache.Free(buf)
		w.ReadRange(lo*g.zb, (lo+f)*g.zb, buf)
		InCachePar(env, buf, func(x, y extmem.Element) bool {
			if xp, yp := x.Color() == padColor, y.Color() == padColor; xp || yp {
				return !xp && yp
			}
			return ltCargo(x, y)
		})
		w.WriteRange(lo*g.zb, (lo+f)*g.zb, buf)
		return nil
	}

	k2 := g.regionFanout(f, env.M)
	g2 := extmem.CeilLog2(k2)

	// Splitters: sort a tape-chosen block sample privately (padding last)
	// and take the k2−1 even quantiles of its cargo prefix. The bin phase
	// shuffled the cells, so the sample is an unbiased view of the region.
	sb := g.sampleBlocks(f, env.M)
	sbuf := env.Cache.Buf(sb * b)
	sidx := make([]int, sb)
	for t := range sidx {
		sidx[t] = lo*g.zb + env.Tape.IntN(f*g.zb)
	}
	w.ReadMany(sidx, sbuf)
	InCachePar(env, sbuf, func(x, y extmem.Element) bool {
		if xp, yp := x.Color() == padColor, y.Color() == padColor; xp || yp {
			return !xp && yp
		}
		return ltCargo(x, y)
	})
	nCargo := 0
	for _, e := range sbuf {
		if e.Color() != padColor {
			nCargo++
		}
	}
	spl := env.Cache.Buf(k2 - 1)
	nSpl := 0
	if nCargo > 0 {
		for c := 1; c < k2; c++ {
			spl[nSpl] = sbuf[(c*nCargo)/k2]
			nSpl++
		}
	}
	env.Cache.Free(sbuf)

	// Tag every cargo cell with its order-range index: the number of
	// splitters strictly below it. With no splitters every cell lands in
	// range 0 and the routing either converges or overflows — declared
	// either way.
	k := env.ScanBatchN(1, f*g.zb)
	abuf := env.Cache.Buf(k * b)
	nw := env.WorkerCount()
	for alo := lo * g.zb; alo < (lo+f)*g.zb; alo += k {
		ahi := min(alo+k, (lo+f)*g.zb)
		w.ReadRange(alo, ahi, abuf[:(ahi-alo)*b])
		// Per-cell range tagging is pure in-cache compute against the
		// private splitter table; fan it out across the worker pool.
		ne := (ahi - alo) * b
		pw := nw
		if ne < parMinElems {
			pw = 1
		}
		par.For(pw, ne, func(plo, phi int) {
			for t := plo; t < phi; t++ {
				if abuf[t].Color() == padColor {
					continue
				}
				bin := 0
				for s := 0; s < nSpl; s++ {
					if ltCargo(spl[s], abuf[t]) {
						bin = s + 1
					}
				}
				abuf[t].SetColor(bin)
			}
		})
		w.WriteRange(alo, ahi, abuf[:(ahi-alo)*b])
	}
	env.Cache.Free(abuf)
	env.Cache.Free(spl)

	// Distribution butterfly, mirror image of the bin phase: level l works
	// at bucket stride f/2^(l+1) and splits by range-index bit g2−1−l, so
	// after g2 levels range c occupies sub-region c.
	for l := 0; l < g2; l++ {
		s := f >> (l + 1)
		bit := uint(g2 - 1 - l)
		for base := lo; base < lo+f; base += 2 * s {
			for off := 0; off < s; off++ {
				i := base + off
				err := bucketMergeSplit(env, w, g, i, i+s, func(e extmem.Element) int {
					return e.Color() >> bit & 1
				})
				if err != nil {
					return err
				}
			}
		}
	}

	fp := f / k2
	for c := 0; c < k2; c++ {
		if err := bucketSplitRegion(env, w, g, lo+c*fp, fp, ltCargo); err != nil {
			return err
		}
	}
	return nil
}

// BucketSorter adapts BucketSort to the Sorter interface: a declared
// overflow retries with the tape's next labels (three attempts), then
// falls back to the deterministic Zigzag engine. The fallback keeps the
// adapter total — exactly the Monte-Carlo-to-Las-Vegas conversion the
// paper's Theorem 21 pipeline uses for its own failures.
func BucketSorter(env *extmem.Env, a extmem.Array, less Less) {
	for attempt := 0; attempt < 3; attempt++ {
		err := BucketSort(env, a, less)
		if err == nil {
			return
		}
		if !errors.Is(err, ErrBucketOverflow) {
			panic(fmt.Sprintf("obsort: bucket sort: %v", err))
		}
	}
	Zigzag(env, a, less)
}

// BucketIOCount predicts the exact number of block I/Os a successful
// BucketSort run performs — every pass is geometry-addressed, so the count
// is a function of (nBlocks, B, M) alone. Returns 0 when the geometry is
// unsupported (the call would fall back to Bitonic).
func BucketIOCount(nBlocks, b, m int) int64 {
	g, ok := bucketGeometry(nBlocks, b, m)
	if !ok {
		return 0
	}
	wb := g.k1 * g.zb
	// Seed: read the input once, write the arena once.
	total := int64(nBlocks + wb)
	// Bin phase: g1 levels of k1/2 merge-splits moving 4zb blocks each.
	total += int64(g.g1) * int64(g.k1/2) * int64(4*g.zb)
	// Distribution recursion.
	var walk func(f int) int64
	walk = func(f int) int64 {
		if f <= g.fLeaf {
			return int64(2 * f * g.zb)
		}
		k2 := g.regionFanout(f, m)
		g2 := extmem.CeilLog2(k2)
		io := int64(g.sampleBlocks(f, m))            // splitter sample
		io += int64(2 * f * g.zb)                    // range tagging pass
		io += int64(g2) * int64(f/2) * int64(4*g.zb) // distribution butterfly
		return io + int64(k2)*walk(f/k2)
	}
	total += walk(g.k1)
	// Finish: consolidation, butterfly compaction, copy-back.
	total += int64(2 * wb)
	total += int64(route.ButterflyPassCount(wb, 0, m/b)) * int64(2*wb)
	total += int64(2 * nBlocks)
	return total
}

// BucketSupported reports whether the geometry lets BucketSort run its own
// pipeline rather than falling back to Bitonic.
func BucketSupported(nBlocks, b, m int) bool {
	_, ok := bucketGeometry(nBlocks, b, m)
	return ok
}

// BucketRoundTrips estimates the vectored round trips of a successful run:
// 2 per merge-split and leaf, plus the chunked linear passes. Returns 0
// when unsupported.
func BucketRoundTrips(nBlocks, b, m int) int64 {
	g, ok := bucketGeometry(nBlocks, b, m)
	if !ok {
		return 0
	}
	wb := g.k1 * g.zb
	chunk := func(blocks, streams int) int64 {
		k := max(1, (m/b)/(streams+1)-1)
		return int64(extmem.CeilDiv(blocks, k))
	}
	rt := chunk(nBlocks, 2) + chunk(wb, 2) // seed read + write
	rt += int64(g.g1) * int64(g.k1/2) * 2  // bin phase
	var walk func(f int) int64
	walk = func(f int) int64 {
		if f <= g.fLeaf {
			return 2
		}
		k2 := g.regionFanout(f, m)
		g2 := extmem.CeilLog2(k2)
		r := int64(1)                   // sample
		r += 2 * chunk(f*g.zb, 1)       // tagging
		r += int64(g2) * int64(f/2) * 2 // butterfly
		return r + int64(k2)*walk(f/k2)
	}
	rt += walk(g.k1)
	rt += 2 * chunk(wb, 2) // consolidate
	rt += int64(route.ButterflyPassCount(wb, 0, m/b)) * 2 * chunk(wb, 1)
	rt += 2 * chunk(nBlocks, 1) // copy-back
	return rt
}
