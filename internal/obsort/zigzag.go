package obsort

import (
	"oblivext/internal/extmem"
)

// This file implements the deterministic merge-round sorter in the family
// of Goodrich's zig-zag sort (arXiv:1403.2777): an O(n log n)-per-round,
// data-oblivious external sort built from merge-split rounds over
// cache-sized runs. The run schedule here is Batcher's odd-even merge
// network applied at run granularity: by the merge-split theorem (replace
// each wire of a sorting network with a sorted run of r elements and each
// comparator with a merge-split, and the network sorts the blocked input),
// the result is a correct sort with a fixed, data-independent trace.
//
// With K = ceil(N/(M/4)) runs the external cost is
// O((N/B)·(1 + log² K)) block I/Os in exactly 2 round trips per
// merge-split — one vectored read, one vectored write — which is what makes
// it the round-trip winner over bitonic on high-latency backends: bitonic's
// streaming levels pay one round trip per ScanBatch of block pairs, while a
// merge-split moves half a cache per round trip.
//
// Unlike Bitonic, Zigzag does not require the block size to be a power of
// two, and it needs no scratch arena: runs past the end of the array are
// virtual +infinity pads, skipped by ForEachComparator.

// Zigzag sorts the array with deterministic data-oblivious merge-split
// rounds. Requirements: M >= 4B. The address trace depends only on
// (len, B, M).
func Zigzag(env *extmem.Env, a extmem.Array, less Less) {
	n := a.Len()
	if n == 0 {
		return
	}
	b := a.B()
	if env.M < 4*b {
		panic("obsort: Zigzag requires M >= 4B")
	}
	sp := env.Obs.Start("zigzag")
	sp.SetAttrInt("blocks", int64(n))
	sp.SetPredicted(ZigzagIOCount(n, b, env.M), ZigzagRoundTrips(n, b, env.M))
	defer env.Obs.End(sp)
	cb := zigzagRunBlocks(b, env.M)
	k := extmem.CeilDiv(n, cb)
	runLen := func(r int) int {
		if (r+1)*cb <= n {
			return cb
		}
		return n - r*cb
	}

	buf := env.Cache.Buf(2 * cb * b)
	idx := make([]int, 2*cb)

	// Round 0: sort each run privately — one vectored read and one vectored
	// write per run.
	sp0 := env.Obs.Start("run-formation")
	sp0.SetAttrInt("runs", int64(k))
	sp0.SetPredicted(2*int64(n), 2*int64(k))
	for r := 0; r < k; r++ {
		lo, l := r*cb, runLen(r)
		a.ReadRange(lo, lo+l, buf[:l*b])
		InCachePar(env, buf[:l*b], less)
		a.WriteRange(lo, lo+l, buf[:l*b])
	}
	env.Obs.End(sp0)

	// Merge rounds: each comparator (i, j) of the run-level network becomes
	// a merge-split — read both runs in one vectored round trip, sort the
	// concatenation privately (a stable sort of two sorted runs is their
	// merge), and write the low part back to run i and the high part to
	// run j.
	spm := env.Obs.Start("merge-rounds")
	spm.SetAttrInt("merge-splits", int64(ZigzagMergeSplits(n, b, env.M)))
	ForEachComparator(k, func(i, j int) {
		li, lj := runLen(i), runLen(j)
		for t := 0; t < li; t++ {
			idx[t] = i*cb + t
		}
		for t := 0; t < lj; t++ {
			idx[li+t] = j*cb + t
		}
		a.ReadMany(idx[:li+lj], buf[:(li+lj)*b])
		InCachePar(env, buf[:(li+lj)*b], less)
		a.WriteMany(idx[:li+lj], buf[:(li+lj)*b])
	})
	env.Obs.End(spm)

	env.Cache.Free(buf)
}

// zigzagRunBlocks returns the run size in blocks: two runs plus slack must
// fit in cache, so a run is a quarter of the cache, at least one block.
func zigzagRunBlocks(b, m int) int {
	return max(1, m/(4*b))
}

// ZigzagSorter adapts Zigzag to the Sorter interface.
func ZigzagSorter(env *extmem.Env, a extmem.Array, less Less) { Zigzag(env, a, less) }

// ZigzagMergeSplits predicts the number of merge-splits Zigzag performs:
// the comparators of Batcher's network on ceil(n/runBlocks) run-wires,
// minus the ones ForEachComparator skips as virtual pads.
func ZigzagMergeSplits(nBlocks, b, m int) int {
	cb := zigzagRunBlocks(b, m)
	k := extmem.CeilDiv(nBlocks, cb)
	c := 0
	ForEachComparator(k, func(_, _ int) { c++ })
	return c
}

// ZigzagIOCount predicts the exact number of block I/Os Zigzag performs:
// one read+write of every block for round 0, plus one read+write of both
// runs per merge-split. The sorter tests check measured I/O against this.
func ZigzagIOCount(nBlocks, b, m int) int64 {
	if nBlocks == 0 {
		return 0
	}
	cb := zigzagRunBlocks(b, m)
	k := extmem.CeilDiv(nBlocks, cb)
	runLen := func(r int) int {
		if (r+1)*cb <= nBlocks {
			return cb
		}
		return nBlocks - r*cb
	}
	total := int64(2 * nBlocks)
	ForEachComparator(k, func(i, j int) {
		total += int64(2 * (runLen(i) + runLen(j)))
	})
	return total
}

// ZigzagRoundTrips predicts the number of vectored round trips: two per run
// in round 0 and two per merge-split.
func ZigzagRoundTrips(nBlocks, b, m int) int64 {
	if nBlocks == 0 {
		return 0
	}
	cb := zigzagRunBlocks(b, m)
	k := extmem.CeilDiv(nBlocks, cb)
	return int64(2*k) + 2*int64(ZigzagMergeSplits(nBlocks, b, m))
}
