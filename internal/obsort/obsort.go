// Package obsort provides deterministic data-oblivious sorting in the
// external-memory model.
//
// It realizes Lemma 2 of the paper (the deterministic oblivious sort of
// Goodrich–Mitzenmacher used as a subroutine throughout) as an external
// bitonic sort whose in-cache stages are free: every network level with
// stride < C (the cache window) is executed privately, so the I/O cost is
// O((N/B)·(1 + log²(N/C))) with a fixed, data-independent address trace.
// It also provides Leighton's columnsort (the Chaudhry–Cormen baseline the
// paper discusses, size-limited to N ≤ s·r with r ≥ 2(s−1)²) and an
// in-memory Batcher odd-even merge network used for in-cache circuit sorts.
//
// Sorting here always has padded semantics: occupied elements ascend by
// (Key, Pos) — or a caller-supplied order — and unoccupied cells sink to
// the end, implementing the paper's "+infinity" empty cells.
package obsort

import (
	"fmt"
	"sort"

	"oblivext/internal/extmem"
	"oblivext/internal/par"
)

// Less orders elements. Implementations must be strict weak orderings and
// should sort unoccupied elements after occupied ones when used with padded
// arrays.
type Less func(a, b extmem.Element) bool

// ByKey is the default order: occupied before empty, then (Key, Pos).
func ByKey(a, b extmem.Element) bool { return a.Less(b) }

// ByPos orders occupied elements by their Pos field (original position),
// with empties last — the order-restoration sort of Theorem 4.
func ByPos(a, b extmem.Element) bool {
	ao, bo := a.Occupied(), b.Occupied()
	if ao != bo {
		return ao
	}
	return a.Pos < b.Pos
}

// ByRawKey orders strictly by (Key, Pos) with no occupancy special-casing;
// used when dummy records carry meaningful sort keys (ORAM rebuilds).
func ByRawKey(a, b extmem.Element) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Pos < b.Pos
}

// Sorter is a pluggable oblivious external-memory sort over an array of
// blocks. The ORAM simulation and several experiments swap Sorters to
// compare the paper's randomized sort against this package's deterministic
// ones.
type Sorter func(env *extmem.Env, a extmem.Array, less Less)

// InCache sorts a private buffer. Computation inside Alice's cache is
// invisible to the adversary, so no circuit is needed; this is the base
// case every external algorithm bottoms out in.
func InCache(buf []extmem.Element, less Less) {
	sort.SliceStable(buf, func(i, j int) bool { return less(buf[i], buf[j]) })
}

// Bitonic sorts the array element-wise with a data-oblivious external
// bitonic network. The address trace depends only on (len, B, M).
//
// Requirements: B a power of two and M ≥ 4B. Arrays whose block count is
// not a power of two are padded into a scratch arena (empty cells sort
// last, so the copy-back keeps padded semantics).
func Bitonic(env *extmem.Env, a extmem.Array, less Less) {
	n := a.Len()
	if n == 0 {
		return
	}
	b := a.B()
	if b&(b-1) != 0 {
		panic(fmt.Sprintf("obsort: block size %d not a power of two", b))
	}
	if env.M < 4*b {
		panic("obsort: Bitonic requires M >= 4B")
	}
	sp := env.Obs.Start("bitonic")
	sp.SetAttrInt("blocks", int64(n))
	sp.SetAttrInt("passes", int64(BitonicPassCount(n, b, env.M)))
	defer env.Obs.End(sp)
	mark := env.D.Mark()
	defer env.D.Release(mark)

	np := 1 << extmem.CeilLog2(n)
	work := a
	if np != n {
		work = env.D.Alloc(np)
		k := env.ScanBatchN(1, np)
		buf := env.Cache.Buf(k * b)
		for lo := 0; lo < n; lo += k {
			hi := min(lo+k, n)
			a.ReadRange(lo, hi, buf[:(hi-lo)*b])
			work.WriteRange(lo, hi, buf[:(hi-lo)*b])
		}
		for i := range buf {
			buf[i] = extmem.Element{}
		}
		for lo := n; lo < np; lo += k {
			hi := min(lo+k, np)
			work.WriteRange(lo, hi, buf[:(hi-lo)*b])
		}
		env.Cache.Free(buf)
	}

	ne := np * b // element count, a power of two
	c := 1 << extmem.FloorLog2(env.M/2)
	if c > ne {
		c = ne
	}
	if c < 2*b && ne > c {
		panic("obsort: cache window smaller than two blocks")
	}

	win := env.Cache.Buf(c)
	wblocks := c / b
	nw := env.WorkerCount()
	loadWin := func(w int) {
		work.ReadRange(w*wblocks, (w+1)*wblocks, win)
	}
	storeWin := func(w int) {
		work.WriteRange(w*wblocks, (w+1)*wblocks, win)
	}

	// Stage A: all network stages with size <= c act within c-aligned
	// windows; run them per window in one pass.
	spa := env.Obs.Start("windowed-stages")
	spa.SetPredicted(2*int64(np), -1)
	for w := 0; w < ne/c; w++ {
		loadWin(w)
		base := w * c
		for size := 2; size <= c; size <<= 1 {
			for stride := size / 2; stride >= 1; stride >>= 1 {
				levelInCachePar(win, base, size, stride, less, nw)
			}
		}
		storeWin(w)
	}
	env.Obs.End(spa)

	// Stages with size > c: strides >= c stream block pairs — pk pairs per
	// vectored round trip (the pairs of one level are disjoint, so a batch
	// reads 2·pk blocks, compare-exchanges privately, and writes them back);
	// the remaining strides < c finish within windows.
	pk := max(1, env.ScanBatch(1)/2)
	pbuf := env.Cache.Buf(2 * pk * b)
	pidx := make([]int, 2*pk)
	for size := 2 * c; size <= ne; size <<= 1 {
		sps := env.Obs.Start("merge-stage")
		sps.SetAttrInt("size", int64(size))
		for stride := size / 2; stride >= c; stride >>= 1 {
			sb := stride / b
			cnt := 0
			flush := func() {
				if cnt == 0 {
					return
				}
				work.ReadMany(pidx[:2*cnt], pbuf[:2*cnt*b])
				// The pairs of one level are disjoint, so the in-cache
				// compare-exchanges fan out across the worker pool; the
				// vectored reads/writes around them are unchanged.
				pw := nw
				if cnt < 4 {
					pw = 1
				}
				par.For(pw, cnt, func(plo, phi int) {
					for p := plo; p < phi; p++ {
						bufA := pbuf[2*p*b : (2*p+1)*b]
						bufB := pbuf[(2*p+1)*b : (2*p+2)*b]
						for t := 0; t < b; t++ {
							i := pidx[2*p]*b + t
							asc := i&size == 0
							if asc == less(bufB[t], bufA[t]) {
								bufA[t], bufB[t] = bufB[t], bufA[t]
							}
						}
					}
				})
				work.WriteMany(pidx[:2*cnt], pbuf[:2*cnt*b])
				cnt = 0
			}
			for blk := 0; blk < np; blk++ {
				if blk&sb != 0 {
					continue
				}
				pidx[2*cnt] = blk
				pidx[2*cnt+1] = blk + sb
				cnt++
				if cnt == pk {
					flush()
				}
			}
			flush()
		}
		for w := 0; w < ne/c; w++ {
			loadWin(w)
			base := w * c
			for stride := c / 2; stride >= 1; stride >>= 1 {
				levelInCachePar(win, base, size, stride, less, nw)
			}
			storeWin(w)
		}
		env.Obs.End(sps)
	}
	env.Cache.Free(pbuf)
	env.Cache.Free(win)

	if np != n {
		k := env.ScanBatchN(1, n)
		buf := env.Cache.Buf(k * b)
		for lo := 0; lo < n; lo += k {
			hi := min(lo+k, n)
			work.ReadRange(lo, hi, buf[:(hi-lo)*b])
			a.WriteRange(lo, hi, buf[:(hi-lo)*b])
		}
		env.Cache.Free(buf)
	}
}

// levelInCache applies one bitonic network level to a private window whose
// first element has the given global index.
func levelInCache(win []extmem.Element, base, size, stride int, less Less) {
	for li := 0; li < len(win); li++ {
		i := base + li
		if i&stride != 0 || li+stride >= len(win) {
			continue
		}
		asc := i&size == 0
		if asc == less(win[li+stride], win[li]) {
			win[li], win[li+stride] = win[li+stride], win[li]
		}
	}
}

// parMinElems is the private-buffer length below which element-wise
// parallel helpers stay serial — the fan-out must earn its spawns. The
// threshold compares public lengths only.
const parMinElems = 2048

// levelInCachePar is levelInCache fanned out across nw workers. A level's
// compare-exchange pairs (li, li+stride) with li&stride == 0 live entirely
// inside 2·stride-aligned groups, and the window base is always a multiple
// of 2·stride (windows are c-aligned, stride < c), so splitting the window
// at group boundaries gives workers disjoint element ranges. The network —
// and therefore the result and the trace — is identical to the serial
// level; only which goroutine executes each exchange changes.
func levelInCachePar(win []extmem.Element, base, size, stride int, less Less, nw int) {
	group := 2 * stride
	ngroups := (len(win) + group - 1) / group
	if nw <= 1 || len(win) < parMinElems || ngroups < 2 {
		levelInCache(win, base, size, stride, less)
		return
	}
	par.For(nw, ngroups, func(glo, ghi int) {
		for g := glo; g < ghi; g++ {
			lo := g * group
			hi := min(lo+group, len(win))
			for li := lo; li < hi; li++ {
				i := base + li
				if i&stride != 0 || li+stride >= len(win) {
					continue
				}
				asc := i&size == 0
				if asc == less(win[li+stride], win[li]) {
					win[li], win[li+stride] = win[li+stride], win[li]
				}
			}
		}
	})
}

// BitonicPassCount predicts the number of full-array passes Bitonic makes
// (excluding the padding copies): 1 for stage A plus, per stage above the
// window size, one streaming pass per stride >= C and one windowed pass.
// The E9 experiment checks measured I/Os against this.
func BitonicPassCount(nBlocks, b, m int) int {
	np := 1 << extmem.CeilLog2(nBlocks)
	ne := np * b
	c := 1 << extmem.FloorLog2(m/2)
	if c > ne {
		c = ne
	}
	passes := 1
	for size := 2 * c; size <= ne; size <<= 1 {
		for stride := size / 2; stride >= c; stride >>= 1 {
			passes++
		}
		passes++
	}
	return passes
}
