package obsort

import (
	"math/rand/v2"
	"testing"

	"oblivext/internal/extmem"
	"oblivext/internal/trace"
)

// fillArray writes the given keys (all occupied) into the array, padding
// remaining cells as empty, and returns the number of occupied elements.
func fillArray(env *extmem.Env, a extmem.Array, keys []uint64) {
	b := a.B()
	buf := make([]extmem.Element, b)
	idx := 0
	for blk := 0; blk < a.Len(); blk++ {
		for t := 0; t < b; t++ {
			if idx < len(keys) {
				buf[t] = extmem.Element{Key: keys[idx], Val: keys[idx] * 3, Pos: uint64(idx), Flags: extmem.FlagOccupied}
				idx++
			} else {
				buf[t] = extmem.Element{}
			}
		}
		a.Write(blk, buf)
	}
}

// readAll returns all elements of the array in order.
func readAll(a extmem.Array) []extmem.Element {
	b := a.B()
	out := make([]extmem.Element, 0, a.Len()*b)
	buf := make([]extmem.Element, b)
	for blk := 0; blk < a.Len(); blk++ {
		a.Read(blk, buf)
		out = append(out, buf...)
	}
	return out
}

// checkSortedPadded verifies padded sort semantics: occupied elements
// non-decreasing and all empties after all occupied; returns the occupied
// keys in order.
func checkSortedPadded(t *testing.T, elems []extmem.Element) []uint64 {
	t.Helper()
	var keys []uint64
	seenEmpty := false
	for i, e := range elems {
		if !e.Occupied() {
			seenEmpty = true
			continue
		}
		if seenEmpty {
			t.Fatalf("occupied element at %d after an empty cell", i)
		}
		if len(keys) > 0 && keys[len(keys)-1] > e.Key {
			t.Fatalf("out of order at %d: %d > %d", i, keys[len(keys)-1], e.Key)
		}
		keys = append(keys, e.Key)
	}
	return keys
}

func multiset(keys []uint64) map[uint64]int {
	m := map[uint64]int{}
	for _, k := range keys {
		m[k]++
	}
	return m
}

func sameMultiset(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	ma, mb := multiset(a), multiset(b)
	for k, v := range ma {
		if mb[k] != v {
			return false
		}
	}
	return true
}

func genKeys(r *rand.Rand, n int, kind string) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		switch kind {
		case "sorted":
			keys[i] = uint64(i)
		case "reverse":
			keys[i] = uint64(n - i)
		case "dup":
			keys[i] = uint64(r.IntN(4))
		case "equal":
			keys[i] = 7
		default:
			keys[i] = r.Uint64() % 1_000_000
		}
	}
	return keys
}

func TestBitonicSortCorrectness(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for _, b := range []int{2, 8} {
		for _, nBlocks := range []int{1, 2, 3, 5, 8, 17, 64} {
			for _, kind := range []string{"rand", "sorted", "reverse", "dup", "equal"} {
				for _, frac := range []int{100, 60} { // occupancy percent
					env := extmem.NewEnv(4*nBlocks+16, b, 8*b, 7)
					a := env.D.Alloc(nBlocks)
					nk := nBlocks * b * frac / 100
					keys := genKeys(r, nk, kind)
					fillArray(env, a, keys)
					Bitonic(env, a, ByKey)
					got := checkSortedPadded(t, readAll(a))
					if !sameMultiset(got, keys) {
						t.Fatalf("b=%d n=%d kind=%s frac=%d: multiset changed", b, nBlocks, kind, frac)
					}
				}
			}
		}
	}
}

func TestBitonicRespectsCacheBound(t *testing.T) {
	env := extmem.NewEnv(64, 4, 32, 3)
	a := env.D.Alloc(32)
	r := rand.New(rand.NewPCG(5, 5))
	fillArray(env, a, genKeys(r, 128, "rand"))
	env.Cache.ResetHighWater()
	Bitonic(env, a, ByKey)
	if hw := env.Cache.HighWater(); hw > env.M {
		t.Fatalf("bitonic used %d private elements, budget %d", hw, env.M)
	}
}

// TestBitonicOblivious is the core security property: with the same
// geometry, two different inputs produce bit-identical traces.
func TestBitonicOblivious(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 9))
	run := func(keys []uint64) trace.Summary {
		env := extmem.NewEnv(64, 4, 32, 3)
		a := env.D.Alloc(24)
		fillArray(env, a, keys)
		rec := trace.NewRecorder(0)
		env.D.SetRecorder(rec)
		Bitonic(env, a, ByKey)
		return rec.Summarize()
	}
	s1 := run(genKeys(r, 96, "rand"))
	s2 := run(genKeys(r, 96, "equal"))
	s3 := run(genKeys(r, 96, "reverse"))
	if !s1.Equal(s2) || !s1.Equal(s3) {
		t.Fatalf("bitonic trace depends on data: %v %v %v", s1, s2, s3)
	}
}

func TestBitonicSortsByPos(t *testing.T) {
	env := extmem.NewEnv(32, 4, 32, 3)
	a := env.D.Alloc(4)
	// Occupied elements with positions in reverse order.
	b := a.B()
	buf := make([]extmem.Element, b)
	pos := uint64(16)
	for blk := 0; blk < 4; blk++ {
		for tt := 0; tt < b; tt++ {
			pos--
			buf[tt] = extmem.Element{Key: 5, Pos: pos, Flags: extmem.FlagOccupied}
		}
		a.Write(blk, buf)
	}
	Bitonic(env, a, ByPos)
	elems := readAll(a)
	for i, e := range elems {
		if e.Pos != uint64(i) {
			t.Fatalf("pos order broken at %d: %d", i, e.Pos)
		}
	}
}

func TestBitonicPassCountMatchesMeasuredIO(t *testing.T) {
	for _, cfg := range []struct{ n, b, m int }{{16, 4, 16}, {64, 4, 32}, {128, 8, 64}} {
		env := extmem.NewEnv(cfg.n*2, cfg.b, cfg.m, 1)
		a := env.D.Alloc(cfg.n)
		r := rand.New(rand.NewPCG(2, 2))
		fillArray(env, a, genKeys(r, cfg.n*cfg.b, "rand"))
		env.D.ResetStats()
		Bitonic(env, a, ByKey)
		st := env.D.Stats()
		want := int64(BitonicPassCount(cfg.n, cfg.b, cfg.m)) * int64(cfg.n) * 2
		if st.Total() != want {
			t.Errorf("n=%d b=%d m=%d: measured %d I/Os, predicted %d", cfg.n, cfg.b, cfg.m, st.Total(), want)
		}
	}
}

func TestColumnSortCorrectness(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for _, cfg := range []struct{ n, b, m int }{
		{4, 4, 64}, {16, 4, 64}, {32, 4, 64}, {60, 4, 96}, {17, 2, 48},
	} {
		for _, kind := range []string{"rand", "reverse", "dup"} {
			env := extmem.NewEnv(4*cfg.n+16, cfg.b, cfg.m, 7)
			a := env.D.Alloc(cfg.n)
			keys := genKeys(r, cfg.n*cfg.b, kind)
			fillArray(env, a, keys)
			if err := ColumnSort(env, a, ByKey); err != nil {
				t.Fatalf("n=%d: %v", cfg.n, err)
			}
			got := checkSortedPadded(t, readAll(a))
			if !sameMultiset(got, keys) {
				t.Fatalf("n=%d b=%d kind=%s: multiset changed", cfg.n, cfg.b, kind)
			}
		}
	}
}

func TestColumnSortSizeLimit(t *testing.T) {
	// Tiny cache, big input: r >= 2(s-1)^2 must fail — the paper's point
	// about Chaudhry–Cormen being size-limited.
	if _, _, err := ColumnSortGeometry(1<<16, 4, 64); err == nil {
		t.Fatal("expected ErrTooLarge for N >> M^{3/2}")
	}
	// Comfortable geometry succeeds.
	if _, _, err := ColumnSortGeometry(64, 4, 1024); err != nil {
		t.Fatalf("unexpected geometry error: %v", err)
	}
}

func TestColumnSortOblivious(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 12))
	run := func(keys []uint64) trace.Summary {
		env := extmem.NewEnv(128, 4, 64, 3)
		a := env.D.Alloc(32)
		fillArray(env, a, keys)
		rec := trace.NewRecorder(0)
		env.D.SetRecorder(rec)
		if err := ColumnSort(env, a, ByKey); err != nil {
			t.Fatal(err)
		}
		return rec.Summarize()
	}
	if !run(genKeys(r, 128, "rand")).Equal(run(genKeys(r, 128, "sorted"))) {
		t.Fatal("columnsort trace depends on data")
	}
}

// TestOddEvenNetworkZeroOne verifies the Batcher network sorts via the 0-1
// principle: a comparator network sorts all inputs iff it sorts all 0-1
// inputs, checked exhaustively for n <= 12.
func TestOddEvenNetworkZeroOne(t *testing.T) {
	for n := 1; n <= 12; n++ {
		for mask := 0; mask < 1<<n; mask++ {
			buf := make([]extmem.Element, n)
			ones := 0
			for i := range buf {
				k := uint64(mask >> i & 1)
				ones += int(k)
				buf[i] = extmem.Element{Key: k, Flags: extmem.FlagOccupied}
			}
			OddEvenSort(buf, ByKey)
			for i, e := range buf {
				want := uint64(0)
				if i >= n-ones {
					want = 1
				}
				if e.Key != want {
					t.Fatalf("n=%d mask=%b: position %d = %d, want %d", n, mask, i, e.Key, want)
				}
			}
		}
	}
}

func TestOddEvenComparatorCountGrowth(t *testing.T) {
	// Θ(n log² n): ratios between successive powers of two stay modest.
	c8 := OddEvenComparatorCount(8)
	c64 := OddEvenComparatorCount(64)
	if c8 != 19 { // known value for Batcher odd-even mergesort on 8 wires
		t.Fatalf("comparators(8) = %d, want 19", c8)
	}
	if c64 <= c8*8 {
		t.Fatalf("comparator growth too slow: %d vs %d", c64, c8)
	}
}

func TestInCacheStability(t *testing.T) {
	buf := []extmem.Element{
		{Key: 2, Val: 1, Flags: extmem.FlagOccupied},
		{Key: 1, Val: 1, Flags: extmem.FlagOccupied},
		{Key: 2, Val: 2, Flags: extmem.FlagOccupied},
		{Key: 1, Val: 2, Flags: extmem.FlagOccupied},
	}
	InCache(buf, func(a, b extmem.Element) bool { return a.Key < b.Key })
	if buf[0].Val != 1 || buf[1].Val != 2 || buf[2].Val != 1 || buf[3].Val != 2 {
		t.Fatalf("InCache not stable: %+v", buf)
	}
}
