package obsort

import (
	"oblivext/internal/extmem"
	"oblivext/internal/par"
)

// InCachePar sorts a private buffer like InCache, fanning the work out
// across env.Workers goroutines: the buffer splits into contiguous chunks
// (a pure function of its public length and the worker count), each worker
// stably sorts its chunk, and a serial k-way merge — ties resolved by
// chunk order, so the whole is stable — recombines them through a scratch
// buffer checked out of the same cache accountant.
//
// The scratch doubles the buffer's cache footprint, so the parallel path
// runs only when the accountant has len(buf) elements free; otherwise (or
// with Workers <= 1, or a buffer too small to amortize the spawns) it
// falls back to the serial InCache. Both the fallback decision and the
// chunk boundaries depend only on public geometry — M, the current cache
// checkout, len(buf), Workers — never on element values, so the trace and
// the result are identical for every worker count.
func InCachePar(env *extmem.Env, buf []extmem.Element, less Less) {
	w := env.WorkerCount()
	if w <= 1 || len(buf) < parMinElems {
		InCache(buf, less)
		return
	}
	if free := env.M - env.Cache.Used(); free < len(buf) {
		InCache(buf, less)
		return
	}
	scratch := env.Cache.Buf(len(buf))
	ranges := par.Split(len(buf), w)
	par.For(w, len(ranges), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			InCache(buf[ranges[i][0]:ranges[i][1]], less)
		}
	})

	// Serial stable k-way merge of the sorted chunks into scratch: among
	// the current heads, pick the smallest, preferring the lowest chunk on
	// ties (strict less-than when comparing against the current best).
	heads := make([]int, len(ranges))
	for i, r := range ranges {
		heads[i] = r[0]
	}
	for out := range scratch {
		best := -1
		for i, r := range ranges {
			if heads[i] >= r[1] {
				continue
			}
			if best < 0 || less(buf[heads[i]], buf[heads[best]]) {
				best = i
			}
		}
		scratch[out] = buf[heads[best]]
		heads[best]++
	}
	par.For(w, len(buf), func(lo, hi int) {
		copy(buf[lo:hi], scratch[lo:hi])
	})
	env.Cache.Free(scratch)
}
