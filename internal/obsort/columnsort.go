package obsort

import (
	"errors"
	"fmt"

	"oblivext/internal/extmem"
)

// ErrTooLarge reports that the input exceeds columnsort's size limit: with
// in-cache column sorts the algorithm needs an r×s matrix with r ≤ M-ish
// and r ≥ 2(s−1)², capping N at roughly M^{3/2}/√2. This is exactly the
// size limitation the paper attributes to the Chaudhry–Cormen approach.
var ErrTooLarge = errors.New("obsort: input exceeds columnsort size limit (r >= 2(s-1)^2 with r <= cache unsatisfiable)")

// ColumnSortGeometry reports the r×s matrix columnsort would use for an
// array of n blocks of b elements under cache m, or an error if the size
// limit is exceeded.
func ColumnSortGeometry(nBlocks, b, m int) (r, s int, err error) {
	ne := nBlocks * b
	if ne == 0 {
		return 0, 0, nil
	}
	// Budget: a column of r elements plus one block in cache during sorts,
	// and 2s blocks during the transpose bands.
	maxR := m - b
	if maxR < 2*b {
		return 0, 0, fmt.Errorf("obsort: cache too small for columnsort (M=%d, B=%d)", m, b)
	}
	// Round r down to a multiple of 2B for block alignment of half-columns.
	maxR -= maxR % (2 * b)
	s = extmem.CeilDiv(ne, maxR)
	r = extmem.CeilDiv(extmem.CeilDiv(ne, s), 2*b) * (2 * b)
	if r > maxR {
		r = maxR
	}
	for r*s < ne {
		s++
	}
	if r < 2*(s-1)*(s-1) {
		return 0, 0, ErrTooLarge
	}
	if 2*s*b > m {
		return 0, 0, ErrTooLarge
	}
	return r, s, nil
}

// ColumnSort sorts the array with Leighton's eight-step columnsort, using
// in-cache column sorts. The matrix is held column-major, so every column
// sort and every shifted-column sort is a contiguous range; the transpose
// steps are banded streaming passes. The address trace depends only on
// (len, B, M). Returns ErrTooLarge beyond the r ≥ 2(s−1)² limit.
func ColumnSort(env *extmem.Env, a extmem.Array, less Less) error {
	n := a.Len()
	if n == 0 {
		return nil
	}
	b := a.B()
	ne := n * b
	r, s, err := ColumnSortGeometry(n, b, env.M)
	if err != nil {
		return err
	}
	if s <= 1 {
		// Single column: one in-cache sort of the whole array, loaded and
		// stored with one vectored run each.
		buf := env.Cache.Buf(ne)
		a.ReadRange(0, n, buf[:n*b])
		InCache(buf, less)
		a.WriteRange(0, n, buf[:n*b])
		env.Cache.Free(buf)
		return nil
	}

	mark := env.D.Mark()
	defer env.D.Release(mark)
	rb := r / b // blocks per column
	work := env.D.Alloc(r * s / b)
	aux := env.D.Alloc(r * s / b)

	// Load input, padding the tail with empty (+inf) cells — a chunked run
	// copy (one column of cache is the budget every later step needs too).
	kl := min(env.ScanBatchN(1, r*s/b), rb)
	buf := env.Cache.Buf(kl * b)
	for lo := 0; lo < r*s/b; lo += kl {
		hi := min(lo+kl, r*s/b)
		rh := min(hi, n)
		if rh > lo {
			a.ReadRange(lo, rh, buf[:(rh-lo)*b])
		}
		for t := max(rh, lo) * b; t < hi*b; t++ {
			buf[t-lo*b] = extmem.Element{}
		}
		work.WriteRange(lo, hi, buf[:(hi-lo)*b])
	}
	env.Cache.Free(buf)

	sortRange := func(arr extmem.Array, startBlk int) {
		col := env.Cache.Buf(r)
		arr.ReadRange(startBlk, startBlk+rb, col)
		InCache(col, less)
		arr.WriteRange(startBlk, startBlk+rb, col)
		env.Cache.Free(col)
	}
	sortCols := func(arr extmem.Array) {
		for j := 0; j < s; j++ {
			sortRange(arr, j*rb)
		}
	}

	// strided returns the block indices {t, rb+t, 2rb+t, …}: block t of every
	// column — one vectored batch per transpose band (the address list is a
	// pure function of the geometry, not the data).
	strided := make([]int, s)
	stride := func(t int) []int {
		for j := 0; j < s; j++ {
			strided[j] = j*rb + t
		}
		return strided
	}
	// transpose: element at column-major flat f moves to flat
	// (f mod s)*r + (f div s) — "pick up by columns, lay down by rows".
	// Each band is one contiguous vectored read and one strided vectored
	// write (block t of every column).
	transpose := func(src, dst extmem.Array) {
		band := env.Cache.Buf(s * b)
		out := env.Cache.Buf(s * b)
		for t := 0; t < rb; t++ {
			src.ReadRange(t*s, (t+1)*s, band)
			for li := 0; li < s*b; li++ {
				f := t*s*b + li
				j2 := f % s
				i2 := (f / s) - t*b // row offset within this band: in [0,B)
				out[j2*b+i2] = band[li]
			}
			dst.WriteMany(stride(t), out)
		}
		env.Cache.Free(out)
		env.Cache.Free(band)
	}
	// untranspose: the inverse permutation — "pick up by rows, lay down by
	// columns": destination flat g takes the element at source flat
	// (g mod s)*r + (g div s). The strided read and contiguous write mirror
	// transpose.
	untranspose := func(src, dst extmem.Array) {
		band := env.Cache.Buf(s * b)
		out := env.Cache.Buf(s * b)
		for t := 0; t < rb; t++ {
			src.ReadMany(stride(t), band)
			for li := 0; li < s*b; li++ {
				g := t*s*b + li
				j := g % s
				i := g/s - t*b
				out[li] = band[j*b+i]
			}
			dst.WriteRange(t*s, (t+1)*s, out)
		}
		env.Cache.Free(out)
		env.Cache.Free(band)
	}

	sortCols(work)         // step 1
	transpose(work, aux)   // step 2
	sortCols(aux)          // step 3
	untranspose(aux, work) // step 4
	sortCols(work)         // step 5
	for j := 0; j < s-1; j++ {
		// steps 6-8: sorting ranges offset by r/2 is the shift / sort /
		// unshift triple (the boundary half-columns are already in place).
		sortRange(work, j*rb+rb/2)
	}

	// Copy the sorted prefix back as a chunked run copy.
	ko := min(env.ScanBatchN(1, n), rb)
	buf = env.Cache.Buf(ko * b)
	for lo := 0; lo < n; lo += ko {
		hi := min(lo+ko, n)
		work.ReadRange(lo, hi, buf[:(hi-lo)*b])
		a.WriteRange(lo, hi, buf[:(hi-lo)*b])
	}
	env.Cache.Free(buf)
	return nil
}

// ColumnSorter adapts ColumnSort to the Sorter interface; it panics on
// ErrTooLarge (callers choosing columnsort must respect its size limit).
func ColumnSorter(env *extmem.Env, a extmem.Array, less Less) {
	if err := ColumnSort(env, a, less); err != nil {
		panic(err)
	}
}

// BitonicSorter adapts Bitonic to the Sorter interface.
func BitonicSorter(env *extmem.Env, a extmem.Array, less Less) { Bitonic(env, a, less) }
