package obsort

import (
	"fmt"
	"sort"
	"strings"

	"oblivext/internal/extmem"
)

// Engine names accepted by Pick, Engine and the -sorter flags. The
// "randomized" engine lives in internal/core (it needs the §5 pipeline);
// callers that accept engine names resolve it themselves — Engine here
// covers the deterministic and bucket engines this package owns.
const (
	EngineAuto       = "auto"
	EngineRandomized = "randomized"
	EngineBitonic    = "bitonic"
	EngineBucket     = "bucket"
	EngineZigzag     = "zigzag"
)

// EngineNames lists the valid engine names in stable order.
func EngineNames() []string {
	return []string{EngineAuto, EngineRandomized, EngineBitonic, EngineBucket, EngineZigzag}
}

// ValidEngine reports whether name is a known engine name.
func ValidEngine(name string) bool {
	for _, n := range EngineNames() {
		if n == name {
			return true
		}
	}
	return false
}

// EngineNameError builds the rejection message for an unknown engine name.
func EngineNameError(name string) error {
	return fmt.Errorf("obsort: unknown sorter %q (valid: %s)", name, strings.Join(EngineNames(), ", "))
}

// Pick chooses a sorter engine for a workload: nBlocks blocks of b
// elements against a cache of m elements, over backend "mem" (local or
// in-process stores) or "net" (HTTP backends, where round trips dominate).
// It returns one of EngineBitonic, EngineBucket or EngineZigzag — the
// randomized sort is never picked; its constants lose to every
// deterministic engine at any feasible geometry (E13/E19).
//
// The rule, backed by E19: compare predicted block volume (mem) or
// predicted round trips (net) across the engines the geometry supports,
// and take the cheapest, preferring the failure-free deterministic engines
// on ties. Bitonic wins whenever the input is within a few multiples of
// the cache (its windowed passes are nearly free), Zigzag wins beyond that
// on high-latency backends (2 round trips per half-cache merge-split),
// and BucketSort's 3-pass asymptotics need log2(N/M) to clear the bar
// first — roughly n ≥ 2^8·M over mem.
func Pick(nBlocks, b, m int, backend string) string {
	if nBlocks == 0 {
		return EngineBitonic
	}
	type cand struct {
		name string
		cost int64
	}
	var cands []cand
	if backend == "net" {
		cands = []cand{
			{EngineBitonic, bitonicRoundTrips(nBlocks, b, m)},
			{EngineZigzag, ZigzagRoundTrips(nBlocks, b, m)},
		}
		if BucketSupported(nBlocks, b, m) {
			cands = append(cands, cand{EngineBucket, BucketRoundTrips(nBlocks, b, m)})
		}
	} else {
		np := 1 << extmem.CeilLog2(nBlocks)
		cands = []cand{
			{EngineBitonic, int64(BitonicPassCount(nBlocks, b, m)) * int64(2*np)},
			{EngineZigzag, ZigzagIOCount(nBlocks, b, m)},
		}
		if BucketSupported(nBlocks, b, m) {
			cands = append(cands, cand{EngineBucket, BucketIOCount(nBlocks, b, m)})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].cost < cands[j].cost })
	return cands[0].name
}

// bitonicRoundTrips estimates Bitonic's vectored round trips by walking
// its pass structure: 2 per window in windowed passes, 2 per flushed pair
// batch in streaming levels.
func bitonicRoundTrips(nBlocks, b, m int) int64 {
	np := 1 << extmem.CeilLog2(nBlocks)
	ne := np * b
	c := 1 << extmem.FloorLog2(m/2)
	if c > ne {
		c = ne
	}
	windows := int64(ne / c)
	if windows < 1 {
		windows = 1
	}
	pk := int64(max(1, (m/b/2)/2)) // pairs per flush, approximating ScanBatch(1)/2
	rt := 2 * windows              // stage A
	for size := 2 * c; size <= ne; size <<= 1 {
		for stride := size / 2; stride >= c; stride >>= 1 {
			batches := (int64(np/2) + pk - 1) / pk
			rt += 2 * batches
		}
		rt += 2 * windows
	}
	return rt
}

// PickSorter resolves an engine name to a Sorter for the engines this
// package owns; EngineRandomized and EngineAuto must be resolved by the
// caller (internal/core owns the randomized pipeline, and auto needs the
// backend kind). Unknown names panic — validate with ValidEngine first.
func PickSorter(name string) Sorter {
	switch name {
	case EngineBitonic:
		return BitonicSorter
	case EngineBucket:
		return BucketSorter
	case EngineZigzag:
		return ZigzagSorter
	}
	panic(fmt.Sprintf("obsort: no Sorter for engine %q", name))
}

// Auto is the self-selecting Sorter: each call runs Pick for the array's
// geometry over the "mem" cost model and dispatches. It is the default
// engine for ORAM rebuilds — the pick is public (geometry only), so the
// rebuild trace stays a deterministic function of (n, B, t, seed).
func Auto(env *extmem.Env, a extmem.Array, less Less) {
	PickSorter(Pick(a.Len(), a.B(), env.M, "mem"))(env, a, less)
}
