package obsort

import "oblivext/internal/extmem"

// This file implements Batcher's odd-even merge sorting network for
// in-memory slices. The paper's model (§1) lists "simulating a circuit with
// its inputs taken in order from A" as the canonical data-oblivious access
// pattern; this network is that circuit, and the example application uses
// it to demonstrate circuit simulation. All comparators point ascending, so
// indices beyond the slice act as virtual +infinity pads and can simply be
// skipped — unlike bitonic, no physical padding is needed.

// ForEachComparator enumerates the comparator pairs (i, j), i < j, of
// Batcher's odd-even merge sorting network on n wires, in execution order.
func ForEachComparator(n int, visit func(i, j int)) {
	np := 1 << extmem.CeilLog2(n)
	var sortRec func(lo, m int)
	var mergeRec func(lo, m, step int)
	mergeRec = func(lo, m, step int) {
		next := step * 2
		if next < m {
			mergeRec(lo, m, next)
			mergeRec(lo+step, m, next)
			for i := lo + step; i+step < lo+m; i += next {
				emit(n, i, i+step, visit)
			}
		} else {
			emit(n, lo, lo+step, visit)
		}
	}
	sortRec = func(lo, m int) {
		if m <= 1 {
			return
		}
		h := m / 2
		sortRec(lo, h)
		sortRec(lo+h, h)
		mergeRec(lo, m, 1)
	}
	sortRec(0, np)
}

func emit(n, i, j int, visit func(i, j int)) {
	if j < n {
		visit(i, j)
	}
}

// OddEvenSort sorts a private buffer by running Batcher's network.
func OddEvenSort(buf []extmem.Element, less Less) {
	ForEachComparator(len(buf), func(i, j int) {
		if less(buf[j], buf[i]) {
			buf[i], buf[j] = buf[j], buf[i]
		}
	})
}

// OddEvenComparatorCount returns the number of comparators the network uses
// on n wires (Θ(n log² n)).
func OddEvenComparatorCount(n int) int {
	c := 0
	ForEachComparator(n, func(_, _ int) { c++ })
	return c
}
