package emsort

import (
	"math/rand/v2"
	"sort"
	"testing"

	"oblivext/internal/extmem"
	"oblivext/internal/obsort"
	"oblivext/internal/trace"
)

func fill(a extmem.Array, keys []uint64) {
	b := a.B()
	buf := make([]extmem.Element, b)
	idx := 0
	for blk := 0; blk < a.Len(); blk++ {
		for t := 0; t < b; t++ {
			if idx < len(keys) {
				buf[t] = extmem.Element{Key: keys[idx], Pos: uint64(idx), Flags: extmem.FlagOccupied}
				idx++
			} else {
				buf[t] = extmem.Element{}
			}
		}
		a.Write(blk, buf)
	}
}

func readKeys(a extmem.Array) []uint64 {
	buf := make([]extmem.Element, a.B())
	var out []uint64
	for blk := 0; blk < a.Len(); blk++ {
		a.Read(blk, buf)
		for _, e := range buf {
			if e.Occupied() {
				out = append(out, e.Key)
			}
		}
	}
	return out
}

func TestMergeSortCorrectness(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	for _, cfg := range []struct{ n, b, m int }{
		{1, 4, 16}, {7, 4, 16}, {64, 4, 16}, {100, 8, 32}, {33, 2, 8},
	} {
		env := extmem.NewEnv(cfg.n*3, cfg.b, cfg.m, 5)
		a := env.D.Alloc(cfg.n)
		keys := make([]uint64, cfg.n*cfg.b*3/4)
		for i := range keys {
			keys[i] = r.Uint64() % 10000
		}
		fill(a, keys)
		MergeSort(env, a, obsort.ByKey)
		got := readKeys(a)
		want := append([]uint64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d keys out, want %d", cfg.n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: got[%d]=%d want %d", cfg.n, i, got[i], want[i])
			}
		}
	}
}

func TestMergeSortEmptiesSinkToEnd(t *testing.T) {
	env := extmem.NewEnv(32, 4, 16, 5)
	a := env.D.Alloc(8)
	fill(a, []uint64{9, 1, 5}) // 3 occupied out of 32 cells
	MergeSort(env, a, obsort.ByKey)
	buf := make([]extmem.Element, 4)
	a.Read(0, buf)
	if !buf[0].Occupied() || buf[0].Key != 1 || buf[1].Key != 5 || buf[2].Key != 9 || buf[3].Occupied() {
		t.Fatalf("front block wrong: %+v", buf)
	}
}

func TestQuickSelectMatchesSort(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 2))
	env := extmem.NewEnv(256, 4, 32, 5)
	a := env.D.Alloc(64)
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = r.Uint64() % 500 // duplicates likely
	}
	fill(a, keys)
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, k := range []int64{1, 2, 50, 100, 199, 200} {
		e, err := QuickSelect(env, a, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if e.Key != sorted[k-1] {
			t.Fatalf("k=%d: got %d want %d", k, e.Key, sorted[k-1])
		}
	}
}

func TestQuickSelectRankOutOfRange(t *testing.T) {
	env := extmem.NewEnv(16, 4, 16, 5)
	a := env.D.Alloc(4)
	fill(a, []uint64{1, 2, 3})
	if _, err := QuickSelect(env, a, 4); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, err := QuickSelect(env, a, 0); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

// TestMergeSortLeaksNothingButQuickSelectDoes pins down the E13 contrast:
// mergesort's pass structure is data-independent here (runs are fixed
// geometry), but quickselect's trace varies with the data.
func TestQuickSelectTraceDependsOnData(t *testing.T) {
	run := func(keys []uint64) trace.Summary {
		env := extmem.NewEnv(256, 4, 32, 5)
		a := env.D.Alloc(32)
		fill(a, keys)
		rec := trace.NewRecorder(0)
		env.D.SetRecorder(rec)
		if _, err := QuickSelect(env, a, 40); err != nil {
			t.Fatal(err)
		}
		return rec.Summarize()
	}
	r := rand.New(rand.NewPCG(3, 3))
	uniform := make([]uint64, 120)
	for i := range uniform {
		uniform[i] = r.Uint64() % 1000000
	}
	skew := make([]uint64, 120)
	for i := range skew {
		skew[i] = 7
	}
	if run(uniform).Equal(run(skew)) {
		t.Fatal("quickselect traces identical across very different inputs — baseline is supposed to leak")
	}
}

func TestMergeSortIOScalesOptimally(t *testing.T) {
	// One merge pass regime: I/O should be about 4 passes over the data
	// (run formation R+W, one merge pass R+W).
	env := extmem.NewEnv(512, 4, 32, 5)
	n := 64 // m=8 blocks, fan=7 -> single merge pass for n<=56? 64 needs 2 levels of runs: 8*7=56 < 64 -> 2 passes
	a := env.D.Alloc(n)
	r := rand.New(rand.NewPCG(4, 4))
	keys := make([]uint64, n*4)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	fill(a, keys)
	env.D.ResetStats()
	MergeSort(env, a, obsort.ByKey)
	got := env.D.Stats().Total()
	// run formation: 2n; merge passes: ceil(log_7(64/8)) = 2 passes -> 4n; copy-back <= 2n
	if got > int64(9*n) {
		t.Fatalf("merge sort used %d I/Os for n=%d blocks — not within optimal ballpark", got, n)
	}
}
