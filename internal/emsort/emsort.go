// Package emsort provides classical, non-oblivious external-memory
// baselines: the I/O-optimal (M/B−1)-way mergesort of Aggarwal–Vitter and a
// pivot-based external quickselect. Both leak their access patterns — their
// traces depend on the data — which is exactly their role here: the paper's
// algorithms are measured against them to show the price of obliviousness
// (E9, E7) and the leak itself is demonstrated in E13.
package emsort

import (
	"errors"

	"oblivext/internal/extmem"
	"oblivext/internal/obsort"
)

// MergeSort sorts the array with run formation followed by (M/B−1)-way
// merge passes: the I/O-optimal Θ((N/B)·log_{M/B}(N/B)) non-oblivious sort.
// Padded semantics: unoccupied cells sort last under less.
func MergeSort(env *extmem.Env, a extmem.Array, less obsort.Less) {
	n := a.Len()
	if n == 0 {
		return
	}
	b := a.B()
	m := env.MBlocks()
	if m < 3 {
		panic("emsort: MergeSort requires M >= 3B")
	}
	runBlocks := m // a full cache of blocks per initial run
	mark := env.D.Mark()
	defer env.D.Release(mark)

	sp := env.Obs.Start("emsort")
	sp.SetAttrInt("blocks", int64(n))
	defer env.Obs.End(sp)

	// Run formation: each cache-sized run is one vectored read, an in-cache
	// sort, and one vectored write.
	spr := env.Obs.Start("run-formation")
	spr.SetPredicted(2*int64(n), -1)
	chunk := env.Cache.Buf(runBlocks * b)
	for start := 0; start < n; start += runBlocks {
		cnt := runBlocks
		if start+cnt > n {
			cnt = n - start
		}
		a.ReadRange(start, start+cnt, chunk[:cnt*b])
		obsort.InCache(chunk[:cnt*b], less)
		a.WriteRange(start, start+cnt, chunk[:cnt*b])
	}
	env.Cache.Free(chunk)
	env.Obs.End(spr)

	fan := m - 1
	src, dst := a, env.D.Alloc(n)
	runLen := runBlocks
	pass := 0
	for runLen < n {
		spm := env.Obs.Start("merge-pass")
		spm.SetAttrInt("pass", int64(pass))
		spm.SetAttrInt("run-blocks", int64(runLen))
		mergePass(env, src, dst, runLen, fan, less)
		env.Obs.End(spm)
		src, dst = dst, src
		runLen *= fan
		pass++
	}
	if src.Base() != a.Base() {
		// Copy-back: a streaming vectored scan instead of block-at-a-time.
		spc := env.Obs.Start("copy-back")
		k := env.ScanBatchN(1, n)
		buf := env.Cache.Buf(k * b)
		for lo := 0; lo < n; lo += k {
			hi := min(lo+k, n)
			src.ReadRange(lo, hi, buf[:(hi-lo)*b])
			a.WriteRange(lo, hi, buf[:(hi-lo)*b])
		}
		env.Cache.Free(buf)
		env.Obs.End(spc)
	}
}

// mergePass merges consecutive groups of fan runs of runLen blocks from src
// into dst.
func mergePass(env *extmem.Env, src, dst extmem.Array, runLen, fan int, less obsort.Less) {
	n := src.Len()
	b := src.B()
	bufs := env.Cache.Buf(fan * b)
	outBuf := env.Cache.Buf(b)
	for group := 0; group < n; group += runLen * fan {
		// Per-run cursors within this group.
		type cursor struct {
			next, end int // block range remaining
			pos, lim  int // element position within bufs[i]
		}
		curs := make([]cursor, 0, fan)
		for r := 0; r < fan; r++ {
			lo := group + r*runLen
			if lo >= n {
				break
			}
			hi := lo + runLen
			if hi > n {
				hi = n
			}
			c := cursor{next: lo, end: hi}
			curs = append(curs, c)
		}
		// Prime buffers: the first block of every run in this group is known
		// upfront, so fetch them all with one vectored gather. (The refills
		// inside the merge loop stay scalar: which run empties next depends
		// on the data, which is exactly the leak these baselines exhibit.)
		prime := make([]int, len(curs))
		for i := range curs {
			prime[i] = curs[i].next
			curs[i].next++
			curs[i].lim = b
		}
		src.ReadMany(prime, bufs[:len(curs)*b])
		out := group
		op := 0
		total := 0
		for i := range curs {
			total += (curs[i].end - (group + i*runLen)) * b
		}
		for written := 0; written < total; written++ {
			best := -1
			for i := range curs {
				if curs[i].pos >= curs[i].lim {
					continue
				}
				if best < 0 || less(bufs[i*b+curs[i].pos], bufs[best*b+curs[best].pos]) {
					best = i
				}
			}
			outBuf[op] = bufs[best*b+curs[best].pos]
			curs[best].pos++
			if curs[best].pos == curs[best].lim && curs[best].next < curs[best].end {
				src.Read(curs[best].next, bufs[best*b:(best+1)*b])
				curs[best].next++
				curs[best].pos, curs[best].lim = 0, b
			}
			op++
			if op == b {
				dst.Write(out, outBuf)
				out++
				op = 0
			}
		}
	}
	env.Cache.Free(outBuf)
	env.Cache.Free(bufs)
}

// ErrNotFound reports a selection rank outside the number of occupied
// elements.
var ErrNotFound = errors.New("emsort: selection rank out of range")

// scanPrefix streams the blocks [0, blocks) of a through fn, batching reads
// into vectored calls sized by the free cache budget.
func scanPrefix(env *extmem.Env, a extmem.Array, blocks int, fn func(blk []extmem.Element)) {
	if blocks == 0 {
		return
	}
	b := a.B()
	k := env.ScanBatchN(1, blocks)
	buf := env.Cache.Buf(k * b)
	for lo := 0; lo < blocks; lo += k {
		hi := lo + k
		if hi > blocks {
			hi = blocks
		}
		a.ReadRange(lo, hi, buf[:(hi-lo)*b])
		for i := lo; i < hi; i++ {
			fn(buf[(i-lo)*b : (i-lo+1)*b])
		}
	}
	env.Cache.Free(buf)
}

// denseWriter streams occupied elements into dst as densely packed blocks
// through a SeqWriter, padding the final partial block with empties.
type denseWriter struct {
	w    *extmem.SeqWriter
	b    int
	slot []extmem.Element
	op   int
}

func newDenseWriter(dst extmem.Array, buf []extmem.Element) *denseWriter {
	return &denseWriter{w: extmem.NewSeqWriter(dst, 0, buf), b: dst.B()}
}

func (d *denseWriter) put(e extmem.Element) {
	if d.op == 0 {
		d.slot = d.w.Next()
	}
	d.slot[d.op] = e
	d.op++
	if d.op == d.b {
		d.op = 0
	}
}

// finish pads the trailing partial block and flushes everything buffered.
func (d *denseWriter) finish() {
	if d.op > 0 {
		for i := d.op; i < d.b; i++ {
			d.slot[i] = extmem.Element{}
		}
	}
	d.w.Flush()
}

// QuickSelect returns the k-th smallest occupied element (k is 1-based)
// under (Key, Pos) order, using randomized pivoting. Its trace and I/O
// count depend on the data — it is the non-oblivious baseline.
func QuickSelect(env *extmem.Env, a extmem.Array, k int64) (extmem.Element, error) {
	n := a.Len()
	b := a.B()
	mark := env.D.Mark()
	defer env.D.Release(mark)

	sp := env.Obs.Start("quickselect")
	sp.SetAttrInt("blocks", int64(n))
	defer env.Obs.End(sp)

	// Compact occupied elements into a dense scratch array (non-oblivious:
	// writes only as many blocks as there are items), reading and writing
	// through the vectored streaming paths.
	cur := env.D.Alloc(n)
	wbuf := env.Cache.Buf(env.ScanBatchN(2, n) * b)
	dw := newDenseWriter(cur, wbuf)
	cnt := int64(0)
	scanPrefix(env, a, n, func(blk []extmem.Element) {
		for _, e := range blk {
			if e.Occupied() {
				dw.put(e)
				cnt++
			}
		}
	})
	dw.finish()
	env.Cache.Free(wbuf)

	if k < 1 || k > cnt {
		return extmem.Element{}, ErrNotFound
	}
	buf := env.Cache.Buf(b)

	next := env.D.Alloc(n)
	rank := k
	length := cnt // elements in cur
	for {
		blocks := int(extmem.CeilDiv64(length, int64(b)))
		if length <= int64(env.M-env.B()) {
			// The survivors fit in cache: one vectored read of the dense
			// prefix, then select privately.
			env.Cache.Free(buf)
			all := env.Cache.Buf(blocks * b)
			cur.ReadRange(0, blocks, all)
			got := 0
			for _, e := range all {
				if e.Occupied() {
					all[got] = e
					got++
				}
			}
			obsort.InCache(all[:got], obsort.ByKey)
			e := all[rank-1]
			env.Cache.Free(all)
			return e, nil
		}
		// Pick a pivot: first occupied element of a random block.
		var pivot extmem.Element
		for {
			cur.Read(env.Tape.IntN(blocks), buf)
			found := false
			for _, e := range buf {
				if e.Occupied() {
					pivot = e
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		// Partition pass (vectored read scan): count the sides.
		var below, equal int64
		scanPrefix(env, cur, blocks, func(blk []extmem.Element) {
			for _, e := range blk {
				if !e.Occupied() {
					continue
				}
				switch {
				case e.Less(pivot):
					below++
				case e.Key == pivot.Key && e.Pos == pivot.Pos:
					equal++
				}
			}
		})
		if rank <= below {
			length = keepSide(env, cur, next, blocks, b, func(e extmem.Element) bool { return e.Less(pivot) })
		} else if rank <= below+equal {
			env.Cache.Free(buf)
			return pivot, nil
		} else {
			rank -= below + equal
			length = keepSide(env, cur, next, blocks, b, func(e extmem.Element) bool { return pivot.Less(e) })
		}
		cur, next = next, cur
	}
}

// keepSide streams the elements satisfying pred from src into dst (densely
// packed, via the vectored scan and sequential-writer paths) and returns how
// many were kept.
func keepSide(env *extmem.Env, src, dst extmem.Array, blocks, b int, pred func(extmem.Element) bool) int64 {
	wbuf := env.Cache.Buf(env.ScanBatchN(2, blocks) * b)
	dw := newDenseWriter(dst, wbuf)
	kept := int64(0)
	scanPrefix(env, src, blocks, func(blk []extmem.Element) {
		for _, e := range blk {
			if e.Occupied() && pred(e) {
				dw.put(e)
				kept++
			}
		}
	})
	dw.finish()
	env.Cache.Free(wbuf)
	return kept
}
