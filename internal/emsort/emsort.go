// Package emsort provides classical, non-oblivious external-memory
// baselines: the I/O-optimal (M/B−1)-way mergesort of Aggarwal–Vitter and a
// pivot-based external quickselect. Both leak their access patterns — their
// traces depend on the data — which is exactly their role here: the paper's
// algorithms are measured against them to show the price of obliviousness
// (E9, E7) and the leak itself is demonstrated in E13.
package emsort

import (
	"errors"

	"oblivext/internal/extmem"
	"oblivext/internal/obsort"
)

// MergeSort sorts the array with run formation followed by (M/B−1)-way
// merge passes: the I/O-optimal Θ((N/B)·log_{M/B}(N/B)) non-oblivious sort.
// Padded semantics: unoccupied cells sort last under less.
func MergeSort(env *extmem.Env, a extmem.Array, less obsort.Less) {
	n := a.Len()
	if n == 0 {
		return
	}
	b := a.B()
	m := env.MBlocks()
	if m < 3 {
		panic("emsort: MergeSort requires M >= 3B")
	}
	runBlocks := m // a full cache of blocks per initial run
	mark := env.D.Mark()
	defer env.D.Release(mark)

	// Run formation.
	chunk := env.Cache.Buf(runBlocks * b)
	for start := 0; start < n; start += runBlocks {
		cnt := runBlocks
		if start+cnt > n {
			cnt = n - start
		}
		for i := 0; i < cnt; i++ {
			a.Read(start+i, chunk[i*b:(i+1)*b])
		}
		obsort.InCache(chunk[:cnt*b], less)
		for i := 0; i < cnt; i++ {
			a.Write(start+i, chunk[i*b:(i+1)*b])
		}
	}
	env.Cache.Free(chunk)

	fan := m - 1
	src, dst := a, env.D.Alloc(n)
	runLen := runBlocks
	for runLen < n {
		mergePass(env, src, dst, runLen, fan, less)
		src, dst = dst, src
		runLen *= fan
	}
	if src.Base() != a.Base() {
		buf := env.Cache.Buf(b)
		for i := 0; i < n; i++ {
			src.Read(i, buf)
			a.Write(i, buf)
		}
		env.Cache.Free(buf)
	}
}

// mergePass merges consecutive groups of fan runs of runLen blocks from src
// into dst.
func mergePass(env *extmem.Env, src, dst extmem.Array, runLen, fan int, less obsort.Less) {
	n := src.Len()
	b := src.B()
	bufs := env.Cache.Buf(fan * b)
	outBuf := env.Cache.Buf(b)
	for group := 0; group < n; group += runLen * fan {
		// Per-run cursors within this group.
		type cursor struct {
			next, end int // block range remaining
			pos, lim  int // element position within bufs[i]
		}
		curs := make([]cursor, 0, fan)
		for r := 0; r < fan; r++ {
			lo := group + r*runLen
			if lo >= n {
				break
			}
			hi := lo + runLen
			if hi > n {
				hi = n
			}
			c := cursor{next: lo, end: hi}
			curs = append(curs, c)
		}
		// Prime buffers.
		for i := range curs {
			if curs[i].next < curs[i].end {
				src.Read(curs[i].next, bufs[i*b:(i+1)*b])
				curs[i].next++
				curs[i].lim = b
			}
		}
		out := group
		op := 0
		total := 0
		for i := range curs {
			total += (curs[i].end - (group + i*runLen)) * b
		}
		for written := 0; written < total; written++ {
			best := -1
			for i := range curs {
				if curs[i].pos >= curs[i].lim {
					continue
				}
				if best < 0 || less(bufs[i*b+curs[i].pos], bufs[best*b+curs[best].pos]) {
					best = i
				}
			}
			outBuf[op] = bufs[best*b+curs[best].pos]
			curs[best].pos++
			if curs[best].pos == curs[best].lim && curs[best].next < curs[best].end {
				src.Read(curs[best].next, bufs[best*b:(best+1)*b])
				curs[best].next++
				curs[best].pos, curs[best].lim = 0, b
			}
			op++
			if op == b {
				dst.Write(out, outBuf)
				out++
				op = 0
			}
		}
	}
	env.Cache.Free(outBuf)
	env.Cache.Free(bufs)
}

// ErrNotFound reports a selection rank outside the number of occupied
// elements.
var ErrNotFound = errors.New("emsort: selection rank out of range")

// QuickSelect returns the k-th smallest occupied element (k is 1-based)
// under (Key, Pos) order, using randomized pivoting. Its trace and I/O
// count depend on the data — it is the non-oblivious baseline.
func QuickSelect(env *extmem.Env, a extmem.Array, k int64) (extmem.Element, error) {
	n := a.Len()
	b := a.B()
	mark := env.D.Mark()
	defer env.D.Release(mark)

	// Compact occupied elements into a dense scratch array (non-oblivious:
	// writes only as many blocks as there are items).
	cur := env.D.Alloc(n)
	buf := env.Cache.Buf(b)
	out := env.Cache.Buf(b)
	cnt := int64(0)
	op := 0
	outBlk := 0
	flush := func() {
		for i := op; i < b; i++ {
			out[i] = extmem.Element{}
		}
		cur.Write(outBlk, out)
		outBlk++
		op = 0
	}
	for i := 0; i < n; i++ {
		a.Read(i, buf)
		for _, e := range buf {
			if e.Occupied() {
				out[op] = e
				op++
				cnt++
				if op == b {
					flush()
				}
			}
		}
	}
	if op > 0 {
		flush()
	}
	env.Cache.Free(out)

	if k < 1 || k > cnt {
		env.Cache.Free(buf)
		return extmem.Element{}, ErrNotFound
	}

	next := env.D.Alloc(n)
	rank := k
	length := cnt // elements in cur
	for {
		blocks := int(extmem.CeilDiv64(length, int64(b)))
		if length <= int64(env.M-env.B()) {
			all := env.Cache.Buf(int(length))
			got := 0
			for i := 0; i < blocks; i++ {
				cur.Read(i, buf)
				for _, e := range buf {
					if e.Occupied() && got < int(length) {
						all[got] = e
						got++
					}
				}
			}
			obsort.InCache(all[:got], obsort.ByKey)
			e := all[rank-1]
			env.Cache.Free(all)
			env.Cache.Free(buf)
			return e, nil
		}
		// Pick a pivot: first occupied element of a random block.
		var pivot extmem.Element
		for {
			cur.Read(env.Tape.IntN(blocks), buf)
			found := false
			for _, e := range buf {
				if e.Occupied() {
					pivot = e
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		// Partition pass: write the side of interest to next.
		var below, equal int64
		for i := 0; i < blocks; i++ {
			cur.Read(i, buf)
			for _, e := range buf {
				if !e.Occupied() {
					continue
				}
				switch {
				case e.Less(pivot):
					below++
				case e.Key == pivot.Key && e.Pos == pivot.Pos:
					equal++
				}
			}
		}
		if rank <= below {
			length = keepSide(env, cur, next, blocks, b, func(e extmem.Element) bool { return e.Less(pivot) })
		} else if rank <= below+equal {
			env.Cache.Free(buf)
			return pivot, nil
		} else {
			rank -= below + equal
			length = keepSide(env, cur, next, blocks, b, func(e extmem.Element) bool { return pivot.Less(e) })
		}
		cur, next = next, cur
	}
}

// keepSide streams the elements satisfying pred from src into dst and
// returns how many were kept.
func keepSide(env *extmem.Env, src, dst extmem.Array, blocks, b int, pred func(extmem.Element) bool) int64 {
	in := env.Cache.Buf(b)
	out := env.Cache.Buf(b)
	kept := int64(0)
	op, outBlk := 0, 0
	for i := 0; i < blocks; i++ {
		src.Read(i, in)
		for _, e := range in {
			if e.Occupied() && pred(e) {
				out[op] = e
				op++
				kept++
				if op == b {
					dst.Write(outBlk, out)
					outBlk++
					op = 0
				}
			}
		}
	}
	if op > 0 {
		for i := op; i < b; i++ {
			out[i] = extmem.Element{}
		}
		dst.Write(outBlk, out)
	}
	env.Cache.Free(out)
	env.Cache.Free(in)
	return kept
}
