package trace

import "testing"

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(2)
	r.Record(Read, 1)
	r.Record(Write, 2)
	r.Record(Read, 3)
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	if got := len(r.Ops()); got != 2 {
		t.Fatalf("retained = %d, want cap 2", got)
	}
	if r.Ops()[0] != (Op{Read, 1}) {
		t.Fatalf("op0 = %v", r.Ops()[0])
	}
}

func TestNilAndDisabledRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Read, 1) // must not panic
	if r.Len() != 0 || r.Hash() != 0 || r.Enabled() {
		t.Fatal("nil recorder not inert")
	}
	var zero Recorder
	zero.Record(Write, 5)
	if zero.Len() != 0 {
		t.Fatal("zero-value recorder recorded without Enable")
	}
}

func TestSummaryEquality(t *testing.T) {
	a, b := NewRecorder(0), NewRecorder(0)
	seq := []Op{{Read, 10}, {Write, 20}, {Read, 10}, {Write, 99}}
	for _, op := range seq {
		a.Record(op.Kind, op.Addr)
		b.Record(op.Kind, op.Addr)
	}
	if !a.Summarize().Equal(b.Summarize()) {
		t.Fatal("identical traces produced different summaries")
	}
	b.Record(Read, 1)
	if a.Summarize().Equal(b.Summarize()) {
		t.Fatal("different-length traces compared equal")
	}
}

func TestSummaryDistinguishesOrder(t *testing.T) {
	a, b := NewRecorder(0), NewRecorder(0)
	a.Record(Read, 1)
	a.Record(Read, 2)
	b.Record(Read, 2)
	b.Record(Read, 1)
	if a.Summarize().Equal(b.Summarize()) {
		t.Fatal("reordered traces compared equal")
	}
}

func TestSummaryDistinguishesKind(t *testing.T) {
	a, b := NewRecorder(0), NewRecorder(0)
	a.Record(Read, 7)
	b.Record(Write, 7)
	if a.Summarize().Equal(b.Summarize()) {
		t.Fatal("read vs write at same address compared equal")
	}
}

func TestFirstDivergence(t *testing.T) {
	a, b := NewRecorder(10), NewRecorder(10)
	a.Record(Read, 1)
	a.Record(Read, 2)
	b.Record(Read, 1)
	b.Record(Read, 3)
	if got := FirstDivergence(a, b); got != 1 {
		t.Fatalf("divergence = %d, want 1", got)
	}
	c, d := NewRecorder(10), NewRecorder(10)
	c.Record(Write, 4)
	d.Record(Write, 4)
	if got := FirstDivergence(c, d); got != -1 {
		t.Fatalf("divergence of equal traces = %d, want -1", got)
	}
	d.Record(Read, 9)
	if got := FirstDivergence(c, d); got != 1 {
		t.Fatalf("divergence on prefix = %d, want 1", got)
	}
}

func TestOpString(t *testing.T) {
	if s := (Op{Read, 42}).String(); s != "R@42" {
		t.Fatalf("op string = %q", s)
	}
	if s := (Summary{Len: 3, Hash: 0xff}).String(); s == "" {
		t.Fatal("empty summary string")
	}
}
